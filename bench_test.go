package rnl

// The benchmark harness: one benchmark per figure or quantitative claim in
// the paper's evaluation (see the per-experiment index in DESIGN.md and
// measured results in EXPERIMENTS.md).

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rnl/internal/baseline"
	"rnl/internal/compress"
	"rnl/internal/l1switch"
	"rnl/internal/netsim"
	"rnl/internal/ris"
	"rnl/internal/routeserver"
	"rnl/internal/wanem"
	"rnl/internal/wire"
)

// templateFrames builds n Ethernet-sized frames from one template, varying
// only sequence fields — the paper's performance-testing workload (§4).
func templateFrames(n, size int) [][]byte {
	base := make([]byte, size)
	r := rand.New(rand.NewSource(99))
	r.Read(base)
	base[12], base[13] = 0x08, 0x00 // look like IPv4 at a glance
	out := make([][]byte, n)
	for i := range out {
		f := append([]byte(nil), base...)
		binary.BigEndian.PutUint32(f[38:42], uint32(i))
		out[i] = f
	}
	return out
}

// randomFrames builds n frames of random content (incompressible).
func randomFrames(n, size int) [][]byte {
	r := rand.New(rand.NewSource(7))
	out := make([][]byte, n)
	for i := range out {
		f := make([]byte, size)
		r.Read(f)
		out[i] = f
	}
	return out
}

// pumpWindowed pushes b.N frames through a send function with a bounded
// in-flight window, waiting for all receptions. recvCount must increase as
// frames land.
func pumpWindowed(b *testing.B, frames [][]byte, window int, send func([]byte), recvCount func() uint64) {
	b.Helper()
	start := recvCount()
	sent := 0
	for sent < b.N {
		inFlight := uint64(sent) - (recvCount() - start)
		if int(inFlight) >= window {
			time.Sleep(50 * time.Microsecond)
			continue
		}
		send(frames[sent%len(frames)])
		sent++
	}
	deadline := time.Now().Add(30 * time.Second)
	for recvCount()-start < uint64(b.N) {
		if time.Now().After(deadline) {
			b.Fatalf("only %d/%d frames arrived", recvCount()-start, b.N)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// BenchmarkTunnelWriter isolates the tunnel send path: the seed's
// synchronous style (EncodePacket allocation + locked WriteFrame, one
// syscall per frame) versus the asynchronous batched wire.Conn writer
// (bounded queue, frames coalesced into one buffered write + flush).
// The peer is a discard sink so only the writer is measured.
func BenchmarkTunnelWriter(b *testing.B) {
	newSink := func(b *testing.B) net.Conn {
		b.Helper()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { ln.Close() })
		go func() {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			io.Copy(io.Discard, conn)
			conn.Close()
		}()
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { conn.Close() })
		return conn
	}

	for _, size := range []int{64, 512, 1500} {
		frame := templateFrames(1, size)[0]

		b.Run(fmt.Sprintf("sync/frame=%dB", size), func(b *testing.B) {
			conn := newSink(b)
			var mu sync.Mutex
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mu.Lock()
				err := wire.WriteFrame(conn, wire.Frame{
					Type:    wire.MsgPacket,
					Payload: wire.EncodePacket(wire.PacketMsg{RouterID: 1, PortID: 1, Data: frame}),
				})
				mu.Unlock()
				if err != nil {
					b.Fatal(err)
				}
			}
		})

		b.Run(fmt.Sprintf("batched/frame=%dB", size), func(b *testing.B) {
			conn := newSink(b)
			wc := wire.NewConn(conn, wire.ConnConfig{})
			defer wc.Close()
			st := wc.Stats()
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Keep the producer from racing the writer into the
				// drop-oldest policy: measure queue+write, not drops.
				for st.FramesEnqueued.Load()-st.FramesWritten.Load() > 3000 {
					time.Sleep(10 * time.Microsecond)
				}
				if err := wc.SendPacket(wire.PacketMsg{RouterID: 1, PortID: 1, Data: frame}); err != nil {
					b.Fatal(err)
				}
			}
			// Charge the drain to the measured interval too.
			deadline := time.Now().Add(30 * time.Second)
			for st.FramesWritten.Load()+st.PacketsDropped.Load() < uint64(b.N) {
				if time.Now().After(deadline) {
					b.Fatalf("only %d/%d frames written", st.FramesWritten.Load(), b.N)
				}
				time.Sleep(50 * time.Microsecond)
			}
			b.StopTimer()
			if d := st.PacketsDropped.Load(); d > 0 {
				b.Fatalf("%d frames dropped during benchmark", d)
			}
			b.ReportMetric(float64(st.FramesWritten.Load())/float64(st.Flushes.Load()), "frames/flush")
		})
	}
}

// BenchmarkFig4PacketFlow measures the paper's Fig. 4 path — capture at
// the source RIS, wrap, route-server matrix lookup, wrap, deliver at the
// destination RIS — as sustained pipelined throughput.
func BenchmarkFig4PacketFlow(b *testing.B) {
	for _, size := range []int{64, 512, 1500} {
		b.Run(fmt.Sprintf("frame=%dB", size), func(b *testing.B) {
			tp := newTunnelPair(b, false, nil)
			defer tp.Close()
			frames := templateFrames(64, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			pumpWindowed(b, frames, 128, tp.A.Transmit, tp.Received)
		})
	}
}

// BenchmarkFig4Latency measures one-frame round-trip through the tunnel
// (A→server→B, then B→server→A), the "added delay" of the virtual wire.
func BenchmarkFig4Latency(b *testing.B) {
	tp := newTunnelPair(b, false, nil)
	defer tp.Close()
	echo := make(chan struct{}, 1)
	tp.SetOnReceiveB(func(f []byte) { tp.B.Transmit(f) })
	got := atomic.Uint64{}
	tp.A.SetReceiver(func([]byte) {
		got.Add(1)
		select {
		case echo <- struct{}{}:
		default:
		}
	})
	frame := templateFrames(1, 256)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp.A.Transmit(frame)
		select {
		case <-echo:
		case <-time.After(5 * time.Second):
			b.Fatal("echo lost")
		}
	}
}

// BenchmarkTunnelCompression compares the tunnel with and without the §4
// template compression, on compressible and incompressible workloads.
// The interesting metric is wire-bytes/op (the provisioned Internet
// bandwidth the paper worries about).
func BenchmarkTunnelCompression(b *testing.B) {
	workloads := []struct {
		name   string
		frames [][]byte
	}{
		{"template", templateFrames(512, 1000)},
		{"random", randomFrames(512, 1000)},
	}
	for _, comp := range []bool{false, true} {
		for _, wl := range workloads {
			name := fmt.Sprintf("compress=%v/%s", comp, wl.name)
			b.Run(name, func(b *testing.B) {
				tp := newTunnelPair(b, comp, nil)
				defer tp.Close()
				b.SetBytes(1000)
				b.ResetTimer()
				pumpWindowed(b, wl.frames, 128, tp.A.Transmit, tp.Received)
				b.StopTimer()
				st := tp.Server.StatsSnapshot()
				if fwd := st["packets_forwarded"]; fwd > 0 {
					// bytes_forwarded counts decompressed payload; compare
					// against what actually crossed the socket via the RIS
					// agent stats — approximated by the compressor ratio on
					// a shadow run below in EXPERIMENTS.md.
					b.ReportMetric(float64(st["bytes_forwarded"])/float64(fwd), "payloadB/op")
				}
			})
		}
	}
}

// BenchmarkCompressionRatio reports the §4 compression ratio on the
// template workload directly (compressor in isolation).
func BenchmarkCompressionRatio(b *testing.B) {
	for _, wl := range []struct {
		name   string
		frames [][]byte
	}{
		{"template", templateFrames(512, 1000)},
		{"random", randomFrames(512, 1000)},
	} {
		b.Run(wl.name, func(b *testing.B) {
			c := compress.NewCompressor()
			b.SetBytes(1000)
			for i := 0; i < b.N; i++ {
				c.Compress(wl.frames[i%len(wl.frames)])
			}
			b.ReportMetric(c.Ratio(), "ratio")
		})
	}
}

// BenchmarkFig7L1SwitchVsTunnel compares the two data paths of Fig. 7: the
// programmable layer-1 cross connect bridging two co-located ports
// directly, versus the same two ports connected through the Internet
// tunnel.
func BenchmarkFig7L1SwitchVsTunnel(b *testing.B) {
	const size = 1000
	frames := templateFrames(64, size)

	b.Run("l1-bridged", func(b *testing.B) {
		x := l1switch.New("mcc", []string{"p1", "p2"})
		a := netsim.NewIface("dev-a")
		bb := netsim.NewIface("dev-b")
		w1 := netsim.Connect(a, x.Port("p1"), nil)
		w2 := netsim.Connect(bb, x.Port("p2"), nil)
		defer w1.Disconnect()
		defer w2.Disconnect()
		if err := x.Bridge("p1", "p2"); err != nil {
			b.Fatal(err)
		}
		var got atomic.Uint64
		bb.SetReceiver(func([]byte) { got.Add(1) })
		b.SetBytes(size)
		b.ResetTimer()
		pumpWindowed(b, frames, 128, a.Transmit, got.Load)
	})
	b.Run("tunneled", func(b *testing.B) {
		tp := newTunnelPair(b, false, nil)
		defer tp.Close()
		b.SetBytes(size)
		b.ResetTimer()
		pumpWindowed(b, frames, 128, tp.A.Transmit, tp.Received)
	})
}

// BenchmarkRouteServerScaling measures §4's scaling concern: N concurrent
// labs funneled through one central route server versus one route server
// per user. Reported as aggregate throughput across all labs.
func BenchmarkRouteServerScaling(b *testing.B) {
	const size = 512
	frames := templateFrames(64, size)

	runLabs := func(b *testing.B, servers []*routeserver.Server, labsPerServer int) {
		type labT struct {
			a    *netsim.Iface
			got  *atomic.Uint64
			stop []func()
		}
		var labs []*labT
		for si, s := range servers {
			for li := 0; li < labsPerServer; li++ {
				lab := &labT{got: &atomic.Uint64{}}
				addr := s.Addr()
				join := func(name string) (*netsim.Iface, routeserver.PortKey) {
					dev := netsim.NewIface(name + "-dev")
					nic := netsim.NewIface(name + "-nic")
					w := netsim.Connect(dev, nic, nil)
					lab.stop = append(lab.stop, w.Disconnect)
					ag, err := ris.New(ris.Config{
						ServerAddr: addr, PCName: name,
						Routers: []ris.RouterDef{{Name: name, Ports: []ris.PortMap{{Name: "p0", NIC: nic}}}},
					}, quietLogger())
					if err != nil {
						b.Fatal(err)
					}
					if err := ag.Start(); err != nil {
						b.Fatal(err)
					}
					lab.stop = append(lab.stop, ag.Close)
					rid, pid, _ := ag.PortID(name, "p0")
					return dev, routeserver.PortKey{Router: rid, Port: pid}
				}
				aDev, pkA := join(fmt.Sprintf("s%dl%da", si, li))
				bDev, pkB := join(fmt.Sprintf("s%dl%db", si, li))
				bDev.SetReceiver(func([]byte) { lab.got.Add(1) })
				if err := s.Deploy(fmt.Sprintf("lab-%d-%d", si, li), []routeserver.Link{{A: pkA, B: pkB}}); err != nil {
					b.Fatal(err)
				}
				lab.a = aDev
				labs = append(labs, lab)
			}
		}
		defer func() {
			for _, l := range labs {
				for i := len(l.stop) - 1; i >= 0; i-- {
					l.stop[i]()
				}
			}
		}()
		total := func() uint64 {
			var t uint64
			for _, l := range labs {
				t += l.got.Load()
			}
			return t
		}
		b.SetBytes(int64(size * len(labs)))
		b.ResetTimer()
		// Each op pushes one frame per lab, window applied globally.
		start := total()
		sent := uint64(0)
		for i := 0; i < b.N; i++ {
			for int(sent-(total()-start)) >= 128*len(labs) {
				time.Sleep(50 * time.Microsecond)
			}
			for _, l := range labs {
				l.a.Transmit(frames[i%len(frames)])
				sent++
			}
		}
		deadline := time.Now().Add(30 * time.Second)
		for total()-start < sent {
			if time.Now().After(deadline) {
				b.Fatalf("only %d/%d frames arrived", total()-start, sent)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}

	for _, nLabs := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("central/labs=%d", nLabs), func(b *testing.B) {
			s := routeserver.New(routeserver.Options{Logger: quietLogger()})
			if _, err := s.Listen("127.0.0.1:0"); err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			runLabs(b, []*routeserver.Server{s}, nLabs)
		})
	}
	for _, nLabs := range []int{4, 8} {
		b.Run(fmt.Sprintf("per-user/labs=%d", nLabs), func(b *testing.B) {
			var servers []*routeserver.Server
			for i := 0; i < nLabs; i++ {
				s := routeserver.New(routeserver.Options{Logger: quietLogger()})
				if _, err := s.Listen("127.0.0.1:0"); err != nil {
					b.Fatal(err)
				}
				defer s.Close()
				servers = append(servers, s)
			}
			runLabs(b, servers, 1)
		})
	}
}

// BenchmarkTunnelUnderDelay quantifies §4's delay concern: tunnel
// round-trips with injected WAN latency on the RIS uplink. Configuration
// testing (low volume) tolerates it; the numbers show why performance
// testing needs the Fig. 7 layer-1 bypass instead.
func BenchmarkTunnelUnderDelay(b *testing.B) {
	for _, delay := range []time.Duration{0, 5 * time.Millisecond, 20 * time.Millisecond} {
		b.Run(fmt.Sprintf("wan=%v", delay), func(b *testing.B) {
			cond := wanem.New(wanem.Profile{Delay: delay}, 1)
			tp := newTunnelPair(b, false, cond)
			defer tp.Close()
			echo := make(chan struct{}, 1)
			tp.SetOnReceiveB(func(f []byte) { tp.B.Transmit(f) })
			tp.A.SetReceiver(func([]byte) {
				select {
				case echo <- struct{}{}:
				default:
				}
			})
			frame := templateFrames(1, 256)[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tp.A.Transmit(frame)
				select {
				case <-echo:
				case <-time.After(10 * time.Second):
					b.Fatal("echo lost")
				}
			}
		})
	}
}

// BenchmarkWireMechanisms compares raw per-frame forwarding cost of the
// three virtual-wire mechanisms of §5 on plain IP traffic (the traffic
// class all three carry; only RNL's wire carries everything else — see
// TestWireFidelityComparison in internal/baseline).
func BenchmarkWireMechanisms(b *testing.B) {
	const size = 512
	frames := templateFrames(64, size)
	mk := func(name string, connect func(a, bIf *netsim.Iface) func()) {
		b.Run(name, func(b *testing.B) {
			a, bb := netsim.NewIface("a"), netsim.NewIface("b")
			var got atomic.Uint64
			bb.SetReceiver(func([]byte) { got.Add(1) })
			disconnect := connect(a, bb)
			defer disconnect()
			b.SetBytes(size)
			b.ResetTimer()
			pumpWindowed(b, frames, 128, a.Transmit, got.Load)
		})
	}
	mk("direct", func(a, bIf *netsim.Iface) func() {
		w := netsim.Connect(a, bIf, nil)
		return w.Disconnect
	})
	mk("vlan", func(a, bIf *netsim.Iface) func() {
		w := baseline.ConnectVLAN(a, bIf)
		return w.Disconnect
	})
	mk("vpn", func(a, bIf *netsim.Iface) func() {
		w := baseline.ConnectVPN(a, bIf)
		return w.Disconnect
	})
	mk("rnl-tunnel", func(a, bIf *netsim.Iface) func() {
		// a/bIf already have receivers; rebuild via tunnelPair ports.
		tp := newTunnelPair(b, false, nil)
		// Redirect: transmit on tp.A; count at tp.B into got via the
		// caller's receiver on bIf is not reachable here, so bridge:
		tp.SetOnReceiveB(func(f []byte) { bIf.Deliver(f) })
		a.SetOutput(func(f []byte) { tp.A.Transmit(f) })
		return tp.Close
	})
}
