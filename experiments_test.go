package rnl

// Experiment reproductions indexed in DESIGN.md that aren't covered by a
// package-level test: Fig. 1 (architecture), Fig. 3 (RIS port mapping),
// Fig. 4 (packet flow integrity), Fig. 7 (layer-1 switch modes), and the
// §4 delay claim. The Fig. 5 / Fig. 6 experiments live in internal/lab,
// the §5 fidelity comparison in internal/baseline.

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"rnl/internal/api"
	"rnl/internal/device"
	"rnl/internal/l1switch"
	"rnl/internal/lab"
	"rnl/internal/netsim"
	"rnl/internal/packet"
	"rnl/internal/ris"
	"rnl/internal/topology"
	"rnl/internal/wanem"
)

// TestArchitectureEndToEnd is Fig. 1: geographically distributed
// equipment, each site's PC dialing OUT to the central server (the
// firewall-traversal property), a central web+route server coordinating
// everything, users driving it through the web services API.
func TestArchitectureEndToEnd(t *testing.T) {
	cloud, err := lab.NewCloud(lab.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cloud.Close()

	// Three "sites": San Jose (router), Chicago (switch), client site
	// (server). Each joins through its own RIS over an outbound TCP
	// connection — the route server never dials the sites.
	if _, _, err := cloud.AddRouter("sj-router", []string{"e0", "e1"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cloud.AddSwitch("chi-switch", []string{"p1", "p2"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cloud.AddHost("client-host", "10.9.0.1/24", ""); err != nil {
		t.Fatal(err)
	}

	inv, err := cloud.Client.Inventory()
	if err != nil {
		t.Fatal(err)
	}
	if len(inv) != 3 {
		t.Fatalf("inventory = %d routers, want 3 across 3 sites", len(inv))
	}
	pcs := map[string]bool{}
	for _, r := range inv {
		pcs[r.PC] = true
		if !r.Online {
			t.Errorf("router %s not online", r.Name)
		}
	}
	if len(pcs) != 3 {
		t.Errorf("expected 3 distinct lab PCs, saw %v", pcs)
	}
}

// TestRISConfigMapping is Fig. 3: the lab manager's NIC↔port mapping —
// descriptions, image regions, console COM assignment — all flow through
// the join and appear in the inventory for the web UI to render.
func TestRISConfigMapping(t *testing.T) {
	cloud, err := lab.NewCloud(lab.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cloud.Close()

	nic1 := netsim.NewIface("pc9/eth3")
	nic2 := netsim.NewIface("pc9/eth4")
	agent, err := ris.New(ris.Config{
		ServerAddr: cloud.TunnelAddr,
		PCName:     "pc9",
		Routers: []ris.RouterDef{{
			Name:        "cat6500-lab9",
			Description: "Catalyst 6500 with FWSM, building 9 lab",
			Model:       "Catalyst 6500",
			Image:       "cat6500-back.png",
			Firmware:    "12.2(33)SXH",
			Ports: []ris.PortMap{
				{Name: "Gi1/1", Description: "uplink port", NIC: nic1, Rect: [4]int{10, 20, 40, 15}},
				{Name: "Gi1/2", Description: "server port", NIC: nic2, Rect: [4]int{60, 20, 40, 15}},
			},
		}},
	}, quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.Start(); err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	r, ok := cloud.RS.RouterByName("cat6500-lab9")
	if !ok {
		t.Fatal("router missing from inventory")
	}
	if r.Model != "Catalyst 6500" || r.Image != "cat6500-back.png" || r.Firmware != "12.2(33)SXH" {
		t.Errorf("router metadata lost: %+v", r)
	}
	if r.PC != "pc9" {
		t.Errorf("PC = %q", r.PC)
	}
	p, ok := r.PortByName("Gi1/1")
	if !ok {
		t.Fatal("port Gi1/1 missing")
	}
	if p.Description != "uplink port" || p.NIC != "pc9/eth3" || p.Rect != [4]int{10, 20, 40, 15} {
		t.Errorf("port mapping lost: %+v", p)
	}
	if r.HasConsole {
		t.Error("no console was mapped; inventory disagrees")
	}
}

// TestPacketFlowPath is Fig. 4 as a correctness property: a frame
// transmitted at one port arrives at the far port byte-identical — the
// complete layer-2 packet, exactly as captured.
func TestPacketFlowPath(t *testing.T) {
	for _, compress := range []bool{false, true} {
		t.Run(fmt.Sprintf("compress=%v", compress), func(t *testing.T) {
			tp := newTunnelPair(t, compress, nil)
			defer tp.Close()
			got := make(chan []byte, 16)
			tp.SetOnReceiveB(func(f []byte) {
				c := append([]byte(nil), f...)
				select {
				case got <- c:
				default:
				}
			})
			// An exotic frame: 802.3 + LLC + BPDU with padding — the
			// kind of thing VLAN/VPN links mangle or drop.
			frame, err := packet.BuildBPDU(packet.STPMulticast[:6], &packet.STP{
				BPDUType: packet.BPDUTypeConfig,
				RootID:   packet.BridgeID{Priority: 4096, MAC: []byte{2, 0, 0, 0, 0, 1}},
				BridgeID: packet.BridgeID{Priority: 8192, MAC: []byte{2, 0, 0, 0, 0, 2}},
			})
			if err != nil {
				t.Fatal(err)
			}
			tp.A.Transmit(frame)
			select {
			case rx := <-got:
				if !bytes.Equal(rx, frame) {
					t.Fatalf("frame mutated in transit:\n tx %x\n rx %x", frame, rx)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("frame never arrived")
			}
		})
	}
}

// TestL1SwitchModes is Fig. 7's operational story: the same two co-located
// router ports are switched between the full-bandwidth layer-1 bridge (for
// performance testing) and the RIS/tunnel path (for everything else) by
// reprogramming the cross connect.
func TestL1SwitchModes(t *testing.T) {
	// Two "router ports" and the RIS NICs, all patched into the cross
	// connect as in the paper's wiring diagram.
	x := l1switch.New("mcc", []string{"rA", "rB", "risA", "risB"})
	devA, devB := netsim.NewIface("dev-a"), netsim.NewIface("dev-b")
	wA := netsim.Connect(devA, x.Port("rA"), nil)
	wB := netsim.Connect(devB, x.Port("rB"), nil)
	defer wA.Disconnect()
	defer wB.Disconnect()

	tp := newTunnelPair(t, false, nil)
	defer tp.Close()
	// Relay interfaces patch the cross connect's RIS-facing ports into
	// the tunnel pair: frames arriving from the cross connect go into
	// the tunnel, frames arriving from the tunnel go back to the cross
	// connect.
	relayA, relayB := netsim.NewIface("relay-a"), netsim.NewIface("relay-b")
	wRA := netsim.Connect(relayA, x.Port("risA"), nil)
	wRB := netsim.Connect(relayB, x.Port("risB"), nil)
	defer wRA.Disconnect()
	defer wRB.Disconnect()
	relayA.SetReceiver(func(f []byte) { tp.A.Transmit(f) })
	relayB.SetReceiver(func(f []byte) { tp.B.Transmit(f) })
	tp.A.SetReceiver(func(f []byte) { relayA.Transmit(f) })
	tp.SetOnReceiveB(func(f []byte) { relayB.Transmit(f) })

	got := make(chan string, 16)
	devB.SetReceiver(func(f []byte) {
		select {
		case got <- string(f):
		default:
		}
	})

	expect := func(want string) {
		t.Helper()
		select {
		case s := <-got:
			if s != want {
				t.Fatalf("got %q, want %q", s, want)
			}
		case <-time.After(3 * time.Second):
			t.Fatalf("frame %q never arrived", want)
		}
	}
	drainQuiet := func() {
		for {
			select {
			case <-got:
			case <-time.After(50 * time.Millisecond):
				return
			}
		}
	}

	// Mode 1: performance testing — direct layer-1 bridge.
	if err := x.Bridge("rA", "rB"); err != nil {
		t.Fatal(err)
	}
	devA.Transmit([]byte("bridged-frame"))
	expect("bridged-frame")

	// Mode 2: normal operation — router ports patched to the RIS PCs,
	// traffic goes through the Internet tunnel.
	if err := x.Bridge("rA", "risA"); err != nil {
		t.Fatal(err)
	}
	if err := x.Bridge("rB", "risB"); err != nil {
		t.Fatal(err)
	}
	drainQuiet()
	devA.Transmit([]byte("tunneled-frame"))
	expect("tunneled-frame")
}

// TestConfigTestingUnderDelay is §4's claim that "delay and jitter will
// not affect configuration testing": with 50 ms of injected WAN latency on
// the tunnel, the full configuration workflow — console commands, config
// save, connectivity check — still works.
func TestConfigTestingUnderDelay(t *testing.T) {
	cloud, err := lab.NewCloud(lab.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cloud.Close()
	cond := wanem.New(wanem.Profile{Delay: 25 * time.Millisecond, Jitter: 5 * time.Millisecond}, 1)
	h1, _, err := cloud.AddHostVia("far-host", "10.70.0.1/24", "", cond)
	if err != nil {
		t.Fatal(err)
	}
	h2, _, err := cloud.AddHost("near-host", "10.70.0.2/24", "")
	if err != nil {
		t.Fatal(err)
	}
	d := &topology.Design{Name: "delay-lab", Routers: []string{"far-host", "near-host"}}
	if err := d.Connect("far-host", "eth0", "near-host", "eth0"); err != nil {
		t.Fatal(err)
	}
	if err := cloud.Client.SaveDesign(d); err != nil {
		t.Fatal(err)
	}
	if err := cloud.DeployDesign(d); err != nil {
		t.Fatal(err)
	}
	// Console automation across the delayed path.
	outs, err := cloud.Client.ConsoleExec(api.ConsoleExecRequest{
		Router: "far-host", Commands: []string{"enable", "show ip"}, TimeoutMS: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(outs[1], "10.70.0.1") {
		t.Errorf("console output = %q", outs[1])
	}
	// Config save through the console automation.
	if _, err := cloud.Client.SaveConfigs("delay-lab"); err != nil {
		t.Fatal(err)
	}
	// And plain connectivity.
	if ok, rtt := h1.Ping(h2.IP(), 10*time.Second); !ok {
		t.Fatal("ping failed under WAN delay")
	} else if rtt < 50*time.Millisecond {
		t.Errorf("rtt %v suspiciously low for 2×25ms injected delay", rtt)
	}
}

// TestMeasuredConvergence records the numbers EXPERIMENTS.md reports:
// failover takeover time and the dual-active storm magnitude, using the
// fast (100×) timer profile.
func TestMeasuredConvergence(t *testing.T) {
	cloud, err := lab.NewCloud(lab.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cloud.Close()
	f, err := cloud.BuildFig5(lab.Fig5Options{FailoverVLANOnTrunk: true})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for f.FW1.State().String() != "Active" && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if ok, _ := f.S2.Ping(f.S1.IP(), 8*time.Second); !ok {
		t.Fatal("baseline connectivity failed")
	}
	start := time.Now()
	f.FW1.Port("inside").SetAdminUp(false)
	for f.FW2.State().String() != "Active" {
		if time.Now().After(start.Add(5 * time.Second)) {
			t.Fatal("failover never happened")
		}
		time.Sleep(time.Millisecond)
	}
	takeover := time.Since(start)
	ok, recovery := f.S2.Ping(f.S1.IP(), 8*time.Second)
	if !ok {
		t.Fatal("connectivity never recovered")
	}
	t.Logf("failover takeover: %v (fast timers, hold=35ms)", takeover.Round(time.Millisecond))
	t.Logf("end-to-end recovery (incl. MAC re-learning): %v", recovery.Round(time.Millisecond))
	if takeover > 2*time.Second {
		t.Errorf("takeover %v too slow for 35ms hold time", takeover)
	}
}

// TestMeasuredSTPConvergence records spanning tree convergence time on the
// fast (100×) timer profile, for EXPERIMENTS.md.
func TestMeasuredSTPConvergence(t *testing.T) {
	s1 := device.NewSwitch("mc-a", []string{"p1", "p2"}, device.FastTimers())
	s2 := device.NewSwitch("mc-b", []string{"p1", "p2"}, device.FastTimers())
	defer s1.Close()
	defer s2.Close()
	start := time.Now()
	w1 := netsim.Connect(s1.Port("p1"), s2.Port("p1"), nil)
	w2 := netsim.Connect(s1.Port("p2"), s2.Port("p2"), nil)
	defer w1.Disconnect()
	defer w2.Disconnect()

	blocked := func() bool {
		for _, sw := range []*device.Switch{s1, s2} {
			for _, pn := range []string{"p1", "p2"} {
				_, st, _ := sw.PortSTP(pn)
				if st == "BLK" {
					return true
				}
			}
		}
		return false
	}
	deadline := time.Now().Add(5 * time.Second)
	for !blocked() && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if !blocked() {
		t.Fatal("STP never blocked the redundant link")
	}
	t.Logf("STP loop detection (fast timers, hello=20ms): %v", time.Since(start).Round(time.Millisecond))
	// Full forwarding state on the surviving path takes 2× forward delay.
	forwarding := func() bool {
		for _, sw := range []*device.Switch{s1, s2} {
			fwd := 0
			for _, pn := range []string{"p1", "p2"} {
				_, st, _ := sw.PortSTP(pn)
				if st == "FWD" {
					fwd++
				}
			}
			if fwd == 0 {
				return false
			}
		}
		return true
	}
	for !forwarding() && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if !forwarding() {
		t.Fatal("no port reached forwarding")
	}
	t.Logf("surviving path forwarding after: %v (forward delay 60ms × 2)", time.Since(start).Round(time.Millisecond))
}
