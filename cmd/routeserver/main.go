// Command routeserver runs RNL's central back-end: the tunnel endpoint RIS
// agents join (the paper's netlabs.accenture.com) plus the web server with
// the browser UI and the web-services API.
//
// Usage:
//
//	routeserver [-tunnel :9000] [-http :8080] [-compress] [-datagram] [-token T] [-state DIR] [-grace 60s]
package main

import (
	"flag"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served only when -pprof is set
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"rnl/internal/api"
	rnllog "rnl/internal/log"
	"rnl/internal/reservation"
	"rnl/internal/routeserver"
	"rnl/internal/sim"
	"rnl/internal/topology"
)

func main() {
	var (
		tunnelAddr = flag.String("tunnel", ":9000", "address for RIS tunnel connections")
		httpAddr   = flag.String("http", ":8080", "address for the web UI and API")
		compress   = flag.Bool("compress", false, "accept tunnel packet compression")
		datagram   = flag.Bool("datagram", false, "offer the best-effort UDP data plane for PACKET frames (mutually exclusive with compression per session)")
		token      = flag.String("token", "", "API token (empty disables auth)")
		storeDir   = flag.String("store", "", "directory for persisted designs (default <state>/designs when -state is set, else memory only)")
		stateDir   = flag.String("state", "", "directory for durable control-plane state: deployments, inventory, reservations (empty = volatile)")
		grace      = flag.Duration("grace", routeserver.DefaultRouterGracePeriod, "how long a disconnected RIS keeps its identity and labs before GC (0 = drop immediately)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (empty disables)")

		labPPS         = flag.Float64("lab-pps", 0, "per-lab delivered packet rate cap in packets/sec (0 disables per-lab throttling)")
		labBurst       = flag.Float64("lab-burst", 0, "per-lab token-bucket burst (0 = one second's worth of -lab-pps)")
		mutateInFlight = flag.Int("api-mutate-inflight", 0, "max concurrently executing mutating API calls (0 = default)")
		readInFlight   = flag.Int("api-read-inflight", 0, "max concurrently executing read API calls (0 = default)")
		noAdmission    = flag.Bool("no-admission", false, "disable web API admission control and idempotency caching")
	)
	flag.Parse()
	log := rnllog.New(rnllog.Options{W: os.Stderr})
	if *pprofAddr != "" {
		go func() {
			log.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Warn("pprof server stopped", "err", err)
			}
		}()
	}

	graceOpt := *grace
	if graceOpt == 0 {
		graceOpt = routeserver.NoRouterGrace
	}
	if *stateDir != "" {
		if err := os.MkdirAll(*stateDir, 0o755); err != nil {
			log.Error("state dir failed", "dir", *stateDir, "err", err)
			os.Exit(1)
		}
		if *storeDir == "" {
			// Designs ride along in the state dir unless placed explicitly.
			*storeDir = filepath.Join(*stateDir, "designs")
		}
	}

	rs := routeserver.New(routeserver.Options{
		AllowCompression:  *compress,
		Datagram:          *datagram,
		Logger:            log,
		RouterGracePeriod: graceOpt,
		StateDir:          *stateDir,
		LabRateLimit:      *labPPS,
		LabRateBurst:      *labBurst,
	})
	boundTunnel, err := rs.Listen(*tunnelAddr)
	if err != nil {
		log.Error("tunnel listen failed", "err", err)
		os.Exit(1)
	}
	store, err := topology.NewStore(*storeDir)
	if err != nil {
		log.Error("design store failed", "err", err)
		os.Exit(1)
	}
	cal := reservation.New(sim.Real{})
	if *stateDir != "" {
		calPath := filepath.Join(*stateDir, "reservations.json")
		if err := cal.LoadFile(calPath); err != nil {
			log.Warn("reservation reload failed; starting empty", "path", calPath, "err", err)
		}
		cal.OnMutate(func() {
			if err := cal.SaveFile(calPath); err != nil {
				log.Warn("reservation persist failed", "path", calPath, "err", err)
			}
		})
	}
	web := api.NewServer(api.Config{
		RouteServer:    rs,
		Store:          store,
		Calendar:       cal,
		Token:          *token,
		ConsoleTimeout: 10 * time.Second,
		Logger:         log,
		Admission: api.AdmissionConfig{
			Disable:        *noAdmission,
			MutateInFlight: *mutateInFlight,
			ReadInFlight:   *readInFlight,
		},
	})
	boundHTTP, err := web.Listen(*httpAddr)
	if err != nil {
		log.Error("http listen failed", "err", err)
		os.Exit(1)
	}
	log.Info("route server up", "tunnel", boundTunnel, "http", boundHTTP, "compress", *compress, "datagram", *datagram, "state", *stateDir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Info("shutting down")
	web.Close()
	rs.Close()
}
