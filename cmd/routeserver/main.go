// Command routeserver runs RNL's central back-end: the tunnel endpoint RIS
// agents join (the paper's netlabs.accenture.com) plus the web server with
// the browser UI and the web-services API.
//
// Usage:
//
//	routeserver [-tunnel :9000] [-http :8080] [-compress] [-datagram] [-dgram-mtu N]
//	            [-token T] [-tunnel-token T] [-auth-secret S] [-api-keys K=T:R,...]
//	            [-auth-revoke-before RFC3339] [-tenant-max-labs N]
//	            [-tenant-reservation-hours H] [-state DIR] [-grace 60s]
//	            [-wal-fsync always|none|100ms] [-wal-max-bytes N]
//	            [-wal-group-commit] [-deploy-workers N]
//
// The API token may also come from the RNL_TOKEN environment variable
// (the -token flag wins), keeping the secret off argv.
package main

import (
	"flag"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served only when -pprof is set
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"rnl/internal/api"
	"rnl/internal/identity"
	rnllog "rnl/internal/log"
	"rnl/internal/reservation"
	"rnl/internal/routeserver"
	"rnl/internal/sim"
	"rnl/internal/topology"
	"rnl/internal/wal"
)

func main() {
	var (
		tunnelAddr = flag.String("tunnel", ":9000", "address for RIS tunnel connections")
		httpAddr   = flag.String("http", ":8080", "address for the web UI and API")
		compress   = flag.Bool("compress", false, "accept tunnel packet compression")
		datagram   = flag.Bool("datagram", false, "offer the best-effort UDP data plane for PACKET frames (mutually exclusive with compression per session)")
		dgramMTU   = flag.Int("dgram-mtu", 0, "largest PACKET frame allowed on the UDP datagram path before TCP fallback (0 = default 1400; clamp to the path MTU to avoid fragmentation)")
		token      = flag.String("token", "", "legacy shared API secret; a match grants admin (empty = RNL_TOKEN env var, both empty disables)")
		tunnelTok  = flag.String("tunnel-token", "", "shared secret RIS agents present at tunnel join (empty = same as the API token)")
		authSecret = flag.String("auth-secret", "", "HMAC signing secret enabling the identity layer: signed bearer tokens with tenant and role (empty disables)")
		apiKeys    = flag.String("api-keys", "", "static automation credentials as key=tenant:role, comma-separated (requires -auth-secret)")
		maxLabs    = flag.Int("tenant-max-labs", 0, "default per-tenant concurrent-lab quota (0 = unlimited)")
		maxResHrs  = flag.Float64("tenant-reservation-hours", 0, "default per-tenant cap on outstanding reserved router-hours (0 = unlimited)")
		storeDir   = flag.String("store", "", "directory for persisted designs (default <state>/designs when -state is set, else memory only)")
		stateDir   = flag.String("state", "", "directory for durable control-plane state: deployments, inventory, reservations (empty = volatile)")
		walFsync   = flag.String("wal-fsync", "always", "mutation-log fsync policy: always, none, or a flush interval like 100ms")
		walMax     = flag.Int64("wal-max-bytes", 0, "rotate the mutation log into an incremental snapshot once it exceeds this size (0 = default 1 MiB)")
		walGroup   = flag.Bool("wal-group-commit", false, "let concurrent fsync-always log appends share one fsync (group commit); durability per record is unchanged")
		deployWkrs = flag.Int("deploy-workers", 0, "max concurrent console restores per deploy (0 = default 8, 1 = sequential)")
		revokeStr  = flag.String("auth-revoke-before", "", "reject bearer tokens issued before this RFC3339 instant (requires -auth-secret; also settable at runtime via POST /api/auth/revoke-before)")
		grace      = flag.Duration("grace", routeserver.DefaultRouterGracePeriod, "how long a disconnected RIS keeps its identity and labs before GC (0 = drop immediately)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (empty disables)")

		labPPS         = flag.Float64("lab-pps", 0, "per-lab delivered packet rate cap in packets/sec (0 disables per-lab throttling)")
		labBurst       = flag.Float64("lab-burst", 0, "per-lab token-bucket burst (0 = one second's worth of -lab-pps)")
		mutateInFlight = flag.Int("api-mutate-inflight", 0, "max concurrently executing mutating API calls (0 = default)")
		readInFlight   = flag.Int("api-read-inflight", 0, "max concurrently executing read API calls (0 = default)")
		noAdmission    = flag.Bool("no-admission", false, "disable web API admission control and idempotency caching")
	)
	flag.Parse()
	log := rnllog.New(rnllog.Options{W: os.Stderr})
	// Secrets come from the environment when flags are unset: argv is
	// world-readable via ps/procfs, the environment is not.
	apiToken := identity.ResolveToken(*token)
	tunnelToken := *tunnelTok
	if tunnelToken == "" {
		tunnelToken = apiToken
	}
	var ident *identity.Authority
	if *authSecret != "" {
		var err error
		ident, err = identity.New([]byte(*authSecret), nil)
		if err != nil {
			log.Error("identity authority failed", "err", err)
			os.Exit(1)
		}
		for _, spec := range strings.Split(*apiKeys, ",") {
			if spec = strings.TrimSpace(spec); spec == "" {
				continue
			}
			key, claim, ok := strings.Cut(spec, "=")
			if !ok {
				log.Error("bad -api-keys entry; want key=tenant:role", "entry", identity.Redacted(spec))
				os.Exit(1)
			}
			tenant, role, ok := strings.Cut(claim, ":")
			if !ok {
				log.Error("bad -api-keys entry; want key=tenant:role", "entry", identity.Redacted(spec))
				os.Exit(1)
			}
			if err := ident.AddAPIKey(key, identity.Claims{Tenant: tenant, Role: identity.Role(role)}); err != nil {
				log.Error("registering API key", "tenant", tenant, "err", err)
				os.Exit(1)
			}
		}
	} else if *apiKeys != "" {
		log.Error("-api-keys requires -auth-secret")
		os.Exit(1)
	}
	if *revokeStr != "" {
		if ident == nil {
			log.Error("-auth-revoke-before requires -auth-secret")
			os.Exit(1)
		}
		cutoff, err := time.Parse(time.RFC3339, *revokeStr)
		if err != nil {
			log.Error("bad -auth-revoke-before; want RFC3339", "err", err)
			os.Exit(1)
		}
		ident.SetRevokeBefore(cutoff)
	}
	fsyncPolicy, fsyncInterval, err := wal.ParsePolicy(*walFsync)
	if err != nil {
		log.Error("bad -wal-fsync", "err", err)
		os.Exit(1)
	}
	var quotas *identity.Quotas
	if *maxLabs > 0 || *maxResHrs > 0 {
		quotas = identity.NewQuotas(identity.Quota{MaxConcurrentLabs: *maxLabs, ReservationHours: *maxResHrs})
	}
	if *pprofAddr != "" {
		go func() {
			log.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Warn("pprof server stopped", "err", err)
			}
		}()
	}

	graceOpt := *grace
	if graceOpt == 0 {
		graceOpt = routeserver.NoRouterGrace
	}
	if *stateDir != "" {
		if err := os.MkdirAll(*stateDir, 0o755); err != nil {
			log.Error("state dir failed", "dir", *stateDir, "err", err)
			os.Exit(1)
		}
		if *storeDir == "" {
			// Designs ride along in the state dir unless placed explicitly.
			*storeDir = filepath.Join(*stateDir, "designs")
		}
	}

	rs := routeserver.New(routeserver.Options{
		AllowCompression:  *compress,
		Datagram:          *datagram,
		DatagramMTU:       *dgramMTU,
		Logger:            log,
		RouterGracePeriod: graceOpt,
		StateDir:          *stateDir,
		WALFsync:          fsyncPolicy,
		WALFsyncInterval:  fsyncInterval,
		WALMaxBytes:       *walMax,
		WALGroupCommit:    *walGroup,
		LabRateLimit:      *labPPS,
		LabRateBurst:      *labBurst,
		TunnelToken:       tunnelToken,
		Identity:          ident,
	})
	boundTunnel, err := rs.Listen(*tunnelAddr)
	if err != nil {
		log.Error("tunnel listen failed", "err", err)
		os.Exit(1)
	}
	store, err := topology.NewStore(*storeDir)
	if err != nil {
		log.Error("design store failed", "err", err)
		os.Exit(1)
	}
	cal := reservation.New(sim.Real{})
	var calStore *wal.Store
	if *stateDir != "" {
		// The calendar gets the same crash-consistency treatment as the
		// route server: snapshot + append-ahead log instead of a full
		// rewrite on every mutation. An unreadable snapshot or log is
		// downgraded to a warning — scheduling continues from memory.
		calStore, err = wal.OpenStore(
			filepath.Join(*stateDir, "reservations.json"),
			filepath.Join(*stateDir, "reservations.wal"),
			wal.Options{Policy: fsyncPolicy, Interval: fsyncInterval, MaxBytes: *walMax},
		)
		if err != nil {
			log.Warn("reservation store failed; calendar is volatile", "err", err)
			calStore = nil
		} else if err := cal.AttachStore(calStore, func(err error) {
			log.Warn("reservation persist failed", "err", err)
		}); err != nil {
			log.Warn("reservation recovery failed; calendar is volatile", "err", err)
			calStore.Close()
			calStore = nil
		}
	}
	web := api.NewServer(api.Config{
		RouteServer:    rs,
		Store:          store,
		Calendar:       cal,
		Token:          apiToken,
		Identity:       ident,
		Quotas:         quotas,
		ConsoleTimeout: 10 * time.Second,
		DeployWorkers:  *deployWkrs,
		Logger:         log,
		Admission: api.AdmissionConfig{
			Disable:        *noAdmission,
			MutateInFlight: *mutateInFlight,
			ReadInFlight:   *readInFlight,
		},
	})
	boundHTTP, err := web.Listen(*httpAddr)
	if err != nil {
		log.Error("http listen failed", "err", err)
		os.Exit(1)
	}
	log.Info("route server up", "tunnel", boundTunnel, "http", boundHTTP,
		"compress", *compress, "datagram", *datagram, "state", *stateDir,
		"token", identity.Redacted(apiToken), "identity", ident != nil)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Info("shutting down")
	web.Close()
	rs.Close()
	if calStore != nil {
		// Fold the reservation log into a final snapshot so the next boot
		// restores without replay.
		if err := cal.Checkpoint(calStore); err != nil {
			log.Warn("reservation final checkpoint failed", "err", err)
		}
		calStore.Close()
	}
}
