// Command routeserver runs RNL's central back-end: the tunnel endpoint RIS
// agents join (the paper's netlabs.accenture.com) plus the web server with
// the browser UI and the web-services API.
//
// Usage:
//
//	routeserver [-tunnel :9000] [-http :8080] [-compress] [-token T] [-store DIR]
package main

import (
	"flag"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served only when -pprof is set
	"os"
	"os/signal"
	"syscall"
	"time"

	"rnl/internal/api"
	"rnl/internal/reservation"
	"rnl/internal/routeserver"
	"rnl/internal/sim"
	"rnl/internal/topology"
)

func main() {
	var (
		tunnelAddr = flag.String("tunnel", ":9000", "address for RIS tunnel connections")
		httpAddr   = flag.String("http", ":8080", "address for the web UI and API")
		compress   = flag.Bool("compress", false, "accept tunnel packet compression")
		token      = flag.String("token", "", "API token (empty disables auth)")
		storeDir   = flag.String("store", "", "directory for persisted designs (empty = memory only)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (empty disables)")
	)
	flag.Parse()
	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if *pprofAddr != "" {
		go func() {
			log.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Warn("pprof server stopped", "err", err)
			}
		}()
	}

	rs := routeserver.New(routeserver.Options{AllowCompression: *compress, Logger: log})
	boundTunnel, err := rs.Listen(*tunnelAddr)
	if err != nil {
		log.Error("tunnel listen failed", "err", err)
		os.Exit(1)
	}
	store, err := topology.NewStore(*storeDir)
	if err != nil {
		log.Error("design store failed", "err", err)
		os.Exit(1)
	}
	web := api.NewServer(api.Config{
		RouteServer:    rs,
		Store:          store,
		Calendar:       reservation.New(sim.Real{}),
		Token:          *token,
		ConsoleTimeout: 10 * time.Second,
		Logger:         log,
	})
	boundHTTP, err := web.Listen(*httpAddr)
	if err != nil {
		log.Error("http listen failed", "err", err)
		os.Exit(1)
	}
	log.Info("route server up", "tunnel", boundTunnel, "http", boundHTTP, "compress", *compress)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Info("shutting down")
	web.Close()
	rs.Close()
}
