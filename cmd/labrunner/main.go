// Command labrunner executes a suite of automated network configuration
// tests against an RNL server — the paper's "nightly unit test" (§3.2):
// run it from cron, read the log in the morning, and know whether the
// configuration change can roll out.
//
// The suite is a JSON file:
//
//	{
//	  "tests": [
//	    {
//	      "name": "subnet A isolated from subnet B",
//	      "design": "fig6",
//	      "user": "nightly",
//	      "steps": [
//	        {"kind": "console", "router": "fig6-r1", "commands": ["enable", "show ip route"]},
//	        {"kind": "wait", "ms": 500},
//	        {"kind": "probe",
//	         "inject_router": "fig6-r3", "inject_port": "e2",
//	         "expect_router": "fig6-r4", "expect_port": "e2",
//	         "udp": {"src_mac": "02:00:00:00:00:01", "dst_mac": "02:00:00:00:00:02",
//	                 "src_ip": "10.1.0.2", "dst_ip": "10.2.0.2",
//	                 "src_port": 7, "dst_port": 9999, "payload": "nightly-probe"},
//	         "expect": false, "within_ms": 1500}
//	      ]
//	    }
//	  ]
//	}
//
// Usage:
//
//	labrunner -server http://host:8080 -suite nightly.json [-token T]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served only when -pprof is set
	"os"
	"time"

	"rnl/internal/api"
	"rnl/internal/autotest"
	"rnl/internal/packet"
)

// udpSpec describes a probe frame to build.
type udpSpec struct {
	SrcMAC  string `json:"src_mac"`
	DstMAC  string `json:"dst_mac"`
	SrcIP   string `json:"src_ip"`
	DstIP   string `json:"dst_ip"`
	SrcPort uint16 `json:"src_port"`
	DstPort uint16 `json:"dst_port"`
	Payload string `json:"payload"`
}

func (u *udpSpec) build() ([]byte, error) {
	srcMAC, err := net.ParseMAC(u.SrcMAC)
	if err != nil {
		return nil, fmt.Errorf("src_mac: %w", err)
	}
	dstMAC, err := net.ParseMAC(u.DstMAC)
	if err != nil {
		return nil, fmt.Errorf("dst_mac: %w", err)
	}
	srcIP, dstIP := net.ParseIP(u.SrcIP), net.ParseIP(u.DstIP)
	if srcIP == nil || dstIP == nil {
		return nil, fmt.Errorf("bad src_ip/dst_ip %q/%q", u.SrcIP, u.DstIP)
	}
	return packet.BuildUDP(srcMAC, dstMAC, srcIP, dstIP, u.SrcPort, u.DstPort, []byte(u.Payload))
}

// stepSpec is one step in the suite file.
type stepSpec struct {
	Kind string `json:"kind"` // console | wait | probe

	// console
	Router   string   `json:"router,omitempty"`
	Commands []string `json:"commands,omitempty"`

	// wait
	MS int `json:"ms,omitempty"`

	// probe
	InjectRouter string   `json:"inject_router,omitempty"`
	InjectPort   string   `json:"inject_port,omitempty"`
	FromPort     bool     `json:"from_port,omitempty"`
	ExpectRouter string   `json:"expect_router,omitempty"`
	ExpectPort   string   `json:"expect_port,omitempty"`
	UDP          *udpSpec `json:"udp,omitempty"`
	MatchPayload string   `json:"match_payload,omitempty"`
	Expect       bool     `json:"expect"`
	WithinMS     int      `json:"within_ms,omitempty"`
	Count        int      `json:"count,omitempty"`
}

func (s *stepSpec) toStep() (autotest.Step, error) {
	switch s.Kind {
	case "console":
		if s.Router == "" || len(s.Commands) == 0 {
			return nil, fmt.Errorf("console step needs router and commands")
		}
		return autotest.Console{Router: s.Router, Commands: s.Commands}, nil
	case "wait":
		return autotest.Wait{Duration: time.Duration(s.MS) * time.Millisecond}, nil
	case "probe":
		if s.UDP == nil {
			return nil, fmt.Errorf("probe step needs a udp frame spec")
		}
		frame, err := s.UDP.build()
		if err != nil {
			return nil, fmt.Errorf("probe frame: %w", err)
		}
		match := autotest.MatchUDPPayload([]byte(s.UDP.Payload))
		if s.MatchPayload != "" {
			match = autotest.MatchUDPPayload([]byte(s.MatchPayload))
		}
		p := autotest.Probe{
			Name:         fmt.Sprintf("%s.%s->%s.%s", s.InjectRouter, s.InjectPort, s.ExpectRouter, s.ExpectPort),
			InjectRouter: s.InjectRouter, InjectPort: s.InjectPort,
			FromPort: s.FromPort, Frame: frame, Count: s.Count,
			ExpectRouter: s.ExpectRouter, ExpectPort: s.ExpectPort,
			Match: match, Expect: s.Expect,
			Within: time.Duration(s.WithinMS) * time.Millisecond,
		}
		return p, nil
	default:
		return nil, fmt.Errorf("unknown step kind %q", s.Kind)
	}
}

// testSpec is one test case in the suite file.
type testSpec struct {
	Name           string     `json:"name"`
	Design         string     `json:"design,omitempty"`
	User           string     `json:"user,omitempty"`
	RestoreConfigs bool       `json:"restore_configs,omitempty"`
	Steps          []stepSpec `json:"steps"`
}

// suiteSpec is the whole file.
type suiteSpec struct {
	Tests []testSpec `json:"tests"`
}

func main() {
	var (
		server    = flag.String("server", "http://127.0.0.1:8080", "RNL web server URL")
		token     = flag.String("token", "", "API token")
		suite     = flag.String("suite", "nightly.json", "suite file")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (empty disables)")
	)
	flag.Parse()
	if *pprofAddr != "" {
		go http.ListenAndServe(*pprofAddr, nil)
	}

	raw, err := os.ReadFile(*suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "labrunner: reading suite: %v\n", err)
		os.Exit(2)
	}
	var spec suiteSpec
	if err := json.Unmarshal(raw, &spec); err != nil {
		fmt.Fprintf(os.Stderr, "labrunner: parsing suite: %v\n", err)
		os.Exit(2)
	}
	var cases []autotest.TestCase
	for _, ts := range spec.Tests {
		tc := autotest.TestCase{
			Name: ts.Name, Design: ts.Design, User: ts.User, RestoreConfigs: ts.RestoreConfigs,
		}
		for i, ss := range ts.Steps {
			step, err := ss.toStep()
			if err != nil {
				fmt.Fprintf(os.Stderr, "labrunner: test %q step %d: %v\n", ts.Name, i, err)
				os.Exit(2)
			}
			tc.Steps = append(tc.Steps, step)
		}
		cases = append(cases, tc)
	}

	runner := &autotest.Runner{Client: api.NewClient(*server, *token), Log: os.Stderr}
	results := runner.RunSuite(cases)
	autotest.WriteReport(os.Stdout, results)
	for _, res := range results {
		if !res.Passed {
			os.Exit(1)
		}
	}
}
