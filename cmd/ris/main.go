// Command ris runs a Router Interface Software agent: the lab-PC process
// that fronts network equipment and joins it to the labs (paper §2.2).
//
// Because this reproduction has no physical routers, the agent also stands
// up the emulated equipment it fronts, described by a JSON config file:
//
//	{
//	  "server": "127.0.0.1:9000",
//	  "pc_name": "pc-sanjose-1",
//	  "compress": true,
//	  "datagram": false,
//	  "devices": [
//	    {"kind": "host",   "name": "s1",  "ip": "10.0.0.1/24", "gateway": "10.0.0.254"},
//	    {"kind": "router", "name": "r1",  "ports": ["e0", "e1"]},
//	    {"kind": "switch", "name": "sw1", "ports": ["Gi0/1", "Gi0/2", "Gi0/3"]},
//	    {"kind": "fwsm",   "name": "fw1", "unit": 1}
//	  ]
//	}
//
// Usage:
//
//	ris -config ris.json [-fast]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served only when -pprof is set
	"os"
	"os/signal"
	rnllog "rnl/internal/log"
	"syscall"

	"rnl/internal/device"
	"rnl/internal/identity"
	"rnl/internal/netsim"
	"rnl/internal/ris"
)

// deviceSpec is one piece of equipment in the config file.
type deviceSpec struct {
	Kind    string   `json:"kind"` // host | router | switch | fwsm
	Name    string   `json:"name"`
	IP      string   `json:"ip,omitempty"`      // host: "a.b.c.d/len"
	Gateway string   `json:"gateway,omitempty"` // host
	Ports   []string `json:"ports,omitempty"`   // router/switch
	Unit    uint32   `json:"unit,omitempty"`    // fwsm
}

// fileConfig is the ris.json schema.
type fileConfig struct {
	Server   string `json:"server"`
	PCName   string `json:"pc_name"`
	Compress bool   `json:"compress"`
	Datagram bool   `json:"datagram"`
	// DgramMTU caps frames on the UDP datagram path (0 = default 1400).
	DgramMTU int `json:"dgram_mtu,omitempty"`
	// Token authenticates the tunnel join. Prefer the RNL_TOKEN
	// environment variable (or the -token flag) over storing the secret
	// in the config file.
	Token   string       `json:"token,omitempty"`
	Devices []deviceSpec `json:"devices"`
}

// buildDevice stands up one emulated device and returns its RIS router
// definition plus a shutdown func.
func buildDevice(spec deviceSpec, timers device.Timers) (ris.RouterDef, func(), error) {
	var (
		def   ris.RouterDef
		stops []func()
	)
	stop := func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}
	type consoled interface {
		Port(string) *netsim.Iface
		Close()
	}
	var (
		dev       consoled
		portNames []string
		model     string
		attach    func(io.ReadWriter)
	)
	switch spec.Kind {
	case "host":
		h := device.NewHost(spec.Name, timers)
		ip, mask, err := parseCIDR(spec.IP)
		if err != nil {
			h.Close()
			return def, nil, fmt.Errorf("host %s: %w", spec.Name, err)
		}
		var gw net.IP
		if spec.Gateway != "" {
			gw = net.ParseIP(spec.Gateway)
			if gw == nil {
				h.Close()
				return def, nil, fmt.Errorf("host %s: bad gateway %q", spec.Name, spec.Gateway)
			}
		}
		if err := h.Configure(ip, mask, gw); err != nil {
			h.Close()
			return def, nil, err
		}
		dev, portNames, model = h, []string{"eth0"}, "Linux Server"
		attach = func(rw io.ReadWriter) { device.AttachConsole(h, rw) }
	case "router":
		if len(spec.Ports) == 0 {
			return def, nil, fmt.Errorf("router %s: needs ports", spec.Name)
		}
		r := device.NewRouter(spec.Name, spec.Ports, timers)
		dev, portNames, model = r, spec.Ports, "7200 Series"
		attach = func(rw io.ReadWriter) { device.AttachConsole(r, rw) }
	case "switch":
		if len(spec.Ports) == 0 {
			return def, nil, fmt.Errorf("switch %s: needs ports", spec.Name)
		}
		s := device.NewSwitch(spec.Name, spec.Ports, timers)
		dev, portNames, model = s, spec.Ports, "Catalyst 6500"
		attach = func(rw io.ReadWriter) { device.AttachConsole(s, rw) }
	case "fwsm":
		unit := spec.Unit
		if unit == 0 {
			unit = 1
		}
		f := device.NewFWSM(spec.Name, unit, timers)
		dev, portNames, model = f, []string{"inside", "outside", "fail"}, "FWSM"
		attach = func(rw io.ReadWriter) { device.AttachConsole(f, rw) }
	default:
		return def, nil, fmt.Errorf("unknown device kind %q", spec.Kind)
	}
	stops = append(stops, dev.Close)

	def = ris.RouterDef{Name: spec.Name, Model: model, Description: spec.Kind + " " + spec.Name}
	for _, pn := range portNames {
		nic := netsim.NewIface(spec.Name + "/" + pn)
		w := netsim.Connect(dev.Port(pn), nic, nil)
		stops = append(stops, w.Disconnect)
		def.Ports = append(def.Ports, ris.PortMap{Name: pn, NIC: nic, Description: pn})
	}
	sp := netsim.NewSerialPort()
	stops = append(stops, sp.Close)
	go attach(sp.DeviceEnd)
	def.Console = sp.PCEnd
	return def, stop, nil
}

func parseCIDR(s string) (net.IP, net.IPMask, error) {
	ip, ipnet, err := net.ParseCIDR(s)
	if err != nil {
		return nil, nil, fmt.Errorf("bad CIDR %q: %w", s, err)
	}
	return ip.To4(), ipnet.Mask, nil
}

func main() {
	var (
		configPath = flag.String("config", "ris.json", "path to the RIS configuration")
		fast       = flag.Bool("fast", false, "use fast protocol timers (demos)")
		token      = flag.String("token", "", "tunnel join credential (empty = RNL_TOKEN env var, then the config file's token)")
		dgramMTU   = flag.Int("dgram-mtu", 0, "largest frame allowed on the UDP datagram path before TCP fallback (0 = config file, then default 1400)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (empty disables)")
	)
	flag.Parse()
	log := rnllog.New(rnllog.Options{W: os.Stderr})
	if *pprofAddr != "" {
		go func() {
			log.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Warn("pprof server stopped", "err", err)
			}
		}()
	}

	raw, err := os.ReadFile(*configPath)
	if err != nil {
		log.Error("reading config", "err", err)
		os.Exit(1)
	}
	var fc fileConfig
	if err := json.Unmarshal(raw, &fc); err != nil {
		log.Error("parsing config", "err", err)
		os.Exit(1)
	}
	timers := device.DefaultTimers()
	if *fast {
		timers = device.FastTimers()
	}
	// Flag beats environment beats config file for the credential, so
	// the secret can stay out of both argv and the on-disk config.
	joinToken := identity.ResolveToken(*token)
	if joinToken == "" {
		joinToken = fc.Token
	}
	mtu := *dgramMTU
	if mtu == 0 {
		mtu = fc.DgramMTU
	}
	cfg := ris.Config{
		ServerAddr: fc.Server, PCName: fc.PCName,
		Compress: fc.Compress, Datagram: fc.Datagram,
		Token: joinToken, DatagramMTU: mtu,
	}
	var stops []func()
	defer func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}()
	for _, spec := range fc.Devices {
		def, stop, err := buildDevice(spec, timers)
		if err != nil {
			log.Error("building device", "err", err)
			os.Exit(1)
		}
		stops = append(stops, stop)
		cfg.Routers = append(cfg.Routers, def)
	}
	agent, err := ris.New(cfg, log)
	if err != nil {
		log.Error("invalid configuration", "err", err)
		os.Exit(1)
	}
	log.Info("joining labs", "server", fc.Server, "devices", len(cfg.Routers))

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		cancel()
	}()
	agent.Run(ctx)
}
