// Command rnlctl is the command-line client for RNL's web-services API —
// everything the browser UI can do, scriptable (paper §3.2).
//
// Usage:
//
//	rnlctl [-server http://host:8080] [-token T] <command> [args]
//
// The credential may be a legacy shared secret, a signed bearer token,
// or a static API key; prefer passing it via the RNL_TOKEN environment
// variable (the -token flag overrides it) so it stays off argv. Against
// a multi-tenant server, tenant-role credentials act only on their own
// reservations, deployments and consoles; "whoami" shows what the
// server resolved the credential to.
//
// Commands:
//
//	whoami                             show the authenticated tenant and role
//	inventory                          list registered routers and ports
//	stats                              observability snapshot (route server + rnl_* metrics, JSON)
//	designs                            list saved designs
//	design-get <name>                  print a design as JSON
//	design-save <file.json>            save a design from a JSON file
//	design-delete <name>               delete a saved design
//	save-configs <design>              dump router configs into a design
//	reserve <user> <minutes> <router...>  book routers starting now
//	next-free <minutes> <router...>    find the next common free slot
//	schedule <router>                  show a router's bookings
//	deploy <design> <user> [restore]   deploy a saved design
//	teardown <design>                  tear a deployment down
//	deployments                        list active deployments
//	console <router> <command...>      run console commands
//	attach <router>                    interactive console (VT100-style)
//	flash <router> <version>           load a firmware version via console
//	generate <router> <port> <hexframe> [from-port]  inject a frame
//	capture <router> <port> <seconds>  capture and print frames
//	pcap <router> <port> <seconds> <file.pcap>  capture to a pcap file
//	stream <router> <port> <hexframe> <pps> <count>  rate-controlled generation
package main

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"rnl/internal/admission"
	"rnl/internal/api"
	"rnl/internal/identity"
	"rnl/internal/sim"
	"rnl/internal/topology"
)

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rnlctl: "+format+"\n", args...)
	os.Exit(1)
}

func printJSON(v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatal("encoding output: %v", err)
	}
	fmt.Println(string(b))
}

func main() {
	var (
		server = flag.String("server", "http://127.0.0.1:8080", "RNL web server URL")
		token  = flag.String("token", "", "API credential: shared secret, signed bearer token or API key (empty = RNL_TOKEN env var)")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fatal("missing command; see -h")
	}
	// The flag wins over RNL_TOKEN; prefer the environment in scripts so
	// the credential never shows up in process listings or shell history.
	c := api.NewClient(*server, identity.ResolveToken(*token))
	cmd, rest := args[0], args[1:]

	switch cmd {
	case "whoami":
		who, err := c.WhoAmI()
		if err != nil {
			fatal("%v", err)
		}
		printJSON(who)
	case "inventory":
		inv, err := c.Inventory()
		if err != nil {
			fatal("%v", err)
		}
		for _, r := range inv {
			state := "online"
			if !r.Online {
				state = "offline"
			}
			fmt.Printf("%-4d %-20s %-16s fw=%-8s pc=%-14s ports=%d console=%v %s\n",
				r.ID, r.Name, r.Model, r.Firmware, r.PC, len(r.Ports), r.HasConsole, state)
		}
	case "stats":
		st, err := c.Stats()
		if err != nil {
			fatal("%v", err)
		}
		printJSON(st)
	case "designs":
		names, err := c.Designs()
		if err != nil {
			fatal("%v", err)
		}
		for _, n := range names {
			fmt.Println(n)
		}
	case "design-get":
		need(rest, 1, "design-get <name>")
		d, err := c.GetDesign(rest[0])
		if err != nil {
			fatal("%v", err)
		}
		printJSON(d)
	case "design-save":
		need(rest, 1, "design-save <file.json>")
		f, err := os.Open(rest[0])
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		d, err := topology.Import(f)
		if err != nil {
			fatal("%v", err)
		}
		if err := c.SaveDesign(d); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("saved design %q\n", d.Name)
	case "design-delete":
		need(rest, 1, "design-delete <name>")
		if err := c.DeleteDesign(rest[0]); err != nil {
			fatal("%v", err)
		}
	case "save-configs":
		need(rest, 1, "save-configs <design>")
		d, err := c.SaveConfigs(rest[0])
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("saved configurations for %d routers\n", len(d.Configs))
	case "reserve":
		if len(rest) < 3 {
			fatal("usage: reserve <user> <minutes> <router...>")
		}
		mins, err := strconv.Atoi(rest[1])
		if err != nil {
			fatal("bad minutes %q", rest[1])
		}
		res, err := c.Reserve(api.ReserveRequest{
			User: rest[0], Routers: rest[2:],
			Start: time.Now(), End: time.Now().Add(time.Duration(mins) * time.Minute),
		})
		if err != nil {
			fatal("%v", err)
		}
		for _, r := range res {
			fmt.Printf("reservation %d: %s until %s\n", r.ID, r.Router, r.End.Format(time.RFC3339))
		}
	case "next-free":
		if len(rest) < 2 {
			fatal("usage: next-free <minutes> <router...>")
		}
		mins, err := strconv.Atoi(rest[0])
		if err != nil {
			fatal("bad minutes %q", rest[0])
		}
		start, err := c.NextFree(api.NextFreeRequest{
			Routers: rest[1:], Duration: time.Duration(mins) * time.Minute,
		})
		if err != nil {
			fatal("%v", err)
		}
		fmt.Println(start.Format(time.RFC3339))
	case "schedule":
		need(rest, 1, "schedule <router>")
		sched, err := c.Schedule(rest[0])
		if err != nil {
			fatal("%v", err)
		}
		printJSON(sched)
	case "deploy":
		if len(rest) < 2 {
			fatal("usage: deploy <design> <user> [restore]")
		}
		req := api.DeployRequest{Design: rest[0], User: rest[1]}
		if len(rest) > 2 && rest[2] == "restore" {
			req.RestoreConfigs = true
		}
		if err := c.Deploy(req); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("deployed %q\n", rest[0])
	case "teardown":
		need(rest, 1, "teardown <design>")
		if err := c.Teardown(rest[0]); err != nil {
			fatal("%v", err)
		}
	case "deployments":
		deps, err := c.Deployments()
		if err != nil {
			fatal("%v", err)
		}
		printJSON(deps)
	case "console":
		if len(rest) < 2 {
			fatal("usage: console <router> <command...>")
		}
		outs, err := c.ConsoleExec(api.ConsoleExecRequest{Router: rest[0], Commands: rest[1:]})
		if err != nil {
			fatal("%v", err)
		}
		for i, out := range outs {
			fmt.Printf("> %s\n%s\n", rest[1+i], out)
		}
	case "attach":
		need(rest, 1, "attach <router>")
		conn, err := c.AttachConsole(rest[0])
		if err != nil {
			fatal("%v", err)
		}
		defer conn.Close()
		fmt.Fprintf(os.Stderr, "attached to %s console; Ctrl-D to detach\n", rest[0])
		done := make(chan struct{}, 2)
		go func() { io.Copy(os.Stdout, conn); done <- struct{}{} }()
		go func() { io.Copy(conn, os.Stdin); done <- struct{}{} }()
		<-done
	case "flash":
		need(rest, 2, "flash <router> <version>")
		if err := c.FlashFirmware(rest[0], rest[1]); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("flashed %s to %s\n", rest[0], rest[1])
	case "generate":
		if len(rest) < 3 {
			fatal("usage: generate <router> <port> <hexframe> [from-port]")
		}
		frame, err := hex.DecodeString(strings.ReplaceAll(rest[2], ":", ""))
		if err != nil {
			fatal("bad hex frame: %v", err)
		}
		req := api.GenerateRequest{Router: rest[0], Port: rest[1], Frame: frame}
		if len(rest) > 3 && rest[3] == "from-port" {
			req.FromPort = true
		}
		if err := c.Generate(req); err != nil {
			fatal("%v", err)
		}
	case "capture":
		if len(rest) < 3 {
			fatal("usage: capture <router> <port> <seconds>")
		}
		secs, err := strconv.Atoi(rest[2])
		if err != nil {
			fatal("bad seconds %q", rest[2])
		}
		id, err := c.OpenCapture(api.CaptureRequest{Router: rest[0], Port: rest[1]})
		if err != nil {
			fatal("%v", err)
		}
		defer c.CloseCapture(id)
		deadline := time.Now().Add(time.Duration(secs) * time.Second)
		for time.Now().Before(deadline) {
			frames, err := c.ReadCapture(id, 100, time.Second)
			if err != nil {
				fatal("%v", err)
			}
			for _, f := range frames {
				fmt.Printf("%s %-9s %d bytes  %s\n",
					f.When.Format("15:04:05.000"), f.Dir, len(f.Frame), hex.EncodeToString(f.Frame))
			}
		}
	case "pcap":
		if len(rest) < 4 {
			fatal("usage: pcap <router> <port> <seconds> <file.pcap>")
		}
		secs, err := strconv.Atoi(rest[2])
		if err != nil {
			fatal("bad seconds %q", rest[2])
		}
		id, err := c.OpenCapture(api.CaptureRequest{Router: rest[0], Port: rest[1], Depth: 4096})
		if err != nil {
			fatal("%v", err)
		}
		defer c.CloseCapture(id)
		raw, err := c.DownloadPcap(id, 1<<20, time.Duration(secs)*time.Second)
		if err != nil {
			fatal("%v", err)
		}
		if err := os.WriteFile(rest[3], raw, 0o644); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("wrote %d bytes to %s\n", len(raw), rest[3])
	case "stream":
		if len(rest) < 5 {
			fatal("usage: stream <router> <port> <hexframe> <pps> <count>")
		}
		frame, err := hex.DecodeString(strings.ReplaceAll(rest[2], ":", ""))
		if err != nil {
			fatal("bad hex frame: %v", err)
		}
		pps, err1 := strconv.Atoi(rest[3])
		count, err2 := strconv.Atoi(rest[4])
		if err1 != nil || err2 != nil {
			fatal("bad pps/count")
		}
		id, err := c.StartStream(api.StreamRequest{
			Router: rest[0], Port: rest[1], Frame: frame, PPS: pps, Count: count,
		})
		if err != nil {
			fatal("%v", err)
		}
		// Poll with jittered backoff on one reused timer instead of a
		// fixed 500ms sleep: short streams finish after one quick check,
		// long ones settle toward gentle polling, and a fleet of scripted
		// clients never synchronizes its status requests. Ctrl-C stops
		// watching without killing the server-side stream.
		ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stopSignals()
		poll := sim.NewOneShot(sim.Real{})
		defer poll.Stop()
		for attempt := 0; ; attempt++ {
			st, err := c.StreamStatus(id)
			if err != nil {
				fatal("%v", err)
			}
			fmt.Printf("stream %d: sent %d\n", id, st.Sent)
			if !st.Running {
				break
			}
			poll.Arm(admission.Backoff(attempt, 200*time.Millisecond, 2*time.Second))
			select {
			case <-ctx.Done():
				fmt.Fprintf(os.Stderr, "rnlctl: interrupted; stream %d keeps running server-side\n", id)
				os.Exit(130)
			case <-poll.C:
			}
		}
	default:
		fatal("unknown command %q", cmd)
	}
}

func need(rest []string, n int, usage string) {
	if len(rest) < n {
		fatal("usage: %s", usage)
	}
}
