package rnl

// End-to-end smoke for the best-effort datagram data plane (tunnel
// transport v2): negotiation over the TCP handshake, hole punching,
// PACKET delivery over UDP, loss accounting, and the compression
// exclusion.

import (
	"testing"
	"time"

	"rnl/internal/netsim"
	"rnl/internal/ris"
	"rnl/internal/routeserver"
)

// newDgramPair is newTunnelPair with the datagram plane negotiated.
// lossAll drops every server→RIS datagram via the loss hook (the agents'
// uplink datagrams are unaffected). compress requests compression too —
// the server must then refuse the datagram offer.
func newDgramPair(tb testing.TB, compress, lossAll bool) (*tunnelPair, []*ris.Agent) {
	tb.Helper()
	tp := &tunnelPair{}
	opts := routeserver.Options{
		AllowCompression: compress,
		Datagram:         true,
		Logger:           quietLogger(),
	}
	if lossAll {
		opts.DatagramLoss = func() bool { return true }
	}
	s := routeserver.New(opts)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	tp.Server = s
	tp.closers = append(tp.closers, s.Close)

	var agents []*ris.Agent
	join := func(name string) (*netsim.Iface, routeserver.PortKey) {
		dev := netsim.NewIface(name + "-dev")
		nic := netsim.NewIface(name + "-nic")
		w := netsim.Connect(dev, nic, nil)
		tp.closers = append(tp.closers, w.Disconnect)
		a, err := ris.New(ris.Config{
			ServerAddr: addr,
			PCName:     "pc-" + name,
			Compress:   compress,
			Datagram:   true,
			Routers: []ris.RouterDef{{
				Name:  name,
				Ports: []ris.PortMap{{Name: "p0", NIC: nic}},
			}},
		}, quietLogger())
		if err != nil {
			tb.Fatal(err)
		}
		if err := a.Start(); err != nil {
			tb.Fatal(err)
		}
		tp.closers = append(tp.closers, a.Close)
		agents = append(agents, a)
		rid, pid, ok := a.PortID(name, "p0")
		if !ok {
			tb.Fatal("no port ID")
		}
		return dev, routeserver.PortKey{Router: rid, Port: pid}
	}
	tp.A, tp.PKA = join("dgram-a")
	tp.B, tp.PKB = join("dgram-b")
	tp.B.SetReceiver(func(f []byte) {
		tp.received.Add(1)
		if cb := tp.onRecvB.Load(); cb != nil {
			(*cb)(f)
		}
	})
	if err := s.Deploy("dgram", []routeserver.Link{{A: tp.PKA, B: tp.PKB}}); err != nil {
		tb.Fatal(err)
	}
	return tp, agents
}

// waitDgramReady blocks until every agent's punch is acknowledged and
// the server sees every peer established.
func waitDgramReady(tb testing.TB, tp *tunnelPair, agents []*ris.Agent) {
	tb.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ready := tp.Server.DatagramPeers() == len(agents)
		for _, a := range agents {
			ready = ready && a.DatagramReady()
		}
		if ready {
			return
		}
		if time.Now().After(deadline) {
			tb.Fatalf("datagram paths never established: server peers %d/%d",
				tp.Server.DatagramPeers(), len(agents))
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDatagramSmoke negotiates the UDP data plane end to end and drives
// frames A→B across it: agent uplink datagram in, server downlink
// datagram out. Delivery is best-effort, so the test keeps transmitting
// until enough frames land rather than demanding zero loopback loss.
func TestDatagramSmoke(t *testing.T) {
	tp, agents := newDgramPair(t, false, false)
	defer tp.Close()
	waitDgramReady(t, tp, agents)

	frame := make([]byte, 64)
	const want = 10
	deadline := time.Now().Add(5 * time.Second)
	for tp.Received() < want {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d/%d frames over the datagram plane", tp.Received(), want)
		}
		tp.A.Transmit(frame)
		time.Sleep(200 * time.Microsecond)
	}
	if fwd := tp.Server.StatsSnapshot()["packets_forwarded"]; fwd == 0 {
		t.Fatal("server forwarded nothing")
	}
}

// TestDatagramLossAccounting drops every server→RIS datagram: each
// injected frame must be accounted lost_datagram (never forwarded,
// never silently vanished), keeping conservation exact under loss.
func TestDatagramLossAccounting(t *testing.T) {
	tp, agents := newDgramPair(t, false, true)
	defer tp.Close()
	waitDgramReady(t, tp, agents)

	const n = 25
	frame := make([]byte, 64)
	for i := 0; i < n; i++ {
		if err := tp.Server.InjectPacket(tp.PKB, frame); err != nil {
			t.Fatal(err)
		}
	}
	s := tp.Server.StatsSnapshot()
	if s["packets_lost_datagram"] != n {
		t.Fatalf("lost_datagram = %d, want %d (forwarded %d, no_route %d)",
			s["packets_lost_datagram"], n, s["packets_forwarded"], s["packets_no_route"])
	}
	if s["packets_forwarded"] != 0 {
		t.Fatalf("forwarded = %d with a 100%% loss hook", s["packets_forwarded"])
	}
	if got := tp.Received(); got != 0 {
		t.Fatalf("%d frames delivered through a 100%% loss hook", got)
	}
}

// TestDatagramRefusedWithCompression requests both compression and the
// datagram plane: the server must grant compression only (the §4 codec
// is stateful; loss would desync it) and traffic must still flow over
// the TCP tunnel.
func TestDatagramRefusedWithCompression(t *testing.T) {
	tp, agents := newDgramPair(t, true, false)
	defer tp.Close()
	for _, a := range agents {
		if a.DatagramReady() {
			t.Fatal("datagram path established alongside compression")
		}
	}
	if n := tp.Server.DatagramPeers(); n != 0 {
		t.Fatalf("server has %d datagram peers alongside compression", n)
	}
	frame := make([]byte, 64)
	for i := 0; i < 5; i++ {
		tp.A.Transmit(frame)
	}
	tp.waitReceived(t, 5, 5*time.Second)
}
