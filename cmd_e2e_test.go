package rnl

// End-to-end test of the actual binaries: build cmd/routeserver, cmd/ris,
// cmd/rnlctl and cmd/labrunner, run them as separate processes, and drive
// a complete workflow — the distributed deployment the README describes.

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildBinaries compiles the four commands once into a temp dir.
func buildBinaries(t *testing.T) map[string]string {
	t.Helper()
	dir := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"routeserver", "ris", "rnlctl", "labrunner"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Dir = "."
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, b)
		}
		bins[name] = out
	}
	return bins
}

// freePort grabs an unused TCP port.
func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	return ln.Addr().(*net.TCPAddr).Port
}

// startProc launches a long-running binary and registers cleanup.
func startProc(t *testing.T, bin string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", bin, err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	return cmd
}

// ctl runs one rnlctl invocation and returns its stdout.
func ctl(t *testing.T, bin, server string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-server", server}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("rnlctl %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestBinariesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs real binaries")
	}
	bins := buildBinaries(t)
	httpPort, tunnelPort := freePort(t), freePort(t)
	serverURL := fmt.Sprintf("http://127.0.0.1:%d", httpPort)

	startProc(t, bins["routeserver"],
		"-http", fmt.Sprintf("127.0.0.1:%d", httpPort),
		"-tunnel", fmt.Sprintf("127.0.0.1:%d", tunnelPort),
		"-compress")

	// Wait for the web server to come up.
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", fmt.Sprintf("127.0.0.1:%d", httpPort), 200*time.Millisecond)
		if err == nil {
			conn.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("routeserver never came up")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// A lab site: two hosts behind one RIS.
	risCfg := map[string]any{
		"server":   fmt.Sprintf("127.0.0.1:%d", tunnelPort),
		"pc_name":  "pc-e2e",
		"compress": true,
		"devices": []map[string]any{
			{"kind": "host", "name": "e2e-h1", "ip": "10.33.0.1/24"},
			{"kind": "host", "name": "e2e-h2", "ip": "10.33.0.2/24"},
		},
	}
	cfgPath := filepath.Join(t.TempDir(), "ris.json")
	b, _ := json.Marshal(risCfg)
	if err := os.WriteFile(cfgPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	startProc(t, bins["ris"], "-config", cfgPath, "-fast")

	// Inventory should show both hosts once the RIS joins.
	deadline = time.Now().Add(10 * time.Second)
	var inv string
	for time.Now().Before(deadline) {
		inv = ctl(t, bins["rnlctl"], serverURL, "inventory")
		if strings.Contains(inv, "e2e-h1") && strings.Contains(inv, "e2e-h2") {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !strings.Contains(inv, "e2e-h1") {
		t.Fatalf("inventory never showed the site's hosts:\n%s", inv)
	}

	// Save a design, reserve, deploy.
	design := `{
	  "name": "e2e-lab",
	  "routers": ["e2e-h1", "e2e-h2"],
	  "links": [{"a": {"router": "e2e-h1", "port": "eth0"},
	             "b": {"router": "e2e-h2", "port": "eth0"}}]
	}`
	designPath := filepath.Join(t.TempDir(), "design.json")
	if err := os.WriteFile(designPath, []byte(design), 0o644); err != nil {
		t.Fatal(err)
	}
	ctl(t, bins["rnlctl"], serverURL, "design-save", designPath)
	ctl(t, bins["rnlctl"], serverURL, "reserve", "e2e-user", "60", "e2e-h1", "e2e-h2")
	ctl(t, bins["rnlctl"], serverURL, "deploy", "e2e-lab", "e2e-user")

	// Console through the full stack: binary → HTTP → route server →
	// tunnel → RIS → serial → device. Hosts answer pings of each other
	// only if the virtual wire works, so use console ping + show.
	out := ctl(t, bins["rnlctl"], serverURL, "console", "e2e-h1", "enable", "show ip")
	if !strings.Contains(out, "10.33.0.1") {
		t.Fatalf("console output wrong:\n%s", out)
	}

	// The labrunner drives a probe across the deployed wire.
	suite := `{
	  "tests": [{
	    "name": "wire carries traffic",
	    "steps": [{
	      "kind": "probe",
	      "inject_router": "e2e-h1", "inject_port": "eth0", "from_port": true,
	      "expect_router": "e2e-h2", "expect_port": "eth0",
	      "udp": {"src_mac": "02:00:00:00:00:01", "dst_mac": "02:00:00:00:00:02",
	              "src_ip": "10.33.0.1", "dst_ip": "10.33.0.2",
	              "src_port": 7, "dst_port": 9999, "payload": "e2e-probe"},
	      "expect": true, "within_ms": 3000
	    }]
	  }]
	}`
	suitePath := filepath.Join(t.TempDir(), "suite.json")
	if err := os.WriteFile(suitePath, []byte(suite), 0o644); err != nil {
		t.Fatal(err)
	}
	runner := exec.Command(bins["labrunner"], "-server", serverURL, "-suite", suitePath)
	runnerOut, err := runner.CombinedOutput()
	if err != nil {
		t.Fatalf("labrunner failed: %v\n%s", err, runnerOut)
	}
	if !strings.Contains(string(runnerOut), "1/1 test cases passed") {
		t.Fatalf("labrunner report:\n%s", runnerOut)
	}

	// Stats show forwarded traffic; teardown cleans up.
	stats := ctl(t, bins["rnlctl"], serverURL, "stats")
	if !strings.Contains(stats, "packets_forwarded") {
		t.Fatalf("stats output:\n%s", stats)
	}
	ctl(t, bins["rnlctl"], serverURL, "teardown", "e2e-lab")
}
