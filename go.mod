module rnl

go 1.24
