package rnl

// Scenario-scale benchmarks (BENCH_scale.json): generated topologies at
// 100/500/1000 routers measuring what the deploy pipeline costs —
// deploy-with-restore time (sequential baseline vs the bounded worker
// pool), teardown time, control-plane recovery replay of the deploy's
// journal, and steady-state forwarding alongside a large deployed lab.
//
// RNL_SCALE=smoke shrinks every case to a 12-router lab: the 1-iteration
// smoke `make verify` runs to keep this harness compiling and honest
// without paying benchmark time.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"rnl/internal/lab"
	"rnl/internal/netsim"
	"rnl/internal/ris"
	"rnl/internal/routeserver"
	"rnl/internal/topogen"
	"rnl/internal/wal"
)

// scaleSmoke reports whether the harness runs in verify's smoke mode.
func scaleSmoke() bool { return os.Getenv("RNL_SCALE") == "smoke" }

// scaleCloud stands up a cloud (fsync-always, group commit) with a
// generated ring fleet of n routers joined behind shared RIS agents.
func scaleCloud(b *testing.B, n int, stateDir string) (*lab.Cloud, *topogen.Topology) {
	b.Helper()
	top, err := topogen.Generate(topogen.Params{
		Kind: topogen.Ring, N: n, Seed: 1, Name: fmt.Sprintf("scale-%d", n),
	})
	if err != nil {
		b.Fatal(err)
	}
	c, err := lab.NewCloud(lab.Options{
		Logger:         quietLogger(),
		StateDir:       stateDir,
		WALFsync:       wal.SyncAlways,
		WALGroupCommit: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.AddGeneratedFleet(top, 64); err != nil {
		c.Close()
		b.Fatal(err)
	}
	return c, top
}

// BenchmarkScaleDeploy measures deploy-with-restore and teardown of
// generated labs. The workers=1 case is the sequential baseline the
// parallel pipeline is judged against (acceptance: ≥3× at equal size).
func BenchmarkScaleDeploy(b *testing.B) {
	cases := []struct {
		routers, workers int
	}{
		{100, 1},
		{100, 8},
		{500, 8},
		{1000, 8},
	}
	if scaleSmoke() {
		cases = []struct{ routers, workers int }{{12, 1}, {12, 8}}
	}
	for _, tc := range cases {
		b.Run(fmt.Sprintf("routers=%d/workers=%d", tc.routers, tc.workers), func(b *testing.B) {
			c, top := scaleCloud(b, tc.routers, b.TempDir())
			defer c.Close()
			var deployNs, teardownNs int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				if err := c.DeployDesignRestore(context.Background(), top.Design, tc.workers); err != nil {
					b.Fatal(err)
				}
				t1 := time.Now()
				if err := c.RS.Teardown(top.Design.Name); err != nil {
					b.Fatal(err)
				}
				deployNs += t1.Sub(t0).Nanoseconds()
				teardownNs += time.Since(t1).Nanoseconds()
			}
			b.ReportMetric(float64(deployNs)/1e6/float64(b.N), "deploy-ms/op")
			b.ReportMetric(float64(teardownNs)/1e6/float64(b.N), "teardown-ms/op")
		})
	}
}

// BenchmarkScaleRecovery deploys a generated lab into a journaled state
// dir, then measures a cold control-plane recovery (snapshot restore +
// journal replay) from a copy of those files — the crash-restart cost
// at scale, which must hold PR 9's replay bar.
func BenchmarkScaleRecovery(b *testing.B) {
	n := 500
	if scaleSmoke() {
		n = 12
	}
	b.Run(fmt.Sprintf("routers=%d", n), func(b *testing.B) {
		src := b.TempDir()
		c, top := scaleCloud(b, n, src)
		defer c.Close()
		if err := c.DeployDesignRestore(context.Background(), top.Design, 0); err != nil {
			b.Fatal(err)
		}
		// Copy the quiesced state files: recovery runs against the
		// journal exactly as the deploy left it on disk.
		cp := b.TempDir()
		for _, f := range []string{"routeserver.json", routeserver.WALFile} {
			data, err := os.ReadFile(filepath.Join(src, f))
			if err != nil && !os.IsNotExist(err) {
				b.Fatal(err)
			}
			if err == nil {
				if err := os.WriteFile(filepath.Join(cp, f), data, 0o644); err != nil {
					b.Fatal(err)
				}
			}
		}
		records := 0
		if st, err := wal.OpenStore(filepath.Join(cp, "routeserver.json"), filepath.Join(cp, routeserver.WALFile), wal.Options{Policy: wal.SyncNone}); err == nil {
			_, _ = st.Replay(func(uint64, []byte) error { records++; return nil })
			st.Close()
		}
		var recoverNs int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir := b.TempDir()
			for _, f := range []string{"routeserver.json", routeserver.WALFile} {
				if data, err := os.ReadFile(filepath.Join(cp, f)); err == nil {
					if err := os.WriteFile(filepath.Join(dir, f), data, 0o644); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StartTimer()
			t0 := time.Now()
			rs := routeserver.New(routeserver.Options{Logger: quietLogger(), StateDir: dir})
			recoverNs += time.Since(t0).Nanoseconds()
			b.StopTimer()
			rs.Close()
			b.StartTimer()
		}
		b.ReportMetric(float64(recoverNs)/1e6/float64(b.N), "recovery-ms/op")
		b.ReportMetric(float64(records), "journal-records")
	})
}

// BenchmarkScalePPS measures steady-state forwarded packets/sec through
// a probe lab while a large generated lab stays deployed on the same
// route server — the control plane's scale must not tax the data plane.
func BenchmarkScalePPS(b *testing.B) {
	n := 500
	if scaleSmoke() {
		n = 12
	}
	b.Run(fmt.Sprintf("deployed=%d", n), func(b *testing.B) {
		c, top := scaleCloud(b, n, b.TempDir())
		defer c.Close()
		if err := c.DeployDesignRestore(context.Background(), top.Design, 0); err != nil {
			b.Fatal(err)
		}
		// Probe lab: two bare ports joined through their own agent.
		join := func(name string) (*netsim.Iface, routeserver.PortKey, func()) {
			dev := netsim.NewIface(name + "-dev")
			nic := netsim.NewIface(name + "-nic")
			w := netsim.Connect(dev, nic, nil)
			ag, err := ris.New(ris.Config{
				ServerAddr: c.TunnelAddr, PCName: name,
				Routers: []ris.RouterDef{{Name: name, Ports: []ris.PortMap{{Name: "p0", NIC: nic}}}},
			}, quietLogger())
			if err != nil {
				b.Fatal(err)
			}
			if err := ag.Start(); err != nil {
				b.Fatal(err)
			}
			rid, pid, _ := ag.PortID(name, "p0")
			return dev, routeserver.PortKey{Router: rid, Port: pid}, func() { ag.Close(); w.Disconnect() }
		}
		aDev, pkA, closeA := join("scale-probe-a")
		defer closeA()
		bDev, pkB, closeB := join("scale-probe-b")
		defer closeB()
		var got atomic.Uint64
		bDev.SetReceiver(func([]byte) { got.Add(1) })
		if err := c.RS.Deploy("scale-probe", []routeserver.Link{{A: pkA, B: pkB}}); err != nil {
			b.Fatal(err)
		}
		const size = 512
		frames := templateFrames(64, size)
		b.SetBytes(size)
		b.ResetTimer()
		t0 := time.Now()
		pumpWindowed(b, frames, 128, aDev.Transmit, got.Load)
		if el := time.Since(t0).Seconds(); el > 0 {
			b.ReportMetric(float64(b.N)/el, "pps")
		}
	})
}
