GO ?= go

.PHONY: verify build test race soak sim bench bench-fast bench-scale

# Tier-1 gate (keep in sync with ROADMAP.md). The 1-iteration bench
# smoke keeps the fast-path benchmark compiling and running without
# costing verify any real time.
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./internal/wire/... ./internal/ris/... ./internal/routeserver/... ./internal/obs/... ./internal/faultinject/... ./internal/admission/... ./internal/api/... ./internal/detsim/... ./internal/identity/... ./internal/wal/...
	$(GO) test -run '^$$' -bench ForwardFastPath -benchtime 1x ./internal/routeserver/
	RNL_SCALE=smoke $(GO) test -run '^$$' -bench Scale -benchtime 1x .
	$(GO) test -count=1 -run 'Datagram|Dgram' . ./internal/wire/ ./internal/detsim/
	$(GO) test -count=1 -run 'AuthenticatedDeployEndToEnd|MultiTenant' ./internal/api/ ./internal/detsim/
	$(MAKE) sim

# Deterministic cluster simulation: the pinned seed corpus — including
# the crash-point scenario (TestCrashPointScenario, pinned seed 4242:
# kill-without-checkpoint + torn log tail, byte-identical replay) —
# plus SIM_SEEDS fresh random seeds (a failure prints the seed; replay
# it exactly with DETSIM_SEED=<seed> go test ./internal/detsim/ -run RandomSeeds).
SIM_SEEDS ?= 10
sim:
	$(GO) test -count=1 ./internal/detsim/
	$(GO) test -count=1 -run CrashPointScenario ./internal/detsim/
	DETSIM_RANDOM=$(SIM_SEEDS) $(GO) test -count=1 -run RandomSeeds ./internal/detsim/

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/wire/... ./internal/ris/... ./internal/routeserver/... ./internal/obs/... ./internal/faultinject/... ./internal/admission/... ./internal/api/... ./internal/identity/... ./internal/wal/...

# Overload/chaos soaks: the fair-share shedding and admission round-trip
# tests, race-instrumented and repeated to shake out ordering flakes.
soak:
	$(GO) test -race -count=2 -run 'Soak|Throttle|Overloaded|Idempoten|RetryAfter|FairShare' ./internal/routeserver/... ./internal/api/... ./internal/wire/... ./internal/admission/...

# Paper-figure and ablation benchmarks (EXPERIMENTS.md numbers).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1s ./...

# Forwarding fast-path and transport benchmarks, recorded as
# machine-readable JSON (BENCH_fastpath.json) for before/after
# comparison across PRs.
bench-fast:
	{ $(GO) test -run '^$$' -bench ForwardFastPath -benchtime 2s -count 3 ./internal/routeserver/ ; \
	  $(GO) test -run '^$$' -bench Fig4PacketFlow -benchtime 1s . ; \
	  $(GO) test -run '^$$' -bench Transport -benchtime 1s ./internal/wire/ ; } \
	| tee /dev/stderr | $(GO) run ./internal/tools/benchjson > BENCH_fastpath.json

# Scenario-scale benchmarks: generated 100/500/1000-router labs measuring
# deploy (sequential baseline vs parallel restore pool), teardown,
# recovery replay and steady-state pps, recorded as BENCH_scale.json.
bench-scale:
	{ $(GO) test -run '^$$' -bench 'ScaleDeploy|ScaleRecovery' -benchtime 1x -timeout 1800s . ; \
	  $(GO) test -run '^$$' -bench ScalePPS -benchtime 2s -timeout 600s . ; } \
	| tee /dev/stderr | $(GO) run ./internal/tools/benchjson > BENCH_scale.json
