// Policytest: the paper's Fig. 6 automated security-policy test.
//
// Four RIP-speaking routers: subnet A (behind R3) must never reach subnet
// B (behind R4). The policy is enforced by packet filters on the R1–R2
// path. A nightly test probes the policy through the web-services API:
// generate a packet destined to subnet B at R3, capture at R4's subnet-B
// port, and flag a violation if it gets through.
//
// The run then simulates the paper's future change — a new direct R3–R4
// link. RIP converges onto the unfiltered shortcut, and the same nightly
// test catches the violation "instead of waiting to be discovered after a
// security breach".
//
//	go run ./examples/policytest
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"rnl/internal/autotest"
	"rnl/internal/lab"
	"rnl/internal/packet"
)

func main() {
	cloud, err := lab.NewCloud(lab.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer cloud.Close()
	f, err := cloud.BuildFig6()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Fig. 6 lab deployed: R3 -- R1 -- R2 -- R4, filters on the R1-R2 path")
	fmt.Print("waiting for RIP to converge")
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if ok, _ := f.HostA.Ping([]byte{192, 168, 24, 4}, 300*time.Millisecond); ok {
			break
		}
		fmt.Print(".")
	}
	fmt.Println(" done")

	// The probe frame: host A sending UDP toward subnet B, injected at
	// R3's subnet-A port just as a host there would.
	frame, err := packet.BuildUDP(
		f.HostA.MAC(), f.R3.PortMAC("e2"),
		f.HostA.IP(), f.HostB.IP(),
		7, 9999, []byte("nightly-policy-probe"))
	if err != nil {
		log.Fatal(err)
	}
	policyProbe := autotest.IsolationPolicy(
		"subnet A must not reach subnet B",
		"fig6-r3", "e2", frame,
		"fig6-r4", "e2",
		autotest.MatchUDPPayload([]byte("nightly-policy-probe")))
	policyProbe.Within = 1500 * time.Millisecond
	policyProbe.Count = 3

	runner := &autotest.Runner{Client: cloud.Client, Log: os.Stdout}

	fmt.Println("\n--- nightly run #1: current topology ---")
	res1 := runner.Run(autotest.TestCase{
		Name:  "security-policy",
		Steps: []autotest.Step{policyProbe},
	})

	fmt.Println("\n--- topology change: new R3-R4 link added ---")
	if err := cloud.RS.Teardown(f.Design.Name); err != nil {
		log.Fatal(err)
	}
	if err := cloud.DeployDesign(f.DesignWithShortcut); err != nil {
		log.Fatal(err)
	}
	fmt.Print("waiting for RIP to converge onto the shortcut")
	deadline = time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if ok, _ := f.HostA.Ping(f.HostB.IP(), 300*time.Millisecond); ok {
			break
		}
		fmt.Print(".")
	}
	fmt.Println(" done")

	fmt.Println("\n--- nightly run #2: after the change ---")
	res2 := runner.Run(autotest.TestCase{
		Name:  "security-policy",
		Steps: []autotest.Step{policyProbe},
	})

	fmt.Println("\n=== morning report ===")
	autotest.WriteReport(os.Stdout, []autotest.Result{res1, res2})
	if res1.Passed && !res2.Passed {
		fmt.Println("\nThe nightly test caught the violation introduced by the link addition.")
	} else {
		fmt.Println("\nUNEXPECTED: run1 passed =", res1.Passed, "run2 passed =", res2.Passed)
		os.Exit(1)
	}
}
