// Failover: the paper's Fig. 5 experiment, three ways.
//
// Two Catalyst 6500 switches, each with a Firewall Services Module
// transparently bridging the inside VLAN (100) to the outside VLAN (200),
// interconnected by a trunk. The FWSMs health-check each other over the
// failover VLAN (10).
//
// Scenario 1 — correct configuration: the primary module goes active, the
// secondary stands by; traffic flows; killing the primary's links triggers
// failover and connectivity recovers.
//
// Scenario 2 — the misconfiguration: the failover VLAN is missing from the
// trunk, both modules go active, and the parallel transparent bridges form
// the forwarding loop the paper warns about — a broadcast storm.
//
// Scenario 3 — the configuration-manual fix: "firewall bpdu forward" lets
// spanning tree see through the modules and block the loop.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"time"

	"rnl/internal/lab"
)

func main() {
	fmt.Println("=== Scenario 1: correct failover configuration ===")
	scenarioFailover()
	fmt.Println("\n=== Scenario 2: failover VLAN missing from trunk (misconfiguration) ===")
	scenarioDualActiveStorm()
	fmt.Println("\n=== Scenario 3: misconfiguration + 'firewall bpdu forward' ===")
	scenarioBPDUForward()
}

func waitFor(what string, timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			fmt.Printf("  %s\n", what)
			return true
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("  TIMEOUT waiting for: %s\n", what)
	return false
}

func scenarioFailover() {
	cloud, err := lab.NewCloud(lab.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer cloud.Close()
	f, err := cloud.BuildFig5(lab.Fig5Options{FailoverVLANOnTrunk: true})
	if err != nil {
		log.Fatal(err)
	}
	waitFor("primary FWSM active, secondary standby", 5*time.Second, func() bool {
		return f.FW1.State().String() == "Active" && f.FW2.State().String() == "Standby"
	})
	if ok, rtt := f.S2.Ping(f.S1.IP(), 8*time.Second); ok {
		fmt.Printf("  S2 -> S1 through active firewall: OK (%v)\n", rtt.Round(time.Millisecond))
	} else {
		fmt.Println("  S2 -> S1 FAILED")
		return
	}
	fmt.Println("  simulating switch failure: disabling primary FWSM's traffic links")
	f.FW1.Port("inside").SetAdminUp(false)
	f.FW1.Port("outside").SetAdminUp(false)
	start := time.Now()
	waitFor("secondary took over", 5*time.Second, func() bool {
		return f.FW2.State().String() == "Active"
	})
	if ok, _ := f.S2.Ping(f.S1.IP(), 8*time.Second); ok {
		fmt.Printf("  S2 -> S1 recovered after failover in ~%v\n", time.Since(start).Round(time.Millisecond))
	} else {
		fmt.Println("  S2 -> S1 did NOT recover")
	}
}

func scenarioDualActiveStorm() {
	cloud, err := lab.NewCloud(lab.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer cloud.Close()
	f, err := cloud.BuildFig5(lab.Fig5Options{FailoverVLANOnTrunk: false})
	if err != nil {
		log.Fatal(err)
	}
	waitFor("both FWSMs wrongly active (hellos cannot cross)", 5*time.Second, func() bool {
		return f.FW1.State().String() == "Active" && f.FW2.State().String() == "Active"
	})
	fmt.Println("  seeding one broadcast (ARP) into the looped fabric...")
	go f.S2.Ping(f.S1.IP(), 500*time.Millisecond)
	time.Sleep(2 * time.Second)
	floods := f.SW1.Floods() + f.SW2.Floods()
	fmt.Printf("  flood events after 2s: %d  (a handful would be normal; this is a storm)\n", floods)
	fmt.Println("  this is the transient the paper says is 'difficult to capture using")
	fmt.Println("  simulation or static analysis' — RNL reproduces it on the real datapath")
}

func scenarioBPDUForward() {
	cloud, err := lab.NewCloud(lab.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer cloud.Close()
	f, err := cloud.BuildFig5(lab.Fig5Options{FailoverVLANOnTrunk: false, BPDUForward: true})
	if err != nil {
		log.Fatal(err)
	}
	waitFor("both FWSMs active (failover still misconfigured)", 5*time.Second, func() bool {
		return f.FW1.State().String() == "Active" && f.FW2.State().String() == "Active"
	})
	time.Sleep(500 * time.Millisecond) // let STP converge through the modules
	base := f.SW1.Floods() + f.SW2.Floods()
	go f.S2.Ping(f.S1.IP(), 500*time.Millisecond)
	time.Sleep(2 * time.Second)
	floods := f.SW1.Floods() + f.SW2.Floods() - base
	fmt.Printf("  flood events after 2s: %d — spanning tree blocked the loop\n", floods)
	fmt.Println("  the BPDUs crossed the FWSMs because the modules were configured to")
	fmt.Println("  forward them AND run firmware that supports it (try Flash(\"3.1.9\"))")
}
