// Wantest: the paper's §3.5 application testing use case.
//
// "Applications designed in a local network may experience widely
// different behavior when deployed in a real-life scenario where the
// users may be far away. RNL can inject delay and jitter to simulate any
// wide area link."
//
// A client host and an application server are joined to the labs; the
// client's wire is conditioned with successively worse WAN profiles, and
// a small request/response application is measured under each.
//
//	go run ./examples/wantest
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"rnl/internal/lab"
	"rnl/internal/topology"
	"rnl/internal/wanem"
)

func main() {
	profiles := []struct {
		name string
		p    wanem.Profile
	}{
		{"LAN (ideal)", wanem.LAN},
		{"metro (~5ms)", wanem.Metro},
		{"transcontinental (~40ms, 0.1% loss)", wanem.Transcontinental},
		{"intercontinental (~100ms, 0.5% loss)", wanem.Intercontinental},
	}

	cloud, err := lab.NewCloud(lab.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer cloud.Close()

	// The client joins through a conditioner we can retune live — the
	// knob the web-services API exposes for WAN emulation.
	cond := wanem.New(wanem.LAN, 1)
	client, _, err := cloud.AddHostVia("wan-client", "10.50.0.1/24", "", cond)
	if err != nil {
		log.Fatal(err)
	}
	server, _, err := cloud.AddHost("app-server", "10.50.0.2/24", "")
	if err != nil {
		log.Fatal(err)
	}

	// The application: a UDP echo service on the server.
	server.HandleUDP(4000, func(src net.IP, srcPort uint16, payload []byte) {
		server.SendUDP(src, 4000, srcPort, payload)
	})
	replies := make(chan struct{}, 64)
	client.HandleUDP(4001, func(net.IP, uint16, []byte) {
		select {
		case replies <- struct{}{}:
		default:
		}
	})

	d := &topology.Design{Name: "wan-test", Owner: "dev", Routers: []string{"wan-client", "app-server"}}
	if err := d.Connect("wan-client", "eth0", "app-server", "eth0"); err != nil {
		log.Fatal(err)
	}
	if err := cloud.Client.SaveDesign(d); err != nil {
		log.Fatal(err)
	}
	if err := cloud.DeployDesign(d); err != nil {
		log.Fatal(err)
	}

	// Warm ARP on the ideal link first.
	if ok, _ := client.Ping(server.IP(), 5*time.Second); !ok {
		log.Fatal("baseline connectivity failed")
	}

	fmt.Println("application: 40 request/response transactions per WAN profile")
	fmt.Printf("%-40s %10s %10s %8s\n", "profile", "median", "worst", "loss")
	const n = 40
	for _, prof := range profiles {
		cond.Set(prof.p)
		var rtts []time.Duration
		lost := 0
		for i := 0; i < n; i++ {
			start := time.Now()
			if err := client.SendUDP(server.IP(), 4001, 4000, []byte("req")); err != nil {
				log.Fatal(err)
			}
			select {
			case <-replies:
				rtts = append(rtts, time.Since(start))
			case <-time.After(800 * time.Millisecond):
				lost++
			}
		}
		med, worst := stats(rtts)
		fmt.Printf("%-40s %10v %10v %7.1f%%\n", prof.name,
			med.Round(100*time.Microsecond), worst.Round(100*time.Microsecond),
			100*float64(lost)/n)
	}
	fmt.Println("\nthe same binary, the same lab — only the injected WAN profile changed")
}

func stats(rtts []time.Duration) (median, worst time.Duration) {
	if len(rtts) == 0 {
		return 0, 0
	}
	// insertion sort; n is tiny
	for i := 1; i < len(rtts); i++ {
		for j := i; j > 0 && rtts[j] < rtts[j-1]; j-- {
			rtts[j], rtts[j-1] = rtts[j-1], rtts[j]
		}
	}
	return rtts[len(rtts)/2], rtts[len(rtts)-1]
}
