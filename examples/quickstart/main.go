// Quickstart: the smallest end-to-end Remote Network Labs session.
//
// It stands up an in-process RNL cloud (route server + web server), joins
// two servers through their own RIS agents, and then performs the paper's
// Fig. 2 workflow entirely through the web-services API: list the
// inventory, draw a design, reserve the equipment, deploy, verify
// connectivity, inspect a console, and tear down.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"rnl/internal/api"
	"rnl/internal/lab"
	"rnl/internal/topology"
)

func main() {
	cloud, err := lab.NewCloud(lab.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer cloud.Close()
	fmt.Printf("RNL cloud up: web UI http://%s  tunnel %s\n\n", cloud.WebAddr, cloud.TunnelAddr)

	// Two servers at "different sites", each behind its own lab PC.
	h1, _, err := cloud.AddHost("server-east", "10.0.0.1/24", "")
	if err != nil {
		log.Fatal(err)
	}
	h2, _, err := cloud.AddHost("server-west", "10.0.0.2/24", "")
	if err != nil {
		log.Fatal(err)
	}

	client := cloud.Client
	inv, err := client.Inventory()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Inventory:")
	for _, r := range inv {
		fmt.Printf("  #%d %-12s %-13s pc=%s ports=%d console=%v\n",
			r.ID, r.Name, r.Model, r.PC, len(r.Ports), r.HasConsole)
	}

	// Draw the design: one virtual wire between the two servers.
	design := &topology.Design{Name: "quickstart", Owner: "you", Routers: []string{"server-east", "server-west"}}
	if err := design.Connect("server-east", "eth0", "server-west", "eth0"); err != nil {
		log.Fatal(err)
	}
	if err := client.SaveDesign(design); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nDesign 'quickstart' saved: server-east.eth0 <-> server-west.eth0")

	// Reserve both machines, then deploy.
	now := time.Now()
	if _, err := client.Reserve(api.ReserveRequest{
		User: "you", Routers: design.Routers, Start: now.Add(-time.Minute), End: now.Add(time.Hour),
	}); err != nil {
		log.Fatal(err)
	}
	if err := client.Deploy(api.DeployRequest{Design: "quickstart", User: "you"}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Deployed: the route server now tunnels frames between the two ports")

	if ok, rtt := h1.Ping(h2.IP(), 5*time.Second); ok {
		fmt.Printf("\nserver-east ping server-west: OK (%v)\n", rtt.Round(time.Microsecond))
	} else {
		log.Fatal("ping failed — the virtual wire is broken")
	}

	// Console access through the tunnel, exactly what the browser's
	// VT100 window does.
	outs, err := client.ConsoleExec(api.ConsoleExecRequest{
		Router:   "server-west",
		Commands: []string{"enable", "show ip", "show interfaces"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nserver-west console:")
	for _, out := range outs[1:] {
		fmt.Println("  " + indent(out))
	}

	stats, _ := client.Stats()
	fmt.Printf("\nRoute server forwarded %d packets (%d bytes)\n",
		stats["packets_forwarded"], stats["bytes_forwarded"])

	if err := client.Teardown("quickstart"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Torn down. Done.")
}

func indent(s string) string {
	out := ""
	for i, line := range splitLines(s) {
		if i > 0 {
			out += "\n  "
		}
		out += line
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			lines = append(lines, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	return append(lines, cur)
}
