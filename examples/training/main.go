// Training: the paper's §3.4 use case.
//
// "Existing training environments ... only offer a small number of
// topologies. With RNL, we are no longer bounded by a few, but instead, we
// can experiment with a variety of topologies."
//
// An instructor defines one lab exercise (a router between two subnets);
// RNL stamps out an identical, isolated pod for every student — same
// topology, same addressing, zero rewiring — then each student configures
// their own router through their own console and is graded automatically.
//
//	go run ./examples/training
package main

import (
	"fmt"
	"log"
	"time"

	"rnl/internal/api"
	"rnl/internal/device"
	"rnl/internal/lab"
	"rnl/internal/topology"
)

const students = 3

func main() {
	cloud, err := lab.NewCloud(lab.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer cloud.Close()

	fmt.Printf("provisioning %d identical student pods...\n", students)
	type pod struct {
		name    string
		router  string
		hosts   [2]string
		pingSrc *device.Host
	}
	pods := make([]pod, 0, students)
	for i := 0; i < students; i++ {
		p := pod{
			name:   fmt.Sprintf("pod%d", i+1),
			router: fmt.Sprintf("pod%d-router", i+1),
			hosts:  [2]string{fmt.Sprintf("pod%d-hostA", i+1), fmt.Sprintf("pod%d-hostB", i+1)},
		}
		if _, _, err := cloud.AddRouter(p.router, []string{"e0", "e1"}); err != nil {
			log.Fatal(err)
		}
		// Every pod reuses the SAME addresses — pods are fully isolated
		// virtual labs, so nothing clashes.
		hA, _, err := cloud.AddHost(p.hosts[0], "10.1.0.10/24", "10.1.0.1")
		if err != nil {
			log.Fatal(err)
		}
		if _, _, err := cloud.AddHost(p.hosts[1], "10.2.0.10/24", "10.2.0.1"); err != nil {
			log.Fatal(err)
		}
		p.pingSrc = hA

		d := &topology.Design{
			Name:    p.name,
			Owner:   "instructor",
			Routers: []string{p.router, p.hosts[0], p.hosts[1]},
		}
		must(d.Connect(p.router, "e0", p.hosts[0], "eth0"))
		must(d.Connect(p.router, "e1", p.hosts[1], "eth0"))
		must(cloud.Client.SaveDesign(d))
		must(cloud.DeployDesign(d))
		pods = append(pods, p)
	}
	fmt.Printf("%d pods deployed; students configure their routers now\n\n", len(pods))

	// Students 1 and 3 do the exercise correctly; student 2 typos the
	// second interface's address.
	exercise := func(podIdx int, addrB string) {
		p := pods[podIdx]
		_, err := cloud.Client.ConsoleExec(api.ConsoleExecRequest{
			Router: p.router,
			Commands: []string{
				"enable", "configure terminal",
				"interface e0", "ip address 10.1.0.1 255.255.255.0",
				"interface e1", "ip address " + addrB + " 255.255.255.0",
				"end",
			},
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	exercise(0, "10.2.0.1")
	exercise(1, "10.20.0.1") // the classic fat-finger
	exercise(2, "10.2.0.1")

	// Automatic grading: does hostA reach hostB through the student's
	// router?
	fmt.Println("grading:")
	for _, p := range pods {
		ok, _ := p.pingSrc.Ping([]byte{10, 2, 0, 10}, 3*time.Second)
		grade := "PASS"
		if !ok {
			grade = "FAIL (check your interface configuration)"
		}
		fmt.Printf("  %-6s %s\n", p.name, grade)
	}
	fmt.Println("\neach pod is an independent virtual lab on shared equipment —")
	fmt.Println("no rewiring between class sessions, any topology per exercise")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
