// Remotediag: the paper's §3.3 "avoid shipping" use case.
//
// A diagnostic appliance (think Netcordia NetMRI) normally has to be
// shipped to a client site, racked, used for a few weeks and shipped
// back. With RNL, the client instead exposes one Ethernet port of their
// enterprise network by connecting a lab PC to it and joining the labs;
// the appliance, sitting in the vendor's lab, is then virtually deployed
// into the client network by drawing a single wire in a design.
//
//	go run ./examples/remotediag
package main

import (
	"fmt"
	"log"
	"time"

	"rnl/internal/lab"
	"rnl/internal/topology"
)

func main() {
	cloud, err := lab.NewCloud(lab.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer cloud.Close()

	// --- the client's enterprise network (a switch and two servers) ---
	sw, _, err := cloud.AddSwitch("client-sw", []string{"p1", "p2", "spare"})
	if err != nil {
		log.Fatal(err)
	}
	_ = sw
	app1, _, err := cloud.AddHost("client-erp", "172.20.0.11/24", "")
	if err != nil {
		log.Fatal(err)
	}
	app2, _, err := cloud.AddHost("client-mail", "172.20.0.12/24", "")
	if err != nil {
		log.Fatal(err)
	}
	_, _ = app1, app2

	// --- the vendor's diagnostic appliance, far away ---
	netmri, _, err := cloud.AddHost("netmri", "172.20.0.99/24", "")
	if err != nil {
		log.Fatal(err)
	}

	// The client's internal wiring and the "exposed Ethernet port" are
	// all just links in one design: the spare switch port is where the
	// appliance virtually plugs in.
	d := &topology.Design{
		Name:    "remote-diagnosis",
		Owner:   "client-netops",
		Routers: []string{"client-sw", "client-erp", "client-mail", "netmri"},
	}
	must(d.Connect("client-sw", "p1", "client-erp", "eth0"))
	must(d.Connect("client-sw", "p2", "client-mail", "eth0"))
	must(d.Connect("client-sw", "spare", "netmri", "eth0"))
	if err := cloud.Client.SaveDesign(d); err != nil {
		log.Fatal(err)
	}
	if err := cloud.DeployDesign(d); err != nil {
		log.Fatal(err)
	}
	fmt.Println("design deployed: the NetMRI appliance is now virtually inside the client network")
	fmt.Println("(no shipping, no racking — one wire drawn in the web UI)")

	// The appliance sweeps the client subnet, as it would on site.
	fmt.Println("\nappliance sweep of 172.20.0.0/24:")
	targets := []struct {
		name string
		ip   []byte
	}{
		{"client-erp ", []byte{172, 20, 0, 11}},
		{"client-mail", []byte{172, 20, 0, 12}},
		{"unused addr", []byte{172, 20, 0, 50}},
	}
	for _, tgt := range targets {
		ok, rtt := netmri.Ping(tgt.ip, 3*time.Second)
		if ok {
			fmt.Printf("  %s  %v  UP   rtt=%v\n", tgt.name, tgt.ip, rtt.Round(time.Microsecond))
		} else {
			fmt.Printf("  %s  %v  DOWN\n", tgt.name, tgt.ip)
		}
	}

	// Diagnosis done: tear down and the appliance is instantly free for
	// the next client — "improving the utilization of test equipment".
	if err := cloud.Client.Teardown("remote-diagnosis"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndiagnosis complete; appliance released for the next engagement")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
