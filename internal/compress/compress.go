// Package compress implements RNL's template-based packet compression
// (paper §4): performance-testing packets are usually generated from one
// template and differ only in small markings (sequence numbers, IDs,
// checksums), so encoding each packet as an XOR-delta against a recently
// seen packet of the same length yields high compression ratios.
//
// Compressor and Decompressor form a synchronized pair: both maintain an
// identical ring of recent packets, so only the ring slot of the template
// travels on the (ordered, reliable) tunnel alongside the delta.
package compress

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Method identifies how a packet was encoded.
const (
	methodRaw   byte = 0
	methodDelta byte = 1
	// methodSame marks a packet byte-identical to its template: the
	// encoding is two bytes (method, slot) and the decoder replays the
	// template verbatim — a template hit skips serialization entirely,
	// which is the common case for generated test traffic re-sending
	// one frame (the batch drain's fastest path).
	methodSame byte = 2
)

// RingSize is how many recent packets each side remembers. A byte-sized
// ring keeps the template reference to a single byte on the wire.
const RingSize = 64

// ring is the shared template memory.
type ring struct {
	slots [RingSize][]byte
	next  int
	// byLen maps packet length to the most recent slot of that length;
	// template matching is length-exact, which is both fast and the
	// common case for generated traffic.
	byLen map[int]int
}

func newRing() *ring {
	return &ring{byLen: make(map[int]int)}
}

// add stores a packet (copied) and returns its slot.
func (r *ring) add(pkt []byte) int {
	slot := r.next
	r.slots[slot] = append(r.slots[slot][:0], pkt...)
	r.byLen[len(pkt)] = slot
	r.next = (r.next + 1) % RingSize
	return slot
}

// candidate returns the most recent slot holding a packet of length n.
func (r *ring) candidate(n int) (int, bool) {
	slot, ok := r.byLen[n]
	if !ok || len(r.slots[slot]) != n {
		// Stale index: the slot was overwritten by a different length.
		return 0, false
	}
	return slot, true
}

// Compressor encodes packets as deltas against its ring.
type Compressor struct {
	ring *ring
	// scratch reused across calls to avoid per-packet allocation.
	scratch []byte

	// Stats.
	In, Out    uint64 // bytes before and after encoding
	RawCount   uint64
	DeltaCount uint64
	SameCount  uint64 // exact template hits (two-byte encodings)
}

// NewCompressor returns an empty-state compressor.
func NewCompressor() *Compressor { return &Compressor{ring: newRing()} }

// Ratio reports the cumulative compression ratio (input/output); 1.0 when
// nothing has been saved.
func (c *Compressor) Ratio() float64 {
	if c.Out == 0 {
		return 1
	}
	return float64(c.In) / float64(c.Out)
}

// Compress encodes pkt. The returned slice is only valid until the next
// call; callers that keep it must copy.
func (c *Compressor) Compress(pkt []byte) []byte {
	c.In += uint64(len(pkt))
	slot, ok := c.ring.candidate(len(pkt))
	var enc []byte
	if ok {
		// The two-byte encoding only pays past one byte — and an empty
		// packet's ring slot stays nil, which the decoder must keep
		// treating as "never seen".
		if len(pkt) > 1 && bytes.Equal(c.ring.slots[slot], pkt) {
			// Exact template hit: skip the delta scan altogether.
			c.scratch = append(c.scratch[:0], methodSame, byte(slot))
			c.ring.add(pkt)
			c.SameCount++
			c.Out += 2
			return c.scratch
		}
		enc = encodeDelta(c.scratch[:0], byte(slot), c.ring.slots[slot], pkt)
	}
	if enc == nil || len(enc) >= len(pkt)+1 {
		// Delta did not pay off (or no template): send raw.
		c.scratch = append(c.scratch[:0], methodRaw)
		c.scratch = append(c.scratch, pkt...)
		enc = c.scratch
		c.RawCount++
	} else {
		c.scratch = enc
		c.DeltaCount++
	}
	c.ring.add(pkt)
	c.Out += uint64(len(enc))
	return enc
}

// Decompressor reverses Compressor; the two must see the same packet
// sequence.
type Decompressor struct {
	ring *ring
}

// NewDecompressor returns an empty-state decompressor.
func NewDecompressor() *Decompressor { return &Decompressor{ring: newRing()} }

// Decompress decodes one encoded packet and returns a fresh slice.
func (d *Decompressor) Decompress(enc []byte) ([]byte, error) {
	if len(enc) < 1 {
		return nil, fmt.Errorf("compress: empty encoding")
	}
	switch enc[0] {
	case methodRaw:
		pkt := append([]byte(nil), enc[1:]...)
		d.ring.add(pkt)
		return pkt, nil
	case methodDelta:
		pkt, err := decodeDelta(enc[1:], d.ring)
		if err != nil {
			return nil, err
		}
		d.ring.add(pkt)
		return pkt, nil
	case methodSame:
		if len(enc) != 2 {
			return nil, fmt.Errorf("compress: same-encoding must be 2 bytes, got %d", len(enc))
		}
		slot := int(enc[1])
		if slot >= RingSize || d.ring.slots[slot] == nil {
			return nil, fmt.Errorf("compress: same references empty slot %d", slot)
		}
		pkt := append([]byte(nil), d.ring.slots[slot]...)
		d.ring.add(pkt)
		return pkt, nil
	default:
		return nil, fmt.Errorf("compress: unknown method %d", enc[0])
	}
}

// encodeDelta emits: methodDelta, slot byte, then a sequence of
// (skip uvarint, litLen uvarint, literal bytes) runs covering every byte
// where pkt differs from the template. Returns nil if it cannot beat raw.
func encodeDelta(dst []byte, slot byte, tmpl, pkt []byte) []byte {
	dst = append(dst, methodDelta, slot)
	var varbuf [binary.MaxVarintLen64]byte
	i := 0
	n := len(pkt)
	budget := n // stop early if we exceed the raw size
	for i < n {
		runStart := i
		for i < n && pkt[i] == tmpl[i] {
			i++
		}
		skip := i - runStart
		litStart := i
		for i < n && pkt[i] != tmpl[i] {
			i++
		}
		// Short matching gaps inside a literal aren't worth a run
		// header; extend the literal across them.
		for i < n {
			j := i
			for j < n && pkt[j] == tmpl[j] {
				j++
			}
			if j-i > 3 || j == n {
				break
			}
			i = j
			for i < n && pkt[i] != tmpl[i] {
				i++
			}
		}
		lit := pkt[litStart:i]
		if len(lit) == 0 && i >= n {
			break
		}
		k := binary.PutUvarint(varbuf[:], uint64(skip))
		dst = append(dst, varbuf[:k]...)
		k = binary.PutUvarint(varbuf[:], uint64(len(lit)))
		dst = append(dst, varbuf[:k]...)
		dst = append(dst, lit...)
		if len(dst) > budget {
			return nil
		}
	}
	return dst
}

// decodeDelta reconstructs a packet from runs applied over the template.
func decodeDelta(payload []byte, r *ring) ([]byte, error) {
	if len(payload) < 1 {
		return nil, fmt.Errorf("compress: delta missing slot")
	}
	slot := int(payload[0])
	if slot >= RingSize || r.slots[slot] == nil {
		return nil, fmt.Errorf("compress: delta references empty slot %d", slot)
	}
	tmpl := r.slots[slot]
	pkt := append([]byte(nil), tmpl...)
	rest := payload[1:]
	pos := 0
	for len(rest) > 0 {
		skip, k := binary.Uvarint(rest)
		if k <= 0 {
			return nil, fmt.Errorf("compress: bad skip varint")
		}
		rest = rest[k:]
		litLen, k := binary.Uvarint(rest)
		if k <= 0 {
			return nil, fmt.Errorf("compress: bad literal varint")
		}
		rest = rest[k:]
		pos += int(skip)
		if uint64(len(rest)) < litLen || pos+int(litLen) > len(pkt) {
			return nil, fmt.Errorf("compress: delta overruns packet (pos %d, lit %d, pkt %d)", pos, litLen, len(pkt))
		}
		copy(pkt[pos:], rest[:litLen])
		pos += int(litLen)
		rest = rest[litLen:]
	}
	return pkt, nil
}
