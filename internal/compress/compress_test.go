package compress

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

// pair returns a synchronized compressor/decompressor.
func pair() (*Compressor, *Decompressor) {
	return NewCompressor(), NewDecompressor()
}

// roundtrip pushes packets through a pair, failing on any mismatch.
func roundtrip(t *testing.T, pkts [][]byte) *Compressor {
	t.Helper()
	c, d := pair()
	for i, p := range pkts {
		enc := c.Compress(p)
		got, err := d.Decompress(enc)
		if err != nil {
			t.Fatalf("packet %d: decompress: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("packet %d: roundtrip mismatch (%d vs %d bytes)", i, len(got), len(p))
		}
	}
	return c
}

// templatePackets builds n packets from one template, varying only a
// 4-byte sequence field — the paper's performance-testing workload.
func templatePackets(n, size int) [][]byte {
	base := make([]byte, size)
	r := rand.New(rand.NewSource(42))
	r.Read(base)
	out := make([][]byte, n)
	for i := range out {
		p := append([]byte(nil), base...)
		binary.BigEndian.PutUint32(p[40:44], uint32(i)) // a "sequence number"
		binary.BigEndian.PutUint16(p[24:26], uint16(i)) // an "IP ID"
		out[i] = p
	}
	return out
}

func TestRoundtripTemplateStream(t *testing.T) {
	c := roundtrip(t, templatePackets(500, 1000))
	if c.DeltaCount < 490 {
		t.Errorf("expected nearly all packets delta-encoded, got %d/500", c.DeltaCount)
	}
	if r := c.Ratio(); r < 20 {
		t.Errorf("template stream ratio = %.1f, want > 20x", r)
	}
}

func TestRoundtripRandomPackets(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	pkts := make([][]byte, 200)
	for i := range pkts {
		p := make([]byte, 60+r.Intn(1200))
		r.Read(p)
		pkts[i] = p
	}
	c := roundtrip(t, pkts)
	// Random data must not blow up: overhead bounded to 1 byte/packet.
	if c.Out > c.In+uint64(len(pkts)) {
		t.Errorf("random stream grew: in=%d out=%d", c.In, c.Out)
	}
}

func TestRoundtripMixedSizes(t *testing.T) {
	var pkts [][]byte
	for i := 0; i < 50; i++ {
		pkts = append(pkts, templatePackets(1, 64)[0], templatePackets(1, 512)[0], templatePackets(1, 1500)[0])
	}
	roundtrip(t, pkts)
}

func TestIdenticalPacketsCompressToAlmostNothing(t *testing.T) {
	p := bytes.Repeat([]byte{0xAB}, 1400)
	pkts := make([][]byte, 100)
	for i := range pkts {
		pkts[i] = p
	}
	c := roundtrip(t, pkts)
	if r := c.Ratio(); r < 80 {
		t.Errorf("identical packets ratio = %.1f, want > 80x", r)
	}
}

func TestEmptyAndTinyPackets(t *testing.T) {
	roundtrip(t, [][]byte{{}, {1}, {1}, {2, 3}, {2, 4}, {}})
}

func TestDecompressErrors(t *testing.T) {
	d := NewDecompressor()
	if _, err := d.Decompress(nil); err == nil {
		t.Error("empty encoding should fail")
	}
	if _, err := d.Decompress([]byte{99, 1, 2}); err == nil {
		t.Error("unknown method should fail")
	}
	if _, err := d.Decompress([]byte{methodDelta}); err == nil {
		t.Error("delta without slot should fail")
	}
	if _, err := d.Decompress([]byte{methodDelta, 5, 0x01, 0x01, 0xFF}); err == nil {
		t.Error("delta referencing an empty slot should fail")
	}
}

func TestDeltaOverrunRejected(t *testing.T) {
	c, d := pair()
	base := make([]byte, 100)
	d.Decompress(c.Compress(base)) // prime slot 0 on both sides
	// Handcraft a delta claiming a literal past the end of the template.
	evil := []byte{methodDelta, 0}
	var varbuf [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(varbuf[:], 90)
	evil = append(evil, varbuf[:k]...)
	k = binary.PutUvarint(varbuf[:], 50) // 90+50 > 100
	evil = append(evil, varbuf[:k]...)
	evil = append(evil, bytes.Repeat([]byte{1}, 50)...)
	if _, err := d.Decompress(evil); err == nil {
		t.Error("overrunning delta should be rejected")
	}
}

func TestRingWrapKeepsSync(t *testing.T) {
	// Push far more packets than RingSize with varying lengths to force
	// slot reuse and stale byLen entries.
	r := rand.New(rand.NewSource(3))
	var pkts [][]byte
	for i := 0; i < RingSize*5; i++ {
		size := 100 + (i%7)*33
		p := make([]byte, size)
		r.Read(p)
		pkts = append(pkts, p)
		// Repeat some packets to exercise delta paths mid-wrap.
		if i%3 == 0 {
			q := append([]byte(nil), p...)
			q[size/2]++
			pkts = append(pkts, q)
		}
	}
	roundtrip(t, pkts)
}

func TestQuickRoundtripProperty(t *testing.T) {
	f := func(seed int64, sizes []uint16) bool {
		if len(sizes) > 64 {
			sizes = sizes[:64]
		}
		r := rand.New(rand.NewSource(seed))
		c, d := pair()
		var prev []byte
		for _, sz := range sizes {
			n := int(sz % 1600)
			var p []byte
			if prev != nil && len(prev) == n && r.Intn(2) == 0 {
				// Mutated repeat of the previous packet.
				p = append([]byte(nil), prev...)
				if n > 0 {
					p[r.Intn(n)] ^= byte(r.Intn(255) + 1)
				}
			} else {
				p = make([]byte, n)
				r.Read(p)
			}
			got, err := d.Decompress(c.Compress(p))
			if err != nil || !bytes.Equal(got, p) {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCompressTemplateStream(b *testing.B) {
	pkts := templatePackets(1000, 1000)
	b.SetBytes(1000)
	b.ReportAllocs()
	c := NewCompressor()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Compress(pkts[i%len(pkts)])
	}
	b.ReportMetric(c.Ratio(), "ratio")
}

func BenchmarkDecompressTemplateStream(b *testing.B) {
	pkts := templatePackets(1000, 1000)
	c := NewCompressor()
	encs := make([][]byte, len(pkts))
	for i, p := range pkts {
		encs[i] = append([]byte(nil), c.Compress(p)...)
	}
	d := NewDecompressor()
	b.SetBytes(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Decompress(encs[i%len(encs)]); err != nil {
			b.Fatal(err)
		}
	}
}
