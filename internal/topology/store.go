package topology

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"rnl/internal/wal"
)

// Store keeps saved designs ("The design data is stored in the web
// server"). With a directory it persists each design as a JSON file;
// without one it is memory-only.
type Store struct {
	dir string

	mu      sync.Mutex
	designs map[string]*Design
}

// NewStore creates a store, loading any designs already in dir.
func NewStore(dir string) (*Store, error) {
	s := &Store{dir: dir, designs: make(map[string]*Design)}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("topology: creating store dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("topology: reading store dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		var d Design
		if json.Unmarshal(b, &d) != nil || d.Validate() != nil {
			continue
		}
		s.designs[d.Name] = &d
	}
	return s, nil
}

// fileFor maps a design name to a file path, rejecting path tricks.
func (s *Store) fileFor(name string) (string, error) {
	if strings.ContainsAny(name, "/\\") || name == "." || name == ".." {
		return "", fmt.Errorf("topology: invalid design name %q", name)
	}
	return filepath.Join(s.dir, name+".json"), nil
}

// Save validates and stores a design (overwriting any previous version).
func (s *Store) Save(d *Design) error {
	if err := d.Validate(); err != nil {
		return err
	}
	cp := d.Clone()
	cp.SavedAt = time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.designs[cp.Name] = cp
	if s.dir == "" {
		return nil
	}
	path, err := s.fileFor(cp.Name)
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return err
	}
	// Crash-durable atomic write: fsync the temp file before the rename
	// and the directory after, or a power loss can lose the whole file.
	return wal.WriteFileAtomic(nil, path, b, 0o644)
}

// Load returns a copy of a saved design.
func (s *Store) Load(name string) (*Design, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.designs[name]
	if !ok {
		return nil, fmt.Errorf("topology: no design %q", name)
	}
	return d.Clone(), nil
}

// List returns saved design names, sorted.
func (s *Store) List() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.designs))
	for n := range s.designs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Delete removes a saved design.
func (s *Store) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.designs[name]; !ok {
		return fmt.Errorf("topology: no design %q", name)
	}
	delete(s.designs, name)
	if s.dir == "" {
		return nil
	}
	path, err := s.fileFor(name)
	if err != nil {
		return err
	}
	err = os.Remove(path)
	if os.IsNotExist(err) {
		return nil
	}
	return err
}
