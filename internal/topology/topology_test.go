package topology

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func validDesign() *Design {
	return &Design{
		Name:    "lab1",
		Owner:   "alice",
		Routers: []string{"r1", "r2"},
		Links:   []Link{{A: PortRef{"r1", "e0"}, B: PortRef{"r2", "e0"}}},
	}
}

func TestDesignValidate(t *testing.T) {
	if err := validDesign().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		edit func(*Design)
	}{
		{"empty name", func(d *Design) { d.Name = "" }},
		{"router twice", func(d *Design) { d.Routers = append(d.Routers, "r1") }},
		{"self link", func(d *Design) { d.Links[0].B = d.Links[0].A }},
		{"unplaced router", func(d *Design) { d.Links[0].B.Router = "ghost" }},
		{"port reuse", func(d *Design) {
			d.Routers = append(d.Routers, "r3")
			d.Links = append(d.Links, Link{A: PortRef{"r1", "e0"}, B: PortRef{"r3", "e0"}})
		}},
		{"config for unplaced router", func(d *Design) { d.Configs = map[string]string{"ghost": "x"} }},
		{"incomplete port", func(d *Design) { d.Links[0].A.Port = "" }},
	}
	for _, c := range cases {
		d := validDesign()
		c.edit(d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: validation should fail", c.name)
		}
	}
}

func TestDesignConnectRollsBackOnError(t *testing.T) {
	d := validDesign()
	// Connecting an already-used port must not leave a broken link.
	if err := d.Connect("r1", "e0", "r2", "e1"); err == nil {
		t.Fatal("reusing r1.e0 should fail")
	}
	if len(d.Links) != 1 {
		t.Errorf("failed Connect left %d links", len(d.Links))
	}
	if err := d.Connect("r1", "e1", "r2", "e1"); err != nil {
		t.Fatalf("valid Connect failed: %v", err)
	}
}

func TestDesignExportImport(t *testing.T) {
	d := validDesign()
	d.Configs = map[string]string{"r1": "hostname r1"}
	var buf bytes.Buffer
	if err := d.Export(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Import(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != d.Name || len(got.Links) != 1 || got.Configs["r1"] != "hostname r1" {
		t.Errorf("import mismatch: %+v", got)
	}
	// Corrupt/invalid JSON fails cleanly.
	if _, err := Import(strings.NewReader("{nope")); err == nil {
		t.Error("bad JSON should fail")
	}
	if _, err := Import(strings.NewReader(`{"name":""}`)); err == nil {
		t.Error("invalid design should fail import validation")
	}
}

func TestDesignClone(t *testing.T) {
	d := validDesign()
	d.Configs = map[string]string{"r1": "a"}
	cp := d.Clone()
	cp.Routers[0] = "mutated"
	cp.Configs["r1"] = "b"
	if d.Routers[0] != "r1" || d.Configs["r1"] != "a" {
		t.Error("Clone shares state with original")
	}
}

func TestStoreMemory(t *testing.T) {
	s, err := NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(validDesign()); err != nil {
		t.Fatal(err)
	}
	d, err := s.Load("lab1")
	if err != nil || d.Name != "lab1" {
		t.Fatalf("Load: %v %v", d, err)
	}
	if got := s.List(); len(got) != 1 || got[0] != "lab1" {
		t.Errorf("List = %v", got)
	}
	// Loaded copies are isolated.
	d.Routers[0] = "mutated"
	d2, _ := s.Load("lab1")
	if d2.Routers[0] != "r1" {
		t.Error("store returned a shared pointer")
	}
	if err := s.Delete("lab1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("lab1"); err == nil {
		t.Error("Load after Delete should fail")
	}
	if err := s.Delete("lab1"); err == nil {
		t.Error("double Delete should fail")
	}
}

func TestStorePersistsToDisk(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	d := validDesign()
	d.Notes = "persisted"
	if err := s1.Save(d); err != nil {
		t.Fatal(err)
	}
	// A fresh store over the same directory sees the design.
	s2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Load("lab1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Notes != "persisted" {
		t.Errorf("Notes = %q", got.Notes)
	}
	if got.SavedAt.IsZero() {
		t.Error("SavedAt not stamped")
	}
}

func TestStoreRejectsPathTricks(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	d := validDesign()
	d.Name = "../escape"
	if err := s.Save(d); err == nil {
		// Ensure nothing landed outside the store dir.
		if _, statErr := filepath.Glob(filepath.Join(dir, "..", "escape.json")); statErr == nil {
			t.Error("path-escaping design name was accepted")
		}
		t.Error("path-escaping name should fail")
	}
}

func TestStoreSaveInvalidDesign(t *testing.T) {
	s, _ := NewStore("")
	if err := s.Save(&Design{}); err == nil {
		t.Error("invalid design should not save")
	}
}
