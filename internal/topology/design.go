// Package topology implements RNL's design model (paper §2.1): the virtual
// test lab a user draws on the design plane — which routers are placed,
// which ports are wired together, and each router's saved configuration.
// Designs serialize to JSON for the web server's design store and for the
// "export to local drive" feature.
package topology

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// PortRef names one router port within a design.
type PortRef struct {
	Router string `json:"router"`
	Port   string `json:"port"`
}

func (p PortRef) String() string { return p.Router + "." + p.Port }

// Link is one virtual wire drawn between two ports.
type Link struct {
	A PortRef `json:"a"`
	B PortRef `json:"b"`
}

// Design is a saved test lab layout.
type Design struct {
	Name  string `json:"name"`
	Owner string `json:"owner,omitempty"`
	// Tenant is the owning tenant the API stamps when a tenant-role
	// caller saves the design; empty means unowned (pre-tenancy or
	// operator-saved). Save/delete/save-configs are scoped to it.
	Tenant  string            `json:"tenant,omitempty"`
	Routers []string          `json:"routers"` // inventory names on the design plane
	Links   []Link            `json:"links"`
	Configs map[string]string `json:"configs,omitempty"` // router → saved running-config
	Notes   string            `json:"notes,omitempty"`
	SavedAt time.Time         `json:"saved_at,omitempty"`
}

// Validate checks the structural rules the design plane enforces:
// routers placed once, links only between placed routers, each port wired
// at most once.
func (d *Design) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("topology: design needs a name")
	}
	placed := map[string]bool{}
	for _, r := range d.Routers {
		if r == "" {
			return fmt.Errorf("topology: empty router name in design %q", d.Name)
		}
		if placed[r] {
			return fmt.Errorf("topology: router %q placed twice", r)
		}
		placed[r] = true
	}
	used := map[PortRef]bool{}
	for _, l := range d.Links {
		if l.A == l.B {
			return fmt.Errorf("topology: link connects %s to itself", l.A)
		}
		for _, p := range []PortRef{l.A, l.B} {
			if p.Router == "" || p.Port == "" {
				return fmt.Errorf("topology: link references incomplete port %q", p)
			}
			if !placed[p.Router] {
				return fmt.Errorf("topology: link references router %q not on the design plane", p.Router)
			}
			if used[p] {
				return fmt.Errorf("topology: port %s wired twice", p)
			}
			used[p] = true
		}
	}
	for r := range d.Configs {
		if !placed[r] {
			return fmt.Errorf("topology: saved config for router %q not in design", r)
		}
	}
	return nil
}

// AddRouter places a router on the design plane.
func (d *Design) AddRouter(name string) error {
	for _, r := range d.Routers {
		if r == name {
			return fmt.Errorf("topology: router %q already placed", name)
		}
	}
	d.Routers = append(d.Routers, name)
	return nil
}

// Connect draws a wire between two ports.
func (d *Design) Connect(aRouter, aPort, bRouter, bPort string) error {
	l := Link{A: PortRef{aRouter, aPort}, B: PortRef{bRouter, bPort}}
	d.Links = append(d.Links, l)
	if err := d.Validate(); err != nil {
		d.Links = d.Links[:len(d.Links)-1]
		return err
	}
	return nil
}

// Export writes the design as indented JSON (the "export to local drive"
// feature).
func (d *Design) Export(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// Import reads a design from JSON and validates it.
func Import(r io.Reader) (*Design, error) {
	var d Design
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("topology: decoding design: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Clone deep-copies a design.
func (d *Design) Clone() *Design {
	cp := *d
	cp.Routers = append([]string(nil), d.Routers...)
	cp.Links = append([]Link(nil), d.Links...)
	if d.Configs != nil {
		cp.Configs = make(map[string]string, len(d.Configs))
		for k, v := range d.Configs {
			cp.Configs[k] = v
		}
	}
	return &cp
}
