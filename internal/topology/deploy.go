package topology

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rnl/internal/console"
	"rnl/internal/reservation"
	"rnl/internal/routeserver"
	"rnl/internal/sim"
)

// DefaultRestoreWorkers is the console-restore pool width when
// Deployer.Workers is zero.
const DefaultRestoreWorkers = 8

// Deployer turns saved designs into live labs: it checks the user's
// reservation, resolves inventory names to wire IDs, programs the route
// server's routing matrix, and restores saved configurations through the
// routers' consoles (paper §2.1).
type Deployer struct {
	Server *routeserver.Server
	// Cal, when non-nil, enforces that the deploying user currently
	// holds a reservation on every router in the design.
	Cal *reservation.Calendar
	// ConsoleTimeout bounds each console automation command.
	ConsoleTimeout time.Duration
	// Clock drives console automation timeouts and drains; nil means
	// wall time. Simulated deployments inject their fake clock.
	Clock sim.Clock
	// MaxLabs, when set, returns a tenant's concurrent-lab cap
	// (0 = unlimited). The cap itself is enforced inside the route
	// server's matrix critical section, so racing deploys serialize
	// against it; this hook only resolves the number. A plain function
	// keeps this package free of identity imports.
	MaxLabs func(tenant string) int
	// Workers bounds how many console restores run concurrently during
	// a deploy (0 = DefaultRestoreWorkers; 1 restores strictly
	// sequentially). Each restore drives one router's console, so the
	// pool turns a 1000-router restore from a serial walk into
	// len/Workers waves.
	Workers int
}

// clock resolves the injected clock (wall time by default).
func (dep *Deployer) clock() sim.Clock {
	if dep.Clock != nil {
		return dep.Clock
	}
	return sim.Real{}
}

// resolve maps a design's links onto registered port keys.
func (dep *Deployer) resolve(d *Design) ([]routeserver.Link, error) {
	links := make([]routeserver.Link, 0, len(d.Links))
	for _, l := range d.Links {
		a, err := dep.portKey(l.A)
		if err != nil {
			return nil, err
		}
		b, err := dep.portKey(l.B)
		if err != nil {
			return nil, err
		}
		links = append(links, routeserver.Link{A: a, B: b})
	}
	return links, nil
}

func (dep *Deployer) portKey(p PortRef) (routeserver.PortKey, error) {
	r, ok := dep.Server.RouterByName(p.Router)
	if !ok {
		return routeserver.PortKey{}, fmt.Errorf("topology: router %q not in inventory (offline?)", p.Router)
	}
	port, ok := r.PortByName(p.Port)
	if !ok {
		return routeserver.PortKey{}, fmt.Errorf("topology: router %q has no port %q", p.Router, p.Port)
	}
	return routeserver.PortKey{Router: r.ID, Port: port.ID}, nil
}

// Deploy wires a design up. With restoreConfigs, each router with a saved
// configuration and a console gets it replayed automatically. ctx bounds
// the console automation: an abandoned HTTP request cancels the restore
// (and rolls the half-deployed lab back) instead of driving consoles for
// a client that is gone.
func (dep *Deployer) Deploy(ctx context.Context, user string, d *Design, restoreConfigs bool) error {
	return dep.DeployAs(ctx, user, "", d, restoreConfigs)
}

// DeployAs is Deploy with an explicit owning tenant for quota accounting
// and fair-share attribution; an empty tenant defaults to the user.
func (dep *Deployer) DeployAs(ctx context.Context, user, tenant string, d *Design, restoreConfigs bool) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if dep.Cal != nil && !dep.Cal.HeldBy(user, d.Routers) {
		return fmt.Errorf("topology: user %q does not hold a current reservation for all routers in %q", user, d.Name)
	}
	links, err := dep.resolve(d)
	if err != nil {
		return err
	}
	spec := routeserver.DeploySpec{Name: d.Name, Owner: user, Tenant: tenant}
	if dep.MaxLabs != nil {
		t := tenant
		if t == "" {
			t = user
		}
		spec.MaxTenantLabs = dep.MaxLabs(t)
	}
	var canReclaim func(routeserver.Deployment) bool
	if dep.Cal != nil {
		// A blocking deployment whose owner's reservation lapsed is torn
		// down and taken over — the paper's expiry semantics. The check
		// and the takeover are one critical section on the server, so
		// two deployers racing for the same expired blocker cannot both
		// tear it down and clobber each other's lab.
		canReclaim = dep.reclaimable
	}
	if err := dep.Server.DeployLab(spec, links, canReclaim); err != nil {
		return err
	}
	if !restoreConfigs {
		return nil
	}
	// Restore in sorted router order: map iteration order would make the
	// partially-configured state after a mid-restore failure differ from
	// run to run.
	routers := make([]string, 0, len(d.Configs))
	for router, cfg := range d.Configs {
		if cfg != "" {
			routers = append(routers, router)
		}
	}
	sort.Strings(routers)
	if err := dep.restoreAll(ctx, d, routers); err != nil {
		// Roll back the half-deployed lab: partial restores leave the
		// lab in an unknown state, the one thing RNL exists to prevent.
		// The teardown runs even when err is the client's own
		// cancellation — rollback is owed to the lab invariant, not to
		// the client that walked away, and Teardown takes no context so
		// a dead ctx cannot abort it halfway.
		if terr := dep.Server.Teardown(d.Name); terr != nil {
			return fmt.Errorf("%w (rollback teardown also failed: %v)", err, terr)
		}
		return err
	}
	return nil
}

// restoreAll replays saved configurations through a bounded worker pool
// (Deployer.Workers wide). Rollback contract: the first failure wins,
// its cancellation stops in-flight restores at the next console command
// and keeps queued routers from starting, and the caller tears the
// whole lab down — deploys are all-or-nothing. The error names the
// router whose restore failed first in completion order; with a single
// injected fault that is deterministic.
func (dep *Deployer) restoreAll(ctx context.Context, d *Design, routers []string) error {
	if len(routers) == 0 {
		return nil
	}
	workers := dep.Workers
	if workers <= 0 {
		workers = DefaultRestoreWorkers
	}
	if workers > len(routers) {
		workers = len(routers)
	}
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		jobs     = make(chan string)
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		done     atomic.Int64
	)
	fail := func(router string, err error) {
		errOnce.Do(func() {
			firstErr = fmt.Errorf("topology: restoring %q: %w", router, err)
			cancel()
		})
	}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for router := range jobs {
				if rctx.Err() != nil {
					return
				}
				if err := dep.restoreOne(rctx, router, d.Configs[router]); err != nil {
					fail(router, err)
					return
				}
				done.Add(1)
			}
		}()
	}
feed:
	for _, router := range routers {
		select {
		case jobs <- router:
		case <-rctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if int(done.Load()) != len(routers) {
		// Cancelled between jobs: no restore failed outright, but some
		// never ran. A ctx cancelled before the pool even spun up lands
		// here too.
		err := ctx.Err()
		if err == nil {
			err = context.Canceled
		}
		return fmt.Errorf("topology: restore cancelled: %w", err)
	}
	return nil
}

// reclaimable reports whether a blocking deployment may be torn down for
// a takeover: programmatic (ownerless) labs, labs whose routers all left
// the inventory, and labs whose owner no longer holds a current
// reservation on their routers (paper §2.1). It runs inside the route
// server's matrix critical section, so it must not call back into
// deploy/teardown operations; registry and calendar reads are safe.
func (dep *Deployer) reclaimable(existing routeserver.Deployment) bool {
	var names []string
	for _, rid := range existing.Routers {
		if name, ok := dep.Server.RouterName(rid); ok {
			names = append(names, name)
		}
	}
	if existing.Owner == "" || len(names) == 0 {
		return true
	}
	return !dep.Cal.HeldBy(existing.Owner, names)
}

// restoreOne replays one router's saved configuration over its console.
func (dep *Deployer) restoreOne(ctx context.Context, router, cfg string) error {
	r, ok := dep.Server.RouterByName(router)
	if !ok {
		return fmt.Errorf("router offline")
	}
	if !r.HasConsole {
		// Paper §2.1: unsupported routers require manual restore.
		return fmt.Errorf("router has no console; restore manually")
	}
	sess, err := dep.Server.OpenConsole(r.ID)
	if err != nil {
		return err
	}
	defer sess.Close()
	drv := console.NewDriverClock(sess, dep.consoleTimeout(), dep.clock())
	drv.Drain(20 * time.Millisecond)
	return console.RestoreConfig(ctx, drv, cfg)
}

// SaveConfigs dumps the running configuration of every consoled router in
// the design into d.Configs — what the web UI does when a user with a
// valid reservation saves a design. ctx cancels mid-dump.
func (dep *Deployer) SaveConfigs(ctx context.Context, d *Design) error {
	if d.Configs == nil {
		d.Configs = make(map[string]string)
	}
	for _, router := range d.Routers {
		r, ok := dep.Server.RouterByName(router)
		if !ok || !r.HasConsole {
			continue // unsupported: users save these manually
		}
		sess, err := dep.Server.OpenConsole(r.ID)
		if err != nil {
			return fmt.Errorf("topology: console to %q: %w", router, err)
		}
		drv := console.NewDriverClock(sess, dep.consoleTimeout(), dep.clock())
		drv.Drain(20 * time.Millisecond)
		cfg, err := console.DumpConfig(ctx, drv)
		sess.Close()
		if err != nil {
			return fmt.Errorf("topology: dumping %q: %w", router, err)
		}
		d.Configs[router] = cfg
	}
	return nil
}

// Teardown removes a deployed design's wires.
func (dep *Deployer) Teardown(name string) error {
	return dep.Server.Teardown(name)
}

func (dep *Deployer) consoleTimeout() time.Duration {
	if dep.ConsoleTimeout > 0 {
		return dep.ConsoleTimeout
	}
	return 5 * time.Second
}
