package topology_test

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"testing"
	"time"

	"rnl/internal/device"
	"rnl/internal/netsim"
	"rnl/internal/reservation"
	"rnl/internal/ris"
	"rnl/internal/routeserver"
	"rnl/internal/sim"
	"rnl/internal/topology"
)

func quiet() *slog.Logger { return slog.New(slog.NewTextHandler(io.Discard, nil)) }

// deployRig is a route server plus two consoled hosts behind RIS agents.
type deployRig struct {
	server *routeserver.Server
	dep    *topology.Deployer
	cal    *reservation.Calendar
	clk    *sim.Fake
	hosts  map[string]*device.Host
}

func newDeployRig(t *testing.T, names ...string) *deployRig {
	t.Helper()
	s := routeserver.New(routeserver.Options{Logger: quiet()})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	clk := sim.NewFake(time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC))
	rig := &deployRig{
		server: s,
		cal:    reservation.New(clk),
		clk:    clk,
		hosts:  map[string]*device.Host{},
	}
	rig.dep = &topology.Deployer{Server: s, Cal: rig.cal, ConsoleTimeout: 2 * time.Second}
	for i, name := range names {
		h := device.NewHost(name, device.FastTimers())
		t.Cleanup(h.Close)
		_ = h.Configure([]byte{10, 0, 0, byte(i + 1)}, []byte{255, 255, 255, 0}, nil)
		rig.hosts[name] = h
		nic := netsim.NewIface("pc-" + name + "/eth0")
		w := netsim.Connect(h.Ports()[0], nic, nil)
		t.Cleanup(w.Disconnect)
		sp := netsim.NewSerialPort()
		t.Cleanup(sp.Close)
		go device.AttachConsole(h, sp.DeviceEnd)
		a, err := ris.New(ris.Config{
			ServerAddr: addr, PCName: "pc-" + name,
			Routers: []ris.RouterDef{{
				Name: name, Console: sp.PCEnd,
				Ports: []ris.PortMap{{Name: "eth0", NIC: nic}},
			}},
		}, quiet())
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(a.Close)
	}
	return rig
}

func linkedDesign(name string, routers ...string) *topology.Design {
	d := &topology.Design{Name: name, Routers: routers}
	d.Connect(routers[0], "eth0", routers[1], "eth0")
	return d
}

// pairDesign places every router and wires them in disjoint pairs.
func pairDesign(name string, routers ...string) *topology.Design {
	d := &topology.Design{Name: name, Routers: routers}
	for i := 0; i+1 < len(routers); i += 2 {
		d.Connect(routers[i], "eth0", routers[i+1], "eth0")
	}
	return d
}

func TestDeployerReservationGateAndFakeClock(t *testing.T) {
	rig := newDeployRig(t, "dh1", "dh2")
	d := linkedDesign("dlab", "dh1", "dh2")

	// No reservation: refused.
	if err := rig.dep.Deploy(context.Background(), "alice", d, false); err == nil {
		t.Fatal("deploy without reservation should fail")
	}
	now := rig.clk.Now()
	if _, err := rig.cal.Reserve("alice", d.Routers, now, now.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := rig.dep.Deploy(context.Background(), "alice", d, false); err != nil {
		t.Fatal(err)
	}
	// Reservation lapses on the fake clock: bob reclaims on deploy.
	rig.clk.Advance(2 * time.Hour)
	now = rig.clk.Now()
	if _, err := rig.cal.Reserve("bob", d.Routers, now, now.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	d2 := linkedDesign("dlab2", "dh1", "dh2")
	if err := rig.dep.Deploy(context.Background(), "bob", d2, false); err != nil {
		t.Fatalf("bob should reclaim the expired lab: %v", err)
	}
	deps := rig.server.Deployments()
	if len(deps) != 1 || deps[0].Name != "dlab2" || deps[0].Owner != "bob" {
		t.Fatalf("deployments = %+v", deps)
	}
}

func TestDeployerResolveErrors(t *testing.T) {
	rig := newDeployRig(t, "eh1", "eh2")
	now := rig.clk.Now()
	if _, err := rig.cal.Reserve("u", []string{"eh1", "eh2", "ghost"}, now, now.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	// Router not in inventory.
	d := &topology.Design{Name: "bad1", Routers: []string{"eh1", "ghost"}}
	d.Links = []topology.Link{{A: topology.PortRef{Router: "eh1", Port: "eth0"}, B: topology.PortRef{Router: "ghost", Port: "eth0"}}}
	if err := rig.dep.Deploy(context.Background(), "u", d, false); err == nil || !strings.Contains(err.Error(), "not in inventory") {
		t.Fatalf("err = %v", err)
	}
	// Unknown port.
	d2 := &topology.Design{Name: "bad2", Routers: []string{"eh1", "eh2"}}
	d2.Links = []topology.Link{{A: topology.PortRef{Router: "eh1", Port: "nope"}, B: topology.PortRef{Router: "eh2", Port: "eth0"}}}
	if err := rig.dep.Deploy(context.Background(), "u", d2, false); err == nil || !strings.Contains(err.Error(), "no port") {
		t.Fatalf("err = %v", err)
	}
	// Invalid design caught before anything else.
	if err := rig.dep.Deploy(context.Background(), "u", &topology.Design{}, false); err == nil {
		t.Fatal("invalid design should fail")
	}
}

func TestDeployerSaveAndRestoreConfigs(t *testing.T) {
	rig := newDeployRig(t, "ch1", "ch2")
	d := linkedDesign("clab", "ch1", "ch2")

	// Put distinctive state on ch1, then save configs.
	device.RestoreConfig(rig.hosts["ch1"], "ip gateway 10.0.0.200")
	if err := rig.dep.SaveConfigs(context.Background(), d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(d.Configs["ch1"], "ip gateway 10.0.0.200") {
		t.Fatalf("saved config = %q", d.Configs["ch1"])
	}
	// Change the device, then deploy-with-restore brings it back.
	device.RestoreConfig(rig.hosts["ch1"], "ip gateway 10.0.0.99")
	now := rig.clk.Now()
	rig.cal.Reserve("u", d.Routers, now, now.Add(time.Hour))
	if err := rig.dep.Deploy(context.Background(), "u", d, true); err != nil {
		t.Fatal(err)
	}
	cfg := device.DumpRunningConfig(rig.hosts["ch1"])
	if !strings.Contains(cfg, "ip gateway 10.0.0.200") {
		t.Fatalf("config after restore:\n%s", cfg)
	}
	if err := rig.dep.Teardown("clab"); err != nil {
		t.Fatal(err)
	}
}

// TestDeployerParallelRestore deploys with a multi-worker restore pool
// and checks every router ends up with its own saved config — the
// parallel pipeline must not cross wires between consoles. Run under
// -race this also proves the pool is race-clean.
func TestDeployerParallelRestore(t *testing.T) {
	names := []string{"pp1", "pp2", "pp3", "pp4", "pp5", "pp6"}
	rig := newDeployRig(t, names...)
	d := pairDesign("plab", names...)
	d.Configs = map[string]string{}
	for i, n := range names {
		d.Configs[n] = fmt.Sprintf("ip gateway 10.0.0.%d", 100+i)
	}
	rig.dep.Workers = 4
	now := rig.clk.Now()
	if _, err := rig.cal.Reserve("u", names, now, now.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := rig.dep.Deploy(context.Background(), "u", d, true); err != nil {
		t.Fatal(err)
	}
	for i, n := range names {
		cfg := device.DumpRunningConfig(rig.hosts[n])
		want := fmt.Sprintf("ip gateway 10.0.0.%d", 100+i)
		if !strings.Contains(cfg, want) {
			t.Fatalf("router %s config missing %q:\n%s", n, want, cfg)
		}
	}
	if err := rig.dep.Teardown("plab"); err != nil {
		t.Fatal(err)
	}
}

// TestDeployerParallelRestoreFailureRollsBack injects one rejected
// config line: the deploy must fail naming that router, cancel the rest
// of the pool, and leave no deployment behind (all-or-nothing).
func TestDeployerParallelRestoreFailureRollsBack(t *testing.T) {
	names := []string{"fx1", "fx2", "fx3", "fx4"}
	rig := newDeployRig(t, names...)
	d := pairDesign("flab", names...)
	d.Configs = map[string]string{}
	for _, n := range names {
		d.Configs[n] = "ip gateway 10.0.0.200"
	}
	d.Configs["fx3"] = "frobnicate the flux capacitor" // '%'-rejected
	rig.dep.Workers = 4
	now := rig.clk.Now()
	if _, err := rig.cal.Reserve("u", names, now, now.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	err := rig.dep.Deploy(context.Background(), "u", d, true)
	if err == nil || !strings.Contains(err.Error(), `restoring "fx3"`) {
		t.Fatalf("err = %v, want restore failure naming fx3", err)
	}
	if deps := rig.server.Deployments(); len(deps) != 0 {
		t.Fatalf("failed deploy left deployments behind: %+v", deps)
	}
}

// TestDeployerCancelledRestoreStillTearsDown is the regression test for
// the rollback-under-cancellation bug: when the client's own context is
// dead mid-restore, the rollback teardown must still run to completion
// rather than being aborted by the same cancellation.
func TestDeployerCancelledRestoreStillTearsDown(t *testing.T) {
	rig := newDeployRig(t, "kk1", "kk2")
	d := linkedDesign("klab", "kk1", "kk2")
	d.Configs = map[string]string{
		"kk1": "ip gateway 10.0.0.201",
		"kk2": "ip gateway 10.0.0.202",
	}
	now := rig.clk.Now()
	if _, err := rig.cal.Reserve("u", d.Routers, now, now.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // client walked away before the restore phase
	err := rig.dep.Deploy(ctx, "u", d, true)
	if err == nil || !strings.Contains(err.Error(), "cancel") {
		t.Fatalf("err = %v, want cancellation", err)
	}
	if deps := rig.server.Deployments(); len(deps) != 0 {
		t.Fatalf("cancelled deploy left deployments behind: %+v", deps)
	}
}
