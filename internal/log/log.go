// Package log is RNL's structured JSON logger: a slog.Handler that emits
// exactly one JSON object per line with a deterministic field order and
// timestamps taken from an injected sim.Clock. Under the real clock it is
// an ordinary operational logger for the daemons; under sim.Fake every
// timestamp is virtual, so two runs of the same deterministic scenario
// produce byte-identical logs — the property the detsim harness's replay
// mode asserts on.
//
// Field order is fixed: ts (unless disabled), level, msg, then every
// attribute in the order it was attached (With/WithGroup context first,
// then call-site attrs). No map is ever iterated while rendering, so the
// bytes are a pure function of the log calls.
package log

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"os"
	"strconv"
	"sync"
	"time"

	"rnl/internal/sim"
)

// Options configures a logger.
type Options struct {
	// W receives the JSON lines; nil means os.Stderr.
	W io.Writer
	// Clock supplies timestamps; nil means sim.Real{}.
	Clock sim.Clock
	// Level is the minimum level emitted (default slog.LevelInfo).
	Level slog.Leveler
	// NoTime omits the ts field entirely — for logs that must be
	// byte-identical regardless of when (or on which clock) they ran.
	NoTime bool
}

// New builds a *slog.Logger backed by the deterministic JSON handler, so
// every component that already accepts a *slog.Logger (routeserver, ris,
// the web API) adopts structured logging without code changes.
func New(opts Options) *slog.Logger {
	return slog.New(NewHandler(opts))
}

// Handler is the deterministic JSON slog.Handler. Safe for concurrent
// use; each line is written with a single Write call under a mutex shared
// by every derived (WithAttrs/WithGroup) handler.
type Handler struct {
	opts  Options
	mu    *sync.Mutex
	attrs []byte // pre-rendered ,"k":"v" context fields
	group string // dotted prefix for subsequent attr keys
}

// NewHandler builds the handler; most callers want New.
func NewHandler(opts Options) *Handler {
	if opts.W == nil {
		opts.W = os.Stderr
	}
	if opts.Clock == nil {
		opts.Clock = sim.Real{}
	}
	if opts.Level == nil {
		opts.Level = slog.LevelInfo
	}
	return &Handler{opts: opts, mu: &sync.Mutex{}}
}

// Enabled implements slog.Handler.
func (h *Handler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= h.opts.Level.Level()
}

// WithAttrs implements slog.Handler: the attrs are rendered once, here,
// and prefixed to every record the derived handler emits.
func (h *Handler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := *h
	nh.attrs = append(append([]byte(nil), h.attrs...), renderAttrs(h.group, attrs)...)
	return &nh
}

// WithGroup implements slog.Handler by flattening groups into dotted key
// prefixes ("sess.id"), keeping the output a single flat object whose key
// order is append order.
func (h *Handler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	nh := *h
	nh.group = h.group + name + "."
	return &nh
}

// Handle implements slog.Handler.
func (h *Handler) Handle(_ context.Context, r slog.Record) error {
	buf := make([]byte, 0, 256)
	buf = append(buf, '{')
	if !h.opts.NoTime {
		buf = append(buf, `"ts":`...)
		buf = appendJSONString(buf, h.opts.Clock.Now().UTC().Format(time.RFC3339Nano))
		buf = append(buf, ',')
	}
	buf = append(buf, `"level":`...)
	buf = appendJSONString(buf, r.Level.String())
	buf = append(buf, `,"msg":`...)
	buf = appendJSONString(buf, r.Message)
	buf = append(buf, h.attrs...)
	r.Attrs(func(a slog.Attr) bool {
		buf = append(buf, renderAttrs(h.group, []slog.Attr{a})...)
		return true
	})
	buf = append(buf, '}', '\n')
	h.mu.Lock()
	_, err := h.opts.W.Write(buf)
	h.mu.Unlock()
	return err
}

// renderAttrs renders attrs as `,"key":value` fragments with the given
// dotted group prefix. Group attrs recurse with an extended prefix.
func renderAttrs(prefix string, attrs []slog.Attr) []byte {
	var out []byte
	for _, a := range attrs {
		v := a.Value.Resolve()
		if v.Kind() == slog.KindGroup {
			p := prefix
			if a.Key != "" {
				p = prefix + a.Key + "."
			}
			out = append(out, renderAttrs(p, v.Group())...)
			continue
		}
		if a.Key == "" {
			continue
		}
		out = append(out, ',')
		out = appendJSONString(out, prefix+a.Key)
		out = append(out, ':')
		out = appendValue(out, v)
	}
	return out
}

// appendValue renders one resolved slog value deterministically.
func appendValue(buf []byte, v slog.Value) []byte {
	switch v.Kind() {
	case slog.KindString:
		return appendJSONString(buf, v.String())
	case slog.KindInt64:
		return strconv.AppendInt(buf, v.Int64(), 10)
	case slog.KindUint64:
		return strconv.AppendUint(buf, v.Uint64(), 10)
	case slog.KindFloat64:
		return strconv.AppendFloat(buf, v.Float64(), 'g', -1, 64)
	case slog.KindBool:
		return strconv.AppendBool(buf, v.Bool())
	case slog.KindDuration:
		return appendJSONString(buf, v.Duration().String())
	case slog.KindTime:
		return appendJSONString(buf, v.Time().UTC().Format(time.RFC3339Nano))
	default:
		data, err := json.Marshal(v.Any())
		if err != nil {
			return appendJSONString(buf, "!marshal:"+err.Error())
		}
		return append(buf, data...)
	}
}

// appendJSONString appends s as a JSON string literal.
func appendJSONString(buf []byte, s string) []byte {
	// json.Marshal of a string never fails and handles all escaping; a
	// hand-rolled escaper is not worth the subtle bugs on a cold path.
	data, _ := json.Marshal(s)
	return append(buf, data...)
}
