package log

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"testing"
	"time"

	"rnl/internal/sim"
)

func TestDeterministicBytes(t *testing.T) {
	run := func() []byte {
		var buf bytes.Buffer
		clock := sim.NewFake(time.Unix(1000, 0))
		lg := New(Options{W: &buf, Clock: clock}).With("lab", 7, "tenant", "acme")
		lg.Info("deployed", "routers", 3)
		clock.Advance(250 * time.Millisecond)
		lg.Warn("flap", "session", uint64(12), "up", false)
		lg.WithGroup("sess").Error("torn", "id", 9, "err", "wire closed")
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("two identical runs differ:\n%s\nvs\n%s", a, b)
	}
	want := `{"ts":"1970-01-01T00:16:40Z","level":"INFO","msg":"deployed","lab":7,"tenant":"acme","routers":3}` + "\n" +
		`{"ts":"1970-01-01T00:16:40.25Z","level":"WARN","msg":"flap","lab":7,"tenant":"acme","session":12,"up":false}` + "\n" +
		`{"ts":"1970-01-01T00:16:40.25Z","level":"ERROR","msg":"torn","lab":7,"tenant":"acme","sess.id":9,"sess.err":"wire closed"}` + "\n"
	if string(a) != want {
		t.Errorf("output:\n%s\nwant:\n%s", a, want)
	}
}

func TestEveryLineIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	lg := New(Options{W: &buf, Clock: sim.NewFake(time.Unix(0, 0))})
	lg.Info(`quotes " and \ slashes`, "dur", 1500*time.Millisecond,
		"when", time.Unix(42, 0), "f", 0.5, "list", []int{1, 2},
		slog.Group("g", "x", 1))
	for i, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		var m map[string]any
		if err := json.Unmarshal(line, &m); err != nil {
			t.Fatalf("line %d not valid JSON: %v\n%s", i, err, line)
		}
		if i == 0 {
			if m["g.x"] != float64(1) {
				t.Errorf("group not flattened: %v", m)
			}
			if m["dur"] != "1.5s" {
				t.Errorf("duration = %v", m["dur"])
			}
		}
	}
}

func TestNoTimeAndLevelFilter(t *testing.T) {
	var buf bytes.Buffer
	lg := New(Options{W: &buf, NoTime: true, Level: slog.LevelWarn})
	lg.Info("dropped")
	lg.Warn("kept")
	if got, want := buf.String(), `{"level":"WARN","msg":"kept"}`+"\n"; got != want {
		t.Errorf("got %q want %q", got, want)
	}
}
