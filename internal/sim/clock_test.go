package sim

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestFakeAdvanceFiresDueTimers(t *testing.T) {
	c := NewFake(time.Unix(0, 0))
	var fired atomic.Int32
	c.AfterFunc(10*time.Millisecond, func() { fired.Add(1) })
	c.AfterFunc(20*time.Millisecond, func() { fired.Add(1) })
	c.AfterFunc(time.Hour, func() { fired.Add(100) })

	c.Advance(15 * time.Millisecond)
	if got := fired.Load(); got != 1 {
		t.Errorf("after 15ms: fired = %d, want 1", got)
	}
	c.Advance(10 * time.Millisecond)
	if got := fired.Load(); got != 2 {
		t.Errorf("after 25ms: fired = %d, want 2", got)
	}
	if !c.Now().Equal(time.Unix(0, 0).Add(25 * time.Millisecond)) {
		t.Errorf("Now = %v", c.Now())
	}
}

func TestFakeTimerStop(t *testing.T) {
	c := NewFake(time.Unix(0, 0))
	var fired atomic.Int32
	timer := c.AfterFunc(time.Second, func() { fired.Add(1) })
	if !timer.Stop() {
		t.Error("first Stop should report true")
	}
	if timer.Stop() {
		t.Error("second Stop should report false")
	}
	c.Advance(2 * time.Second)
	if fired.Load() != 0 {
		t.Error("stopped timer fired")
	}
}

func TestFakeTimersFireInOrder(t *testing.T) {
	c := NewFake(time.Unix(0, 0))
	var order []int
	c.AfterFunc(30*time.Millisecond, func() { order = append(order, 3) })
	c.AfterFunc(10*time.Millisecond, func() { order = append(order, 1) })
	c.AfterFunc(20*time.Millisecond, func() { order = append(order, 2) })
	c.Advance(time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("fire order = %v", order)
	}
}

func TestFakeRescheduleInsideCallback(t *testing.T) {
	c := NewFake(time.Unix(0, 0))
	var ticks int
	var tick func()
	tick = func() {
		ticks++
		if ticks < 5 {
			c.AfterFunc(10*time.Millisecond, tick)
		}
	}
	c.AfterFunc(10*time.Millisecond, tick)
	c.Advance(100 * time.Millisecond)
	if ticks != 5 {
		t.Errorf("ticks = %d, want 5 (self-rescheduling timer chain)", ticks)
	}
}

func TestFakeZeroDelayFiresImmediately(t *testing.T) {
	c := NewFake(time.Unix(0, 0))
	var fired atomic.Int32
	c.AfterFunc(0, func() { fired.Add(1) })
	if fired.Load() != 1 {
		t.Error("zero-delay timer did not fire on schedule")
	}
}

func TestRealClockBasics(t *testing.T) {
	var c Clock = Real{}
	before := c.Now()
	done := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("real AfterFunc never fired")
	}
	if !c.Now().After(before.Add(-time.Second)) {
		t.Error("real Now went backwards")
	}
}
