package sim

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFakeAdvanceFiresDueTimers(t *testing.T) {
	c := NewFake(time.Unix(0, 0))
	var fired atomic.Int32
	c.AfterFunc(10*time.Millisecond, func() { fired.Add(1) })
	c.AfterFunc(20*time.Millisecond, func() { fired.Add(1) })
	c.AfterFunc(time.Hour, func() { fired.Add(100) })

	c.Advance(15 * time.Millisecond)
	if got := fired.Load(); got != 1 {
		t.Errorf("after 15ms: fired = %d, want 1", got)
	}
	c.Advance(10 * time.Millisecond)
	if got := fired.Load(); got != 2 {
		t.Errorf("after 25ms: fired = %d, want 2", got)
	}
	if !c.Now().Equal(time.Unix(0, 0).Add(25 * time.Millisecond)) {
		t.Errorf("Now = %v", c.Now())
	}
}

func TestFakeTimerStop(t *testing.T) {
	c := NewFake(time.Unix(0, 0))
	var fired atomic.Int32
	timer := c.AfterFunc(time.Second, func() { fired.Add(1) })
	if !timer.Stop() {
		t.Error("first Stop should report true")
	}
	if timer.Stop() {
		t.Error("second Stop should report false")
	}
	c.Advance(2 * time.Second)
	if fired.Load() != 0 {
		t.Error("stopped timer fired")
	}
}

func TestFakeTimersFireInOrder(t *testing.T) {
	c := NewFake(time.Unix(0, 0))
	var order []int
	c.AfterFunc(30*time.Millisecond, func() { order = append(order, 3) })
	c.AfterFunc(10*time.Millisecond, func() { order = append(order, 1) })
	c.AfterFunc(20*time.Millisecond, func() { order = append(order, 2) })
	c.Advance(time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("fire order = %v", order)
	}
}

func TestFakeRescheduleInsideCallback(t *testing.T) {
	c := NewFake(time.Unix(0, 0))
	var ticks int
	var tick func()
	tick = func() {
		ticks++
		if ticks < 5 {
			c.AfterFunc(10*time.Millisecond, tick)
		}
	}
	c.AfterFunc(10*time.Millisecond, tick)
	c.Advance(100 * time.Millisecond)
	if ticks != 5 {
		t.Errorf("ticks = %d, want 5 (self-rescheduling timer chain)", ticks)
	}
}

func TestFakeZeroDelayFiresOnNextAdvance(t *testing.T) {
	c := NewFake(time.Unix(0, 0))
	var fired atomic.Int32
	c.AfterFunc(0, func() { fired.Add(1) })
	c.AfterFunc(-time.Second, func() { fired.Add(1) })
	// Never synchronously: the caller may hold locks the callback wants.
	if fired.Load() != 0 {
		t.Fatal("zero-delay timer fired inside AfterFunc")
	}
	c.Advance(0)
	if fired.Load() != 2 {
		t.Errorf("due timers after Advance(0) = %d, want 2", fired.Load())
	}
}

// TestFakeAfterFuncWhileLocked is the regression test for the seed's
// fire-while-locked bug: AfterFunc(0) used to re-enter Advance(0)
// synchronously, running the callback while the caller still held its own
// lock — a deadlock whenever the callback wanted that lock too.
func TestFakeAfterFuncWhileLocked(t *testing.T) {
	c := NewFake(time.Unix(0, 0))
	var mu sync.Mutex
	var fired bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		mu.Lock()
		c.AfterFunc(0, func() {
			mu.Lock() // deadlocks here if the callback runs synchronously
			fired = true
			mu.Unlock()
		})
		mu.Unlock()
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("AfterFunc(0) deadlocked against the caller's lock")
	}
	c.Advance(0)
	mu.Lock()
	defer mu.Unlock()
	if !fired {
		t.Error("due timer never fired on Advance")
	}
}

// TestFakeTieBreakByID: timers due at the same instant fire in creation
// order, so identical schedules give identical interleavings across runs.
func TestFakeTieBreakByID(t *testing.T) {
	for run := 0; run < 3; run++ {
		c := NewFake(time.Unix(0, 0))
		var order []int
		for i := 0; i < 8; i++ {
			i := i
			c.AfterFunc(10*time.Millisecond, func() { order = append(order, i) })
		}
		c.Advance(10 * time.Millisecond)
		for i, got := range order {
			if got != i {
				t.Fatalf("run %d: fire order %v, want creation order", run, order)
			}
		}
	}
}

func TestTickerOnFakeClock(t *testing.T) {
	c := NewFake(time.Unix(0, 0))
	tk := NewTicker(c, 10*time.Millisecond)
	defer tk.Stop()
	for i := 1; i <= 3; i++ {
		c.Advance(10 * time.Millisecond)
		select {
		case at := <-tk.C:
			if want := time.Unix(0, 0).Add(time.Duration(i) * 10 * time.Millisecond); !at.Equal(want) {
				t.Errorf("tick %d at %v, want %v", i, at, want)
			}
		default:
			t.Fatalf("tick %d never delivered", i)
		}
	}
	tk.Stop()
	c.Advance(time.Second)
	select {
	case <-tk.C:
		t.Error("stopped ticker still ticking")
	default:
	}
}

func TestWatchdogExpiresOnSilence(t *testing.T) {
	c := NewFake(time.Unix(0, 0))
	var expired atomic.Int32
	w := NewWatchdog(c, 100*time.Millisecond, func() { expired.Add(1) })
	// Touched regularly: never expires.
	for i := 0; i < 5; i++ {
		c.Advance(60 * time.Millisecond)
		w.Touch()
	}
	if expired.Load() != 0 {
		t.Fatal("watchdog expired despite regular touches")
	}
	// Silence: expires exactly once.
	c.Advance(200 * time.Millisecond)
	if expired.Load() != 1 {
		t.Fatalf("expired = %d after silence, want 1", expired.Load())
	}
	c.Advance(time.Second)
	if expired.Load() != 1 {
		t.Error("watchdog expired more than once")
	}
}

func TestWatchdogStop(t *testing.T) {
	c := NewFake(time.Unix(0, 0))
	var expired atomic.Int32
	w := NewWatchdog(c, 50*time.Millisecond, func() { expired.Add(1) })
	w.Stop()
	c.Advance(time.Second)
	if expired.Load() != 0 {
		t.Error("stopped watchdog expired")
	}
}

func TestRealClockBasics(t *testing.T) {
	var c Clock = Real{}
	before := c.Now()
	done := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("real AfterFunc never fired")
	}
	if !c.Now().After(before.Add(-time.Second)) {
		t.Error("real Now went backwards")
	}
}

func TestOneShotRealClock(t *testing.T) {
	o := NewOneShot(Real{})
	defer o.Stop()
	// Reused across iterations: each Arm supersedes the last fire.
	for i := 0; i < 3; i++ {
		o.Arm(time.Millisecond)
		select {
		case <-o.C:
		case <-time.After(5 * time.Second):
			t.Fatalf("iteration %d: timer never fired", i)
		}
	}
}

func TestOneShotRealRearmBeforeFire(t *testing.T) {
	o := NewOneShot(Real{})
	defer o.Stop()
	o.Arm(time.Hour)
	o.Arm(time.Millisecond) // supersedes: must fire at the short delay
	select {
	case <-o.C:
	case <-time.After(5 * time.Second):
		t.Fatal("superseding Arm never fired")
	}
}

func TestOneShotFakeClock(t *testing.T) {
	c := NewFake(time.Unix(0, 0))
	o := NewOneShot(c)
	defer o.Stop()
	o.Arm(10 * time.Millisecond)
	select {
	case <-o.C:
		t.Fatal("fired before virtual time advanced")
	default:
	}
	c.Advance(9 * time.Millisecond)
	select {
	case <-o.C:
		t.Fatal("fired 1ms early")
	default:
	}
	c.Advance(time.Millisecond)
	select {
	case <-o.C:
	default:
		t.Fatal("did not fire once virtual time reached the deadline")
	}
	// Rearm after a fire works on the same channel.
	o.Arm(5 * time.Millisecond)
	c.Advance(5 * time.Millisecond)
	select {
	case <-o.C:
	default:
		t.Fatal("rearmed timer did not fire")
	}
}

func TestOneShotFakeStopAndSupersede(t *testing.T) {
	c := NewFake(time.Unix(0, 0))
	o := NewOneShot(c)
	o.Arm(10 * time.Millisecond)
	o.Stop()
	c.Advance(time.Hour)
	select {
	case <-o.C:
		t.Fatal("stopped timer fired")
	default:
	}
	// A stale armed generation must not leak into a new arming.
	o.Arm(time.Hour)
	o.Arm(time.Millisecond)
	c.Advance(time.Millisecond)
	select {
	case <-o.C:
	default:
		t.Fatal("superseding Arm did not fire on the fake clock")
	}
	c.Advance(2 * time.Hour)
	select {
	case <-o.C:
		t.Fatal("superseded arming fired a second value")
	default:
	}
	o.Stop()
}
