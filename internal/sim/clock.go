// Package sim provides time abstractions for RNL: protocol machinery and
// the reservation calendar run against a Clock interface so tests can use a
// deterministic fake clock while production uses real time.
package sim

import (
	"sort"
	"sync"
	"time"
)

// Clock abstracts time for components that schedule work.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// AfterFunc schedules f to run after d and returns a cancelable timer.
	AfterFunc(d time.Duration, f func()) Timer
	// Sleep blocks for d.
	Sleep(d time.Duration)
}

// Timer is a cancelable scheduled callback.
type Timer interface {
	// Stop cancels the timer; it reports whether the call prevented the
	// callback from firing.
	Stop() bool
}

// Real is the wall-clock implementation of Clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, f func()) Timer { return time.AfterFunc(d, f) }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// Fake is a manually advanced clock for deterministic tests. The zero value
// is not usable; call NewFake.
type Fake struct {
	mu     sync.Mutex
	now    time.Time
	nextID int
	timers []*fakeTimer
}

type fakeTimer struct {
	clock *Fake
	id    int
	when  time.Time
	f     func()
	fired bool
}

// NewFake returns a fake clock starting at the given time.
func NewFake(start time.Time) *Fake {
	return &Fake{now: start}
}

// Now implements Clock.
func (c *Fake) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// AfterFunc implements Clock.
func (c *Fake) AfterFunc(d time.Duration, f func()) Timer {
	c.mu.Lock()
	t := &fakeTimer{clock: c, id: c.nextID, when: c.now.Add(d), f: f}
	c.nextID++
	c.timers = append(c.timers, t)
	c.mu.Unlock()
	if d <= 0 {
		c.Advance(0)
	}
	return t
}

// Sleep implements Clock. On the fake clock Sleep returns immediately:
// deterministic tests drive time with Advance, and a blocking Sleep would
// deadlock single-goroutine tests.
func (c *Fake) Sleep(time.Duration) {}

// Advance moves the clock forward, firing due timers in order. Callbacks
// run without the clock lock held, so they may schedule more timers; timers
// scheduled inside callbacks fire too if they land within the window.
func (c *Fake) Advance(d time.Duration) {
	c.mu.Lock()
	target := c.now.Add(d)
	for {
		var next *fakeTimer
		for _, t := range c.timers {
			if t.fired || t.when.After(target) {
				continue
			}
			if next == nil || t.when.Before(next.when) ||
				(t.when.Equal(next.when) && t.id < next.id) {
				next = t
			}
		}
		if next == nil {
			break
		}
		next.fired = true
		if next.when.After(c.now) {
			c.now = next.when
		}
		f := next.f
		c.mu.Unlock()
		f()
		c.mu.Lock()
	}
	c.now = target
	c.compactLocked()
	c.mu.Unlock()
}

// compactLocked drops fired timers to bound memory in long tests.
func (c *Fake) compactLocked() {
	live := c.timers[:0]
	for _, t := range c.timers {
		if !t.fired {
			live = append(live, t)
		}
	}
	c.timers = live
	sort.Slice(c.timers, func(i, j int) bool { return c.timers[i].when.Before(c.timers[j].when) })
}

// Stop implements Timer.
func (t *fakeTimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	was := t.fired
	t.fired = true
	return !was
}
