// Package sim provides time abstractions for RNL: protocol machinery and
// the reservation calendar run against a Clock interface so tests can use a
// deterministic fake clock while production uses real time.
package sim

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Clock abstracts time for components that schedule work.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// AfterFunc schedules f to run after d and returns a cancelable timer.
	AfterFunc(d time.Duration, f func()) Timer
	// Sleep blocks for d.
	Sleep(d time.Duration)
}

// Timer is a cancelable scheduled callback.
type Timer interface {
	// Stop cancels the timer; it reports whether the call prevented the
	// callback from firing.
	Stop() bool
}

// Real is the wall-clock implementation of Clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, f func()) Timer { return time.AfterFunc(d, f) }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// Fake is a manually advanced clock for deterministic tests. The zero value
// is not usable; call NewFake.
//
// Determinism contract: timers fire in (when, creation id) order — two runs
// that schedule the same timers in the same order observe the same firing
// schedule. AfterFunc never runs the callback synchronously, even for
// d <= 0: the timer becomes due at the current instant and fires on the
// next Advance (including Advance(0)). Callers may therefore invoke
// AfterFunc while holding their own locks without re-entering themselves.
type Fake struct {
	mu        sync.Mutex
	now       time.Time
	nextID    int
	timers    []*fakeTimer
	advancing bool // an Advance is draining timers on some goroutine
}

type fakeTimer struct {
	clock *Fake
	id    int
	when  time.Time
	f     func()
	fired bool
}

// NewFake returns a fake clock starting at the given time.
func NewFake(start time.Time) *Fake {
	return &Fake{now: start}
}

// Now implements Clock.
func (c *Fake) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// AfterFunc implements Clock. A non-positive d schedules the timer at the
// current instant; it fires on the next Advance call (never synchronously
// inside AfterFunc — see the determinism contract above). Re-entering
// Advance here would run f while the caller potentially holds locks f
// also wants, a deadlock the seed implementation was one unlucky caller
// away from.
func (c *Fake) AfterFunc(d time.Duration, f func()) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d < 0 {
		d = 0
	}
	t := &fakeTimer{clock: c, id: c.nextID, when: c.now.Add(d), f: f}
	c.nextID++
	c.timers = append(c.timers, t)
	return t
}

// Sleep implements Clock. On the fake clock Sleep returns immediately:
// deterministic tests drive time with Advance, and a blocking Sleep would
// deadlock single-goroutine tests.
func (c *Fake) Sleep(time.Duration) {}

// Advance moves the clock forward, firing due timers in deterministic
// (when, id) order. Callbacks run without the clock lock held, so they may
// schedule more timers; timers scheduled inside callbacks fire too if they
// land within the window. A nested Advance from inside a callback (or a
// concurrent Advance from another goroutine) only moves the target time:
// the outermost draining call fires every due timer, keeping the firing
// order a single deterministic sequence.
func (c *Fake) Advance(d time.Duration) {
	c.mu.Lock()
	target := c.now.Add(d)
	if c.advancing {
		// Someone is already draining; just extend their horizon. They
		// re-scan after every callback, so they will pick up the new
		// target (monotonically: never move time backwards).
		if target.After(c.now) {
			c.now = target
		}
		c.mu.Unlock()
		return
	}
	c.advancing = true
	for {
		var next *fakeTimer
		for _, t := range c.timers {
			if t.fired || t.when.After(target) {
				continue
			}
			if next == nil || t.when.Before(next.when) ||
				(t.when.Equal(next.when) && t.id < next.id) {
				next = t
			}
		}
		if next == nil {
			break
		}
		next.fired = true
		if next.when.After(c.now) {
			c.now = next.when
		}
		f := next.f
		c.mu.Unlock()
		f()
		c.mu.Lock()
		// A nested Advance may have pushed time past our target; honor it.
		if c.now.After(target) {
			target = c.now
		}
	}
	if target.After(c.now) {
		c.now = target
	}
	c.advancing = false
	c.compactLocked()
	c.mu.Unlock()
}

// compactLocked drops fired timers to bound memory in long tests. The
// stable (when, id) sort keeps the pending slice in firing order, so a
// scan is cheap and — more importantly — the order is identical across
// runs that scheduled identically.
func (c *Fake) compactLocked() {
	live := c.timers[:0]
	for _, t := range c.timers {
		if !t.fired {
			live = append(live, t)
		}
	}
	c.timers = live
	sort.SliceStable(c.timers, func(i, j int) bool {
		if !c.timers[i].when.Equal(c.timers[j].when) {
			return c.timers[i].when.Before(c.timers[j].when)
		}
		return c.timers[i].id < c.timers[j].id
	})
}

// Stop implements Timer.
func (t *fakeTimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	was := t.fired
	t.fired = true
	return !was
}

// --- ticker ----------------------------------------------------------------

// Ticker delivers the clock's current time on C every interval, built on
// Clock.AfterFunc so it works identically on Real and Fake clocks. Like
// time.Ticker it drops ticks a slow receiver misses (C has capacity 1).
// Call Stop when done.
type Ticker struct {
	C <-chan time.Time

	c        Clock
	ch       chan time.Time
	interval time.Duration

	mu      sync.Mutex
	t       Timer
	stopped bool
}

// NewTicker starts a ticker on the given clock. interval must be > 0.
func NewTicker(c Clock, interval time.Duration) *Ticker {
	if interval <= 0 {
		panic("sim: NewTicker interval must be positive")
	}
	ch := make(chan time.Time, 1)
	tk := &Ticker{C: ch, c: c, ch: ch, interval: interval}
	tk.mu.Lock()
	tk.arm()
	tk.mu.Unlock()
	return tk
}

// arm schedules the next tick; callers hold tk.mu.
func (tk *Ticker) arm() {
	tk.t = tk.c.AfterFunc(tk.interval, tk.tick)
}

func (tk *Ticker) tick() {
	tk.mu.Lock()
	if tk.stopped {
		tk.mu.Unlock()
		return
	}
	tk.arm()
	tk.mu.Unlock()
	select {
	case tk.ch <- tk.c.Now():
	default: // receiver is behind; drop the tick like time.Ticker does
	}
}

// Stop cancels the ticker. It does not close C.
func (tk *Ticker) Stop() {
	tk.mu.Lock()
	tk.stopped = true
	if tk.t != nil {
		tk.t.Stop()
	}
	tk.mu.Unlock()
}

// --- one-shot timer --------------------------------------------------------

// OneShot is a reusable one-shot timer for select loops that repeatedly
// wait varying durations: one timer for the life of the loop instead of a
// fresh garbage timer from time.After per iteration. On the real clock it
// wraps a single time.Timer and re-arms it with Reset; on any other Clock
// (sim.Fake in tests) it schedules through AfterFunc, so waits advance
// deterministically with the fake clock. Arm/Stop and receiving from C
// belong to one owning goroutine; OneShot is not for concurrent use.
type OneShot struct {
	// C delivers the fire time of the most recent Arm.
	C <-chan time.Time

	c  Clock
	rt *time.Timer // real-clock fast path: reused runtime timer

	mu    sync.Mutex // guards gen against late AfterFunc callbacks
	ch    chan time.Time
	t     Timer
	gen   uint64
	armed bool
}

// NewOneShot returns an unarmed timer on the given clock.
func NewOneShot(c Clock) *OneShot {
	o := &OneShot{c: c}
	if _, ok := c.(Real); ok {
		rt := time.NewTimer(time.Hour)
		if !rt.Stop() {
			<-rt.C
		}
		o.rt = rt
		o.C = rt.C
	} else {
		o.ch = make(chan time.Time, 1)
		o.C = o.ch
	}
	return o
}

// Arm schedules the timer to fire on C after d, superseding any previous
// arming whose fire has not been received yet.
func (o *OneShot) Arm(d time.Duration) {
	if o.rt != nil {
		if o.armed && !o.rt.Stop() {
			select {
			case <-o.rt.C:
			default:
			}
		}
		o.rt.Reset(d)
		o.armed = true
		return
	}
	o.mu.Lock()
	if o.t != nil {
		o.t.Stop()
	}
	select {
	case <-o.ch:
	default:
	}
	o.gen++
	gen := o.gen
	o.t = o.c.AfterFunc(d, func() {
		o.mu.Lock()
		defer o.mu.Unlock()
		if gen != o.gen {
			return // superseded by a later Arm or Stop
		}
		select {
		case o.ch <- o.c.Now():
		default:
		}
	})
	o.armed = true
	o.mu.Unlock()
}

// Stop cancels any pending arming and drains C, leaving the timer ready
// to Arm again.
func (o *OneShot) Stop() {
	if o.rt != nil {
		if o.armed && !o.rt.Stop() {
			select {
			case <-o.rt.C:
			default:
			}
		}
		o.armed = false
		return
	}
	o.mu.Lock()
	if o.t != nil {
		o.t.Stop()
		o.t = nil
	}
	o.gen++
	select {
	case <-o.ch:
	default:
	}
	o.armed = false
	o.mu.Unlock()
}

// --- watchdog --------------------------------------------------------------

// Watchdog invokes expired once when no Touch has arrived for a full
// check window — the dead-peer detector tunnels use instead of re-arming
// kernel read deadlines. Touch is a single atomic store with no clock
// read: it sits on the per-frame receive path of every tunnel, where the
// previous mutex+Now() pair was a measured hotspot. The cost of that
// cheapness is coarser expiry: the timer fires every timeout, and a peer
// is declared dead when a whole window passes untouched, so expiry lands
// in [timeout, 2·timeout) after the last frame instead of at exactly
// timeout. Dead-peer detection tolerates that slack by construction —
// the timeout is already a multiple of the keepalive interval. Driven
// entirely by the Clock, it is deterministic under sim.Fake.
type Watchdog struct {
	c       Clock
	timeout time.Duration
	expired func()

	touched atomic.Bool

	mu      sync.Mutex
	t       Timer
	stopped bool
}

// NewWatchdog arms a watchdog; timeout must be > 0. expired runs on the
// clock's timer goroutine (or inside Advance on a fake clock) and must
// not call back into the watchdog.
func NewWatchdog(c Clock, timeout time.Duration, expired func()) *Watchdog {
	if timeout <= 0 {
		panic("sim: NewWatchdog timeout must be positive")
	}
	w := &Watchdog{c: c, timeout: timeout, expired: expired}
	w.mu.Lock()
	w.t = c.AfterFunc(timeout, w.check)
	w.mu.Unlock()
	return w
}

// Touch records liveness, pushing the expiry out to at least one and at
// most two full timeouts from now. One atomic store; safe from any
// goroutine, any rate.
func (w *Watchdog) Touch() {
	w.touched.Store(true)
}

func (w *Watchdog) check() {
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return
	}
	if w.touched.Swap(false) {
		w.t = w.c.AfterFunc(w.timeout, w.check)
		w.mu.Unlock()
		return
	}
	w.stopped = true
	w.mu.Unlock()
	w.expired()
}

// Stop disarms the watchdog; expired will not be called afterwards.
func (w *Watchdog) Stop() {
	w.mu.Lock()
	w.stopped = true
	if w.t != nil {
		w.t.Stop()
	}
	w.mu.Unlock()
}
