package topogen_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"rnl/internal/device"
	"rnl/internal/topogen"
)

func export(t *testing.T, p topogen.Params) []byte {
	t.Helper()
	top, err := topogen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := top.Design.Export(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGenerateDeterministic: the same Params must generate byte-identical
// designs — the detsim corpus and the scale benchmarks replay on that.
func TestGenerateDeterministic(t *testing.T) {
	cases := []topogen.Params{
		{Kind: topogen.FatTree, K: 4, Seed: 7, RIP: true, ACLs: 3},
		{Kind: topogen.Ring, N: 10, Seed: 42, RIP: true},
		{Kind: topogen.Mesh, N: 6, Seed: 1, ACLs: 2},
		{Kind: topogen.StarOfRings, Rings: 3, RingSize: 4, Seed: 9, RIP: true, ACLs: 5},
	}
	for _, p := range cases {
		t.Run(string(p.Kind), func(t *testing.T) {
			a, b := export(t, p), export(t, p)
			if !bytes.Equal(a, b) {
				t.Fatalf("same params generated different designs:\n%s\n---\n%s", a, b)
			}
			top, err := topogen.Generate(p)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := len(top.Design.Routers), p.RouterCount(); got != want {
				t.Fatalf("router count = %d, want %d", got, want)
			}
		})
	}
}

// TestGenerateSeedMovesACLs: changing only the seed must relocate the
// guard ACLs — the seed is part of the topology's identity.
func TestGenerateSeedMovesACLs(t *testing.T) {
	p := topogen.Params{Kind: topogen.Ring, N: 20, RIP: true, ACLs: 4, Seed: 1}
	a := export(t, p)
	p.Seed = 2
	b := export(t, p)
	if bytes.Equal(a, b) {
		t.Fatal("different seeds generated identical designs")
	}
}

// TestFatTreeShape checks the k-ary fat-tree structure: 5k²/4 routers,
// k³/2 links, every core with one port per pod.
func TestFatTreeShape(t *testing.T) {
	const k = 4
	top, err := topogen.Generate(topogen.Params{Kind: topogen.FatTree, K: k})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(top.Design.Routers); got != 5*k*k/4 {
		t.Fatalf("routers = %d, want %d", got, 5*k*k/4)
	}
	if got := len(top.Design.Links); got != k*k*k/2 {
		t.Fatalf("links = %d, want %d", got, k*k*k/2)
	}
	for _, r := range top.Design.Routers {
		if strings.Contains(r, "core") {
			if got := len(top.Ports[r]); got != k {
				t.Fatalf("core %s has %d ports, want %d", r, got, k)
			}
		}
	}
}

// TestGeneratedConfigAcceptedByDevice replays every generated config
// into a real emulated router and checks the state took: rejected lines
// would be silently dropped, so presence in the running-config proves
// the whole grammar parsed.
func TestGeneratedConfigAcceptedByDevice(t *testing.T) {
	top, err := topogen.Generate(topogen.Params{
		Kind: topogen.Ring, N: 5, Seed: 3, RIP: true, ACLs: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range top.Design.Routers {
		r := device.NewRouter(name, top.Ports[name], device.FastTimers())
		device.RestoreConfig(r, top.Design.Configs[name])
		cfg := device.DumpRunningConfig(r)
		r.Close()
		for port, a := range top.Addr[name] {
			want := fmt.Sprintf("ip address %s %s", a.IP, a.Mask)
			if !strings.Contains(cfg, want) {
				t.Fatalf("%s/%s: running-config missing %q:\n%s", name, port, want, cfg)
			}
		}
		if !strings.Contains(cfg, "router rip") {
			t.Fatalf("%s: running-config missing RIP process:\n%s", name, cfg)
		}
		// Every interface must have joined RIP: the dump prints one
		// network statement per RIP-enabled interface subnet.
		if got, want := strings.Count(cfg, " network "), len(top.Ports[name]); got != want {
			t.Fatalf("%s: %d network statements, want %d:\n%s", name, got, want, cfg)
		}
		if !strings.Contains(cfg, "access-list guard") {
			t.Fatalf("%s: running-config missing guard ACL:\n%s", name, cfg)
		}
	}
}

// TestGenerateRejectsBadParams: invalid shapes error instead of
// emitting broken designs.
func TestGenerateRejectsBadParams(t *testing.T) {
	bad := []topogen.Params{
		{Kind: topogen.FatTree, K: 3},
		{Kind: topogen.FatTree, K: 0},
		{Kind: topogen.Ring, N: 1},
		{Kind: topogen.Mesh, N: 0},
		{Kind: topogen.StarOfRings, Rings: 0, RingSize: 3},
		{Kind: "torus"},
	}
	for _, p := range bad {
		if _, err := topogen.Generate(p); err == nil {
			t.Fatalf("Generate(%+v) should fail", p)
		}
	}
}
