// Package topogen generates parameterized lab topologies — fat-tree,
// ring, full mesh, star-of-rings — as topology.Design values with
// deterministic seeded addressing and per-device configurations (RIP,
// static guards, ACLs) in the emulated devices' CLI grammar. The same
// Params always produce byte-identical output: the scale benchmarks,
// the deterministic simulator and the autotest corpus all lean on that
// to replay the exact same lab.
package topogen

import (
	"fmt"
	"math/rand"
	"strings"

	"rnl/internal/topology"
)

// Kind selects the generated topology family.
type Kind string

const (
	// FatTree is a k-ary fat-tree (k even): k pods of k/2 edge and k/2
	// aggregation routers plus (k/2)² cores — 5k²/4 routers total.
	FatTree Kind = "fat-tree"
	// Ring wires N routers in a cycle.
	Ring Kind = "ring"
	// Mesh wires N routers in a full mesh.
	Mesh Kind = "mesh"
	// StarOfRings hangs R rings of S routers off a central hub.
	StarOfRings Kind = "star-of-rings"
)

// Params describes one generated topology. Identical Params generate
// byte-identical topologies — Seed is part of the identity, not a
// source of run-to-run variation.
type Params struct {
	Kind Kind
	// Name is the design name; empty derives "<kind>-<routers>".
	Name string
	// Seed drives the deterministic pseudo-random choices (which
	// routers carry ACLs). Two generations with the same Params are
	// byte-identical; changing only Seed moves the ACLs.
	Seed int64

	// K is the fat-tree arity (even, ≥ 2).
	K int
	// N is the ring or mesh size (≥ 2).
	N int
	// Rings and RingSize shape a star-of-rings (each ≥ 1; RingSize ≥ 2).
	Rings, RingSize int

	// RIP emits a RIP process with one network statement per addressed
	// interface, so the generated lab converges on its own.
	RIP bool
	// ACLs places a two-rule guard ACL (deny 192.168/16, permit any) on
	// this many seeded-chosen routers' first interfaces.
	ACLs int
	// NamePrefix prefixes every router name (default "r").
	NamePrefix string
}

// Addr is one interface's IPv4 address assignment.
type Addr struct {
	IP   string
	Mask string
}

// Topology is a generated design plus the inventory shape needed to
// instantiate it as emulated equipment.
type Topology struct {
	Design *topology.Design
	// Ports lists each router's port names in definition order — the
	// order equipment must be created with for the design to resolve.
	Ports map[string][]string
	// Addr maps router → port → assigned /30 address.
	Addr map[string]map[string]Addr
}

// edge is one generated link between router indexes.
type edge struct{ a, b int }

// Generate builds the topology described by p. The result always
// passes Design.Validate.
func Generate(p Params) (*Topology, error) {
	prefix := p.NamePrefix
	if prefix == "" {
		prefix = "r"
	}
	var (
		names []string
		edges []edge
		err   error
	)
	switch p.Kind {
	case FatTree:
		names, edges, err = fatTree(prefix, p.K)
	case Ring:
		names, edges, err = ring(prefix, p.N)
	case Mesh:
		names, edges, err = mesh(prefix, p.N)
	case StarOfRings:
		names, edges, err = starOfRings(prefix, p.Rings, p.RingSize)
	default:
		err = fmt.Errorf("topogen: unknown kind %q", p.Kind)
	}
	if err != nil {
		return nil, err
	}
	if len(edges) > 1<<21 {
		return nil, fmt.Errorf("topogen: %d links exceed the 10.0.0.0/8 /30 pool", len(edges))
	}
	name := p.Name
	if name == "" {
		name = fmt.Sprintf("%s-%d", p.Kind, len(names))
	}
	t := &Topology{
		Design: &topology.Design{Name: name, Routers: names},
		Ports:  make(map[string][]string, len(names)),
		Addr:   make(map[string]map[string]Addr, len(names)),
	}
	// Lay links down in generation order; each endpoint takes the
	// router's next ethN port and each link carves the next /30 out of
	// 10.0.0.0/8 (link i → network 10.0.0.0 + 4i, .1 on the A side,
	// .2 on the B side).
	for i, e := range edges {
		base := uint32(0x0A000000) + uint32(i)*4
		pa := t.addPort(names[e.a], ip4String(base+1))
		pb := t.addPort(names[e.b], ip4String(base+2))
		t.Design.Links = append(t.Design.Links, topology.Link{
			A: topology.PortRef{Router: names[e.a], Port: pa},
			B: topology.PortRef{Router: names[e.b], Port: pb},
		})
	}
	aclOn := t.pickACLRouters(p, names)
	t.Design.Configs = make(map[string]string, len(names))
	for _, n := range names {
		t.Design.Configs[n] = t.routerConfig(n, p.RIP, aclOn[n])
	}
	if err := t.Design.Validate(); err != nil {
		return nil, fmt.Errorf("topogen: generated invalid design: %w", err)
	}
	return t, nil
}

// addPort allocates the router's next port name and records its /30
// address; returns the port name.
func (t *Topology) addPort(router, ip string) string {
	port := fmt.Sprintf("eth%d", len(t.Ports[router]))
	t.Ports[router] = append(t.Ports[router], port)
	if t.Addr[router] == nil {
		t.Addr[router] = make(map[string]Addr)
	}
	t.Addr[router][port] = Addr{IP: ip, Mask: "255.255.255.252"}
	return port
}

// pickACLRouters chooses p.ACLs routers via the seeded generator.
func (t *Topology) pickACLRouters(p Params, names []string) map[string]bool {
	on := make(map[string]bool, p.ACLs)
	if p.ACLs <= 0 {
		return on
	}
	rng := rand.New(rand.NewSource(p.Seed))
	n := p.ACLs
	if n > len(names) {
		n = len(names)
	}
	for _, i := range rng.Perm(len(names))[:n] {
		on[names[i]] = true
	}
	return on
}

// routerConfig emits one router's saved configuration in the device CLI
// grammar (what console.RestoreConfig replays line by line).
func (t *Topology) routerConfig(router string, rip, acl bool) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "hostname %s\n", router)
	if acl {
		// Guard ACL ahead of the interfaces that reference it.
		sb.WriteString("access-list guard deny ip 192.168.0.0 0.0.255.255 any\n")
		sb.WriteString("access-list guard permit ip any any\n")
	}
	for i, port := range t.Ports[router] {
		a := t.Addr[router][port]
		fmt.Fprintf(&sb, "interface %s\n", port)
		fmt.Fprintf(&sb, " ip address %s %s\n", a.IP, a.Mask)
		if acl && i == 0 {
			sb.WriteString(" ip access-group guard in\n")
		}
		sb.WriteString(" exit\n")
	}
	if rip {
		// The device enables RIP per interface whose subnet contains
		// the named address, so emit one network statement per port.
		sb.WriteString("router rip\n")
		for _, port := range t.Ports[router] {
			fmt.Fprintf(&sb, " network %s\n", t.Addr[router][port].IP)
		}
	}
	return sb.String()
}

// Subnet returns link i's /30 network in CIDR form — what a converged
// routing table must contain for every link in the design.
func (t *Topology) Subnet(i int) string {
	return ip4String(uint32(0x0A000000)+uint32(i)*4) + "/30"
}

func ip4String(v uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// fatTree lays out a k-ary fat-tree. Edge j of pod p connects to every
// aggregation router in its pod; aggregation router j of each pod
// connects to cores [j·k/2, (j+1)·k/2).
func fatTree(prefix string, k int) ([]string, []edge, error) {
	if k < 2 || k%2 != 0 {
		return nil, nil, fmt.Errorf("topogen: fat-tree arity must be even and ≥ 2, got %d", k)
	}
	half := k / 2
	var names []string
	idx := func() int { return len(names) - 1 }
	cores := make([]int, half*half)
	for i := range cores {
		names = append(names, fmt.Sprintf("%s-core-%d", prefix, i))
		cores[i] = idx()
	}
	var edges []edge
	for p := 0; p < k; p++ {
		aggs := make([]int, half)
		for j := 0; j < half; j++ {
			names = append(names, fmt.Sprintf("%s-agg-%d-%d", prefix, p, j))
			aggs[j] = idx()
			for c := j * half; c < (j+1)*half; c++ {
				edges = append(edges, edge{a: aggs[j], b: cores[c]})
			}
		}
		for j := 0; j < half; j++ {
			names = append(names, fmt.Sprintf("%s-edge-%d-%d", prefix, p, j))
			e := idx()
			for _, a := range aggs {
				edges = append(edges, edge{a: e, b: a})
			}
		}
	}
	return names, edges, nil
}

func ring(prefix string, n int) ([]string, []edge, error) {
	if n < 2 {
		return nil, nil, fmt.Errorf("topogen: ring needs ≥ 2 routers, got %d", n)
	}
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("%s-%d", prefix, i)
	}
	edges := make([]edge, 0, n)
	for i := 0; i < n; i++ {
		if n == 2 && i == 1 {
			break // two routers: a single wire, not two parallel ones
		}
		edges = append(edges, edge{a: i, b: (i + 1) % n})
	}
	return names, edges, nil
}

func mesh(prefix string, n int) ([]string, []edge, error) {
	if n < 2 {
		return nil, nil, fmt.Errorf("topogen: mesh needs ≥ 2 routers, got %d", n)
	}
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("%s-%d", prefix, i)
	}
	var edges []edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, edge{a: i, b: j})
		}
	}
	return names, edges, nil
}

func starOfRings(prefix string, rings, size int) ([]string, []edge, error) {
	if rings < 1 || size < 2 {
		return nil, nil, fmt.Errorf("topogen: star-of-rings needs ≥ 1 ring of ≥ 2 routers, got %d×%d", rings, size)
	}
	names := []string{prefix + "-hub"}
	var edges []edge
	for r := 0; r < rings; r++ {
		first := len(names)
		for j := 0; j < size; j++ {
			names = append(names, fmt.Sprintf("%s-ring-%d-%d", prefix, r, j))
		}
		for j := 0; j < size; j++ {
			if size == 2 && j == 1 {
				break
			}
			edges = append(edges, edge{a: first + j, b: first + (j+1)%size})
		}
		edges = append(edges, edge{a: 0, b: first})
	}
	return names, edges, nil
}

// RouterCount reports how many routers Generate would produce for p
// without generating — sizing helper for benchmarks and callers that
// pick parameters to hit a target scale.
func (p Params) RouterCount() int {
	switch p.Kind {
	case FatTree:
		return 5 * p.K * p.K / 4
	case Ring, Mesh:
		return p.N
	case StarOfRings:
		return 1 + p.Rings*p.RingSize
	}
	return 0
}
