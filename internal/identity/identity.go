// Package identity is RNL's stateless multi-tenant identity layer. The
// cloud is one shared pool of scarce equipment (paper §2.1: every
// router's schedule is shared by all users), so every API call and every
// tunnel join must answer *who* is asking before the tenancy layer can
// enforce quotas and fairness. Two credential kinds are accepted:
//
//   - Signed bearer tokens: an HMAC-SHA256 authenticated JSON claim set
//     (tenant ID, role, expiry) minted by any holder of the signing
//     secret. Verification is stateless — any frontend holding the same
//     secret validates tokens minted by any other — which is what lets
//     the identity check scale horizontally with the API fleet.
//   - Static API keys: opaque strings registered at startup and mapped
//     to a fixed claim set, for nightly automation (paper §3.2) that
//     cannot run an interactive login.
//
// Verification happens exactly twice per workload: once at API ingress
// and once at tunnel/console session join. It is never on the packet
// fast path — forwarded frames carry no credentials, and tenant
// attribution rides the forwarding snapshot's precomputed per-lab
// counter blocks instead (see internal/routeserver/fwd.go).
//
// All credential comparisons are constant-time (crypto/hmac.Equal,
// crypto/subtle) so a remote caller cannot binary-search a secret byte
// by byte off response latency.
package identity

import (
	"crypto/hmac"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"rnl/internal/sim"
)

// Role orders what a principal may do. Roles are strictly ranked:
// admin > operator > tenant.
//
//   - RoleTenant: act on the tenant's own resources only (reserve,
//     deploy, tear down, console into its own labs).
//   - RoleOperator: act on any tenant's resources — the lab manager who
//     untangles stuck labs — but cannot mint credentials.
//   - RoleAdmin: everything, including acting as any tenant.
type Role string

// The roles, lowest to highest.
const (
	RoleTenant   Role = "tenant"
	RoleOperator Role = "operator"
	RoleAdmin    Role = "admin"
)

// rank orders roles for AtLeast; unknown roles rank below every real one.
func (r Role) rank() int {
	switch r {
	case RoleAdmin:
		return 3
	case RoleOperator:
		return 2
	case RoleTenant:
		return 1
	}
	return 0
}

// Valid reports whether the role is one of the three known ranks.
func (r Role) Valid() bool { return r.rank() > 0 }

// AtLeast reports whether the role grants at least min's privileges.
func (r Role) AtLeast(min Role) bool { return r.rank() >= min.rank() }

// Claims is what a verified credential asserts about its holder.
type Claims struct {
	// Tenant is the tenant (user) ID every scarce resource is accounted
	// to. Empty only for admin/operator principals acting cross-tenant.
	Tenant string `json:"tenant,omitempty"`
	// Role ranks the principal's privileges.
	Role Role `json:"role"`
	// Expiry is the token's expiration as Unix seconds; zero means the
	// token never expires (API keys, long-lived automation).
	Expiry int64 `json:"exp,omitempty"`
	// IssuedAt is the mint time as Unix seconds, stamped by Sign. The
	// revocation not-before (SetRevokeBefore) compares against it, so
	// tokens minted before a leak can be cut off without rotating the
	// signing secret. Zero (tokens minted by pre-revocation builds) is
	// treated as older than any not-before.
	IssuedAt int64 `json:"iat,omitempty"`
}

// Verification errors. Verify returns ErrBadToken for anything malformed
// or mis-signed — deliberately one error for both, so the response does
// not reveal which stage rejected the credential.
var (
	ErrBadToken = errors.New("identity: invalid token")
	ErrExpired  = errors.New("identity: token expired")
	ErrRevoked  = errors.New("identity: token revoked")
)

// tokenPrefix versions the wire format: "rnl1." + base64url(claims JSON)
// + "." + base64url(HMAC-SHA256(secret, claims JSON)).
const tokenPrefix = "rnl1."

// Authority signs and verifies credentials for one deployment. It is
// safe for concurrent use; the signing secret is fixed at construction.
type Authority struct {
	secret []byte
	clock  sim.Clock

	mu      sync.RWMutex
	apiKeys map[string]Claims
	// revokeBefore, when non-zero, rejects every bearer token issued
	// before it (Unix seconds). API keys are unaffected: they are
	// registered at startup, not minted, so a leaked key is revoked by
	// restarting without it.
	revokeBefore int64
}

// New builds an Authority from a signing secret. clock drives expiry
// checks; nil means wall time (detsim injects sim.Fake).
func New(secret []byte, clock sim.Clock) (*Authority, error) {
	if len(secret) == 0 {
		return nil, errors.New("identity: empty signing secret")
	}
	if clock == nil {
		clock = sim.Real{}
	}
	return &Authority{
		secret:  append([]byte(nil), secret...),
		clock:   clock,
		apiKeys: make(map[string]Claims),
	}, nil
}

func (a *Authority) mac(payload []byte) []byte {
	h := hmac.New(sha256.New, a.secret)
	h.Write(payload)
	return h.Sum(nil)
}

// Sign mints a bearer token for the claims. The claims travel in the
// clear (base64, not encrypted) — tokens carry identity, not secrets —
// and the HMAC binds them to this Authority's secret.
func (a *Authority) Sign(c Claims) (string, error) {
	if !c.Role.Valid() {
		return "", fmt.Errorf("identity: unknown role %q", c.Role)
	}
	if c.IssuedAt == 0 {
		c.IssuedAt = a.clock.Now().Unix()
	}
	payload, err := json.Marshal(c)
	if err != nil {
		return "", err
	}
	enc := base64.RawURLEncoding
	return tokenPrefix + enc.EncodeToString(payload) + "." + enc.EncodeToString(a.mac(payload)), nil
}

// SignFor is the common mint: a tenant-scoped token valid for ttl
// (ttl <= 0 means no expiry).
func (a *Authority) SignFor(tenant string, role Role, ttl time.Duration) (string, error) {
	c := Claims{Tenant: tenant, Role: role}
	if ttl > 0 {
		c.Expiry = a.clock.Now().Add(ttl).Unix()
	}
	return a.Sign(c)
}

// Verify checks a signed bearer token: format, MAC (constant-time) and
// expiry, in that order. The MAC is checked before the payload is even
// parsed, so malformed-JSON probing never reaches the parser unsigned.
func (a *Authority) Verify(token string) (Claims, error) {
	rest, ok := strings.CutPrefix(token, tokenPrefix)
	if !ok {
		return Claims{}, ErrBadToken
	}
	payload64, mac64, ok := strings.Cut(rest, ".")
	if !ok {
		return Claims{}, ErrBadToken
	}
	enc := base64.RawURLEncoding
	payload, err := enc.DecodeString(payload64)
	if err != nil {
		return Claims{}, ErrBadToken
	}
	mac, err := enc.DecodeString(mac64)
	if err != nil {
		return Claims{}, ErrBadToken
	}
	if !hmac.Equal(mac, a.mac(payload)) {
		return Claims{}, ErrBadToken
	}
	var c Claims
	if err := json.Unmarshal(payload, &c); err != nil {
		return Claims{}, ErrBadToken
	}
	if !c.Role.Valid() {
		return Claims{}, ErrBadToken
	}
	if c.Expiry != 0 && !a.clock.Now().Before(time.Unix(c.Expiry, 0)) {
		return Claims{}, ErrExpired
	}
	if nb := a.notBefore(); nb != 0 && c.IssuedAt < nb {
		return Claims{}, ErrRevoked
	}
	return c, nil
}

// SetRevokeBefore invalidates every bearer token issued before t —
// the kill switch for a leaked token, no secret rotation required.
// Tokens minted at or after t (including ones minted from now on)
// keep working; the zero time clears the cutoff. API keys are not
// affected (see Authority.revokeBefore).
func (a *Authority) SetRevokeBefore(t time.Time) {
	a.mu.Lock()
	if t.IsZero() {
		a.revokeBefore = 0
	} else {
		a.revokeBefore = t.Unix()
	}
	a.mu.Unlock()
}

// RevokeBefore returns the current revocation cutoff (zero when unset).
func (a *Authority) RevokeBefore() time.Time {
	if nb := a.notBefore(); nb != 0 {
		return time.Unix(nb, 0)
	}
	return time.Time{}
}

func (a *Authority) notBefore() int64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.revokeBefore
}

// AddAPIKey registers a static key for automation. The claims must name
// a valid role; API keys never expire (revoke by restarting without the
// key).
func (a *Authority) AddAPIKey(key string, c Claims) error {
	if key == "" {
		return errors.New("identity: empty API key")
	}
	if !c.Role.Valid() {
		return fmt.Errorf("identity: unknown role %q", c.Role)
	}
	c.Expiry = 0
	a.mu.Lock()
	a.apiKeys[key] = c
	a.mu.Unlock()
	return nil
}

// lookupAPIKey finds a registered key matching cred. Every registered
// key is compared in constant time regardless of where (or whether) a
// match occurs, so timing reveals only the key count — which the caller
// already influences less than the network jitter floor.
func (a *Authority) lookupAPIKey(cred string) (Claims, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	var (
		found Claims
		hit   int
		credB = []byte(cred)
	)
	for key, claims := range a.apiKeys {
		if subtle.ConstantTimeCompare([]byte(key), credB) == 1 {
			found, hit = claims, 1
		}
	}
	return found, hit == 1
}

// VerifyCredential accepts either credential kind: a registered API key
// or a signed bearer token.
func (a *Authority) VerifyCredential(cred string) (Claims, error) {
	if cred == "" {
		return Claims{}, ErrBadToken
	}
	if c, ok := a.lookupAPIKey(cred); ok {
		return c, nil
	}
	return a.Verify(cred)
}

// TokenEnv is the environment variable daemons and rnlctl read a
// credential from when the -token flag is unset — secrets on argv leak
// into process listings (ps, /proc), the environment does not.
const TokenEnv = "RNL_TOKEN"

// ResolveToken returns the flag value when set, else the RNL_TOKEN
// environment variable. The flag always wins so one-off overrides work.
func ResolveToken(flagValue string) string {
	if flagValue != "" {
		return flagValue
	}
	return os.Getenv(TokenEnv)
}

// Redacted replaces a secret for log and error output: "" stays
// "(unset)", anything else becomes "(redacted)". Never log or format a
// raw credential — argv was fixed by ResolveToken, logs are fixed here.
func Redacted(secret string) string {
	if secret == "" {
		return "(unset)"
	}
	return "(redacted)"
}

// RedactError scrubs a secret from an error's message chain. Transports
// love to echo what they were sent (URLs, handshake lines); any error
// that might have seen the credential goes through here before logging
// or returning to the user.
func RedactError(err error, secret string) error {
	if err == nil || secret == "" {
		return err
	}
	msg := err.Error()
	if !strings.Contains(msg, secret) {
		return err
	}
	return errors.New(strings.ReplaceAll(msg, secret, "(redacted)"))
}
