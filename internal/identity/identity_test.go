package identity

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"rnl/internal/sim"
)

func newAuthority(t *testing.T, clock sim.Clock) *Authority {
	t.Helper()
	a, err := New([]byte("test-secret"), clock)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestSignVerifyRoundtrip(t *testing.T) {
	a := newAuthority(t, nil)
	tok, err := a.Sign(Claims{Tenant: "alice", Role: RoleTenant})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(tok, "rnl1.") {
		t.Fatalf("token %q missing version prefix", tok)
	}
	c, err := a.Verify(tok)
	if err != nil {
		t.Fatal(err)
	}
	if c.Tenant != "alice" || c.Role != RoleTenant {
		t.Fatalf("claims = %+v", c)
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	a := newAuthority(t, nil)
	tok, err := a.Sign(Claims{Tenant: "alice", Role: RoleTenant})
	if err != nil {
		t.Fatal(err)
	}
	cases := []string{
		"",                         // empty
		"garbage",                  // no prefix
		"rnl1.notbase64!!.alsonot", // undecodable
		tok[:len(tok)-2],           // truncated MAC
		strings.Replace(tok, "rnl1.e", "rnl1.f", 1), // flipped payload byte
	}
	// A token signed by a different secret must not verify.
	other, err := New([]byte("other-secret"), nil)
	if err != nil {
		t.Fatal(err)
	}
	foreign, err := other.Sign(Claims{Tenant: "alice", Role: RoleAdmin})
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, foreign)
	for _, bad := range cases {
		if _, err := a.Verify(bad); !errors.Is(err, ErrBadToken) {
			t.Errorf("Verify(%q) = %v, want ErrBadToken", bad, err)
		}
	}
}

func TestExpiryOnFakeClock(t *testing.T) {
	clk := sim.NewFake(time.Unix(1000, 0))
	a := newAuthority(t, clk)
	tok, err := a.SignFor("bob", RoleTenant, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Verify(tok); err != nil {
		t.Fatalf("fresh token rejected: %v", err)
	}
	clk.Advance(time.Hour + time.Second)
	if _, err := a.Verify(tok); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired token error = %v, want ErrExpired", err)
	}
	// ttl <= 0 mints a token that never expires.
	forever, err := a.SignFor("bob", RoleTenant, 0)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(1000000 * time.Hour)
	if _, err := a.Verify(forever); err != nil {
		t.Fatalf("no-expiry token rejected: %v", err)
	}
}

func TestRoleOrdering(t *testing.T) {
	if !RoleAdmin.AtLeast(RoleOperator) || !RoleOperator.AtLeast(RoleTenant) || !RoleTenant.AtLeast(RoleTenant) {
		t.Fatal("role ranking broken upward")
	}
	if RoleTenant.AtLeast(RoleOperator) || RoleOperator.AtLeast(RoleAdmin) {
		t.Fatal("role ranking broken downward")
	}
	if Role("root").Valid() {
		t.Fatal("unknown role considered valid")
	}
	a := newAuthority(t, nil)
	if _, err := a.Sign(Claims{Tenant: "x", Role: "root"}); err == nil {
		t.Fatal("signing an unknown role should fail")
	}
}

func TestAPIKeys(t *testing.T) {
	a := newAuthority(t, nil)
	if err := a.AddAPIKey("nightly-key", Claims{Tenant: "ci", Role: RoleOperator}); err != nil {
		t.Fatal(err)
	}
	c, err := a.VerifyCredential("nightly-key")
	if err != nil || c.Tenant != "ci" || c.Role != RoleOperator {
		t.Fatalf("API key claims = %+v, %v", c, err)
	}
	if _, err := a.VerifyCredential("wrong-key"); err == nil {
		t.Fatal("unknown API key accepted")
	}
	// Signed tokens still verify through the combined entry point.
	tok, err := a.SignFor("alice", RoleTenant, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c, err := a.VerifyCredential(tok); err != nil || c.Tenant != "alice" {
		t.Fatalf("token via VerifyCredential = %+v, %v", c, err)
	}
	if err := a.AddAPIKey("", Claims{Role: RoleTenant}); err == nil {
		t.Fatal("empty API key accepted")
	}
}

func TestQuotas(t *testing.T) {
	q := NewQuotas(Quota{MaxConcurrentLabs: 2, ReservationHours: 10})
	q.Set("vip", Quota{MaxConcurrentLabs: 100, ReservationHours: 1000})
	if got := q.For("anyone"); got.MaxConcurrentLabs != 2 || got.ReservationHours != 10 {
		t.Fatalf("default quota = %+v", got)
	}
	if got := q.For("vip"); got.MaxConcurrentLabs != 100 {
		t.Fatalf("vip quota = %+v", got)
	}
	if got := q.For(""); got != (Quota{}) {
		t.Fatalf("empty tenant quota = %+v, want unlimited", got)
	}
	var nilQ *Quotas
	if got := nilQ.For("x"); got != (Quota{}) {
		t.Fatalf("nil quotas = %+v, want unlimited", got)
	}
}

func TestRedaction(t *testing.T) {
	if Redacted("") != "(unset)" || Redacted("s3cret") != "(redacted)" {
		t.Fatal("Redacted broken")
	}
	err := errors.New("GET http://x/?tok=s3cret: refused")
	got := RedactError(err, "s3cret")
	if strings.Contains(got.Error(), "s3cret") {
		t.Fatalf("secret survived redaction: %v", got)
	}
	if RedactError(err, "") != err {
		t.Fatal("empty secret should pass error through")
	}
	if RedactError(nil, "x") != nil {
		t.Fatal("nil error should stay nil")
	}
}

func TestResolveToken(t *testing.T) {
	t.Setenv(TokenEnv, "from-env")
	if got := ResolveToken(""); got != "from-env" {
		t.Fatalf("ResolveToken(\"\") = %q", got)
	}
	if got := ResolveToken("from-flag"); got != "from-flag" {
		t.Fatalf("flag should win, got %q", got)
	}
}

func TestRevocationNotBefore(t *testing.T) {
	clk := sim.NewFake(time.Unix(1000, 0))
	a, err := New([]byte("secret"), clk)
	if err != nil {
		t.Fatal(err)
	}
	oldTok, err := a.SignFor("acme", RoleTenant, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AddAPIKey("robot-key", Claims{Tenant: "bots", Role: RoleTenant}); err != nil {
		t.Fatal(err)
	}

	// The leak is noticed an hour later: cut off everything minted
	// before "now".
	clk.Advance(time.Hour)
	a.SetRevokeBefore(clk.Now())

	if _, err := a.Verify(oldTok); !errors.Is(err, ErrRevoked) {
		t.Fatalf("pre-cutoff token: err=%v, want ErrRevoked", err)
	}
	if _, err := a.VerifyCredential(oldTok); !errors.Is(err, ErrRevoked) {
		t.Fatalf("pre-cutoff token via VerifyCredential: err=%v, want ErrRevoked", err)
	}
	// Tokens minted at/after the cutoff work.
	newTok, err := a.SignFor("acme", RoleTenant, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c, err := a.Verify(newTok); err != nil || c.Tenant != "acme" {
		t.Fatalf("post-cutoff token: claims=%+v err=%v", c, err)
	}
	// API keys are registered, not minted — unaffected by the cutoff.
	if c, err := a.VerifyCredential("robot-key"); err != nil || c.Tenant != "bots" {
		t.Fatalf("API key after revocation: claims=%+v err=%v", c, err)
	}
	// A token with no iat claim (minted by a pre-revocation build) is
	// treated as older than any cutoff. Sign always stamps iat now, so
	// craft the legacy token by hand.
	payload, _ := json.Marshal(Claims{Tenant: "acme", Role: RoleTenant})
	enc := base64.RawURLEncoding
	legacy := tokenPrefix + enc.EncodeToString(payload) + "." + enc.EncodeToString(a.mac(payload))
	if _, err := a.Verify(legacy); !errors.Is(err, ErrRevoked) {
		t.Fatalf("legacy token without iat: err=%v, want ErrRevoked", err)
	}

	// Clearing the cutoff restores the old token.
	a.SetRevokeBefore(time.Time{})
	if _, err := a.Verify(oldTok); err != nil {
		t.Fatalf("token after clearing cutoff: %v", err)
	}
	if got := a.RevokeBefore(); !got.IsZero() {
		t.Fatalf("RevokeBefore after clear = %v, want zero", got)
	}
}
