package identity

import "sync"

// Quota bounds one tenant's claim on the cloud's scarce resources. Zero
// fields mean unlimited, so the zero Quota is "no quota".
type Quota struct {
	// MaxConcurrentLabs caps how many labs the tenant may have deployed
	// at once. Enforced atomically inside the route server's matrix
	// critical section, so racing deploys cannot both squeeze under it.
	MaxConcurrentLabs int
	// ReservationHours caps the tenant's total outstanding reserved
	// router-hours (sum over not-yet-ended bookings of window length ×
	// routers). Enforced inside reservation.Calendar.Reserve.
	ReservationHours float64
}

// Quotas maps tenants to their quotas, with a default for tenants not
// explicitly listed. Safe for concurrent use.
type Quotas struct {
	mu        sync.RWMutex
	def       Quota
	perTenant map[string]Quota
}

// NewQuotas builds a quota book whose unlisted tenants get def.
func NewQuotas(def Quota) *Quotas {
	return &Quotas{def: def, perTenant: make(map[string]Quota)}
}

// Set overrides one tenant's quota.
func (q *Quotas) Set(tenant string, quota Quota) {
	q.mu.Lock()
	q.perTenant[tenant] = quota
	q.mu.Unlock()
}

// For returns the tenant's quota (the default when not listed, and the
// zero "unlimited" quota for the empty tenant — programmatic callers
// that predate identity are never quota-limited).
func (q *Quotas) For(tenant string) Quota {
	if q == nil || tenant == "" {
		return Quota{}
	}
	q.mu.RLock()
	defer q.mu.RUnlock()
	if quota, ok := q.perTenant[tenant]; ok {
		return quota
	}
	return q.def
}
