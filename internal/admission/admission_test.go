package admission

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"rnl/internal/sim"
)

func TestTokenBucketRate(t *testing.T) {
	clock := sim.NewFake(time.Unix(0, 0))
	b := NewTokenBucketClock(100, 10, clock)
	// The bucket starts full: exactly burst tokens available at once.
	allowed := 0
	for i := 0; i < 50; i++ {
		if b.Allow(1) {
			allowed++
		}
	}
	if allowed != 10 {
		t.Fatalf("burst allowed %d, want 10", allowed)
	}
	// Refill: 100/s for 100ms is exactly 10 more tokens on the fake clock.
	clock.Advance(100 * time.Millisecond)
	allowed = 0
	for i := 0; i < 50; i++ {
		if b.Allow(1) {
			allowed++
		}
	}
	if allowed != 10 {
		t.Fatalf("after refill allowed %d, want exactly 10", allowed)
	}
}

func TestTokenBucketUnlimited(t *testing.T) {
	var nilBucket *TokenBucket
	if !nilBucket.Allow(1) {
		t.Error("nil bucket must allow")
	}
	b := NewTokenBucket(0, 0)
	for i := 0; i < 1000; i++ {
		if !b.Allow(1) {
			t.Fatal("zero-rate bucket must be unlimited")
		}
	}
}

func TestShedderVictimIsNoisiest(t *testing.T) {
	s := NewShedder()
	for i := 0; i < 30; i++ {
		s.Enqueued("noisy")
	}
	for i := 0; i < 3; i++ {
		s.Enqueued("quiet")
	}
	if v := s.Victim(); v != "noisy" {
		t.Fatalf("victim = %q, want noisy", v)
	}
	// Shedding drains the noisy class before quiet ever loses.
	for i := 0; i < 27; i++ {
		s.Shed(s.Victim())
	}
	if got := s.Queued("quiet"); got != 3 {
		t.Fatalf("quiet lost packets while noisy dominated: queued %d, want 3", got)
	}
	by := s.ShedByClass()
	if by["noisy"] != 27 || by["quiet"] != 0 {
		t.Fatalf("shed accounting = %v, want 27 noisy / 0 quiet", by)
	}
	// Ties break deterministically (lexicographic).
	s2 := NewShedder()
	s2.Enqueued("b")
	s2.Enqueued("a")
	if v := s2.Victim(); v != "a" {
		t.Fatalf("tie victim = %q, want a", v)
	}
}

func TestShedderTenantHierarchy(t *testing.T) {
	if HierClass("", "lab1") != "lab1" {
		t.Fatal("empty tenant must degrade to a flat class")
	}
	composite := HierClass("greedy", "lab1")
	if tenant, lab := SplitClass(composite); tenant != "greedy" || lab != "lab1" {
		t.Fatalf("SplitClass(%q) = %q, %q", composite, tenant, lab)
	}
	if tenant, lab := SplitClass("flat"); tenant != "" || lab != "flat" {
		t.Fatalf("SplitClass(flat) = %q, %q", tenant, lab)
	}

	// A tenant spreading load over many labs competes as one aggregate:
	// greedy has 4 labs × 5 queued (20 total, each lab smaller than
	// quiet's 8), quiet has one lab with 8. The victim must come from
	// greedy's group anyway.
	s := NewShedder()
	for lab := 0; lab < 4; lab++ {
		class := HierClass("greedy", fmt.Sprintf("lab%d", lab))
		for i := 0; i < 5; i++ {
			s.Enqueued(class)
		}
	}
	quiet := HierClass("quiet", "labQ")
	for i := 0; i < 8; i++ {
		s.Enqueued(quiet)
	}
	if got := s.QueuedGroup("greedy"); got != 20 {
		t.Fatalf("greedy group occupancy = %d, want 20", got)
	}
	// Shed down to parity: every drop until greedy's total falls to
	// quiet's must hit greedy.
	for i := 0; i < 12; i++ {
		v := s.Victim()
		if tenant, _ := SplitClass(v); tenant != "greedy" {
			t.Fatalf("shed %d picked victim %q, want a greedy class", i, v)
		}
		s.Shed(v)
	}
	if s.Queued(quiet) != 8 {
		t.Fatalf("quiet tenant lost packets: queued %d, want 8", s.Queued(quiet))
	}
	// Within the chosen group, the largest class loses first and ties
	// break lexicographically — greedy's labs are equal, so lab0 first.
	s2 := NewShedder()
	s2.Enqueued(HierClass("t", "b"))
	s2.Enqueued(HierClass("t", "a"))
	if v := s2.Victim(); v != HierClass("t", "a") {
		t.Fatalf("intra-group tie victim = %q", v)
	}
	// Flat classes still behave exactly as before against each other.
	s3 := NewShedder()
	s3.Enqueued("x")
	s3.Enqueued("x")
	s3.Enqueued("y")
	if v := s3.Victim(); v != "x" {
		t.Fatalf("flat victim = %q, want x", v)
	}
	// Group cache survives Reset; counts do not.
	s.Reset()
	if s.QueuedGroup("greedy") != 0 || s.Victim() != "" {
		t.Fatal("reset must clear group occupancy")
	}
	s.Enqueued(composite)
	if v := s.Victim(); v != composite {
		t.Fatalf("post-reset victim = %q", v)
	}
}

func TestShedderReset(t *testing.T) {
	s := NewShedder()
	s.Enqueued("x")
	s.Enqueued("x")
	s.Reset()
	if v := s.Victim(); v != "" {
		t.Fatalf("victim after reset = %q, want empty", v)
	}
	if s.Queued("x") != 0 {
		t.Fatal("counts must clear on reset")
	}
}

func TestGateAdmitsUpToLimit(t *testing.T) {
	g := NewGate("testlimit", GateConfig{MaxInFlight: 2, MaxQueue: 0, QueueWait: 50 * time.Millisecond})
	r1, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Acquire(context.Background()); err != ErrOverloaded {
		t.Fatalf("third acquire = %v, want ErrOverloaded", err)
	}
	r1()
	r1() // double release must be a no-op
	r3, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	r2()
	r3()
	if g.InFlight() != 0 {
		t.Fatalf("inflight = %d after all releases", g.InFlight())
	}
}

func TestGateQueueAdmitsWhenSlotFrees(t *testing.T) {
	g := NewGate("testqueue", GateConfig{MaxInFlight: 1, MaxQueue: 1, QueueWait: 2 * time.Second})
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		r, err := g.Acquire(context.Background())
		if err == nil {
			r()
		}
		got <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter queue
	release()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("queued caller rejected: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("queued caller never admitted")
	}
}

func TestGateQueueDeadline(t *testing.T) {
	clock := sim.NewFake(time.Unix(0, 0))
	g := NewGate("testdeadline", GateConfig{MaxInFlight: 1, MaxQueue: 4, QueueWait: 30 * time.Second, RetryAfter: 7 * time.Second, Clock: clock})
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	got := make(chan error, 1)
	go func() {
		_, err := g.Acquire(context.Background())
		got <- err
	}()
	// Drive virtual time until the queued caller's deadline fires. No
	// real 30s pass; each Advance is a full queue-wait, so the caller is
	// rejected as soon as it has registered its timer.
	for {
		select {
		case err := <-got:
			if err != ErrOverloaded {
				t.Fatalf("queued past deadline = %v, want ErrOverloaded", err)
			}
			if g.RetryAfter() != 7*time.Second {
				t.Fatalf("RetryAfter = %v", g.RetryAfter())
			}
			return
		default:
			clock.Advance(30 * time.Second)
			time.Sleep(time.Millisecond)
		}
	}
}

func TestGateContextCancel(t *testing.T) {
	g := NewGate("testcancel", GateConfig{MaxInFlight: 1, MaxQueue: 4, QueueWait: 10 * time.Second})
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if _, err := g.Acquire(ctx); err != context.Canceled {
		t.Fatalf("canceled acquire = %v, want context.Canceled", err)
	}
}

func TestGateConcurrencyNeverExceeded(t *testing.T) {
	const limit = 3
	g := NewGate("testconc", GateConfig{MaxInFlight: limit, MaxQueue: 100, QueueWait: 5 * time.Second})
	var mu sync.Mutex
	current, peak := 0, 0
	var wg sync.WaitGroup
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := g.Acquire(context.Background())
			if err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			mu.Lock()
			current++
			if current > peak {
				peak = current
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			current--
			mu.Unlock()
			release()
		}()
	}
	wg.Wait()
	if peak > limit {
		t.Fatalf("observed %d concurrent admissions, limit %d", peak, limit)
	}
}

func TestIdempotencySingleFlight(t *testing.T) {
	c := NewIdempotencyCache(time.Minute)
	r, dup := c.Begin("k1")
	if dup {
		t.Fatal("first Begin must not be a duplicate")
	}
	// A concurrent duplicate waits for the original to finish.
	got := make(chan []byte, 1)
	go func() {
		e, d := c.Begin("k1")
		if !d {
			t.Error("second Begin must be a duplicate")
		}
		<-e.Done()
		_, _, body := e.Result()
		got <- body
	}()
	time.Sleep(10 * time.Millisecond)
	r.Finish(200, "application/json", []byte(`{"ok":true}`))
	select {
	case body := <-got:
		if string(body) != `{"ok":true}` {
			t.Fatalf("duplicate replayed %q", body)
		}
	case <-time.After(time.Second):
		t.Fatal("duplicate never saw the result")
	}
	// A later duplicate replays instantly.
	e, d := c.Begin("k1")
	if !d {
		t.Fatal("later Begin must be a duplicate")
	}
	status, ct, _ := e.Result()
	if status != 200 || ct != "application/json" {
		t.Fatalf("replayed status=%d ct=%q", status, ct)
	}
	// Double Finish is a no-op.
	e.Finish(500, "", nil)
	if status, _, _ := e.Result(); status != 200 {
		t.Fatal("second Finish overwrote the result")
	}
}

func TestIdempotencyExpiry(t *testing.T) {
	clock := sim.NewFake(time.Unix(0, 0))
	c := NewIdempotencyCacheClock(time.Minute, clock)
	r, _ := c.Begin("gone")
	r.Finish(200, "", nil)
	clock.Advance(2 * time.Minute)
	if _, dup := c.Begin("gone"); dup {
		t.Fatal("expired key must not replay")
	}
	// Forget drops an entry outright.
	c.Forget("gone")
	if _, dup := c.Begin("gone"); dup {
		t.Fatal("forgotten key must not replay")
	}
}

func TestBackoffGrowthAndJitter(t *testing.T) {
	base, max := 100*time.Millisecond, 2*time.Second
	prevCap := time.Duration(0)
	for attempt := 0; attempt < 12; attempt++ {
		capNow := base << uint(attempt)
		if capNow > max || capNow <= 0 {
			capNow = max
		}
		for i := 0; i < 50; i++ {
			d := Backoff(attempt, base, max)
			if d < base/2 || d > capNow {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, base/2, capNow)
			}
		}
		if capNow < prevCap {
			t.Fatalf("backoff cap shrank at attempt %d", attempt)
		}
		prevCap = capNow
	}
	// Defaults kick in for zero parameters.
	if d := Backoff(3, 0, 0); d <= 0 {
		t.Fatalf("default backoff = %v", d)
	}
}

func TestBackoffRandDeterministic(t *testing.T) {
	schedule := func() []time.Duration {
		rng := rand.New(rand.NewSource(42))
		var out []time.Duration
		for attempt := 0; attempt < 8; attempt++ {
			out = append(out, BackoffRand(rng, attempt, 100*time.Millisecond, 2*time.Second))
		}
		return out
	}
	a, b := schedule(), schedule()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("attempt %d: %v vs %v — seeded backoff must be reproducible", i, a[i], b[i])
		}
	}
}
