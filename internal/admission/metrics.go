package admission

import (
	"fmt"

	"rnl/internal/obs"
)

// Process-wide admission metrics. The shed/throttle counters are the
// accounting series the chaos soak test audits: every packet the
// fair-share policy sheds or a token bucket refuses increments exactly
// one of them.
var (
	mShedTotal = obs.Default().Counter("rnl_admission_shed_total",
		"Packets shed by the fair-share policy across all tunnel send queues.")
	mThrottleTotal = obs.Default().Counter("rnl_admission_throttled_total",
		"Packets refused by per-lab token-bucket rate limiters.")
	mIdemHits = obs.Default().Counter("rnl_admission_idem_hits_total",
		"Mutating API calls suppressed as duplicates by idempotency keys.")
	mIdemEntries = obs.Default().Gauge("rnl_admission_idem_entries",
		"Idempotency results currently cached.")
)

// Throttled counts n packets refused by a rate limiter in the
// process-wide series. Callers that keep their own per-class view (the
// route server's per-lab counters) mirror, never double-count.
func Throttled(n uint64) { mThrottleTotal.Add(n) }

// Per-gate series are registered on first use; registration in obs is
// idempotent, so two gates with the same name share the series.

func gateCounter(gate, what string) *obs.Counter {
	return obs.Default().Counter(
		fmt.Sprintf("rnl_admission_%s_%s_total", gate, what),
		fmt.Sprintf("Callers %s by the %q admission gate.", what, gate))
}

func gateGauge(gate, what string) *obs.Gauge {
	return obs.Default().Gauge(
		fmt.Sprintf("rnl_admission_%s_%s", gate, what),
		fmt.Sprintf("Current %s at the %q admission gate.", what, gate))
}

func gateWaitHist(gate string) *obs.Histogram {
	return obs.Default().Histogram(
		fmt.Sprintf("rnl_admission_%s_wait_seconds", gate),
		fmt.Sprintf("Queue wait before admission at the %q gate.", gate),
		obs.LatencyBuckets)
}
