// Package admission is RNL's overload-protection layer. The cloud is
// shared: many concurrent labs multiplex the same tunnel servers and the
// same web-services API, and the paper's fidelity claim — L2 control
// traffic survives whatever the substrate does to bulk data — only holds
// if one packet-blasting lab cannot starve every other tenant. This
// package supplies the policies; the mechanisms live with their planes:
//
//   - TokenBucket: per-lab rate limiting on the data plane (the route
//     server throttles delivery into a lab past its configured rate).
//   - Shedder: the fair-share shedding policy wire.Conn consults when a
//     tunnel send queue saturates — the class (lab) with the most queued
//     packets loses first, so a noisy lab absorbs its own overload
//     instead of spreading it. Control frames stay exempt upstream.
//   - Gate: bounded-concurrency admission for the web API, with a short
//     wait queue and a deadline; overflow is turned into 429 + a
//     Retry-After hint by the HTTP layer.
//   - IdempotencyCache: single-flight result caching keyed by client
//     idempotency keys, so a retried deploy is applied at most once.
//   - Backoff: the client-side exponential backoff with full jitter that
//     makes those retries polite.
//
// Everything is instrumented through internal/obs as rnl_admission_*
// series; the accounting invariant (every shed or throttled unit is
// counted exactly once) is asserted by the chaos soak test.
package admission

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rnl/internal/obs"
	"rnl/internal/sim"
)

// ErrOverloaded is returned by Gate.Acquire when the gate (including its
// wait queue) is full or the queue deadline passes. The HTTP layer maps
// it to 429 Too Many Requests.
var ErrOverloaded = errors.New("admission: overloaded")

// --- token bucket ----------------------------------------------------------

// TokenBucket is a classic token-bucket rate limiter: rate tokens/second
// refill up to burst. A rate <= 0 disables limiting (Allow always true).
type TokenBucket struct {
	mu     sync.Mutex
	clock  sim.Clock
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

// NewTokenBucket returns a full bucket on the wall clock. burst <= 0
// defaults to rate (one second of credit); both <= 0 means unlimited.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	return NewTokenBucketClock(rate, burst, sim.Real{})
}

// NewTokenBucketClock is NewTokenBucket with an injected clock; a nil
// clock means wall time. Refill is computed from clock.Now deltas, so on
// a fake clock tokens refill only when the test advances time.
func NewTokenBucketClock(rate, burst float64, clock sim.Clock) *TokenBucket {
	if burst <= 0 {
		burst = rate
	}
	if clock == nil {
		clock = sim.Real{}
	}
	return &TokenBucket{clock: clock, rate: rate, burst: burst, tokens: burst, last: clock.Now()}
}

// Allow consumes n tokens if available and reports whether it could.
func (b *TokenBucket) Allow(n float64) bool {
	if b == nil || b.rate <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.clock.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}

// --- fair-share shedder ----------------------------------------------------

// ClassSep separates the tenant and lab halves of a hierarchical
// shedding class built by HierClass. It is a control byte no tenant or
// lab name legitimately contains.
const ClassSep = "\x1f"

// HierClass builds a two-level shedding class: tenant above lab. The
// composite is precomputed at forwarding-snapshot rebuild time (never
// per frame), so tenant-level fairness costs the packet path nothing
// beyond the string it already carried. An empty tenant degrades to the
// plain per-lab class.
func HierClass(tenant, lab string) string {
	if tenant == "" {
		return lab
	}
	return tenant + ClassSep + lab
}

// SplitClass decomposes a shedding class into its tenant and lab halves;
// a non-hierarchical class has tenant "".
func SplitClass(class string) (tenant, lab string) {
	if i := strings.IndexByte(class, ClassSep[0]); i >= 0 {
		return class[:i], class[i+1:]
	}
	return "", class
}

// Shedder tracks how many droppable units each class currently has
// queued and picks the shed victim. Classes are hierarchical: a class
// built with HierClass belongs to its tenant's group, a plain class is
// its own group. The victim is chosen top-down — first the group with
// the most queued units in total, then the largest class inside it, ties
// broken lexicographically at both levels for determinism — so a tenant
// spreading load across many labs competes as one aggregate and can no
// longer starve a single-lab tenant whose per-lab count never tops the
// herd's. With only plain classes the policy reduces exactly to the old
// flat most-queued rule.
//
// It is NOT self-locking — the owning queue (wire.Conn) already
// serializes every call under its own mutex, and a second lock on the
// packet fast path would be pure overhead.
type Shedder struct {
	counts map[string]int
	shed   map[string]uint64 // cumulative sheds per class, for accounting
	// groups caches each class's group key (its tenant, or itself when
	// flat). Parsed once per distinct class and kept across Reset: class
	// strings are interned by the forwarding snapshot, so the cache stays
	// small and the per-enqueue cost is one map hit, no allocation.
	groups      map[string]string
	groupCounts map[string]int
}

// NewShedder returns an empty shedder.
func NewShedder() *Shedder {
	return &Shedder{
		counts:      make(map[string]int),
		shed:        make(map[string]uint64),
		groups:      make(map[string]string),
		groupCounts: make(map[string]int),
	}
}

// groupOf resolves (and caches) the class's group key.
func (s *Shedder) groupOf(class string) string {
	if g, ok := s.groups[class]; ok {
		return g
	}
	g := class
	if tenant, _ := SplitClass(class); tenant != "" {
		g = tenant
	}
	s.groups[class] = g
	return g
}

// Enqueued records one unit of class entering the queue.
func (s *Shedder) Enqueued(class string) {
	s.counts[class]++
	s.groupCounts[s.groupOf(class)]++
}

// Shed records one unit of class dropped by the policy and counts it in
// the process-wide rnl_admission_shed_total series.
func (s *Shedder) Shed(class string) {
	if c := s.counts[class]; c > 1 {
		s.counts[class] = c - 1
	} else {
		delete(s.counts, class)
	}
	g := s.groupOf(class)
	if c := s.groupCounts[g]; c > 1 {
		s.groupCounts[g] = c - 1
	} else {
		delete(s.groupCounts, g)
	}
	s.shed[class]++
	mShedTotal.Inc()
}

// Reset clears the occupancy counts — called when the owning queue is
// drained wholesale (the batched writer swaps the entire queue out). The
// class→group cache survives: it describes identity, not occupancy.
func (s *Shedder) Reset() {
	clear(s.counts)
	clear(s.groupCounts)
}

// Victim returns the class that should lose next: the largest class
// within the group holding the most queued units overall. With nothing
// queued it returns "".
func (s *Shedder) Victim() string {
	vgroup, gmax := "", 0
	for g, n := range s.groupCounts {
		if n > gmax || (n == gmax && gmax > 0 && g < vgroup) {
			vgroup, gmax = g, n
		}
	}
	if gmax == 0 {
		return ""
	}
	victim, max := "", 0
	for class, n := range s.counts {
		if s.groups[class] != vgroup {
			continue
		}
		if n > max || (n == max && max > 0 && class < victim) {
			victim, max = class, n
		}
	}
	return victim
}

// QueuedGroup reports the aggregate occupancy of one group (a tenant,
// or a flat class).
func (s *Shedder) QueuedGroup(group string) int { return s.groupCounts[group] }

// Queued reports the current occupancy of one class.
func (s *Shedder) Queued(class string) int { return s.counts[class] }

// ShedByClass returns a copy of the cumulative per-class shed counts.
func (s *Shedder) ShedByClass() map[string]uint64 {
	out := make(map[string]uint64, len(s.shed))
	for k, v := range s.shed {
		out[k] = v
	}
	return out
}

// --- admission gate --------------------------------------------------------

// GateConfig tunes a Gate. Zero values select the defaults.
type GateConfig struct {
	// MaxInFlight bounds concurrently admitted callers (default 16).
	MaxInFlight int
	// MaxQueue bounds callers waiting for admission beyond MaxInFlight;
	// 0 means reject immediately once MaxInFlight is reached. Negative
	// selects the default (4 × MaxInFlight).
	MaxQueue int
	// QueueWait bounds how long a queued caller waits before being
	// rejected (default 2s).
	QueueWait time.Duration
	// RetryAfter is the hint handed to rejected callers (default 1s).
	RetryAfter time.Duration
	// Clock drives the queue-wait deadline and wait-time metrics; nil
	// means wall time.
	Clock sim.Clock
}

// Gate is a bounded-concurrency admission controller for one endpoint
// class: at most MaxInFlight callers run at once, at most MaxQueue wait
// (each up to QueueWait), and everyone else is rejected with
// ErrOverloaded plus a RetryAfter hint.
type Gate struct {
	cfg    GateConfig
	tokens chan struct{}
	queued atomic.Int64

	admitted *obs.Counter
	rejected *obs.Counter
	depth    *obs.Gauge
	inflight *obs.Gauge
	waitHist *obs.Histogram
}

// NewGate builds a gate named for its endpoint class ("mutate", "read").
// The name becomes part of the rnl_admission_<name>_* metric series, so
// it must be a valid metric fragment (lowercase letters/underscores).
func NewGate(name string, cfg GateConfig) *Gate {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 16
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 4 * cfg.MaxInFlight
	}
	if cfg.QueueWait <= 0 {
		cfg.QueueWait = 2 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = sim.Real{}
	}
	return &Gate{
		cfg:      cfg,
		tokens:   make(chan struct{}, cfg.MaxInFlight),
		admitted: gateCounter(name, "admitted"),
		rejected: gateCounter(name, "rejected"),
		depth:    gateGauge(name, "queue_depth"),
		inflight: gateGauge(name, "inflight"),
		waitHist: gateWaitHist(name),
	}
}

// Acquire admits the caller or returns ErrOverloaded (gate and queue
// full, or the queue deadline passed) or ctx's error (caller gave up).
// On success the returned release MUST be called exactly once.
func (g *Gate) Acquire(ctx context.Context) (release func(), err error) {
	select {
	case g.tokens <- struct{}{}:
		return g.admit(), nil
	default:
	}
	// Queue for a slot, bounded in both depth and time.
	for {
		q := g.queued.Load()
		if q >= int64(g.cfg.MaxQueue) {
			g.rejected.Inc()
			return nil, ErrOverloaded
		}
		if g.queued.CompareAndSwap(q, q+1) {
			break
		}
	}
	g.depth.Inc()
	defer func() {
		g.queued.Add(-1)
		g.depth.Dec()
	}()
	deadline := make(chan struct{})
	timer := g.cfg.Clock.AfterFunc(g.cfg.QueueWait, func() { close(deadline) })
	defer timer.Stop()
	start := g.cfg.Clock.Now()
	select {
	case g.tokens <- struct{}{}:
		g.waitHist.Observe(g.cfg.Clock.Now().Sub(start).Seconds())
		return g.admit(), nil
	case <-deadline:
		g.rejected.Inc()
		return nil, ErrOverloaded
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (g *Gate) admit() func() {
	g.admitted.Inc()
	g.inflight.Inc()
	var once sync.Once
	return func() {
		once.Do(func() {
			<-g.tokens
			g.inflight.Dec()
		})
	}
}

// RetryAfter is the wait a rejected caller should observe before
// retrying — what the HTTP layer puts in the Retry-After header.
func (g *Gate) RetryAfter() time.Duration { return g.cfg.RetryAfter }

// InFlight reports currently admitted callers.
func (g *Gate) InFlight() int { return len(g.tokens) }

// --- idempotency -----------------------------------------------------------

// IdemResult is the recorded outcome of one idempotent operation. The
// first caller with a key runs the operation and Finishes the result;
// duplicates wait on Done and replay it.
type IdemResult struct {
	done  chan struct{}
	clock sim.Clock // owning cache's clock, for the finishedAt stamp

	status      int
	contentType string
	body        []byte
	finishedAt  time.Time
}

// Done is closed once the original caller Finished.
func (r *IdemResult) Done() <-chan struct{} { return r.done }

// Finish records the outcome and releases every waiting duplicate. Safe
// to call once; later calls are ignored.
func (r *IdemResult) Finish(status int, contentType string, body []byte) {
	select {
	case <-r.done:
		return // already finished
	default:
	}
	r.status = status
	r.contentType = contentType
	r.body = body
	if r.clock != nil {
		r.finishedAt = r.clock.Now()
	} else {
		r.finishedAt = time.Now()
	}
	close(r.done)
}

// Result returns the recorded outcome. Only valid after Done is closed.
func (r *IdemResult) Result() (status int, contentType string, body []byte) {
	return r.status, r.contentType, r.body
}

// IdempotencyCache deduplicates mutating operations by client-supplied
// key. Begin is single-flight: the first caller per key gets dup=false
// and must Finish the returned result; concurrent and later duplicates
// get dup=true and the same result to wait on. Finished entries expire
// after the TTL.
type IdempotencyCache struct {
	mu      sync.Mutex
	clock   sim.Clock
	ttl     time.Duration
	entries map[string]*IdemResult
}

// NewIdempotencyCache builds a cache on the wall clock; ttl <= 0 defaults
// to 5 minutes.
func NewIdempotencyCache(ttl time.Duration) *IdempotencyCache {
	return NewIdempotencyCacheClock(ttl, sim.Real{})
}

// NewIdempotencyCacheClock is NewIdempotencyCache with an injected clock
// (nil means wall time); TTL expiry then follows virtual time.
func NewIdempotencyCacheClock(ttl time.Duration, clock sim.Clock) *IdempotencyCache {
	if ttl <= 0 {
		ttl = 5 * time.Minute
	}
	if clock == nil {
		clock = sim.Real{}
	}
	return &IdempotencyCache{clock: clock, ttl: ttl, entries: make(map[string]*IdemResult)}
}

// Begin claims a key. dup=false: the caller owns the operation and must
// call Finish on the result. dup=true: another caller owns (or owned)
// it; wait on Done and replay Result.
func (c *IdempotencyCache) Begin(key string) (r *IdemResult, dup bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pruneLocked()
	if e, ok := c.entries[key]; ok {
		mIdemHits.Inc()
		return e, true
	}
	e := &IdemResult{done: make(chan struct{}), clock: c.clock}
	c.entries[key] = e
	mIdemEntries.Set(int64(len(c.entries)))
	return e, false
}

// Forget drops a key — used when the owning operation never produced a
// result worth replaying (e.g. it was rejected before running).
func (c *IdempotencyCache) Forget(key string) {
	c.mu.Lock()
	delete(c.entries, key)
	mIdemEntries.Set(int64(len(c.entries)))
	c.mu.Unlock()
}

// pruneLocked drops finished entries past the TTL.
func (c *IdempotencyCache) pruneLocked() {
	cutoff := c.clock.Now().Add(-c.ttl)
	for key, e := range c.entries {
		select {
		case <-e.done:
			if e.finishedAt.Before(cutoff) {
				delete(c.entries, key)
			}
		default: // still in flight, keep
		}
	}
	mIdemEntries.Set(int64(len(c.entries)))
}

// --- retry backoff ---------------------------------------------------------

// Backoff returns the wait before retry number attempt (0-based):
// exponential growth from base, capped at max, with full jitter — the
// classic decorrelated policy that keeps a thundering herd of retrying
// clients from re-synchronizing on the server they just overloaded.
// Jitter comes from the process-global PRNG; simulations that need a
// reproducible schedule use BackoffRand with a seeded source.
func Backoff(attempt int, base, max time.Duration) time.Duration {
	return BackoffRand(nil, attempt, base, max)
}

// BackoffRand is Backoff drawing jitter from rng (nil means the global
// PRNG). With a seeded *rand.Rand the retry schedule is deterministic,
// which detsim relies on for replay.
func BackoffRand(rng *rand.Rand, attempt int, base, max time.Duration) time.Duration {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 10 * time.Second
	}
	d := base << uint(attempt)
	if d > max || d <= 0 { // <= 0: shift overflow
		d = max
	}
	// Full jitter over [base/2, d]: never collapses to zero, never syncs.
	lo := base / 2
	if d <= lo {
		return d
	}
	span := int64(d-lo) + 1
	if rng != nil {
		return lo + time.Duration(rng.Int63n(span))
	}
	return lo + time.Duration(rand.Int63n(span))
}
