package autotest_test

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"rnl/internal/api"
	"rnl/internal/autotest"
	"rnl/internal/lab"
	"rnl/internal/packet"
	"rnl/internal/topogen"
)

// TestGeneratedTopologyConvergence runs the nightly-suite invariants
// over a generated topology: deploy-with-restore brings every router's
// RIP process up, the fabric converges (every router learns every link
// subnet), and an ICMP echo injected at one edge is forwarded across
// the fabric and captured at a far router's port.
func TestGeneratedTopologyConvergence(t *testing.T) {
	top, err := topogen.Generate(topogen.Params{
		Kind: topogen.Ring, N: 5, Seed: 11, RIP: true,
		NamePrefix: "gt", Name: "gt-ring",
	})
	if err != nil {
		t.Fatal(err)
	}
	cloud, err := lab.NewCloud(lab.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cloud.Close)
	fleet, err := cloud.AddGeneratedFleet(top, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cloud.Client.SaveDesign(top.Design); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	if _, err := cloud.Client.Reserve(api.ReserveRequest{
		User: "nightly", Routers: top.Design.Routers,
		Start: now.Add(-time.Minute), End: now.Add(time.Hour),
	}); err != nil {
		t.Fatal(err)
	}

	// Convergence invariant: every router's table holds every link /30.
	converged := func(ctx *autotest.Context) error {
		deadline := time.Now().Add(15 * time.Second)
		for {
			missing := ""
		scan:
			for _, router := range top.Design.Routers {
				outs, err := ctx.Client.ConsoleExec(api.ConsoleExecRequest{
					Router: router, Commands: []string{"show ip route"},
				})
				if err != nil {
					return err
				}
				table := strings.Join(outs, "\n")
				for i := range top.Design.Links {
					if !strings.Contains(table, top.Subnet(i)) {
						missing = fmt.Sprintf("%s lacks %s", router, top.Subnet(i))
						break scan
					}
				}
			}
			if missing == "" {
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("RIP never converged: %s", missing)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}

	// Far-connectivity probe: an echo request injected into gt-1 (as if
	// a host on its eth0 wire sent it) addressed to gt-2's far-side
	// interface must be RIP-forwarded out gt-1.eth1 and show up at
	// gt-2.eth0. The shortest path is unique (1 hop vs 3 the other way
	// around the ring), so the capture point is deterministic.
	dstIP := net.ParseIP(top.Addr["gt-2"]["eth1"].IP)
	echo, err := packet.BuildICMPEcho(
		net.HardwareAddr{2, 0xaa, 0, 0, 0, 1}, fleet["gt-1"].PortMAC("eth0"),
		net.ParseIP("10.99.0.1"), dstIP,
		packet.ICMPv4TypeEchoRequest, 7, 1, []byte("gen-probe"))
	if err != nil {
		t.Fatal(err)
	}
	probe := autotest.ConnectivityPolicy("far-icmp", "gt-1", "eth0", echo,
		"gt-2", "eth0", autotest.MatchICMP(packet.ICMPv4TypeEchoRequest))
	probe.Count = 2
	probe.Within = 5 * time.Second

	r := &autotest.Runner{Client: cloud.Client}
	res := r.Run(autotest.TestCase{
		Name:   "generated-ring",
		Design: top.Design.Name, User: "nightly", RestoreConfigs: true,
		Steps: []autotest.Step{
			autotest.Custom{Name: "rip-converged", Fn: converged},
			probe,
		},
	})
	if !res.Passed {
		for _, s := range res.Steps {
			if s.Err != nil {
				t.Errorf("step %s: %v", s.Description, s.Err)
			}
		}
		t.Fatalf("generated-topology case failed: %v", res.Err)
	}
}
