package autotest_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"rnl/internal/api"
	"rnl/internal/autotest"
	"rnl/internal/lab"
	"rnl/internal/packet"
	"rnl/internal/topology"
)

// setup builds a cloud with two connected hosts and a saved design.
func setup(t *testing.T) (*lab.Cloud, *topology.Design, []byte) {
	t.Helper()
	c, err := lab.NewCloud(lab.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	h1, _, err := c.AddHost("at-h1", "10.0.0.1/24", "")
	if err != nil {
		t.Fatal(err)
	}
	h2, _, err := c.AddHost("at-h2", "10.0.0.2/24", "")
	if err != nil {
		t.Fatal(err)
	}
	d := &topology.Design{Name: "at-lab", Routers: []string{"at-h1", "at-h2"}}
	if err := d.Connect("at-h1", "eth0", "at-h2", "eth0"); err != nil {
		t.Fatal(err)
	}
	if err := c.Client.SaveDesign(d); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	if _, err := c.Client.Reserve(api.ReserveRequest{
		User: "nightly", Routers: d.Routers,
		Start: now.Add(-time.Minute), End: now.Add(time.Hour),
	}); err != nil {
		t.Fatal(err)
	}
	frame, err := packet.BuildUDP(h1.MAC(), h2.MAC(), h1.IP(), h2.IP(), 7, 8888, []byte("probe-data"))
	if err != nil {
		t.Fatal(err)
	}
	return c, d, frame
}

func TestRunnerConnectivityProbePasses(t *testing.T) {
	c, d, frame := setup(t)
	r := &autotest.Runner{Client: c.Client}
	res := r.Run(autotest.TestCase{
		Name:   "connectivity",
		Design: d.Name, User: "nightly",
		Steps: []autotest.Step{
			autotest.WireConnectivityPolicy("h1 reaches h2", "at-h1", "eth0", frame,
				"at-h2", "eth0", autotest.MatchUDPPayload([]byte("probe-data"))),
		},
	})
	if !res.Passed {
		t.Fatalf("result: %+v", res)
	}
	// The lab was torn down afterwards.
	deps, _ := c.Client.Deployments()
	if len(deps) != 0 {
		t.Errorf("deployments after test = %v, want none", deps)
	}
}

func TestRunnerIsolationProbeCatchesViolation(t *testing.T) {
	c, d, frame := setup(t)
	r := &autotest.Runner{Client: c.Client}
	// The design wires the hosts together, so an isolation policy
	// between them MUST fail — this is the Fig. 6 violation detection.
	res := r.Run(autotest.TestCase{
		Name:   "isolation-violated",
		Design: d.Name, User: "nightly",
		Steps: []autotest.Step{
			autotest.WireIsolationPolicy("h1 must not reach h2", "at-h1", "eth0", frame,
				"at-h2", "eth0", autotest.MatchUDPPayload([]byte("probe-data"))),
		},
	})
	if res.Passed {
		t.Fatal("isolation probe should have caught the violation")
	}
	if len(res.Steps) != 1 || res.Steps[0].Err == nil ||
		!strings.Contains(res.Steps[0].Err.Error(), "POLICY VIOLATION") {
		t.Fatalf("steps = %+v", res.Steps)
	}
}

func TestRunnerIsolationHoldsWithoutLink(t *testing.T) {
	c, _, frame := setup(t)
	// A design with both hosts but NO link: isolation holds.
	d2 := &topology.Design{Name: "at-unlinked", Routers: []string{"at-h1", "at-h2"}}
	if err := c.Client.SaveDesign(d2); err != nil {
		t.Fatal(err)
	}
	r := &autotest.Runner{Client: c.Client}
	probe := autotest.WireIsolationPolicy("unlinked", "at-h1", "eth0", frame,
		"at-h2", "eth0", autotest.MatchAny())
	probe.Within = 200 * time.Millisecond
	res := r.Run(autotest.TestCase{
		Name:   "isolation-holds",
		Design: d2.Name, User: "nightly",
		Steps: []autotest.Step{probe},
	})
	if !res.Passed {
		t.Fatalf("isolation should hold with no link: %+v", res.Steps)
	}
}

func TestRunnerConsoleStep(t *testing.T) {
	c, d, _ := setup(t)
	r := &autotest.Runner{Client: c.Client}
	res := r.Run(autotest.TestCase{
		Name:   "console",
		Design: d.Name, User: "nightly",
		Steps: []autotest.Step{
			autotest.Console{Router: "at-h1", Commands: []string{"enable", "show ip"}},
		},
	})
	if !res.Passed {
		t.Fatalf("console step failed: %+v", res.Steps)
	}
	// A rejected command fails the step.
	res = r.Run(autotest.TestCase{
		Name:   "console-bad",
		Design: d.Name, User: "nightly",
		Steps: []autotest.Step{
			autotest.Console{Router: "at-h1", Commands: []string{"bogus nonsense"}},
		},
	})
	if res.Passed {
		t.Fatal("rejected command should fail the test")
	}
}

func TestRunnerDeployFailure(t *testing.T) {
	c, _, _ := setup(t)
	r := &autotest.Runner{Client: c.Client}
	res := r.Run(autotest.TestCase{Name: "no-design", Design: "ghost"})
	if res.Passed || res.Err == nil {
		t.Fatalf("deploying a missing design should fail: %+v", res)
	}
}

func TestSuiteAndReport(t *testing.T) {
	c, d, frame := setup(t)
	var log bytes.Buffer
	r := &autotest.Runner{Client: c.Client, Log: &log}
	iso := autotest.WireIsolationPolicy("leak", "at-h1", "eth0", frame, "at-h2", "eth0", autotest.MatchAny())
	iso.Within = 200 * time.Millisecond
	results := r.RunSuite([]autotest.TestCase{
		{
			Name: "pass-case", Design: d.Name, User: "nightly",
			Steps: []autotest.Step{
				autotest.WireConnectivityPolicy("ok", "at-h1", "eth0", frame, "at-h2", "eth0", autotest.MatchAny()),
			},
		},
		{
			Name: "fail-case", Design: d.Name, User: "nightly",
			Steps: []autotest.Step{iso},
		},
	})
	if len(results) != 2 || !results[0].Passed || results[1].Passed {
		t.Fatalf("results = %+v", results)
	}
	var report bytes.Buffer
	autotest.WriteReport(&report, results)
	out := report.String()
	for _, want := range []string{"PASS  pass-case", "FAIL  fail-case", "1/2 test cases passed"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(log.String(), "=== SUITE: 1/2 passed") {
		t.Errorf("suite log missing summary:\n%s", log.String())
	}
}

func TestCustomAndWaitSteps(t *testing.T) {
	c, d, _ := setup(t)
	r := &autotest.Runner{Client: c.Client}
	ran := false
	res := r.Run(autotest.TestCase{
		Name:   "custom",
		Design: d.Name, User: "nightly",
		Steps: []autotest.Step{
			autotest.Wait{Duration: 10 * time.Millisecond},
			autotest.Custom{Name: "check inventory", Fn: func(ctx *autotest.Context) error {
				ran = true
				inv, err := ctx.Client.Inventory()
				if err != nil {
					return err
				}
				if len(inv) != 2 {
					return fmt.Errorf("wrong inventory size %d", len(inv))
				}
				return nil
			}},
		},
	})
	if !res.Passed || !ran {
		t.Fatalf("custom step failed: %+v", res)
	}
}
