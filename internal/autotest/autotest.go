// Package autotest is RNL's test automation framework (paper §3.2):
// declarative network test cases that deploy a topology, apply
// configuration over consoles, inject packets, assert on what is (or is
// not) captured at other ports, and tear everything down — the "nightly
// unit test" for network configuration. A policy violation that would
// otherwise wait for a security breach shows up in the morning's log.
package autotest

import (
	"fmt"
	"io"
	"time"

	"rnl/internal/api"
	"rnl/internal/packet"
	"rnl/internal/sim"
)

// Matcher selects captured frames of interest.
type Matcher func(frame []byte) bool

// MatchAny accepts every frame.
func MatchAny() Matcher { return func([]byte) bool { return true } }

// MatchUDPPayload accepts UDP frames whose payload equals want.
func MatchUDPPayload(want []byte) Matcher {
	return func(frame []byte) bool {
		p := packet.NewPacket(frame, packet.LayerTypeEthernet, packet.Default)
		if p.Layer(packet.LayerTypeUDP) == nil {
			return false
		}
		app := p.ApplicationLayer()
		return app != nil && string(app.Payload()) == string(want)
	}
}

// MatchUDPDstPort accepts UDP frames to a destination port.
func MatchUDPDstPort(port uint16) Matcher {
	return func(frame []byte) bool {
		p := packet.NewPacket(frame, packet.LayerTypeEthernet, packet.Default)
		u, ok := p.TransportLayer().(*packet.UDP)
		return ok && u.DstPort == port
	}
}

// MatchICMP accepts ICMP frames of the given type.
func MatchICMP(icmpType uint8) Matcher {
	return func(frame []byte) bool {
		p := packet.NewPacket(frame, packet.LayerTypeEthernet, packet.Default)
		ic, ok := p.Layer(packet.LayerTypeICMPv4).(*packet.ICMPv4)
		return ok && ic.Type == icmpType
	}
}

// Context is what steps run against.
type Context struct {
	Client *api.Client
	Log    io.Writer
	// Clock times Wait steps and probe observation windows; nil means
	// wall time. Simulation runs inject sim.Fake so convergence waits
	// complete the instant virtual time advances past them.
	Clock sim.Clock
}

// clock resolves the step clock (wall time by default).
func (c *Context) clock() sim.Clock {
	if c.Clock != nil {
		return c.Clock
	}
	return sim.Real{}
}

// Logf writes a progress line to the test log; steps use it to narrate
// what they observed.
func (c *Context) Logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// Step is one action or assertion in a test case.
type Step interface {
	Describe() string
	Run(ctx *Context) error
}

// Console applies commands to a router's console.
type Console struct {
	Router   string
	Commands []string
}

// Describe implements Step.
func (s Console) Describe() string {
	return fmt.Sprintf("console %s: %d commands", s.Router, len(s.Commands))
}

// Run implements Step.
func (s Console) Run(ctx *Context) error {
	outs, err := ctx.Client.ConsoleExec(api.ConsoleExecRequest{Router: s.Router, Commands: s.Commands})
	if err != nil {
		return err
	}
	for i, out := range outs {
		if len(out) > 0 && out[0] == '%' {
			return fmt.Errorf("command %q rejected: %s", s.Commands[i], out)
		}
	}
	return nil
}

// Wait pauses the test (e.g. for protocol convergence).
type Wait struct{ Duration time.Duration }

// Describe implements Step.
func (s Wait) Describe() string { return fmt.Sprintf("wait %v", s.Duration) }

// Run implements Step. The wait runs on the context clock, not a raw
// time.Sleep: under a fake clock a convergence wait completes when the
// scenario advances, instead of stalling the suite for real seconds.
func (s Wait) Run(ctx *Context) error {
	if s.Duration <= 0 {
		return nil
	}
	done := make(chan struct{})
	t := ctx.clock().AfterFunc(s.Duration, func() { close(done) })
	defer t.Stop()
	<-done
	return nil
}

// Custom runs arbitrary Go (for assertions the declarative steps can't
// express).
type Custom struct {
	Name string
	Fn   func(ctx *Context) error
}

// Describe implements Step.
func (s Custom) Describe() string { return s.Name }

// Run implements Step.
func (s Custom) Run(ctx *Context) error { return s.Fn(ctx) }

// Probe is the Fig. 6 atom: inject a frame at one port and assert whether
// a matching frame appears at another. With Expect=false it verifies
// isolation (the security-policy check); with Expect=true, connectivity.
type Probe struct {
	Name string

	InjectRouter, InjectPort string
	Frame                    []byte
	Count                    int // frames to inject (default 1)
	// FromPort emits the frame onto the virtual wire (as if InjectPort
	// transmitted it) instead of delivering it to the port. Use it to
	// emulate traffic from one side of a wire; the default to-port mode
	// emulates a host attached to the port (Fig. 6's "generate a packet
	// ... on port R1.1").
	FromPort bool

	ExpectRouter, ExpectPort string
	Match                    Matcher
	Expect                   bool
	Within                   time.Duration // observation window (default 1s)
}

// Describe implements Step.
func (s Probe) Describe() string {
	kind := "isolation"
	if s.Expect {
		kind = "connectivity"
	}
	return fmt.Sprintf("%s probe %s: %s.%s -> %s.%s", kind, s.Name,
		s.InjectRouter, s.InjectPort, s.ExpectRouter, s.ExpectPort)
}

// Run implements Step.
func (s Probe) Run(ctx *Context) error {
	match := s.Match
	if match == nil {
		match = MatchAny()
	}
	within := s.Within
	if within == 0 {
		within = time.Second
	}
	capID, err := ctx.Client.OpenCapture(api.CaptureRequest{Router: s.ExpectRouter, Port: s.ExpectPort})
	if err != nil {
		return fmt.Errorf("opening capture: %w", err)
	}
	defer ctx.Client.CloseCapture(capID)

	count := s.Count
	if count <= 0 {
		count = 1
	}
	if err := ctx.Client.Generate(api.GenerateRequest{
		Router: s.InjectRouter, Port: s.InjectPort, Frame: s.Frame, Count: count,
		FromPort: s.FromPort,
	}); err != nil {
		return fmt.Errorf("injecting: %w", err)
	}

	clock := ctx.clock()
	deadline := clock.Now().Add(within)
	for {
		remaining := deadline.Sub(clock.Now())
		if remaining <= 0 {
			break
		}
		frames, err := ctx.Client.ReadCapture(capID, 100, remaining)
		if err != nil {
			return fmt.Errorf("reading capture: %w", err)
		}
		for _, f := range frames {
			if match(f.Frame) {
				if s.Expect {
					return nil
				}
				return fmt.Errorf("POLICY VIOLATION: frame from %s.%s reached %s.%s",
					s.InjectRouter, s.InjectPort, s.ExpectRouter, s.ExpectPort)
			}
		}
		if len(frames) == 0 && s.Expect {
			continue // keep waiting for the first frame
		}
	}
	if s.Expect {
		return fmt.Errorf("no matching frame reached %s.%s within %v", s.ExpectRouter, s.ExpectPort, within)
	}
	return nil
}

// ConnectivityPolicy asserts a probe frame gets through.
func ConnectivityPolicy(name, fromRouter, fromPort string, frame []byte, toRouter, toPort string, match Matcher) Probe {
	return Probe{
		Name:         name,
		InjectRouter: fromRouter, InjectPort: fromPort, Frame: frame,
		ExpectRouter: toRouter, ExpectPort: toPort,
		Match: match, Expect: true,
	}
}

// WirePolicy variants emit the probe onto the wire at the source port
// instead of into the device — for asserting on the virtual wires
// themselves rather than through forwarding devices.

// WireConnectivityPolicy asserts a frame emitted at one port's wire
// reaches another port.
func WireConnectivityPolicy(name, fromRouter, fromPort string, frame []byte, toRouter, toPort string, match Matcher) Probe {
	p := ConnectivityPolicy(name, fromRouter, fromPort, frame, toRouter, toPort, match)
	p.FromPort = true
	return p
}

// WireIsolationPolicy asserts a frame emitted at one port's wire never
// reaches another port.
func WireIsolationPolicy(name, fromRouter, fromPort string, frame []byte, toRouter, toPort string, match Matcher) Probe {
	p := IsolationPolicy(name, fromRouter, fromPort, frame, toRouter, toPort, match)
	p.FromPort = true
	return p
}

// IsolationPolicy asserts a probe frame is blocked — "subnet A cannot talk
// to subnet B".
func IsolationPolicy(name, fromRouter, fromPort string, frame []byte, toRouter, toPort string, match Matcher) Probe {
	return Probe{
		Name:         name,
		InjectRouter: fromRouter, InjectPort: fromPort, Frame: frame,
		ExpectRouter: toRouter, ExpectPort: toPort,
		Match: match, Expect: false,
	}
}
