package autotest

import (
	"fmt"
	"io"
	"time"

	"rnl/internal/api"
	"rnl/internal/sim"
)

// TestCase is one automated network test: deploy a saved design, run the
// steps, tear down.
type TestCase struct {
	Name string
	// Design names a saved design to deploy before the steps; empty
	// means the lab is already deployed (or no deployment is needed).
	Design string
	User   string
	// RestoreConfigs replays saved router configurations on deploy.
	RestoreConfigs bool
	// KeepDeployed leaves the lab up after the test (for debugging).
	KeepDeployed bool
	Steps        []Step
}

// StepResult records one step's outcome.
type StepResult struct {
	Description string
	Err         error
	Duration    time.Duration
}

// Result records one test case's outcome.
type Result struct {
	Name     string
	Passed   bool
	Err      error // setup/teardown error, if any
	Steps    []StepResult
	Duration time.Duration
}

// Runner executes test cases against an RNL web server.
type Runner struct {
	Client *api.Client
	// Log receives progress lines; nil discards.
	Log io.Writer
	// Clock times steps and waits; nil means wall time. It is passed
	// through to each step's Context.
	Clock sim.Clock
}

func (r *Runner) clock() sim.Clock {
	if r.Clock != nil {
		return r.Clock
	}
	return sim.Real{}
}

func (r *Runner) logf(format string, args ...any) {
	if r.Log != nil {
		fmt.Fprintf(r.Log, format+"\n", args...)
	}
}

// Run executes one test case: automated "from topology setup, applying
// configuration, testing, to topology tear down".
func (r *Runner) Run(tc TestCase) Result {
	clock := r.clock()
	start := clock.Now()
	res := Result{Name: tc.Name}
	ctx := &Context{Client: r.Client, Log: r.Log, Clock: r.Clock}
	r.logf("=== TEST %s", tc.Name)

	if tc.Design != "" {
		if err := r.Client.Deploy(api.DeployRequest{
			Design: tc.Design, User: tc.User, RestoreConfigs: tc.RestoreConfigs,
		}); err != nil {
			res.Err = fmt.Errorf("deploy %q: %w", tc.Design, err)
			res.Duration = clock.Now().Sub(start)
			r.logf("--- FAIL %s (deploy: %v)", tc.Name, err)
			return res
		}
		defer func() {
			if !tc.KeepDeployed {
				if err := r.Client.Teardown(tc.Design); err != nil && res.Err == nil {
					res.Err = fmt.Errorf("teardown: %w", err)
				}
			}
		}()
	}

	passed := true
	for _, step := range tc.Steps {
		st := clock.Now()
		err := step.Run(ctx)
		sr := StepResult{Description: step.Describe(), Err: err, Duration: clock.Now().Sub(st)}
		res.Steps = append(res.Steps, sr)
		if err != nil {
			passed = false
			r.logf("    FAIL %s: %v", sr.Description, err)
			break // remaining steps likely depend on this one
		}
		r.logf("    ok   %s (%v)", sr.Description, sr.Duration.Round(time.Millisecond))
	}
	res.Passed = passed && res.Err == nil
	res.Duration = clock.Now().Sub(start)
	if res.Passed {
		r.logf("--- PASS %s (%v)", tc.Name, res.Duration.Round(time.Millisecond))
	} else {
		r.logf("--- FAIL %s (%v)", tc.Name, res.Duration.Round(time.Millisecond))
	}
	return res
}

// RunSuite executes test cases in order and writes the nightly summary.
func (r *Runner) RunSuite(cases []TestCase) []Result {
	results := make([]Result, 0, len(cases))
	for _, tc := range cases {
		results = append(results, r.Run(tc))
	}
	passed := 0
	for _, res := range results {
		if res.Passed {
			passed++
		}
	}
	r.logf("=== SUITE: %d/%d passed", passed, len(results))
	return results
}

// WriteReport renders results as the morning-readable log (paper §1:
// "read the log file in the morning to determine whether the change could
// be rolled out").
func WriteReport(w io.Writer, results []Result) {
	passed := 0
	for _, res := range results {
		status := "FAIL"
		if res.Passed {
			status = "PASS"
			passed++
		}
		fmt.Fprintf(w, "%s  %-40s %8v\n", status, res.Name, res.Duration.Round(time.Millisecond))
		if res.Err != nil {
			fmt.Fprintf(w, "      setup/teardown: %v\n", res.Err)
		}
		for _, sr := range res.Steps {
			if sr.Err != nil {
				fmt.Fprintf(w, "      step %q: %v\n", sr.Description, sr.Err)
			}
		}
	}
	fmt.Fprintf(w, "%d/%d test cases passed\n", passed, len(results))
}
