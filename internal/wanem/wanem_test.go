package wanem

import (
	"testing"
	"time"
)

func TestDelayApplied(t *testing.T) {
	c := New(Profile{Delay: 10 * time.Millisecond}, 1)
	d, drop := c.Condition(100)
	if drop {
		t.Fatal("no loss configured, frame dropped")
	}
	if d != 10*time.Millisecond {
		t.Errorf("delay = %v, want 10ms", d)
	}
}

func TestJitterBounded(t *testing.T) {
	c := New(Profile{Delay: 5 * time.Millisecond, Jitter: 3 * time.Millisecond}, 2)
	sawJitter := false
	for i := 0; i < 200; i++ {
		d, _ := c.Condition(100)
		if d < 5*time.Millisecond || d > 8*time.Millisecond {
			t.Fatalf("delay %v outside [5ms, 8ms]", d)
		}
		if d != 5*time.Millisecond {
			sawJitter = true
		}
	}
	if !sawJitter {
		t.Error("jitter never materialized in 200 samples")
	}
}

func TestLossRate(t *testing.T) {
	c := New(Profile{Loss: 0.25}, 3)
	dropped := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if _, drop := c.Condition(100); drop {
			dropped++
		}
	}
	rate := float64(dropped) / n
	if rate < 0.20 || rate > 0.30 {
		t.Errorf("observed loss %.3f, want ≈0.25", rate)
	}
}

func TestNoLossWhenZero(t *testing.T) {
	c := New(LAN, 4)
	for i := 0; i < 1000; i++ {
		if _, drop := c.Condition(100); drop {
			t.Fatal("ideal profile dropped a frame")
		}
	}
}

func TestRateLimitAccumulatesDelay(t *testing.T) {
	// 10 KB/s: a 1000-byte frame costs 100ms of serialization.
	c := New(Profile{RateBps: 10_000}, 5)
	d1, _ := c.Condition(1000)
	d2, _ := c.Condition(1000)
	if d1 < 90*time.Millisecond {
		t.Errorf("first frame delay %v, want ≈100ms", d1)
	}
	if d2 <= d1 {
		t.Errorf("back-to-back frames should accumulate debt: d1=%v d2=%v", d1, d2)
	}
}

func TestSetReconfiguresLive(t *testing.T) {
	c := New(LAN, 6)
	if d, _ := c.Condition(100); d != 0 {
		t.Errorf("LAN delay = %v", d)
	}
	c.Set(Transcontinental)
	if d, _ := c.Condition(100); d < 40*time.Millisecond {
		t.Errorf("after Set, delay = %v, want >= 40ms", d)
	}
	if got := c.Profile(); got.Delay != Transcontinental.Delay {
		t.Errorf("Profile() = %+v", got)
	}
}
