// Package wanem is RNL's WAN emulator (paper §3.5): a link conditioner
// injecting configurable delay, jitter, loss and bandwidth limits into a
// virtual wire, so applications can be tested under real-life wide-area
// conditions.
package wanem

import (
	"math/rand"
	"sync"
	"time"
)

// Profile describes a WAN link's impairments.
type Profile struct {
	// Delay is the base one-way latency added to every frame.
	Delay time.Duration
	// Jitter is the maximum random extra latency (uniform in [0, Jitter]).
	Jitter time.Duration
	// Loss is the independent drop probability per frame, in [0, 1].
	Loss float64
	// RateBps caps throughput in bytes per second; 0 means unlimited.
	// The cap is modelled as serialization delay per frame.
	RateBps int64
}

// Common profiles for examples and tests.
var (
	// LAN is an ideal local link.
	LAN = Profile{}
	// Metro approximates a metro-area link.
	Metro = Profile{Delay: 5 * time.Millisecond, Jitter: time.Millisecond}
	// Transcontinental approximates a cross-country path.
	Transcontinental = Profile{Delay: 40 * time.Millisecond, Jitter: 5 * time.Millisecond, Loss: 0.001}
	// Intercontinental approximates a trans-oceanic path.
	Intercontinental = Profile{Delay: 100 * time.Millisecond, Jitter: 15 * time.Millisecond, Loss: 0.005}
)

// Conditioner implements netsim.Conditioner with a mutable Profile. It is
// safe to reconfigure while traffic flows — the web-services API exposes
// exactly that ("inject delay and jitter to simulate any wide area link").
type Conditioner struct {
	mu      sync.Mutex
	profile Profile
	rng     *rand.Rand
	// debt tracks accumulated serialization time for rate limiting.
	debt     time.Duration
	lastSend time.Time
}

// New returns a conditioner with the given profile. Randomness is seeded
// deterministically per conditioner so tests can rely on stable loss
// sequences by fixing the seed.
func New(p Profile, seed int64) *Conditioner {
	return &Conditioner{profile: p, rng: rand.New(rand.NewSource(seed))}
}

// Set replaces the profile.
func (c *Conditioner) Set(p Profile) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.profile = p
}

// Profile returns the current profile.
func (c *Conditioner) Profile() Profile {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.profile
}

// Condition implements netsim.Conditioner.
func (c *Conditioner) Condition(size int) (time.Duration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.profile
	if p.Loss > 0 && c.rng.Float64() < p.Loss {
		return 0, true
	}
	d := p.Delay
	if p.Jitter > 0 {
		d += time.Duration(c.rng.Int63n(int64(p.Jitter) + 1))
	}
	if p.RateBps > 0 {
		now := time.Now()
		// Credit back idle time, then charge this frame's
		// serialization delay.
		if !c.lastSend.IsZero() {
			c.debt -= now.Sub(c.lastSend)
			if c.debt < 0 {
				c.debt = 0
			}
		}
		c.lastSend = now
		ser := time.Duration(int64(size) * int64(time.Second) / p.RateBps)
		c.debt += ser
		d += c.debt
	}
	return d, false
}
