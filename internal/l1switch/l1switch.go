// Package l1switch emulates a programmable layer-1 cross connect (paper
// §4, Fig. 7 — MRV Media Cross Connect): a patch panel whose port-to-port
// mapping is set by software. During performance testing RNL programs the
// cross connect to bridge two co-located router ports directly at full
// link bandwidth; otherwise it connects the router port through to the RIS
// PC and the Internet tunnel.
package l1switch

import (
	"fmt"
	"sync"

	"rnl/internal/netsim"
)

// CrossConnect is a layer-1 switch: N ports, each optionally bridged to
// exactly one other port. Bridging is pure bit-pipe: every frame entering
// one port leaves the other unmodified (no MAC learning, no STP — layer 1).
type CrossConnect struct {
	name string

	mu    sync.Mutex
	ports map[string]*netsim.Iface
	// bridge maps port name → peer port name (symmetric).
	bridge map[string]string
}

// New creates a cross connect with the given port names.
func New(name string, portNames []string) *CrossConnect {
	x := &CrossConnect{
		name:   name,
		ports:  make(map[string]*netsim.Iface, len(portNames)),
		bridge: make(map[string]string),
	}
	for _, pn := range portNames {
		pn := pn
		ifc := netsim.NewIface(name + ":" + pn)
		ifc.SetReceiver(func(f []byte) { x.forward(pn, f) })
		x.ports[pn] = ifc
	}
	return x
}

// Name returns the switch name.
func (x *CrossConnect) Name() string { return x.name }

// Port returns the named port interface, or nil.
func (x *CrossConnect) Port(name string) *netsim.Iface {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.ports[name]
}

// forward relays a frame to the bridged peer, if any.
func (x *CrossConnect) forward(from string, frame []byte) {
	x.mu.Lock()
	peerName, ok := x.bridge[from]
	peer := x.ports[peerName]
	x.mu.Unlock()
	if !ok || peer == nil {
		return // unprogrammed port: bits fall on the floor, as on a patch panel
	}
	peer.Transmit(frame)
}

// Bridge programs a bidirectional connection between two ports, replacing
// any previous mapping either port had.
func (x *CrossConnect) Bridge(a, b string) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	if _, ok := x.ports[a]; !ok {
		return fmt.Errorf("l1switch: %s has no port %s", x.name, a)
	}
	if _, ok := x.ports[b]; !ok {
		return fmt.Errorf("l1switch: %s has no port %s", x.name, b)
	}
	if a == b {
		return fmt.Errorf("l1switch: cannot bridge %s to itself", a)
	}
	// Tear down stale mappings of both endpoints.
	for _, p := range []string{a, b} {
		if old, ok := x.bridge[p]; ok {
			delete(x.bridge, old)
			delete(x.bridge, p)
		}
	}
	x.bridge[a] = b
	x.bridge[b] = a
	return nil
}

// Unbridge removes a port's mapping (and its peer's).
func (x *CrossConnect) Unbridge(a string) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if peer, ok := x.bridge[a]; ok {
		delete(x.bridge, peer)
		delete(x.bridge, a)
	}
}

// Mapping returns a copy of the current bridge table.
func (x *CrossConnect) Mapping() map[string]string {
	x.mu.Lock()
	defer x.mu.Unlock()
	out := make(map[string]string, len(x.bridge))
	for k, v := range x.bridge {
		out[k] = v
	}
	return out
}
