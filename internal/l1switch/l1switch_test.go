package l1switch

import (
	"testing"
	"time"

	"rnl/internal/netsim"
)

// attach wires an external interface to a cross-connect port and returns
// it with a receive channel.
func attach(t *testing.T, x *CrossConnect, port string) (*netsim.Iface, chan []byte) {
	t.Helper()
	ext := netsim.NewIface("ext-" + port)
	w := netsim.Connect(ext, x.Port(port), nil)
	t.Cleanup(w.Disconnect)
	ch := make(chan []byte, 16)
	ext.SetReceiver(func(f []byte) {
		select {
		case ch <- f:
		default:
		}
	})
	return ext, ch
}

func expectFrame(t *testing.T, ch chan []byte, want string) {
	t.Helper()
	select {
	case f := <-ch:
		if string(f) != want {
			t.Fatalf("got %q, want %q", f, want)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("frame %q never arrived", want)
	}
}

func expectSilence(t *testing.T, ch chan []byte) {
	t.Helper()
	select {
	case f := <-ch:
		t.Fatalf("unexpected frame %q", f)
	case <-time.After(30 * time.Millisecond):
	}
}

func TestBridgePassesBothWays(t *testing.T) {
	x := New("mcc", []string{"p1", "p2", "p3"})
	a, cha := attach(t, x, "p1")
	b, chb := attach(t, x, "p2")
	if err := x.Bridge("p1", "p2"); err != nil {
		t.Fatal(err)
	}
	a.Transmit([]byte("a-to-b"))
	expectFrame(t, chb, "a-to-b")
	b.Transmit([]byte("b-to-a"))
	expectFrame(t, cha, "b-to-a")
}

func TestUnprogrammedPortDrops(t *testing.T) {
	x := New("mcc", []string{"p1", "p2"})
	a, _ := attach(t, x, "p1")
	_, chb := attach(t, x, "p2")
	a.Transmit([]byte("nowhere"))
	expectSilence(t, chb)
}

func TestRebridgeReplacesMapping(t *testing.T) {
	x := New("mcc", []string{"p1", "p2", "p3"})
	a, _ := attach(t, x, "p1")
	_, chb := attach(t, x, "p2")
	_, chc := attach(t, x, "p3")
	if err := x.Bridge("p1", "p2"); err != nil {
		t.Fatal(err)
	}
	a.Transmit([]byte("first"))
	expectFrame(t, chb, "first")
	// Re-program p1 to p3: p2 must stop receiving.
	if err := x.Bridge("p1", "p3"); err != nil {
		t.Fatal(err)
	}
	a.Transmit([]byte("second"))
	expectFrame(t, chc, "second")
	expectSilence(t, chb)
	m := x.Mapping()
	if m["p1"] != "p3" || m["p3"] != "p1" {
		t.Errorf("mapping = %v", m)
	}
	if _, ok := m["p2"]; ok {
		t.Errorf("p2 should be unmapped: %v", m)
	}
}

func TestUnbridgeStopsTraffic(t *testing.T) {
	x := New("mcc", []string{"p1", "p2"})
	a, _ := attach(t, x, "p1")
	_, chb := attach(t, x, "p2")
	x.Bridge("p1", "p2")
	a.Transmit([]byte("one"))
	expectFrame(t, chb, "one")
	x.Unbridge("p2")
	a.Transmit([]byte("two"))
	expectSilence(t, chb)
}

func TestBridgeErrors(t *testing.T) {
	x := New("mcc", []string{"p1", "p2"})
	if err := x.Bridge("p1", "nope"); err == nil {
		t.Error("unknown port should fail")
	}
	if err := x.Bridge("nope", "p1"); err == nil {
		t.Error("unknown port should fail")
	}
	if err := x.Bridge("p1", "p1"); err == nil {
		t.Error("self-bridge should fail")
	}
	if x.Port("ghost") != nil {
		t.Error("ghost port lookup should be nil")
	}
}

func TestL1PreservesArbitraryBits(t *testing.T) {
	// Layer 1 means no interpretation: garbage frames pass unmodified.
	x := New("mcc", []string{"p1", "p2"})
	a, _ := attach(t, x, "p1")
	_, chb := attach(t, x, "p2")
	x.Bridge("p1", "p2")
	junk := []byte{0x00, 0x01, 0xFF}
	a.Transmit(junk)
	expectFrame(t, chb, string(junk))
}
