// Command benchjson converts `go test -bench` text output on stdin into
// a benchstat-friendly JSON document on stdout, so benchmark runs can be
// committed (BENCH_fastpath.json) and diffed across PRs without parsing
// free text. Context lines (goos/goarch/cpu/pkg) are captured so a
// recorded run states the machine it came from.
//
// Usage: go test -run '^$' -bench X ./... | go run ./internal/tools/benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one result line, e.g.
//
//	BenchmarkForwardFastPath/base-8  1202714  955.2 ns/op  211 B/op  1 allocs/op
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"` // unit → value ("ns/op", "B/op", ...)
	Raw        string             `json:"raw"`
}

// Report is the whole run.
type Report struct {
	Context    map[string]string `json:"context"` // goos, goarch, cpu, pkg
	Benchmarks []Benchmark       `json:"benchmarks"`
}

func main() {
	rep := Report{Context: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "cpu:"),
			strings.HasPrefix(line, "pkg:"):
			k, v, _ := strings.Cut(line, ":")
			rep.Context[k] = strings.TrimSpace(v)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: encode:", err)
		os.Exit(1)
	}
}

// parseBench splits "BenchmarkX-8  N  <value unit>..." into fields. Any
// value/unit pair is kept, so custom b.ReportMetric units survive.
func parseBench(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Iterations: iters, Metrics: map[string]float64{}, Raw: line}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		b.Metrics[f[i+1]] = v
	}
	return b, true
}
