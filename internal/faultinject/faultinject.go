// Package faultinject wraps net.Conn and net.Listener with controllable
// faults — kill every connection, stall I/O for a while, blackhole one
// direction, flap on a schedule — so recovery paths (tunnel redial,
// grace-period re-join, state reconciliation) can be exercised
// deterministically in tests instead of waiting for real networks to
// misbehave. It composes with internal/wanem: attach a Conditioner and
// every outbound chunk is delayed/dropped per the WAN profile, turning a
// clean loopback into a lossy long-haul tunnel.
package faultinject

import (
	"net"
	"sync"
	"time"

	"rnl/internal/sim"
)

// Direction selects which half of a wrapped connection a fault applies
// to, from the wrapped side's point of view.
type Direction int

const (
	// Inbound is data read from the peer.
	Inbound Direction = iota
	// Outbound is data written to the peer.
	Outbound
)

// Conditioner matches wanem.Conditioner: given a chunk size it returns a
// delivery delay and whether to drop the chunk entirely. Note that
// dropping bytes out of a TCP stream corrupts the peer's framing — which
// is exactly the point: a dropped chunk forces the protocol's recovery
// path, not a silent retransmit.
type Conditioner interface {
	Condition(size int) (delay time.Duration, drop bool)
}

// Controller owns a set of wrapped connections and applies faults to all
// of them. The zero value is not usable; call NewController.
type Controller struct {
	clock      sim.Clock
	mu         sync.Mutex
	conns      map[*Conn]struct{}
	stallUntil time.Time
	dropIn     bool
	dropOut    bool
	down       bool // listener refuses (closes) new connections
	cond       Conditioner
	kills      int
}

// NewController returns a controller with no faults active, timed by the
// wall clock.
func NewController() *Controller {
	return NewControllerClock(sim.Real{})
}

// NewControllerClock is NewController with an injected clock (nil means
// wall time). Under sim.Fake, stall windows, flap schedules and
// conditioner delays all run on virtual time: faults fire exactly when
// the scenario advances past them, never on a wall-time schedule.
func NewControllerClock(clock sim.Clock) *Controller {
	if clock == nil {
		clock = sim.Real{}
	}
	return &Controller{clock: clock, conns: make(map[*Conn]struct{})}
}

// Wrap registers a connection with the controller and returns the
// fault-injecting wrapper.
func (c *Controller) Wrap(nc net.Conn) *Conn {
	fc := &Conn{Conn: nc, ctl: c}
	c.mu.Lock()
	c.conns[fc] = struct{}{}
	c.mu.Unlock()
	return fc
}

// WrapListener returns a listener whose accepted connections are wrapped
// by (and controlled through) this controller. While the controller is
// "down" (see FlapEvery), accepted connections are closed immediately —
// the dial succeeds and instantly dies, like a host whose service is
// rebooting.
func (c *Controller) WrapListener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, ctl: c}
}

// KillAll closes every live wrapped connection — yanking the cable on
// all tunnels at once — and returns how many it killed.
func (c *Controller) KillAll() int {
	c.mu.Lock()
	victims := make([]*Conn, 0, len(c.conns))
	for fc := range c.conns {
		victims = append(victims, fc)
	}
	c.kills += len(victims)
	c.mu.Unlock()
	for _, fc := range victims {
		fc.Close()
	}
	return len(victims)
}

// Kills reports how many connections KillAll has closed in total.
func (c *Controller) Kills() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.kills
}

// Active reports how many wrapped connections are currently open.
func (c *Controller) Active() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.conns)
}

// StallFor freezes every read and write on wrapped connections for d
// from now — a routing blackout that heals by itself. Connections stay
// open; deadlines set by the wrapped code still fire.
func (c *Controller) StallFor(d time.Duration) {
	c.mu.Lock()
	c.stallUntil = c.clock.Now().Add(d)
	c.mu.Unlock()
}

// DropDirection turns silent discarding of one direction on or off:
// inbound drops swallow received data, outbound drops pretend writes
// succeeded. Both directions dropped is a half-open connection TCP never
// notices — the case keepalive timeouts exist for.
func (c *Controller) DropDirection(dir Direction, drop bool) {
	c.mu.Lock()
	if dir == Inbound {
		c.dropIn = drop
	} else {
		c.dropOut = drop
	}
	c.mu.Unlock()
}

// SetConditioner attaches a WAN conditioner applied to outbound chunks
// (nil detaches). Use wanem.New for realistic delay/jitter/loss.
func (c *Controller) SetConditioner(cond Conditioner) {
	c.mu.Lock()
	c.cond = cond
	c.mu.Unlock()
}

// FlapEvery kills all connections every up interval and keeps the
// wrapped listener refusing new connections for the following down
// interval — a link that cycles on a schedule driven by the controller
// clock. The returned stop function ends the flapping (leaving the link
// up).
func (c *Controller) FlapEvery(up, down time.Duration) (stop func()) {
	stopCh := make(chan struct{})
	go func() {
		for {
			if c.waitOrStop(up, stopCh) {
				return
			}
			c.mu.Lock()
			c.down = true
			c.mu.Unlock()
			c.KillAll()
			c.waitOrStop(down, stopCh)
			c.mu.Lock()
			c.down = false
			c.mu.Unlock()
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(stopCh)
			c.mu.Lock()
			c.down = false
			c.mu.Unlock()
		})
	}
}

// waitOrStop blocks for d on the controller clock (or until stop closes)
// and reports whether it was stopped. Clock-timer based, so a fake clock
// releases it the instant Advance crosses the deadline.
func (c *Controller) waitOrStop(d time.Duration, stop <-chan struct{}) bool {
	ch := make(chan struct{})
	t := c.clock.AfterFunc(d, func() { close(ch) })
	defer t.Stop()
	select {
	case <-stop:
		return true
	case <-ch:
		return false
	}
}

func (c *Controller) forget(fc *Conn) {
	c.mu.Lock()
	delete(c.conns, fc)
	c.mu.Unlock()
}

// waitStall blocks while a stall window is active. It waits on a clock
// timer rather than sleeping: sim.Fake's Sleep is a no-op, and a
// sleep-poll loop would spin forever there instead of blocking until the
// scenario advances past the stall.
func (c *Controller) waitStall() {
	for {
		c.mu.Lock()
		until := c.stallUntil
		c.mu.Unlock()
		d := until.Sub(c.clock.Now())
		if d <= 0 {
			return
		}
		ch := make(chan struct{})
		t := c.clock.AfterFunc(d, func() { close(ch) })
		<-ch
		t.Stop()
	}
}

func (c *Controller) dropping(dir Direction) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if dir == Inbound {
		return c.dropIn
	}
	return c.dropOut
}

func (c *Controller) isDown() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.down
}

// condition applies the attached conditioner to one outbound chunk.
func (c *Controller) condition(size int) (time.Duration, bool) {
	c.mu.Lock()
	cond := c.cond
	c.mu.Unlock()
	if cond == nil {
		return 0, false
	}
	return cond.Condition(size)
}

// Conn is a net.Conn under fault control.
type Conn struct {
	net.Conn
	ctl *Controller

	closeOnce sync.Once
	closeErr  error
}

// Read applies stall and inbound-drop faults. Dropped reads are
// swallowed and the read retried, so a blackholed direction looks like
// pure silence, not an error.
func (fc *Conn) Read(p []byte) (int, error) {
	for {
		fc.ctl.waitStall()
		n, err := fc.Conn.Read(p)
		if err != nil {
			return n, err
		}
		if fc.ctl.dropping(Inbound) {
			continue
		}
		return n, nil
	}
}

// Write applies stall, outbound-drop and conditioner faults. Dropped
// chunks report success — the sender has no idea, exactly like a lossy
// network.
func (fc *Conn) Write(p []byte) (int, error) {
	fc.ctl.waitStall()
	if fc.ctl.dropping(Outbound) {
		return len(p), nil
	}
	if delay, drop := fc.ctl.condition(len(p)); drop {
		return len(p), nil
	} else if delay > 0 {
		ch := make(chan struct{})
		t := fc.ctl.clock.AfterFunc(delay, func() { close(ch) })
		<-ch
		t.Stop()
	}
	return fc.Conn.Write(p)
}

// Close closes the underlying connection and deregisters from the
// controller.
func (fc *Conn) Close() error {
	fc.closeOnce.Do(func() {
		fc.ctl.forget(fc)
		fc.closeErr = fc.Conn.Close()
	})
	return fc.closeErr
}

// listener wraps accepted connections with the controller.
type listener struct {
	net.Listener
	ctl *Controller
}

func (l *listener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if l.ctl.isDown() {
			conn.Close()
			continue
		}
		return l.ctl.Wrap(conn), nil
	}
}
