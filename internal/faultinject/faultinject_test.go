package faultinject

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// pipePair returns a wrapped client half talking to a raw server half.
func pipePair(t *testing.T, ctl *Controller) (*Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	fc := ctl.Wrap(a)
	t.Cleanup(func() { fc.Close(); b.Close() })
	return fc, b
}

func TestKillAllClosesConnections(t *testing.T) {
	ctl := NewController()
	fc, peer := pipePair(t, ctl)
	if got := ctl.Active(); got != 1 {
		t.Fatalf("Active = %d, want 1", got)
	}
	if n := ctl.KillAll(); n != 1 {
		t.Fatalf("KillAll = %d, want 1", n)
	}
	if got := ctl.Active(); got != 0 {
		t.Fatalf("Active after kill = %d, want 0", got)
	}
	if ctl.Kills() != 1 {
		t.Fatalf("Kills = %d, want 1", ctl.Kills())
	}
	if _, err := fc.Write([]byte("x")); err == nil {
		t.Fatal("write on killed conn succeeded")
	}
	buf := make([]byte, 1)
	if _, err := peer.Read(buf); err != io.EOF && err != io.ErrClosedPipe {
		t.Fatalf("peer read err = %v, want EOF/closed", err)
	}
}

func TestStallDelaysIO(t *testing.T) {
	ctl := NewController()
	fc, peer := pipePair(t, ctl)
	go func() {
		buf := make([]byte, 8)
		for {
			if _, err := peer.Read(buf); err != nil {
				return
			}
		}
	}()
	const stall = 80 * time.Millisecond
	ctl.StallFor(stall)
	start := time.Now()
	if _, err := fc.Write([]byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if elapsed := time.Since(start); elapsed < stall {
		t.Fatalf("write completed in %v, want at least %v", elapsed, stall)
	}
}

func TestDropOutboundSwallowsWrites(t *testing.T) {
	ctl := NewController()
	fc, peer := pipePair(t, ctl)
	ctl.DropDirection(Outbound, true)
	// net.Pipe writes block until read; a dropped write must not touch the
	// pipe at all, so this returns immediately with claimed success.
	n, err := fc.Write([]byte("vanish"))
	if err != nil || n != 6 {
		t.Fatalf("dropped write = (%d, %v), want (6, nil)", n, err)
	}
	ctl.DropDirection(Outbound, false)
	done := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 16)
		n, err := peer.Read(buf)
		if err != nil {
			done <- nil
			return
		}
		done <- buf[:n]
	}()
	if _, err := fc.Write([]byte("seen")); err != nil {
		t.Fatalf("write after undrop: %v", err)
	}
	select {
	case got := <-done:
		if string(got) != "seen" {
			t.Fatalf("peer read %q, want %q (and never %q)", got, "seen", "vanish")
		}
	case <-time.After(time.Second):
		t.Fatal("peer never received post-undrop write")
	}
}

func TestDropInboundDiscardsReads(t *testing.T) {
	ctl := NewController()
	fc, peer := pipePair(t, ctl)
	ctl.DropDirection(Inbound, true)
	go peer.Write([]byte("lost"))
	// The read must swallow "lost" and keep blocking; after undropping,
	// the next chunk comes through.
	got := make(chan string, 1)
	go func() {
		buf := make([]byte, 16)
		n, err := fc.Read(buf)
		if err != nil {
			got <- "ERR:" + err.Error()
			return
		}
		got <- string(buf[:n])
	}()
	time.Sleep(50 * time.Millisecond)
	select {
	case v := <-got:
		t.Fatalf("read returned %q while inbound dropped", v)
	default:
	}
	ctl.DropDirection(Inbound, false)
	go peer.Write([]byte("kept"))
	select {
	case v := <-got:
		if v != "kept" {
			t.Fatalf("read %q, want %q", v, "kept")
		}
	case <-time.After(time.Second):
		t.Fatal("read never returned after undrop")
	}
}

type fixedDelay struct{ d time.Duration }

func (f fixedDelay) Condition(size int) (time.Duration, bool) { return f.d, false }

type dropAll struct{}

func (dropAll) Condition(size int) (time.Duration, bool) { return 0, true }

func TestConditionerAppliesToWrites(t *testing.T) {
	ctl := NewController()
	fc, peer := pipePair(t, ctl)
	go func() {
		buf := make([]byte, 8)
		for {
			if _, err := peer.Read(buf); err != nil {
				return
			}
		}
	}()
	const delay = 60 * time.Millisecond
	ctl.SetConditioner(fixedDelay{delay})
	start := time.Now()
	if _, err := fc.Write([]byte("x")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if elapsed := time.Since(start); elapsed < delay {
		t.Fatalf("conditioned write took %v, want at least %v", elapsed, delay)
	}
	ctl.SetConditioner(dropAll{})
	// With everything dropped, a write on a pipe (which would block until
	// read) returns immediately.
	if n, err := fc.Write([]byte("gone")); err != nil || n != 4 {
		t.Fatalf("dropped write = (%d, %v), want (4, nil)", n, err)
	}
}

func TestWrapListenerAndFlap(t *testing.T) {
	ctl := NewController()
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ln := ctl.WrapListener(raw)
	defer ln.Close()

	var mu sync.Mutex
	accepted := 0
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			accepted++
			mu.Unlock()
			go io.Copy(io.Discard, conn)
		}
	}()

	dial := func() net.Conn {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}

	c1 := dial()
	deadline := time.Now().Add(2 * time.Second)
	for ctl.Active() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("accepted conn never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}

	stop := ctl.FlapEvery(30*time.Millisecond, 50*time.Millisecond)
	defer stop()

	// The flap must kill c1: our reads start failing.
	buf := make([]byte, 1)
	c1.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c1.Read(buf); err == nil {
		t.Fatal("read on flapped conn succeeded")
	}
	if ctl.Kills() == 0 {
		t.Fatal("flap recorded no kills")
	}

	// While down, dials complete but die immediately. Eventually the link
	// comes back up and a dial survives long enough to register.
	stop()
	survived := false
	for try := 0; try < 50 && !survived; try++ {
		c := dial()
		c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		if _, err := c.Read(buf); err != io.EOF {
			survived = true // timeout, not instant close: connection held
		}
		c.Close()
		time.Sleep(10 * time.Millisecond)
	}
	if !survived {
		t.Fatal("no connection survived after flapping stopped")
	}
}
