package faultinject

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"rnl/internal/wal"
)

// Disk is a wal.FS that injects storage faults: write errors, short
// (torn) writes, fsync failures — one-shot, persistent, or every Nth —
// and rename failures. The zero value passes everything through to the
// real filesystem; arm faults from tests, then clear them with the
// same setter and a nil error / zero count.
type Disk struct {
	// Inner is the wrapped filesystem; nil means wal.OSFS{}.
	Inner wal.FS

	mu         sync.Mutex
	writeErr   error
	shortWrite int // if >0 with writeErr set: write this many bytes before failing
	syncErr    error
	syncEveryN int // if >0: every Nth fsync fails (independent of syncErr)
	renameErr  error

	writes  int
	syncs   int
	renames int
}

// NewDisk wraps inner (nil for the OS filesystem).
func NewDisk(inner wal.FS) *Disk {
	if inner == nil {
		inner = wal.OSFS{}
	}
	return &Disk{Inner: inner}
}

// FailWrites makes every file write fail with err (nil clears).
func (d *Disk) FailWrites(err error) {
	d.mu.Lock()
	d.writeErr = err
	d.shortWrite = 0
	d.mu.Unlock()
}

// ShortWrites makes every file write persist only the first n bytes
// and then fail with err — the torn tail a power loss mid-write
// leaves. err must be non-nil; FailWrites(nil) clears.
func (d *Disk) ShortWrites(n int, err error) {
	d.mu.Lock()
	d.writeErr = err
	d.shortWrite = n
	d.mu.Unlock()
}

// FailFsync makes every fsync fail with err (nil clears).
func (d *Disk) FailFsync(err error) {
	d.mu.Lock()
	d.syncErr = err
	d.syncEveryN = 0
	d.mu.Unlock()
}

// FailEveryNthFsync makes every Nth fsync (counting from the next one)
// fail with err. n <= 0 clears.
func (d *Disk) FailEveryNthFsync(n int, err error) {
	d.mu.Lock()
	d.syncEveryN = n
	d.syncErr = err
	d.mu.Unlock()
}

// FailRenames makes every rename fail with err (nil clears).
func (d *Disk) FailRenames(err error) {
	d.mu.Lock()
	d.renameErr = err
	d.mu.Unlock()
}

// Counts returns how many writes, fsyncs and renames were attempted.
func (d *Disk) Counts() (writes, syncs, renames int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writes, d.syncs, d.renames
}

func (d *Disk) inner() wal.FS {
	if d.Inner == nil {
		return wal.OSFS{}
	}
	return d.Inner
}

func (d *Disk) OpenFile(name string, flag int, perm os.FileMode) (wal.File, error) {
	f, err := d.inner().OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &diskFile{File: f, d: d}, nil
}

func (d *Disk) ReadFile(name string) ([]byte, error) { return d.inner().ReadFile(name) }

func (d *Disk) Rename(oldpath, newpath string) error {
	d.mu.Lock()
	d.renames++
	err := d.renameErr
	d.mu.Unlock()
	if err != nil {
		return err
	}
	return d.inner().Rename(oldpath, newpath)
}

func (d *Disk) Remove(name string) error                    { return d.inner().Remove(name) }
func (d *Disk) MkdirAll(path string, perm os.FileMode) error { return d.inner().MkdirAll(path, perm) }

func (d *Disk) SyncDir(dir string) error {
	if err := d.syncFault(); err != nil {
		return err
	}
	return d.inner().SyncDir(dir)
}

// syncFault counts an fsync attempt and returns the injected error, if
// any, for this attempt.
func (d *Disk) syncFault() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.syncs++
	if d.syncEveryN > 0 {
		if d.syncs%d.syncEveryN == 0 {
			return d.syncErr
		}
		return nil
	}
	return d.syncErr
}

type diskFile struct {
	wal.File
	d *Disk
}

func (f *diskFile) Write(p []byte) (int, error) {
	f.d.mu.Lock()
	f.d.writes++
	werr := f.d.writeErr
	short := f.d.shortWrite
	f.d.mu.Unlock()
	if werr != nil {
		if short > 0 && short < len(p) {
			n, _ := f.File.Write(p[:short])
			return n, werr
		}
		if short > 0 {
			// Short-write limit exceeds this write: persist it all but
			// still fail, as if power died after the write hit cache.
			n, _ := f.File.Write(p)
			return n, werr
		}
		return 0, werr
	}
	return f.File.Write(p)
}

// WriteAt passes through positioned writes (used by the log's append
// path) with the same fault model as Write.
func (f *diskFile) WriteAt(p []byte, off int64) (int, error) {
	type writerAt interface {
		WriteAt(p []byte, off int64) (int, error)
	}
	wa, ok := f.File.(writerAt)
	if !ok {
		// Falling back to Write would silently drop the offset and
		// corrupt the simulated log position.
		return 0, fmt.Errorf("faultinject: inner file %T does not implement WriteAt", f.File)
	}
	f.d.mu.Lock()
	f.d.writes++
	werr := f.d.writeErr
	short := f.d.shortWrite
	f.d.mu.Unlock()
	if werr != nil {
		if short > 0 && short < len(p) {
			n, _ := wa.WriteAt(p[:short], off)
			return n, werr
		}
		if short > 0 {
			n, _ := wa.WriteAt(p, off)
			return n, werr
		}
		return 0, werr
	}
	return wa.WriteAt(p, off)
}

func (f *diskFile) Sync() error {
	if err := f.d.syncFault(); err != nil {
		return err
	}
	return f.File.Sync()
}

// TornTail appends garbage bytes that can never parse as a valid WAL
// record (the length field is all-ones) directly to path, simulating
// the torn tail a crash leaves mid-append.
func TornTail(path string, junk []byte) error {
	f, err := os.OpenFile(filepath.Clean(path), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o600)
	if err != nil {
		return err
	}
	if _, err := f.Write(append([]byte{0xff, 0xff, 0xff, 0xff}, junk...)); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
