// Package wal implements a checksummed append-ahead log for
// control-plane mutations, plus the snapshot+log pair (Store) that
// turns it into crash-consistent persistence: every mutation appends a
// small record, a periodic incremental snapshot rewrites the base file
// and truncates the log prefix, and recovery is snapshot-restore
// followed by ordered log replay.
//
// On-disk record format (all integers little-endian):
//
//	[u32 length n] [u32 CRC32C] [u64 seq] [payload]
//
// where length covers the seq+payload region (n = 8+len(payload)) and
// the CRC32C (Castagnoli) covers the same n bytes. Opening a log scans
// the file for the longest valid prefix: a short header, a length out
// of range, a record extending past EOF, or a checksum mismatch all
// mark the torn tail, which is truncated away. Appends are a single
// Write call so an injected short write leaves exactly the torn tail a
// power loss would.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"rnl/internal/sim"
)

// Record framing constants.
const (
	headerSize = 8               // u32 length + u32 crc
	seqSize    = 8               // u64 sequence number inside the checksummed region
	maxRecord  = 64 * 1024 * 1024 // sanity cap: larger lengths are treated as torn garbage
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrWedged is returned by Append after a failed write could not be
// rolled back: the on-disk tail is in an unknown state and further
// appends would be unrecoverable on replay.
var ErrWedged = errors.New("wal: log wedged after unrecoverable write failure")

// Policy selects when appends are fsynced.
type Policy int

const (
	// SyncAlways fsyncs after every append (the default: an
	// acknowledged mutation survives power loss).
	SyncAlways Policy = iota
	// SyncInterval batches fsyncs on a timer; a crash can lose up to
	// one interval of acknowledged mutations.
	SyncInterval
	// SyncNone never fsyncs explicitly; durability is whatever the OS
	// page cache provides. Torn-tail recovery still applies.
	SyncNone
)

func (p Policy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy parses a -wal-fsync flag value: "always", "none", or a
// Go duration (e.g. "100ms") selecting SyncInterval at that cadence.
func ParsePolicy(s string) (Policy, time.Duration, error) {
	switch strings.TrimSpace(s) {
	case "", "always":
		return SyncAlways, 0, nil
	case "none":
		return SyncNone, 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return SyncAlways, 0, fmt.Errorf("wal: fsync policy %q is not \"always\", \"none\", or a positive duration", s)
	}
	return SyncInterval, d, nil
}

// File is the subset of *os.File the log needs; faultinject.Disk wraps
// it to inject short writes, write errors, and fsync errors.
type File interface {
	io.Writer
	Sync() error
	Truncate(size int64) error
	Close() error
}

// FS abstracts the filesystem operations behind the log and the atomic
// snapshot writer so tests can inject disk faults.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	ReadFile(name string) ([]byte, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm os.FileMode) error
	// SyncDir fsyncs a directory so a preceding rename survives power
	// loss.
	SyncDir(dir string) error
}

// OSFS is the real-filesystem FS.
type OSFS struct{}

func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (OSFS) ReadFile(name string) ([]byte, error)        { return os.ReadFile(name) }
func (OSFS) Rename(oldpath, newpath string) error        { return os.Rename(oldpath, newpath) }
func (OSFS) Remove(name string) error                    { return os.Remove(name) }
func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Options configure a Log (and, via OpenStore, a Store).
type Options struct {
	Policy   Policy
	Interval time.Duration // SyncInterval cadence; default 100ms
	MaxBytes int64         // advisory rotation threshold for Store.ShouldSnapshot; default 1 MiB
	Clock    sim.Clock     // default sim.Real{}
	FS       FS            // default OSFS{}
	// GroupCommit makes concurrent SyncAlways appenders share fsyncs
	// (leader/follower): each appender writes its record under the log
	// lock, then the first to need durability fsyncs once on behalf of
	// every record written so far. A failed shared fsync rolls back
	// every record in the batch — each waiter gets an error and none of
	// the records replay after restart.
	GroupCommit bool
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.MaxBytes <= 0 {
		o.MaxBytes = 1 << 20
	}
	if o.Clock == nil {
		o.Clock = sim.Real{}
	}
	if o.FS == nil {
		o.FS = OSFS{}
	}
	return o
}

// Log is an append-ahead log of length-prefixed, CRC32C-checksummed
// records. All methods are safe for concurrent use.
type Log struct {
	fs   FS
	path string
	opts Options

	mu      sync.Mutex
	f       File
	size    int64 // bytes of valid records on disk
	nextSeq uint64
	dirty   bool // appends not yet fsynced
	timer   sim.Timer
	wedged  bool
	closed  bool

	// Group-commit state. synced/syncedSeq mark the durable boundary:
	// everything at or below synced has been fsynced, and syncedSeq is
	// the nextSeq value at that boundary (where nextSeq rewinds to if
	// unsynced records roll back). waiters are appenders whose records
	// sit above the boundary, parked until a leader's shared fsync
	// covers (or rolls back) their offsets.
	synced    int64
	syncedSeq uint64
	syncing   bool // a group-commit leader is running fsync rounds
	waiters   []*groupWaiter
}

// groupWaiter parks one group-commit appender: end is the log offset
// just past its record, ch receives exactly one verdict — nil (record
// durable), an append error (record rolled back), or errLead
// (promoted: take over as leader and resolve yourself).
type groupWaiter struct {
	end int64
	ch  chan error
}

// errLead promotes a parked waiter to group-commit leader. Never
// returned to callers.
var errLead = errors.New("wal: promoted to group-commit leader")

// OpenLog opens (creating if absent) the log at path, scans it for the
// longest valid record prefix, and truncates any torn tail. The
// truncated byte count is reported through the torn-bytes metric.
func OpenLog(path string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	l := &Log{fs: opts.FS, path: path, opts: opts, nextSeq: 1}

	data, err := l.fs.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("wal: read %s: %w", path, err)
	}
	valid, lastSeq, _ := scan(data)
	if lastSeq > 0 {
		l.nextSeq = lastSeq + 1
	}
	l.size = int64(valid)

	f, err := l.fs.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o600)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	if torn := len(data) - valid; torn > 0 {
		if err := f.Truncate(l.size); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: sync %s after truncation: %w", path, err)
		}
		mTornBytes.Add(uint64(torn))
	}
	l.f = &appendAt{File: f, off: l.size}
	l.synced = l.size
	l.syncedSeq = l.nextSeq
	return l, nil
}

// appendAt tracks the write offset explicitly so that a short write
// (fault-injected or real) leaves the in-memory offset where the log
// can truncate back to the last full record. The underlying file is
// opened without O_APPEND: writes land at off.
type appendAt struct {
	File
	off int64
}

func (a *appendAt) Write(p []byte) (int, error) {
	type writerAt interface {
		WriteAt(p []byte, off int64) (int, error)
	}
	var n int
	var err error
	if wa, ok := a.File.(writerAt); ok {
		n, err = wa.WriteAt(p, a.off)
	} else {
		n, err = a.File.Write(p)
	}
	a.off += int64(n)
	return n, err
}

func (a *appendAt) Truncate(size int64) error {
	if err := a.File.Truncate(size); err != nil {
		return err
	}
	a.off = size
	return nil
}

// scan walks data and returns the length of the longest valid record
// prefix, the last sequence number seen, and the record count.
func scan(data []byte) (valid int, lastSeq uint64, count int) {
	off := 0
	for off+headerSize <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if n < seqSize || n > maxRecord || off+headerSize+n > len(data) {
			break // torn or garbage tail
		}
		body := data[off+headerSize : off+headerSize+n]
		if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(data[off+4:]) {
			break // corrupt record: stop, do not skip
		}
		lastSeq = binary.LittleEndian.Uint64(body)
		off += headerSize + n
		count++
	}
	return off, lastSeq, count
}

// Append writes one record and applies the fsync policy. It returns
// the record's sequence number. On a failed write — or a failed fsync
// under SyncAlways — it truncates back to the previous record
// boundary, so a mutation reported as failed never replays; if that
// rollback also fails the log is wedged and all future appends return
// ErrWedged.
func (l *Log) Append(payload []byte) (uint64, error) {
	return l.append([][]byte{payload})
}

// AppendBatch writes len(payloads) records contiguously with a single
// Write call and applies the fsync policy once for the whole batch, so
// a bulk mutation at SyncAlways pays one fsync instead of one per
// record. It returns the first record's sequence number (the rest are
// consecutive). The batch is all-or-nothing: a failed write or fsync
// rolls back every record in it, and none replay after restart.
func (l *Log) AppendBatch(payloads [][]byte) (uint64, error) {
	if len(payloads) == 0 {
		return 0, nil
	}
	return l.append(payloads)
}

func (l *Log) append(payloads [][]byte) (uint64, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, errors.New("wal: log closed")
	}
	if l.wedged {
		mAppendErrors.Inc()
		l.mu.Unlock()
		return 0, ErrWedged
	}
	total := 0
	for _, p := range payloads {
		if len(p) > maxRecord-seqSize {
			mAppendErrors.Inc()
			l.mu.Unlock()
			return 0, fmt.Errorf("wal: record of %d bytes exceeds max %d", len(p), maxRecord-seqSize)
		}
		total += headerSize + seqSize + len(p)
	}
	firstSeq := l.nextSeq
	buf := make([]byte, 0, total)
	seq := firstSeq
	for _, p := range payloads {
		off := len(buf)
		buf = append(buf, make([]byte, headerSize+seqSize)...)
		buf = append(buf, p...)
		rec := buf[off:]
		binary.LittleEndian.PutUint32(rec[0:], uint32(seqSize+len(p)))
		binary.LittleEndian.PutUint64(rec[headerSize:], seq)
		binary.LittleEndian.PutUint32(rec[4:], crc32.Checksum(rec[headerSize:], castagnoli))
		seq++
	}

	if _, err := l.f.Write(buf); err != nil {
		mAppendErrors.Inc()
		// Roll the file back to the last full record so a partial
		// write doesn't poison everything appended after it. Records
		// other appenders wrote before us (awaiting a group fsync)
		// live below l.size and are untouched.
		if terr := l.f.Truncate(l.size); terr != nil {
			l.wedged = true
			l.mu.Unlock()
			return 0, fmt.Errorf("wal: append failed (%v) and rollback failed: %w", err, terr)
		}
		l.mu.Unlock()
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.nextSeq = seq
	l.size += int64(len(buf))
	l.dirty = true
	mAppends.Add(uint64(len(payloads)))
	mAppendBytes.Add(uint64(len(buf)))
	if len(payloads) > 1 {
		mBatchAppends.Inc()
	}

	switch l.opts.Policy {
	case SyncAlways:
		if l.opts.GroupCommit {
			// Register as a group-commit waiter under the same lock
			// hold as the write, then either lead a shared fsync round
			// or park until a leader covers (or rolls back) us.
			w := &groupWaiter{end: l.size, ch: make(chan error, 1)}
			l.waiters = append(l.waiters, w)
			lead := !l.syncing
			if lead {
				l.syncing = true
			}
			l.mu.Unlock()
			if !lead {
				werr := <-w.ch
				if werr != errLead {
					if werr != nil {
						mAppendErrors.Inc()
						return 0, werr
					}
					return firstSeq, nil
				}
			}
			if err := l.leadGroup(w); err != nil {
				mAppendErrors.Inc()
				return 0, err
			}
			return firstSeq, nil
		}
		if err := l.syncLocked(); err != nil {
			mAppendErrors.Inc()
			// The kernel may have dropped the records' dirty pages, so
			// their durability is unknown. Roll the whole batch back
			// like a failed write: a mutation reported as failed must
			// not silently replay after restart.
			if terr := l.f.Truncate(l.size - int64(len(buf))); terr != nil {
				l.wedged = true
				l.mu.Unlock()
				return 0, fmt.Errorf("wal: fsync after append failed (%v) and rollback failed: %w", err, terr)
			}
			l.nextSeq = firstSeq
			l.size -= int64(len(buf))
			l.dirty = false
			l.synced = l.size
			l.syncedSeq = firstSeq
			l.mu.Unlock()
			return 0, fmt.Errorf("wal: fsync after append: %w", err)
		}
	case SyncInterval:
		if l.timer == nil {
			l.timer = l.opts.Clock.AfterFunc(l.opts.Interval, l.intervalSync)
		}
	}
	l.mu.Unlock()
	return firstSeq, nil
}

// leadGroup runs one group-commit fsync round on behalf of every
// waiter registered so far, with the lock released during the fsync so
// racing appenders keep writing records for the next round. own is the
// leader's waiter entry; its verdict is returned directly instead of
// through the channel. On success, waiters covered by the round
// resolve nil and leadership hands off to the first uncovered waiter.
// On a failed fsync the leader truncates back to the durable boundary
// — rolling back every unsynced record, including ones written while
// the fsync was in flight — and every rolled-back waiter reports
// failure, so no record reported as failed ever replays.
func (l *Log) leadGroup(own *groupWaiter) error {
	l.mu.Lock()
	if l.closed || l.wedged || l.f == nil {
		werr := ErrWedged
		if l.closed || l.f == nil {
			werr = errors.New("wal: log closed")
		}
		return l.finishGroupLocked(own, nil, werr)
	}
	batchEnd := l.size
	batchSeq := l.nextSeq
	f := l.f
	l.mu.Unlock()

	mFsyncs.Inc()
	err := f.Sync()

	l.mu.Lock()
	if err == nil {
		mGroupCommits.Inc()
		if batchEnd > l.synced {
			l.synced = batchEnd
			l.syncedSeq = batchSeq
		}
		if l.size == l.synced {
			l.dirty = false
		}
		return l.finishGroupLocked(own, nil, nil)
	}
	mFsyncErrors.Inc()
	if l.closed || l.f == nil {
		// The log was closed under the fsync (which is why it failed);
		// report the records above the boundary as unresolved-closed.
		return l.finishGroupLocked(own, nil, errors.New("wal: log closed"))
	}
	ferr := fmt.Errorf("wal: fsync after append: %w", err)
	if terr := l.f.Truncate(l.synced); terr != nil {
		// Rollback failed: the tail is in an unknown state. Wedge the
		// log; the affected records' durability is unknown, so their
		// appenders all see the wedge error.
		l.wedged = true
		return l.finishGroupLocked(own, nil,
			fmt.Errorf("wal: fsync after append failed (%v) and rollback failed: %w", err, terr))
	}
	l.size = l.synced
	l.nextSeq = l.syncedSeq
	l.dirty = false
	return l.finishGroupLocked(own, nil, ferr)
}

// finishGroupLocked resolves this round's waiters and releases l.mu.
// Waiters at or below the durable boundary get okErr (nil on a
// successful round); everyone else gets failErr — except that when
// failErr is nil only covered waiters resolve, the rest stay parked
// and the first of them is promoted to lead the next round. Returns
// own's verdict.
func (l *Log) finishGroupLocked(own *groupWaiter, okErr, failErr error) error {
	ownErr := okErr
	rest := l.waiters[:0]
	for _, w := range l.waiters {
		var verdict error
		switch {
		case w.end <= l.synced:
			// A successful round (or a racing full Sync) made this
			// record durable; rollbacks never truncate below the
			// durable boundary, so it survives regardless of failErr.
			verdict = okErr
		case failErr == nil:
			// Successful round that didn't reach this record: leave it
			// parked for the next round.
			rest = append(rest, w)
			continue
		default:
			verdict = failErr
		}
		if w == own {
			ownErr = verdict
		} else {
			w.ch <- verdict
		}
	}
	l.waiters = rest
	if len(l.waiters) == 0 {
		l.syncing = false
	} else {
		// Hand leadership to the first parked waiter; it stays in the
		// list so the next round resolves it as its own.
		l.waiters[0].ch <- errLead
	}
	l.mu.Unlock()
	return ownErr
}

func (l *Log) intervalSync() {
	l.mu.Lock()
	l.timer = nil
	err := l.syncLocked()
	l.mu.Unlock()
	_ = err // counted in metrics; callers of Append were already acked
}

func (l *Log) syncLocked() error {
	if !l.dirty || l.f == nil {
		return nil
	}
	mFsyncs.Inc()
	if err := l.f.Sync(); err != nil {
		mFsyncErrors.Inc()
		return err
	}
	l.dirty = false
	l.synced = l.size
	l.syncedSeq = l.nextSeq
	return nil
}

// Sync flushes pending appends to disk regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

// Replay re-reads the log from disk and calls fn for each valid record
// in order, stopping silently at the first torn or corrupt record
// (which open-time scanning normally already truncated). It returns
// the number of records delivered.
func (l *Log) Replay(fn func(seq uint64, payload []byte) error) (int, error) {
	l.mu.Lock()
	path := l.path
	l.mu.Unlock()
	data, err := l.fs.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	valid, _, _ := scan(data)
	n := 0
	off := 0
	for off < valid {
		recLen := int(binary.LittleEndian.Uint32(data[off:]))
		body := data[off+headerSize : off+headerSize+recLen]
		seq := binary.LittleEndian.Uint64(body)
		if err := fn(seq, body[seqSize:]); err != nil {
			return n, err
		}
		n++
		off += headerSize + recLen
	}
	mReplayed.Add(uint64(n))
	return n, nil
}

// Reset truncates the log to empty (after a snapshot has captured its
// contents). Sequence numbers keep increasing across resets.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: log closed")
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: reset %s: %w", l.path, err)
	}
	l.size = 0
	l.dirty = false
	l.wedged = false
	l.synced = 0
	l.syncedSeq = l.nextSeq
	if l.opts.Policy != SyncNone {
		mFsyncs.Inc()
		if err := l.f.Sync(); err != nil {
			mFsyncErrors.Inc()
			return fmt.Errorf("wal: sync after reset: %w", err)
		}
	}
	return nil
}

// Size returns the bytes of valid records currently in the log.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Close flushes pending appends and closes the file.
func (l *Log) Close() error {
	return l.close(true)
}

// CloseNoSync closes the file without flushing — used to simulate a
// crash where page-cache contents may or may not have reached disk.
func (l *Log) CloseNoSync() error {
	return l.close(false)
}

func (l *Log) close(sync bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.timer != nil {
		l.timer.Stop()
		l.timer = nil
	}
	var err error
	if sync {
		err = l.syncLocked()
	}
	if l.f != nil {
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		l.f = nil
	}
	return err
}

// WriteFileAtomic writes data to path crash-durably: write to a temp
// file in the same directory, fsync it, rename over path, then fsync
// the directory so the rename itself survives power loss.
func WriteFileAtomic(fs FS, path string, data []byte, perm os.FileMode) error {
	if fs == nil {
		fs = OSFS{}
	}
	tmp := path + ".tmp"
	f, err := fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return err
	}
	if err := fs.Rename(tmp, path); err != nil {
		fs.Remove(tmp)
		return err
	}
	return fs.SyncDir(filepath.Dir(path))
}
