package wal_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rnl/internal/faultinject"
	"rnl/internal/sim"
	"rnl/internal/wal"
)

func openLog(t *testing.T, path string, opts wal.Options) *wal.Log {
	t.Helper()
	l, err := wal.OpenLog(path, opts)
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func replayAll(t *testing.T, l *wal.Log) [][]byte {
	t.Helper()
	var got [][]byte
	var lastSeq uint64
	n, err := l.Replay(func(seq uint64, payload []byte) error {
		if seq <= lastSeq {
			t.Fatalf("sequence went backwards: %d after %d", seq, lastSeq)
		}
		lastSeq = seq
		got = append(got, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if n != len(got) {
		t.Fatalf("Replay reported %d records, delivered %d", n, len(got))
	}
	return got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l := openLog(t, path, wal.Options{})
	want := [][]byte{[]byte("one"), []byte(""), bytes.Repeat([]byte{0xAB}, 5000)}
	for _, p := range want {
		if _, err := l.Append(p); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	got := replayAll(t, l)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: same records survive, sequence numbers continue.
	l2 := openLog(t, path, wal.Options{})
	if got := replayAll(t, l2); len(got) != len(want) {
		t.Fatalf("after reopen: %d records, want %d", len(got), len(want))
	}
	seq, err := l2.Append([]byte("four"))
	if err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	if seq != 4 {
		t.Fatalf("sequence after reopen = %d, want 4", seq)
	}
}

func TestOpenMissingAndEmptyLog(t *testing.T) {
	dir := t.TempDir()
	// Missing file.
	l := openLog(t, filepath.Join(dir, "missing.wal"), wal.Options{})
	if got := replayAll(t, l); len(got) != 0 {
		t.Fatalf("missing log replayed %d records", len(got))
	}
	if l.Size() != 0 {
		t.Fatalf("missing log size = %d", l.Size())
	}
	// Empty file.
	empty := filepath.Join(dir, "empty.wal")
	if err := os.WriteFile(empty, nil, 0o600); err != nil {
		t.Fatal(err)
	}
	l2 := openLog(t, empty, wal.Options{})
	if got := replayAll(t, l2); len(got) != 0 {
		t.Fatalf("empty log replayed %d records", len(got))
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l := openLog(t, path, wal.Options{})
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	wantSize := l.Size()
	l.Close()

	// Simulate a crash mid-append: garbage tail after the last record.
	if err := faultinject.TornTail(path, []byte{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}

	l2 := openLog(t, path, wal.Options{})
	if got := replayAll(t, l2); len(got) != 3 {
		t.Fatalf("after torn tail: %d records, want 3", len(got))
	}
	if l2.Size() != wantSize {
		t.Fatalf("size after truncation = %d, want %d", l2.Size(), wantSize)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != wantSize {
		t.Fatalf("file size on disk = %d, want %d (tail not truncated)", fi.Size(), wantSize)
	}
	// Appends after truncation land cleanly.
	if _, err := l2.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, l2); len(got) != 4 {
		t.Fatalf("after post-truncation append: %d records", len(got))
	}
}

func TestPartialFinalRecordTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l := openLog(t, path, wal.Options{})
	l.Append([]byte("keep-me"))
	keep := l.Size()
	l.Append(bytes.Repeat([]byte{7}, 100))
	l.Close()

	// Chop the last record in half — a torn append.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:keep+20], 0o600); err != nil {
		t.Fatal(err)
	}

	l2 := openLog(t, path, wal.Options{})
	got := replayAll(t, l2)
	if len(got) != 1 || string(got[0]) != "keep-me" {
		t.Fatalf("after partial record: got %d records %q", len(got), got)
	}
}

func TestMidRecordCorruptionStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l := openLog(t, path, wal.Options{})
	var offsets []int64
	for i := 0; i < 3; i++ {
		l.Append([]byte(fmt.Sprintf("payload-%d", i)))
		offsets = append(offsets, l.Size())
	}
	l.Close()

	// Flip a payload byte inside record 1 (the middle record). The CRC
	// must reject it and replay must stop — records after a corrupt one
	// cannot be trusted.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[offsets[0]+16] ^= 0xFF
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}

	l2 := openLog(t, path, wal.Options{})
	got := replayAll(t, l2)
	if len(got) != 1 || string(got[0]) != "payload-0" {
		t.Fatalf("after mid-record corruption: got %d records %q, want just payload-0", len(got), got)
	}
	if l2.Size() != offsets[0] {
		t.Fatalf("corrupt suffix not truncated: size %d, want %d", l2.Size(), offsets[0])
	}
}

func TestGarbageLengthFieldStopsScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l := openLog(t, path, wal.Options{})
	l.Append([]byte("good"))
	l.Close()

	// Append a header claiming an absurd record length.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:], 1<<30)
	f.Write(hdr[:])
	f.Write(bytes.Repeat([]byte{0x55}, 64))
	f.Close()

	l2 := openLog(t, path, wal.Options{})
	if got := replayAll(t, l2); len(got) != 1 {
		t.Fatalf("after garbage length: %d records, want 1", len(got))
	}
}

func TestDoubleReplayIdempotentAtLogLayer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l := openLog(t, path, wal.Options{})
	for i := 0; i < 5; i++ {
		l.Append([]byte{byte(i)})
	}
	first := replayAll(t, l)
	second := replayAll(t, l)
	if len(first) != 5 || len(second) != 5 {
		t.Fatalf("replay counts differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if !bytes.Equal(first[i], second[i]) {
			t.Fatalf("record %d differs between replays", i)
		}
	}
}

func TestSyncPolicies(t *testing.T) {
	t.Run("always", func(t *testing.T) {
		d := faultinject.NewDisk(nil)
		l := openLog(t, filepath.Join(t.TempDir(), "a.wal"), wal.Options{Policy: wal.SyncAlways, FS: d})
		l.Append([]byte("x"))
		l.Append([]byte("y"))
		if _, syncs, _ := d.Counts(); syncs < 2 {
			t.Fatalf("policy always: %d fsyncs for 2 appends", syncs)
		}
	})
	t.Run("none", func(t *testing.T) {
		d := faultinject.NewDisk(nil)
		l := openLog(t, filepath.Join(t.TempDir(), "n.wal"), wal.Options{Policy: wal.SyncNone, FS: d})
		l.Append([]byte("x"))
		l.Append([]byte("y"))
		if _, syncs, _ := d.Counts(); syncs != 0 {
			t.Fatalf("policy none: %d fsyncs, want 0", syncs)
		}
	})
	t.Run("interval", func(t *testing.T) {
		clk := sim.NewFake(time.Unix(0, 0))
		d := faultinject.NewDisk(nil)
		l := openLog(t, filepath.Join(t.TempDir(), "i.wal"), wal.Options{
			Policy: wal.SyncInterval, Interval: time.Second, Clock: clk, FS: d,
		})
		l.Append([]byte("x"))
		l.Append([]byte("y"))
		if _, syncs, _ := d.Counts(); syncs != 0 {
			t.Fatalf("interval policy fsynced before the interval elapsed (%d)", syncs)
		}
		clk.Advance(time.Second)
		if _, syncs, _ := d.Counts(); syncs != 1 {
			t.Fatalf("interval policy: %d fsyncs after tick, want 1 (batched)", syncs)
		}
	})
}

func TestWriteErrorRollsBack(t *testing.T) {
	d := faultinject.NewDisk(nil)
	path := filepath.Join(t.TempDir(), "test.wal")
	l := openLog(t, path, wal.Options{FS: d})
	l.Append([]byte("good"))

	boom := errors.New("disk full")
	d.FailWrites(boom)
	if _, err := l.Append([]byte("bad")); !errors.Is(err, boom) {
		t.Fatalf("Append under write fault: err=%v, want %v", err, boom)
	}
	d.FailWrites(nil)

	// The failed append must not have consumed disk space or broken the
	// log: the next append lands right after "good".
	if _, err := l.Append([]byte("after")); err != nil {
		t.Fatalf("Append after fault cleared: %v", err)
	}
	got := replayAll(t, l)
	if len(got) != 2 || string(got[0]) != "good" || string(got[1]) != "after" {
		t.Fatalf("after rollback: %q", got)
	}
}

func TestShortWriteLeavesRecoverableTornTail(t *testing.T) {
	d := faultinject.NewDisk(nil)
	path := filepath.Join(t.TempDir(), "test.wal")
	l := openLog(t, path, wal.Options{FS: d})
	l.Append([]byte("good"))

	// Tear the next append after 10 bytes; rollback truncates it away.
	d.ShortWrites(10, errors.New("power loss"))
	if _, err := l.Append([]byte("torn-record-payload")); err == nil {
		t.Fatal("short write did not surface an error")
	}
	d.FailWrites(nil)
	l.Close()

	l2 := openLog(t, path, wal.Options{})
	got := replayAll(t, l2)
	if len(got) != 1 || string(got[0]) != "good" {
		t.Fatalf("after torn append: %q", got)
	}
}

func TestEveryNthFsyncFails(t *testing.T) {
	d := faultinject.NewDisk(nil)
	path := filepath.Join(t.TempDir(), "test.wal")
	l := openLog(t, path, wal.Options{Policy: wal.SyncAlways, FS: d})

	boom := errors.New("fsync: I/O error")
	d.FailEveryNthFsync(3, boom)
	var failed, ok int
	for i := 0; i < 12; i++ {
		if _, err := l.Append([]byte{byte(i)}); err != nil {
			if !errors.Is(err, boom) {
				t.Fatalf("unexpected append error: %v", err)
			}
			failed++
		} else {
			ok++
		}
	}
	if failed == 0 || ok == 0 {
		t.Fatalf("expected a mix of failures and successes, got %d/%d", failed, ok)
	}
	// A failed fsync rolls its record back off the log: only the
	// acknowledged appends replay, so a mutation reported as failed
	// cannot silently resurrect after restart.
	if got := replayAll(t, l); len(got) != ok {
		t.Fatalf("replayed %d records, want %d acknowledged", len(got), ok)
	}
}

func TestStoreSnapshotRotation(t *testing.T) {
	dir := t.TempDir()
	snap, logPath := filepath.Join(dir, "state.json"), filepath.Join(dir, "state.wal")
	st, err := wal.OpenStore(snap, logPath, wal.Options{MaxBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	for i := 0; i < 20 && !st.ShouldSnapshot(); i++ {
		if err := st.Append(bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	if !st.ShouldSnapshot() {
		t.Fatal("log never crossed the rotation threshold")
	}
	if err := st.Snapshot([]byte(`{"base":true}`)); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if st.LogSize() != 0 {
		t.Fatalf("log size after rotation = %d, want 0", st.LogSize())
	}
	data, err := st.LoadSnapshot()
	if err != nil || string(data) != `{"base":true}` {
		t.Fatalf("LoadSnapshot = %q, %v", data, err)
	}
	// Post-rotation appends replay on top of the new base.
	st.Append([]byte("tail"))
	n, err := st.Replay(func(_ uint64, p []byte) error {
		if string(p) != "tail" {
			t.Fatalf("unexpected record %q", p)
		}
		return nil
	})
	if err != nil || n != 1 {
		t.Fatalf("Replay after rotation: n=%d err=%v", n, err)
	}
}

func TestStoreSnapshotFailureKeepsLog(t *testing.T) {
	d := faultinject.NewDisk(nil)
	dir := t.TempDir()
	st, err := wal.OpenStore(filepath.Join(dir, "s.json"), filepath.Join(dir, "s.wal"), wal.Options{FS: d})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.Append([]byte("precious"))
	size := st.LogSize()

	d.FailRenames(errors.New("rename: EIO"))
	if err := st.Snapshot([]byte("snap")); err == nil {
		t.Fatal("Snapshot succeeded despite rename fault")
	}
	d.FailRenames(nil)
	if st.LogSize() != size {
		t.Fatalf("failed snapshot truncated the log: size %d, want %d", st.LogSize(), size)
	}
	if data, _ := st.LoadSnapshot(); data != nil {
		t.Fatalf("failed snapshot left a base file: %q", data)
	}
}

func TestStoreMissingEverything(t *testing.T) {
	dir := t.TempDir()
	st, err := wal.OpenStore(filepath.Join(dir, "none.json"), filepath.Join(dir, "none.wal"), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if data, err := st.LoadSnapshot(); err != nil || data != nil {
		t.Fatalf("LoadSnapshot on fresh dir = %q, %v", data, err)
	}
	n, err := st.Replay(func(uint64, []byte) error { return nil })
	if err != nil || n != 0 {
		t.Fatalf("Replay on fresh dir: n=%d err=%v", n, err)
	}
}

func TestWriteFileAtomicDurable(t *testing.T) {
	d := faultinject.NewDisk(nil)
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := wal.WriteFileAtomic(d, path, []byte("v1"), 0o600); err != nil {
		t.Fatal(err)
	}
	// fsyncs: one on the temp file, one on the directory after rename.
	if _, syncs, renames := d.Counts(); syncs < 2 || renames != 1 {
		t.Fatalf("WriteFileAtomic: syncs=%d renames=%d, want >=2 and 1", syncs, renames)
	}
	if data, _ := os.ReadFile(path); string(data) != "v1" {
		t.Fatalf("content = %q", data)
	}
	// A failed temp-file write must leave the old content untouched.
	d.FailWrites(errors.New("EIO"))
	if err := wal.WriteFileAtomic(d, path, []byte("v2"), 0o600); err == nil {
		t.Fatal("WriteFileAtomic succeeded under write fault")
	}
	d.FailWrites(nil)
	if data, _ := os.ReadFile(path); string(data) != "v1" {
		t.Fatalf("old content clobbered: %q", data)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		p    wal.Policy
		d    time.Duration
		fail bool
	}{
		{"always", wal.SyncAlways, 0, false},
		{"", wal.SyncAlways, 0, false},
		{"none", wal.SyncNone, 0, false},
		{"250ms", wal.SyncInterval, 250 * time.Millisecond, false},
		{"bogus", 0, 0, true},
		{"-1s", 0, 0, true},
	}
	for _, c := range cases {
		p, d, err := wal.ParsePolicy(c.in)
		if c.fail {
			if err == nil {
				t.Errorf("ParsePolicy(%q): expected error", c.in)
			}
			continue
		}
		if err != nil || p != c.p || d != c.d {
			t.Errorf("ParsePolicy(%q) = %v,%v,%v want %v,%v", c.in, p, d, err, c.p, c.d)
		}
	}
}
