package wal

import (
	"errors"
	"os"
	"sync"
)

// Store pairs a snapshot file with an append-ahead log. The write path
// is: every mutation Appends a record; once the log grows past
// MaxBytes (or on a periodic timer owned by the caller) the caller
// writes a fresh snapshot, which atomically replaces the base file and
// truncates the log. Recovery is LoadSnapshot + Replay in that order.
//
// The snapshot path intentionally reuses the pre-WAL state file name,
// so a store opened over a state directory written by an older build
// recovers from the legacy full snapshot with an empty log.
type Store struct {
	fs       FS
	snapPath string
	log      *Log
	maxBytes int64

	mu sync.Mutex // serializes Snapshot against itself
}

// OpenStore opens the snapshot+log pair, truncating any torn log tail.
func OpenStore(snapPath, logPath string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	l, err := OpenLog(logPath, opts)
	if err != nil {
		return nil, err
	}
	return &Store{fs: opts.FS, snapPath: snapPath, log: l, maxBytes: opts.MaxBytes}, nil
}

// LoadSnapshot returns the snapshot file contents, or (nil, nil) if no
// snapshot exists yet.
func (s *Store) LoadSnapshot() ([]byte, error) {
	data, err := s.fs.ReadFile(s.snapPath)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	return data, err
}

// Replay delivers every valid log record in order. Call it after the
// snapshot has been restored: records are mutations layered on top of
// the base state, and they must also be idempotent, because a crash
// between the snapshot rename and the log truncation replays records
// the snapshot already contains.
func (s *Store) Replay(fn func(seq uint64, payload []byte) error) (int, error) {
	return s.log.Replay(fn)
}

// Append journals one mutation record.
func (s *Store) Append(payload []byte) error {
	_, err := s.log.Append(payload)
	return err
}

// AppendBatch journals several mutation records with one write and —
// under SyncAlways — one fsync for the whole batch. The batch is
// all-or-nothing: a failed write or fsync rolls back every record.
func (s *Store) AppendBatch(payloads [][]byte) error {
	_, err := s.log.AppendBatch(payloads)
	return err
}

// Sync flushes pending appends regardless of fsync policy.
func (s *Store) Sync() error { return s.log.Sync() }

// ShouldSnapshot reports whether the log has grown past the rotation
// threshold and the caller should write an incremental snapshot.
func (s *Store) ShouldSnapshot() bool { return s.log.Size() >= s.maxBytes }

// Dirty reports whether any records were appended since the last
// snapshot (i.e. whether a periodic checkpoint has anything to do).
func (s *Store) Dirty() bool { return s.log.Size() > 0 }

// Snapshot crash-durably replaces the base file with data, then
// truncates the log: the records it covered are now part of the base.
// If the snapshot write fails the log is left intact, so no acked
// mutation is lost — recovery just replays a longer log.
func (s *Store) Snapshot(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := WriteFileAtomic(s.fs, s.snapPath, data, 0o600); err != nil {
		mSnapshotErrors.Inc()
		return err
	}
	mSnapshots.Inc()
	return s.log.Reset()
}

// LogSize returns the current byte size of the mutation log.
func (s *Store) LogSize() int64 { return s.log.Size() }

// Close flushes and closes the log.
func (s *Store) Close() error { return s.log.Close() }

// CloseNoSync closes the log without flushing, simulating a crash.
func (s *Store) CloseNoSync() error { return s.log.CloseNoSync() }
