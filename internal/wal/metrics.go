package wal

import "rnl/internal/obs"

// WAL metrics are process-global (the obs registry dedupes by name),
// so they aggregate across every log in the process — the route-server
// mutation log and the reservation log both count here.
var (
	mAppends = obs.Default().Counter("rnl_routeserver_wal_appends_total",
		"Records appended to control-plane write-ahead logs.")
	mAppendErrors = obs.Default().Counter("rnl_routeserver_wal_append_errors_total",
		"Append failures (write or policy-always fsync errors): the mutation stayed in memory only.")
	mAppendBytes = obs.Default().Counter("rnl_routeserver_wal_appended_bytes_total",
		"Bytes appended to control-plane write-ahead logs, including framing.")
	mFsyncs = obs.Default().Counter("rnl_routeserver_wal_fsyncs_total",
		"fsync calls issued by write-ahead logs.")
	mFsyncErrors = obs.Default().Counter("rnl_routeserver_wal_fsync_errors_total",
		"fsync failures in write-ahead logs.")
	mSnapshots = obs.Default().Counter("rnl_routeserver_wal_snapshots_total",
		"Incremental snapshots written (each one truncates the log prefix it covers).")
	mSnapshotErrors = obs.Default().Counter("rnl_routeserver_wal_snapshot_errors_total",
		"Failed incremental snapshot writes; the log is kept intact when this happens.")
	mReplayed = obs.Default().Counter("rnl_routeserver_wal_replayed_records_total",
		"Log records replayed during recovery.")
	mTornBytes = obs.Default().Counter("rnl_routeserver_wal_torn_bytes_total",
		"Bytes of torn or corrupt log tail truncated at open.")
	mBatchAppends = obs.Default().Counter("rnl_routeserver_wal_batch_appends_total",
		"Multi-record batch appends: one write (and one policy fsync) covering several records.")
	mGroupCommits = obs.Default().Counter("rnl_routeserver_wal_group_commits_total",
		"Group-commit rounds: shared fsyncs covering one or more concurrent appenders.")
)
