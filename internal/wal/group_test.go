package wal_test

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"rnl/internal/faultinject"
	"rnl/internal/wal"
)

func TestAppendBatchSingleWriteAndFsync(t *testing.T) {
	disk := faultinject.NewDisk(nil)
	path := filepath.Join(t.TempDir(), "batch.wal")
	l := openLog(t, path, wal.Options{Policy: wal.SyncAlways, FS: disk})

	payloads := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc"), []byte("")}
	first, err := l.AppendBatch(payloads)
	if err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	if first != 1 {
		t.Fatalf("first seq = %d, want 1", first)
	}
	writes, syncs, _ := disk.Counts()
	if writes != 1 {
		t.Fatalf("batch used %d writes, want 1", writes)
	}
	if syncs != 1 {
		t.Fatalf("batch used %d fsyncs, want 1", syncs)
	}
	got := replayAll(t, l)
	if len(got) != len(payloads) {
		t.Fatalf("replayed %d records, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if string(got[i]) != string(payloads[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], payloads[i])
		}
	}

	if _, err := l.AppendBatch(nil); err != nil {
		t.Fatalf("empty AppendBatch: %v", err)
	}
	if n := len(replayAll(t, l)); n != len(payloads) {
		t.Fatalf("empty batch changed record count to %d", n)
	}
}

func TestAppendBatchFailedFsyncRollsBackWholeBatch(t *testing.T) {
	disk := faultinject.NewDisk(nil)
	path := filepath.Join(t.TempDir(), "batch.wal")
	l := openLog(t, path, wal.Options{Policy: wal.SyncAlways, FS: disk})

	if _, err := l.Append([]byte("durable")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	disk.FailFsync(errors.New("injected fsync failure"))
	if _, err := l.AppendBatch([][]byte{[]byte("x1"), []byte("x2"), []byte("x3")}); err == nil {
		t.Fatal("AppendBatch succeeded despite failed fsync")
	}
	disk.FailFsync(nil)

	// None of the batch records may survive: reopen as after a crash.
	l.CloseNoSync()
	l2 := openLog(t, path, wal.Options{Policy: wal.SyncAlways, FS: disk})
	got := replayAll(t, l2)
	if len(got) != 1 || string(got[0]) != "durable" {
		t.Fatalf("after rollback got %q, want just [durable]", got)
	}
	// Sequence numbers rewound: the next append reuses the batch's.
	seq, err := l2.Append([]byte("after"))
	if err != nil {
		t.Fatalf("Append after rollback: %v", err)
	}
	if seq != 2 {
		t.Fatalf("seq after rollback = %d, want 2", seq)
	}
}

func TestGroupCommitSharesFsyncs(t *testing.T) {
	disk := faultinject.NewDisk(nil)
	path := filepath.Join(t.TempDir(), "group.wal")
	l := openLog(t, path, wal.Options{Policy: wal.SyncAlways, FS: disk, GroupCommit: true})

	const workers = 8
	const perWorker = 25
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := l.Append(fmt.Appendf(nil, "w%d-%d", w, i)); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	got := replayAll(t, l)
	if len(got) != workers*perWorker {
		t.Fatalf("replayed %d records, want %d", len(got), workers*perWorker)
	}
	seen := make(map[string]bool, len(got))
	for _, p := range got {
		if seen[string(p)] {
			t.Fatalf("duplicate record %q", p)
		}
		seen[string(p)] = true
	}
	_, syncs, _ := disk.Counts()
	if syncs > workers*perWorker {
		t.Fatalf("group commit issued %d fsyncs for %d appends", syncs, workers*perWorker)
	}
	t.Logf("group commit: %d appends, %d fsyncs", workers*perWorker, syncs)
}

// TestGroupCommitFailedFsyncRollsBackBatch arms a persistent fsync
// failure under concurrent group-commit appenders: every append must
// report failure, and after a crash none of the failed records may
// replay — the PR 9 guarantee, batch-wide.
func TestGroupCommitFailedFsyncRollsBackBatch(t *testing.T) {
	disk := faultinject.NewDisk(nil)
	path := filepath.Join(t.TempDir(), "group.wal")
	l := openLog(t, path, wal.Options{Policy: wal.SyncAlways, FS: disk, GroupCommit: true})

	if _, err := l.Append([]byte("durable")); err != nil {
		t.Fatalf("Append: %v", err)
	}

	disk.FailFsync(errors.New("injected fsync failure"))
	const workers = 6
	var wg sync.WaitGroup
	failed := make([]bool, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, err := l.Append(fmt.Appendf(nil, "batch-%d", w))
			failed[w] = err != nil
		}(w)
	}
	wg.Wait()
	for w, f := range failed {
		if !f {
			t.Fatalf("worker %d append succeeded under failing fsync", w)
		}
	}
	disk.FailFsync(nil)

	l.CloseNoSync()
	l2 := openLog(t, path, wal.Options{Policy: wal.SyncAlways, FS: disk, GroupCommit: true})
	got := replayAll(t, l2)
	if len(got) != 1 || string(got[0]) != "durable" {
		t.Fatalf("after batch rollback got %q, want just [durable]", got)
	}
	// The log is not wedged: once the disk heals, appends resume with
	// rewound sequence numbers.
	seq, err := l2.Append([]byte("after"))
	if err != nil {
		t.Fatalf("Append after rollback: %v", err)
	}
	if seq != 2 {
		t.Fatalf("seq after rollback = %d, want 2", seq)
	}
}

// TestGroupCommitAckedRecordsSurviveFault mixes successful and failed
// fsync rounds: every append that reported success must replay after a
// crash, and every append that reported failure must not.
func TestGroupCommitAckedRecordsSurviveFault(t *testing.T) {
	disk := faultinject.NewDisk(nil)
	path := filepath.Join(t.TempDir(), "group.wal")
	l := openLog(t, path, wal.Options{Policy: wal.SyncAlways, FS: disk, GroupCommit: true})

	var mu sync.Mutex
	acked := make(map[string]bool)
	failed := make(map[string]bool)
	const workers = 4
	const perWorker = 30
	disk.FailEveryNthFsync(5, errors.New("injected intermittent fsync failure"))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				p := fmt.Sprintf("w%d-%d", w, i)
				_, err := l.Append([]byte(p))
				mu.Lock()
				if err != nil {
					failed[p] = true
				} else {
					acked[p] = true
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	disk.FailEveryNthFsync(0, nil)

	l.CloseNoSync()
	l2 := openLog(t, path, wal.Options{Policy: wal.SyncAlways, FS: disk, GroupCommit: true})
	replayed := make(map[string]bool)
	for _, p := range replayAll(t, l2) {
		replayed[string(p)] = true
	}
	for p := range acked {
		if !replayed[p] {
			t.Fatalf("acked record %q lost after crash", p)
		}
	}
	for p := range failed {
		if replayed[p] {
			t.Fatalf("failed record %q replayed after crash", p)
		}
	}
	if len(acked)+len(failed) != workers*perWorker {
		t.Fatalf("accounted for %d+%d records, want %d", len(acked), len(failed), workers*perWorker)
	}
	t.Logf("acked %d, failed %d", len(acked), len(failed))
}
