package wal_test

// Benchmarks for the two costs the append-ahead log changes:
//
//   - Per-mutation persistence: the pre-WAL code rewrote the entire
//     control-plane snapshot (atomic temp+rename+fsync) on every
//     mutation; the log appends one ~200 B record instead.
//   - Recovery: the pre-WAL code read one full snapshot; the log path
//     reads the snapshot and replays the journal tail. The benchmark
//     shows what replay length costs, i.e. what the snapshot-rotation
//     threshold is buying.
//
// Payload shapes mirror internal/routeserver: the "state" is a JSON
// document the size of a ~100-deployment control plane, the "record" a
// single journaled mutation.

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"rnl/internal/wal"
)

// benchState builds a snapshot-sized JSON blob (~40 KB, the shape of a
// 100-deployment, 200-router control plane).
func benchState() []byte {
	var buf bytes.Buffer
	buf.WriteString(`{"deployments":[`)
	for i := 0; i < 100; i++ {
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(&buf, `{"name":"lab%d","owner":"tenant%d","links":[{"a":{"router":%d,"port":%d},"b":{"router":%d,"port":%d}}],"routers":[%d,%d]}`,
			i, i%7, 2*i, 2*i, 2*i+1, 2*i+1, 2*i, 2*i+1)
	}
	buf.WriteString(`],"routers":[`)
	for i := 0; i < 200; i++ {
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(&buf, `{"id":%d,"name":"h%d","model":"Linux Server","pc":"pc-h%d","ports":[{"id":%d,"name":"eth0"}]}`,
			i+1, i, i, i+1)
	}
	buf.WriteString(`]}`)
	return buf.Bytes()
}

// benchRecord is one journaled mutation (~200 B), the unit the new
// per-mutation path writes.
func benchRecord(i int) []byte {
	return fmt.Appendf(nil, `{"t":"deploy","dep":{"name":"lab%d","owner":"tenant%d","links":[{"a":{"router":%d,"port":%d},"b":{"router":%d,"port":%d}}],"routers":[%d,%d]}}`,
		i, i%7, 2*i, 2*i, 2*i+1, 2*i+1, 2*i, 2*i+1)
}

// BenchmarkPerMutationPersistence compares what acknowledging one
// control-plane mutation costs on disk: the old full-snapshot rewrite
// vs one journal append under each fsync policy.
func BenchmarkPerMutationPersistence(b *testing.B) {
	state := benchState()
	rec := benchRecord(42)
	b.Run("full-rewrite", func(b *testing.B) {
		dir := b.TempDir()
		path := filepath.Join(dir, "state.json")
		b.SetBytes(int64(len(state)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := wal.WriteFileAtomic(nil, path, state, 0o644); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, tc := range []struct {
		name   string
		policy wal.Policy
	}{
		{"append-fsync-always", wal.SyncAlways},
		{"append-no-fsync", wal.SyncNone},
	} {
		b.Run(tc.name, func(b *testing.B) {
			dir := b.TempDir()
			log, err := wal.OpenLog(filepath.Join(dir, "bench.wal"), wal.Options{Policy: tc.policy})
			if err != nil {
				b.Fatal(err)
			}
			defer log.Close()
			b.SetBytes(int64(len(rec)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := log.Append(rec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecovery measures a cold open of the state store: the old
// shape (snapshot only — every mutation had already been folded in) vs
// snapshot + journal replay at several tail lengths.
func BenchmarkRecovery(b *testing.B) {
	state := benchState()
	for _, tail := range []int{0, 100, 1000, 10000} {
		name := "full-snapshot"
		if tail > 0 {
			name = fmt.Sprintf("snapshot+replay-%d", tail)
		}
		b.Run(name, func(b *testing.B) {
			dir := b.TempDir()
			snapPath := filepath.Join(dir, "state.json")
			logPath := filepath.Join(dir, "state.wal")
			st, err := wal.OpenStore(snapPath, logPath, wal.Options{Policy: wal.SyncNone})
			if err != nil {
				b.Fatal(err)
			}
			if err := st.Snapshot(state); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < tail; i++ {
				if err := st.Append(benchRecord(i)); err != nil {
					b.Fatal(err)
				}
			}
			st.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err := wal.OpenStore(snapPath, logPath, wal.Options{Policy: wal.SyncNone})
				if err != nil {
					b.Fatal(err)
				}
				snap, err := st.LoadSnapshot()
				if err != nil || len(snap) == 0 {
					b.Fatalf("snapshot: %d bytes, %v", len(snap), err)
				}
				replayed := 0
				if _, err := st.Replay(func(_ uint64, payload []byte) error {
					replayed += len(payload)
					return nil
				}); err != nil {
					b.Fatal(err)
				}
				st.CloseNoSync()
			}
		})
	}
}
