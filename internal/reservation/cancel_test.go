package reservation

import (
	"testing"
	"time"
)

// TestCancelDeletesEmptyRouterKey pins the byRouter map cleanup: before
// the fix, cancelling a router's last booking left an empty slice keyed
// under the router name forever, so a long-lived server leaked one map
// entry per router name ever booked and cancelled.
func TestCancelDeletesEmptyRouterKey(t *testing.T) {
	c, _ := newCal()
	res, err := c.Reserve("alice", []string{"r1", "r2"}, t0, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if err := c.Cancel(r.ID); err != nil {
			t.Fatal(err)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for router, list := range c.byRouter {
		t.Errorf("byRouter[%q] still present after cancelling all bookings: %v", router, list)
	}
}
