package reservation

import (
	"errors"
	"testing"
	"time"
)

// TestCancelDeletesEmptyRouterKey pins the byRouter map cleanup: before
// the fix, cancelling a router's last booking left an empty slice keyed
// under the router name forever, so a long-lived server leaked one map
// entry per router name ever booked and cancelled.
func TestCancelDeletesEmptyRouterKey(t *testing.T) {
	c, _ := newCal()
	res, err := c.Reserve("alice", []string{"r1", "r2"}, t0, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if err := c.Cancel(r.ID); err != nil {
			t.Fatal(err)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for router, list := range c.byRouter {
		t.Errorf("byRouter[%q] still present after cancelling all bookings: %v", router, list)
	}
}

// TestCancelOwned pins the atomic check-and-remove: a non-owner's
// cancel fails with ErrNotOwner and leaves the booking intact, the
// owner's succeeds, and an unknown ID is a plain not-found (not an
// ownership error).
func TestCancelOwned(t *testing.T) {
	c, _ := newCal()
	res, err := c.Reserve("alice", []string{"r1"}, t0, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	id := res[0].ID
	if err := c.CancelOwned(id, "bob"); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("non-owner cancel error = %v, want ErrNotOwner", err)
	}
	if _, ok := c.Get(id); !ok {
		t.Fatal("booking vanished after a denied cancel")
	}
	if err := c.CancelOwned(id, "alice"); err != nil {
		t.Fatalf("owner cancel: %v", err)
	}
	if _, ok := c.Get(id); ok {
		t.Fatal("booking survived the owner's cancel")
	}
	if err := c.CancelOwned(id, "alice"); err == nil || errors.Is(err, ErrNotOwner) {
		t.Fatalf("cancel of unknown id error = %v, want plain not-found", err)
	}
}
