// Package reservation implements RNL's shared-equipment calendar (paper
// §2.1): every router has a schedule, users reserve a set of routers for a
// time window before deploying, and the system can search for the next
// period where every router in a design is simultaneously free — the
// Outlook-style view the web UI renders.
package reservation

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"rnl/internal/sim"
	"rnl/internal/wal"
)

// Reservation is one booking of one router.
type Reservation struct {
	ID     uint64    `json:"id"`
	Router string    `json:"router"` // inventory name
	User   string    `json:"user"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
}

// overlaps reports whether two half-open intervals [Start, End) intersect.
func (r Reservation) overlaps(start, end time.Time) bool {
	return r.Start.Before(end) && start.Before(r.End)
}

// Calendar is the reservation book. It is safe for concurrent use.
type Calendar struct {
	clock sim.Clock

	mu     sync.Mutex
	nextID uint64
	// byRouter holds each router's bookings sorted by start time.
	byRouter map[string][]Reservation
	// byID and byUser index the same bookings (values are immutable
	// once created) so ID lookups, ownership checks and per-user quota
	// sums don't scan the whole book — HeldBy on a 1000-router design
	// is O(user's bookings + routers), not O(routers × bookings).
	byID   map[uint64]Reservation
	byUser map[string]map[uint64]Reservation
	// onMutate callbacks fire (outside the lock) after every successful
	// mutation — the durability hook.
	onMutate []func()
	// onRecord, when set (AttachStore), receives one journal Record per
	// mutation while the lock is still held, so records are appended in
	// mutation order — two racing mutations cannot journal swapped.
	onRecord func(Record)
	// quota, when set, returns a user's outstanding router-hours cap
	// (0 = unlimited) — the tenancy layer's reservation-hours quota,
	// injected as a plain function so this package stays free of
	// identity imports.
	quota func(user string) float64
}

// New creates an empty calendar on the given clock (sim.Real{} in
// production, sim.Fake in tests).
func New(clock sim.Clock) *Calendar {
	if clock == nil {
		clock = sim.Real{}
	}
	return &Calendar{
		clock:    clock,
		nextID:   1,
		byRouter: make(map[string][]Reservation),
		byID:     make(map[uint64]Reservation),
		byUser:   make(map[string]map[uint64]Reservation),
	}
}

// indexLocked and unindexLocked maintain byID/byUser alongside
// byRouter. Caller holds c.mu.
func (c *Calendar) indexLocked(r Reservation) {
	c.byID[r.ID] = r
	u := c.byUser[r.User]
	if u == nil {
		u = make(map[uint64]Reservation)
		c.byUser[r.User] = u
	}
	u[r.ID] = r
}

func (c *Calendar) unindexLocked(r Reservation) {
	delete(c.byID, r.ID)
	if u := c.byUser[r.User]; u != nil {
		delete(u, r.ID)
		if len(u) == 0 {
			delete(c.byUser, r.User)
		}
	}
}

// ErrConflict is returned when a requested window overlaps an existing
// booking.
type ErrConflict struct {
	Router string
	With   Reservation
}

func (e ErrConflict) Error() string {
	return fmt.Sprintf("reservation: router %q already reserved by %q from %s to %s",
		e.Router, e.With.User, e.With.Start.Format(time.RFC3339), e.With.End.Format(time.RFC3339))
}

// Reserve books every listed router for [start, end). It is atomic: if any
// router conflicts, nothing is booked.
func (c *Calendar) Reserve(user string, routers []string, start, end time.Time) ([]Reservation, error) {
	if !start.Before(end) {
		return nil, fmt.Errorf("reservation: start %v is not before end %v", start, end)
	}
	if len(routers) == 0 {
		return nil, fmt.Errorf("reservation: no routers requested")
	}
	seen := map[string]bool{}
	for _, r := range routers {
		if seen[r] {
			return nil, fmt.Errorf("reservation: router %q listed twice", r)
		}
		seen[r] = true
	}
	out, err := func() ([]Reservation, error) {
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.quota != nil {
			if cap := c.quota(user); cap > 0 {
				asking := end.Sub(start).Hours() * float64(len(routers))
				if held := c.outstandingHoursLocked(user); held+asking > cap {
					return nil, fmt.Errorf("reservation: user %q over reservation-hours quota: holds %.1fh, asked %.1fh, cap %.1fh",
						user, held, asking, cap)
				}
			}
		}
		for _, router := range routers {
			for _, existing := range c.byRouter[router] {
				if existing.overlaps(start, end) {
					return nil, ErrConflict{Router: router, With: existing}
				}
			}
		}
		out := make([]Reservation, 0, len(routers))
		for _, router := range routers {
			res := Reservation{ID: c.nextID, Router: router, User: user, Start: start, End: end}
			c.nextID++
			c.byRouter[router] = insertSorted(c.byRouter[router], res)
			c.indexLocked(res)
			out = append(out, res)
		}
		c.recordLocked(Record{Op: "reserve", Res: out})
		return out, nil
	}()
	if err == nil {
		c.mutated()
	}
	return out, err
}

func insertSorted(list []Reservation, r Reservation) []Reservation {
	i := sort.Search(len(list), func(i int) bool { return list[i].Start.After(r.Start) })
	list = append(list, Reservation{})
	copy(list[i+1:], list[i:])
	list[i] = r
	return list
}

// SetQuota installs the reservation-hours quota hook: fn returns a
// user's cap on total outstanding router-hours (0 = unlimited). Checked
// atomically inside Reserve — two racing reservations by one user
// cannot both squeeze under the cap.
func (c *Calendar) SetQuota(fn func(user string) float64) {
	c.mu.Lock()
	c.quota = fn
	c.mu.Unlock()
}

// outstandingHoursLocked sums router-hours of the user's not-yet-ended
// bookings — each booking counts its full window once it exists, so a
// quota cannot be gamed by booking far in the future.
func (c *Calendar) outstandingHoursLocked(user string) float64 {
	now := c.clock.Now()
	total := 0.0
	for _, r := range c.byUser[user] {
		if r.End.After(now) {
			total += r.End.Sub(r.Start).Hours()
		}
	}
	return total
}

// Get returns a booking by ID. Note it cannot substitute for
// CancelOwned's atomic check-and-remove: a Get-then-Cancel pair races
// with concurrent mutations.
func (c *Calendar) Get(id uint64) (Reservation, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.byID[id]
	return r, ok
}

// ErrNotOwner marks a CancelOwned attempt on a booking held by someone
// else; callers distinguish it (403) from an unknown ID (404).
var ErrNotOwner = errors.New("reservation: not the owner")

// Cancel removes a booking by ID.
func (c *Calendar) Cancel(id uint64) error {
	err := func() error {
		c.mu.Lock()
		defer c.mu.Unlock()
		if err := c.cancelLocked(id, nil); err != nil {
			return err
		}
		c.recordLocked(Record{Op: "cancel", ID: id})
		return nil
	}()
	if err == nil {
		c.mutated()
	}
	return err
}

// CancelOwned removes a booking by ID only when it is held by user. The
// ownership check and the removal happen under one hold of the calendar
// lock, so a concurrent cancel/re-reserve cannot slip between them (the
// Get-then-Cancel TOCTOU a caller-side check would have).
func (c *Calendar) CancelOwned(id uint64, user string) error {
	err := func() error {
		c.mu.Lock()
		defer c.mu.Unlock()
		if err := c.cancelLocked(id, &user); err != nil {
			return err
		}
		c.recordLocked(Record{Op: "cancel", ID: id})
		return nil
	}()
	if err == nil {
		c.mutated()
	}
	return err
}

// cancelLocked removes a booking, optionally verifying its holder
// first. Caller holds c.mu. The byID index makes this O(bookings on
// the one affected router), not a scan of the whole book.
func (c *Calendar) cancelLocked(id uint64, owner *string) error {
	r, ok := c.byID[id]
	if !ok {
		return fmt.Errorf("reservation: no reservation %d", id)
	}
	if owner != nil && r.User != *owner {
		return fmt.Errorf("reservation %d is not held by %q: %w", id, *owner, ErrNotOwner)
	}
	list := c.byRouter[r.Router]
	for i := range list {
		if list[i].ID != id {
			continue
		}
		if len(list) == 1 {
			// Last booking: drop the key too, or routers that were
			// ever cancelled leak map entries forever.
			delete(c.byRouter, r.Router)
		} else {
			c.byRouter[r.Router] = append(list[:i], list[i+1:]...)
		}
		break
	}
	c.unindexLocked(r)
	return nil
}

// Schedule returns a router's bookings from now on, sorted by start.
func (c *Calendar) Schedule(router string) []Reservation {
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Reservation
	for _, r := range c.byRouter[router] {
		if r.End.After(now) {
			out = append(out, r)
		}
	}
	return out
}

// HeldBy reports whether user currently holds every listed router — the
// check Deploy performs before wiring a design. One pass over the
// user's own bookings builds the currently-held set, so a 1000-router
// design costs O(user's bookings + routers), not a per-router scan.
func (c *Calendar) HeldBy(user string, routers []string) bool {
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	held := make(map[string]bool, len(c.byUser[user]))
	for _, r := range c.byUser[user] {
		if !r.Start.After(now) && r.End.After(now) {
			held[r.Router] = true
		}
	}
	for _, router := range routers {
		if !held[router] {
			return false
		}
	}
	return true
}

// NextFree finds the earliest start ≥ earliest when every listed router is
// simultaneously free for the given duration, scanning up to horizon. This
// is the "select the next free period for all routers" button.
func (c *Calendar) NextFree(routers []string, d time.Duration, earliest time.Time, horizon time.Duration) (time.Time, error) {
	if d <= 0 {
		return time.Time{}, fmt.Errorf("reservation: non-positive duration")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	limit := earliest.Add(horizon)
	t := earliest
	for !t.After(limit) {
		conflictEnd, ok := c.earliestConflictLocked(routers, t, t.Add(d))
		if !ok {
			return t, nil
		}
		// Jump past the conflicting booking and retry.
		t = conflictEnd
	}
	return time.Time{}, fmt.Errorf("reservation: no common free slot of %v within %v", d, horizon)
}

// earliestConflictLocked finds any booking overlapping [start, end) for the
// routers; it returns the conflicting booking's end.
func (c *Calendar) earliestConflictLocked(routers []string, start, end time.Time) (time.Time, bool) {
	var worst time.Time
	found := false
	for _, router := range routers {
		for _, r := range c.byRouter[router] {
			if r.overlaps(start, end) && r.End.After(worst) {
				worst = r.End
				found = true
			}
		}
	}
	return worst, found
}

// ExpireBefore drops bookings that ended before t, bounding memory in
// long-lived servers. It returns how many were removed.
func (c *Calendar) ExpireBefore(t time.Time) int {
	c.mu.Lock()
	n := 0
	for router, list := range c.byRouter {
		keep := list[:0]
		for _, r := range list {
			if r.End.After(t) {
				keep = append(keep, r)
			} else {
				c.unindexLocked(r)
				n++
			}
		}
		if len(keep) == 0 {
			delete(c.byRouter, router)
		} else {
			c.byRouter[router] = keep
		}
	}
	if n > 0 {
		c.recordLocked(Record{Op: "expire", Before: t})
	}
	c.mu.Unlock()
	if n > 0 {
		c.mutated()
	}
	return n
}

// OnMutate registers a callback invoked after every successful mutation
// (reserve, cancel, expiry), outside the calendar lock — the hook the
// route server's durable state uses to persist the calendar.
func (c *Calendar) OnMutate(fn func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onMutate = append(c.onMutate, fn)
}

func (c *Calendar) mutated() {
	c.mu.Lock()
	cbs := append([]func(){}, c.onMutate...)
	c.mu.Unlock()
	for _, fn := range cbs {
		fn()
	}
}

// Snapshot returns every booking (past ones included), sorted by ID —
// the persistence image.
func (c *Calendar) Snapshot() []Reservation {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.snapshotLocked()
}

func (c *Calendar) snapshotLocked() []Reservation {
	var out []Reservation
	for _, list := range c.byRouter {
		out = append(out, list...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Restore replaces the calendar's contents with a snapshot and resumes
// ID assignment past the highest restored ID. Malformed entries (no
// router, inverted window) are skipped. It does not fire OnMutate.
func (c *Calendar) Restore(list []Reservation) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.byRouter = make(map[string][]Reservation)
	c.byID = make(map[uint64]Reservation)
	c.byUser = make(map[string]map[uint64]Reservation)
	for _, r := range list {
		if r.Router == "" || !r.Start.Before(r.End) {
			continue
		}
		c.byRouter[r.Router] = insertSorted(c.byRouter[r.Router], r)
		c.indexLocked(r)
		if r.ID >= c.nextID {
			c.nextID = r.ID + 1
		}
	}
}

// SaveFile writes the calendar to path crash-durably: temp file +
// fsync + rename + directory fsync (wal.WriteFileAtomic), so a power
// loss right after the call never loses the whole snapshot.
func (c *Calendar) SaveFile(path string) error {
	data, err := json.MarshalIndent(c.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	return wal.WriteFileAtomic(nil, path, data, 0o644)
}

// LoadFile restores the calendar from a SaveFile snapshot; a missing
// file leaves the calendar empty and is not an error.
func (c *Calendar) LoadFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var list []Reservation
	if err := json.Unmarshal(data, &list); err != nil {
		return fmt.Errorf("reservation: corrupt calendar file %s: %w", path, err)
	}
	c.Restore(list)
	return nil
}
