package reservation

import (
	"encoding/json"
	"fmt"
	"time"

	"rnl/internal/wal"
)

// Record is one journaled calendar mutation. Like the route server's
// records, each is an absolute assertion — the booked reservations with
// their assigned IDs, a cancellation by ID, an expiry horizon — so
// replaying a prefix twice (or a full log over a newer snapshot)
// converges: re-inserting an existing ID is skipped, re-cancelling a
// missing ID is a no-op, and expiry is monotone.
type Record struct {
	Op     string        `json:"op"` // "reserve" | "cancel" | "expire"
	Res    []Reservation `json:"res,omitempty"`
	ID     uint64        `json:"id,omitempty"`
	Before time.Time     `json:"before,omitempty"`
}

// recordLocked hands a mutation record to the attached store. Caller
// holds c.mu — that is the ordering guarantee.
func (c *Calendar) recordLocked(rec Record) {
	if c.onRecord != nil {
		c.onRecord(rec)
	}
}

// applyRecord replays one journaled mutation. Caller holds c.mu.
func (c *Calendar) applyRecordLocked(rec Record) {
	switch rec.Op {
	case "reserve":
		for _, r := range rec.Res {
			if r.Router == "" || !r.Start.Before(r.End) {
				continue
			}
			if c.existsLocked(r.ID) {
				continue // already in the snapshot this log overlaps
			}
			c.byRouter[r.Router] = insertSorted(c.byRouter[r.Router], r)
			c.indexLocked(r)
			if r.ID >= c.nextID {
				c.nextID = r.ID + 1
			}
		}
	case "cancel":
		c.cancelLocked(rec.ID, nil) //nolint:errcheck // missing ID = already gone
	case "expire":
		for router, list := range c.byRouter {
			keep := list[:0]
			for _, r := range list {
				if r.End.After(rec.Before) {
					keep = append(keep, r)
				} else {
					c.unindexLocked(r)
				}
			}
			if len(keep) == 0 {
				delete(c.byRouter, router)
			} else {
				c.byRouter[router] = keep
			}
		}
	}
}

func (c *Calendar) existsLocked(id uint64) bool {
	_, ok := c.byID[id]
	return ok
}

// AttachStore binds the calendar to a snapshot+log store: it recovers
// (snapshot restore, then ordered log replay), then journals every
// subsequent mutation and rotates the log with incremental snapshots
// once it outgrows the store threshold. onErr (optional) receives
// journal failures — mutations stay acked from memory, matching the
// route server's warn-and-continue persistence posture.
func (c *Calendar) AttachStore(st *wal.Store, onErr func(error)) error {
	snap, err := st.LoadSnapshot()
	if err != nil {
		return fmt.Errorf("reservation: snapshot unreadable: %w", err)
	}
	if len(snap) > 0 {
		var list []Reservation
		if err := json.Unmarshal(snap, &list); err != nil {
			return fmt.Errorf("reservation: corrupt calendar snapshot: %w", err)
		}
		c.Restore(list)
	}
	c.mu.Lock()
	if _, err := st.Replay(func(_ uint64, payload []byte) error {
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return nil // checksummed but unparseable: skip, keep replaying
		}
		c.applyRecordLocked(rec)
		return nil
	}); err != nil {
		c.mu.Unlock()
		return fmt.Errorf("reservation: log replay: %w", err)
	}
	c.onRecord = func(rec Record) {
		data, merr := json.Marshal(rec)
		if merr == nil {
			merr = st.Append(data)
		}
		if merr != nil && onErr != nil {
			onErr(merr)
		}
	}
	c.mu.Unlock()
	// Rotation rides the OnMutate hook — fired outside the lock, which
	// Checkpoint then re-acquires for its whole capture+truncate span.
	c.OnMutate(func() {
		if st.ShouldSnapshot() {
			if err := c.Checkpoint(st); err != nil && onErr != nil {
				onErr(err)
			}
		}
	})
	return nil
}

// Checkpoint folds the log into an incremental snapshot — called on
// rotation and at graceful shutdown. It holds c.mu across the state
// capture AND the snapshot+truncate: the journal append path also runs
// under c.mu, so no mutation can land in the log after the captured
// state and then be truncated away while absent from the snapshot —
// the same guarantee the route server's walMu gives its checkpoint.
func (c *Calendar) Checkpoint(st *wal.Store) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	data, err := json.MarshalIndent(c.snapshotLocked(), "", "  ")
	if err != nil {
		return err
	}
	return st.Snapshot(data)
}
