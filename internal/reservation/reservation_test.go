package reservation

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"rnl/internal/sim"
)

var t0 = time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)

func newCal() (*Calendar, *sim.Fake) {
	clk := sim.NewFake(t0)
	return New(clk), clk
}

func TestReserveAndConflict(t *testing.T) {
	c, _ := newCal()
	_, err := c.Reserve("alice", []string{"r1", "r2"}, t0, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	// Overlapping booking of r2 must fail entirely (atomicity).
	_, err = c.Reserve("bob", []string{"r3", "r2"}, t0.Add(30*time.Minute), t0.Add(90*time.Minute))
	var conflict ErrConflict
	if !errors.As(err, &conflict) {
		t.Fatalf("want ErrConflict, got %v", err)
	}
	if conflict.Router != "r2" || conflict.With.User != "alice" {
		t.Errorf("conflict detail wrong: %+v", conflict)
	}
	// r3 must not have been partially booked.
	if sched := c.Schedule("r3"); len(sched) != 0 {
		t.Errorf("r3 schedule = %v, want empty", sched)
	}
	// Adjacent (non-overlapping) booking succeeds: [start, end) semantics.
	if _, err := c.Reserve("bob", []string{"r2"}, t0.Add(time.Hour), t0.Add(2*time.Hour)); err != nil {
		t.Fatal(err)
	}
}

func TestReserveValidation(t *testing.T) {
	c, _ := newCal()
	if _, err := c.Reserve("u", []string{"r"}, t0.Add(time.Hour), t0); err == nil {
		t.Error("end before start should fail")
	}
	if _, err := c.Reserve("u", nil, t0, t0.Add(time.Hour)); err == nil {
		t.Error("empty router list should fail")
	}
	if _, err := c.Reserve("u", []string{"r", "r"}, t0, t0.Add(time.Hour)); err == nil {
		t.Error("duplicate router should fail")
	}
}

func TestCancelFreesSlot(t *testing.T) {
	c, _ := newCal()
	res, err := c.Reserve("alice", []string{"r1"}, t0, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel(res[0].ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reserve("bob", []string{"r1"}, t0, t0.Add(time.Hour)); err != nil {
		t.Fatalf("slot should be free after cancel: %v", err)
	}
	if err := c.Cancel(9999); err == nil {
		t.Error("cancelling unknown ID should fail")
	}
}

func TestHeldBy(t *testing.T) {
	c, clk := newCal()
	c.Reserve("alice", []string{"r1", "r2"}, t0, t0.Add(time.Hour))
	if !c.HeldBy("alice", []string{"r1", "r2"}) {
		t.Error("alice should hold both routers now")
	}
	if c.HeldBy("bob", []string{"r1"}) {
		t.Error("bob holds nothing")
	}
	if c.HeldBy("alice", []string{"r1", "r3"}) {
		t.Error("r3 is not reserved")
	}
	// After expiry the hold lapses.
	clk.Advance(2 * time.Hour)
	if c.HeldBy("alice", []string{"r1"}) {
		t.Error("reservation expired; hold should lapse")
	}
}

func TestNextFreeFindsGap(t *testing.T) {
	c, _ := newCal()
	// r1 busy 9-10 and 11-12; r2 busy 10-10:30.
	c.Reserve("a", []string{"r1"}, t0, t0.Add(time.Hour))
	c.Reserve("b", []string{"r1"}, t0.Add(2*time.Hour), t0.Add(3*time.Hour))
	c.Reserve("c", []string{"r2"}, t0.Add(time.Hour), t0.Add(90*time.Minute))

	// First 30-minute window where both are free: 10:30.
	got, err := c.NextFree([]string{"r1", "r2"}, 30*time.Minute, t0, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	want := t0.Add(90 * time.Minute)
	if !got.Equal(want) {
		t.Errorf("NextFree = %v, want %v", got, want)
	}
	// A 2-hour window must skip past the 11-12 booking: 12:00.
	got, err = c.NextFree([]string{"r1", "r2"}, 2*time.Hour, t0, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(t0.Add(3 * time.Hour)) {
		t.Errorf("NextFree(2h) = %v, want %v", got, t0.Add(3*time.Hour))
	}
}

func TestNextFreeImmediateWhenEmpty(t *testing.T) {
	c, _ := newCal()
	got, err := c.NextFree([]string{"r9"}, time.Hour, t0, time.Hour)
	if err != nil || !got.Equal(t0) {
		t.Errorf("empty calendar NextFree = %v, %v", got, err)
	}
}

func TestNextFreeHorizonExceeded(t *testing.T) {
	c, _ := newCal()
	// Solid booking for 10 hours.
	c.Reserve("a", []string{"r1"}, t0, t0.Add(10*time.Hour))
	if _, err := c.NextFree([]string{"r1"}, time.Hour, t0, 5*time.Hour); err == nil {
		t.Error("NextFree should fail within a fully booked horizon")
	}
	if _, err := c.NextFree([]string{"r1"}, 0, t0, time.Hour); err == nil {
		t.Error("zero duration should fail")
	}
}

func TestScheduleHidesPast(t *testing.T) {
	c, clk := newCal()
	c.Reserve("a", []string{"r1"}, t0, t0.Add(time.Hour))
	c.Reserve("b", []string{"r1"}, t0.Add(2*time.Hour), t0.Add(3*time.Hour))
	if got := len(c.Schedule("r1")); got != 2 {
		t.Fatalf("schedule has %d entries, want 2", got)
	}
	clk.Advance(90 * time.Minute)
	sched := c.Schedule("r1")
	if len(sched) != 1 || sched[0].User != "b" {
		t.Errorf("after expiry schedule = %v", sched)
	}
}

func TestExpireBefore(t *testing.T) {
	c, _ := newCal()
	c.Reserve("a", []string{"r1"}, t0, t0.Add(time.Hour))
	c.Reserve("b", []string{"r1"}, t0.Add(2*time.Hour), t0.Add(3*time.Hour))
	if n := c.ExpireBefore(t0.Add(90 * time.Minute)); n != 1 {
		t.Errorf("expired %d, want 1", n)
	}
	if n := c.ExpireBefore(t0.Add(10 * time.Hour)); n != 1 {
		t.Errorf("second expire removed %d, want 1", n)
	}
}

func TestReservationsAreSortedPerRouter(t *testing.T) {
	c, _ := newCal()
	c.Reserve("a", []string{"r1"}, t0.Add(4*time.Hour), t0.Add(5*time.Hour))
	c.Reserve("b", []string{"r1"}, t0, t0.Add(time.Hour))
	c.Reserve("c", []string{"r1"}, t0.Add(2*time.Hour), t0.Add(3*time.Hour))
	sched := c.Schedule("r1")
	if len(sched) != 3 {
		t.Fatalf("len = %d", len(sched))
	}
	for i := 1; i < len(sched); i++ {
		if sched[i].Start.Before(sched[i-1].Start) {
			t.Errorf("schedule not sorted: %v", sched)
		}
	}
}

func TestQuickNoOverlappingBookings(t *testing.T) {
	// Property: whatever sequence of reservation attempts happens, the
	// calendar never holds two overlapping bookings for one router.
	type attempt struct {
		User     uint8
		Router   uint8
		StartMin uint8
		LenMin   uint8
	}
	f := func(attempts []attempt) bool {
		c, _ := newCal()
		for _, a := range attempts {
			start := t0.Add(time.Duration(a.StartMin) * time.Minute)
			end := start.Add(time.Duration(a.LenMin%90+1) * time.Minute)
			router := fmt.Sprintf("r%d", a.Router%5)
			c.Reserve(fmt.Sprintf("u%d", a.User%3), []string{router}, start, end)
		}
		// Verify the invariant per router.
		for i := 0; i < 5; i++ {
			sched := c.Schedule(fmt.Sprintf("r%d", i))
			for j := 1; j < len(sched); j++ {
				if sched[j].Start.Before(sched[j-1].End) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
