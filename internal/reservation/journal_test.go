package reservation

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"rnl/internal/sim"
	"rnl/internal/wal"
)

func openCalStore(t *testing.T, dir string, maxBytes int64) *wal.Store {
	t.Helper()
	st, err := wal.OpenStore(
		filepath.Join(dir, "reservations.json"),
		filepath.Join(dir, "reservations.wal"),
		wal.Options{MaxBytes: maxBytes},
	)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestCalendarJournalRoundTrip drives reserve / cancel / expire through
// an attached store, "crashes" (no checkpoint, log only), and recovers
// a second calendar purely by replay: the schedules must match exactly.
func TestCalendarJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	t0 := time.Unix(10_000, 0).UTC()
	clk := sim.NewFake(t0)

	c1 := New(clk)
	st1 := openCalStore(t, dir, 0)
	if err := c1.AttachStore(st1, func(err error) { t.Errorf("journal error: %v", err) }); err != nil {
		t.Fatal(err)
	}
	kept, err := c1.Reserve("alice", []string{"r1", "r2"}, t0, t0.Add(2*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	doomed, err := c1.Reserve("bob", []string{"r3"}, t0, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Cancel(doomed[0].ID); err != nil {
		t.Fatal(err)
	}
	// A short stale booking, then expire it.
	if _, err := c1.Reserve("carol", []string{"r4"}, t0.Add(-2*time.Hour), t0.Add(-time.Hour)); err != nil {
		t.Fatal(err)
	}
	clk.Advance(30 * time.Minute)
	if n := c1.ExpireBefore(clk.Now()); n != 1 {
		t.Fatalf("expired %d reservations, want 1", n)
	}
	want := c1.Snapshot()
	st1.CloseNoSync() // crash: snapshot file never written

	c2 := New(clk)
	st2 := openCalStore(t, dir, 0)
	defer st2.Close()
	if err := c2.AttachStore(st2, nil); err != nil {
		t.Fatal(err)
	}
	if got := c2.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed calendar diverged:\ngot  %+v\nwant %+v", got, want)
	}
	// The replayed calendar allocates fresh IDs past every replayed one,
	// and still sees the surviving bookings as conflicts.
	if _, err := c2.Reserve("dave", []string{"r1"}, t0.Add(time.Hour), t0.Add(3*time.Hour)); err == nil {
		t.Fatal("conflicting reservation accepted after replay")
	}
	more, err := c2.Reserve("dave", []string{"r5"}, t0.Add(time.Hour), t0.Add(2*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if more[0].ID <= kept[1].ID {
		t.Fatalf("post-replay ID %d not past replayed IDs (max %d)", more[0].ID, kept[1].ID)
	}
}

// TestCalendarLogRotation books enough reservations to push the log
// past a tiny rotation threshold: the store must fold the log into a
// snapshot, and recovery afterwards restores from snapshot + short log.
func TestCalendarLogRotation(t *testing.T) {
	dir := t.TempDir()
	t0 := time.Unix(50_000, 0).UTC()
	clk := sim.NewFake(t0)

	c1 := New(clk)
	st1 := openCalStore(t, dir, 512)
	if err := c1.AttachStore(st1, func(err error) { t.Errorf("journal error: %v", err) }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		start := t0.Add(time.Duration(i) * time.Hour)
		if _, err := c1.Reserve("alice", []string{"rot-r"}, start, start.Add(30*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := os.ReadFile(filepath.Join(dir, "reservations.json"))
	if err != nil || len(snap) == 0 {
		t.Fatalf("rotation never wrote a snapshot: %v", err)
	}
	if size := st1.LogSize(); size > 512 {
		t.Fatalf("log size %d after rotation, want <= threshold", size)
	}
	want := c1.Snapshot()
	if len(want) != 20 {
		t.Fatalf("calendar holds %d reservations, want 20", len(want))
	}
	st1.CloseNoSync() // crash after rotation

	c2 := New(clk)
	st2 := openCalStore(t, dir, 512)
	defer st2.Close()
	if err := c2.AttachStore(st2, nil); err != nil {
		t.Fatal(err)
	}
	if got := c2.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-rotation recovery diverged:\ngot  %d entries\nwant %d entries", len(got), len(want))
	}
}
