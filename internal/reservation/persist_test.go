package reservation

import (
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"rnl/internal/sim"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	t0 := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	clk := sim.NewFake(t0)
	c := New(clk)
	if _, err := c.Reserve("alice", []string{"r1", "r2"}, t0, t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reserve("bob", []string{"r1"}, t0.Add(2*time.Hour), t0.Add(3*time.Hour)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cal.json")
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	c2 := New(sim.NewFake(t0))
	if err := c2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if got, want := c2.Snapshot(), c.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed the calendar:\n got %+v\nwant %+v", got, want)
	}
	if !c2.HeldBy("alice", []string{"r1", "r2"}) {
		t.Fatal("restored calendar lost alice's booking")
	}
	// ID assignment resumes past the restored bookings: a new reservation
	// must not collide with a restored ID.
	res, err := c2.Reserve("carol", []string{"r3"}, t0, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	for _, old := range c.Snapshot() {
		if res[0].ID == old.ID {
			t.Fatalf("restored calendar re-issued ID %d", old.ID)
		}
	}
}

func TestLoadFileMissingAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	c := New(sim.NewFake(time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)))
	if err := c.LoadFile(filepath.Join(dir, "nope.json")); err != nil {
		t.Fatalf("missing file should be fine, got %v", err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.LoadFile(bad); err == nil {
		t.Fatal("corrupt file loaded without error")
	}
}

func TestRestoreSkipsMalformed(t *testing.T) {
	t0 := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	c := New(sim.NewFake(t0))
	c.Restore([]Reservation{
		{ID: 7, Router: "r1", User: "alice", Start: t0, End: t0.Add(time.Hour)},
		{ID: 8, Router: "", User: "ghost", Start: t0, End: t0.Add(time.Hour)},   // no router
		{ID: 9, Router: "r2", User: "ghost", Start: t0.Add(time.Hour), End: t0}, // inverted window
	})
	if got := c.Snapshot(); len(got) != 1 || got[0].ID != 7 {
		t.Fatalf("restore kept the wrong bookings: %+v", got)
	}
	// nextID advances past the highest seen ID even for skipped entries is
	// not required — but it must at least clear every kept one.
	res, err := c.Reserve("bob", []string{"r9"}, t0, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID <= 7 {
		t.Fatalf("new ID %d collides with restored ID space", res[0].ID)
	}
}

func TestOnMutateFires(t *testing.T) {
	t0 := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	c := New(sim.NewFake(t0))
	var fires atomic.Int32
	c.OnMutate(func() { fires.Add(1) })

	res, err := c.Reserve("alice", []string{"r1"}, t0, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if got := fires.Load(); got != 1 {
		t.Fatalf("fires after reserve = %d, want 1", got)
	}
	// Failed mutations stay silent.
	if _, err := c.Reserve("bob", []string{"r1"}, t0, t0.Add(time.Hour)); err == nil {
		t.Fatal("conflicting reserve succeeded")
	}
	if got := fires.Load(); got != 1 {
		t.Fatalf("fires after failed reserve = %d, want 1", got)
	}
	if err := c.Cancel(res[0].ID); err != nil {
		t.Fatal(err)
	}
	if got := fires.Load(); got != 2 {
		t.Fatalf("fires after cancel = %d, want 2", got)
	}
	if n := c.ExpireBefore(t0.Add(10 * time.Hour)); n != 0 {
		t.Fatalf("expired %d, want 0", n)
	}
	if got := fires.Load(); got != 2 {
		t.Fatalf("no-op expiry fired the mutation hook (fires=%d)", got)
	}
	// The callback must be able to read the calendar without deadlocking —
	// the persistence hook snapshots on every mutation.
	c.OnMutate(func() { _ = c.Snapshot() })
	if _, err := c.Reserve("alice", []string{"r2"}, t0, t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
}
