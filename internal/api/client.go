package api

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"time"

	"rnl/internal/topology"
)

// Client is the Go binding to the web-services API — what rnlctl, the
// autotest runner and the examples use to drive RNL programmatically.
type Client struct {
	base  string
	token string
	http  *http.Client
}

// NewClient targets an RNL web server at base, e.g. "http://127.0.0.1:8080".
func NewClient(base, token string) *Client {
	return &Client{
		base:  base,
		token: token,
		http:  &http.Client{Timeout: 30 * time.Second},
	}
}

// do performs one request; out may be nil for status-only calls.
func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("api: encoding request: %w", err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.token != "" {
		req.Header.Set("X-RNL-Token", c.token)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("api: %s %s: %s (HTTP %d)", method, path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("api: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("api: decoding response: %w", err)
		}
	}
	return nil
}

// Inventory lists registered routers.
func (c *Client) Inventory() ([]RouterInfo, error) {
	var out []RouterInfo
	err := c.do("GET", "/api/inventory", nil, &out)
	return out, err
}

// Stats returns the flat JSON counter snapshot: route server counters
// plus every rnl_* metric from the observability registry.
func (c *Client) Stats() (map[string]uint64, error) {
	var out map[string]uint64
	err := c.do("GET", "/api/stats", nil, &out)
	return out, err
}

// Designs lists saved design names.
func (c *Client) Designs() ([]string, error) {
	var out []string
	err := c.do("GET", "/api/designs", nil, &out)
	return out, err
}

// GetDesign loads a saved design.
func (c *Client) GetDesign(name string) (*Design, error) {
	var out topology.Design
	err := c.do("GET", "/api/designs/"+url.PathEscape(name), nil, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// SaveDesign stores a design.
func (c *Client) SaveDesign(d *Design) error {
	return c.do("PUT", "/api/designs/"+url.PathEscape(d.Name), d, nil)
}

// DeleteDesign removes a saved design.
func (c *Client) DeleteDesign(name string) error {
	return c.do("DELETE", "/api/designs/"+url.PathEscape(name), nil, nil)
}

// SaveConfigs dumps router configurations into a saved design via their
// consoles and returns the updated design.
func (c *Client) SaveConfigs(name string) (*Design, error) {
	var out topology.Design
	err := c.do("POST", "/api/designs/"+url.PathEscape(name)+"/save-configs", struct{}{}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Reserve books routers; the returned reservations carry IDs for Cancel.
func (c *Client) Reserve(req ReserveRequest) ([]ReservationInfo, error) {
	var out []ReservationInfo
	err := c.do("POST", "/api/reservations", req, &out)
	return out, err
}

// CancelReservation releases one booking.
func (c *Client) CancelReservation(id uint64) error {
	return c.do("DELETE", fmt.Sprintf("/api/reservations/%d", id), nil, nil)
}

// Schedule returns a router's upcoming bookings.
func (c *Client) Schedule(router string) ([]ReservationInfo, error) {
	var out []ReservationInfo
	err := c.do("GET", "/api/schedule/"+url.PathEscape(router), nil, &out)
	return out, err
}

// NextFree finds the next common free slot for a set of routers.
func (c *Client) NextFree(req NextFreeRequest) (time.Time, error) {
	var out NextFreeResponse
	err := c.do("POST", "/api/next-free", req, &out)
	return out.Start, err
}

// Deploy wires up a saved design.
func (c *Client) Deploy(req DeployRequest) error {
	return c.do("POST", "/api/deployments", req, nil)
}

// Teardown removes a deployment.
func (c *Client) Teardown(name string) error {
	return c.do("DELETE", "/api/deployments/"+url.PathEscape(name), nil, nil)
}

// Deployments lists active labs.
func (c *Client) Deployments() ([]DeploymentInfo, error) {
	var out []DeploymentInfo
	err := c.do("GET", "/api/deployments", nil, &out)
	return out, err
}

// Generate injects frames toward a router port.
func (c *Client) Generate(req GenerateRequest) error {
	return c.do("POST", "/api/generate", req, nil)
}

// OpenCapture starts a software tap and returns its handle.
func (c *Client) OpenCapture(req CaptureRequest) (uint64, error) {
	var out CaptureResponse
	err := c.do("POST", "/api/captures", req, &out)
	return out.ID, err
}

// ReadCapture drains up to max frames, waiting up to wait for the first.
func (c *Client) ReadCapture(id uint64, max int, wait time.Duration) ([]CapturedFrame, error) {
	var out []CapturedFrame
	path := fmt.Sprintf("/api/captures/%d?max=%d&wait_ms=%d", id, max, wait.Milliseconds())
	err := c.do("GET", path, nil, &out)
	return out, err
}

// CloseCapture stops a tap.
func (c *Client) CloseCapture(id uint64) error {
	return c.do("DELETE", fmt.Sprintf("/api/captures/%d", id), nil, nil)
}

// DownloadPcap drains a capture into classic pcap bytes.
func (c *Client) DownloadPcap(id uint64, max int, wait time.Duration) ([]byte, error) {
	path := fmt.Sprintf("%s/api/captures/%d/pcap?max=%d&wait_ms=%d", c.base, id, max, wait.Milliseconds())
	req, err := http.NewRequest("GET", path, nil)
	if err != nil {
		return nil, err
	}
	if c.token != "" {
		req.Header.Set("X-RNL-Token", c.token)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return nil, fmt.Errorf("api: pcap download: HTTP %d", resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// StartStream begins rate-controlled traffic generation.
func (c *Client) StartStream(req StreamRequest) (uint64, error) {
	var out StreamStatus
	err := c.do("POST", "/api/streams", req, &out)
	return out.ID, err
}

// StreamStatus reports a stream's progress.
func (c *Client) StreamStatus(id uint64) (StreamStatus, error) {
	var out StreamStatus
	err := c.do("GET", fmt.Sprintf("/api/streams/%d", id), nil, &out)
	return out, err
}

// StopStream halts a stream and returns its final counters.
func (c *Client) StopStream(id uint64) (StreamStatus, error) {
	var out StreamStatus
	err := c.do("DELETE", fmt.Sprintf("/api/streams/%d", id), nil, &out)
	return out, err
}

// AttachConsole opens an interactive raw console stream to a router: the
// returned connection carries keystrokes in and terminal output back (the
// transport behind the browser VT100 window). The caller must Close it.
func (c *Client) AttachConsole(router string) (net.Conn, error) {
	u, err := url.Parse(c.base)
	if err != nil {
		return nil, err
	}
	conn, err := net.Dial("tcp", u.Host)
	if err != nil {
		return nil, err
	}
	path := "/api/console/raw/" + url.PathEscape(router)
	fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: %s\r\nX-RNL-Token: %s\r\nConnection: Upgrade\r\nUpgrade: rnl-console\r\n\r\n",
		path, u.Host, c.token)
	br := bufio.NewReader(conn)
	status, err := br.ReadString('\n')
	if err != nil {
		conn.Close()
		return nil, err
	}
	if !strings.Contains(status, "101") {
		conn.Close()
		return nil, fmt.Errorf("api: console attach refused: %s", strings.TrimSpace(status))
	}
	// Skip headers.
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			conn.Close()
			return nil, err
		}
		if line == "\r\n" || line == "\n" {
			break
		}
	}
	if n := br.Buffered(); n > 0 {
		buffered := make([]byte, n)
		io.ReadFull(br, buffered)
		return &bufferedConn{Conn: conn, pre: buffered}, nil
	}
	return conn, nil
}

// bufferedConn replays bytes the handshake reader over-read.
type bufferedConn struct {
	net.Conn
	pre []byte
}

func (b *bufferedConn) Read(p []byte) (int, error) {
	if len(b.pre) > 0 {
		n := copy(p, b.pre)
		b.pre = b.pre[n:]
		return n, nil
	}
	return b.Conn.Read(p)
}

// FlashFirmware loads a firmware version onto a router via its console.
func (c *Client) FlashFirmware(router, version string) error {
	return c.do("POST", "/api/routers/"+url.PathEscape(router)+"/firmware", FlashRequest{Version: version}, nil)
}

// ConsoleExec runs commands on a router's console and returns per-command
// output.
func (c *Client) ConsoleExec(req ConsoleExecRequest) ([]string, error) {
	var out ConsoleExecResponse
	err := c.do("POST", "/api/console/exec", req, &out)
	return out.Outputs, err
}

// ReservationInfo mirrors reservation.Reservation on the wire.
type ReservationInfo struct {
	ID     uint64    `json:"id"`
	Router string    `json:"router"`
	User   string    `json:"user"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
}
