package api

import (
	"bufio"
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"rnl/internal/admission"
	"rnl/internal/identity"
	"rnl/internal/topology"
)

// Client is the Go binding to the web-services API — what rnlctl, the
// autotest runner and the examples use to drive RNL programmatically.
//
// Every call runs under a per-request context (the configured timeout
// plus any long-poll wait, so captures and console execs are never cut
// off mid-flight by an unrelated global deadline). Overload responses
// (429/503) are retried with jittered exponential backoff honouring the
// server's Retry-After hint; mutating calls carry idempotency keys, so a
// retried deploy is applied at most once server-side.
type Client struct {
	base      string
	token     string
	http      *http.Client
	ctx       context.Context
	timeout   time.Duration // per-call budget; 0 disables
	retries   int           // retry attempts after the first try
	retryBase time.Duration
	retryMax  time.Duration
}

// ClientOption customizes NewClient.
type ClientOption func(*Client)

// WithTimeout sets the per-call time budget (default 30s; 0 disables).
// Long-poll calls add their wait on top, so a 2-minute capture read is
// not aborted by the 30-second default.
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.timeout = d }
}

// WithHTTPClient substitutes the transport (proxies, test instrumentation).
// Leave its Timeout zero: per-call contexts handle deadlines.
func WithHTTPClient(h *http.Client) ClientOption {
	return func(c *Client) { c.http = h }
}

// WithRetries sets how many times an overloaded (429/503) or, for
// idempotent calls, network-failed request is retried (default 3;
// 0 disables).
func WithRetries(n int) ClientOption {
	return func(c *Client) { c.retries = n }
}

// WithRetryBackoff tunes the jittered exponential backoff between
// retries (defaults 200ms base, 5s cap).
func WithRetryBackoff(base, max time.Duration) ClientOption {
	return func(c *Client) {
		if base > 0 {
			c.retryBase = base
		}
		if max > 0 {
			c.retryMax = max
		}
	}
}

// NewClient targets an RNL web server at base, e.g. "http://127.0.0.1:8080".
func NewClient(base, token string, opts ...ClientOption) *Client {
	c := &Client{
		base:      base,
		token:     token,
		http:      &http.Client{},
		timeout:   30 * time.Second,
		retries:   3,
		retryBase: 200 * time.Millisecond,
		retryMax:  5 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// WithContext returns a copy of the client whose calls are bounded by
// (and cancellable through) ctx in addition to the per-call timeout.
func (c *Client) WithContext(ctx context.Context) *Client {
	cc := *c
	cc.ctx = ctx
	return &cc
}

// callOpts describes one logical API call, possibly spanning retries.
type callOpts struct {
	method    string
	path      string
	in        any
	out       any           // JSON-decoded response, may be nil
	rawOut    *[]byte       // raw response body (pcap download)
	extraWait time.Duration // server-side long-poll budget on top of timeout
	idemKey   string        // idempotency key; same key on every retry
}

// call runs one logical request with retries, scrubbing the credential
// from whatever error surfaces — transports echo what they were sent,
// and API errors end up in logs and terminal output.
func (c *Client) call(o callOpts) error {
	return identity.RedactError(c.callRetrying(o), c.token)
}

// callRetrying runs one logical request with retries. 429/503 responses
// are always retriable (the server told us to come back); transport
// errors are retried only when the call is idempotent — non-POST, or
// POST with an idempotency key — because a connection that died
// mid-request may have mutated state server-side.
func (c *Client) callRetrying(o callOpts) error {
	var body []byte
	if o.in != nil {
		b, err := json.Marshal(o.in)
		if err != nil {
			return fmt.Errorf("api: encoding request: %w", err)
		}
		body = b
	}
	baseCtx := c.ctx
	if baseCtx == nil {
		baseCtx = context.Background()
	}
	for attempt := 0; ; attempt++ {
		ctx, cancel := baseCtx, context.CancelFunc(func() {})
		if c.timeout > 0 {
			ctx, cancel = context.WithTimeout(baseCtx, c.timeout+o.extraWait)
		}
		status, hint, err := c.once(ctx, o, body)
		cancel()
		if err == nil {
			return nil
		}
		overloaded := status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
		idempotent := o.method != http.MethodPost || o.idemKey != ""
		netFailed := status == 0 && baseCtx.Err() == nil
		if attempt >= c.retries || !(overloaded || (netFailed && idempotent)) {
			return err
		}
		wait := admission.Backoff(attempt, c.retryBase, c.retryMax)
		if hint > wait {
			wait = hint // the server's Retry-After outranks our guess
		}
		timer := time.NewTimer(wait)
		select {
		case <-timer.C:
		case <-baseCtx.Done():
			timer.Stop()
			return err
		}
	}
}

// once performs a single HTTP attempt. status is 0 on transport errors;
// hint carries the server's Retry-After, when present.
func (c *Client) once(ctx context.Context, o callOpts, body []byte) (status int, hint time.Duration, err error) {
	var rd io.Reader
	if o.in != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, o.method, c.base+o.path, rd)
	if err != nil {
		return 0, 0, err
	}
	if o.in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.token != "" {
		req.Header.Set("X-RNL-Token", c.token)
	}
	if o.idemKey != "" {
		req.Header.Set("X-RNL-Idempotency-Key", o.idemKey)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		hint = time.Duration(secs) * time.Second
	}
	if resp.StatusCode >= 400 {
		var e ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return resp.StatusCode, hint, fmt.Errorf("api: %s %s: %s (HTTP %d)", o.method, o.path, e.Error, resp.StatusCode)
		}
		return resp.StatusCode, hint, fmt.Errorf("api: %s %s: HTTP %d", o.method, o.path, resp.StatusCode)
	}
	if o.rawOut != nil {
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return resp.StatusCode, hint, fmt.Errorf("api: reading response: %w", err)
		}
		*o.rawOut = b
		return resp.StatusCode, hint, nil
	}
	if o.out != nil {
		if err := json.NewDecoder(resp.Body).Decode(o.out); err != nil {
			return resp.StatusCode, hint, fmt.Errorf("api: decoding response: %w", err)
		}
	}
	return resp.StatusCode, hint, nil
}

// newIdemKey mints a fresh idempotency key for one logical mutating
// call; retries of that call reuse it, so the server executes it once.
func newIdemKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "" // no key: the call simply loses retry-on-network-error
	}
	return hex.EncodeToString(b[:])
}

// do performs one request; out may be nil for status-only calls.
func (c *Client) do(method, path string, in, out any) error {
	return c.call(callOpts{method: method, path: path, in: in, out: out})
}

// WhoAmI echoes the principal the server resolved this client's
// credential to — the "did my login work, and as whom" probe.
func (c *Client) WhoAmI() (WhoAmIResponse, error) {
	var out WhoAmIResponse
	err := c.do("GET", "/api/whoami", nil, &out)
	return out, err
}

// RevokeTokensBefore sets (or, with a zero request, clears) the
// token-revocation cutoff. Admin-only.
func (c *Client) RevokeTokensBefore(req RevokeBeforeRequest) (RevokeBeforeResponse, error) {
	var out RevokeBeforeResponse
	err := c.do("POST", "/api/auth/revoke-before", req, &out)
	return out, err
}

// Inventory lists registered routers.
func (c *Client) Inventory() ([]RouterInfo, error) {
	var out []RouterInfo
	err := c.do("GET", "/api/inventory", nil, &out)
	return out, err
}

// Stats returns the flat JSON counter snapshot: route server counters
// plus every rnl_* metric from the observability registry.
func (c *Client) Stats() (map[string]uint64, error) {
	var out map[string]uint64
	err := c.do("GET", "/api/stats", nil, &out)
	return out, err
}

// Designs lists saved design names.
func (c *Client) Designs() ([]string, error) {
	var out []string
	err := c.do("GET", "/api/designs", nil, &out)
	return out, err
}

// GetDesign loads a saved design.
func (c *Client) GetDesign(name string) (*Design, error) {
	var out topology.Design
	err := c.do("GET", "/api/designs/"+url.PathEscape(name), nil, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// SaveDesign stores a design.
func (c *Client) SaveDesign(d *Design) error {
	return c.do("PUT", "/api/designs/"+url.PathEscape(d.Name), d, nil)
}

// DeleteDesign removes a saved design.
func (c *Client) DeleteDesign(name string) error {
	return c.do("DELETE", "/api/designs/"+url.PathEscape(name), nil, nil)
}

// SaveConfigs dumps router configurations into a saved design via their
// consoles and returns the updated design.
func (c *Client) SaveConfigs(name string) (*Design, error) {
	var out topology.Design
	err := c.call(callOpts{
		method: "POST", path: "/api/designs/" + url.PathEscape(name) + "/save-configs",
		in: struct{}{}, out: &out, idemKey: newIdemKey(),
	})
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Reserve books routers; the returned reservations carry IDs for Cancel.
// The call carries an idempotency key: a retry after an ambiguous
// failure books the routers once, not twice.
func (c *Client) Reserve(req ReserveRequest) ([]ReservationInfo, error) {
	var out []ReservationInfo
	err := c.call(callOpts{
		method: "POST", path: "/api/reservations",
		in: req, out: &out, idemKey: newIdemKey(),
	})
	return out, err
}

// CancelReservation releases one booking.
func (c *Client) CancelReservation(id uint64) error {
	return c.do("DELETE", fmt.Sprintf("/api/reservations/%d", id), nil, nil)
}

// Schedule returns a router's upcoming bookings.
func (c *Client) Schedule(router string) ([]ReservationInfo, error) {
	var out []ReservationInfo
	err := c.do("GET", "/api/schedule/"+url.PathEscape(router), nil, &out)
	return out, err
}

// NextFree finds the next common free slot for a set of routers.
func (c *Client) NextFree(req NextFreeRequest) (time.Time, error) {
	var out NextFreeResponse
	err := c.do("POST", "/api/next-free", req, &out)
	return out.Start, err
}

// Deploy wires up a saved design. The call carries an idempotency key,
// so a retry after a 429 or a dropped connection installs the
// deployment at most once.
func (c *Client) Deploy(req DeployRequest) error {
	return c.call(callOpts{
		method: "POST", path: "/api/deployments",
		in: req, idemKey: newIdemKey(),
	})
}

// Teardown removes a deployment.
func (c *Client) Teardown(name string) error {
	return c.do("DELETE", "/api/deployments/"+url.PathEscape(name), nil, nil)
}

// Deployments lists active labs.
func (c *Client) Deployments() ([]DeploymentInfo, error) {
	var out []DeploymentInfo
	err := c.do("GET", "/api/deployments", nil, &out)
	return out, err
}

// Generate injects frames toward a router port.
func (c *Client) Generate(req GenerateRequest) error {
	return c.do("POST", "/api/generate", req, nil)
}

// OpenCapture starts a software tap and returns its handle.
func (c *Client) OpenCapture(req CaptureRequest) (uint64, error) {
	var out CaptureResponse
	err := c.do("POST", "/api/captures", req, &out)
	return out.ID, err
}

// ReadCapture drains up to max frames, waiting up to wait for the first.
// The long-poll wait extends the per-call deadline, so waits longer than
// the client timeout are honoured instead of aborted mid-poll.
func (c *Client) ReadCapture(id uint64, max int, wait time.Duration) ([]CapturedFrame, error) {
	var out []CapturedFrame
	path := fmt.Sprintf("/api/captures/%d?max=%d&wait_ms=%d", id, max, wait.Milliseconds())
	err := c.call(callOpts{method: "GET", path: path, out: &out, extraWait: wait})
	return out, err
}

// CloseCapture stops a tap.
func (c *Client) CloseCapture(id uint64) error {
	return c.do("DELETE", fmt.Sprintf("/api/captures/%d", id), nil, nil)
}

// DownloadPcap drains a capture into classic pcap bytes.
func (c *Client) DownloadPcap(id uint64, max int, wait time.Duration) ([]byte, error) {
	var raw []byte
	path := fmt.Sprintf("/api/captures/%d/pcap?max=%d&wait_ms=%d", id, max, wait.Milliseconds())
	err := c.call(callOpts{method: "GET", path: path, rawOut: &raw, extraWait: wait})
	return raw, err
}

// StartStream begins rate-controlled traffic generation.
func (c *Client) StartStream(req StreamRequest) (uint64, error) {
	var out StreamStatus
	err := c.do("POST", "/api/streams", req, &out)
	return out.ID, err
}

// StreamStatus reports a stream's progress.
func (c *Client) StreamStatus(id uint64) (StreamStatus, error) {
	var out StreamStatus
	err := c.do("GET", fmt.Sprintf("/api/streams/%d", id), nil, &out)
	return out, err
}

// StopStream halts a stream and returns its final counters.
func (c *Client) StopStream(id uint64) (StreamStatus, error) {
	var out StreamStatus
	err := c.do("DELETE", fmt.Sprintf("/api/streams/%d", id), nil, &out)
	return out, err
}

// AttachConsole opens an interactive raw console stream to a router: the
// returned connection carries keystrokes in and terminal output back (the
// transport behind the browser VT100 window). The caller must Close it.
func (c *Client) AttachConsole(router string) (net.Conn, error) {
	u, err := url.Parse(c.base)
	if err != nil {
		return nil, err
	}
	conn, err := net.Dial("tcp", u.Host)
	if err != nil {
		return nil, err
	}
	path := "/api/console/raw/" + url.PathEscape(router)
	fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: %s\r\nX-RNL-Token: %s\r\nConnection: Upgrade\r\nUpgrade: rnl-console\r\n\r\n",
		path, u.Host, c.token)
	br := bufio.NewReader(conn)
	status, err := br.ReadString('\n')
	if err != nil {
		conn.Close()
		return nil, err
	}
	if !strings.Contains(status, "101") {
		conn.Close()
		// The refusal line comes off the wire: scrub the credential in
		// case a proxy or error page echoed the request headers.
		return nil, identity.RedactError(fmt.Errorf("api: console attach refused: %s", strings.TrimSpace(status)), c.token)
	}
	// Skip headers.
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			conn.Close()
			return nil, err
		}
		if line == "\r\n" || line == "\n" {
			break
		}
	}
	if n := br.Buffered(); n > 0 {
		buffered := make([]byte, n)
		io.ReadFull(br, buffered)
		return &bufferedConn{Conn: conn, pre: buffered}, nil
	}
	return conn, nil
}

// bufferedConn replays bytes the handshake reader over-read.
type bufferedConn struct {
	net.Conn
	pre []byte
}

func (b *bufferedConn) Read(p []byte) (int, error) {
	if len(b.pre) > 0 {
		n := copy(p, b.pre)
		b.pre = b.pre[n:]
		return n, nil
	}
	return b.Conn.Read(p)
}

// FlashFirmware loads a firmware version onto a router via its console.
func (c *Client) FlashFirmware(router, version string) error {
	return c.call(callOpts{
		method: "POST", path: "/api/routers/" + url.PathEscape(router) + "/firmware",
		in: FlashRequest{Version: version}, idemKey: newIdemKey(),
	})
}

// ConsoleExec runs commands on a router's console and returns per-command
// output. The request's own console timeout extends the call deadline
// (per command), and the idempotency key keeps a retried exec from
// running the commands twice.
func (c *Client) ConsoleExec(req ConsoleExecRequest) ([]string, error) {
	extra := time.Duration(req.TimeoutMS) * time.Millisecond * time.Duration(max(len(req.Commands), 1))
	var out ConsoleExecResponse
	err := c.call(callOpts{
		method: "POST", path: "/api/console/exec",
		in: req, out: &out, extraWait: extra, idemKey: newIdemKey(),
	})
	return out.Outputs, err
}

// ReservationInfo mirrors reservation.Reservation on the wire.
type ReservationInfo struct {
	ID     uint64    `json:"id"`
	Router string    `json:"router"`
	User   string    `json:"user"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
}
