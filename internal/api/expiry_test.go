package api_test

import (
	"testing"
	"time"

	"rnl/internal/api"
	"rnl/internal/lab"
	"rnl/internal/sim"
	"rnl/internal/topology"
)

// TestExpiredReservationReclaimedOnDeploy is the paper's expiry rule:
// "when the reservation expires, the router connections could be torn
// down when the next user deploys her test lab design." The whole cloud
// runs on a fake clock so the reservation lapses by advancing virtual
// time instead of sleeping through the window.
func TestExpiredReservationReclaimedOnDeploy(t *testing.T) {
	clk := sim.NewFake(time.Unix(1_700_000_000, 0).UTC())
	c := newTestCloud(t, lab.Options{Clock: clk})
	if _, _, err := c.AddHost("ex-h1", "10.0.0.1/24", ""); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.AddHost("ex-h2", "10.0.0.2/24", ""); err != nil {
		t.Fatal(err)
	}
	routers := []string{"ex-h1", "ex-h2"}
	mkDesign := func(name string) *topology.Design {
		d := &topology.Design{Name: name, Routers: routers}
		if err := d.Connect("ex-h1", "eth0", "ex-h2", "eth0"); err != nil {
			t.Fatal(err)
		}
		if err := c.Client.SaveDesign(d); err != nil {
			t.Fatal(err)
		}
		return d
	}
	aliceLab := mkDesign("alice-expiry-lab")
	bobLab := mkDesign("bob-expiry-lab")

	// Alice books a very short window and deploys.
	now := clk.Now()
	if _, err := c.Client.Reserve(api.ReserveRequest{
		User: "alice", Routers: routers, Start: now.Add(-time.Minute), End: now.Add(250 * time.Millisecond),
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Client.Deploy(api.DeployRequest{Design: aliceLab.Name, User: "alice"}); err != nil {
		t.Fatal(err)
	}

	// While alice's reservation is live, bob cannot take the routers.
	if _, err := c.Client.Reserve(api.ReserveRequest{
		User: "bob", Routers: routers, Start: now, End: now.Add(time.Hour),
	}); err == nil {
		t.Fatal("bob's overlapping reservation should conflict")
	}

	// Let alice's reservation lapse — purely virtually. Her deployment is
	// still wired up; nothing tears it down proactively.
	clk.Advance(300 * time.Millisecond)
	if deps, _ := c.Client.Deployments(); len(deps) != 1 || deps[0].Name != aliceLab.Name {
		t.Fatalf("alice's lab should still be deployed: %v", deps)
	}

	// Bob books the now-free window and deploys: alice's stale lab is
	// torn down as part of his deploy.
	now = clk.Now()
	if _, err := c.Client.Reserve(api.ReserveRequest{
		User: "bob", Routers: routers, Start: now.Add(-10 * time.Millisecond), End: now.Add(time.Hour),
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Client.Deploy(api.DeployRequest{Design: bobLab.Name, User: "bob"}); err != nil {
		t.Fatalf("bob's deploy should reclaim the expired lab: %v", err)
	}
	deps, err := c.Client.Deployments()
	if err != nil {
		t.Fatal(err)
	}
	if len(deps) != 1 || deps[0].Name != bobLab.Name {
		t.Fatalf("deployments after reclaim = %v", deps)
	}
}

// TestActiveReservationNotReclaimed: a deploy must NOT evict a holder
// whose reservation is still current.
func TestActiveReservationNotReclaimed(t *testing.T) {
	c := newTestCloud(t, lab.Options{})
	if _, _, err := c.AddHost("ar-h1", "10.0.0.1/24", ""); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.AddHost("ar-h2", "10.0.0.2/24", ""); err != nil {
		t.Fatal(err)
	}
	routers := []string{"ar-h1", "ar-h2"}
	d := &topology.Design{Name: "ar-lab", Routers: routers}
	d.Connect("ar-h1", "eth0", "ar-h2", "eth0")
	if err := c.Client.SaveDesign(d); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	if _, err := c.Client.Reserve(api.ReserveRequest{
		User: "alice", Routers: routers, Start: now.Add(-time.Minute), End: now.Add(time.Hour),
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Client.Deploy(api.DeployRequest{Design: "ar-lab", User: "alice"}); err != nil {
		t.Fatal(err)
	}
	// Bob somehow reserves a DIFFERENT future window but tries to deploy
	// now over the same routers: alice holds a current reservation, so
	// the deploy must fail and her lab must survive.
	d2 := &topology.Design{Name: "ar-lab2", Routers: routers}
	d2.Connect("ar-h1", "eth0", "ar-h2", "eth0")
	if err := c.Client.SaveDesign(d2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Client.Reserve(api.ReserveRequest{
		User: "bob", Routers: routers, Start: now.Add(2 * time.Hour), End: now.Add(3 * time.Hour),
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Client.Deploy(api.DeployRequest{Design: "ar-lab2", User: "bob"}); err == nil {
		t.Fatal("bob's deploy outside his window should fail")
	}
	if deps, _ := c.Client.Deployments(); len(deps) != 1 || deps[0].Name != "ar-lab" {
		t.Fatalf("alice's lab should survive: %v", deps)
	}
}
