package api_test

// Crash-consistency surfaces at the API layer: /healthz flips its
// degraded flag when the route server's mutation log stops accepting
// appends, and the admin revoke-before endpoint cuts off leaked bearer
// tokens without a secret rotation.

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"rnl/internal/api"
	"rnl/internal/faultinject"
	"rnl/internal/identity"
	"rnl/internal/lab"
	"rnl/internal/sim"
	"rnl/internal/wal"
)

func getHealth(t *testing.T, addr string) (h struct {
	Listening   bool   `json:"listening"`
	Degraded    bool   `json:"degraded"`
	StateErrors uint32 `json:"state_errors"`
}) {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz = %d, want 200", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHealthzDegradedOnWALFailures(t *testing.T) {
	// A healthy persistent cloud is not degraded.
	ok := newTestCloud(t, lab.Options{StateDir: t.TempDir()})
	if _, _, err := ok.AddHost("dg-ok", "10.31.0.1/24", ""); err != nil {
		t.Fatal(err)
	}
	if h := getHealth(t, ok.WebAddr); h.Degraded || h.StateErrors != 0 {
		t.Fatalf("healthy cloud healthz = %+v, want not degraded", h)
	}

	// Same cloud shape, but every write to the state dir fails: after
	// DegradedAfterFailures consecutive journal appends fail, /healthz
	// must say so — mutations are still acked from memory, and the
	// operator learns durability is gone from the probe, not from the
	// next crash.
	disk := faultinject.NewDisk(wal.OSFS{})
	disk.FailWrites(errors.New("injected: disk full"))
	c := newTestCloud(t, lab.Options{StateDir: t.TempDir(), WALFS: disk})
	for i, name := range []string{"dg-h1", "dg-h2", "dg-h3"} {
		if _, _, err := c.AddHost(name, "10.32.0."+string(rune('1'+i))+"/24", ""); err != nil {
			t.Fatal(err)
		}
	}
	h := getHealth(t, c.WebAddr)
	if !h.Degraded {
		t.Fatalf("healthz after %d failed appends = %+v, want degraded", 3, h)
	}
	if h.StateErrors < 3 {
		t.Fatalf("state_errors = %d, want >= 3", h.StateErrors)
	}
	if !h.Listening {
		t.Error("degraded must not imply dead: listening should stay true")
	}
}

func TestRevokeBeforeEndpoint(t *testing.T) {
	// The authority runs on a fake clock so issued-at timestamps are
	// exact; the rest of the cloud stays on wall time.
	t0 := time.Unix(1_700_000_000, 0)
	clk := sim.NewFake(t0)
	auth, err := identity.New([]byte("test-signing-secret"), clk)
	if err != nil {
		t.Fatal(err)
	}
	c := newTestCloud(t, lab.Options{Identity: auth, TunnelToken: "tunnel-secret"})

	leaked := tenantClient(t, c, auth, "acme", identity.RoleTenant)
	if _, err := leaked.WhoAmI(); err != nil {
		t.Fatalf("fresh token rejected: %v", err)
	}

	// An hour later the token turns up in a pastebin.
	clk.Advance(time.Hour)
	admin := tenantClient(t, c, auth, "", identity.RoleAdmin)
	operator := tenantClient(t, c, auth, "ops", identity.RoleOperator)

	// Revocation is admin-only: even an operator is refused.
	if _, err := operator.RevokeTokensBefore(api.RevokeBeforeRequest{Now: true}); err == nil || !strings.Contains(err.Error(), "403") {
		t.Fatalf("operator revoke error = %v, want 403", err)
	}

	// Admin cuts off everything minted before half past the hour.
	cutoff := t0.Add(30 * time.Minute)
	resp, err := admin.RevokeTokensBefore(api.RevokeBeforeRequest{Before: cutoff.UTC().Format(time.RFC3339)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Before == "" {
		t.Fatalf("revoke response = %+v, want echoed cutoff", resp)
	}
	if _, err := leaked.WhoAmI(); err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("leaked token after revocation: err = %v, want 401", err)
	}
	// Tokens minted after the cutoff (the admin's own, and any fresh
	// tenant login) keep working.
	if _, err := admin.WhoAmI(); err != nil {
		t.Fatalf("admin token after revocation: %v", err)
	}
	fresh := tenantClient(t, c, auth, "acme", identity.RoleTenant)
	if who, err := fresh.WhoAmI(); err != nil || who.Tenant != "acme" {
		t.Fatalf("fresh token after revocation = %+v, %v", who, err)
	}

	// An empty request must not silently clear the cutoff — clearing a
	// security control takes the explicit field.
	if _, err := admin.RevokeTokensBefore(api.RevokeBeforeRequest{}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("empty revoke request err = %v, want 400", err)
	}
	if _, err := leaked.WhoAmI(); err == nil {
		t.Fatal("cutoff was cleared by an empty request")
	}

	// Explicitly clearing the cutoff restores the old token.
	if resp, err := admin.RevokeTokensBefore(api.RevokeBeforeRequest{Clear: true}); err != nil || resp.Before != "" {
		t.Fatalf("clear revoke = %+v, %v, want empty cutoff", resp, err)
	}
	if _, err := leaked.WhoAmI(); err != nil {
		t.Fatalf("old token after clearing cutoff: %v", err)
	}
}
