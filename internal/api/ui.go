package api

import (
	"fmt"
	"html/template"
	"net/http"
)

// indexTmpl is the minimal browser UI (paper Fig. 2): the router inventory
// on the left, active deployments and designs on the right. The real
// workhorse is the JSON API; this page exists so a human can eyeball the
// labs.
var indexTmpl = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html>
<head><title>Remote Network Labs</title>
<style>
 body { font-family: sans-serif; margin: 2em; }
 table { border-collapse: collapse; margin-bottom: 2em; }
 td, th { border: 1px solid #999; padding: 4px 10px; text-align: left; }
 h2 { margin-top: 1.2em; }
 .off { color: #999; }
</style></head>
<body>
<h1>Remote Network Labs</h1>
<h2>Router inventory</h2>
<table>
<tr><th>ID</th><th>Name</th><th>Model</th><th>Firmware</th><th>PC</th><th>Ports</th><th>Console</th><th>Status</th></tr>
{{range .Inventory}}
<tr{{if not .Online}} class="off"{{end}}>
<td>{{.ID}}</td><td>{{.Name}}</td><td>{{.Model}}</td><td>{{.Firmware}}</td><td>{{.PC}}</td>
<td>{{len .Ports}}</td><td>{{if .HasConsole}}yes{{else}}no{{end}}</td>
<td>{{if .Online}}online{{else}}offline{{end}}</td>
</tr>
{{end}}
</table>
<h2>Active deployments</h2>
<table>
<tr><th>Name</th><th>Links</th><th>Routers</th></tr>
{{range .Deployments}}<tr><td>{{.Name}}</td><td>{{.Links}}</td><td>{{.Routers}}</td></tr>{{end}}
</table>
<h2>Saved designs</h2>
<ul>{{range .Designs}}<li><a href="/api/designs/{{.}}">{{.}}</a></li>{{end}}</ul>
<p>Web services API under <code>/api/</code>.</p>
</body></html>`))

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	var deployments []DeploymentInfo
	for _, d := range s.rs.Deployments() {
		deployments = append(deployments, DeploymentInfo{Name: d.Name, Links: len(d.Links), Routers: d.Routers})
	}
	data := struct {
		Inventory   []RouterInfo
		Deployments []DeploymentInfo
		Designs     []string
	}{
		Inventory:   s.rs.Inventory(),
		Deployments: deployments,
		Designs:     s.store.List(),
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := indexTmpl.Execute(w, data); err != nil {
		fmt.Fprintf(w, "<!-- render error: %v -->", err)
	}
}
