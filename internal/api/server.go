package api

import (
	"bytes"
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"rnl/internal/admission"
	"rnl/internal/capture"
	"rnl/internal/console"
	"rnl/internal/identity"
	"rnl/internal/obs"
	"rnl/internal/reservation"
	"rnl/internal/routeserver"
	"rnl/internal/sim"
	"rnl/internal/topology"
)

// Server is the RNL web server: the browser UI's backend and the
// web-services API.
type Server struct {
	rs     *routeserver.Server
	store  *topology.Store
	cal    *reservation.Calendar
	dep    *topology.Deployer
	log    *slog.Logger
	token  string
	ident  *identity.Authority
	quotas *identity.Quotas
	clock  sim.Clock

	httpLn  net.Listener
	httpSrv *http.Server

	mutateGate *admission.Gate
	readGate   *admission.Gate
	idem       *admission.IdempotencyCache

	mu         sync.Mutex
	captures   map[uint64]*ownedCapture
	nextCap    uint64
	streams    map[uint64]*ownedStream
	nextStream uint64
}

// ownedCapture / ownedStream remember which tenant opened the handle so
// read/close (and status/stop) stay scoped to the opener: a packet tap
// or traffic stream is as sensitive as the lab it points into.
type ownedCapture struct {
	cap    *routeserver.Capture
	tenant string
}

type ownedStream struct {
	st     *routeserver.Stream
	tenant string
}

// AdmissionConfig tunes the web API's overload protection. Two endpoint
// classes get independent bounded-concurrency gates: mutating calls
// (deploy, teardown, reserve, save-configs, firmware, console exec) are
// expensive — they take the matrix lock and drive consoles — so their
// gate is narrow; reads are cheap and get a wide one. A caller that
// cannot be admitted within QueueWait receives 429 Too Many Requests
// with a Retry-After header. Zero fields select the defaults.
type AdmissionConfig struct {
	// Disable turns the gates and the idempotency cache off entirely.
	Disable bool
	// MutateInFlight bounds concurrently executing mutating calls
	// (default 4); MutateQueue bounds callers waiting behind them
	// (default 4× in-flight; negative = no queue, reject immediately).
	MutateInFlight int
	MutateQueue    int
	// ReadInFlight / ReadQueue do the same for read-only endpoints
	// (defaults 64 / 256; negative queue = reject immediately).
	ReadInFlight int
	ReadQueue    int
	// QueueWait bounds how long an over-limit caller queues before 429
	// (default 2s). RetryAfter is the hint returned with the 429
	// (default 1s).
	QueueWait  time.Duration
	RetryAfter time.Duration
	// IdempotencyTTL is how long a completed mutating response is
	// replayable under its X-RNL-Idempotency-Key (default 5m).
	IdempotencyTTL time.Duration
}

func (a AdmissionConfig) mutateGate() admission.GateConfig {
	inFlight := a.MutateInFlight
	if inFlight <= 0 {
		inFlight = 4
	}
	queue := a.MutateQueue
	if queue == 0 {
		queue = -1 // gate default: 4× in-flight
	} else if queue < 0 {
		queue = 0 // reject immediately
	}
	return admission.GateConfig{
		MaxInFlight: inFlight, MaxQueue: queue,
		QueueWait: a.QueueWait, RetryAfter: a.RetryAfter,
	}
}

func (a AdmissionConfig) readGate() admission.GateConfig {
	inFlight := a.ReadInFlight
	if inFlight <= 0 {
		inFlight = 64
	}
	queue := a.ReadQueue
	if queue == 0 {
		queue = 256
	} else if queue < 0 {
		queue = 0 // reject immediately
	}
	return admission.GateConfig{
		MaxInFlight: inFlight, MaxQueue: queue,
		QueueWait: a.QueueWait, RetryAfter: a.RetryAfter,
	}
}

// Config assembles a web server.
type Config struct {
	RouteServer *routeserver.Server
	Store       *topology.Store
	Calendar    *reservation.Calendar
	// Token, when non-empty, is the legacy shared secret: a request
	// presenting it (X-RNL-Token header) is admitted with admin
	// privileges — the pre-tenancy single-secret trust model, unchanged
	// in power. Compared in constant time.
	Token string
	// Identity, when non-nil, verifies signed bearer tokens and API
	// keys into tenant-scoped principals (see internal/identity).
	// Token and Identity compose: either credential kind is accepted.
	// When both are unset the server is open — every caller is an
	// anonymous admin, the original single-user mode.
	Identity *identity.Authority
	// Quotas, when non-nil alongside Identity, caps each tenant's
	// scarce-resource usage: concurrent labs (enforced inside the route
	// server's matrix critical section) and outstanding
	// reservation-hours (enforced inside the calendar lock).
	Quotas *identity.Quotas
	// ConsoleTimeout bounds console automation commands.
	ConsoleTimeout time.Duration
	// DeployWorkers bounds how many console restores a deploy runs
	// concurrently (0 = topology.DefaultRestoreWorkers, 1 = strictly
	// sequential).
	DeployWorkers int
	Logger        *slog.Logger
	// Admission tunes overload protection; the zero value enables it
	// with generous defaults.
	Admission AdmissionConfig
	// Clock drives admission gate waits, idempotency expiry and
	// reservation "next free" lookups; nil means wall time.
	Clock sim.Clock
}

// NewServer builds the web server (not yet listening).
func NewServer(cfg Config) *Server {
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	clock := cfg.Clock
	if clock == nil {
		clock = sim.Real{}
	}
	s := &Server{
		rs:     cfg.RouteServer,
		store:  cfg.Store,
		cal:    cfg.Calendar,
		log:    logger,
		token:  cfg.Token,
		ident:  cfg.Identity,
		quotas: cfg.Quotas,
		clock:  clock,
		dep: &topology.Deployer{
			Server:         cfg.RouteServer,
			Cal:            cfg.Calendar,
			ConsoleTimeout: cfg.ConsoleTimeout,
			Clock:          clock,
			Workers:        cfg.DeployWorkers,
		},
		captures:   make(map[uint64]*ownedCapture),
		nextCap:    1,
		streams:    make(map[uint64]*ownedStream),
		nextStream: 1,
	}
	if cfg.Quotas != nil {
		s.dep.MaxLabs = func(tenant string) int {
			return cfg.Quotas.For(tenant).MaxConcurrentLabs
		}
		if cfg.Calendar != nil {
			cfg.Calendar.SetQuota(func(user string) float64 {
				return cfg.Quotas.For(user).ReservationHours
			})
		}
	}
	if !cfg.Admission.Disable {
		mg := cfg.Admission.mutateGate()
		mg.Clock = clock
		rg := cfg.Admission.readGate()
		rg.Clock = clock
		s.mutateGate = admission.NewGate("api_mutate", mg)
		s.readGate = admission.NewGate("api_read", rg)
		s.idem = admission.NewIdempotencyCacheClock(cfg.Admission.IdempotencyTTL, clock)
	}
	return s
}

// Handler returns the HTTP handler (useful for tests via httptest).
// Every API endpoint runs behind an admission gate for its class:
// mutating calls (matrix lock, console automation) behind the narrow
// mutate gate — retriable via idempotency keys — and reads behind the
// wide read gate. /metrics and /healthz stay ungated so monitoring sees
// an overloaded server instead of being shed by it, and the raw console
// stream is exempt because it hijacks the connection for its lifetime.
func (s *Server) Handler() http.Handler {
	mutate := func(h http.HandlerFunc) http.HandlerFunc {
		return s.auth(s.gated(s.mutateGate, s.idempotent(h)))
	}
	read := func(h http.HandlerFunc) http.HandlerFunc {
		return s.auth(s.gated(s.readGate, h))
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/whoami", read(s.handleWhoAmI))
	mux.HandleFunc("GET /api/inventory", read(s.handleInventory))
	mux.HandleFunc("GET /api/stats", read(s.handleStats))

	// Observability endpoints are unauthenticated by design: liveness
	// probes and metric scrapers don't carry API tokens, and neither
	// endpoint exposes user data.
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)

	mux.HandleFunc("GET /api/designs", read(s.handleDesignList))
	mux.HandleFunc("GET /api/designs/{name}", read(s.handleDesignGet))
	mux.HandleFunc("PUT /api/designs/{name}", mutate(s.handleDesignPut))
	mux.HandleFunc("DELETE /api/designs/{name}", mutate(s.handleDesignDelete))
	mux.HandleFunc("POST /api/designs/{name}/save-configs", mutate(s.handleSaveConfigs))

	mux.HandleFunc("POST /api/reservations", mutate(s.handleReserve))
	mux.HandleFunc("DELETE /api/reservations/{id}", mutate(s.handleCancelReservation))
	mux.HandleFunc("GET /api/schedule/{router}", read(s.handleSchedule))
	mux.HandleFunc("POST /api/next-free", read(s.handleNextFree))

	mux.HandleFunc("GET /api/deployments", read(s.handleDeploymentList))
	mux.HandleFunc("POST /api/deployments", mutate(s.handleDeploy))
	mux.HandleFunc("DELETE /api/deployments/{name}", mutate(s.handleTeardown))

	mux.HandleFunc("POST /api/generate", read(s.handleGenerate))
	mux.HandleFunc("POST /api/captures", read(s.handleCaptureOpen))
	mux.HandleFunc("GET /api/captures/{id}", read(s.handleCaptureRead))
	mux.HandleFunc("GET /api/captures/{id}/pcap", read(s.handleCapturePcap))
	mux.HandleFunc("DELETE /api/captures/{id}", read(s.handleCaptureClose))

	mux.HandleFunc("POST /api/streams", read(s.handleStreamStart))
	mux.HandleFunc("GET /api/streams/{id}", read(s.handleStreamStatus))
	mux.HandleFunc("DELETE /api/streams/{id}", read(s.handleStreamStop))

	mux.HandleFunc("POST /api/console/exec", mutate(s.handleConsoleExec))
	mux.HandleFunc("POST /api/routers/{name}/firmware", mutate(s.handleFlash))
	mux.HandleFunc("POST /api/auth/revoke-before", mutate(s.handleRevokeBefore))
	mux.HandleFunc("GET /api/console/raw/{name}", s.auth(s.handleConsoleRaw))

	mux.HandleFunc("GET /", s.handleIndex)
	return mux
}

// Listen serves HTTP on addr and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("api: listen %s: %w", addr, err)
	}
	s.httpLn = ln
	s.httpSrv = &http.Server{Handler: s.Handler()}
	go s.httpSrv.Serve(ln)
	return ln.Addr().String(), nil
}

// Close stops the HTTP server and open captures.
func (s *Server) Close() {
	if s.httpSrv != nil {
		s.httpSrv.Close()
	}
	s.mu.Lock()
	caps := make([]*routeserver.Capture, 0, len(s.captures))
	for _, c := range s.captures {
		caps = append(caps, c.cap)
	}
	s.captures = map[uint64]*ownedCapture{}
	s.mu.Unlock()
	for _, c := range caps {
		c.Stop()
	}
}

// principal is the verified caller identity auth attaches to each
// request. Handlers read it with callerOf to enforce ownership.
type principal struct {
	Tenant string
	Role   identity.Role
}

// crossTenant reports whether the principal may act on resources it
// does not own (operator and admin).
func (p principal) crossTenant() bool { return p.Role.AtLeast(identity.RoleOperator) }

// mayAccess reports whether the principal may touch a resource recorded
// as owned by ownerTenant (capture and stream handles).
func (p principal) mayAccess(ownerTenant string) bool {
	return p.crossTenant() || p.Tenant == ownerTenant
}

type principalKey struct{}

func withPrincipal(r *http.Request, p principal) *http.Request {
	return r.WithContext(context.WithValue(r.Context(), principalKey{}, p))
}

// callerOf returns the request's verified principal. Requests that
// never passed auth (none exist today — every /api route is wrapped)
// would read as an anonymous admin, matching the open-server regime.
func callerOf(r *http.Request) principal {
	if p, ok := r.Context().Value(principalKey{}).(principal); ok {
		return p
	}
	return principal{Role: identity.RoleAdmin}
}

// auth authenticates the request and attaches the caller's principal.
// The credential arrives in the X-RNL-Token header (what rnlctl sends)
// or as "Authorization: Bearer <token>". Three regimes:
//
//   - Open server (no legacy token, no identity authority): every
//     caller is an anonymous admin — the pre-auth single-user mode.
//   - Legacy shared token: a constant-time match grants admin.
//   - Identity authority: signed bearer tokens and API keys resolve to
//     a tenant-scoped principal; handlers then enforce ownership.
//
// Verification happens here, once per request — never again
// downstream, and never on the packet fast path. The rejection is
// deliberately uniform: it does not reveal whether the credential was
// absent, malformed, mis-signed or expired.
func (s *Server) auth(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		cred := r.Header.Get("X-RNL-Token")
		if cred == "" {
			if v, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer "); ok {
				cred = v
			}
		}
		if s.token == "" && s.ident == nil {
			h(w, withPrincipal(r, principal{Role: identity.RoleAdmin}))
			return
		}
		if s.token != "" && subtle.ConstantTimeCompare([]byte(cred), []byte(s.token)) == 1 {
			h(w, withPrincipal(r, principal{Role: identity.RoleAdmin}))
			return
		}
		if s.ident != nil {
			if c, err := s.ident.VerifyCredential(cred); err == nil {
				h(w, withPrincipal(r, principal{Tenant: c.Tenant, Role: c.Role}))
				return
			}
		}
		writeError(w, http.StatusUnauthorized, fmt.Errorf("missing or invalid credential"))
	}
}

// gated runs h under an admission gate: the handler executes only while
// holding one of the gate's in-flight slots, queueing briefly when the
// gate is saturated and answering 429 + Retry-After when the queue
// overflows or the wait deadline passes.
func (s *Server) gated(gate *admission.Gate, h http.HandlerFunc) http.HandlerFunc {
	if gate == nil { // admission disabled
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		release, err := gate.Acquire(r.Context())
		if err != nil {
			if errors.Is(err, admission.ErrOverloaded) {
				retryAfter(w, gate.RetryAfter())
				writeError(w, http.StatusTooManyRequests, fmt.Errorf("server overloaded; retry later"))
			}
			// Context errors mean the client is gone — nothing to write.
			return
		}
		defer release()
		h(w, r)
	}
}

// retryAfter sets the Retry-After header (whole seconds, minimum 1).
func retryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int(d.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// idempotent makes a mutating handler safe to retry: requests carrying
// an X-RNL-Idempotency-Key execute once, with the recorded response
// replayed to every duplicate (including concurrent ones, which wait for
// the original to finish). Keyless requests pass straight through.
func (s *Server) idempotent(h http.HandlerFunc) http.HandlerFunc {
	if s.idem == nil { // admission disabled
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		key := r.Header.Get("X-RNL-Idempotency-Key")
		if key == "" {
			h(w, r)
			return
		}
		// The cache key is scoped to the verified principal: two tenants
		// reusing the same client key must not see each other's recorded
		// responses (nor have their own mutation silently skipped).
		p := callerOf(r)
		key = string(p.Role) + "\x1f" + p.Tenant + "\x1f" + key
		res, dup := s.idem.Begin(key)
		if dup {
			select {
			case <-res.Done():
			case <-r.Context().Done():
				return
			}
			status, ct, body := res.Result()
			if ct != "" {
				w.Header().Set("Content-Type", ct)
			}
			w.WriteHeader(status)
			w.Write(body)
			return
		}
		rec := &responseRecorder{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if !rec.wrote {
				// Handler never responded (client vanished mid-call):
				// don't cache an empty 200 — let a retry run for real.
				s.idem.Forget(key)
				res.Finish(http.StatusServiceUnavailable, "", nil)
				return
			}
			res.Finish(rec.status, rec.Header().Get("Content-Type"), rec.body.Bytes())
		}()
		h(rec, r)
	}
}

// responseRecorder tees a handler's response so the idempotency cache
// can replay it to retries.
type responseRecorder struct {
	http.ResponseWriter
	status int
	body   bytes.Buffer
	wrote  bool
}

func (r *responseRecorder) WriteHeader(status int) {
	r.status = status
	r.wrote = true
	r.ResponseWriter.WriteHeader(status)
}

func (r *responseRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	r.body.Write(b)
	return r.ResponseWriter.Write(b)
}

// ctxStatus maps a handler error to its HTTP status: context errors
// (client gone, deadline passed) become 503 so a retrying client backs
// off, everything else keeps the handler's chosen status.
func ctxStatus(err error, fallback int) int {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return http.StatusServiceUnavailable
	}
	return fallback
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

// --- inventory & stats -----------------------------------------------------

func (s *Server) handleInventory(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.rs.Inventory())
}

// handleWhoAmI echoes the caller's verified principal — the "did my
// token work, and as whom" probe rnlctl login scripts use.
func (s *Server) handleWhoAmI(w http.ResponseWriter, r *http.Request) {
	p := callerOf(r)
	writeJSON(w, http.StatusOK, WhoAmIResponse{Tenant: p.Tenant, Role: string(p.Role)})
}

// handleStats serves the flat JSON counter snapshot: the route server's
// legacy per-instance counters plus every rnl_* metric in the process
// observability registry (histograms as <name>_count).
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	out := s.rs.StatsSnapshot()
	for k, v := range obs.Default().Snapshot().Flatten() {
		out[k] = v
	}
	writeJSON(w, http.StatusOK, out)
}

// handleMetrics serves the Prometheus text exposition of the process
// observability registry.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.Default().WritePrometheus(w)
}

// handleHealthz is the liveness probe: 200 while the RIS tunnel accept
// loop is up, 503 once it has died, with the health details as JSON.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := s.rs.Health()
	status := http.StatusOK
	if !h.Listening {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// --- designs -----------------------------------------------------------------

func (s *Server) handleDesignList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.store.List())
}

func (s *Server) handleDesignGet(w http.ResponseWriter, r *http.Request) {
	d, err := s.store.Load(r.PathValue("name"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, d)
}

func (s *Server) handleDesignPut(w http.ResponseWriter, r *http.Request) {
	var d topology.Design
	if !readJSON(w, r, &d) {
		return
	}
	if d.Name == "" {
		d.Name = r.PathValue("name")
	}
	if d.Name != r.PathValue("name") {
		writeError(w, http.StatusBadRequest, fmt.Errorf("design name %q does not match URL %q", d.Name, r.PathValue("name")))
		return
	}
	// A tenant's saves are stamped with its tenant ID and may only
	// overwrite designs it already owns; unowned (pre-tenancy or
	// operator-saved) designs stay read-only to tenants.
	if p := callerOf(r); !p.crossTenant() {
		if existing, err := s.store.Load(d.Name); err == nil && existing.Tenant != p.Tenant {
			writeError(w, http.StatusForbidden, fmt.Errorf("design %q is not owned by tenant %q", d.Name, p.Tenant))
			return
		}
		d.Tenant = p.Tenant
	}
	if err := s.store.Save(&d); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, d)
}

func (s *Server) handleDesignDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if p := callerOf(r); !p.crossTenant() {
		// Unknown names fall through to Delete's 404.
		if existing, err := s.store.Load(name); err == nil && existing.Tenant != p.Tenant {
			writeError(w, http.StatusForbidden, fmt.Errorf("design %q is not owned by tenant %q", name, p.Tenant))
			return
		}
	}
	if err := s.store.Delete(name); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleSaveConfigs(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	d, err := s.store.Load(name)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	// SaveConfigs drives a console on every router in the design: the
	// caller must own the design AND have each router in one of its own
	// labs — the same per-router gate as console exec.
	if p := callerOf(r); !p.crossTenant() {
		if d.Tenant != p.Tenant {
			writeError(w, http.StatusForbidden, fmt.Errorf("design %q is not owned by tenant %q", name, p.Tenant))
			return
		}
		for _, router := range d.Routers {
			if !s.routerInTenantLab(p.Tenant, router) {
				writeError(w, http.StatusForbidden, fmt.Errorf("router %q is not in one of tenant %q's labs", router, p.Tenant))
				return
			}
		}
	}
	if err := s.dep.SaveConfigs(r.Context(), d); err != nil {
		writeError(w, ctxStatus(err, http.StatusBadGateway), err)
		return
	}
	if err := s.store.Save(d); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, d)
}

// --- reservations ------------------------------------------------------------

func (s *Server) handleReserve(w http.ResponseWriter, r *http.Request) {
	var req ReserveRequest
	if !readJSON(w, r, &req) {
		return
	}
	if p := callerOf(r); !p.crossTenant() {
		if req.User == "" {
			req.User = p.Tenant
		} else if req.User != p.Tenant {
			writeError(w, http.StatusForbidden, fmt.Errorf("tenant %q cannot reserve as %q", p.Tenant, req.User))
			return
		}
	}
	res, err := s.cal.Reserve(req.User, req.Routers, req.Start, req.End)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleCancelReservation(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad reservation id"))
		return
	}
	// Tenant cancels go through CancelOwned so the ownership check and
	// the removal are atomic under the calendar lock.
	var cancelErr error
	if p := callerOf(r); p.crossTenant() {
		cancelErr = s.cal.Cancel(id)
	} else {
		cancelErr = s.cal.CancelOwned(id, p.Tenant)
	}
	if cancelErr != nil {
		status := http.StatusNotFound
		if errors.Is(cancelErr, reservation.ErrNotOwner) {
			status = http.StatusForbidden
		}
		writeError(w, status, cancelErr)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cal.Schedule(r.PathValue("router")))
}

func (s *Server) handleNextFree(w http.ResponseWriter, r *http.Request) {
	var req NextFreeRequest
	if !readJSON(w, r, &req) {
		return
	}
	horizon := req.Horizon
	if horizon == 0 {
		horizon = 14 * 24 * time.Hour
	}
	start, err := s.cal.NextFree(req.Routers, req.Duration, s.clock.Now(), horizon)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, NextFreeResponse{Start: start})
}

// --- deployments ---------------------------------------------------------------

func (s *Server) handleDeploymentList(w http.ResponseWriter, _ *http.Request) {
	var out []DeploymentInfo
	for _, d := range s.rs.Deployments() {
		out = append(out, DeploymentInfo{
			Name: d.Name, Owner: d.Owner, Tenant: d.Tenant,
			Links: len(d.Links), Routers: d.Routers,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// deploymentTenant resolves who a deployment is accounted to: the
// recorded tenant, else the owner (pre-tenancy records).
func deploymentTenant(d routeserver.Deployment) string {
	if d.Tenant != "" {
		return d.Tenant
	}
	return d.Owner
}

// ownsDeployment reports whether the principal may act on the named
// deployment. Unknown names are allowed through so the handler's own
// 404 answers — existence is not hidden, control is.
func (s *Server) ownsDeployment(p principal, name string) bool {
	if p.crossTenant() {
		return true
	}
	for _, d := range s.rs.Deployments() {
		if d.Name == name {
			return deploymentTenant(d) == p.Tenant
		}
	}
	return true
}

func (s *Server) handleDeploy(w http.ResponseWriter, r *http.Request) {
	var req DeployRequest
	if !readJSON(w, r, &req) {
		return
	}
	p := callerOf(r)
	if !p.crossTenant() {
		if req.User == "" {
			req.User = p.Tenant
		} else if req.User != p.Tenant {
			writeError(w, http.StatusForbidden, fmt.Errorf("tenant %q cannot deploy as %q", p.Tenant, req.User))
			return
		}
	}
	d, err := s.store.Load(req.Design)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	// The deployment is accounted to the requesting user's tenant: quotas
	// and fair-share attribution follow req.User even when an operator
	// deploys on a tenant's behalf.
	if err := s.dep.DeployAs(r.Context(), req.User, req.User, d, req.RestoreConfigs); err != nil {
		status := ctxStatus(err, http.StatusConflict)
		if status == http.StatusServiceUnavailable {
			retryAfter(w, time.Second)
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, DeploymentInfo{Name: d.Name, Links: len(d.Links)})
}

func (s *Server) handleTeardown(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if p := callerOf(r); !s.ownsDeployment(p, name) {
		writeError(w, http.StatusForbidden, fmt.Errorf("deployment %q is not owned by tenant %q", name, p.Tenant))
		return
	}
	if err := s.dep.Teardown(r.PathValue("name")); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// --- traffic generation & capture ---------------------------------------------

// resolvePort maps (router, port) names to a PortKey.
func (s *Server) resolvePort(router, port string) (routeserver.PortKey, error) {
	ri, ok := s.rs.RouterByName(router)
	if !ok {
		return routeserver.PortKey{}, fmt.Errorf("router %q not in inventory", router)
	}
	pi, ok := ri.PortByName(port)
	if !ok {
		return routeserver.PortKey{}, fmt.Errorf("router %q has no port %q", router, port)
	}
	return routeserver.PortKey{Router: ri.ID, Port: pi.ID}, nil
}

// tenantPortGate enforces lab ownership on the traffic endpoints
// (generate, capture, stream): a tenant may inject into or tap only
// ports of routers inside its own labs. Writes the 403 itself and
// reports whether the caller may proceed.
func (s *Server) tenantPortGate(w http.ResponseWriter, r *http.Request, router string) bool {
	p := callerOf(r)
	if !p.crossTenant() && !s.routerInTenantLab(p.Tenant, router) {
		writeError(w, http.StatusForbidden, fmt.Errorf("router %q is not in one of tenant %q's labs", router, p.Tenant))
		return false
	}
	return true
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	var req GenerateRequest
	if !readJSON(w, r, &req) {
		return
	}
	if len(req.Frame) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty frame"))
		return
	}
	if !s.tenantPortGate(w, r, req.Router) {
		return
	}
	pk, err := s.resolvePort(req.Router, req.Port)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	count := req.Count
	if count <= 0 {
		count = 1
	}
	inject := s.rs.InjectPacket
	if req.FromPort {
		inject = s.rs.InjectFromPort
	}
	for i := 0; i < count; i++ {
		if err := inject(pk, req.Frame); err != nil {
			writeError(w, http.StatusBadGateway, err)
			return
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleCaptureOpen(w http.ResponseWriter, r *http.Request) {
	var req CaptureRequest
	if !readJSON(w, r, &req) {
		return
	}
	if !s.tenantPortGate(w, r, req.Router) {
		return
	}
	pk, err := s.resolvePort(req.Router, req.Port)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	cap := s.rs.CapturePort(pk, req.Depth)
	s.mu.Lock()
	id := s.nextCap
	s.nextCap++
	s.captures[id] = &ownedCapture{cap: cap, tenant: callerOf(r).Tenant}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, CaptureResponse{ID: id})
}

// capture resolves a capture handle the caller may access. A handle
// owned by another tenant answers 403, a missing one 404; ok=false
// means the error has been written.
func (s *Server) capture(w http.ResponseWriter, r *http.Request, id uint64) (*routeserver.Capture, bool) {
	s.mu.Lock()
	c, ok := s.captures[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no capture %d", id))
		return nil, false
	}
	if p := callerOf(r); !p.mayAccess(c.tenant) {
		writeError(w, http.StatusForbidden, fmt.Errorf("capture %d is not owned by tenant %q", id, p.Tenant))
		return nil, false
	}
	return c.cap, true
}

// handleCaptureRead drains up to max frames, waiting up to wait_ms for the
// first one — long-poll semantics for the automation API.
func (s *Server) handleCaptureRead(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad capture id"))
		return
	}
	cap, ok := s.capture(w, r, id)
	if !ok {
		return
	}
	max := 100
	if m := r.URL.Query().Get("max"); m != "" {
		if v, err := strconv.Atoi(m); err == nil && v > 0 {
			max = v
		}
	}
	wait := time.Duration(0)
	if ms := r.URL.Query().Get("wait_ms"); ms != "" {
		if v, err := strconv.Atoi(ms); err == nil && v > 0 {
			wait = time.Duration(v) * time.Millisecond
		}
	}
	frames := []CapturedFrame{}
	// One timer for the whole long-poll: time.After in the loop would
	// allocate a timer per iteration, each alive until expiry.
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for len(frames) < max {
		select {
		case cp, open := <-cap.Packets():
			if !open {
				writeJSON(w, http.StatusOK, frames)
				return
			}
			frames = append(frames, CapturedFrame{When: cp.When, Dir: cp.Dir.String(), Frame: cp.Frame})
		default:
			if len(frames) > 0 || wait == 0 {
				writeJSON(w, http.StatusOK, frames)
				return
			}
			select {
			case cp, open := <-cap.Packets():
				if !open {
					writeJSON(w, http.StatusOK, frames)
					return
				}
				frames = append(frames, CapturedFrame{When: cp.When, Dir: cp.Dir.String(), Frame: cp.Frame})
			case <-deadline.C:
				writeJSON(w, http.StatusOK, frames)
				return
			}
		}
	}
	writeJSON(w, http.StatusOK, frames)
}

func (s *Server) handleCaptureClose(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad capture id"))
		return
	}
	s.mu.Lock()
	cap, ok := s.captures[id]
	if ok {
		if p := callerOf(r); !p.mayAccess(cap.tenant) {
			s.mu.Unlock()
			writeError(w, http.StatusForbidden, fmt.Errorf("capture %d is not owned by tenant %q", id, p.Tenant))
			return
		}
		delete(s.captures, id)
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no capture %d", id))
		return
	}
	cap.cap.Stop()
	w.WriteHeader(http.StatusNoContent)
}

// handleCapturePcap drains up to max frames (waiting up to wait_ms total)
// and returns them as a classic pcap file, openable in standard tools.
func (s *Server) handleCapturePcap(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad capture id"))
		return
	}
	cap, ok := s.capture(w, r, id)
	if !ok {
		return
	}
	max := 1000
	if m := r.URL.Query().Get("max"); m != "" {
		if v, err := strconv.Atoi(m); err == nil && v > 0 {
			max = v
		}
	}
	wait := 200 * time.Millisecond
	if ms := r.URL.Query().Get("wait_ms"); ms != "" {
		if v, err := strconv.Atoi(ms); err == nil && v >= 0 {
			wait = time.Duration(v) * time.Millisecond
		}
	}
	w.Header().Set("Content-Type", "application/vnd.tcpdump.pcap")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=capture-%d.pcap", id))
	pw := capture.NewWriter(w)
	// Single timer across the drain loop (see handleCaptureRead).
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	n := 0
	for n < max {
		select {
		case cp, open := <-cap.Packets():
			if !open {
				pw.Flush()
				return
			}
			if pw.WriteFrame(cp.When, cp.Frame) != nil {
				return
			}
			n++
		case <-deadline.C:
			pw.Flush()
			return
		}
	}
	pw.Flush()
}

// --- traffic streams ---------------------------------------------------------

func (s *Server) handleStreamStart(w http.ResponseWriter, r *http.Request) {
	var req StreamRequest
	if !readJSON(w, r, &req) {
		return
	}
	if !s.tenantPortGate(w, r, req.Router) {
		return
	}
	pk, err := s.resolvePort(req.Router, req.Port)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	st, err := s.rs.StartStream(pk, req.Frame, req.PPS, req.Count, req.FromPort)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	id := s.nextStream
	s.nextStream++
	s.streams[id] = &ownedStream{st: st, tenant: callerOf(r).Tenant}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, StreamStatus{ID: id, Running: true})
}

// stream resolves a stream handle the caller may access (see capture).
func (s *Server) stream(w http.ResponseWriter, r *http.Request, id uint64) (*routeserver.Stream, bool) {
	s.mu.Lock()
	st, ok := s.streams[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no stream %d", id))
		return nil, false
	}
	if p := callerOf(r); !p.mayAccess(st.tenant) {
		writeError(w, http.StatusForbidden, fmt.Errorf("stream %d is not owned by tenant %q", id, p.Tenant))
		return nil, false
	}
	return st.st, true
}

func (s *Server) handleStreamStatus(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad stream id"))
		return
	}
	st, ok := s.stream(w, r, id)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, StreamStatus{ID: id, Sent: st.Sent(), Running: st.Running()})
}

func (s *Server) handleStreamStop(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad stream id"))
		return
	}
	s.mu.Lock()
	st, ok := s.streams[id]
	if ok {
		if p := callerOf(r); !p.mayAccess(st.tenant) {
			s.mu.Unlock()
			writeError(w, http.StatusForbidden, fmt.Errorf("stream %d is not owned by tenant %q", id, p.Tenant))
			return
		}
		delete(s.streams, id)
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no stream %d", id))
		return
	}
	st.st.Stop()
	writeJSON(w, http.StatusOK, StreamStatus{ID: id, Sent: st.st.Sent(), Running: false})
}

// handleFlash loads a firmware version onto a router through its console
// and records the new version in the inventory (paper §2.1 future work).
func (s *Server) handleFlash(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req FlashRequest
	if !readJSON(w, r, &req) {
		return
	}
	// Flashing mutates shared hardware through its console: same
	// ownership gate as console exec.
	if p := callerOf(r); !p.crossTenant() && !s.routerInTenantLab(p.Tenant, name) {
		writeError(w, http.StatusForbidden, fmt.Errorf("router %q is not in one of tenant %q's labs", name, p.Tenant))
		return
	}
	if req.Version == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty firmware version"))
		return
	}
	ri, ok := s.rs.RouterByName(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("router %q not in inventory", name))
		return
	}
	sess, err := s.rs.OpenConsole(ri.ID)
	if err != nil {
		writeError(w, http.StatusBadGateway, err)
		return
	}
	defer sess.Close()
	drv := console.NewDriverClock(sess, 10*time.Second, s.clock)
	drv.Drain(20 * time.Millisecond)
	if _, err := drv.CommandCtx(r.Context(), "enable"); err != nil {
		writeError(w, ctxStatus(err, http.StatusBadGateway), err)
		return
	}
	out, err := drv.CommandCtx(r.Context(), "flash "+req.Version)
	if err != nil {
		writeError(w, ctxStatus(err, http.StatusBadGateway), err)
		return
	}
	if !strings.Contains(out, "flashed") {
		writeError(w, http.StatusBadGateway, fmt.Errorf("device refused flash: %s", out))
		return
	}
	s.rs.SetRouterFirmware(name, req.Version)
	w.WriteHeader(http.StatusNoContent)
}

// handleRevokeBefore sets (or clears) the authority-level token
// revocation cutoff: every bearer token issued before the cutoff stops
// verifying — the kill switch for a leaked token, no secret rotation
// required. Admin-only: revocation affects every principal at once.
func (s *Server) handleRevokeBefore(w http.ResponseWriter, r *http.Request) {
	if p := callerOf(r); !p.Role.AtLeast(identity.RoleAdmin) {
		writeError(w, http.StatusForbidden, fmt.Errorf("token revocation requires the admin role"))
		return
	}
	if s.ident == nil {
		writeError(w, http.StatusConflict, fmt.Errorf("identity layer not configured (-auth-secret unset)"))
		return
	}
	var req RevokeBeforeRequest
	if !readJSON(w, r, &req) {
		return
	}
	var cutoff time.Time
	switch {
	case req.Now:
		cutoff = s.clock.Now()
	case req.Before != "":
		t, err := time.Parse(time.RFC3339, req.Before)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad before timestamp (want RFC3339): %w", err))
			return
		}
		cutoff = t
	case req.Clear:
		// Explicit clear: the zero cutoff lifts revocation.
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf(`set "now" or "before" to revoke, or "clear": true to lift the cutoff`))
		return
	}
	s.ident.SetRevokeBefore(cutoff)
	resp := RevokeBeforeResponse{}
	if got := s.ident.RevokeBefore(); !got.IsZero() {
		resp.Before = got.UTC().Format(time.RFC3339)
	}
	s.log.Info("token revocation cutoff updated", "before", resp.Before)
	writeJSON(w, http.StatusOK, resp)
}

// --- console ---------------------------------------------------------------------

// routerInTenantLab reports whether the named router is currently part
// of one of the tenant's deployments — the ownership gate on console
// access. A tenant may drive consoles only inside its own labs; the
// check runs once at session join, never per byte.
func (s *Server) routerInTenantLab(tenant, router string) bool {
	ri, ok := s.rs.RouterByName(router)
	if !ok {
		return false
	}
	for _, d := range s.rs.Deployments() {
		if deploymentTenant(d) != tenant {
			continue
		}
		for _, rid := range d.Routers {
			if rid == ri.ID {
				return true
			}
		}
	}
	return false
}

func (s *Server) handleConsoleExec(w http.ResponseWriter, r *http.Request) {
	var req ConsoleExecRequest
	if !readJSON(w, r, &req) {
		return
	}
	if p := callerOf(r); !p.crossTenant() && !s.routerInTenantLab(p.Tenant, req.Router) {
		writeError(w, http.StatusForbidden, fmt.Errorf("router %q is not in one of tenant %q's labs", req.Router, p.Tenant))
		return
	}
	ri, ok := s.rs.RouterByName(req.Router)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("router %q not in inventory", req.Router))
		return
	}
	sess, err := s.rs.OpenConsole(ri.ID)
	if err != nil {
		writeError(w, http.StatusBadGateway, err)
		return
	}
	defer sess.Close()
	timeout := 5 * time.Second
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	drv := console.NewDriverClock(sess, timeout, s.clock)
	drv.Drain(20 * time.Millisecond)
	resp := ConsoleExecResponse{}
	for _, cmd := range req.Commands {
		out, err := drv.CommandCtx(r.Context(), cmd)
		if err != nil {
			writeError(w, ctxStatus(err, http.StatusBadGateway), fmt.Errorf("command %q: %w", cmd, err))
			return
		}
		resp.Outputs = append(resp.Outputs, out)
	}
	writeJSON(w, http.StatusOK, resp)
}
