package api

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"rnl/internal/capture"
	"rnl/internal/console"
	"rnl/internal/obs"
	"rnl/internal/reservation"
	"rnl/internal/routeserver"
	"rnl/internal/topology"
)

// Server is the RNL web server: the browser UI's backend and the
// web-services API.
type Server struct {
	rs    *routeserver.Server
	store *topology.Store
	cal   *reservation.Calendar
	dep   *topology.Deployer
	log   *slog.Logger
	token string

	httpLn  net.Listener
	httpSrv *http.Server

	mu         sync.Mutex
	captures   map[uint64]*routeserver.Capture
	nextCap    uint64
	streams    map[uint64]*routeserver.Stream
	nextStream uint64
}

// Config assembles a web server.
type Config struct {
	RouteServer *routeserver.Server
	Store       *topology.Store
	Calendar    *reservation.Calendar
	// Token, when non-empty, is required in the X-RNL-Token header of
	// every API request.
	Token string
	// ConsoleTimeout bounds console automation commands.
	ConsoleTimeout time.Duration
	Logger         *slog.Logger
}

// NewServer builds the web server (not yet listening).
func NewServer(cfg Config) *Server {
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	s := &Server{
		rs:    cfg.RouteServer,
		store: cfg.Store,
		cal:   cfg.Calendar,
		log:   logger,
		token: cfg.Token,
		dep: &topology.Deployer{
			Server:         cfg.RouteServer,
			Cal:            cfg.Calendar,
			ConsoleTimeout: cfg.ConsoleTimeout,
		},
		captures:   make(map[uint64]*routeserver.Capture),
		nextCap:    1,
		streams:    make(map[uint64]*routeserver.Stream),
		nextStream: 1,
	}
	return s
}

// Handler returns the HTTP handler (useful for tests via httptest).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/inventory", s.auth(s.handleInventory))
	mux.HandleFunc("GET /api/stats", s.auth(s.handleStats))

	// Observability endpoints are unauthenticated by design: liveness
	// probes and metric scrapers don't carry API tokens, and neither
	// endpoint exposes user data.
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)

	mux.HandleFunc("GET /api/designs", s.auth(s.handleDesignList))
	mux.HandleFunc("GET /api/designs/{name}", s.auth(s.handleDesignGet))
	mux.HandleFunc("PUT /api/designs/{name}", s.auth(s.handleDesignPut))
	mux.HandleFunc("DELETE /api/designs/{name}", s.auth(s.handleDesignDelete))
	mux.HandleFunc("POST /api/designs/{name}/save-configs", s.auth(s.handleSaveConfigs))

	mux.HandleFunc("POST /api/reservations", s.auth(s.handleReserve))
	mux.HandleFunc("DELETE /api/reservations/{id}", s.auth(s.handleCancelReservation))
	mux.HandleFunc("GET /api/schedule/{router}", s.auth(s.handleSchedule))
	mux.HandleFunc("POST /api/next-free", s.auth(s.handleNextFree))

	mux.HandleFunc("GET /api/deployments", s.auth(s.handleDeploymentList))
	mux.HandleFunc("POST /api/deployments", s.auth(s.handleDeploy))
	mux.HandleFunc("DELETE /api/deployments/{name}", s.auth(s.handleTeardown))

	mux.HandleFunc("POST /api/generate", s.auth(s.handleGenerate))
	mux.HandleFunc("POST /api/captures", s.auth(s.handleCaptureOpen))
	mux.HandleFunc("GET /api/captures/{id}", s.auth(s.handleCaptureRead))
	mux.HandleFunc("GET /api/captures/{id}/pcap", s.auth(s.handleCapturePcap))
	mux.HandleFunc("DELETE /api/captures/{id}", s.auth(s.handleCaptureClose))

	mux.HandleFunc("POST /api/streams", s.auth(s.handleStreamStart))
	mux.HandleFunc("GET /api/streams/{id}", s.auth(s.handleStreamStatus))
	mux.HandleFunc("DELETE /api/streams/{id}", s.auth(s.handleStreamStop))

	mux.HandleFunc("POST /api/console/exec", s.auth(s.handleConsoleExec))
	mux.HandleFunc("POST /api/routers/{name}/firmware", s.auth(s.handleFlash))
	mux.HandleFunc("GET /api/console/raw/{name}", s.auth(s.handleConsoleRaw))

	mux.HandleFunc("GET /", s.handleIndex)
	return mux
}

// Listen serves HTTP on addr and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("api: listen %s: %w", addr, err)
	}
	s.httpLn = ln
	s.httpSrv = &http.Server{Handler: s.Handler()}
	go s.httpSrv.Serve(ln)
	return ln.Addr().String(), nil
}

// Close stops the HTTP server and open captures.
func (s *Server) Close() {
	if s.httpSrv != nil {
		s.httpSrv.Close()
	}
	s.mu.Lock()
	caps := make([]*routeserver.Capture, 0, len(s.captures))
	for _, c := range s.captures {
		caps = append(caps, c)
	}
	s.captures = map[uint64]*routeserver.Capture{}
	s.mu.Unlock()
	for _, c := range caps {
		c.Stop()
	}
}

// auth enforces the API token when configured.
func (s *Server) auth(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.token != "" && r.Header.Get("X-RNL-Token") != s.token {
			writeError(w, http.StatusUnauthorized, fmt.Errorf("missing or wrong X-RNL-Token"))
			return
		}
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

// --- inventory & stats -----------------------------------------------------

func (s *Server) handleInventory(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.rs.Inventory())
}

// handleStats serves the flat JSON counter snapshot: the route server's
// legacy per-instance counters plus every rnl_* metric in the process
// observability registry (histograms as <name>_count).
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	out := s.rs.StatsSnapshot()
	for k, v := range obs.Default().Snapshot().Flatten() {
		out[k] = v
	}
	writeJSON(w, http.StatusOK, out)
}

// handleMetrics serves the Prometheus text exposition of the process
// observability registry.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.Default().WritePrometheus(w)
}

// handleHealthz is the liveness probe: 200 while the RIS tunnel accept
// loop is up, 503 once it has died, with the health details as JSON.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := s.rs.Health()
	status := http.StatusOK
	if !h.Listening {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// --- designs -----------------------------------------------------------------

func (s *Server) handleDesignList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.store.List())
}

func (s *Server) handleDesignGet(w http.ResponseWriter, r *http.Request) {
	d, err := s.store.Load(r.PathValue("name"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, d)
}

func (s *Server) handleDesignPut(w http.ResponseWriter, r *http.Request) {
	var d topology.Design
	if !readJSON(w, r, &d) {
		return
	}
	if d.Name == "" {
		d.Name = r.PathValue("name")
	}
	if d.Name != r.PathValue("name") {
		writeError(w, http.StatusBadRequest, fmt.Errorf("design name %q does not match URL %q", d.Name, r.PathValue("name")))
		return
	}
	if err := s.store.Save(&d); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, d)
}

func (s *Server) handleDesignDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.store.Delete(r.PathValue("name")); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleSaveConfigs(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	d, err := s.store.Load(name)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if err := s.dep.SaveConfigs(d); err != nil {
		writeError(w, http.StatusBadGateway, err)
		return
	}
	if err := s.store.Save(d); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, d)
}

// --- reservations ------------------------------------------------------------

func (s *Server) handleReserve(w http.ResponseWriter, r *http.Request) {
	var req ReserveRequest
	if !readJSON(w, r, &req) {
		return
	}
	res, err := s.cal.Reserve(req.User, req.Routers, req.Start, req.End)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleCancelReservation(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad reservation id"))
		return
	}
	if err := s.cal.Cancel(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cal.Schedule(r.PathValue("router")))
}

func (s *Server) handleNextFree(w http.ResponseWriter, r *http.Request) {
	var req NextFreeRequest
	if !readJSON(w, r, &req) {
		return
	}
	horizon := req.Horizon
	if horizon == 0 {
		horizon = 14 * 24 * time.Hour
	}
	start, err := s.cal.NextFree(req.Routers, req.Duration, time.Now(), horizon)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, NextFreeResponse{Start: start})
}

// --- deployments ---------------------------------------------------------------

func (s *Server) handleDeploymentList(w http.ResponseWriter, _ *http.Request) {
	var out []DeploymentInfo
	for _, d := range s.rs.Deployments() {
		out = append(out, DeploymentInfo{Name: d.Name, Links: len(d.Links), Routers: d.Routers})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDeploy(w http.ResponseWriter, r *http.Request) {
	var req DeployRequest
	if !readJSON(w, r, &req) {
		return
	}
	d, err := s.store.Load(req.Design)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if err := s.dep.Deploy(req.User, d, req.RestoreConfigs); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, DeploymentInfo{Name: d.Name, Links: len(d.Links)})
}

func (s *Server) handleTeardown(w http.ResponseWriter, r *http.Request) {
	if err := s.dep.Teardown(r.PathValue("name")); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// --- traffic generation & capture ---------------------------------------------

// resolvePort maps (router, port) names to a PortKey.
func (s *Server) resolvePort(router, port string) (routeserver.PortKey, error) {
	ri, ok := s.rs.RouterByName(router)
	if !ok {
		return routeserver.PortKey{}, fmt.Errorf("router %q not in inventory", router)
	}
	pi, ok := ri.PortByName(port)
	if !ok {
		return routeserver.PortKey{}, fmt.Errorf("router %q has no port %q", router, port)
	}
	return routeserver.PortKey{Router: ri.ID, Port: pi.ID}, nil
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	var req GenerateRequest
	if !readJSON(w, r, &req) {
		return
	}
	if len(req.Frame) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty frame"))
		return
	}
	pk, err := s.resolvePort(req.Router, req.Port)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	count := req.Count
	if count <= 0 {
		count = 1
	}
	inject := s.rs.InjectPacket
	if req.FromPort {
		inject = s.rs.InjectFromPort
	}
	for i := 0; i < count; i++ {
		if err := inject(pk, req.Frame); err != nil {
			writeError(w, http.StatusBadGateway, err)
			return
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleCaptureOpen(w http.ResponseWriter, r *http.Request) {
	var req CaptureRequest
	if !readJSON(w, r, &req) {
		return
	}
	pk, err := s.resolvePort(req.Router, req.Port)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	cap := s.rs.CapturePort(pk, req.Depth)
	s.mu.Lock()
	id := s.nextCap
	s.nextCap++
	s.captures[id] = cap
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, CaptureResponse{ID: id})
}

func (s *Server) capture(id uint64) (*routeserver.Capture, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.captures[id]
	return c, ok
}

// handleCaptureRead drains up to max frames, waiting up to wait_ms for the
// first one — long-poll semantics for the automation API.
func (s *Server) handleCaptureRead(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad capture id"))
		return
	}
	cap, ok := s.capture(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no capture %d", id))
		return
	}
	max := 100
	if m := r.URL.Query().Get("max"); m != "" {
		if v, err := strconv.Atoi(m); err == nil && v > 0 {
			max = v
		}
	}
	wait := time.Duration(0)
	if ms := r.URL.Query().Get("wait_ms"); ms != "" {
		if v, err := strconv.Atoi(ms); err == nil && v > 0 {
			wait = time.Duration(v) * time.Millisecond
		}
	}
	frames := []CapturedFrame{}
	deadline := time.After(wait)
	for len(frames) < max {
		select {
		case cp, open := <-cap.Packets():
			if !open {
				writeJSON(w, http.StatusOK, frames)
				return
			}
			frames = append(frames, CapturedFrame{When: cp.When, Dir: cp.Dir.String(), Frame: cp.Frame})
		default:
			if len(frames) > 0 || wait == 0 {
				writeJSON(w, http.StatusOK, frames)
				return
			}
			select {
			case cp, open := <-cap.Packets():
				if !open {
					writeJSON(w, http.StatusOK, frames)
					return
				}
				frames = append(frames, CapturedFrame{When: cp.When, Dir: cp.Dir.String(), Frame: cp.Frame})
			case <-deadline:
				writeJSON(w, http.StatusOK, frames)
				return
			}
		}
	}
	writeJSON(w, http.StatusOK, frames)
}

func (s *Server) handleCaptureClose(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad capture id"))
		return
	}
	s.mu.Lock()
	cap, ok := s.captures[id]
	delete(s.captures, id)
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no capture %d", id))
		return
	}
	cap.Stop()
	w.WriteHeader(http.StatusNoContent)
}

// handleCapturePcap drains up to max frames (waiting up to wait_ms total)
// and returns them as a classic pcap file, openable in standard tools.
func (s *Server) handleCapturePcap(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad capture id"))
		return
	}
	cap, ok := s.capture(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no capture %d", id))
		return
	}
	max := 1000
	if m := r.URL.Query().Get("max"); m != "" {
		if v, err := strconv.Atoi(m); err == nil && v > 0 {
			max = v
		}
	}
	wait := 200 * time.Millisecond
	if ms := r.URL.Query().Get("wait_ms"); ms != "" {
		if v, err := strconv.Atoi(ms); err == nil && v >= 0 {
			wait = time.Duration(v) * time.Millisecond
		}
	}
	w.Header().Set("Content-Type", "application/vnd.tcpdump.pcap")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=capture-%d.pcap", id))
	pw := capture.NewWriter(w)
	deadline := time.After(wait)
	n := 0
	for n < max {
		select {
		case cp, open := <-cap.Packets():
			if !open {
				pw.Flush()
				return
			}
			if pw.WriteFrame(cp.When, cp.Frame) != nil {
				return
			}
			n++
		case <-deadline:
			pw.Flush()
			return
		}
	}
	pw.Flush()
}

// --- traffic streams ---------------------------------------------------------

func (s *Server) handleStreamStart(w http.ResponseWriter, r *http.Request) {
	var req StreamRequest
	if !readJSON(w, r, &req) {
		return
	}
	pk, err := s.resolvePort(req.Router, req.Port)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	st, err := s.rs.StartStream(pk, req.Frame, req.PPS, req.Count, req.FromPort)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	id := s.nextStream
	s.nextStream++
	s.streams[id] = st
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, StreamStatus{ID: id, Running: true})
}

func (s *Server) stream(id uint64) (*routeserver.Stream, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.streams[id]
	return st, ok
}

func (s *Server) handleStreamStatus(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad stream id"))
		return
	}
	st, ok := s.stream(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no stream %d", id))
		return
	}
	writeJSON(w, http.StatusOK, StreamStatus{ID: id, Sent: st.Sent(), Running: st.Running()})
}

func (s *Server) handleStreamStop(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad stream id"))
		return
	}
	s.mu.Lock()
	st, ok := s.streams[id]
	delete(s.streams, id)
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no stream %d", id))
		return
	}
	st.Stop()
	writeJSON(w, http.StatusOK, StreamStatus{ID: id, Sent: st.Sent(), Running: false})
}

// handleFlash loads a firmware version onto a router through its console
// and records the new version in the inventory (paper §2.1 future work).
func (s *Server) handleFlash(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req FlashRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Version == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty firmware version"))
		return
	}
	ri, ok := s.rs.RouterByName(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("router %q not in inventory", name))
		return
	}
	sess, err := s.rs.OpenConsole(ri.ID)
	if err != nil {
		writeError(w, http.StatusBadGateway, err)
		return
	}
	defer sess.Close()
	drv := console.NewDriver(sess, 10*time.Second)
	drv.Drain(20 * time.Millisecond)
	if _, err := drv.Command("enable"); err != nil {
		writeError(w, http.StatusBadGateway, err)
		return
	}
	out, err := drv.Command("flash " + req.Version)
	if err != nil {
		writeError(w, http.StatusBadGateway, err)
		return
	}
	if !strings.Contains(out, "flashed") {
		writeError(w, http.StatusBadGateway, fmt.Errorf("device refused flash: %s", out))
		return
	}
	s.rs.SetRouterFirmware(name, req.Version)
	w.WriteHeader(http.StatusNoContent)
}

// --- console ---------------------------------------------------------------------

func (s *Server) handleConsoleExec(w http.ResponseWriter, r *http.Request) {
	var req ConsoleExecRequest
	if !readJSON(w, r, &req) {
		return
	}
	ri, ok := s.rs.RouterByName(req.Router)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("router %q not in inventory", req.Router))
		return
	}
	sess, err := s.rs.OpenConsole(ri.ID)
	if err != nil {
		writeError(w, http.StatusBadGateway, err)
		return
	}
	defer sess.Close()
	timeout := 5 * time.Second
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	drv := console.NewDriver(sess, timeout)
	drv.Drain(20 * time.Millisecond)
	resp := ConsoleExecResponse{}
	for _, cmd := range req.Commands {
		out, err := drv.Command(cmd)
		if err != nil {
			writeError(w, http.StatusBadGateway, fmt.Errorf("command %q: %w", cmd, err))
			return
		}
		resp.Outputs = append(resp.Outputs, out)
	}
	writeJSON(w, http.StatusOK, resp)
}
