package api_test

import (
	"bytes"
	"testing"
	"time"

	"rnl/internal/api"
	"rnl/internal/capture"
	"rnl/internal/lab"
	"rnl/internal/packet"
	"rnl/internal/topology"
)

// streamLab stands up two linked hosts and returns the cloud plus a probe
// frame from h1 to h2.
func streamLab(t *testing.T) (*lab.Cloud, []byte) {
	t.Helper()
	c := newTestCloud(t, lab.Options{})
	h1, _, err := c.AddHost("st-h1", "10.0.0.1/24", "")
	if err != nil {
		t.Fatal(err)
	}
	h2, _, err := c.AddHost("st-h2", "10.0.0.2/24", "")
	if err != nil {
		t.Fatal(err)
	}
	d := &topology.Design{Name: "st-lab", Routers: []string{"st-h1", "st-h2"}}
	if err := d.Connect("st-h1", "eth0", "st-h2", "eth0"); err != nil {
		t.Fatal(err)
	}
	if err := c.Client.SaveDesign(d); err != nil {
		t.Fatal(err)
	}
	if err := c.DeployDesign(d); err != nil {
		t.Fatal(err)
	}
	frame, err := packet.BuildUDP(h1.MAC(), h2.MAC(), h1.IP(), h2.IP(), 5, 6000, []byte("stream-pkt"))
	if err != nil {
		t.Fatal(err)
	}
	return c, frame
}

func TestStreamGeneratesAtRate(t *testing.T) {
	c, frame := streamLab(t)
	id, err := c.Client.StartStream(api.StreamRequest{
		Router: "st-h2", Port: "eth0", Frame: frame, PPS: 500, Count: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	var st api.StreamStatus
	for time.Now().Before(deadline) {
		st, err = c.Client.StreamStatus(id)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Running {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.Running || st.Sent != 50 {
		t.Fatalf("stream status = %+v, want 50 sent and stopped", st)
	}
	// 50 frames at 500 pps should take ≈100 ms — the stream is
	// rate-controlled, not a blast (checked loosely via the counters the
	// route server kept).
	stats, _ := c.Client.Stats()
	if stats["packets_injected"] < 50 {
		t.Errorf("injected = %d, want >= 50", stats["packets_injected"])
	}
}

func TestStreamStopsEarly(t *testing.T) {
	c, frame := streamLab(t)
	id, err := c.Client.StartStream(api.StreamRequest{
		Router: "st-h2", Port: "eth0", Frame: frame, PPS: 100, // unbounded count
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	st, err := c.Client.StopStream(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Running {
		t.Error("stream should be stopped")
	}
	if st.Sent == 0 {
		t.Error("stream should have sent something before Stop")
	}
	// Stopped stream is gone.
	if _, err := c.Client.StreamStatus(id); err == nil {
		t.Error("status of a removed stream should fail")
	}
}

func TestStreamValidation(t *testing.T) {
	c, frame := streamLab(t)
	if _, err := c.Client.StartStream(api.StreamRequest{Router: "ghost", Port: "x", Frame: frame, PPS: 10}); err == nil {
		t.Error("unknown router should fail")
	}
	if _, err := c.Client.StartStream(api.StreamRequest{Router: "st-h1", Port: "eth0", Frame: frame, PPS: 0}); err == nil {
		t.Error("zero rate should fail")
	}
	if _, err := c.Client.StartStream(api.StreamRequest{Router: "st-h1", Port: "eth0", PPS: 10}); err == nil {
		t.Error("empty frame should fail")
	}
}

func TestPcapDownload(t *testing.T) {
	c, frame := streamLab(t)
	capID, err := c.Client.OpenCapture(api.CaptureRequest{Router: "st-h2", Port: "eth0"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Client.CloseCapture(capID)
	if err := c.Client.Generate(api.GenerateRequest{Router: "st-h2", Port: "eth0", Frame: frame, Count: 5}); err != nil {
		t.Fatal(err)
	}
	raw, err := c.Client.DownloadPcap(capID, 100, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	r, err := capture.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("downloaded bytes are not valid pcap: %v", err)
	}
	n := 0
	for {
		rec, err := r.Next()
		if err != nil {
			break
		}
		n++
		p := packet.NewPacket(rec.Frame, packet.LayerTypeEthernet, packet.Default)
		if app := p.ApplicationLayer(); app == nil || string(app.Payload()) != "stream-pkt" {
			t.Errorf("pcap record %d payload wrong", n)
		}
	}
	if n != 5 {
		t.Errorf("pcap contains %d records, want 5", n)
	}
}
