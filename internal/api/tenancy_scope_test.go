package api_test

// Tenant scoping on the traffic, firmware, design and idempotency
// surfaces: every path that can read another tenant's packets, drive a
// console in another tenant's lab, or replay another tenant's recorded
// response must be gated on ownership, not just authentication.

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"rnl/internal/api"
	"rnl/internal/identity"
)

func want403(t *testing.T, what string, err error) {
	t.Helper()
	if err == nil || !strings.Contains(err.Error(), "403") {
		t.Fatalf("%s error = %v, want 403", what, err)
	}
}

// TestCrossTenantTrafficEndpointsDenied pins the ownership gates on the
// traffic plane: a tenant may inject frames, open captures, run streams
// and flash firmware only on routers inside its own labs, and capture /
// stream handles stay private to the tenant that opened them.
func TestCrossTenantTrafficEndpointsDenied(t *testing.T) {
	c, auth := newTenantCloud(t, identity.Quota{}, 2)
	acme := tenantClient(t, c, auth, "acme", identity.RoleTenant)
	rival := tenantClient(t, c, auth, "rival", identity.RoleTenant)

	saveWire(t, acme, "acme-lab", "th0", "th1")
	reserveNow(t, acme, "", []string{"th0", "th1"}, time.Hour)
	if err := acme.Deploy(api.DeployRequest{Design: "acme-lab"}); err != nil {
		t.Fatal(err)
	}

	frame := make([]byte, 64)
	want403(t, "cross-tenant generate",
		rival.Generate(api.GenerateRequest{Router: "th0", Port: "eth0", Frame: frame}))
	_, err := rival.OpenCapture(api.CaptureRequest{Router: "th0", Port: "eth0"})
	want403(t, "cross-tenant capture open", err)
	_, err = rival.StartStream(api.StreamRequest{Router: "th0", Port: "eth0", Frame: frame, PPS: 10, Count: 1})
	want403(t, "cross-tenant stream start", err)
	want403(t, "cross-tenant flash", rival.FlashFirmware("th0", "4.2.0"))

	// The owner passes the same gates.
	if err := acme.Generate(api.GenerateRequest{Router: "th0", Port: "eth0", Frame: frame}); err != nil {
		t.Fatalf("owner generate: %v", err)
	}
	capID, err := acme.OpenCapture(api.CaptureRequest{Router: "th0", Port: "eth0"})
	if err != nil {
		t.Fatalf("owner capture open: %v", err)
	}

	// The rival cannot read, download or close the owner's tap.
	_, err = rival.ReadCapture(capID, 1, 0)
	want403(t, "cross-tenant capture read", err)
	_, err = rival.DownloadPcap(capID, 1, 0)
	want403(t, "cross-tenant pcap download", err)
	want403(t, "cross-tenant capture close", rival.CloseCapture(capID))
	if _, err := acme.ReadCapture(capID, 1, 0); err != nil {
		t.Fatalf("owner capture read after denied close: %v", err)
	}
	if err := acme.CloseCapture(capID); err != nil {
		t.Fatalf("owner capture close: %v", err)
	}

	// Same for stream handles.
	stID, err := acme.StartStream(api.StreamRequest{Router: "th0", Port: "eth0", Frame: frame, PPS: 10, Count: 1})
	if err != nil {
		t.Fatalf("owner stream start: %v", err)
	}
	_, err = rival.StreamStatus(stID)
	want403(t, "cross-tenant stream status", err)
	_, err = rival.StopStream(stID)
	want403(t, "cross-tenant stream stop", err)
	if _, err := acme.StopStream(stID); err != nil {
		t.Fatalf("owner stream stop after denied stop: %v", err)
	}

	// An operator crosses tenants on all of it.
	op := tenantClient(t, c, auth, "", identity.RoleOperator)
	opCap, err := op.OpenCapture(api.CaptureRequest{Router: "th0", Port: "eth0"})
	if err != nil {
		t.Fatalf("operator capture open: %v", err)
	}
	if err := op.CloseCapture(opCap); err != nil {
		t.Fatalf("operator capture close: %v", err)
	}
}

// TestDesignOwnershipOverAPI pins design tenancy: a tenant's saves stamp
// its tenant ID, other tenants cannot overwrite/delete the design or
// drive save-configs console automation through it, and save-configs
// additionally requires every design router to be in the caller's labs.
func TestDesignOwnershipOverAPI(t *testing.T) {
	c, auth := newTenantCloud(t, identity.Quota{}, 2)
	acme := tenantClient(t, c, auth, "acme", identity.RoleTenant)
	rival := tenantClient(t, c, auth, "rival", identity.RoleTenant)

	saveWire(t, acme, "acme-lab", "th0", "th1")
	d, err := acme.GetDesign("acme-lab")
	if err != nil || d.Tenant != "acme" {
		t.Fatalf("saved design tenant = %v, %v, want acme", d, err)
	}

	want403(t, "cross-tenant design overwrite",
		rival.SaveDesign(&api.Design{Name: "acme-lab", Routers: []string{"th0"}}))
	want403(t, "cross-tenant design delete", rival.DeleteDesign("acme-lab"))
	_, err = rival.SaveConfigs("acme-lab")
	want403(t, "cross-tenant save-configs", err)

	// The owner may update its own design; others' names stay free.
	saveWire(t, acme, "acme-lab", "th0", "th1")
	saveWire(t, rival, "rival-lab", "th0", "th1")

	// save-configs needs the routers deployed in the caller's own lab,
	// not merely a design that names them.
	_, err = acme.SaveConfigs("acme-lab")
	want403(t, "save-configs outside own labs", err)
	reserveNow(t, acme, "", []string{"th0", "th1"}, time.Hour)
	if err := acme.Deploy(api.DeployRequest{Design: "acme-lab"}); err != nil {
		t.Fatal(err)
	}
	if _, err := acme.SaveConfigs("acme-lab"); err != nil {
		t.Fatalf("owner save-configs on deployed lab: %v", err)
	}

	// Operators cross tenants.
	op := tenantClient(t, c, auth, "", identity.RoleOperator)
	if err := op.DeleteDesign("acme-lab"); err != nil {
		t.Fatalf("operator delete: %v", err)
	}
}

// TestIdempotencyKeyScopedByTenant pins the idempotency-cache keying: a
// client-supplied key is scoped to the verified principal, so one
// tenant reusing another tenant's key neither sees the other's recorded
// response nor loses its own mutation — while genuine same-principal
// retries still replay.
func TestIdempotencyKeyScopedByTenant(t *testing.T) {
	c, auth := newTenantCloud(t, identity.Quota{}, 1)
	acmeTok, err := auth.SignFor("acme", identity.RoleTenant, 0)
	if err != nil {
		t.Fatal(err)
	}
	rivalTok, err := auth.SignFor("rival", identity.RoleTenant, 0)
	if err != nil {
		t.Fatal(err)
	}

	post := func(token, body string) (int, string) {
		t.Helper()
		req, err := http.NewRequest("POST", "http://"+c.WebAddr+"/api/reservations", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-RNL-Token", token)
		req.Header.Set("X-RNL-Idempotency-Key", "shared-key")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}
	window := func(startHours int) string {
		start := time.Now().Add(time.Duration(startHours) * time.Hour).UTC()
		return fmt.Sprintf(`{"user":"","routers":["th0"],"start":%q,"end":%q}`,
			start.Format(time.RFC3339), start.Add(time.Hour).Format(time.RFC3339))
	}

	status, acmeBody := post(acmeTok, window(1))
	if status != http.StatusOK || !strings.Contains(acmeBody, `"acme"`) {
		t.Fatalf("acme reserve = %d %q", status, acmeBody)
	}
	// The rival's request with the same client key must execute as the
	// rival's own mutation, not replay acme's recorded response.
	status, rivalBody := post(rivalTok, window(3))
	if status != http.StatusOK || !strings.Contains(rivalBody, `"rival"`) {
		t.Fatalf("rival reserve with reused key = %d %q, want rival's own booking", status, rivalBody)
	}
	sched, err := api.NewClient("http://"+c.WebAddr, acmeTok).Schedule("th0")
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 2 {
		t.Fatalf("schedule has %d bookings, want 2 (both tenants' mutations executed)", len(sched))
	}
	// A genuine retry by the same principal still replays: no third
	// booking appears.
	if status, body := post(acmeTok, window(1)); status != http.StatusOK || body != acmeBody {
		t.Fatalf("acme retry = %d %q, want replay of %q", status, body, acmeBody)
	}
	if sched, err = api.NewClient("http://"+c.WebAddr, acmeTok).Schedule("th0"); err != nil || len(sched) != 2 {
		t.Fatalf("schedule after replay = %v, %v, want the original 2 bookings", sched, err)
	}
}
