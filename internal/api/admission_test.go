package api_test

// Admission-control tests for the web API: the 429 → backoff → success
// round-trip through the real HTTP stack, the client's Retry-After and
// idempotency-key discipline, and server-side duplicate suppression for
// retried mutating calls.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rnl/internal/api"
	"rnl/internal/lab"
	"rnl/internal/obs"
	"rnl/internal/topology"
)

func flatMetric(name string) uint64 {
	return obs.Default().Snapshot().Flatten()[name]
}

func pollUntil(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestOverloadedReadRetriesToSuccess(t *testing.T) {
	// One read slot, no queue: while a long poll holds the gate, every
	// other read is answered 429 + Retry-After. A retrying client must
	// ride that out and succeed once the long poll drains.
	c := newTestCloud(t, lab.Options{Admission: api.AdmissionConfig{
		ReadInFlight: 1,
		ReadQueue:    -1, // reject immediately instead of queueing
		RetryAfter:   time.Second,
	}})
	if _, _, err := c.AddHost("ovl-h1", "10.0.0.1/24", ""); err != nil {
		t.Fatal(err)
	}
	capID, err := c.Client.OpenCapture(api.CaptureRequest{Router: "ovl-h1", Port: "eth0"})
	if err != nil {
		t.Fatal(err)
	}
	rejectedBefore := flatMetric("rnl_admission_api_read_rejected_total")

	// Occupy the only read slot with a long poll on an idle capture.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Client.ReadCapture(capID, 1, 2*time.Second)
	}()
	defer wg.Wait()
	pollUntil(t, 2*time.Second, func() bool {
		return flatMetric("rnl_admission_api_read_inflight") >= 1
	}, "long poll never occupied the read gate")

	// A no-retry client sees the overload response directly.
	impatient := api.NewClient("http://"+c.WebAddr, "", api.WithRetries(0))
	if _, err := impatient.Inventory(); err == nil || !strings.Contains(err.Error(), "429") {
		t.Fatalf("want HTTP 429 from the saturated read gate, got: %v", err)
	}

	// A retrying client backs off — honouring the 1s Retry-After hint,
	// which dwarfs its own 300ms backoff cap — and gets through.
	patient := api.NewClient("http://"+c.WebAddr, "",
		api.WithRetries(6), api.WithRetryBackoff(50*time.Millisecond, 300*time.Millisecond))
	start := time.Now()
	inv, err := patient.Inventory()
	if err != nil {
		t.Fatalf("retrying client never got through: %v", err)
	}
	if len(inv) != 1 {
		t.Errorf("inventory after retry = %d routers, want 1", len(inv))
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Errorf("retry succeeded after %v: the 1s Retry-After hint was not honoured", elapsed)
	}
	if d := flatMetric("rnl_admission_api_read_rejected_total") - rejectedBefore; d < 2 {
		t.Errorf("read gate rejected %d callers, want >= 2 (impatient + patient's first try)", d)
	}
}

func TestClientRetryAfterAndKeyReuse(t *testing.T) {
	// Against a hand-rolled server: the first deploy attempt is answered
	// 429 with Retry-After: 1, the second succeeds. The client must wait
	// out the hint and present the SAME idempotency key both times —
	// that's what makes the retry safe.
	var mu sync.Mutex
	var keys []string
	var stamps []time.Time
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/api/deployments" {
			http.NotFound(w, r)
			return
		}
		mu.Lock()
		keys = append(keys, r.Header.Get("X-RNL-Idempotency-Key"))
		stamps = append(stamps, time.Now())
		n := len(keys)
		mu.Unlock()
		if n == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"overloaded"}`)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	cl := api.NewClient(srv.URL, "", api.WithRetryBackoff(10*time.Millisecond, 20*time.Millisecond))
	if err := cl.Deploy(api.DeployRequest{Design: "d", User: "u"}); err != nil {
		t.Fatalf("deploy should succeed on the retry: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(keys) != 2 {
		t.Fatalf("server saw %d attempts, want 2", len(keys))
	}
	if keys[0] == "" {
		t.Fatal("deploy carried no idempotency key")
	}
	if keys[0] != keys[1] {
		t.Errorf("retry minted a fresh key (%q then %q); retries must reuse the key", keys[0], keys[1])
	}
	if gap := stamps[1].Sub(stamps[0]); gap < 900*time.Millisecond {
		t.Errorf("retry arrived %v after the 429; the 1s Retry-After hint was not honoured", gap)
	}
}

func TestDeployIdempotencySuppressesDuplicates(t *testing.T) {
	// Server side of the same contract: concurrent and sequential
	// duplicates of a keyed deploy collapse onto one execution, with the
	// recorded response replayed — exactly one deployment installed.
	c := newTestCloud(t, lab.Options{})
	if _, _, err := c.AddHost("idm-h1", "10.0.0.1/24", ""); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.AddHost("idm-h2", "10.0.0.2/24", ""); err != nil {
		t.Fatal(err)
	}
	d := &topology.Design{Name: "idem-lab", Owner: "alice", Routers: []string{"idm-h1", "idm-h2"}}
	if err := d.Connect("idm-h1", "eth0", "idm-h2", "eth0"); err != nil {
		t.Fatal(err)
	}
	if err := c.Client.SaveDesign(d); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	if _, err := c.Client.Reserve(api.ReserveRequest{
		User: "alice", Routers: d.Routers, Start: now.Add(-time.Minute), End: now.Add(time.Hour),
	}); err != nil {
		t.Fatal(err)
	}

	hitsBefore := flatMetric("rnl_admission_idem_hits_total")
	post := func(key string) (int, string) {
		req, err := http.NewRequest("POST", "http://"+c.WebAddr+"/api/deployments",
			strings.NewReader(`{"design":"idem-lab","user":"alice"}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if key != "" {
			req.Header.Set("X-RNL-Idempotency-Key", key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// Two racing requests with the same key: both must succeed (one runs,
	// the other waits and gets the recorded response replayed).
	const key = "deploy-idem-lab-attempt-1"
	type result struct {
		status int
		body   string
	}
	results := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			st, body := post(key)
			results <- result{st, body}
		}()
	}
	first, second := <-results, <-results
	if first.status >= 300 || second.status >= 300 {
		t.Fatalf("concurrent keyed deploys: %d %q / %d %q — both should succeed",
			first.status, first.body, second.status, second.body)
	}
	if first.status != second.status || first.body != second.body {
		t.Errorf("duplicate got a different response: %d %q vs %d %q",
			first.status, first.body, second.status, second.body)
	}
	// A later retry with the same key replays instead of re-deploying.
	if st, body := post(key); st >= 300 {
		t.Errorf("sequential duplicate rejected: %d %q", st, body)
	}
	// Sanity: without the key's protection the same request is refused,
	// proving the duplicates above were suppressed, not re-executed.
	if st, _ := post("a-different-key"); st < 400 {
		t.Errorf("deploy under a fresh key returned %d; want an error for the already-deployed design", st)
	}

	deps, err := c.Client.Deployments()
	if err != nil {
		t.Fatal(err)
	}
	if len(deps) != 1 {
		t.Fatalf("%d deployments installed, want exactly 1", len(deps))
	}
	if d := flatMetric("rnl_admission_idem_hits_total") - hitsBefore; d < 2 {
		t.Errorf("idempotency cache recorded %d hits, want >= 2", d)
	}
}
