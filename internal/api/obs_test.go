package api_test

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"rnl/internal/lab"
	"rnl/internal/routeserver"
)

// TestMetricsEndpoint checks that GET /metrics serves Prometheus text
// covering every instrumented subsystem. The in-process lab links the
// wire, ris and routeserver packages into one binary, so all their
// series land in the shared default registry.
func TestMetricsEndpoint(t *testing.T) {
	c := newTestCloud(t, lab.Options{})
	if _, _, err := c.AddHost("obs-h1", "10.9.0.1/24", ""); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.AddHost("obs-h2", "10.9.0.2/24", ""); err != nil {
		t.Fatal(err)
	}
	// Drive a little traffic so the hot-path counters move.
	inv, err := c.Client.Inventory()
	if err != nil {
		t.Fatal(err)
	}
	link := routeserver.Link{
		A: routeserver.PortKey{Router: inv[0].ID, Port: inv[0].Ports[0].ID},
		B: routeserver.PortKey{Router: inv[1].ID, Port: inv[1].Ports[0].ID},
	}
	if err := c.RS.Deploy("obs-lab", []routeserver.Link{link}); err != nil {
		t.Fatal(err)
	}
	defer c.RS.Teardown("obs-lab")

	resp, err := http.Get("http://" + c.WebAddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition format", ct)
	}

	series := map[string]bool{}
	helpFor := map[string]bool{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			fields := strings.Fields(line)
			if len(fields) >= 3 {
				helpFor[fields[2]] = true
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// Sample line: "<name>[{labels}] <value>". Collapse histogram
		// _bucket/_sum/_count samples onto their parent series name.
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); base != name && helpFor[base] {
				name = base
				break
			}
		}
		if !strings.HasPrefix(name, "rnl_") {
			t.Errorf("metric %q does not follow the rnl_<subsystem>_<metric> scheme", name)
		}
		series[name] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	if len(series) < 15 {
		t.Errorf("/metrics exposes %d distinct rnl_ series, want >= 15: %v", len(series), keys(series))
	}
	for _, subsystem := range []string{"rnl_wire_", "rnl_ris_", "rnl_routeserver_"} {
		found := false
		for name := range series {
			if strings.HasPrefix(name, subsystem) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s* series on /metrics", subsystem)
		}
	}
	// Registration alone would expose series; the session/registration
	// gauges must also reflect the two live lab hosts.
	if !series["rnl_routeserver_routers_registered"] {
		t.Error("rnl_routeserver_routers_registered series missing")
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestHealthzEndpoint checks liveness reporting with a running tunnel
// accept loop and registered equipment.
func TestHealthzEndpoint(t *testing.T) {
	c := newTestCloud(t, lab.Options{})
	if _, _, err := c.AddHost("hz-h1", "10.9.1.1/24", ""); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + c.WebAddr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz = %d, want 200", resp.StatusCode)
	}
	var h struct {
		Listening   bool `json:"listening"`
		Sessions    int  `json:"sessions"`
		Routers     int  `json:"routers"`
		Deployments int  `json:"deployments"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.Listening {
		t.Error("healthz reports not listening while the tunnel accept loop is up")
	}
	if h.Sessions < 1 || h.Routers < 1 {
		t.Errorf("healthz = %+v, want at least 1 session and 1 router", h)
	}
}

// TestStatsIncludesObsMetrics checks that /api/stats keeps its legacy
// flat shape while also carrying the rnl_* registry counters.
func TestStatsIncludesObsMetrics(t *testing.T) {
	c := newTestCloud(t, lab.Options{})
	st, err := c.Client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// Legacy route-server counters must survive for old clients.
	for _, legacy := range []string{"packets_forwarded", "packets_injected"} {
		if _, ok := st[legacy]; !ok {
			t.Errorf("legacy stats key %q missing: %v", legacy, st)
		}
	}
	found := 0
	for k := range st {
		if strings.HasPrefix(k, "rnl_") {
			found++
		}
	}
	if found < 15 {
		t.Errorf("stats carries %d rnl_* keys, want >= 15", found)
	}
}

// TestMetricsUnauthenticated checks the probe endpoints stay reachable
// without a token even when API auth is on.
func TestMetricsUnauthenticated(t *testing.T) {
	c := newTestCloud(t, lab.Options{Token: "secret"})
	for _, path := range []string{"/metrics", "/healthz"} {
		resp, err := http.Get("http://" + c.WebAddr + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s without token = %d, want 200", path, resp.StatusCode)
		}
	}
	// The authenticated API must still demand the token.
	resp, err := http.Get("http://" + c.WebAddr + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("GET /api/stats without token = %d, want 401", resp.StatusCode)
	}
}
