package api

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
)

// handleConsoleRaw upgrades the HTTP connection to a raw byte pipe bridged
// to the router's serial console — what the paper's in-browser VT100
// terminal sits on. The client sends keystrokes, the device's output
// streams back, until either side closes.
//
// Protocol: plain HTTP GET; on success the server replies
// "HTTP/1.1 101 Switching Protocols" with "Upgrade: rnl-console" and the
// connection becomes the console stream.
func (s *Server) handleConsoleRaw(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// Ownership is checked before the hijack, while the error path can
	// still answer with a plain HTTP status.
	if p := callerOf(r); !p.crossTenant() && !s.routerInTenantLab(p.Tenant, name) {
		writeError(w, http.StatusForbidden, fmt.Errorf("router %q is not in one of tenant %q's labs", name, p.Tenant))
		return
	}
	ri, ok := s.rs.RouterByName(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("router %q not in inventory", name))
		return
	}
	sess, err := s.rs.OpenConsole(ri.ID)
	if err != nil {
		writeError(w, http.StatusBadGateway, err)
		return
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		sess.Close()
		writeError(w, http.StatusInternalServerError, fmt.Errorf("connection cannot be hijacked"))
		return
	}
	conn, rw, err := hj.Hijack()
	if err != nil {
		sess.Close()
		return
	}
	defer conn.Close()
	defer sess.Close()
	fmt.Fprintf(rw, "HTTP/1.1 101 Switching Protocols\r\nUpgrade: rnl-console\r\nConnection: Upgrade\r\n\r\n")
	rw.Flush()

	done := make(chan struct{}, 2)
	// Console output → client.
	go func() {
		buf := make([]byte, 4096)
		for {
			n, err := sess.Read(buf)
			if n > 0 {
				if _, werr := rw.Write(buf[:n]); werr != nil {
					break
				}
				rw.Flush()
			}
			if err != nil {
				break
			}
		}
		done <- struct{}{}
	}()
	// Client keystrokes → console. Any bytes buffered by the hijack are
	// forwarded first.
	go func() {
		io.Copy(sess, onlyBuffered(rw.Reader, conn))
		done <- struct{}{}
	}()
	<-done
}

// onlyBuffered reads first from the bufio reader's buffered bytes, then
// from the connection directly.
func onlyBuffered(br *bufio.Reader, conn io.Reader) io.Reader {
	if n := br.Buffered(); n > 0 {
		buffered := make([]byte, n)
		io.ReadFull(br, buffered)
		return io.MultiReader(bytes.NewReader(buffered), conn)
	}
	return conn
}
