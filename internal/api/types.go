// Package api implements RNL's web server and web-services interface
// (paper §2.1, §3.2): the JSON API that makes everything the web UI can do
// scriptable — inventory, design save/load, reservation, deploy/teardown,
// traffic generation and capture, console automation — so configuration
// tests can run unattended, nightly.
package api

import (
	"time"

	"rnl/internal/routeserver"
	"rnl/internal/topology"
)

// ReserveRequest books a set of routers for a window.
type ReserveRequest struct {
	User    string    `json:"user"`
	Routers []string  `json:"routers"`
	Start   time.Time `json:"start"`
	End     time.Time `json:"end"`
}

// NextFreeRequest asks for the next common free slot.
type NextFreeRequest struct {
	Routers  []string      `json:"routers"`
	Duration time.Duration `json:"duration"`
	Horizon  time.Duration `json:"horizon"`
}

// NextFreeResponse carries the found slot.
type NextFreeResponse struct {
	Start time.Time `json:"start"`
}

// DeployRequest deploys a saved design.
type DeployRequest struct {
	Design         string `json:"design"`
	User           string `json:"user"`
	RestoreConfigs bool   `json:"restore_configs"`
}

// GenerateRequest injects frames at a router port. By default the frame
// is delivered TO the port (emulating a host attached there); with
// FromPort it is emitted onto the virtual wire as if the port transmitted
// it, reaching whatever the design wires to the far end.
type GenerateRequest struct {
	Router   string `json:"router"`
	Port     string `json:"port"`
	Frame    []byte `json:"frame"` // JSON base64
	FromPort bool   `json:"from_port,omitempty"`
	// Count repeats the frame (default 1).
	Count int `json:"count,omitempty"`
}

// CaptureRequest opens a software tap.
type CaptureRequest struct {
	Router string `json:"router"`
	Port   string `json:"port"`
	// Depth is the buffer size (frames); 0 means the default.
	Depth int `json:"depth,omitempty"`
}

// CaptureResponse returns the tap handle.
type CaptureResponse struct {
	ID uint64 `json:"id"`
}

// CapturedFrame is one observed frame.
type CapturedFrame struct {
	When  time.Time `json:"when"`
	Dir   string    `json:"dir"` // "from-port" or "to-port"
	Frame []byte    `json:"frame"`
}

// StreamRequest starts a traffic-generation stream (the software IXIA).
type StreamRequest struct {
	Router   string `json:"router"`
	Port     string `json:"port"`
	Frame    []byte `json:"frame"`
	PPS      int    `json:"pps"`
	Count    int    `json:"count,omitempty"` // <=0 means until stopped
	FromPort bool   `json:"from_port,omitempty"`
}

// StreamStatus reports a stream's progress.
type StreamStatus struct {
	ID      uint64 `json:"id"`
	Sent    uint64 `json:"sent"`
	Running bool   `json:"running"`
}

// ConsoleExecRequest runs commands on a router console.
type ConsoleExecRequest struct {
	Router   string   `json:"router"`
	Commands []string `json:"commands"`
	// TimeoutMS bounds each command (default 5000).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// ConsoleExecResponse carries per-command outputs.
type ConsoleExecResponse struct {
	Outputs []string `json:"outputs"`
}

// FlashRequest loads a firmware version onto a router — the paper's
// "support router firmware loading from the user interface", done through
// console automation.
type FlashRequest struct {
	Version string `json:"version"`
}

// RevokeBeforeRequest sets the token-revocation cutoff: tokens issued
// before the cutoff stop verifying. Now uses the server clock; Before
// takes an explicit RFC3339 instant; Clear lifts the cutoff. A request
// setting none of them is rejected, so a defaulted body cannot
// silently disable the kill switch.
type RevokeBeforeRequest struct {
	Before string `json:"before,omitempty"`
	Now    bool   `json:"now,omitempty"`
	Clear  bool   `json:"clear,omitempty"`
}

// RevokeBeforeResponse echoes the cutoff now in force ("" = none).
type RevokeBeforeResponse struct {
	Before string `json:"before,omitempty"`
}

// ErrorResponse is the uniform error body.
type ErrorResponse struct {
	Error string `json:"error"`
}

// DeploymentInfo describes one active deployment.
type DeploymentInfo struct {
	Name    string   `json:"name"`
	Owner   string   `json:"owner,omitempty"`
	Tenant  string   `json:"tenant,omitempty"`
	Links   int      `json:"links"`
	Routers []uint32 `json:"routers"`
}

// WhoAmIResponse echoes the caller's verified principal.
type WhoAmIResponse struct {
	// Tenant is empty for the anonymous admin of an open or
	// shared-token server.
	Tenant string `json:"tenant,omitempty"`
	Role   string `json:"role"`
}

// Aliases re-exported so API consumers need only this package.
type (
	// RouterInfo mirrors routeserver.RouterInfo.
	RouterInfo = routeserver.RouterInfo
	// Design mirrors topology.Design.
	Design = topology.Design
)
