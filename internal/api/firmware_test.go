package api_test

import (
	"strings"
	"testing"
	"time"

	"rnl/internal/api"
	"rnl/internal/lab"
	"rnl/internal/packet"
)

// TestFirmwareFlashingFromAPI is the paper's §2.1 future-work feature:
// loading a firmware version onto a router from the user interface. It
// flashes an FWSM to a 3.x image and verifies the behavioural quirk (no
// BPDU forwarding support) takes effect, then flashes back.
func TestFirmwareFlashingFromAPI(t *testing.T) {
	c := newTestCloud(t, lab.Options{})
	fw, _, err := c.AddFWSM("flash-fw", 1)
	if err != nil {
		t.Fatal(err)
	}
	fw.SetBPDUForward(true)

	// The lab wiring already gives the traffic ports carrier, so the
	// unit goes Active on its own; inject/capture through the route
	// server.
	deadline := time.Now().Add(3 * time.Second)
	for fw.State().String() != "Active" && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if fw.State().String() != "Active" {
		t.Fatal("FWSM never went active")
	}

	// Baseline: default firmware 4.0.1 with bpdu-forward on → BPDUs cross.
	bpduCrosses := func() bool {
		t.Helper()
		capID, err := c.Client.OpenCapture(api.CaptureRequest{Router: "flash-fw", Port: "outside"})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Client.CloseCapture(capID)
		bpdu, err := packet.BuildBPDU([]byte{2, 0, 0, 0, 0, 9}, &packet.STP{
			BPDUType: packet.BPDUTypeConfig,
			RootID:   packet.BridgeID{Priority: 1, MAC: []byte{2, 0, 0, 0, 0, 9}},
			BridgeID: packet.BridgeID{Priority: 1, MAC: []byte{2, 0, 0, 0, 0, 9}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Client.Generate(api.GenerateRequest{Router: "flash-fw", Port: "inside", Frame: bpdu}); err != nil {
			t.Fatal(err)
		}
		frames, err := c.Client.ReadCapture(capID, 10, 500*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range frames {
			p := packet.NewPacket(f.Frame, packet.LayerTypeEthernet, packet.Default)
			if p.Layer(packet.LayerTypeSTP) != nil && f.Dir == "from-port" {
				return true
			}
		}
		return false
	}
	if !bpduCrosses() {
		t.Fatal("baseline: BPDU should cross on firmware 4.0.1 with forwarding configured")
	}

	// Flash down to 3.1.9 from the API: the quirk appears.
	if err := c.Client.FlashFirmware("flash-fw", "3.1.9"); err != nil {
		t.Fatal(err)
	}
	inv, _ := c.Client.Inventory()
	var seen string
	for _, r := range inv {
		if r.Name == "flash-fw" {
			seen = r.Firmware
		}
	}
	if seen != "3.1.9" {
		t.Fatalf("inventory firmware = %q, want 3.1.9", seen)
	}
	if bpduCrosses() {
		t.Fatal("firmware 3.x must not forward BPDUs")
	}

	// And back up: behaviour restored.
	if err := c.Client.FlashFirmware("flash-fw", "4.2.0"); err != nil {
		t.Fatal(err)
	}
	if !bpduCrosses() {
		t.Fatal("flashing back to 4.x should restore BPDU forwarding")
	}

	// Error paths.
	if err := c.Client.FlashFirmware("ghost", "1.0"); err == nil {
		t.Error("flashing an unknown router should fail")
	}
	if err := c.Client.FlashFirmware("flash-fw", ""); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Errorf("empty version error = %v", err)
	}
}
