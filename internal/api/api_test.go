package api_test

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"rnl/internal/api"
	"rnl/internal/lab"
	"rnl/internal/packet"
	"rnl/internal/topology"
)

// newTestCloud builds a cloud with two hosts joined.
func newTestCloud(t *testing.T, opts lab.Options) *lab.Cloud {
	t.Helper()
	c, err := lab.NewCloud(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestWebUIWorkflow(t *testing.T) {
	// The full Fig. 2 workflow through the web-services API: inventory →
	// design → reserve → deploy → test → teardown.
	c := newTestCloud(t, lab.Options{})
	h1, _, err := c.AddHost("web-h1", "10.0.0.1/24", "")
	if err != nil {
		t.Fatal(err)
	}
	h2, _, err := c.AddHost("web-h2", "10.0.0.2/24", "")
	if err != nil {
		t.Fatal(err)
	}

	// 1. Inventory shows both hosts.
	inv, err := c.Client.Inventory()
	if err != nil {
		t.Fatal(err)
	}
	if len(inv) != 2 {
		t.Fatalf("inventory = %d routers, want 2", len(inv))
	}

	// 2. Draw and save a design.
	d := &topology.Design{Name: "web-lab", Owner: "alice", Routers: []string{"web-h1", "web-h2"}}
	if err := d.Connect("web-h1", "eth0", "web-h2", "eth0"); err != nil {
		t.Fatal(err)
	}
	if err := c.Client.SaveDesign(d); err != nil {
		t.Fatal(err)
	}
	names, err := c.Client.Designs()
	if err != nil || len(names) != 1 || names[0] != "web-lab" {
		t.Fatalf("designs = %v, %v", names, err)
	}

	// 3. Reserve both routers for the next hour.
	now := time.Now()
	if _, err := c.Client.Reserve(api.ReserveRequest{
		User: "alice", Routers: d.Routers, Start: now.Add(-time.Minute), End: now.Add(time.Hour),
	}); err != nil {
		t.Fatal(err)
	}

	// 4. Deploy; the virtual wire comes up and traffic flows.
	if err := c.Client.Deploy(api.DeployRequest{Design: "web-lab", User: "alice"}); err != nil {
		t.Fatal(err)
	}
	if ok, _ := h1.Ping(h2.IP(), 3*time.Second); !ok {
		t.Fatal("ping across deployed design failed")
	}
	deps, err := c.Client.Deployments()
	if err != nil || len(deps) != 1 || deps[0].Name != "web-lab" {
		t.Fatalf("deployments = %v, %v", deps, err)
	}

	// 5. Teardown severs it.
	if err := c.Client.Teardown("web-lab"); err != nil {
		t.Fatal(err)
	}
	if ok, _ := h1.Ping(h2.IP(), 150*time.Millisecond); ok {
		t.Fatal("ping should fail after teardown")
	}
}

func TestDeployRequiresReservation(t *testing.T) {
	c := newTestCloud(t, lab.Options{})
	if _, _, err := c.AddHost("res-h1", "10.0.0.1/24", ""); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.AddHost("res-h2", "10.0.0.2/24", ""); err != nil {
		t.Fatal(err)
	}
	d := &topology.Design{Name: "res-lab", Routers: []string{"res-h1", "res-h2"}}
	d.Connect("res-h1", "eth0", "res-h2", "eth0")
	if err := c.Client.SaveDesign(d); err != nil {
		t.Fatal(err)
	}
	err := c.Client.Deploy(api.DeployRequest{Design: "res-lab", User: "bob"})
	if err == nil {
		t.Fatal("deploy without reservation should fail")
	}
	if !strings.Contains(err.Error(), "reservation") {
		t.Errorf("error should mention reservation: %v", err)
	}
}

func TestReservationConflictOverAPI(t *testing.T) {
	c := newTestCloud(t, lab.Options{})
	now := time.Now()
	if _, err := c.Client.Reserve(api.ReserveRequest{
		User: "alice", Routers: []string{"rX"}, Start: now, End: now.Add(time.Hour),
	}); err != nil {
		t.Fatal(err)
	}
	_, err := c.Client.Reserve(api.ReserveRequest{
		User: "bob", Routers: []string{"rX"}, Start: now.Add(30 * time.Minute), End: now.Add(90 * time.Minute),
	})
	if err == nil {
		t.Fatal("conflicting reservation should fail")
	}
	// Next-free skips past alice's slot.
	start, err := c.Client.NextFree(api.NextFreeRequest{
		Routers: []string{"rX"}, Duration: 30 * time.Minute, Horizon: 24 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if start.Before(now.Add(59 * time.Minute)) {
		t.Errorf("NextFree = %v, want after alice's booking ends", start)
	}
	// Schedule endpoint shows the booking.
	sched, err := c.Client.Schedule("rX")
	if err != nil || len(sched) != 1 || sched[0].User != "alice" {
		t.Fatalf("schedule = %v, %v", sched, err)
	}
	if err := c.Client.CancelReservation(sched[0].ID); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateAndCaptureAPI(t *testing.T) {
	// Fig. 6 machinery: inject at one port, capture at another.
	c := newTestCloud(t, lab.Options{})
	h1, _, _ := c.AddHost("gc-h1", "10.0.0.1/24", "")
	h2, _, _ := c.AddHost("gc-h2", "10.0.0.2/24", "")
	d := &topology.Design{Name: "gc-lab", Routers: []string{"gc-h1", "gc-h2"}}
	d.Connect("gc-h1", "eth0", "gc-h2", "eth0")
	c.Client.SaveDesign(d)
	now := time.Now()
	c.Client.Reserve(api.ReserveRequest{User: "u", Routers: d.Routers, Start: now.Add(-time.Minute), End: now.Add(time.Hour)})
	if err := c.Client.Deploy(api.DeployRequest{Design: "gc-lab", User: "u"}); err != nil {
		t.Fatal(err)
	}

	capID, err := c.Client.OpenCapture(api.CaptureRequest{Router: "gc-h2", Port: "eth0"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Client.CloseCapture(capID)

	frame, err := packet.BuildUDP(h1.MAC(), h2.MAC(), h1.IP(), h2.IP(), 5, 4242, []byte("api-generated"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Client.Generate(api.GenerateRequest{Router: "gc-h2", Port: "eth0", Frame: frame, Count: 3}); err != nil {
		t.Fatal(err)
	}
	frames, err := c.Client.ReadCapture(capID, 10, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) < 3 {
		t.Fatalf("captured %d frames, want >= 3", len(frames))
	}
	p := packet.NewPacket(frames[0].Frame, packet.LayerTypeEthernet, packet.Default)
	if app := p.ApplicationLayer(); app == nil || string(app.Payload()) != "api-generated" {
		t.Errorf("captured wrong payload: %v", p)
	}
	if frames[0].Dir != "to-port" {
		t.Errorf("dir = %q, want to-port", frames[0].Dir)
	}
}

func TestConsoleExecAPI(t *testing.T) {
	c := newTestCloud(t, lab.Options{})
	if _, _, err := c.AddHost("ce-h1", "10.0.9.1/24", ""); err != nil {
		t.Fatal(err)
	}
	outs, err := c.Client.ConsoleExec(api.ConsoleExecRequest{
		Router:   "ce-h1",
		Commands: []string{"enable", "show ip"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 || !strings.Contains(outs[1], "10.0.9.1") {
		t.Fatalf("console outputs = %q", outs)
	}
}

func TestSaveConfigsRoundtrip(t *testing.T) {
	c := newTestCloud(t, lab.Options{})
	if _, _, err := c.AddHost("sc-h1", "10.7.0.1/24", ""); err != nil {
		t.Fatal(err)
	}
	d := &topology.Design{Name: "sc-lab", Routers: []string{"sc-h1"}}
	if err := c.Client.SaveDesign(d); err != nil {
		t.Fatal(err)
	}
	updated, err := c.Client.SaveConfigs("sc-lab")
	if err != nil {
		t.Fatal(err)
	}
	cfg := updated.Configs["sc-h1"]
	if !strings.Contains(cfg, "ip address 10.7.0.1 255.255.255.0") {
		t.Fatalf("saved config = %q", cfg)
	}
	// The stored copy was updated too.
	stored, err := c.Client.GetDesign("sc-lab")
	if err != nil || !strings.Contains(stored.Configs["sc-h1"], "10.7.0.1") {
		t.Fatalf("stored design configs = %v, %v", stored, err)
	}
}

func TestAPIAuthToken(t *testing.T) {
	c := newTestCloud(t, lab.Options{Token: "secret"})
	// Wrong token rejected.
	bad := api.NewClient("http://"+c.WebAddr, "wrong")
	if _, err := bad.Inventory(); err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("wrong token error = %v", err)
	}
	// Correct token accepted.
	if _, err := c.Client.Inventory(); err != nil {
		t.Fatal(err)
	}
}

func TestIndexPageRenders(t *testing.T) {
	c := newTestCloud(t, lab.Options{})
	c.AddHost("ui-h1", "10.0.0.1/24", "")
	resp, err := http.Get("http://" + c.WebAddr + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	for _, want := range []string{"Remote Network Labs", "ui-h1", "Router inventory"} {
		if !strings.Contains(body, want) {
			t.Errorf("index page missing %q", want)
		}
	}
}

func TestAPIErrorPaths(t *testing.T) {
	c := newTestCloud(t, lab.Options{})
	if _, err := c.Client.GetDesign("ghost"); err == nil {
		t.Error("loading unknown design should fail")
	}
	if err := c.Client.DeleteDesign("ghost"); err == nil {
		t.Error("deleting unknown design should fail")
	}
	if err := c.Client.Teardown("ghost"); err == nil {
		t.Error("tearing down unknown deployment should fail")
	}
	if err := c.Client.Generate(api.GenerateRequest{Router: "ghost", Port: "p", Frame: []byte{1}}); err == nil {
		t.Error("generating to unknown router should fail")
	}
	if _, err := c.Client.ReadCapture(12345, 1, 0); err == nil {
		t.Error("reading unknown capture should fail")
	}
	if err := c.Client.CloseCapture(12345); err == nil {
		t.Error("closing unknown capture should fail")
	}
	if _, err := c.Client.ConsoleExec(api.ConsoleExecRequest{Router: "ghost"}); err == nil {
		t.Error("console to unknown router should fail")
	}
}
