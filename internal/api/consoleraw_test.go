package api_test

import (
	"strings"
	"testing"
	"time"

	"rnl/internal/api"
	"rnl/internal/lab"
)

// TestRawConsoleAttach drives the interactive console stream (the browser
// VT100 transport): keystrokes in, terminal output back, through the whole
// stack — HTTP upgrade → route server → tunnel → RIS → serial → device.
func TestRawConsoleAttach(t *testing.T) {
	c := newTestCloud(t, lab.Options{})
	if _, _, err := c.AddHost("raw-h1", "10.60.0.1/24", ""); err != nil {
		t.Fatal(err)
	}
	conn, err := c.Client.AttachConsole("raw-h1")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if _, err := conn.Write([]byte("enable\nshow ip\n")); err != nil {
		t.Fatal(err)
	}
	var all strings.Builder
	buf := make([]byte, 4096)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for !strings.Contains(all.String(), "10.60.0.1") {
		n, err := conn.Read(buf)
		if n > 0 {
			all.Write(buf[:n])
		}
		if err != nil {
			break
		}
	}
	out := all.String()
	if !strings.Contains(out, "10.60.0.1") {
		t.Fatalf("console stream missing output: %q", out)
	}
	if !strings.Contains(out, "raw-h1#") {
		t.Errorf("console stream missing enabled prompt: %q", out)
	}
}

func TestRawConsoleAttachErrors(t *testing.T) {
	c := newTestCloud(t, lab.Options{})
	if _, err := c.Client.AttachConsole("ghost"); err == nil {
		t.Error("attaching to unknown router should fail")
	}
}

func TestRawConsoleAttachAuth(t *testing.T) {
	c := newTestCloud(t, lab.Options{Token: "sekrit"})
	if _, _, err := c.AddHost("rawa-h1", "10.61.0.1/24", ""); err != nil {
		t.Fatal(err)
	}
	// Correct token works.
	conn, err := c.Client.AttachConsole("rawa-h1")
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	// Wrong token refused at the upgrade.
	bad := api.NewClient("http://"+c.WebAddr, "wrong")
	if _, err := bad.AttachConsole("rawa-h1"); err == nil {
		t.Error("wrong token should be refused")
	}
}
