package api_test

import (
	"strings"
	"testing"
	"time"

	"rnl/internal/api"
	"rnl/internal/lab"
	"rnl/internal/topology"
)

// TestDeployWithConfigRestore covers the full config save/restore loop
// the paper describes (§2.1): configure a router, save the design (which
// dumps the config through the console), wipe the router by "replacing"
// it with a fresh one... here simulated by changing its config, then
// deploy with restore and verify the saved configuration came back.
func TestDeployWithConfigRestore(t *testing.T) {
	c := newTestCloud(t, lab.Options{})
	r, _, err := c.AddRouter("rst-r1", []string{"e0", "e1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.AddHost("rst-h1", "10.40.0.2/24", "10.40.0.1"); err != nil {
		t.Fatal(err)
	}

	// Configure via console, as a user would.
	if _, err := c.Client.ConsoleExec(api.ConsoleExecRequest{
		Router: "rst-r1",
		Commands: []string{
			"enable", "configure terminal",
			"interface e0", "ip address 10.40.0.1 255.255.255.0",
			"ip route 172.31.0.0 255.255.0.0 10.40.0.2",
			"end",
		},
	}); err != nil {
		t.Fatal(err)
	}

	d := &topology.Design{Name: "rst-lab", Routers: []string{"rst-r1", "rst-h1"}}
	if err := d.Connect("rst-r1", "e0", "rst-h1", "eth0"); err != nil {
		t.Fatal(err)
	}
	if err := c.Client.SaveDesign(d); err != nil {
		t.Fatal(err)
	}
	saved, err := c.Client.SaveConfigs("rst-lab")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(saved.Configs["rst-r1"], "ip route 172.31.0.0 255.255.0.0 10.40.0.2") {
		t.Fatalf("saved config missing route:\n%s", saved.Configs["rst-r1"])
	}

	// "The previous user changed everything": wipe the static route.
	if _, err := c.Client.ConsoleExec(api.ConsoleExecRequest{
		Router:   "rst-r1",
		Commands: []string{"enable", "configure terminal", "no ip route 172.31.0.0 255.255.0.0", "end"},
	}); err != nil {
		t.Fatal(err)
	}
	if routes := r.Routes(); containsRoute(routes, "172.31.0.0/16") {
		t.Fatal("route should be gone before restore")
	}

	// Deploy with restore: the saved configuration is replayed.
	now := time.Now()
	if _, err := c.Client.Reserve(api.ReserveRequest{
		User: "u", Routers: d.Routers, Start: now.Add(-time.Minute), End: now.Add(time.Hour),
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Client.Deploy(api.DeployRequest{Design: "rst-lab", User: "u", RestoreConfigs: true}); err != nil {
		t.Fatal(err)
	}
	if routes := r.Routes(); !containsRoute(routes, "172.31.0.0/16") {
		t.Fatalf("restore did not bring the route back:\n%v", routes)
	}
}

// TestDeployRestoreFailureRollsBack: a config the device rejects must not
// leave a half-deployed lab behind.
func TestDeployRestoreFailureRollsBack(t *testing.T) {
	c := newTestCloud(t, lab.Options{})
	if _, _, err := c.AddRouter("rb-r1", []string{"e0"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.AddHost("rb-h1", "10.41.0.2/24", ""); err != nil {
		t.Fatal(err)
	}
	d := &topology.Design{
		Name:    "rb-lab",
		Routers: []string{"rb-r1", "rb-h1"},
		Configs: map[string]string{"rb-r1": "utterly bogus configuration line"},
	}
	if err := d.Connect("rb-r1", "e0", "rb-h1", "eth0"); err != nil {
		t.Fatal(err)
	}
	if err := c.Client.SaveDesign(d); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	if _, err := c.Client.Reserve(api.ReserveRequest{
		User: "u", Routers: d.Routers, Start: now.Add(-time.Minute), End: now.Add(time.Hour),
	}); err != nil {
		t.Fatal(err)
	}
	err := c.Client.Deploy(api.DeployRequest{Design: "rb-lab", User: "u", RestoreConfigs: true})
	if err == nil {
		t.Fatal("deploy with a rejected config should fail")
	}
	if deps, _ := c.Client.Deployments(); len(deps) != 0 {
		t.Fatalf("failed restore left deployments behind: %v", deps)
	}
}

func containsRoute(routes []string, want string) bool {
	for _, r := range routes {
		if strings.Contains(r, want) {
			return true
		}
	}
	return false
}
