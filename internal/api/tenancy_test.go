package api_test

// Multi-tenant API behavior: signed bearer tokens and API keys at
// ingress, tenant-scoped ownership on reservations / deployments /
// consoles, and per-tenant quotas (concurrent labs, reservation-hours)
// enforced end to end through the HTTP surface.

import (
	"strings"
	"testing"
	"time"

	"rnl/internal/api"
	"rnl/internal/identity"
	"rnl/internal/lab"
	"rnl/internal/sim"
)

// newTenantCloud builds a cloud with an identity authority, per-tenant
// quotas, and n hosts named h0..h(n-1).
func newTenantCloud(t *testing.T, quota identity.Quota, n int) (*lab.Cloud, *identity.Authority) {
	t.Helper()
	auth, err := identity.New([]byte("test-signing-secret"), nil)
	if err != nil {
		t.Fatal(err)
	}
	// With an identity authority configured, tunnel joins need a
	// credential too — the cloud's own agents present the shared tunnel
	// secret (never valid at the web API, which takes Token/Identity).
	c := newTestCloud(t, lab.Options{
		Identity:    auth,
		Quotas:      identity.NewQuotas(quota),
		TunnelToken: "tunnel-secret",
	})
	for i := 0; i < n; i++ {
		name := "th" + string(rune('0'+i))
		if _, _, err := c.AddHost(name, "10.0.0."+string(rune('1'+i))+"/24", ""); err != nil {
			t.Fatal(err)
		}
	}
	return c, auth
}

// tenantClient mints a bearer token for tenant and returns a client
// presenting it.
func tenantClient(t *testing.T, c *lab.Cloud, auth *identity.Authority, tenant string, role identity.Role) *api.Client {
	t.Helper()
	tok, err := auth.SignFor(tenant, role, 0)
	if err != nil {
		t.Fatal(err)
	}
	return api.NewClient("http://"+c.WebAddr, tok)
}

// saveWire saves a two-host design through cl.
func saveWire(t *testing.T, cl *api.Client, name, a, b string) {
	t.Helper()
	d := &api.Design{Name: name, Routers: []string{a, b}}
	if err := d.Connect(a, "eth0", b, "eth0"); err != nil {
		t.Fatal(err)
	}
	if err := cl.SaveDesign(d); err != nil {
		t.Fatal(err)
	}
}

func reserveNow(t *testing.T, cl *api.Client, user string, routers []string, d time.Duration) []api.ReservationInfo {
	t.Helper()
	now := time.Now()
	res, err := cl.Reserve(api.ReserveRequest{User: user, Routers: routers, Start: now.Add(-time.Minute), End: now.Add(d)})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAuthenticatedDeployEndToEnd(t *testing.T) {
	// The full tenant workflow over HTTP with signed bearer tokens:
	// whoami → reserve → deploy → cross-tenant denials → teardown.
	c, auth := newTenantCloud(t, identity.Quota{MaxConcurrentLabs: 1}, 4)
	acme := tenantClient(t, c, auth, "acme", identity.RoleTenant)
	rival := tenantClient(t, c, auth, "rival", identity.RoleTenant)

	// No credential at all is rejected uniformly.
	anon := api.NewClient("http://"+c.WebAddr, "")
	if _, err := anon.Inventory(); err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("anonymous request error = %v, want 401", err)
	}

	// The token verifies into the expected principal.
	who, err := acme.WhoAmI()
	if err != nil {
		t.Fatal(err)
	}
	if who.Tenant != "acme" || who.Role != string(identity.RoleTenant) {
		t.Fatalf("whoami = %+v, want acme/tenant", who)
	}

	// Reserve + deploy as the token's own tenant. The request's User is
	// left blank: ingress fills it from the verified principal.
	saveWire(t, acme, "acme-lab", "th0", "th1")
	reserveNow(t, acme, "", []string{"th0", "th1"}, time.Hour)
	if err := acme.Deploy(api.DeployRequest{Design: "acme-lab"}); err != nil {
		t.Fatal(err)
	}

	// The deployment records its owning tenant.
	deps, err := acme.Deployments()
	if err != nil || len(deps) != 1 {
		t.Fatalf("deployments = %v, %v", deps, err)
	}
	if deps[0].Tenant != "acme" {
		t.Fatalf("deployment tenant = %q, want acme", deps[0].Tenant)
	}

	// A tenant cannot act as another tenant, tear down another tenant's
	// lab, or drive consoles inside it.
	if _, err := rival.Reserve(api.ReserveRequest{User: "acme", Routers: []string{"th2"},
		Start: time.Now(), End: time.Now().Add(time.Hour)}); err == nil || !strings.Contains(err.Error(), "403") {
		t.Fatalf("cross-tenant reserve error = %v, want 403", err)
	}
	if err := rival.Teardown("acme-lab"); err == nil || !strings.Contains(err.Error(), "403") {
		t.Fatalf("cross-tenant teardown error = %v, want 403", err)
	}
	if _, err := rival.ConsoleExec(api.ConsoleExecRequest{Router: "th0", Commands: []string{"enable"}}); err == nil || !strings.Contains(err.Error(), "403") {
		t.Fatalf("cross-tenant console error = %v, want 403", err)
	}
	// The owner can drive its own consoles.
	if _, err := acme.ConsoleExec(api.ConsoleExecRequest{Router: "th0", Commands: []string{"enable"}}); err != nil {
		t.Fatalf("owner console exec: %v", err)
	}

	// An operator token crosses tenants.
	op := tenantClient(t, c, auth, "", identity.RoleOperator)
	if err := op.Teardown("acme-lab"); err != nil {
		t.Fatalf("operator teardown: %v", err)
	}
}

func TestTenantConcurrentLabQuotaOverAPI(t *testing.T) {
	c, auth := newTenantCloud(t, identity.Quota{MaxConcurrentLabs: 1}, 4)
	acme := tenantClient(t, c, auth, "acme", identity.RoleTenant)

	saveWire(t, acme, "lab-a", "th0", "th1")
	saveWire(t, acme, "lab-b", "th2", "th3")
	reserveNow(t, acme, "", []string{"th0", "th1", "th2", "th3"}, time.Hour)
	if err := acme.Deploy(api.DeployRequest{Design: "lab-a"}); err != nil {
		t.Fatal(err)
	}
	err := acme.Deploy(api.DeployRequest{Design: "lab-b"})
	if err == nil || !strings.Contains(err.Error(), "quota") {
		t.Fatalf("second concurrent lab error = %v, want quota error", err)
	}
	// Tearing the first down frees the slot.
	if err := acme.Teardown("lab-a"); err != nil {
		t.Fatal(err)
	}
	if err := acme.Deploy(api.DeployRequest{Design: "lab-b"}); err != nil {
		t.Fatalf("deploy after teardown: %v", err)
	}
}

func TestReservationHoursQuotaOverAPI(t *testing.T) {
	c, auth := newTenantCloud(t, identity.Quota{ReservationHours: 3}, 2)
	acme := tenantClient(t, c, auth, "acme", identity.RoleTenant)

	// 2 routers × 1h = 2 router-hours: fits the 3h cap.
	res := reserveNow(t, acme, "", []string{"th0", "th1"}, time.Hour)
	// Another 2 router-hours would exceed it.
	now := time.Now()
	_, err := acme.Reserve(api.ReserveRequest{Routers: []string{"th0", "th1"},
		Start: now.Add(2 * time.Hour), End: now.Add(3 * time.Hour)})
	if err == nil || !strings.Contains(err.Error(), "quota") {
		t.Fatalf("over-quota reservation error = %v, want quota error", err)
	}
	// Cancelling releases the hours.
	for _, r := range res {
		if err := acme.CancelReservation(r.ID); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := acme.Reserve(api.ReserveRequest{Routers: []string{"th0", "th1"},
		Start: now.Add(2 * time.Hour), End: now.Add(3 * time.Hour)}); err != nil {
		t.Fatalf("reservation after cancel: %v", err)
	}
}

func TestCrossTenantReservationCancel(t *testing.T) {
	c, auth := newTenantCloud(t, identity.Quota{}, 1)
	acme := tenantClient(t, c, auth, "acme", identity.RoleTenant)
	rival := tenantClient(t, c, auth, "rival", identity.RoleTenant)

	res := reserveNow(t, acme, "", []string{"th0"}, time.Hour)
	if err := rival.CancelReservation(res[0].ID); err == nil || !strings.Contains(err.Error(), "403") {
		t.Fatalf("cross-tenant cancel error = %v, want 403", err)
	}
	if err := acme.CancelReservation(res[0].ID); err != nil {
		t.Fatalf("owner cancel: %v", err)
	}
}

func TestAPIKeyCredential(t *testing.T) {
	c, auth := newTenantCloud(t, identity.Quota{}, 1)
	if err := auth.AddAPIKey("nightly-ci-key", identity.Claims{Tenant: "ci", Role: identity.RoleTenant}); err != nil {
		t.Fatal(err)
	}
	ci := api.NewClient("http://"+c.WebAddr, "nightly-ci-key")
	who, err := ci.WhoAmI()
	if err != nil {
		t.Fatal(err)
	}
	if who.Tenant != "ci" || who.Role != string(identity.RoleTenant) {
		t.Fatalf("API key principal = %+v, want ci/tenant", who)
	}
}

func TestExpiredTokenRejected(t *testing.T) {
	// Only the authority runs on the fake clock: token expiry is virtual
	// while the cloud itself stays on wall time.
	clk := sim.NewFake(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	auth, err := identity.New([]byte("test-signing-secret"), clk)
	if err != nil {
		t.Fatal(err)
	}
	c := newTestCloud(t, lab.Options{Identity: auth})
	tok, err := auth.SignFor("acme", identity.RoleTenant, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	cl := api.NewClient("http://"+c.WebAddr, tok)
	if _, err := cl.Inventory(); err != nil {
		t.Fatalf("fresh token rejected: %v", err)
	}
	clk.Advance(2 * time.Minute)
	if _, err := cl.Inventory(); err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("expired token error = %v, want 401", err)
	}
}
