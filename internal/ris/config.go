// Package ris implements the Router Interface Software (paper §2.2): the
// agent running on the lab PC in front of each router. It captures every
// frame a router port emits, wraps it with the port's unique ID and ships
// it to the route server over an outbound TCP tunnel (so equipment behind
// corporate firewalls can still join the labs), delivers frames arriving
// from the server to the right port, and relays serial console sessions.
package ris

import (
	"fmt"
	"io"
	"time"

	"rnl/internal/netsim"
	"rnl/internal/sim"
)

// Tunnel timing defaults. The keepalive interval matches the seed's
// hard-coded 10s; the peer timeout is three missed keepalives, after
// which a half-open connection is torn down and redialed.
const (
	DefaultKeepaliveInterval   = 10 * time.Second
	DefaultReconnectBackoff    = time.Second
	DefaultReconnectResetAfter = 30 * time.Second
)

// NoPeerTimeout disables the agent's dead-peer detection — deterministic
// simulation runs use it so advancing virtual time cannot spuriously
// tear down tunnels whose real-TCP traffic is still in flight.
const NoPeerTimeout time.Duration = -1

// PortMap binds one router port to the PC network interface adapter it is
// physically wired to (the mapping the lab manager defines in Fig. 3).
type PortMap struct {
	// Name is the router port's name as shown in the inventory.
	Name string
	// Description pops up when users hover the port on the web UI.
	Description string
	// NIC is the PC interface adapter wired to the port.
	NIC *netsim.Iface
	// Rect is the clickable region on the router image (x, y, w, h).
	Rect [4]int
}

// RouterDef describes one piece of equipment the RIS fronts.
type RouterDef struct {
	// Name is the inventory name; it must be unique across the labs.
	Name string
	// Description tells users what kind of equipment this is.
	Description string
	// Model is the hardware model string.
	Model string
	// Image is the back-panel picture file name shown on the web UI.
	Image string
	// Firmware is the currently flashed firmware version.
	Firmware string
	// Console is the PC end of the serial cable to the router's console
	// port (nil when no console is wired).
	Console io.ReadWriter
	// Ports maps the router's ports to NICs.
	Ports []PortMap
}

// Config is the RIS configuration the lab manager saves before clicking
// "Join Labs".
type Config struct {
	// ServerAddr is the route server address; the paper's default is
	// netlabs.accenture.com, overridable for other deployments.
	ServerAddr string
	// PCName identifies this lab PC.
	PCName string
	// Compress offers tunnel packet compression to the server (§4).
	Compress bool
	// Datagram offers the best-effort datagram data plane: negotiated
	// PACKET frames travel over UDP to the server's port (loss-tolerant,
	// like the L2 traffic they carry) while control frames and consoles
	// stay on the TCP tunnel. The server refuses the offer when
	// compression is also negotiated.
	Datagram bool
	// Token authenticates the tunnel join: the route server's shared
	// tunnel secret or a signed identity bearer token, sent once in the
	// Hello — never per packet. Leave empty against an open server.
	// Prefer the RNL_TOKEN environment variable over flags so the
	// credential stays off argv (see identity.ResolveToken).
	Token string
	// DatagramMTU caps how large a frame may ride the UDP datagram path
	// before falling back to the TCP tunnel; zero means
	// wire.DefaultDgramMTU. Match it to the path MTU toward the server:
	// oversize datagrams fragment, and a lost fragment loses the frame.
	DatagramMTU int
	// Routers is the equipment behind this PC.
	Routers []RouterDef

	// KeepaliveInterval is how often liveness frames are sent; zero
	// means DefaultKeepaliveInterval.
	KeepaliveInterval time.Duration
	// PeerTimeout tears down a connection that has received nothing for
	// this long (a half-open TCP peer); zero means 3×KeepaliveInterval.
	PeerTimeout time.Duration
	// ReconnectBackoff is the initial redial delay; zero means
	// DefaultReconnectBackoff. It doubles per failed attempt (capped).
	ReconnectBackoff time.Duration
	// ReconnectResetAfter is how long a connection must stay up before
	// the redial backoff resets to its initial value — a server that
	// accepts and immediately drops keeps backing off instead of being
	// hammered. Zero means DefaultReconnectResetAfter.
	ReconnectResetAfter time.Duration
	// SendQueueLen bounds the tunnel send queue (drop-oldest under
	// backpressure); zero means wire.DefaultSendQueueLen.
	SendQueueLen int
	// Clock drives the keepalive cadence, dead-peer detection and redial
	// backoff; nil means wall time. Detsim injects sim.Fake here so the
	// agent's timing is virtual.
	Clock sim.Clock
}

// clock resolves the injected clock (wall time by default).
func (c *Config) clock() sim.Clock {
	if c.Clock != nil {
		return c.Clock
	}
	return sim.Real{}
}

func (c *Config) keepaliveInterval() time.Duration {
	if c.KeepaliveInterval > 0 {
		return c.KeepaliveInterval
	}
	return DefaultKeepaliveInterval
}

func (c *Config) peerTimeout() time.Duration {
	if c.PeerTimeout > 0 {
		return c.PeerTimeout
	}
	if c.PeerTimeout < 0 {
		return 0 // NoPeerTimeout: detection disabled
	}
	return 3 * c.keepaliveInterval()
}

func (c *Config) reconnectBackoff() time.Duration {
	if c.ReconnectBackoff > 0 {
		return c.ReconnectBackoff
	}
	return DefaultReconnectBackoff
}

func (c *Config) reconnectResetAfter() time.Duration {
	if c.ReconnectResetAfter > 0 {
		return c.ReconnectResetAfter
	}
	return DefaultReconnectResetAfter
}

// Validate checks the configuration for the mistakes the Fig. 3 dialog
// prevents: duplicate router names, duplicate port names, ports without
// NICs.
func (c *Config) Validate() error {
	if c.ServerAddr == "" {
		return fmt.Errorf("ris: config needs a route server address")
	}
	if len(c.Routers) == 0 {
		return fmt.Errorf("ris: config defines no routers")
	}
	seenRouter := map[string]bool{}
	for _, r := range c.Routers {
		if r.Name == "" {
			return fmt.Errorf("ris: router with empty name")
		}
		if seenRouter[r.Name] {
			return fmt.Errorf("ris: duplicate router name %q", r.Name)
		}
		seenRouter[r.Name] = true
		if len(r.Ports) == 0 && r.Console == nil {
			// Console-only equipment (a terminal server, a power unit)
			// is legal; a router with neither ports nor console is not.
			return fmt.Errorf("ris: router %q has no ports mapped", r.Name)
		}
		seenPort := map[string]bool{}
		for _, p := range r.Ports {
			if p.Name == "" {
				return fmt.Errorf("ris: router %q has a port with empty name", r.Name)
			}
			if seenPort[p.Name] {
				return fmt.Errorf("ris: router %q maps port %q twice", r.Name, p.Name)
			}
			seenPort[p.Name] = true
			if p.NIC == nil {
				return fmt.Errorf("ris: router %q port %q has no NIC selected", r.Name, p.Name)
			}
		}
	}
	return nil
}
