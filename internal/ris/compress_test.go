package ris_test

import (
	"testing"
	"time"

	"rnl/internal/netsim"
	"rnl/internal/ris"
	"rnl/internal/routeserver"
)

// TestCompressionDeclinedByServer: an agent offering compression against a
// server with compression disabled must fall back to raw frames and still
// pass traffic.
func TestCompressionDeclinedByServer(t *testing.T) {
	s := routeserver.New(routeserver.Options{AllowCompression: false, Logger: quiet()})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	mk := func(name string) (*netsim.Iface, *ris.Agent, routeserver.PortKey) {
		dev := netsim.NewIface(name + "-dev")
		nic := netsim.NewIface(name + "-nic")
		w := netsim.Connect(dev, nic, nil)
		t.Cleanup(w.Disconnect)
		cfg := validConfig(addr)
		cfg.PCName = "pc-" + name
		cfg.Compress = true // offered, but the server will decline
		cfg.Routers[0].Name = name
		cfg.Routers[0].Ports[0].NIC = nic
		a, err := ris.New(cfg, quiet())
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(a.Close)
		rid, pid, _ := a.PortID(name, "p1")
		return dev, a, routeserver.PortKey{Router: rid, Port: pid}
	}
	devA, _, pkA := mk("nca")
	devB, _, pkB := mk("ncb")
	got := make(chan []byte, 4)
	devB.SetReceiver(func(f []byte) {
		select {
		case got <- append([]byte(nil), f...):
		default:
		}
	})
	if err := s.Deploy("nc", []routeserver.Link{{A: pkA, B: pkB}}); err != nil {
		t.Fatal(err)
	}
	want := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 0x08, 0x00, 42}
	devA.Transmit(want)
	select {
	case f := <-got:
		if string(f) != string(want) {
			t.Fatalf("frame corrupted: %x", f)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("frame never crossed the (uncompressed) tunnel")
	}
}
