package ris

import "rnl/internal/obs"

// Process-wide RIS metrics, aggregated across every Agent in the process
// (tests and the lab harness run many; cmd/ris runs one). Per-agent
// numbers stay in Stats; these mirror them for the /metrics endpoint.
var (
	mReconnects = obs.Default().Counter("rnl_ris_reconnects_total",
		"Tunnel reconnect attempts after a lost route-server connection.")
	mCaptureFrames = obs.Default().Counter("rnl_ris_capture_frames_total",
		"Frames captured from device NICs and queued for the route server.")
	mCaptureBytes = obs.Default().Counter("rnl_ris_capture_bytes_total",
		"Payload bytes captured from device NICs and queued for the route server.")
	mDeliveredFrames = obs.Default().Counter("rnl_ris_delivered_frames_total",
		"Frames received from the route server and transmitted on device NICs.")
	mDeliveredBytes = obs.Default().Counter("rnl_ris_delivered_bytes_total",
		"Payload bytes received from the route server and transmitted on device NICs.")
	mConsoleBytes = obs.Default().Counter("rnl_ris_console_bytes_total",
		"Serial console bytes relayed in either direction (device output and keystrokes).")
)
