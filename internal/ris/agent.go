package ris

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rnl/internal/compress"
	"rnl/internal/identity"
	"rnl/internal/netsim"
	"rnl/internal/sim"
	"rnl/internal/wire"
)

// Stats counts agent activity.
type Stats struct {
	FramesToServer   atomic.Uint64
	FramesFromServer atomic.Uint64
	BytesToServer    atomic.Uint64
	BytesFromServer  atomic.Uint64
	Reconnects       atomic.Uint64
	// FramesDropped counts captured frames shed by the tunnel send
	// queue's drop-oldest backpressure policy (slow/stalled server).
	FramesDropped atomic.Uint64
}

// agentHot is the per-frame state snapshot: everything sendPacket and
// deliverPacket need, published atomically at connection setup so the
// packet paths read one pointer instead of taking a.mu per frame (two
// lock acquisitions per delivered frame was a measured hotspot at Fig4
// rates). The maps inside are immutable once published — a redial
// builds fresh ones.
type agentHot struct {
	wc     *wire.Conn
	decomp *compress.Decompressor
	nics   map[portID]*netsim.Iface
	// dgram is the connection's datagram endpoint, nil when the path was
	// not negotiated (or failed to dial). sendPacket prefers it once the
	// punch is acknowledged.
	dgram *agentDgram
}

// Agent is one running RIS instance.
type Agent struct {
	cfg Config
	log *slog.Logger

	hot atomic.Pointer[agentHot] // per-frame snapshot; nil before first Start

	mu     sync.Mutex
	conn   net.Conn
	wc     *wire.Conn // asynchronous batched tunnel writer
	comp   *compress.Compressor
	decomp *compress.Decompressor

	// dgramOK/dgramToken record the HelloAck's datagram grant for the
	// connection being set up; Start consumes them to dial the UDP path.
	dgramOK    bool
	dgramToken uint64

	// ids filled from JoinAck: (router, port) name pair → wire IDs, the
	// reverse for delivery, and router name → wire ID for consoles.
	portIDs   map[[2]string]portID
	routerIDs map[string]uint32
	nics      map[portID]*netsim.Iface

	// consoles: router name → console relay state. Keyed by the stable
	// inventory name, not the wire ID: IDs can change across a redial to
	// a fresh server, and re-keying would otherwise spawn a duplicate
	// reader competing for the same serial port.
	consoles map[string]*consoleRelay

	// connDown is closed when the current connection's loops (read,
	// keepalive) have both exited; each Start installs a fresh channel.
	connDown chan struct{}

	stats     Stats
	started   bool
	consoleWg sync.WaitGroup // console readers live until the serial closes
}

type portID struct {
	router uint32
	port   uint32
}

// consoleRelay relays one router's serial console to at most one active
// tunnel session at a time.
type consoleRelay struct {
	rw io.ReadWriter

	mu      sync.Mutex
	session uint32 // 0 when idle
}

// New builds an agent from a validated config.
func New(cfg Config, logger *slog.Logger) (*Agent, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if logger == nil {
		logger = slog.Default()
	}
	return &Agent{
		cfg:       cfg,
		log:       logger,
		portIDs:   make(map[[2]string]portID),
		routerIDs: make(map[string]uint32),
		nics:      make(map[portID]*netsim.Iface),
		consoles:  make(map[string]*consoleRelay),
	}, nil
}

// Stats exposes the agent counters.
func (a *Agent) Stats() *Stats { return &a.stats }

// RouterID returns the wire ID assigned to a router name (0 if unknown —
// valid IDs start at 1).
func (a *Agent) RouterID(name string) uint32 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.routerIDs[name]
}

// PortID returns the wire IDs assigned to a (router, port) name pair.
func (a *Agent) PortID(router, port string) (routerID, portIDv uint32, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	id, ok := a.portIDs[[2]string{router, port}]
	return id.router, id.port, ok
}

// Start connects to the route server, joins the labs and begins
// forwarding. It returns once the join completes.
func (a *Agent) Start() error {
	conn, err := net.Dial("tcp", a.cfg.ServerAddr)
	if err != nil {
		return fmt.Errorf("ris: dialing route server: %w", err)
	}
	// The handshake deadline stays on the kernel clock — it bounds raw
	// synchronous reads on a fresh TCP connection, which only wall time
	// can police, even inside a simulation.
	hsTimeout := a.cfg.peerTimeout()
	if hsTimeout <= 0 {
		hsTimeout = 3 * a.cfg.keepaliveInterval()
	}
	conn.SetDeadline(time.Now().Add(hsTimeout))
	if err := a.handshake(conn); err != nil {
		conn.Close()
		// A server error frame may echo the handshake it rejected; never
		// let the credential reach the logs through it.
		return identity.RedactError(err, a.cfg.Token)
	}
	conn.SetDeadline(time.Time{})

	// Wrap the connection in the asynchronous batched writer. The
	// compressor (stateful) is driven by the writer goroutine in exact
	// wire order, after drop decisions, keeping it in sync with the
	// server's decompressor.
	a.mu.Lock()
	comp := a.comp
	dgramOK, dgramToken := a.dgramOK, a.dgramToken
	a.mu.Unlock()
	var dg *agentDgram
	if dgramOK {
		dg = a.dialDatagram(dgramToken)
	}
	var enc func([]byte) ([]byte, uint16)
	if comp != nil {
		enc = func(data []byte) ([]byte, uint16) {
			return comp.Compress(data), wire.FlagCompressed
		}
	}
	wc := wire.NewConn(conn, wire.ConnConfig{
		QueueLen: a.cfg.SendQueueLen,
		Encoder:  enc,
		OnShed: func(_ string, n int) {
			a.stats.FramesDropped.Add(uint64(n))
		},
	})

	readDone := make(chan struct{})
	down := make(chan struct{})
	a.mu.Lock()
	a.conn = conn
	a.wc = wc
	a.connDown = down
	a.started = true
	// Publish the per-frame snapshot before the NIC receivers and the
	// read loop go live, so neither path ever takes a.mu per frame.
	a.hot.Store(&agentHot{wc: wc, decomp: a.decomp, nics: a.nics, dgram: dg})
	a.mu.Unlock()
	a.attachNICs()
	a.startConsoleReaders()
	go func() {
		a.readLoop(conn)
		wc.Close()
		if dg != nil {
			dg.uc.Close() // unblocks dgramReadLoop; punch loop sees stop
		}
		close(readDone)
	}()
	if dg != nil {
		go a.dgramReadLoop(dg)
		go a.dgramPunchLoop(dg, readDone)
	}
	go func() {
		a.keepaliveLoop(readDone)
		<-readDone
		close(down)
	}()
	return nil
}

// Run keeps the agent connected until ctx ends, redialing with backoff —
// the long-lived mode cmd/ris uses. The backoff only resets once a
// connection has stayed up for ReconnectResetAfter: a server that
// accepts the dial but drops the connection right away keeps backing
// off instead of being redialed at the floor rate forever.
func (a *Agent) Run(ctx context.Context) error {
	clock := a.cfg.clock()
	base := a.cfg.reconnectBackoff()
	maxBackoff := 30 * time.Second
	if base > maxBackoff {
		maxBackoff = base
	}
	backoff := base
	for {
		err := a.Start()
		if err == nil {
			connectedAt := clock.Now()
			select {
			case <-ctx.Done():
				a.Close()
				return ctx.Err()
			case <-a.connDone():
				a.stats.Reconnects.Add(1)
				mReconnects.Inc()
				if clock.Now().Sub(connectedAt) >= a.cfg.reconnectResetAfter() {
					backoff = base
				}
				a.log.Warn("tunnel lost; reconnecting", "backoff", backoff)
			}
		} else {
			a.log.Warn("connect failed", "err", err)
		}
		// The redial delay runs on the agent clock: under sim.Fake a
		// flapped tunnel redials the instant the scenario advances past
		// the backoff, never on a wall-time schedule of its own.
		wait := make(chan struct{})
		tm := clock.AfterFunc(backoff, func() { close(wait) })
		select {
		case <-ctx.Done():
			tm.Stop()
			return ctx.Err()
		case <-wait:
		}
		if backoff < maxBackoff {
			backoff *= 2
		}
	}
}

// connDone returns a channel closed when the current connection dies.
// Each Start installs a fresh channel, so Run's waiter is bound to
// exactly the connection it started. (The old implementation spawned a
// goroutine per call blocking on a shared WaitGroup: across redials each
// new Start re-Added the group while stale waiters still sat in Wait —
// a leak and a WaitGroup reuse race.)
func (a *Agent) connDone() <-chan struct{} {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.connDown == nil {
		done := make(chan struct{})
		close(done)
		return done
	}
	return a.connDown
}

// Close leaves the labs and stops the agent.
func (a *Agent) Close() {
	a.mu.Lock()
	wc := a.wc
	down := a.connDown
	a.mu.Unlock()
	if wc != nil {
		wc.SendFrame(wire.Frame{Type: wire.MsgLeave})
		wc.Close() // drains the queue (bounded), then closes the conn
	}
	if down != nil {
		<-down
	}
}

// handshake performs Hello + Join and records assigned IDs.
func (a *Agent) handshake(conn net.Conn) error {
	hello, err := wire.EncodeJSON(wire.MsgHello, wire.HelloMsg{
		Version: wire.ProtocolVersion, PCName: a.cfg.PCName,
		Compress: a.cfg.Compress, Datagram: a.cfg.Datagram,
		Token: a.cfg.Token,
	})
	if err != nil {
		return err
	}
	if err := wire.WriteFrame(conn, hello); err != nil {
		return err
	}
	f, err := wire.ReadFrame(conn)
	if err != nil {
		return err
	}
	var ack wire.HelloAckMsg
	if err := wire.DecodeJSON(f, wire.MsgHelloAck, &ack); err != nil {
		return err
	}
	a.mu.Lock()
	if ack.Compress {
		a.comp = compress.NewCompressor()
		a.decomp = compress.NewDecompressor()
	} else {
		a.comp, a.decomp = nil, nil
	}
	a.dgramOK = ack.Datagram
	a.dgramToken = ack.DatagramToken
	a.mu.Unlock()

	join := wire.JoinMsg{}
	for _, r := range a.cfg.Routers {
		ra := wire.RouterAnnounce{
			Name: r.Name, Description: r.Description, Model: r.Model,
			Image: r.Image, Firmware: r.Firmware, HasConsole: r.Console != nil,
		}
		for _, p := range r.Ports {
			ra.Ports = append(ra.Ports, wire.PortAnnounce{
				Name: p.Name, Description: p.Description, NIC: p.NIC.Name(), Rect: p.Rect,
			})
		}
		join.Routers = append(join.Routers, ra)
	}
	jf, err := wire.EncodeJSON(wire.MsgJoin, join)
	if err != nil {
		return err
	}
	if err := wire.WriteFrame(conn, jf); err != nil {
		return err
	}
	f, err = wire.ReadFrame(conn)
	if err != nil {
		return err
	}
	var jack wire.JoinAckMsg
	if err := wire.DecodeJSON(f, wire.MsgJoinAck, &jack); err != nil {
		return err
	}
	rejoined := 0
	// Build fresh ID maps: a redial may land on a different (or restarted)
	// server that assigns different IDs, and stale entries would deliver
	// packets to the wrong NIC. Fresh maps — not an in-place clear —
	// because the previous connection's maps may still be referenced by a
	// published hot snapshot.
	portIDs := make(map[[2]string]portID)
	routerIDs := make(map[string]uint32)
	nics := make(map[portID]*netsim.Iface)
	for _, assign := range jack.Routers {
		if assign.Rejoined {
			rejoined++
		}
		routerIDs[assign.Name] = assign.ID
		for portName, pid := range assign.Ports {
			key := [2]string{assign.Name, portName}
			id := portID{router: assign.ID, port: pid}
			portIDs[key] = id
		}
	}
	// Build the reverse map against the config's NICs.
	for _, r := range a.cfg.Routers {
		for _, p := range r.Ports {
			if id, ok := portIDs[[2]string{r.Name, p.Name}]; ok {
				nics[id] = p.NIC
			}
		}
	}
	a.mu.Lock()
	a.portIDs = portIDs
	a.routerIDs = routerIDs
	a.nics = nics
	a.mu.Unlock()
	if rejoined > 0 {
		a.log.Info("server recognised previous identity; lab state recovered", "routers", rejoined)
	}
	return nil
}

// attachNICs installs the packet-forwarding-mode receivers: every frame a
// router port emits goes into the tunnel.
func (a *Agent) attachNICs() {
	a.mu.Lock()
	defer a.mu.Unlock()
	for id, nic := range a.nics {
		id := id
		nic.SetReceiver(func(frame []byte) {
			a.sendPacket(id, frame)
		})
	}
}

// sendPacket wraps a captured frame and queues it for the route server.
// It runs inside the NIC receive callback and never blocks: a stalled
// peer costs dropped packets (counted), not stalled device emulation.
func (a *Agent) sendPacket(id portID, frame []byte) {
	hot := a.hot.Load()
	if hot == nil {
		return
	}
	m := wire.PacketMsg{RouterID: id.router, PortID: id.port, Data: frame}
	if dg := hot.dgram; dg != nil && dg.ready.Load() && wire.DgramPacketFitsMTU(len(frame), a.cfg.DatagramMTU) {
		// Established datagram path: kernel send is the whole handoff, no
		// queue, no writer wakeup. A socket error falls through to TCP.
		if wire.WriteDgramPacket(dg.uc, dg.token, m) == nil {
			a.stats.FramesToServer.Add(1)
			a.stats.BytesToServer.Add(uint64(len(frame)))
			mCaptureFrames.Inc()
			mCaptureBytes.Add(uint64(len(frame)))
			return
		}
	}
	if hot.wc.SendPacket(m) == nil {
		a.stats.FramesToServer.Add(1)
		a.stats.BytesToServer.Add(uint64(len(frame)))
		mCaptureFrames.Inc()
		mCaptureBytes.Add(uint64(len(frame)))
	}
}

// writeFrame queues a control frame; the tunnel writer never drops these.
func (a *Agent) writeFrame(f wire.Frame) error {
	hot := a.hot.Load()
	if hot == nil {
		return fmt.Errorf("ris: not connected")
	}
	return hot.wc.SendFrame(f)
}

// readLoop dispatches frames arriving from the route server. A watchdog
// of PeerTimeout (3 missed keepalives by default) tears down a half-open
// connection that TCP alone would let hang forever; the server echoes
// our keepalives, so a healthy idle link always has inbound traffic
// inside the window. The watchdog runs on the agent clock — not kernel
// read deadlines — so silence detection is deterministic under sim.Fake.
func (a *Agent) readLoop(conn net.Conn) {
	defer conn.Close()
	fr := wire.NewFrameReader(conn)
	defer fr.Close()
	if timeout := a.cfg.peerTimeout(); timeout > 0 {
		wd := sim.NewWatchdog(a.cfg.clock(), timeout, func() {
			a.log.Warn("tunnel peer silent past timeout; closing", "timeout", timeout)
			conn.Close() // unblocks the frame reader below
		})
		defer wd.Stop()
		for {
			f, err := fr.Next()
			if err != nil {
				return
			}
			wd.Touch()
			a.dispatchFrame(f)
		}
	}
	for {
		f, err := fr.Next()
		if err != nil {
			return
		}
		a.dispatchFrame(f)
	}
}

// dispatchFrame routes one inbound tunnel frame to its handler.
func (a *Agent) dispatchFrame(f wire.Frame) {
	switch f.Type {
	case wire.MsgPacket:
		a.deliverPacket(f.Payload)
	case wire.MsgConsoleOpen:
		var m wire.ConsoleOpenMsg
		if wire.DecodeJSON(f, wire.MsgConsoleOpen, &m) == nil {
			a.consoleOpen(m)
		}
	case wire.MsgConsoleData:
		if m, err := wire.DecodeConsoleData(f.Payload); err == nil {
			a.consoleInput(m)
		}
	case wire.MsgConsoleClose:
		var m wire.ConsoleCloseMsg
		if wire.DecodeJSON(f, wire.MsgConsoleClose, &m) == nil {
			a.consoleClose(m)
		}
	case wire.MsgKeepalive:
	case wire.MsgError:
		a.log.Warn("server error", "msg", string(f.Payload))
	}
}

// deliverPacket unwraps a tunnel packet and transmits it on the mapped
// NIC. One atomic snapshot load covers the decompressor and the NIC map:
// this runs once per inbound frame and used to take a.mu twice.
func (a *Agent) deliverPacket(payload []byte) {
	m, err := wire.DecodePacket(payload)
	if err != nil {
		return
	}
	hot := a.hot.Load()
	if hot == nil {
		return
	}
	data := m.Data
	if m.Flags&wire.FlagCompressed != 0 {
		if hot.decomp == nil {
			return
		}
		data, err = hot.decomp.Decompress(data)
		if err != nil {
			return
		}
	}
	nic := hot.nics[portID{router: m.RouterID, port: m.PortID}]
	if nic == nil {
		return
	}
	a.stats.FramesFromServer.Add(1)
	a.stats.BytesFromServer.Add(uint64(len(data)))
	mDeliveredFrames.Inc()
	mDeliveredBytes.Add(uint64(len(data)))
	nic.Transmit(data)
}

// keepaliveLoop emits periodic liveness frames until the connection dies.
// The ticker runs on the agent clock, so simulated runs emit keepalives
// on virtual time.
func (a *Agent) keepaliveLoop(connClosed <-chan struct{}) {
	t := sim.NewTicker(a.cfg.clock(), a.cfg.keepaliveInterval())
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if a.writeFrame(wire.Frame{Type: wire.MsgKeepalive}) != nil {
				return
			}
		case <-connClosed:
			return
		}
	}
}

// --- console relaying ------------------------------------------------------

// startConsoleReaders launches one reader per consoled router: device
// output is forwarded to the server while a session is active, discarded
// otherwise.
func (a *Agent) startConsoleReaders() {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, r := range a.cfg.Routers {
		if r.Console == nil {
			continue
		}
		name := r.Name
		if _, ok := a.routerIDs[name]; !ok {
			a.log.Warn("consoled router has no assigned ID; skipping console relay", "router", name)
			continue
		}
		if _, dup := a.consoles[name]; dup {
			continue // reader survives across redials; never start a second
		}
		relay := &consoleRelay{rw: r.Console}
		a.consoles[name] = relay
		a.consoleWg.Add(1)
		go func() {
			defer a.consoleWg.Done()
			buf := make([]byte, 4096)
			for {
				n, err := relay.rw.Read(buf)
				if n > 0 {
					relay.mu.Lock()
					sess := relay.session
					relay.mu.Unlock()
					// Resolve the router's current wire ID per read: it can
					// change when a redial lands on a fresh server.
					if rid := a.RouterID(name); sess != 0 && rid != 0 {
						a.writeFrame(wire.Frame{
							Type: wire.MsgConsoleData,
							Payload: wire.EncodeConsoleData(wire.ConsoleDataMsg{
								RouterID: rid, SessionID: sess, Data: buf[:n],
							}),
						})
						mConsoleBytes.Add(uint64(n))
					}
				}
				if err != nil {
					return
				}
			}
		}()
	}
}

func (a *Agent) relayFor(routerID uint32) *consoleRelay {
	a.mu.Lock()
	defer a.mu.Unlock()
	for name, id := range a.routerIDs {
		if id == routerID {
			return a.consoles[name]
		}
	}
	return nil
}

func (a *Agent) consoleOpen(m wire.ConsoleOpenMsg) {
	if relay := a.relayFor(m.RouterID); relay != nil {
		relay.mu.Lock()
		relay.session = m.SessionID
		relay.mu.Unlock()
	}
}

func (a *Agent) consoleInput(m wire.ConsoleDataMsg) {
	relay := a.relayFor(m.RouterID)
	if relay == nil {
		return
	}
	relay.mu.Lock()
	active := relay.session == m.SessionID
	relay.mu.Unlock()
	if active {
		relay.rw.Write(m.Data)
		mConsoleBytes.Add(uint64(len(m.Data)))
	}
}

func (a *Agent) consoleClose(m wire.ConsoleCloseMsg) {
	if relay := a.relayFor(m.RouterID); relay != nil {
		relay.mu.Lock()
		if relay.session == m.SessionID {
			relay.session = 0
		}
		relay.mu.Unlock()
	}
}
