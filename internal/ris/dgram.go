package ris

// The RIS half of the best-effort datagram data plane (tunnel transport
// v2). When the HelloAck grants the offer, the agent dials a UDP socket
// to the server's port (the same number as the TCP tunnel), punches it
// with the session token until the server acknowledges — NAT and
// firewall state is created by this outbound datagram, exactly like the
// outbound TCP dial the paper relies on — and then carries PACKET frames
// over it in both directions. Control frames, consoles and joins stay on
// the TCP tunnel; a datagram that does not fit, or a path that never
// establishes, falls back to TCP per frame.

import (
	"net"
	"sync/atomic"
	"time"

	"rnl/internal/sim"
	"rnl/internal/wire"
)

// dgramPunchInterval is the punch retransmit cadence while the path is
// not yet acknowledged. Real clock by design: like the handshake
// deadline, it polices a real network round trip even inside a
// simulation.
const dgramPunchInterval = 250 * time.Millisecond

// agentDgram is one connection's datagram endpoint. A redial builds a
// fresh one (new token, new socket); the old socket dies with the old
// connection's read loop.
type agentDgram struct {
	uc    *net.UDPConn
	token uint64
	// ready flips when the server's punch-ack arrives: only then does
	// sendPacket prefer the datagram, so no frame is ever sent into a
	// path the server cannot yet answer on.
	ready atomic.Bool
}

// dialDatagram opens the UDP socket toward the server. Failure is
// logged and degrades to TCP-only; the tunnel itself is unaffected.
func (a *Agent) dialDatagram(token uint64) *agentDgram {
	raddr, err := net.ResolveUDPAddr("udp", a.cfg.ServerAddr)
	if err != nil {
		a.log.Warn("datagram resolve failed; staying TCP-only", "err", err)
		return nil
	}
	uc, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		a.log.Warn("datagram dial failed; staying TCP-only", "err", err)
		return nil
	}
	return &agentDgram{uc: uc, token: token}
}

// dgramReadLoop services the datagram socket until it is closed (the
// tunnel's read-loop exit closes it). Token mismatches are dropped —
// the socket is connected, but UDP trusts nothing.
func (a *Agent) dgramReadLoop(dg *agentDgram) {
	buf := make([]byte, wire.MaxDgramLen)
	for {
		n, err := dg.uc.Read(buf)
		if err != nil {
			return
		}
		kind, token, body, err := wire.DecodeDgram(buf[:n])
		if err != nil || token != dg.token {
			continue
		}
		switch kind {
		case wire.DgramPunchAck:
			dg.ready.Store(true)
		case wire.DgramPacket:
			// Same delivery as a TCP PACKET frame. Datagram payloads are
			// never compressed (the §4 codec is stateful and would desync
			// under loss), and deliverPacket enforces that: a datagram
			// session's decompressor is nil.
			a.deliverPacket(body)
		}
	}
}

// dgramPunchLoop retransmits the punch until the server acknowledges or
// the connection dies. The first punch goes out immediately; each
// retransmit rides one reused timer.
func (a *Agent) dgramPunchLoop(dg *agentDgram, stop <-chan struct{}) {
	punch := wire.EncodeDgramPunch(dg.token)
	timer := sim.NewOneShot(sim.Real{})
	defer timer.Stop()
	for {
		if dg.ready.Load() {
			return
		}
		if _, err := dg.uc.Write(punch); err != nil {
			return
		}
		timer.Arm(dgramPunchInterval)
		select {
		case <-stop:
			return
		case <-timer.C:
		}
	}
}

// DatagramReady reports whether the current connection's datagram path
// is established (negotiated, dialed and punch-acknowledged).
func (a *Agent) DatagramReady() bool {
	hot := a.hot.Load()
	return hot != nil && hot.dgram != nil && hot.dgram.ready.Load()
}
