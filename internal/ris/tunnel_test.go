package ris_test

import (
	"bytes"
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"rnl/internal/netsim"
	"rnl/internal/ris"
	"rnl/internal/routeserver"
	"rnl/internal/wire"
)

// fakeServer is a scriptable route-server stand-in: it performs the real
// wire handshake on every accepted connection, then hands the connection
// to a per-connection behavior function. It lets the tests simulate
// failure modes a healthy routeserver.Server never produces — immediate
// drops, half-open silence, stalled readers.
type fakeServer struct {
	t       *testing.T
	ln      net.Listener
	addr    string
	accepts chan time.Time
}

// startFakeServer listens on loopback and runs handle(i, conn) for the
// i-th accepted connection (0-based) after completing the handshake.
// handle owns the connection and must close it.
func startFakeServer(t *testing.T, handle func(i int, conn net.Conn)) *fakeServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := &fakeServer{t: t, ln: ln, addr: ln.Addr().String(), accepts: make(chan time.Time, 64)}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for i := 0; ; i++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			fs.accepts <- time.Now()
			i := i
			go func() {
				if err := fakeHandshake(conn); err != nil {
					conn.Close()
					return
				}
				handle(i, conn)
			}()
		}
	}()
	return fs
}

// waitAccept blocks until the fake server accepts another connection.
func (fs *fakeServer) waitAccept(timeout time.Duration) time.Time {
	fs.t.Helper()
	select {
	case at := <-fs.accepts:
		return at
	case <-time.After(timeout):
		fs.t.Fatalf("no connection accepted within %v", timeout)
		return time.Time{}
	}
}

// fakeHandshake speaks the server side of Hello + Join, assigning router
// IDs 1..n and port IDs 1..m per router.
func fakeHandshake(conn net.Conn) error {
	f, err := wire.ReadFrame(conn)
	if err != nil {
		return err
	}
	var hello wire.HelloMsg
	if err := wire.DecodeJSON(f, wire.MsgHello, &hello); err != nil {
		return err
	}
	ack, err := wire.EncodeJSON(wire.MsgHelloAck, wire.HelloAckMsg{Version: wire.ProtocolVersion})
	if err != nil {
		return err
	}
	if err := wire.WriteFrame(conn, ack); err != nil {
		return err
	}
	f, err = wire.ReadFrame(conn)
	if err != nil {
		return err
	}
	var join wire.JoinMsg
	if err := wire.DecodeJSON(f, wire.MsgJoin, &join); err != nil {
		return err
	}
	jack := wire.JoinAckMsg{}
	for ri, r := range join.Routers {
		assign := wire.RouterAssignment{Name: r.Name, ID: uint32(ri + 1), Ports: map[string]uint32{}}
		for pi, p := range r.Ports {
			assign.Ports[p.Name] = uint32(pi + 1)
		}
		jack.Routers = append(jack.Routers, assign)
	}
	jf, err := wire.EncodeJSON(wire.MsgJoinAck, jack)
	if err != nil {
		return err
	}
	return wire.WriteFrame(conn, jf)
}

// TestReconnectBackoffAfterEarlyDrop: a server that accepts the dial and
// handshake but drops the connection immediately must see exponentially
// spaced redials, not a floor-rate reconnect storm. (The old bug reset
// the backoff on every Start success, so an accept-then-drop server was
// hammered at the base interval forever.)
func TestReconnectBackoffAfterEarlyDrop(t *testing.T) {
	fs := startFakeServer(t, func(i int, conn net.Conn) {
		conn.Close() // drop right after handshake
	})

	cfg := validConfig(fs.addr)
	cfg.ReconnectBackoff = 50 * time.Millisecond
	cfg.ReconnectResetAfter = time.Hour // never consider these stable
	a, err := ris.New(cfg, quiet())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go a.Run(ctx)

	first := fs.waitAccept(5 * time.Second)
	var last time.Time
	for i := 0; i < 4; i++ {
		last = fs.waitAccept(10 * time.Second)
	}
	// Redial gaps should be ~50+100+200+400ms = 750ms. Without the fix
	// every gap is ~50ms (total ~200ms). Allow generous scheduling slack.
	if elapsed := last.Sub(first); elapsed < 500*time.Millisecond {
		t.Errorf("5 accepts within %v: backoff is resetting on accept-then-drop connections", elapsed)
	}
}

// TestBackoffResetsAfterStableConnection: the backoff must still return
// to its base once a connection survives ReconnectResetAfter, so a
// recovered server is redialed promptly after the next (unrelated) drop.
func TestBackoffResetsAfterStableConnection(t *testing.T) {
	closed4 := make(chan time.Time, 1)
	fs := startFakeServer(t, func(i int, conn net.Conn) {
		if i < 3 {
			conn.Close() // three early drops grow the backoff to 400ms
			return
		}
		if i == 3 {
			time.Sleep(600 * time.Millisecond) // stable past ReconnectResetAfter
			closed4 <- time.Now()
		}
		conn.Close()
	})

	cfg := validConfig(fs.addr)
	cfg.ReconnectBackoff = 50 * time.Millisecond
	cfg.ReconnectResetAfter = 200 * time.Millisecond
	cfg.PeerTimeout = time.Minute // only the server ends connections here
	a, err := ris.New(cfg, quiet())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go a.Run(ctx)

	for i := 0; i < 4; i++ {
		fs.waitAccept(10 * time.Second)
	}
	var droppedAt time.Time
	select {
	case droppedAt = <-closed4:
	case <-time.After(10 * time.Second):
		t.Fatal("stable connection never closed")
	}
	fifth := fs.waitAccept(10 * time.Second)
	// Backoff reset to 50ms after the stable connection; without the
	// reset the next redial would wait the grown 400ms.
	if gap := fifth.Sub(droppedAt); gap > 250*time.Millisecond {
		t.Errorf("redial after stable connection took %v; backoff did not reset", gap)
	}
}

// TestHalfOpenPeerTimeout: a peer that stays connected but goes
// completely silent (half-open TCP) must be torn down after PeerTimeout
// and redialed — without the read deadline the agent hung forever.
func TestHalfOpenPeerTimeout(t *testing.T) {
	hold := make(chan struct{})
	t.Cleanup(func() { close(hold) })
	fs := startFakeServer(t, func(i int, conn net.Conn) {
		<-hold // never read, never write: silent but open
		conn.Close()
	})

	cfg := validConfig(fs.addr)
	cfg.KeepaliveInterval = 50 * time.Millisecond
	cfg.PeerTimeout = 150 * time.Millisecond
	cfg.ReconnectBackoff = 20 * time.Millisecond
	a, err := ris.New(cfg, quiet())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go a.Run(ctx)

	fs.waitAccept(5 * time.Second)
	// The agent should give up on the silent peer within ~PeerTimeout and
	// dial again.
	fs.waitAccept(5 * time.Second)
	if a.Stats().Reconnects.Load() == 0 {
		t.Error("reconnect counter did not move after half-open teardown")
	}
}

// TestKeepaliveEchoKeepsIdleLinkAlive: against a real route server, an
// idle but healthy connection must NOT trip the read deadline — the
// server echoes keepalives, giving the agent inbound traffic inside
// every timeout window.
func TestKeepaliveEchoKeepsIdleLinkAlive(t *testing.T) {
	s := routeserver.New(routeserver.Options{Logger: quiet()})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	cfg := validConfig(addr)
	cfg.KeepaliveInterval = 50 * time.Millisecond
	cfg.PeerTimeout = 200 * time.Millisecond
	a, err := ris.New(cfg, quiet())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go a.Run(ctx)

	deadline := time.Now().Add(3 * time.Second)
	for len(s.Inventory()) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if len(s.Inventory()) != 1 {
		t.Fatal("agent never joined")
	}
	time.Sleep(time.Second) // five timeout windows of pure idleness
	if n := a.Stats().Reconnects.Load(); n != 0 {
		t.Errorf("healthy idle link reconnected %d times; keepalive echo is broken", n)
	}
}

// TestZeroPortConsoleRouter: console-only equipment (no ports mapped)
// must join and relay its console instead of panicking on Ports[0].
func TestZeroPortConsoleRouter(t *testing.T) {
	s := routeserver.New(routeserver.Options{Logger: quiet()})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	serial := netsim.NewSerialPort()
	cfg := ris.Config{
		ServerAddr: addr,
		PCName:     "pc-console",
		Routers: []ris.RouterDef{{
			Name:    "termsrv",
			Console: serial.PCEnd, // zero ports: console-only equipment
		}},
	}
	a, err := ris.New(cfg, quiet())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)

	id := a.RouterID("termsrv")
	if id == 0 {
		t.Fatal("console-only router got no ID")
	}
	cs, err := s.OpenConsole(id)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()

	// Device output reaches the session. The ConsoleOpen notification
	// races the first device write (pre-session output is discarded by
	// design), so the device repeats its prompt like real firmware would.
	promptDone := make(chan struct{})
	defer close(promptDone)
	go func() {
		for {
			select {
			case <-promptDone:
				return
			case <-time.After(20 * time.Millisecond):
				serial.DeviceEnd.Write([]byte("login:"))
			}
		}
	}()
	buf := make([]byte, 64)
	type readRes struct {
		n   int
		err error
	}
	ch := make(chan readRes, 1)
	go func() {
		n, err := cs.Read(buf)
		ch <- readRes{n, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil || !bytes.Contains(buf[:r.n], []byte("login")) {
			t.Fatalf("console read: %q, %v", buf[:r.n], r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("console output never arrived")
	}
	// ...and keystrokes reach the device.
	if _, err := cs.Write([]byte("admin\n")); err != nil {
		t.Fatal(err)
	}
	go func() {
		n, err := serial.DeviceEnd.Read(buf)
		ch <- readRes{n, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil || !bytes.Contains(buf[:r.n], []byte("admin")) {
			t.Fatalf("device read: %q, %v", buf[:r.n], r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("console input never arrived at the device")
	}
}

// TestStalledPeerDoesNotBlockCapture: when the route server stops
// reading, captured frames must keep flowing into the (bounded) send
// queue without ever blocking the device side — excess frames are shed
// and counted, not backpressured into the emulation.
func TestStalledPeerDoesNotBlockCapture(t *testing.T) {
	var stalled atomic.Bool
	hold := make(chan struct{})
	t.Cleanup(func() { close(hold) })
	fs := startFakeServer(t, func(i int, conn net.Conn) {
		stalled.Store(true) // never read another byte
		<-hold
		conn.Close()
	})

	nic := netsim.NewIface("n1")
	cfg := ris.Config{
		ServerAddr: fs.addr,
		PCName:     "pc-flood",
		Routers: []ris.RouterDef{{
			Name:  "r1",
			Ports: []ris.PortMap{{Name: "p1", NIC: nic}},
		}},
		SendQueueLen: 256,
		PeerTimeout:  time.Minute, // the stall must surface as drops, not teardown
	}
	a, err := ris.New(cfg, quiet())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	for !stalled.Load() {
		time.Sleep(time.Millisecond)
	}

	// Flood ~75 MB at the stalled peer: far beyond socket buffers plus a
	// 256-frame queue, so drops are guaranteed; each Deliver must return
	// promptly (enqueue or shed — never block on the dead TCP window).
	frame := make([]byte, 1500)
	const n = 50000
	start := time.Now()
	for i := 0; i < n; i++ {
		nic.Deliver(frame)
	}
	elapsed := time.Since(start)
	if elapsed > 10*time.Second {
		t.Errorf("flooding a stalled peer took %v; capture path is blocking", elapsed)
	}
	if d := a.Stats().FramesDropped.Load(); d == 0 {
		t.Error("no frames dropped despite a stalled peer and a 256-frame queue")
	} else {
		t.Logf("flood of %d frames took %v, dropped %d", n, elapsed, d)
	}
}
