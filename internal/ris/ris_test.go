package ris_test

import (
	"context"
	"io"
	"log/slog"
	"testing"
	"time"

	"rnl/internal/netsim"
	"rnl/internal/ris"
	"rnl/internal/routeserver"
)

func quiet() *slog.Logger { return slog.New(slog.NewTextHandler(io.Discard, nil)) }

func validConfig(addr string) ris.Config {
	return ris.Config{
		ServerAddr: addr,
		PCName:     "pc-test",
		Routers: []ris.RouterDef{{
			Name:  "r1",
			Ports: []ris.PortMap{{Name: "p1", NIC: netsim.NewIface("n1")}},
		}},
	}
}

func TestConfigValidation(t *testing.T) {
	base := validConfig("127.0.0.1:1")
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		edit func(*ris.Config)
	}{
		{"no server", func(c *ris.Config) { c.ServerAddr = "" }},
		{"no routers", func(c *ris.Config) { c.Routers = nil }},
		{"empty router name", func(c *ris.Config) { c.Routers[0].Name = "" }},
		{"dup router", func(c *ris.Config) { c.Routers = append(c.Routers, c.Routers[0]) }},
		{"no ports", func(c *ris.Config) { c.Routers[0].Ports = nil }},
		{"empty port name", func(c *ris.Config) { c.Routers[0].Ports[0].Name = "" }},
		{"dup port", func(c *ris.Config) {
			c.Routers[0].Ports = append(c.Routers[0].Ports, c.Routers[0].Ports[0])
		}},
		{"nil NIC", func(c *ris.Config) { c.Routers[0].Ports[0].NIC = nil }},
	}
	for _, c := range cases {
		cfg := validConfig("127.0.0.1:1")
		c.edit(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: validation should fail", c.name)
		}
		if _, err := ris.New(cfg, quiet()); err == nil {
			t.Errorf("%s: New should fail", c.name)
		}
	}
}

func TestStartFailsWithoutServer(t *testing.T) {
	a, err := ris.New(validConfig("127.0.0.1:1"), quiet()) // nothing listens on port 1
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err == nil {
		t.Fatal("Start should fail when the route server is unreachable")
	}
}

func TestJoinAssignsIDs(t *testing.T) {
	s := routeserver.New(routeserver.Options{Logger: quiet()})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	a, err := ris.New(validConfig(addr), quiet())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)

	if id := a.RouterID("r1"); id == 0 {
		t.Error("router ID not assigned")
	}
	if _, _, ok := a.PortID("r1", "p1"); !ok {
		t.Error("port ID not assigned")
	}
	if _, _, ok := a.PortID("r1", "ghost"); ok {
		t.Error("unknown port should have no ID")
	}
	if id := a.RouterID("ghost"); id != 0 {
		t.Error("unknown router should have ID 0")
	}
	// The server sees the inventory.
	inv := s.Inventory()
	if len(inv) != 1 || inv[0].Name != "r1" || inv[0].PC != "pc-test" {
		t.Errorf("inventory = %+v", inv)
	}
}

func TestRunReconnects(t *testing.T) {
	s := routeserver.New(routeserver.Options{Logger: quiet()})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	a, err := ris.New(validConfig(addr), quiet())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		a.Run(ctx)
		close(done)
	}()

	// Wait for the first join.
	deadline := time.Now().Add(3 * time.Second)
	for len(s.Inventory()) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if len(s.Inventory()) != 1 {
		t.Fatal("agent never joined")
	}

	// Kill the server side: the agent must notice and eventually rejoin
	// once a new server appears on the same port.
	s.Close()
	s2 := routeserver.New(routeserver.Options{Logger: quiet()})
	if _, err := s2.Listen(addr); err != nil {
		t.Fatalf("relisten: %v", err)
	}
	defer s2.Close()

	deadline = time.Now().Add(10 * time.Second)
	for len(s2.Inventory()) == 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if len(s2.Inventory()) != 1 {
		t.Fatal("agent never rejoined the restarted server")
	}
	if a.Stats().Reconnects.Load() == 0 {
		t.Error("reconnect counter did not move")
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after context cancel")
	}
}
