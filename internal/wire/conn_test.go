package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"rnl/internal/admission"
)

// tcpPair returns two ends of a loopback TCP connection.
func tcpPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { client.Close(); r.c.Close() })
	return client, r.c
}

// patternFrame builds a recognizable payload: 4-byte writer id, 4-byte
// seq, then bytes derived from both — torn or corrupted frames fail the
// check below.
func patternFrame(writer, seq uint32, size int) []byte {
	f := make([]byte, size)
	binary.BigEndian.PutUint32(f[0:4], writer)
	binary.BigEndian.PutUint32(f[4:8], seq)
	for i := 8; i < size; i++ {
		f[i] = byte(uint32(i) * (writer + 3) * (seq + 7))
	}
	return f
}

func checkPattern(t *testing.T, data []byte) (writer, seq uint32) {
	t.Helper()
	if len(data) < 8 {
		t.Fatalf("frame too short: %d bytes", len(data))
	}
	writer = binary.BigEndian.Uint32(data[0:4])
	seq = binary.BigEndian.Uint32(data[4:8])
	want := patternFrame(writer, seq, len(data))
	if !bytes.Equal(data, want) {
		t.Fatalf("frame corrupted (writer %d seq %d)", writer, seq)
	}
	return writer, seq
}

// TestConnConcurrentIntegrity hammers one Conn from many goroutines
// (packets and control frames interleaved) and verifies every frame
// arrives whole, with per-sender ordering intact.
func TestConnConcurrentIntegrity(t *testing.T) {
	client, server := tcpPair(t)
	wc := NewConn(client, ConnConfig{QueueLen: 1 << 16})
	defer wc.Close()

	const writers, perWriter = 4, 500
	const controlWriters, perControl = 2, 100

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seq := 0; seq < perWriter; seq++ {
				m := PacketMsg{RouterID: uint32(w), PortID: 9, Data: patternFrame(uint32(w), uint32(seq), 200)}
				if err := wc.SendPacket(m); err != nil {
					t.Errorf("SendPacket: %v", err)
					return
				}
			}
		}()
	}
	for w := 0; w < controlWriters; w++ {
		w := w + 100
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seq := 0; seq < perControl; seq++ {
				f := Frame{Type: MsgConsoleData, Payload: patternFrame(uint32(w), uint32(seq), 64)}
				if err := wc.SendFrame(f); err != nil {
					t.Errorf("SendFrame: %v", err)
					return
				}
			}
		}()
	}

	total := writers*perWriter + controlWriters*perControl
	lastSeq := map[uint32]int{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		fr := NewFrameReader(server)
		for i := 0; i < total; i++ {
			f, err := fr.Next()
			if err != nil {
				t.Errorf("frame %d: %v", i, err)
				return
			}
			var w, seq uint32
			switch f.Type {
			case MsgPacket:
				m, err := DecodePacket(f.Payload)
				if err != nil {
					t.Errorf("frame %d: %v", i, err)
					return
				}
				w, seq = checkPattern(t, m.Data)
				if m.RouterID != w {
					t.Errorf("router ID %d does not match payload writer %d", m.RouterID, w)
				}
			case MsgConsoleData:
				w, seq = checkPattern(t, f.Payload)
			default:
				t.Errorf("frame %d: unexpected type %d", i, f.Type)
				return
			}
			if last, ok := lastSeq[w]; ok && int(seq) != last+1 {
				t.Errorf("writer %d: seq %d after %d", w, seq, last)
			}
			lastSeq[w] = int(seq)
		}
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("frames never all arrived")
	}
	if d := wc.Stats().PacketsDropped.Load(); d != 0 {
		t.Errorf("dropped %d packets with an oversized queue", d)
	}
	if fl, fw := wc.Stats().Flushes.Load(), wc.Stats().FramesWritten.Load(); fl >= fw {
		t.Logf("no batching observed (%d flushes for %d frames) — scheduling dependent, not fatal", fl, fw)
	}
}

// TestConnDropsOldestKeepsControl saturates a Conn whose peer is stalled
// and verifies the backpressure policy: oldest packets are shed and
// counted, control frames always survive.
func TestConnDropsOldestKeepsControl(t *testing.T) {
	a, b := net.Pipe() // unbuffered: the writer blocks until b reads
	defer b.Close()

	var dropCb int
	var dropMu sync.Mutex
	wc := NewConn(a, ConnConfig{
		QueueLen:     8,
		WriteTimeout: time.Minute,
		OnShed: func(_ string, n int) {
			dropMu.Lock()
			dropCb += n
			dropMu.Unlock()
		},
	})
	defer wc.Close()

	// First packet: the writer dequeues it and blocks flushing to the
	// unread pipe. Everything sent afterwards stays queued.
	if err := wc.SendPacket(PacketMsg{RouterID: 1, PortID: 1, Data: patternFrame(0, 0, 64)}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for wc.Stats().FramesWritten.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("writer never picked up the first packet")
		}
		time.Sleep(time.Millisecond)
	}

	const flood = 50
	for seq := 1; seq <= flood; seq++ {
		if err := wc.SendPacket(PacketMsg{RouterID: 1, PortID: 1, Data: patternFrame(0, uint32(seq), 64)}); err != nil {
			t.Fatal(err)
		}
	}
	const controls = 3
	for i := 0; i < controls; i++ {
		if err := wc.SendFrame(Frame{Type: MsgKeepalive}); err != nil {
			t.Fatal(err)
		}
	}

	wantDropped := uint64(flood - 8) // queue holds 8 packets, the newest ones
	if d := wc.Stats().PacketsDropped.Load(); d != wantDropped {
		t.Fatalf("PacketsDropped = %d, want %d", d, wantDropped)
	}
	dropMu.Lock()
	if dropCb != int(wantDropped) {
		t.Fatalf("OnShed total = %d, want %d", dropCb, wantDropped)
	}
	dropMu.Unlock()

	// Unblock the pipe and account for everything that reaches the wire.
	var gotControl int
	var seqs []uint32
	fr := NewFrameReader(b)
	wantFrames := 1 + 8 + controls
	readDone := make(chan struct{})
	go func() {
		defer close(readDone)
		for i := 0; i < wantFrames; i++ {
			f, err := fr.Next()
			if err != nil {
				t.Errorf("frame %d: %v", i, err)
				return
			}
			switch f.Type {
			case MsgKeepalive:
				gotControl++
			case MsgPacket:
				m, err := DecodePacket(f.Payload)
				if err != nil {
					t.Errorf("frame %d: %v", i, err)
					return
				}
				_, seq := checkPattern(t, m.Data)
				seqs = append(seqs, seq)
			}
		}
	}()
	select {
	case <-readDone:
	case <-time.After(10 * time.Second):
		t.Fatal("queued frames never drained")
	}

	if gotControl != controls {
		t.Errorf("control frames delivered = %d, want %d (control must never be dropped)", gotControl, controls)
	}
	// Drop-oldest: the survivors are the first packet (already in
	// flight) plus the NEWEST 8 of the flood.
	want := []uint32{0}
	for seq := flood - 7; seq <= flood; seq++ {
		want = append(want, uint32(seq))
	}
	if fmt.Sprint(seqs) != fmt.Sprint(want) {
		t.Errorf("surviving packet seqs = %v, want %v", seqs, want)
	}
}

// TestConnCloseFlushesQueue: frames queued before Close must reach the
// peer — Close drains, it does not discard.
func TestConnCloseFlushesQueue(t *testing.T) {
	client, server := tcpPair(t)
	wc := NewConn(client, ConnConfig{})
	const n = 200
	for i := 0; i < n; i++ {
		if err := wc.SendPacket(PacketMsg{RouterID: 2, PortID: 3, Data: patternFrame(1, uint32(i), 128)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := wc.SendFrame(Frame{Type: MsgLeave}); err != nil {
		t.Fatal(err)
	}
	wc.Close()

	fr := NewFrameReader(server)
	var packets, leaves int
	for {
		f, err := fr.Next()
		if err != nil {
			break // EOF once the closed conn drains
		}
		switch f.Type {
		case MsgPacket:
			packets++
		case MsgLeave:
			leaves++
		}
	}
	if packets != n || leaves != 1 {
		t.Errorf("after Close: %d packets, %d leaves; want %d and 1", packets, leaves, n)
	}
}

// TestConnSendAfterCloseFails: sends on a closed Conn return an error
// instead of queueing into the void.
func TestConnSendAfterCloseFails(t *testing.T) {
	client, _ := tcpPair(t)
	wc := NewConn(client, ConnConfig{})
	wc.Close()
	if err := wc.SendFrame(Frame{Type: MsgKeepalive}); err == nil {
		t.Error("SendFrame after Close should fail")
	}
	if err := wc.SendPacket(PacketMsg{Data: []byte{1}}); err == nil {
		t.Error("SendPacket after Close should fail")
	}
}

// countingWriter records how many Write calls it sees.
type countingWriter struct {
	writes int
	buf    bytes.Buffer
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	return w.buf.Write(p)
}

// TestWriteFrameSingleWrite: header and payload must leave in ONE Write
// call so concurrent writers on a net.Conn cannot tear frames apart.
func TestWriteFrameSingleWrite(t *testing.T) {
	var w countingWriter
	if err := WriteFrame(&w, Frame{Type: MsgPacket, Payload: []byte("payload bytes")}); err != nil {
		t.Fatal(err)
	}
	if w.writes != 1 {
		t.Fatalf("WriteFrame issued %d Write calls, want 1", w.writes)
	}
	f, err := ReadFrame(&w.buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != MsgPacket || string(f.Payload) != "payload bytes" {
		t.Errorf("roundtrip got %+v", f)
	}
}

// TestWriteFrameConcurrentNoTearing: two goroutines writing frames to
// the same TCP conn WITHOUT any shared mutex must not interleave bytes
// (each frame is a single conn.Write, and net.Conn Writes are atomic
// with respect to each other).
func TestWriteFrameConcurrentNoTearing(t *testing.T) {
	client, server := tcpPair(t)
	const writers, perWriter = 4, 200

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seq := 0; seq < perWriter; seq++ {
				f := Frame{Type: MsgConsoleData, Payload: patternFrame(uint32(w), uint32(seq), 300)}
				if err := WriteFrame(client, f); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}()
	}

	fr := NewFrameReader(server)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < writers*perWriter; i++ {
			f, err := fr.Next()
			if err != nil {
				t.Errorf("frame %d: %v", i, err)
				return
			}
			checkPattern(t, f.Payload)
		}
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("frames never all arrived intact")
	}
}

// TestFrameReaderMatchesReadFrame: the pooled reader and the allocating
// reader must agree on the same byte stream.
func TestFrameReaderMatchesReadFrame(t *testing.T) {
	var buf bytes.Buffer
	var want []Frame
	for i := 0; i < 20; i++ {
		f := Frame{Type: MsgType(i%5 + 1), Payload: bytes.Repeat([]byte{byte(i)}, i*7)}
		want = append(want, Frame{Type: f.Type, Payload: append([]byte(nil), f.Payload...)})
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(bytes.NewReader(buf.Bytes()))
	for i, w := range want {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != w.Type || !bytes.Equal(got.Payload, w.Payload) {
			t.Errorf("frame %d mismatch", i)
		}
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Errorf("want EOF at end, got %v", err)
	}
}

// TestConnWriterFailurePropagates: once the peer is gone, sends start
// returning the write error so callers can tear down.
func TestConnWriterFailurePropagates(t *testing.T) {
	client, server := tcpPair(t)
	wc := NewConn(client, ConnConfig{WriteTimeout: 100 * time.Millisecond})
	defer wc.Close()
	server.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := wc.SendFrame(Frame{Type: MsgKeepalive})
		if err != nil && err != ErrConnClosed {
			break // writer error surfaced
		}
		if err == ErrConnClosed {
			t.Fatal("conn reported closed instead of the write error")
		}
		if time.Now().After(deadline) {
			t.Fatal("write error never surfaced")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if wc.Err() == nil {
		t.Error("Err() should report the writer failure")
	}
}

// TestConnFairShareShedding saturates the queue with two classes and
// asserts the fair-share policy sheds only the dominant one: the quiet
// class's packets all survive while every drop lands on the noisy class.
func TestConnFairShareShedding(t *testing.T) {
	a, b := net.Pipe() // unbuffered: the writer blocks until b reads
	defer b.Close()

	var shedMu sync.Mutex
	shedBy := map[string]int{}
	wc := NewConn(a, ConnConfig{
		QueueLen:     10,
		WriteTimeout: time.Minute,
		OnShed: func(class string, n int) {
			shedMu.Lock()
			shedBy[class] += n
			shedMu.Unlock()
		},
	})
	defer wc.Close()

	// First packet: the writer dequeues it and blocks flushing to the
	// unread pipe. Everything sent afterwards stays queued.
	if err := wc.SendPacketClass("noisy", PacketMsg{RouterID: 1, PortID: 1, Data: patternFrame(1, 0, 64)}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for wc.Stats().FramesWritten.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("writer never picked up the first packet")
		}
		time.Sleep(time.Millisecond)
	}

	// 5 quiet packets fit comfortably, then 45 noisy ones saturate the
	// queue. Once full (5 quiet + 5 noisy), every further noisy arrival
	// makes noisy the majority class, so each one sheds a noisy packet.
	const quiet, noisy = 5, 45
	for seq := 1; seq <= quiet; seq++ {
		if err := wc.SendPacketClass("quiet", PacketMsg{RouterID: 2, PortID: 1, Data: patternFrame(2, uint32(seq), 64)}); err != nil {
			t.Fatal(err)
		}
	}
	for seq := 1; seq <= noisy; seq++ {
		if err := wc.SendPacketClass("noisy", PacketMsg{RouterID: 1, PortID: 1, Data: patternFrame(1, uint32(seq), 64)}); err != nil {
			t.Fatal(err)
		}
	}

	wantShed := noisy - 5 // queue keeps 5 quiet + the 5 newest noisy
	if d := wc.Stats().PacketsDropped.Load(); d != uint64(wantShed) {
		t.Fatalf("PacketsDropped = %d, want %d", d, wantShed)
	}
	shedMu.Lock()
	if shedBy["noisy"] != wantShed || shedBy["quiet"] != 0 {
		t.Fatalf("shed by class = %v, want %d noisy / 0 quiet", shedBy, wantShed)
	}
	shedMu.Unlock()

	// Drain the pipe and verify exactly the expected survivors arrive.
	quietGot, noisyGot := []uint32{}, []uint32{}
	fr := NewFrameReader(b)
	for len(quietGot)+len(noisyGot) < 1+quiet+noisy-wantShed {
		f, err := fr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if f.Type != MsgPacket {
			continue
		}
		m, err := DecodePacket(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		writer, seq := checkPattern(t, m.Data)
		if writer == 2 {
			quietGot = append(quietGot, seq)
		} else {
			noisyGot = append(noisyGot, seq)
		}
	}
	if len(quietGot) != quiet {
		t.Fatalf("quiet survivors = %v, want all %d", quietGot, quiet)
	}
	for i, seq := range quietGot {
		if seq != uint32(i+1) {
			t.Fatalf("quiet seqs = %v, want 1..%d in order", quietGot, quiet)
		}
	}
	// Noisy survivors: seq 0 (already in flight) plus the newest 5.
	wantNoisy := []uint32{0, 41, 42, 43, 44, 45}
	if len(noisyGot) != len(wantNoisy) {
		t.Fatalf("noisy survivors = %v, want %v", noisyGot, wantNoisy)
	}
	for i, seq := range noisyGot {
		if seq != wantNoisy[i] {
			t.Fatalf("noisy survivors = %v, want %v", noisyGot, wantNoisy)
		}
	}
}

// TestConnTenantFairShareStarvation is the tenant-level counterpart of
// TestConnFairShareShedding: a greedy tenant spreads its load over four
// labs so no single lab ever out-queues the quiet tenant's one lab. With
// flat per-lab classes the quiet lab would be the perennial victim; with
// hierarchical classes the shedder aggregates by tenant first, so every
// drop lands on the greedy tenant and the quiet tenant's packets all
// survive — the starvation bound ISSUE 8 demands.
func TestConnTenantFairShareStarvation(t *testing.T) {
	a, b := net.Pipe() // unbuffered: the writer blocks until b reads
	defer b.Close()

	var shedMu sync.Mutex
	shedByTenant := map[string]int{}
	wc := NewConn(a, ConnConfig{
		QueueLen:     12,
		WriteTimeout: time.Minute,
		OnShed: func(class string, n int) {
			tenant, _ := admission.SplitClass(class)
			shedMu.Lock()
			shedByTenant[tenant] += n
			shedMu.Unlock()
		},
	})
	defer wc.Close()

	greedyLab := func(i int) string {
		return admission.HierClass("greedy", fmt.Sprintf("lab%d", i))
	}
	quietClass := admission.HierClass("quiet", "labQ")

	// First packet: dequeued by the writer, which then blocks flushing
	// to the unread pipe. Everything after stays queued.
	if err := wc.SendPacketClass(greedyLab(0), PacketMsg{RouterID: 1, PortID: 1, Data: patternFrame(1, 0, 64)}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for wc.Stats().FramesWritten.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("writer never picked up the first packet")
		}
		time.Sleep(time.Millisecond)
	}

	// Quiet tenant queues 6 packets — more than any single greedy lab
	// will ever hold (12-slot queue, 4 greedy labs → ≤ 3 each if spread,
	// and the shedder keeps greedy's aggregate at the cap). Then the
	// greedy tenant fires 40 packets round-robin across its four labs.
	const quietN, greedyN = 6, 40
	for seq := 1; seq <= quietN; seq++ {
		if err := wc.SendPacketClass(quietClass, PacketMsg{RouterID: 2, PortID: 1, Data: patternFrame(2, uint32(seq), 64)}); err != nil {
			t.Fatal(err)
		}
	}
	for seq := 1; seq <= greedyN; seq++ {
		if err := wc.SendPacketClass(greedyLab(seq%4), PacketMsg{RouterID: 1, PortID: 1, Data: patternFrame(1, uint32(seq), 64)}); err != nil {
			t.Fatal(err)
		}
	}

	// Queue holds 12: the quiet tenant's 6 all survive, greedy keeps 6,
	// and every drop beyond capacity came out of greedy's herd.
	wantShed := greedyN - quietN
	if d := wc.Stats().PacketsDropped.Load(); d != uint64(wantShed) {
		t.Fatalf("PacketsDropped = %d, want %d", d, wantShed)
	}
	shedMu.Lock()
	if shedByTenant["greedy"] != wantShed || shedByTenant["quiet"] != 0 {
		t.Fatalf("shed by tenant = %v, want %d greedy / 0 quiet", shedByTenant, wantShed)
	}
	shedMu.Unlock()

	// Drain the pipe: all six quiet packets arrive in order.
	quietGot := []uint32{}
	fr := NewFrameReader(b)
	for total := 0; total < 1+quietN+greedyN-wantShed; total++ {
		f, err := fr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if f.Type != MsgPacket {
			total--
			continue
		}
		m, err := DecodePacket(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		writer, seq := checkPattern(t, m.Data)
		if writer == 2 {
			quietGot = append(quietGot, seq)
		}
	}
	if len(quietGot) != quietN {
		t.Fatalf("quiet survivors = %v, want all %d", quietGot, quietN)
	}
	for i, seq := range quietGot {
		if seq != uint32(i+1) {
			t.Fatalf("quiet seqs = %v, want 1..%d in order", quietGot, quietN)
		}
	}
}

// TestSendPacketBufsBatch drives a mixed batch — a copied buffer
// (MakePacketBuf) and a zero-copy buffer detached from a FrameReader —
// through SendPacketBufs and verifies each arrives as a standard PACKET
// frame re-addressed to its staged destination.
func TestSendPacketBufsBatch(t *testing.T) {
	client, server := tcpPair(t)
	wc := NewConn(client, ConnConfig{})
	defer wc.Close()

	// Source frame to detach: write a PACKET frame through a pipe-backed
	// FrameReader, exactly how the route server receives one.
	srcData := patternFrame(3, 9, 256)
	var srcBuf bytes.Buffer
	pf := Frame{Type: MsgPacket, Payload: EncodePacket(PacketMsg{RouterID: 1, PortID: 1, Data: srcData})}
	if err := WriteFrame(&srcBuf, pf); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&srcBuf)
	defer fr.Close()
	if _, err := fr.Next(); err != nil {
		t.Fatal(err)
	}

	copied := patternFrame(4, 11, 128)
	batch := []PacketBuf{
		fr.DetachPacket("lab", 7, 8, 0),
		MakePacketBuf("lab", 9, 10, 0, copied),
	}
	if err := wc.SendPacketBufs(batch); err != nil {
		t.Fatal(err)
	}

	rd := NewFrameReader(server)
	defer rd.Close()
	want := []struct {
		router, port uint32
		data         []byte
	}{{7, 8, srcData}, {9, 10, copied}}
	for i, w := range want {
		server.SetReadDeadline(time.Now().Add(5 * time.Second))
		f, err := rd.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Type != MsgPacket {
			t.Fatalf("frame %d: type %v", i, f.Type)
		}
		m, err := DecodePacket(f.Payload)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if m.RouterID != w.router || m.PortID != w.port || !bytes.Equal(m.Data, w.data) {
			t.Fatalf("frame %d: got router %d port %d %d bytes, want router %d port %d %d bytes",
				i, m.RouterID, m.PortID, len(m.Data), w.router, w.port, len(w.data))
		}
	}
}
