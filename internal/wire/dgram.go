package wire

// Best-effort datagram transport for PACKET frames (tunnel transport
// v2). A negotiated session carries its data plane over UDP on the route
// server's port while every control frame (join, console, keepalive,
// leave) stays on the TCP tunnel: the tunneled traffic is L2 frames that
// already expect a lossy wire, so retransmitting them inside TCP only
// adds head-of-line blocking between unrelated labs.
//
// Datagram layout:
//
//	uint8   kind (punch / punch-ack / packet)
//	uint64  session token (big endian, issued in the HelloAck)
//	...     for DgramPacket: a standard MsgPacket payload
//	        (router ID, port ID, flags, frame bytes)
//
// The token binds datagrams to a TCP session: the RIS learns it from the
// HelloAck, the server learns the RIS's UDP address from the first punch
// carrying it (the same outbound-only hole punching the TCP tunnel uses
// to cross firewalls). Datagrams are never compressed — the §4 template
// codec is stateful and loss would desync it — so a session that
// negotiates compression stays TCP-only.

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// Datagram kinds.
const (
	// DgramPunch is RIS → server: establish/refresh the UDP return path.
	DgramPunch byte = 1
	// DgramPunchAck is server → RIS: the punch was accepted.
	DgramPunchAck byte = 2
	// DgramPacket carries one MsgPacket payload, either direction.
	DgramPacket byte = 3
)

// DgramHeaderLen is the kind + token prefix on every datagram.
const DgramHeaderLen = 1 + 8

// MaxDgramLen bounds one datagram — the theoretical UDP payload ceiling.
// Nothing should send datagrams this large on a real path: anything over
// the path MTU is IP-fragmented, and a single lost fragment (or a
// fragment-dropping middlebox) silently blackholes the whole packet,
// which this transport only ever sees as packets_lost_datagram.
const MaxDgramLen = 65507

// DefaultDgramMTU is the default per-datagram budget: conservatively
// under the ubiquitous 1500-byte Ethernet MTU with room for IP/UDP
// headers and common tunnel/VPN overhead, so datagrams traverse
// commodity Internet paths (paper §3.2) unfragmented.
const DefaultDgramMTU = 1400

// DgramPacketFits reports whether a packet with n data bytes fits in one
// datagram under the default MTU budget.
func DgramPacketFits(n int) bool {
	return DgramPacketFitsMTU(n, DefaultDgramMTU)
}

// DgramPacketFitsMTU reports whether a packet with n data bytes fits in
// one datagram no larger than mtu (the whole UDP payload, headers
// included). mtu <= 0 means DefaultDgramMTU; values beyond MaxDgramLen
// clamp to it. Oversize packets fall back to the lossless TCP tunnel.
func DgramPacketFitsMTU(n, mtu int) bool {
	if mtu <= 0 {
		mtu = DefaultDgramMTU
	}
	if mtu > MaxDgramLen {
		mtu = MaxDgramLen
	}
	return DgramHeaderLen+packetHeaderLen+n <= mtu
}

func encodeDgramControl(kind byte, token uint64) []byte {
	out := make([]byte, DgramHeaderLen)
	out[0] = kind
	binary.BigEndian.PutUint64(out[1:9], token)
	return out
}

// EncodeDgramPunch builds a punch datagram.
func EncodeDgramPunch(token uint64) []byte { return encodeDgramControl(DgramPunch, token) }

// EncodeDgramPunchAck builds a punch acknowledgment.
func EncodeDgramPunchAck(token uint64) []byte { return encodeDgramControl(DgramPunchAck, token) }

// AppendDgramPacket appends the datagram encoding of one packet frame to
// dst and returns the extended slice.
func AppendDgramPacket(dst []byte, token uint64, m PacketMsg) []byte {
	var hdr [DgramHeaderLen + packetHeaderLen]byte
	hdr[0] = DgramPacket
	binary.BigEndian.PutUint64(hdr[1:9], token)
	binary.BigEndian.PutUint32(hdr[9:13], m.RouterID)
	binary.BigEndian.PutUint32(hdr[13:17], m.PortID)
	binary.BigEndian.PutUint16(hdr[17:19], m.Flags)
	dst = append(dst, hdr[:]...)
	return append(dst, m.Data...)
}

// DecodeDgram splits one received datagram into kind, token and body.
// For DgramPacket the body is a standard MsgPacket payload; for the
// control kinds it is empty.
func DecodeDgram(b []byte) (kind byte, token uint64, body []byte, err error) {
	if len(b) < DgramHeaderLen {
		return 0, 0, nil, fmt.Errorf("wire: datagram %d bytes, need %d", len(b), DgramHeaderLen)
	}
	return b[0], binary.BigEndian.Uint64(b[1:9]), b[DgramHeaderLen:], nil
}

// dgramScratch recycles encode buffers between datagram senders.
var dgramScratch = sync.Pool{New: func() any { b := make([]byte, 0, 2048); return &b }}

// WriteDgramPacket encodes one packet datagram into pooled scratch and
// sends it with a single Write on a connected UDP socket (the RIS side).
func WriteDgramPacket(w io.Writer, token uint64, m PacketMsg) error {
	bp := dgramScratch.Get().(*[]byte)
	buf := AppendDgramPacket((*bp)[:0], token, m)
	_, err := w.Write(buf)
	*bp = buf
	dgramScratch.Put(bp)
	return err
}

// WriteDgramPacketTo is WriteDgramPacket for the server's shared
// unconnected socket, addressed to one punched peer.
func WriteDgramPacketTo(c *net.UDPConn, addr *net.UDPAddr, token uint64, m PacketMsg) error {
	bp := dgramScratch.Get().(*[]byte)
	buf := AppendDgramPacket((*bp)[:0], token, m)
	_, err := c.WriteToUDP(buf, addr)
	*bp = buf
	dgramScratch.Put(bp)
	return err
}
