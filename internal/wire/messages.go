package wire

import (
	"encoding/json"
	"fmt"
)

// HelloMsg opens a tunnel: protocol version check plus feature
// negotiation (packet compression, datagram data plane).
type HelloMsg struct {
	Version  int    `json:"version"`
	PCName   string `json:"pc_name"`
	Compress bool   `json:"compress"`
	// Datagram offers the best-effort UDP data plane for PACKET frames
	// (see dgram.go); control traffic stays on this TCP tunnel.
	Datagram bool `json:"datagram,omitempty"`
	// Token is the session credential the route server verifies before
	// the handshake proceeds: the shared tunnel secret or a signed
	// identity bearer token (see internal/identity). Omitted on open
	// deployments. Checked once per join, never per packet.
	Token string `json:"token,omitempty"`
}

// HelloAckMsg confirms the tunnel; Compress is the negotiated result
// (true only if both sides offered it).
type HelloAckMsg struct {
	Version  int  `json:"version"`
	Compress bool `json:"compress"`
	// Datagram reports the server accepted the datagram offer; the RIS
	// then punches the server's UDP port with DatagramToken. Never set
	// together with Compress — datagrams are never compressed.
	Datagram bool `json:"datagram,omitempty"`
	// DatagramToken authenticates this session's datagrams.
	DatagramToken uint64 `json:"datagram_token,omitempty"`
}

// PortAnnounce describes one router port the RIS manages (paper Fig. 3):
// which NIC it is wired to, the hover description, and the clickable
// rectangle on the router image.
type PortAnnounce struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	NIC         string `json:"nic"`
	Rect        [4]int `json:"rect,omitempty"` // x, y, w, h on the image
}

// RouterAnnounce describes one piece of equipment behind a RIS.
type RouterAnnounce struct {
	Name        string         `json:"name"`
	Description string         `json:"description,omitempty"`
	Model       string         `json:"model,omitempty"`
	Image       string         `json:"image,omitempty"`
	Firmware    string         `json:"firmware,omitempty"`
	HasConsole  bool           `json:"has_console"`
	Ports       []PortAnnounce `json:"ports"`
}

// JoinMsg is the RIS inventory announcement ("Join Labs").
type JoinMsg struct {
	Routers []RouterAnnounce `json:"routers"`
}

// RouterAssignment carries the unique IDs the route server assigned.
type RouterAssignment struct {
	Name  string            `json:"name"`
	ID    uint32            `json:"id"`
	Ports map[string]uint32 `json:"ports"` // port name → port ID
	// Rejoined reports the server recognised this router's identity from
	// a previous session and re-issued its old IDs (recovery, not a
	// fresh registration).
	Rejoined bool `json:"rejoined,omitempty"`
}

// JoinAckMsg answers a JoinMsg.
type JoinAckMsg struct {
	Routers []RouterAssignment `json:"routers"`
}

// ConsoleOpenMsg asks the RIS to begin relaying a router's console.
type ConsoleOpenMsg struct {
	RouterID  uint32 `json:"router_id"`
	SessionID uint32 `json:"session_id"`
}

// ConsoleCloseMsg ends a console relay.
type ConsoleCloseMsg struct {
	RouterID  uint32 `json:"router_id"`
	SessionID uint32 `json:"session_id"`
}

// EncodeJSON builds a frame whose payload is the JSON encoding of v.
func EncodeJSON(t MsgType, v any) (Frame, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return Frame{}, fmt.Errorf("wire: encoding %T: %w", v, err)
	}
	return Frame{Type: t, Payload: b}, nil
}

// DecodeJSON parses a frame payload into v, with type checking.
func DecodeJSON(f Frame, want MsgType, v any) error {
	if f.Type != want {
		return fmt.Errorf("wire: got message type %d, want %d", f.Type, want)
	}
	if err := json.Unmarshal(f.Payload, v); err != nil {
		return fmt.Errorf("wire: decoding %T: %w", v, err)
	}
	return nil
}
