package wire

import "rnl/internal/obs"

// Process-wide tunnel metrics, aggregated across every Conn and
// FrameReader in the process (a route server has one per session, a RIS
// agent one per tunnel). Per-connection numbers stay in ConnStats; these
// mirror them for the /metrics endpoint.
var (
	mFramesSent = obs.Default().Counter("rnl_wire_frames_sent_total",
		"Frames written to tunnel peers, after batching.")
	mBytesSent = obs.Default().Counter("rnl_wire_bytes_sent_total",
		"Bytes written to tunnel peers, including frame headers, after encoding.")
	mFramesReceived = obs.Default().Counter("rnl_wire_frames_received_total",
		"Frames read from tunnel peers.")
	mBytesReceived = obs.Default().Counter("rnl_wire_bytes_received_total",
		"Bytes read from tunnel peers, including frame headers.")
	mPacketsDropped = obs.Default().Counter("rnl_wire_packets_dropped_total",
		"Packets shed by the drop-oldest send-queue backpressure policy.")
	mFlushes = obs.Default().Counter("rnl_wire_flushes_total",
		"Batch flushes (write syscall groups) to tunnel peers.")
	mQueueDepth = obs.Default().Gauge("rnl_wire_send_queue_depth",
		"Frames currently queued across all tunnel send queues.")
	mBatchFrames = obs.Default().Histogram("rnl_wire_batch_frames",
		"Frames coalesced per batch write.", obs.SizeBuckets)
	mWriteSeconds = obs.Default().Histogram("rnl_wire_write_seconds",
		"Wall time of one batch write+flush to a tunnel peer.", obs.LatencyBuckets)
)
