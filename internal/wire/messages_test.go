package wire

import (
	"testing"
)

func TestJSONRoundtripHello(t *testing.T) {
	in := HelloMsg{Version: ProtocolVersion, PCName: "pc-7", Compress: true}
	f, err := EncodeJSON(MsgHello, in)
	if err != nil {
		t.Fatal(err)
	}
	var out HelloMsg
	if err := DecodeJSON(f, MsgHello, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("roundtrip: %+v != %+v", out, in)
	}
}

func TestJSONTypeMismatch(t *testing.T) {
	f, _ := EncodeJSON(MsgHello, HelloMsg{})
	var out HelloAckMsg
	if err := DecodeJSON(f, MsgHelloAck, &out); err == nil {
		t.Error("decoding with wrong expected type should fail")
	}
}

func TestJSONRoundtripJoin(t *testing.T) {
	in := JoinMsg{Routers: []RouterAnnounce{{
		Name:        "cat1",
		Description: "a switch",
		Model:       "Catalyst 6500",
		Image:       "cat.png",
		Firmware:    "12.2",
		HasConsole:  true,
		Ports: []PortAnnounce{
			{Name: "Gi1/1", Description: "uplink", NIC: "eth3", Rect: [4]int{1, 2, 3, 4}},
		},
	}}}
	f, err := EncodeJSON(MsgJoin, in)
	if err != nil {
		t.Fatal(err)
	}
	var out JoinMsg
	if err := DecodeJSON(f, MsgJoin, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Routers) != 1 || out.Routers[0].Name != "cat1" ||
		len(out.Routers[0].Ports) != 1 || out.Routers[0].Ports[0].Rect != [4]int{1, 2, 3, 4} {
		t.Errorf("roundtrip: %+v", out)
	}
}

func TestJSONCorruptPayload(t *testing.T) {
	f := Frame{Type: MsgJoinAck, Payload: []byte("{broken")}
	var out JoinAckMsg
	if err := DecodeJSON(f, MsgJoinAck, &out); err == nil {
		t.Error("corrupt payload should fail")
	}
}

func TestJSONRoundtripAssignments(t *testing.T) {
	in := JoinAckMsg{Routers: []RouterAssignment{{
		Name: "r1", ID: 42, Ports: map[string]uint32{"e0": 7, "e1": 8},
	}}}
	f, err := EncodeJSON(MsgJoinAck, in)
	if err != nil {
		t.Fatal(err)
	}
	var out JoinAckMsg
	if err := DecodeJSON(f, MsgJoinAck, &out); err != nil {
		t.Fatal(err)
	}
	if out.Routers[0].ID != 42 || out.Routers[0].Ports["e1"] != 8 {
		t.Errorf("roundtrip: %+v", out)
	}
}
