package wire

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

func TestFrameRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	in := Frame{Type: MsgJoin, Payload: []byte(`{"routers":[]}`)}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != in.Type || !bytes.Equal(out.Payload, in.Payload) {
		t.Errorf("roundtrip: got %+v, want %+v", out, in)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Type: MsgKeepalive}); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != MsgKeepalive || len(out.Payload) != 0 {
		t.Errorf("got %+v", out)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Type: MsgPacket, Payload: make([]byte, MaxFrameLen)}); err == nil {
		t.Error("oversize write should fail")
	}
	// A corrupt length prefix must be rejected on read.
	buf.Reset()
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, byte(MsgPacket)})
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("oversize read should fail")
	}
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 0, 0})
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("zero-length frame should fail")
	}
}

func TestFrameShortRead(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, Frame{Type: MsgPacket, Payload: []byte("abcdef")})
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated frame should fail")
	}
	if _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty stream should return EOF, got %v", err)
	}
}

func TestMultipleFramesSequential(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 10; i++ {
		WriteFrame(&buf, Frame{Type: MsgType(i%5 + 1), Payload: bytes.Repeat([]byte{byte(i)}, i)})
	}
	for i := 0; i < 10; i++ {
		f, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Type != MsgType(i%5+1) || len(f.Payload) != i {
			t.Errorf("frame %d = %+v", i, f)
		}
	}
}

func TestPacketMsgRoundtrip(t *testing.T) {
	f := func(router, port uint32, flags uint16, data []byte) bool {
		if len(data) > 2000 {
			data = data[:2000]
		}
		enc := EncodePacket(PacketMsg{RouterID: router, PortID: port, Flags: flags, Data: data})
		dec, err := DecodePacket(enc)
		if err != nil {
			return false
		}
		return dec.RouterID == router && dec.PortID == port &&
			dec.Flags == flags && bytes.Equal(dec.Data, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPacketMsgTooShort(t *testing.T) {
	if _, err := DecodePacket([]byte{1, 2, 3}); err == nil {
		t.Error("short packet payload should fail")
	}
}

func TestConsoleDataRoundtrip(t *testing.T) {
	enc := EncodeConsoleData(ConsoleDataMsg{RouterID: 7, SessionID: 42, Data: []byte("show run\n")})
	dec, err := DecodeConsoleData(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.RouterID != 7 || dec.SessionID != 42 || string(dec.Data) != "show run\n" {
		t.Errorf("got %+v", dec)
	}
	if _, err := DecodeConsoleData([]byte{1}); err == nil {
		t.Error("short console payload should fail")
	}
}
