// Package wire defines RNL's Internet tunnel protocol: the framing RIS
// agents and the route server speak over their long-lived TCP connections
// (paper §2.2–2.3).
//
// Every message is a length-prefixed frame:
//
//	uint32  payload length (big endian, excluding this header)
//	uint8   message type
//	...     payload
//
// Control messages (join, announce, console) carry JSON payloads; the hot
// PACKET message carries a fixed binary header — router ID, port ID,
// flags — followed by the raw captured Ethernet frame, exactly as the
// paper describes: "wrap the complete packet in an IP packet which
// includes the port's and router's unique id".
//
// The data plane runs through Conn (asynchronous batched writer with a
// bounded drop-oldest send queue; see conn.go) and FrameReader (pooled
// frame reads); WriteFrame/ReadFrame are the synchronous building blocks
// used for handshakes and tests.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// MsgType identifies a tunnel message.
type MsgType uint8

// Tunnel message types.
const (
	MsgHello        MsgType = 1  // RIS → server: protocol version check
	MsgHelloAck     MsgType = 2  // server → RIS
	MsgJoin         MsgType = 3  // RIS → server: inventory announcement (JSON)
	MsgJoinAck      MsgType = 4  // server → RIS: assigned unique IDs (JSON)
	MsgPacket       MsgType = 5  // both ways: captured frame (binary)
	MsgConsoleOpen  MsgType = 6  // server → RIS: open console session (JSON)
	MsgConsoleData  MsgType = 7  // both ways: console bytes (binary)
	MsgConsoleClose MsgType = 8  // both ways (JSON)
	MsgKeepalive    MsgType = 9  // both ways, empty
	MsgError        MsgType = 10 // both ways: text
	MsgLeave        MsgType = 11 // RIS → server: orderly shutdown
)

// ProtocolVersion is bumped on incompatible changes.
const ProtocolVersion = 1

// MaxFrameLen bounds a tunnel frame; anything larger indicates a corrupt
// stream (jumbo Ethernet frames plus headers fit far below this).
const MaxFrameLen = 1 << 20

// Packet flag bits.
const (
	// FlagCompressed marks a payload compressed with internal/compress.
	FlagCompressed uint16 = 1 << 0
)

// Frame is one raw tunnel message.
type Frame struct {
	Type    MsgType
	Payload []byte
}

// writeBufPool recycles the coalescing buffer WriteFrame uses to emit
// header + payload as one Write call.
var writeBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 2048); return &b }}

// WriteFrame writes one frame to w as a single Write call, so two
// concurrent writers on a net.Conn cannot interleave header and payload
// (each conn.Write is atomic with respect to other Writes on the same
// connection). The hot path should prefer Conn, which batches many
// frames per syscall.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload)+1 > MaxFrameLen {
		return fmt.Errorf("wire: frame payload %d bytes exceeds maximum", len(f.Payload))
	}
	bp := writeBufPool.Get().(*[]byte)
	buf := (*bp)[:0]
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(f.Payload)+1))
	hdr[4] = byte(f.Type)
	buf = append(buf, hdr[:]...)
	buf = append(buf, f.Payload...)
	_, err := w.Write(buf)
	*bp = buf
	writeBufPool.Put(bp)
	return err
}

// ReadFrame reads one frame from r.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n < 1 || n > MaxFrameLen {
		return Frame{}, fmt.Errorf("wire: invalid frame length %d", n)
	}
	f := Frame{Type: MsgType(hdr[4])}
	if n > 1 {
		f.Payload = make([]byte, n-1)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, err
		}
	}
	return f, nil
}

// packetHeaderLen is the binary header inside a MsgPacket payload.
const packetHeaderLen = 10

// PacketMsg is the decoded form of a MsgPacket payload.
type PacketMsg struct {
	RouterID uint32
	PortID   uint32
	Flags    uint16
	Data     []byte // raw Ethernet frame (possibly compressed, see Flags)
}

// EncodePacket builds a MsgPacket payload. The data bytes are referenced,
// not copied; build the frame and write it before reusing the buffer.
func EncodePacket(m PacketMsg) []byte {
	out := make([]byte, packetHeaderLen+len(m.Data))
	binary.BigEndian.PutUint32(out[0:4], m.RouterID)
	binary.BigEndian.PutUint32(out[4:8], m.PortID)
	binary.BigEndian.PutUint16(out[8:10], m.Flags)
	copy(out[packetHeaderLen:], m.Data)
	return out
}

// DecodePacket parses a MsgPacket payload. The returned Data aliases the
// input.
func DecodePacket(payload []byte) (PacketMsg, error) {
	if len(payload) < packetHeaderLen {
		return PacketMsg{}, fmt.Errorf("wire: packet message %d bytes, need %d", len(payload), packetHeaderLen)
	}
	return PacketMsg{
		RouterID: binary.BigEndian.Uint32(payload[0:4]),
		PortID:   binary.BigEndian.Uint32(payload[4:8]),
		Flags:    binary.BigEndian.Uint16(payload[8:10]),
		Data:     payload[packetHeaderLen:],
	}, nil
}

// ConsoleDataMsg is the decoded form of a MsgConsoleData payload:
// a router ID, a session ID and the terminal bytes.
type ConsoleDataMsg struct {
	RouterID  uint32
	SessionID uint32
	Data      []byte
}

const consoleHeaderLen = 8

// EncodeConsoleData builds a MsgConsoleData payload.
func EncodeConsoleData(m ConsoleDataMsg) []byte {
	out := make([]byte, consoleHeaderLen+len(m.Data))
	binary.BigEndian.PutUint32(out[0:4], m.RouterID)
	binary.BigEndian.PutUint32(out[4:8], m.SessionID)
	copy(out[consoleHeaderLen:], m.Data)
	return out
}

// DecodeConsoleData parses a MsgConsoleData payload.
func DecodeConsoleData(payload []byte) (ConsoleDataMsg, error) {
	if len(payload) < consoleHeaderLen {
		return ConsoleDataMsg{}, fmt.Errorf("wire: console message %d bytes, need %d", len(payload), consoleHeaderLen)
	}
	return ConsoleDataMsg{
		RouterID:  binary.BigEndian.Uint32(payload[0:4]),
		SessionID: binary.BigEndian.Uint32(payload[4:8]),
		Data:      payload[consoleHeaderLen:],
	}, nil
}
