package wire

// Transport micro-benchmarks for tunnel transport v2: the batched
// zero-copy enqueue against the per-packet path, and the datagram
// encode. Part of `make bench-fast` so transport regressions show up in
// BENCH_fastpath.json next to the end-to-end forwarding numbers.

import (
	"io"
	"net"
	"testing"
	"time"
)

// BenchmarkTransportSendPacket is the per-packet enqueue baseline: one
// lock acquisition and one writer wakeup per 64-byte frame.
func BenchmarkTransportSendPacket(b *testing.B) {
	wc := NewConn(discardWriteCloser{}, ConnConfig{QueueLen: 1 << 20})
	defer wc.Close()
	frame := make([]byte, 64)
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := wc.SendPacket(PacketMsg{RouterID: 1, PortID: 2, Data: frame}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransportSendPacketBufs enqueues the same traffic in
// 16-frame batches through the zero-copy staging path — the route
// server's per-destination batching.
func BenchmarkTransportSendPacketBufs(b *testing.B) {
	wc := NewConn(discardWriteCloser{}, ConnConfig{QueueLen: 1 << 20})
	defer wc.Close()
	frame := make([]byte, 64)
	const batch = 16
	pbs := make([]PacketBuf, batch)
	b.SetBytes(64 * batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range pbs {
			pbs[j] = MakePacketBuf("", 1, 2, 0, frame)
		}
		if err := wc.SendPacketBufs(pbs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransportDgramEncode measures the datagram hot path: encode
// one 64-byte packet into pooled scratch and hand it to the writer.
func BenchmarkTransportDgramEncode(b *testing.B) {
	frame := make([]byte, 64)
	m := PacketMsg{RouterID: 1, PortID: 2, Data: frame}
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteDgramPacket(io.Discard, 42, m); err != nil {
			b.Fatal(err)
		}
	}
}

// discardWriteCloser soaks up the writer goroutine's output so the
// benchmarks measure the enqueue path, not a socket.
type discardWriteCloser struct{}

func (discardWriteCloser) Write(p []byte) (int, error)      { return len(p), nil }
func (discardWriteCloser) Read(p []byte) (int, error)       { return 0, io.EOF }
func (discardWriteCloser) Close() error                     { return nil }
func (discardWriteCloser) LocalAddr() net.Addr              { return nil }
func (discardWriteCloser) RemoteAddr() net.Addr             { return nil }
func (discardWriteCloser) SetDeadline(time.Time) error      { return nil }
func (discardWriteCloser) SetReadDeadline(time.Time) error  { return nil }
func (discardWriteCloser) SetWriteDeadline(time.Time) error { return nil }
