package wire

import (
	"bytes"
	"testing"
)

func TestDgramControlRoundtrip(t *testing.T) {
	const token = uint64(0xdeadbeefcafef00d)
	for _, tc := range []struct {
		name string
		buf  []byte
		kind byte
	}{
		{"punch", EncodeDgramPunch(token), DgramPunch},
		{"punch-ack", EncodeDgramPunchAck(token), DgramPunchAck},
	} {
		kind, tok, body, err := DecodeDgram(tc.buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		if kind != tc.kind || tok != token || len(body) != 0 {
			t.Fatalf("%s: decoded kind=%d token=%#x body=%d bytes", tc.name, kind, tok, len(body))
		}
	}
}

func TestDgramPacketRoundtrip(t *testing.T) {
	const token = uint64(42)
	m := PacketMsg{RouterID: 7, PortID: 3, Flags: 0, Data: []byte("frame bytes here")}
	buf := AppendDgramPacket(nil, token, m)
	kind, tok, body, err := DecodeDgram(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if kind != DgramPacket || tok != token {
		t.Fatalf("kind=%d token=%d", kind, tok)
	}
	// The body must be a standard MsgPacket payload, decodable by the
	// same path TCP PACKET frames use.
	got, err := DecodePacket(body)
	if err != nil {
		t.Fatalf("decode packet body: %v", err)
	}
	if got.RouterID != m.RouterID || got.PortID != m.PortID || got.Flags != m.Flags ||
		!bytes.Equal(got.Data, m.Data) {
		t.Fatalf("roundtrip mismatch: got %+v want %+v", got, m)
	}
}

func TestDgramDecodeShort(t *testing.T) {
	for n := 0; n < DgramHeaderLen; n++ {
		if _, _, _, err := DecodeDgram(make([]byte, n)); err == nil {
			t.Fatalf("decode of %d-byte datagram succeeded", n)
		}
	}
}

func TestDgramPacketFits(t *testing.T) {
	// Default budget: the conservative path MTU, not the UDP ceiling.
	maxData := DefaultDgramMTU - DgramHeaderLen - packetHeaderLen
	if !DgramPacketFits(maxData) {
		t.Fatalf("packet with %d data bytes should fit the default MTU", maxData)
	}
	if DgramPacketFits(maxData + 1) {
		t.Fatalf("packet with %d data bytes should not fit the default MTU", maxData+1)
	}
	// The boundary claim must match the actual encoding.
	buf := AppendDgramPacket(nil, 1, PacketMsg{Data: make([]byte, maxData)})
	if len(buf) != DefaultDgramMTU {
		t.Fatalf("encoded max packet is %d bytes, want %d", len(buf), DefaultDgramMTU)
	}
}

func TestDgramPacketFitsMTU(t *testing.T) {
	maxAt := func(mtu int) int { return mtu - DgramHeaderLen - packetHeaderLen }
	// An explicit MTU moves the boundary.
	if !DgramPacketFitsMTU(maxAt(9000), 9000) || DgramPacketFitsMTU(maxAt(9000)+1, 9000) {
		t.Fatal("9000-byte MTU boundary wrong")
	}
	// Zero and negative mean the default.
	if DgramPacketFitsMTU(maxAt(DefaultDgramMTU)+1, 0) || DgramPacketFitsMTU(maxAt(DefaultDgramMTU)+1, -5) {
		t.Fatal("unset MTU must fall back to the default budget")
	}
	// Values beyond the UDP ceiling clamp to it.
	if DgramPacketFitsMTU(maxAt(MaxDgramLen)+1, 1<<20) {
		t.Fatal("MTU beyond MaxDgramLen must clamp")
	}
	if !DgramPacketFitsMTU(maxAt(MaxDgramLen), 1<<20) {
		t.Fatal("clamped ceiling should still admit a max UDP payload")
	}
}
