package wire

// The asynchronous batched tunnel writer (the data-plane half of this
// package). A raw net.Conn gives the tunnel exactly the paper's failure
// mode: a slow or stalled Internet peer backpressures through Write into
// whatever captured the frame. Conn decouples capture from transmission
// with a bounded per-connection send queue drained by one writer
// goroutine that coalesces every queued frame into a single buffered
// write + flush — one syscall for N frames instead of two per frame.
//
// Backpressure policy: when the queue is full, one queued packet is
// shed (counted in ConnStats.PacketsDropped). Untagged packets fall
// back to drop-oldest — what a congested real link would do to tunneled
// L2 traffic. Packets tagged with a class via SendPacketClass get
// fair-share shedding instead: the class with the most queued packets
// (the noisiest lab) loses its oldest frame first, so one saturating
// tenant cannot starve its neighbours' control traffic. Control frames
// (join, console, keepalive, leave) are never dropped — the queue
// stretches to hold them. Frame order is preserved for everything that
// is not dropped, so the stateful template compressor stays in sync with
// the far-end decompressor: packets are encoded by the writer goroutine
// at drain time, after drop decisions, in exact wire order.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rnl/internal/admission"
	"rnl/internal/sim"
)

// Tuning defaults for Conn.
const (
	// DefaultSendQueueLen bounds queued droppable packets per connection.
	DefaultSendQueueLen = 4096
	// DefaultWriteTimeout bounds one batch write; a peer stalled longer
	// than this errors the connection instead of wedging the writer.
	DefaultWriteTimeout = 30 * time.Second
	// DefaultWriteBufSize is the coalescing buffer handed to bufio.
	DefaultWriteBufSize = 64 << 10
	// closeGrace bounds the final drain once Close is called.
	closeGrace = time.Second
)

// ErrConnClosed is returned by sends on a closed Conn.
var ErrConnClosed = errors.New("wire: connection closed")

// ConnConfig tunes a Conn. Zero values select the defaults above.
type ConnConfig struct {
	// QueueLen bounds queued packets (control frames are exempt).
	QueueLen int
	// WriteTimeout bounds a single batch write to the peer. Zero means
	// DefaultWriteTimeout; negative disables the kernel write deadline
	// entirely (deterministic simulation runs, where wall-time deadlines
	// must never fire under virtual-time pauses). Close still applies
	// its own short grace deadline so shutdown cannot wedge.
	WriteTimeout time.Duration
	// Clock supplies the write-duration bookkeeping timestamps (metrics);
	// nil means wall time. Kernel deadlines always use wall time — the
	// only clock net.Conn understands.
	Clock sim.Clock
	// WriteBufSize sizes the coalescing write buffer.
	WriteBufSize int
	// Encoder, when set, transforms each packet payload just before it
	// goes on the wire (template compression). It runs on the writer
	// goroutine in exact wire order — required for stateful encoders —
	// and returns the encoded bytes plus flag bits to OR into the
	// packet header. The returned slice may alias encoder-internal
	// scratch; it is consumed before the next call.
	Encoder func(data []byte) ([]byte, uint16)
	// OnShed is called (outside the queue lock) with the class and count
	// of packets just shed by the backpressure policy. Packets queued via
	// SendPacket carry the empty class.
	OnShed func(class string, n int)
}

// ConnStats counts Conn activity. FramesEnqueued-FramesWritten-
// PacketsDropped is the current queue depth.
type ConnStats struct {
	FramesEnqueued atomic.Uint64
	FramesWritten  atomic.Uint64
	BytesWritten   atomic.Uint64 // after encoding, including frame headers
	Flushes        atomic.Uint64 // batches, i.e. write syscall groups
	PacketsDropped atomic.Uint64
}

// sendEntry is one queued frame. Packets keep their header fields
// unserialized so the writer can encode straight into the wire buffer
// without an intermediate EncodePacket allocation. The packet data is
// (*payload)[off:]: a zero-copy segment detached from a FrameReader
// carries the inbound frame's own header at the front, and off skips it
// instead of memmoving the payload down.
type sendEntry struct {
	typ     MsgType
	payload *[]byte // pooled; packet: raw frame data at [off:], control: full payload
	off     int     // start of packet data inside *payload
	packet  bool
	class   string // shedding class (lab name); "" for untagged
	router  uint32
	port    uint32
	flags   uint16
}

// bufPool recycles payload buffers between senders, FrameReader and the
// writer goroutine. One shared pool lets a buffer filled by a reader be
// handed to a writer (zero-copy forwarding) and still come back home.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 2048); return &b }}

func getBuf(data []byte) *[]byte {
	b := bufPool.Get().(*[]byte)
	*b = append((*b)[:0], data...)
	return b
}

func putBuf(b *[]byte) {
	if b != nil {
		bufPool.Put(b)
	}
}

// Conn wraps a net.Conn with the asynchronous batched writer. All Send
// methods are safe for concurrent use and never block on the network;
// reads still happen directly on the underlying conn (see FrameReader).
type Conn struct {
	nc  net.Conn
	cfg ConnConfig
	bw  *bufio.Writer

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []sendEntry
	head   int                // queue[:head] holds only shed tombstones
	npkt   int                // live packet entries currently queued
	shed   *admission.Shedder // per-class occupancy; guarded by mu
	closed bool
	err    error

	stats ConnStats
	done  chan struct{}
}

// NewConn wraps nc and starts the writer goroutine. The caller must not
// write to nc directly afterwards; Close tears both down.
func NewConn(nc net.Conn, cfg ConnConfig) *Conn {
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = DefaultSendQueueLen
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = DefaultWriteTimeout
	}
	if cfg.WriteBufSize <= 0 {
		cfg.WriteBufSize = DefaultWriteBufSize
	}
	if cfg.Clock == nil {
		cfg.Clock = sim.Real{}
	}
	c := &Conn{nc: nc, cfg: cfg, shed: admission.NewShedder(), done: make(chan struct{})}
	c.cond = sync.NewCond(&c.mu)
	c.bw = bufio.NewWriterSize(nc, cfg.WriteBufSize)
	go c.writeLoop()
	return c
}

// Stats exposes the connection counters.
func (c *Conn) Stats() *ConnStats { return &c.stats }

// Err reports the first write error, if any.
func (c *Conn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// SendFrame queues one control frame. Control frames are never dropped:
// the queue stretches beyond QueueLen to hold them. The payload is
// copied, so the caller may reuse it.
func (c *Conn) SendFrame(f Frame) error {
	if len(f.Payload)+1 > MaxFrameLen {
		return fmt.Errorf("wire: frame payload %d bytes exceeds maximum", len(f.Payload))
	}
	buf := getBuf(f.Payload)
	c.mu.Lock()
	if err := c.sendErrLocked(); err != nil {
		c.mu.Unlock()
		putBuf(buf)
		return err
	}
	c.queue = append(c.queue, sendEntry{typ: f.Type, payload: buf})
	c.stats.FramesEnqueued.Add(1)
	c.cond.Signal()
	c.mu.Unlock()
	mQueueDepth.Inc()
	return nil
}

// SendPacket queues one untagged packet frame. It is exactly
// SendPacketClass("", m): with every packet in one class, the fair-share
// policy degenerates to the original drop-oldest behaviour.
func (c *Conn) SendPacket(m PacketMsg) error {
	return c.SendPacketClass("", m)
}

// SendPacketClass queues one packet frame tagged with a shedding class
// (typically the owning lab); m.Data is copied. When QueueLen packets
// are already waiting, the oldest packet of the class with the most
// queued packets is shed to make room — the incoming packet counts
// toward its own class first, so a saturating class sheds its own
// arrivals while quieter classes keep their place in the queue.
// Enqueued packets may still be shed later, so a nil return means
// "accepted", not "delivered".
func (c *Conn) SendPacketClass(class string, m PacketMsg) error {
	if packetHeaderLen+len(m.Data)+2 > MaxFrameLen {
		return fmt.Errorf("wire: packet data %d bytes exceeds maximum", len(m.Data))
	}
	buf := getBuf(m.Data)
	dropped := 0
	victim := ""
	c.mu.Lock()
	if err := c.sendErrLocked(); err != nil {
		c.mu.Unlock()
		putBuf(buf)
		return err
	}
	c.queue = append(c.queue, sendEntry{
		typ: MsgPacket, payload: buf, packet: true, class: class,
		router: m.RouterID, port: m.PortID, flags: m.Flags,
	})
	c.npkt++
	c.shed.Enqueued(class)
	if c.npkt > c.cfg.QueueLen {
		// Shed the oldest live packet of the victim class by tombstoning
		// it in place (payload nil; the writer skips it). No slice shift:
		// the old splice memmoved up to the whole queue per drop while
		// holding mu, which starved the writer and froze the queue at
		// capacity. The head hint keeps the scan O(1) amortized when one
		// class dominates — exactly the saturation case.
		victim = c.shed.Victim()
		for i := c.head; i < len(c.queue); i++ {
			e := &c.queue[i]
			if e.packet && e.payload != nil && e.class == victim {
				putBuf(e.payload)
				e.payload = nil
				c.npkt--
				c.shed.Shed(victim)
				dropped++
				break
			}
		}
		for c.head < len(c.queue) && c.queue[c.head].packet && c.queue[c.head].payload == nil {
			c.head++
		}
	}
	c.stats.FramesEnqueued.Add(1)
	if dropped > 0 {
		c.stats.PacketsDropped.Add(uint64(dropped))
	}
	c.cond.Signal()
	c.mu.Unlock()
	mQueueDepth.Add(int64(1 - dropped))
	if dropped > 0 {
		mPacketsDropped.Add(uint64(dropped))
		if c.cfg.OnShed != nil {
			c.cfg.OnShed(victim, dropped)
		}
	}
	return nil
}

// PacketBuf is one packet frame staged for a batched SendPacketBufs
// call. Buf is a pooled buffer whose ownership transfers to the Conn on
// the call: the packet data is (*Buf)[Off:], typically a frame detached
// from a FrameReader with the inbound packet header still at the front.
// After SendPacketBufs returns (success or error) the caller must not
// touch Buf again.
type PacketBuf struct {
	Class  string
	Router uint32
	Port   uint32
	Flags  uint16
	Buf    *[]byte
	Off    int
}

// MakePacketBuf copies data into a pooled buffer, for callers staging a
// batch without a detachable source buffer (decompressed payloads,
// injected frames).
func MakePacketBuf(class string, router, port uint32, flags uint16, data []byte) PacketBuf {
	return PacketBuf{Class: class, Router: router, Port: port, Flags: flags, Buf: getBuf(data)}
}

// RecyclePacketBufs returns staged buffers to the shared pool — the
// release path for a batch that never reached SendPacketBufs (dead
// destination resolved before enqueue, datagram path consumed the data).
func RecyclePacketBufs(pbs []PacketBuf) {
	for i := range pbs {
		putBuf(pbs[i].Buf)
		pbs[i].Buf = nil
	}
}

// SendPacketBufs queues a batch of packet frames under one lock
// acquisition and one writer wakeup — the route server's per-destination
// batching: N frames read off one inbound tunnel and bound for the same
// outbound tunnel cost one enqueue instead of N. Buffer ownership
// transfers to the Conn on entry (including on error, when the buffers
// are recycled immediately). A nil receiver reports ErrConnClosed, so
// callers can race a batch against session teardown without a guard.
// Shedding follows SendPacketClass: the queue admits the whole batch,
// then evicts the noisiest class's oldest frames until the bound holds.
func (c *Conn) SendPacketBufs(pbs []PacketBuf) error {
	if c == nil {
		RecyclePacketBufs(pbs)
		return ErrConnClosed
	}
	for i := range pbs {
		if packetHeaderLen+len(*pbs[i].Buf)-pbs[i].Off+2 > MaxFrameLen {
			RecyclePacketBufs(pbs)
			return fmt.Errorf("wire: packet data %d bytes exceeds maximum", len(*pbs[i].Buf)-pbs[i].Off)
		}
	}
	dropped := 0
	var shedClasses []string
	c.mu.Lock()
	if err := c.sendErrLocked(); err != nil {
		c.mu.Unlock()
		RecyclePacketBufs(pbs)
		return err
	}
	for i := range pbs {
		pb := &pbs[i]
		c.queue = append(c.queue, sendEntry{
			typ: MsgPacket, payload: pb.Buf, off: pb.Off, packet: true, class: pb.Class,
			router: pb.Router, port: pb.Port, flags: pb.Flags,
		})
		pb.Buf = nil
		c.npkt++
		c.shed.Enqueued(pb.Class)
	}
	for c.npkt > c.cfg.QueueLen {
		victim := c.shed.Victim()
		found := false
		for i := c.head; i < len(c.queue); i++ {
			e := &c.queue[i]
			if e.packet && e.payload != nil && e.class == victim {
				putBuf(e.payload)
				e.payload = nil
				c.npkt--
				c.shed.Shed(victim)
				dropped++
				shedClasses = append(shedClasses, victim)
				found = true
				break
			}
		}
		if !found {
			break // occupancy out of sync; never spin
		}
	}
	for c.head < len(c.queue) && c.queue[c.head].packet && c.queue[c.head].payload == nil {
		c.head++
	}
	c.stats.FramesEnqueued.Add(uint64(len(pbs)))
	if dropped > 0 {
		c.stats.PacketsDropped.Add(uint64(dropped))
	}
	c.cond.Signal()
	c.mu.Unlock()
	mQueueDepth.Add(int64(len(pbs) - dropped))
	if dropped > 0 {
		mPacketsDropped.Add(uint64(dropped))
		if c.cfg.OnShed != nil {
			for _, class := range shedClasses {
				c.cfg.OnShed(class, 1)
			}
		}
	}
	return nil
}

func (c *Conn) sendErrLocked() error {
	if c.err != nil {
		return c.err
	}
	if c.closed {
		return ErrConnClosed
	}
	return nil
}

// Close drains what is queued (bounded by a short grace deadline so a
// dead peer cannot wedge shutdown), stops the writer and closes the
// underlying connection. Safe to call more than once and concurrently
// with sends.
func (c *Conn) Close() error {
	c.mu.Lock()
	first := !c.closed
	c.closed = true
	c.cond.Signal()
	c.mu.Unlock()
	if first {
		// Unblock a writer mid-Write to a stalled peer.
		c.nc.SetWriteDeadline(time.Now().Add(closeGrace))
	}
	<-c.done
	return nil
}

// maxRedrainRounds bounds the pre-flush re-drain so a fast producer
// cannot postpone the flush forever: each round already serializes a
// whole queue swap, so a handful of rounds is plenty of coalescing.
const maxRedrainRounds = 4

// writeLoop drains the queue in batches: every entry present when the
// writer wakes is serialized into one buffered write and flushed with a
// single syscall (modulo buffer size). Before flushing it re-checks the
// queue a few times: frames that arrived while the batch serialized join
// the same flush, raising frames-per-syscall exactly when the link is
// busiest. The kernel write deadline is re-armed at most once per
// timeout/4 — a stall is still caught within [3/4·timeout, timeout+ε],
// without a setsockopt-grade syscall on every small batch.
func (c *Conn) writeLoop() {
	defer close(c.done)
	var batch []sendEntry
	var lastArm time.Time // wall clock; deadlines are kernel-side
	for {
		c.mu.Lock()
		for len(c.queue) == 0 && !c.closed && c.err == nil {
			c.cond.Wait()
		}
		if len(c.queue) == 0 || c.err != nil {
			c.mu.Unlock()
			c.nc.Close()
			return
		}
		batch, c.queue = c.queue, batch[:0]
		c.head = 0
		c.npkt = 0
		c.shed.Reset() // queue drained wholesale: occupancy back to zero
		closing := c.closed
		c.mu.Unlock()

		timeout := c.cfg.WriteTimeout
		if closing && (timeout <= 0 || timeout > closeGrace) {
			timeout = closeGrace
		}
		if timeout > 0 {
			if now := time.Now(); closing || lastArm.IsZero() || now.Sub(lastArm) > timeout/4 {
				c.nc.SetWriteDeadline(now.Add(timeout))
				lastArm = now
			}
		}
		start := c.cfg.Clock.Now()
		bytesBefore := c.stats.BytesWritten.Load()
		written, err := c.writeBatch(batch)
		for rounds := 0; err == nil && !closing && rounds < maxRedrainRounds; rounds++ {
			c.mu.Lock()
			if len(c.queue) == 0 {
				c.mu.Unlock()
				break
			}
			batch, c.queue = c.queue, batch[:0]
			c.head = 0
			c.npkt = 0
			c.shed.Reset()
			closing = c.closed
			c.mu.Unlock()
			var w int
			w, err = c.writeBatch(batch)
			written += w
		}
		if err == nil {
			if err = c.bw.Flush(); err == nil {
				c.stats.Flushes.Add(1)
				mFlushes.Inc()
			}
		}
		mWriteSeconds.Observe(c.cfg.Clock.Now().Sub(start).Seconds())
		mFramesSent.Add(uint64(written))
		mBytesSent.Add(c.stats.BytesWritten.Load() - bytesBefore)
		if err != nil {
			c.fail(err)
			return
		}
	}
}

// writeBatch serializes one queue swap into the coalescing buffer,
// recycling every payload. On error the remaining entries are still
// recycled; the first error is returned.
func (c *Conn) writeBatch(batch []sendEntry) (written int, err error) {
	live := 0
	for i := range batch {
		if batch[i].payload != nil {
			live++
		}
	}
	mQueueDepth.Add(int64(-live))
	mBatchFrames.Observe(float64(live))
	for i := range batch {
		if batch[i].payload == nil {
			continue // shed tombstone, already uncounted
		}
		if err == nil {
			if werr := c.writeEntry(batch[i]); werr == nil {
				written++
			} else {
				err = werr
			}
		}
		putBuf(batch[i].payload)
		batch[i].payload = nil
	}
	return written, err
}

// writeEntry serializes one frame into the coalescing buffer.
func (c *Conn) writeEntry(e sendEntry) error {
	payload := *e.payload
	if e.packet {
		data, flags := payload[e.off:], e.flags
		if c.cfg.Encoder != nil {
			enc, f := c.cfg.Encoder(data)
			data, flags = enc, e.flags|f
		}
		var hdr [5 + packetHeaderLen]byte
		binary.BigEndian.PutUint32(hdr[0:4], uint32(packetHeaderLen+len(data)+1))
		hdr[4] = byte(MsgPacket)
		binary.BigEndian.PutUint32(hdr[5:9], e.router)
		binary.BigEndian.PutUint32(hdr[9:13], e.port)
		binary.BigEndian.PutUint16(hdr[13:15], flags)
		if _, err := c.bw.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := c.bw.Write(data); err != nil {
			return err
		}
		c.stats.FramesWritten.Add(1)
		c.stats.BytesWritten.Add(uint64(len(hdr) + len(data)))
		return nil
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)+1))
	hdr[4] = byte(e.typ)
	if _, err := c.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.bw.Write(payload); err != nil {
		return err
	}
	c.stats.FramesWritten.Add(1)
	c.stats.BytesWritten.Add(uint64(len(hdr) + len(payload)))
	return nil
}

// fail records the first error, recycles the queue and closes the
// connection so the peer's read loop notices.
func (c *Conn) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	discarded := 0
	for i := range c.queue {
		if c.queue[i].payload != nil {
			discarded++
			putBuf(c.queue[i].payload)
			c.queue[i].payload = nil
		}
	}
	c.queue = nil
	c.head = 0
	c.npkt = 0
	c.shed.Reset()
	c.mu.Unlock()
	mQueueDepth.Add(int64(-discarded))
	c.nc.Close()
}

// FrameReader reads frames with a reused payload buffer, eliminating the
// per-frame allocation of ReadFrame on the hot receive path. The
// returned Frame's payload is only valid until the next call to Next;
// consumers that retain it must copy — or Detach the buffer outright and
// hand it to SendPacketBufs (the zero-copy forwarding path). Call Close
// when done to return the payload buffer to the pool shared with the
// writers.
type FrameReader struct {
	br  *bufio.Reader
	buf *[]byte
}

// NewFrameReader wraps r (typically a net.Conn).
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{
		br:  bufio.NewReaderSize(r, DefaultWriteBufSize),
		buf: bufPool.Get().(*[]byte),
	}
}

// Close recycles the reader's payload buffer. The reader must not be
// used again, and payloads returned by Next are invalid after Close.
// Safe to call more than once.
func (fr *FrameReader) Close() {
	if fr.buf != nil {
		bufPool.Put(fr.buf)
		fr.buf = nil
	}
}

// Buffered reports how many bytes sit in the reader's buffer unread —
// at least 5 means a whole frame header is already in memory, so the
// caller can keep draining frames without risking a blocking read. The
// route server uses this to size its inbound burst.
func (fr *FrameReader) Buffered() int { return fr.br.Buffered() }

// Detach surrenders the buffer backing the last payload returned by Next
// and re-arms the reader from the pool. The buffer's length is exactly
// the payload; ownership moves to the caller, who recycles it by handing
// it to SendPacketBufs or RecyclePacketBufs. This is how a forwarded
// frame crosses the server without a copy: read into the buffer, detach,
// queue the same bytes on the destination tunnel.
func (fr *FrameReader) Detach() *[]byte {
	b := fr.buf
	fr.buf = bufPool.Get().(*[]byte)
	return b
}

// DetachPacket detaches the buffer backing the last frame returned by
// Next — which must have been a MsgPacket — and wraps it as a PacketBuf
// re-addressed to (router, port). The inbound packet header stays in the
// buffer; Off skips it, so forwarding a frame re-uses the received bytes
// with no copy at all.
func (fr *FrameReader) DetachPacket(class string, router, port uint32, flags uint16) PacketBuf {
	return PacketBuf{Class: class, Router: router, Port: port, Flags: flags, Buf: fr.Detach(), Off: packetHeaderLen}
}

// Next reads one frame. The payload aliases the reader's internal buffer.
func (fr *FrameReader) Next() (Frame, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(fr.br, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n < 1 || n > MaxFrameLen {
		return Frame{}, fmt.Errorf("wire: invalid frame length %d", n)
	}
	f := Frame{Type: MsgType(hdr[4])}
	if n > 1 {
		need := int(n - 1)
		if fr.buf == nil { // closed; be defensive rather than crash
			fr.buf = bufPool.Get().(*[]byte)
		}
		if cap(*fr.buf) < need {
			*fr.buf = make([]byte, 0, need)
		}
		// Keep the buffer's own length equal to the payload so Detach
		// hands over exactly the frame, nothing stale behind it.
		*fr.buf = (*fr.buf)[:need]
		f.Payload = *fr.buf
		if _, err := io.ReadFull(fr.br, f.Payload); err != nil {
			return Frame{}, err
		}
	}
	mFramesReceived.Inc()
	mBytesReceived.Add(uint64(len(hdr) + len(f.Payload)))
	return f, nil
}
