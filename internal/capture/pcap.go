// Package capture provides the classic libpcap file format for RNL's
// software taps, so captures taken on any virtual wire (paper §3.2) can
// be opened in standard analysis tools.
package capture

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// pcap global header constants (classic little-endian pcap, LINKTYPE_ETHERNET).
const (
	pcapMagic        = 0xa1b2c3d4
	pcapVersionMajor = 2
	pcapVersionMinor = 4
	pcapLinkEthernet = 1
	// SnapLen is the maximum frame size recorded.
	SnapLen = 65535
)

// Writer emits a pcap stream: one global header, then one record per
// frame. Writer is not safe for concurrent use; callers serialize.
type Writer struct {
	w       io.Writer
	started bool
	count   int
}

// NewWriter wraps an io.Writer. The global header is written lazily on
// the first frame (or by Flush for an empty capture).
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

func (pw *Writer) writeHeader() error {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], pcapMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], pcapVersionMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], pcapVersionMinor)
	// thiszone, sigfigs: 0
	binary.LittleEndian.PutUint32(hdr[16:20], SnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], pcapLinkEthernet)
	_, err := pw.w.Write(hdr[:])
	pw.started = true
	return err
}

// WriteFrame appends one captured frame with its timestamp.
func (pw *Writer) WriteFrame(when time.Time, frame []byte) error {
	if !pw.started {
		if err := pw.writeHeader(); err != nil {
			return err
		}
	}
	capLen := len(frame)
	if capLen > SnapLen {
		capLen = SnapLen
	}
	var rec [16]byte
	binary.LittleEndian.PutUint32(rec[0:4], uint32(when.Unix()))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(when.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(capLen))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(frame)))
	if _, err := pw.w.Write(rec[:]); err != nil {
		return err
	}
	if _, err := pw.w.Write(frame[:capLen]); err != nil {
		return err
	}
	pw.count++
	return nil
}

// Flush ensures the header exists even for empty captures.
func (pw *Writer) Flush() error {
	if !pw.started {
		return pw.writeHeader()
	}
	return nil
}

// Count reports frames written.
func (pw *Writer) Count() int { return pw.count }

// Record is one frame read back from a pcap stream.
type Record struct {
	When  time.Time
	Frame []byte
	// OrigLen is the original frame length (≥ len(Frame) if truncated).
	OrigLen int
}

// Reader parses the classic pcap format (both byte orders).
type Reader struct {
	r     io.Reader
	order binary.ByteOrder
}

// NewReader validates the global header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("capture: reading pcap header: %w", err)
	}
	var order binary.ByteOrder
	switch binary.LittleEndian.Uint32(hdr[0:4]) {
	case pcapMagic:
		order = binary.LittleEndian
	case 0xd4c3b2a1:
		order = binary.BigEndian
	default:
		return nil, fmt.Errorf("capture: not a pcap stream (magic %#x)", binary.LittleEndian.Uint32(hdr[0:4]))
	}
	if lt := order.Uint32(hdr[20:24]); lt != pcapLinkEthernet {
		return nil, fmt.Errorf("capture: link type %d unsupported (want Ethernet)", lt)
	}
	return &Reader{r: r, order: order}, nil
}

// Next returns the next record, or io.EOF at the end.
func (pr *Reader) Next() (Record, error) {
	var rec [16]byte
	if _, err := io.ReadFull(pr.r, rec[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.EOF
		}
		return Record{}, err
	}
	sec := pr.order.Uint32(rec[0:4])
	usec := pr.order.Uint32(rec[4:8])
	capLen := pr.order.Uint32(rec[8:12])
	origLen := pr.order.Uint32(rec[12:16])
	if capLen > SnapLen {
		return Record{}, fmt.Errorf("capture: record length %d exceeds snap length", capLen)
	}
	frame := make([]byte, capLen)
	if _, err := io.ReadFull(pr.r, frame); err != nil {
		return Record{}, fmt.Errorf("capture: truncated record: %w", err)
	}
	return Record{
		When:    time.Unix(int64(sec), int64(usec)*1000),
		Frame:   frame,
		OrigLen: int(origLen),
	}, nil
}
