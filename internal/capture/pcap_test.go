package capture

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
	"time"
)

func TestRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	t0 := time.Unix(1700000000, 123456000)
	frames := [][]byte{
		{0xde, 0xad, 0xbe, 0xef},
		bytes.Repeat([]byte{0x55}, 1500),
		{},
	}
	for i, f := range frames {
		if err := w.WriteFrame(t0.Add(time.Duration(i)*time.Second), f); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Errorf("Count = %d", w.Count())
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range frames {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(rec.Frame, want) {
			t.Errorf("record %d frame mismatch", i)
		}
		if !rec.When.Equal(t0.Add(time.Duration(i) * time.Second)) {
			t.Errorf("record %d time = %v", i, rec.When)
		}
		if rec.OrigLen != len(want) {
			t.Errorf("record %d origlen = %d", i, rec.OrigLen)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("want EOF at end, got %v", err)
	}
}

func TestEmptyCaptureStillValid(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("empty capture should EOF, got %v", err)
	}
}

func TestSnapLenTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	huge := make([]byte, SnapLen+100)
	for i := range huge {
		huge[i] = byte(i)
	}
	if err := w.WriteFrame(time.Unix(0, 0), huge); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Frame) != SnapLen || rec.OrigLen != len(huge) {
		t.Errorf("caplen=%d origlen=%d", len(rec.Frame), rec.OrigLen)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a pcap file at all......"))); err == nil {
		t.Error("garbage magic should fail")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream should fail")
	}
}

func TestQuickRoundtripProperty(t *testing.T) {
	f := func(payloads [][]byte) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, p := range payloads {
			if len(p) > 2000 {
				p = p[:2000]
			}
			if err := w.WriteFrame(time.Unix(1, 0), p); err != nil {
				return false
			}
		}
		w.Flush()
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for _, p := range payloads {
			if len(p) > 2000 {
				p = p[:2000]
			}
			rec, err := r.Next()
			if err != nil || !bytes.Equal(rec.Frame, p) {
				return false
			}
		}
		_, err = r.Next()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
