package lab

import (
	"fmt"

	"rnl/internal/device"
	"rnl/internal/topology"
)

// Fig5 is the paper's failover experiment (Fig. 5): two Catalyst switches,
// each with an FWSM transparently bridging the inside VLAN (100) to the
// outside VLAN (200), interconnected by a trunk; the FWSMs monitor each
// other over the failover VLAN (10). Server S2 sits inside (on sw2),
// server S1 outside (on sw1) — traffic between them must pass exactly one
// active firewall.
type Fig5 struct {
	SW1, SW2 *device.Switch
	FW1, FW2 *device.FWSM
	S1, S2   *device.Host
	Design   *topology.Design
}

// Fig5Options selects the configuration variants the paper discusses.
type Fig5Options struct {
	// FailoverVLANOnTrunk carries VLAN 10 between the switches. Leaving
	// it false is the misconfiguration that yields the dual-active
	// transient loop.
	FailoverVLANOnTrunk bool
	// BPDUForward configures "firewall bpdu forward" on both FWSMs so
	// spanning tree can see through them and block the loop.
	BPDUForward bool
}

// Fig5 VLAN numbers, matching the paper's figure.
const (
	fig5FailVLAN    = 10
	fig5InsideVLAN  = 100
	fig5OutsideVLAN = 200
)

// BuildFig5 stands up the Fig. 5 lab on the cloud and deploys it. The
// returned design is already saved in the store under "fig5".
func (c *Cloud) BuildFig5(opts Fig5Options) (*Fig5, error) {
	f := &Fig5{}
	var err error

	swPorts := []string{"fw-in", "fw-out", "fw-fail", "trunk", "server"}
	if f.SW1, _, err = c.AddSwitch("fig5-sw1", swPorts); err != nil {
		return nil, err
	}
	if f.SW2, _, err = c.AddSwitch("fig5-sw2", swPorts); err != nil {
		return nil, err
	}
	if f.FW1, _, err = c.AddFWSM("fig5-fw1", 1); err != nil {
		return nil, err
	}
	if f.FW2, _, err = c.AddFWSM("fig5-fw2", 2); err != nil {
		return nil, err
	}
	// S1 outside, S2 inside — same subnet, transparently firewalled.
	if f.S1, _, err = c.AddHost("fig5-s1", "10.100.0.1/24", ""); err != nil {
		return nil, err
	}
	if f.S2, _, err = c.AddHost("fig5-s2", "10.100.0.2/24", ""); err != nil {
		return nil, err
	}

	trunkVLANs := []uint16{fig5InsideVLAN, fig5OutsideVLAN}
	if opts.FailoverVLANOnTrunk {
		trunkVLANs = append(trunkVLANs, fig5FailVLAN)
	}
	for _, sw := range []*device.Switch{f.SW1, f.SW2} {
		if err := sw.SetPortMode("fw-in", device.PortAccess, fig5InsideVLAN, nil); err != nil {
			return nil, err
		}
		if err := sw.SetPortMode("fw-out", device.PortAccess, fig5OutsideVLAN, nil); err != nil {
			return nil, err
		}
		if err := sw.SetPortMode("fw-fail", device.PortAccess, fig5FailVLAN, nil); err != nil {
			return nil, err
		}
		if err := sw.SetPortMode("trunk", device.PortTrunk, 0, trunkVLANs); err != nil {
			return nil, err
		}
	}
	// S1 lives on the outside VLAN, S2 on the inside VLAN.
	if err := f.SW1.SetPortMode("server", device.PortAccess, fig5OutsideVLAN, nil); err != nil {
		return nil, err
	}
	if err := f.SW2.SetPortMode("server", device.PortAccess, fig5InsideVLAN, nil); err != nil {
		return nil, err
	}
	f.FW1.SetBPDUForward(opts.BPDUForward)
	f.FW2.SetBPDUForward(opts.BPDUForward)

	d := &topology.Design{
		Name:  "fig5",
		Owner: "paper",
		Routers: []string{
			"fig5-sw1", "fig5-sw2", "fig5-fw1", "fig5-fw2", "fig5-s1", "fig5-s2",
		},
	}
	connect := func(ar, ap, br, bp string) {
		if err == nil {
			err = d.Connect(ar, ap, br, bp)
		}
	}
	connect("fig5-sw1", "fw-in", "fig5-fw1", "inside")
	connect("fig5-sw1", "fw-out", "fig5-fw1", "outside")
	connect("fig5-sw1", "fw-fail", "fig5-fw1", "fail")
	connect("fig5-sw2", "fw-in", "fig5-fw2", "inside")
	connect("fig5-sw2", "fw-out", "fig5-fw2", "outside")
	connect("fig5-sw2", "fw-fail", "fig5-fw2", "fail")
	connect("fig5-sw1", "trunk", "fig5-sw2", "trunk")
	connect("fig5-sw1", "server", "fig5-s1", "eth0")
	connect("fig5-sw2", "server", "fig5-s2", "eth0")
	if err != nil {
		return nil, fmt.Errorf("lab: building fig5 design: %w", err)
	}
	if err := c.Store.Save(d); err != nil {
		return nil, err
	}
	f.Design = d
	if err := c.DeployDesign(d); err != nil {
		return nil, err
	}
	return f, nil
}
