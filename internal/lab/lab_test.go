package lab_test

import (
	"fmt"
	"testing"
	"time"

	"rnl/internal/lab"
)

func newCloud(t *testing.T, opts lab.Options) *lab.Cloud {
	t.Helper()
	c, err := lab.NewCloud(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func eventually(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("condition never true: %s", msg)
}

func TestCloudBasics(t *testing.T) {
	c := newCloud(t, lab.Options{})
	h1, eq1, err := c.AddHost("lb-h1", "10.0.0.1/24", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.AddHost("lb-h2", "10.0.0.2/24", ""); err != nil {
		t.Fatal(err)
	}
	if eq1.Agent.RouterID("lb-h1") == 0 {
		t.Error("equipment not joined")
	}
	inv, err := c.Client.Inventory()
	if err != nil || len(inv) != 2 {
		t.Fatalf("inventory = %v, %v", inv, err)
	}
	_ = h1
}

func TestCloudBadCIDR(t *testing.T) {
	c := newCloud(t, lab.Options{})
	if _, _, err := c.AddHost("bad", "not-an-ip", ""); err == nil {
		t.Error("bad CIDR should fail")
	}
	if _, _, err := c.AddHost("bad2", "10.0.0.1/99", ""); err == nil {
		t.Error("bad prefix should fail")
	}
}

// TestFig5FailoverExperiment reproduces the paper's failover workflow:
// with the failover VLAN properly carried on the trunk, the primary FWSM
// goes active and passes S2→S1 traffic; failing the primary promotes the
// secondary and connectivity recovers.
func TestFig5FailoverExperiment(t *testing.T) {
	c := newCloud(t, lab.Options{})
	f, err := c.BuildFig5(lab.Fig5Options{FailoverVLANOnTrunk: true})
	if err != nil {
		t.Fatal(err)
	}
	eventually(t, 5*time.Second, func() bool {
		return f.FW1.State().String() == "Active" && f.FW2.State().String() == "Standby"
	}, "primary FWSM should become active via hellos over the trunk")

	if ok, _ := f.S2.Ping(f.S1.IP(), 8*time.Second); !ok {
		t.Fatal("S2 cannot reach S1 through the active firewall")
	}

	// "She can also shutdown one switch or disable all of its links to
	// simulate a switch failure": disable the primary FWSM's links.
	f.FW1.Port("inside").SetAdminUp(false)
	f.FW1.Port("outside").SetAdminUp(false)
	eventually(t, 5*time.Second, func() bool {
		return f.FW2.State().String() == "Active"
	}, "secondary should take over")

	if ok, _ := f.S2.Ping(f.S1.IP(), 8*time.Second); !ok {
		t.Fatal("S2 cannot reach S1 after failover")
	}
}

// TestFig5DualActiveLoop reproduces the misconfiguration transient: the
// failover VLAN missing from the trunk leaves both FWSMs active, and the
// parallel transparent bridges form a forwarding loop — a broadcast storm
// observable in the switches' flood counters.
func TestFig5DualActiveLoop(t *testing.T) {
	c := newCloud(t, lab.Options{})
	f, err := c.BuildFig5(lab.Fig5Options{FailoverVLANOnTrunk: false})
	if err != nil {
		t.Fatal(err)
	}
	eventually(t, 5*time.Second, func() bool {
		return f.FW1.State().String() == "Active" && f.FW2.State().String() == "Active"
	}, "both FWSMs should go active when hellos cannot cross")

	// One broadcast seeds the loop.
	go f.S2.Ping(f.S1.IP(), 500*time.Millisecond)
	eventually(t, 10*time.Second, func() bool {
		return f.SW1.Floods()+f.SW2.Floods() > 2000
	}, "dual-active bridges should multiply broadcasts into a storm")
}

// TestFig5BPDUForwardingTamesLoop shows the fix from the configuration
// manual: with "firewall bpdu forward" configured, spanning tree sees
// through the modules and blocks the loop even while both are active.
func TestFig5BPDUForwardingTamesLoop(t *testing.T) {
	c := newCloud(t, lab.Options{})
	f, err := c.BuildFig5(lab.Fig5Options{FailoverVLANOnTrunk: false, BPDUForward: true})
	if err != nil {
		t.Fatal(err)
	}
	eventually(t, 5*time.Second, func() bool {
		return f.FW1.State().String() == "Active" && f.FW2.State().String() == "Active"
	}, "both FWSMs active (misconfigured failover)")

	// The devices run on real-time protocol timers, so this test cannot
	// ride the fake clock; instead of fixed warm-up/observation sleeps it
	// waits for the flood growth rate to fall back to the background
	// level (periodic hellos and BPDUs flood steadily even when healthy).
	// STP blocking the redundant path is exactly the moment the rate
	// collapses; a storm multiplies thousands of floods per window and
	// never settles.
	quietFloods := func(why string) uint64 {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		last := f.SW1.Floods() + f.SW2.Floods()
		streak := 0
		for streak < 3 {
			if time.Now().After(deadline) {
				t.Fatalf("%s: flood rate never settled (at %d)", why, last)
			}
			time.Sleep(50 * time.Millisecond)
			cur := f.SW1.Floods() + f.SW2.Floods()
			if cur-last <= 25 {
				streak++
			} else {
				streak = 0
			}
			last = cur
		}
		return last
	}
	base := quietFloods("waiting for STP to block the loop")
	go f.S2.Ping(f.S1.IP(), 500*time.Millisecond)
	grown := quietFloods("after seeding broadcasts") - base
	if grown > 500 {
		t.Fatalf("storm of %d floods despite BPDU forwarding — STP failed to block the loop", grown)
	}
}

// TestFig6RIPConvergence checks the initial Fig. 6 chain works: hostA can
// reach hostB only when permitted; with the deny filter, it cannot.
func TestFig6PolicyHoldsOnChain(t *testing.T) {
	c := newCloud(t, lab.Options{})
	f, err := c.BuildFig6()
	if err != nil {
		t.Fatal(err)
	}
	// RIP must converge end to end first: wait until hostA can reach its
	// own gateway and the far subnet is known. Probe by pinging B — it
	// must consistently fail (filtered), while A→R4's transit address
	// should eventually work (not filtered).
	eventually(t, 10*time.Second, func() bool {
		ok, _ := f.HostA.Ping(mustIP("192.168.24.4"), 400*time.Millisecond)
		return ok
	}, "RIP should propagate transit routes end to end")

	if ok, _ := f.HostA.Ping(f.HostB.IP(), time.Second); ok {
		t.Fatal("policy violated on the chain: A reached B through the filters")
	}
	if f.R1.ACLDrops()+f.R2.ACLDrops() == 0 {
		t.Error("filters never dropped anything")
	}
}

// TestFig6ShortcutViolatesPolicy adds the future R3–R4 link: RIP converges
// onto the unfiltered shortcut and the policy silently breaks.
func TestFig6ShortcutViolatesPolicy(t *testing.T) {
	c := newCloud(t, lab.Options{})
	f, err := c.BuildFig6()
	if err != nil {
		t.Fatal(err)
	}
	eventually(t, 10*time.Second, func() bool {
		ok, _ := f.HostA.Ping(mustIP("192.168.24.4"), 400*time.Millisecond)
		return ok
	}, "RIP convergence")
	if ok, _ := f.HostA.Ping(f.HostB.IP(), time.Second); ok {
		t.Fatal("baseline: policy should hold before the shortcut")
	}

	// The topology change: redeploy with the R3–R4 link.
	if err := c.RS.Teardown(f.Design.Name); err != nil {
		t.Fatal(err)
	}
	if err := c.DeployDesign(f.DesignWithShortcut); err != nil {
		t.Fatal(err)
	}
	eventually(t, 15*time.Second, func() bool {
		ok, _ := f.HostA.Ping(f.HostB.IP(), 500*time.Millisecond)
		return ok
	}, "RIP should converge onto the shortcut, violating the policy")
}

func mustIP(s string) []byte {
	var a, b, c, d int
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
		panic(err)
	}
	return []byte{byte(a), byte(b), byte(c), byte(d)}
}
