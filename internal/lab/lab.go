// Package lab assembles a complete in-process Remote Network Labs cloud:
// a route server, a web server with the web-services API, a reservation
// calendar, a design store, and helpers that stand up emulated equipment
// (hosts, routers, switches, firewall modules) each fronted by its own RIS
// agent — the paper's Fig. 1 in one process. Examples, integration tests
// and the benchmark harness all build on it.
package lab

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"time"

	"rnl/internal/api"
	"rnl/internal/device"
	"rnl/internal/identity"
	"rnl/internal/netsim"
	"rnl/internal/reservation"
	"rnl/internal/ris"
	"rnl/internal/routeserver"
	"rnl/internal/sim"
	"rnl/internal/topogen"
	"rnl/internal/topology"
	"rnl/internal/wal"
)

// Options tunes a Cloud.
type Options struct {
	// Compress enables tunnel compression end to end.
	Compress bool
	// Token protects the web API (legacy shared secret; a match grants
	// admin). It also protects the RIS tunnel joins when TunnelToken is
	// unset.
	Token string
	// Identity, when non-nil, verifies signed bearer tokens and API keys
	// into tenant-scoped principals at the web API and tunnel joins.
	Identity *identity.Authority
	// Quotas caps per-tenant concurrent labs and reservation-hours;
	// effective only alongside Identity (or tenant-named API users).
	Quotas *identity.Quotas
	// TunnelToken protects RIS session joins separately from the web
	// API; empty falls back to Token.
	TunnelToken string
	// DatagramMTU caps frames on the UDP datagram path (server and
	// agents); zero means wire.DefaultDgramMTU.
	DatagramMTU int
	// Timers is the device timing profile; zero means FastTimers.
	Timers device.Timers
	// Logger for all components; nil discards.
	Logger *slog.Logger
	// Admission tunes the web API's overload protection; the zero value
	// enables it with generous defaults.
	Admission api.AdmissionConfig
	// LabRateLimit/LabRateBurst cap each deployed lab's delivered packet
	// rate at the route server; zero disables per-lab throttling.
	LabRateLimit float64
	LabRateBurst float64
	// Clock drives the route server, web API, RIS agents and the
	// reservation calendar; nil means wall time. Inject sim.Fake to run
	// the whole cloud on virtual time (see internal/detsim).
	Clock sim.Clock
	// PeerTimeout overrides the route server's and agents' dead-peer
	// timeout. Set routeserver.NoPeerTimeout / ris.NoPeerTimeout (any
	// negative value) to disable detection under a fake clock.
	PeerTimeout time.Duration
	// StateDir persists route-server state (snapshot + append-ahead
	// mutation log) across restarts; empty means memory-only.
	StateDir string
	// WALFS overrides the filesystem the state dir is accessed through
	// (fault injection in tests); nil means the real OS.
	WALFS wal.FS
	// WALFsync / WALMaxBytes tune the mutation log's durability policy
	// and rotation threshold; zero values mean fsync-always and the
	// package default threshold.
	WALFsync    wal.Policy
	WALMaxBytes int64
	// WALGroupCommit lets concurrent fsync-always appends share fsyncs.
	WALGroupCommit bool
}

// clock resolves the cloud clock (wall time by default).
func (o *Options) clock() sim.Clock {
	if o.Clock != nil {
		return o.Clock
	}
	return sim.Real{}
}

// Cloud is a running in-process RNL instance.
type Cloud struct {
	RS     *routeserver.Server
	Web    *api.Server
	Cal    *reservation.Calendar
	Store  *topology.Store
	Client *api.Client

	WebAddr    string
	TunnelAddr string

	opts   Options
	log    *slog.Logger
	closer []func()
}

// NewCloud starts the route server and web server on loopback ports.
func NewCloud(opts Options) (*Cloud, error) {
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if opts.Timers == (device.Timers{}) {
		opts.Timers = device.FastTimers()
	}
	tunnelToken := opts.TunnelToken
	if tunnelToken == "" {
		tunnelToken = opts.Token
	}
	rs := routeserver.New(routeserver.Options{
		AllowCompression: opts.Compress,
		Logger:           logger,
		LabRateLimit:     opts.LabRateLimit,
		LabRateBurst:     opts.LabRateBurst,
		Clock:            opts.Clock,
		PeerTimeout:      opts.PeerTimeout,
		TunnelToken:      tunnelToken,
		Identity:         opts.Identity,
		DatagramMTU:      opts.DatagramMTU,
		StateDir:         opts.StateDir,
		WALFS:            opts.WALFS,
		WALFsync:         opts.WALFsync,
		WALMaxBytes:      opts.WALMaxBytes,
		WALGroupCommit:   opts.WALGroupCommit,
	})
	tunnelAddr, err := rs.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	store, err := topology.NewStore("")
	if err != nil {
		rs.Close()
		return nil, err
	}
	cal := reservation.New(opts.clock())
	web := api.NewServer(api.Config{
		RouteServer:    rs,
		Store:          store,
		Calendar:       cal,
		Token:          opts.Token,
		Identity:       opts.Identity,
		Quotas:         opts.Quotas,
		ConsoleTimeout: 5 * time.Second,
		Logger:         logger,
		Admission:      opts.Admission,
		Clock:          opts.Clock,
	})
	webAddr, err := web.Listen("127.0.0.1:0")
	if err != nil {
		rs.Close()
		return nil, err
	}
	c := &Cloud{
		RS: rs, Web: web, Cal: cal, Store: store,
		Client:     api.NewClient("http://"+webAddr, opts.Token),
		WebAddr:    webAddr,
		TunnelAddr: tunnelAddr,
		opts:       opts,
		log:        logger,
	}
	return c, nil
}

// DeployDesign wires a design directly, without reservation enforcement —
// the programmatic path experiments and benchmarks use. The API path
// (Client.Deploy) enforces reservations.
func (c *Cloud) DeployDesign(d *topology.Design) error {
	dep := &topology.Deployer{Server: c.RS, ConsoleTimeout: 5 * time.Second, Clock: c.opts.Clock}
	return dep.Deploy(context.Background(), "", d, false)
}

// DeployDesignRestore deploys a design AND replays its saved configs
// through a restore pool of the given width (0 = default, 1 = strictly
// sequential) — the scale benchmarks' knob for sequential-vs-parallel
// comparison.
func (c *Cloud) DeployDesignRestore(ctx context.Context, d *topology.Design, workers int) error {
	dep := &topology.Deployer{Server: c.RS, ConsoleTimeout: 5 * time.Second, Clock: c.opts.Clock, Workers: workers}
	return dep.Deploy(ctx, "", d, true)
}

// Close shuts everything down, equipment first.
func (c *Cloud) Close() {
	for i := len(c.closer) - 1; i >= 0; i-- {
		c.closer[i]()
	}
	c.Web.Close()
	c.RS.Close()
}

// onClose registers cleanup.
func (c *Cloud) onClose(fn func()) { c.closer = append(c.closer, fn) }

// Equipment is a device joined to the cloud through its own RIS.
type Equipment struct {
	Name  string
	Agent *ris.Agent
	// NICs are the RIS-side interface adapters, by port name.
	NICs map[string]*netsim.Iface
}

// joinDevice wires every port of a device to fresh RIS NICs and joins the
// labs. The device keeps running locally; RNL sees its ports and console.
// cond, when non-nil, conditions the wires between device and lab PC —
// the §3.5 WAN emulation hook.
func (c *Cloud) joinDevice(name, model, description string, ports []string, getPort func(string) *netsim.Iface, consoleAttach func(io.ReadWriter), cond netsim.Conditioner) (*Equipment, error) {
	eq := &Equipment{Name: name, NICs: make(map[string]*netsim.Iface)}
	def := ris.RouterDef{Name: name, Model: model, Description: description}
	for _, pn := range ports {
		nic := netsim.NewIface("pc-" + name + "/" + pn)
		w := netsim.Connect(getPort(pn), nic, cond)
		c.onClose(w.Disconnect)
		eq.NICs[pn] = nic
		def.Ports = append(def.Ports, ris.PortMap{Name: pn, NIC: nic, Description: pn + " on " + name})
	}
	if consoleAttach != nil {
		sp := netsim.NewSerialPort()
		c.onClose(sp.Close)
		go consoleAttach(sp.DeviceEnd)
		def.Console = sp.PCEnd
	}
	tunnelToken := c.opts.TunnelToken
	if tunnelToken == "" {
		tunnelToken = c.opts.Token
	}
	agent, err := ris.New(ris.Config{
		ServerAddr:  c.TunnelAddr,
		PCName:      "pc-" + name,
		Compress:    c.opts.Compress,
		Token:       tunnelToken,
		DatagramMTU: c.opts.DatagramMTU,
		Routers:     []ris.RouterDef{def},
		Clock:       c.opts.Clock,
		PeerTimeout: c.opts.PeerTimeout,
	}, c.log)
	if err != nil {
		return nil, err
	}
	if err := agent.Start(); err != nil {
		return nil, err
	}
	c.onClose(agent.Close)
	eq.Agent = agent
	return eq, nil
}

// AddHost creates an emulated server, configures its address, and joins it
// to the labs.
func (c *Cloud) AddHost(name, cidrIP string, gw string) (*device.Host, *Equipment, error) {
	return c.AddHostVia(name, cidrIP, gw, nil)
}

// AddHostVia is AddHost with a link conditioner on the host's wire — the
// paper's §3.5 application-testing hook ("inject delay and jitter to
// simulate any wide area link").
func (c *Cloud) AddHostVia(name, cidrIP string, gw string, cond netsim.Conditioner) (*device.Host, *Equipment, error) {
	h := device.NewHost(name, c.opts.Timers)
	c.onClose(h.Close)
	ip, mask, err := splitCIDR(cidrIP)
	if err != nil {
		return nil, nil, err
	}
	var gwIP []byte
	if gw != "" {
		gwIP, _, err = splitCIDR(gw + "/32")
		if err != nil {
			return nil, nil, err
		}
	}
	if err := h.Configure(ip, mask, gwIP); err != nil {
		return nil, nil, err
	}
	eq, err := c.joinDevice(name, "Linux Server", "server "+cidrIP, []string{"eth0"}, h.Port,
		func(rw io.ReadWriter) { device.AttachConsole(h, rw) }, cond)
	if err != nil {
		return nil, nil, err
	}
	return h, eq, nil
}

// AddRouter creates an emulated router with the given port names and joins
// it to the labs (unconfigured; use the console or the device handle).
func (c *Cloud) AddRouter(name string, ports []string) (*device.Router, *Equipment, error) {
	r := device.NewRouter(name, ports, c.opts.Timers)
	c.onClose(r.Close)
	eq, err := c.joinDevice(name, "7200 Series", "IP router", ports, r.Port,
		func(rw io.ReadWriter) { device.AttachConsole(r, rw) }, nil)
	if err != nil {
		return nil, nil, err
	}
	return r, eq, nil
}

// FleetRouter names one router in a fleet and its port list.
type FleetRouter struct {
	Name  string
	Ports []string
}

// AddRouterFleet creates many emulated routers behind ONE shared RIS
// agent — the rack shape: a single lab PC fronting a shelf of routers.
// At benchmark scale this is the difference between N tunnel sessions
// and one. Every router still gets its own console and per-port NICs.
func (c *Cloud) AddRouterFleet(pcName string, defs []FleetRouter) (map[string]*device.Router, *ris.Agent, error) {
	routers := make(map[string]*device.Router, len(defs))
	rdefs := make([]ris.RouterDef, 0, len(defs))
	for _, fr := range defs {
		r := device.NewRouter(fr.Name, fr.Ports, c.opts.Timers)
		c.onClose(r.Close)
		routers[fr.Name] = r
		def := ris.RouterDef{Name: fr.Name, Model: "7200 Series", Description: "IP router"}
		for _, pn := range fr.Ports {
			nic := netsim.NewIface("pc-" + pcName + "/" + fr.Name + "/" + pn)
			w := netsim.Connect(r.Port(pn), nic, nil)
			c.onClose(w.Disconnect)
			def.Ports = append(def.Ports, ris.PortMap{Name: pn, NIC: nic, Description: pn + " on " + fr.Name})
		}
		sp := netsim.NewSerialPort()
		c.onClose(sp.Close)
		go device.AttachConsole(r, sp.DeviceEnd)
		def.Console = sp.PCEnd
		rdefs = append(rdefs, def)
	}
	tunnelToken := c.opts.TunnelToken
	if tunnelToken == "" {
		tunnelToken = c.opts.Token
	}
	agent, err := ris.New(ris.Config{
		ServerAddr:  c.TunnelAddr,
		PCName:      "pc-" + pcName,
		Compress:    c.opts.Compress,
		Token:       tunnelToken,
		DatagramMTU: c.opts.DatagramMTU,
		Routers:     rdefs,
		Clock:       c.opts.Clock,
		PeerTimeout: c.opts.PeerTimeout,
	}, c.log)
	if err != nil {
		return nil, nil, err
	}
	if err := agent.Start(); err != nil {
		return nil, nil, err
	}
	c.onClose(agent.Close)
	return routers, agent, nil
}

// AddGeneratedFleet instantiates every router of a generated topology,
// chunked perAgent routers behind each RIS agent (perAgent ≤ 0 means
// 64). Routers join in the topology's definition order.
func (c *Cloud) AddGeneratedFleet(top *topogen.Topology, perAgent int) (map[string]*device.Router, error) {
	if perAgent <= 0 {
		perAgent = 64
	}
	all := make(map[string]*device.Router, len(top.Design.Routers))
	names := top.Design.Routers
	for start := 0; start < len(names); start += perAgent {
		end := start + perAgent
		if end > len(names) {
			end = len(names)
		}
		defs := make([]FleetRouter, 0, end-start)
		for _, n := range names[start:end] {
			defs = append(defs, FleetRouter{Name: n, Ports: top.Ports[n]})
		}
		routers, _, err := c.AddRouterFleet(fmt.Sprintf("rack%d", start/perAgent), defs)
		if err != nil {
			return nil, err
		}
		for n, r := range routers {
			all[n] = r
		}
	}
	return all, nil
}

// AddSwitch creates an emulated Catalyst switch and joins it to the labs.
func (c *Cloud) AddSwitch(name string, ports []string) (*device.Switch, *Equipment, error) {
	s := device.NewSwitch(name, ports, c.opts.Timers)
	c.onClose(s.Close)
	eq, err := c.joinDevice(name, "Catalyst 6500", "Ethernet switch", ports, s.Port,
		func(rw io.ReadWriter) { device.AttachConsole(s, rw) }, nil)
	if err != nil {
		return nil, nil, err
	}
	return s, eq, nil
}

// AddFWSM creates an emulated firewall module (ports inside, outside,
// fail) and joins it to the labs.
func (c *Cloud) AddFWSM(name string, unit uint32) (*device.FWSM, *Equipment, error) {
	f := device.NewFWSM(name, unit, c.opts.Timers)
	c.onClose(f.Close)
	eq, err := c.joinDevice(name, "FWSM", "firewall services module", []string{"inside", "outside", "fail"}, f.Port,
		func(rw io.ReadWriter) { device.AttachConsole(f, rw) }, nil)
	if err != nil {
		return nil, nil, err
	}
	return f, eq, nil
}

// splitCIDR parses "10.0.0.1/24" into address and mask.
func splitCIDR(s string) ([]byte, []byte, error) {
	var a, b, cc, d, bits int
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d/%d", &a, &b, &cc, &d, &bits); err != nil {
		return nil, nil, fmt.Errorf("lab: bad CIDR %q: %w", s, err)
	}
	if bits < 0 || bits > 32 {
		return nil, nil, fmt.Errorf("lab: bad prefix length in %q", s)
	}
	ip := []byte{byte(a), byte(b), byte(cc), byte(d)}
	mask := make([]byte, 4)
	for i := 0; i < bits; i++ {
		mask[i/8] |= 1 << (7 - i%8)
	}
	return ip, mask, nil
}
