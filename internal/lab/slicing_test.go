package lab_test

import (
	"testing"
	"time"

	"rnl/internal/api"
	"rnl/internal/lab"
	"rnl/internal/topology"
)

// TestSlicedRouterTwoUsers is the §4 logical-router scenario: two users
// simultaneously reserve different slices of the same physical router and
// run isolated labs over them.
func TestSlicedRouterTwoUsers(t *testing.T) {
	c := newCloud(t, lab.Options{})
	_, slices, err := c.AddSlicedRouter("bigiron", map[string][]string{
		"lr1": {"e0", "e1"},
		"lr2": {"e2", "e3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(slices) != 2 {
		t.Fatalf("slices = %v", slices)
	}

	// The inventory shows two independent entries for one physical box.
	inv, err := c.Client.Inventory()
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]int{}
	for _, r := range inv {
		names[r.Name] = len(r.Ports)
	}
	if names["bigiron/lr1"] != 2 || names["bigiron/lr2"] != 2 {
		t.Fatalf("inventory = %v", names)
	}

	// Configure the slices through their consoles: identical addressing,
	// isolated tables. (Only lr1 carries the physical console; configure
	// both through it, as a lab manager would.)
	cmds := []string{
		"enable", "configure terminal",
		"interface e0", "ip address 10.1.0.1 255.255.255.0",
		"interface e1", "ip address 10.2.0.1 255.255.255.0",
		"interface e2", "ip address 10.1.0.1 255.255.255.0",
		"interface e3", "ip address 10.2.0.1 255.255.255.0",
		"end",
	}
	if _, err := c.Client.ConsoleExec(api.ConsoleExecRequest{Router: "bigiron/lr1", Commands: cmds}); err != nil {
		t.Fatal(err)
	}

	// Alice's lab on slice 1, Bob's on slice 2 — same subnets, no clash.
	aliceH1, _, err := c.AddHost("alice-h1", "10.1.0.2/24", "10.1.0.1")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err = c.AddHost("alice-h2", "10.2.0.2/24", "10.2.0.1"); err != nil {
		t.Fatal(err)
	}
	bobH1, _, err := c.AddHost("bob-h1", "10.1.0.2/24", "10.1.0.1")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err = c.AddHost("bob-h2", "10.2.0.2/24", "10.2.0.1"); err != nil {
		t.Fatal(err)
	}

	now := time.Now()
	if _, err := c.Client.Reserve(api.ReserveRequest{
		User: "alice", Routers: []string{"bigiron/lr1", "alice-h1", "alice-h2"},
		Start: now.Add(-time.Minute), End: now.Add(time.Hour),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Client.Reserve(api.ReserveRequest{
		User: "bob", Routers: []string{"bigiron/lr2", "bob-h1", "bob-h2"},
		Start: now.Add(-time.Minute), End: now.Add(time.Hour),
	}); err != nil {
		t.Fatal(err)
	}
	// A third user cannot grab an already-sliced entry.
	if _, err := c.Client.Reserve(api.ReserveRequest{
		User: "carol", Routers: []string{"bigiron/lr1"},
		Start: now.Add(-time.Minute), End: now.Add(time.Hour),
	}); err == nil {
		t.Fatal("overlapping slice reservation should conflict")
	}

	dAlice := &topology.Design{Name: "alice-lab", Owner: "alice",
		Routers: []string{"bigiron/lr1", "alice-h1", "alice-h2"}}
	if err := dAlice.Connect("bigiron/lr1", "e0", "alice-h1", "eth0"); err != nil {
		t.Fatal(err)
	}
	if err := dAlice.Connect("bigiron/lr1", "e1", "alice-h2", "eth0"); err != nil {
		t.Fatal(err)
	}
	dBob := &topology.Design{Name: "bob-lab", Owner: "bob",
		Routers: []string{"bigiron/lr2", "bob-h1", "bob-h2"}}
	if err := dBob.Connect("bigiron/lr2", "e2", "bob-h1", "eth0"); err != nil {
		t.Fatal(err)
	}
	if err := dBob.Connect("bigiron/lr2", "e3", "bob-h2", "eth0"); err != nil {
		t.Fatal(err)
	}
	for _, d := range []*topology.Design{dAlice, dBob} {
		if err := c.Client.SaveDesign(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Client.Deploy(api.DeployRequest{Design: "alice-lab", User: "alice"}); err != nil {
		t.Fatal(err)
	}
	// Both labs deploy concurrently — the whole point of slicing.
	if err := c.Client.Deploy(api.DeployRequest{Design: "bob-lab", User: "bob"}); err != nil {
		t.Fatal(err)
	}

	if ok, _ := aliceH1.Ping(mustIP("10.2.0.2"), 5*time.Second); !ok {
		t.Fatal("alice's lab has no connectivity through slice lr1")
	}
	if ok, _ := bobH1.Ping(mustIP("10.2.0.2"), 5*time.Second); !ok {
		t.Fatal("bob's lab has no connectivity through slice lr2")
	}
}

func TestSlicedRouterValidation(t *testing.T) {
	c := newCloud(t, lab.Options{})
	if _, _, err := c.AddSlicedRouter("x", map[string][]string{}); err == nil {
		t.Error("empty slice map should fail")
	}
	if _, _, err := c.AddSlicedRouter("x", map[string][]string{"a": {}}); err == nil {
		t.Error("empty slice should fail")
	}
	if _, _, err := c.AddSlicedRouter("x", map[string][]string{"a": {"e0"}, "b": {"e0"}}); err == nil {
		t.Error("port in two slices should fail")
	}
}
