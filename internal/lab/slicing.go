package lab

import (
	"fmt"
	"io"
	"sort"

	"rnl/internal/device"
	"rnl/internal/netsim"
	"rnl/internal/ris"
)

// AddSlicedRouter joins ONE physical router to the labs as multiple
// inventory entries — one per logical-router slice (paper §4: "a user
// could reserve a slice of the router, in addition to being able to
// reserve the whole physical router"). The RIS multiplexes: every slice's
// ports map to their own NICs, but all hang off the same physical device
// and the same lab PC.
//
// slices maps slice name → the physical ports assigned to it; slice names
// become inventory entries "<name>/<slice>". Ports may appear in at most
// one slice.
func (c *Cloud) AddSlicedRouter(name string, slices map[string][]string) (*device.Router, map[string]*Equipment, error) {
	var allPorts []string
	seen := map[string]bool{}
	for slice, ports := range slices {
		if len(ports) == 0 {
			return nil, nil, fmt.Errorf("lab: slice %q has no ports", slice)
		}
		for _, p := range ports {
			if seen[p] {
				return nil, nil, fmt.Errorf("lab: port %q assigned to two slices", p)
			}
			seen[p] = true
			allPorts = append(allPorts, p)
		}
	}
	if len(allPorts) == 0 {
		return nil, nil, fmt.Errorf("lab: sliced router needs at least one slice")
	}
	r := device.NewRouter(name, allPorts, c.opts.Timers)
	c.onClose(r.Close)

	cfg := ris.Config{
		ServerAddr: c.TunnelAddr,
		PCName:     "pc-" + name,
		Compress:   c.opts.Compress,
	}
	type slicePorts struct {
		inv  string
		nics map[string]*netsim.Iface
	}
	bySlice := map[string]*slicePorts{}
	sliceNames := make([]string, 0, len(slices))
	for slice := range slices {
		sliceNames = append(sliceNames, slice)
	}
	sort.Strings(sliceNames)
	consoleGiven := false
	for _, slice := range sliceNames {
		ports := slices[slice]
		invName := name + "/" + slice
		sp := &slicePorts{inv: invName, nics: map[string]*netsim.Iface{}}
		bySlice[slice] = sp
		def := ris.RouterDef{
			Name:        invName,
			Model:       "7200 Series (logical router)",
			Description: fmt.Sprintf("slice %s of physical router %s", slice, name),
		}
		for _, pn := range ports {
			if err := r.AssignLogicalRouter(pn, slice); err != nil {
				return nil, nil, err
			}
			nic := netsim.NewIface("pc-" + name + "/" + slice + "/" + pn)
			w := netsim.Connect(r.Port(pn), nic, nil)
			c.onClose(w.Disconnect)
			sp.nics[pn] = nic
			def.Ports = append(def.Ports, ris.PortMap{Name: pn, NIC: nic, Description: pn + " (slice " + slice + ")"})
		}
		// The physical console belongs to the lab manager; attach it to
		// the first slice (alphabetically) so exactly one inventory
		// entry offers it, deterministically.
		if !consoleGiven {
			serial := netsim.NewSerialPort()
			c.onClose(serial.Close)
			go func(rw io.ReadWriter) { device.AttachConsole(r, rw) }(serial.DeviceEnd)
			def.Console = serial.PCEnd
			consoleGiven = true
		}
		cfg.Routers = append(cfg.Routers, def)
	}
	agent, err := ris.New(cfg, c.log)
	if err != nil {
		return nil, nil, err
	}
	if err := agent.Start(); err != nil {
		return nil, nil, err
	}
	c.onClose(agent.Close)

	out := map[string]*Equipment{}
	for slice, sp := range bySlice {
		out[slice] = &Equipment{Name: sp.inv, Agent: agent, NICs: sp.nics}
	}
	return r, out, nil
}
