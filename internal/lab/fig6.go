package lab

import (
	"fmt"

	"rnl/internal/device"
	"rnl/internal/topology"
)

// Fig6 is the paper's automated policy test (Fig. 6): four routers where
// subnet A (behind R3) must never reach subnet B (behind R4). The policy
// is enforced by packet filters on the R1–R2 path; all routers run RIP, so
// when a new R3–R4 link is added later, routing converges onto the
// unfiltered shortcut and silently violates the policy — exactly what the
// nightly test exists to catch.
type Fig6 struct {
	R1, R2, R3, R4 *device.Router
	HostA, HostB   *device.Host
	// Design is the initial chain topology; DesignWithShortcut adds the
	// future R3–R4 link.
	Design             *topology.Design
	DesignWithShortcut *topology.Design
}

// Fig6 addressing.
const (
	Fig6SubnetA = "10.1.0.0"
	Fig6SubnetB = "10.2.0.0"
)

// BuildFig6 stands up the routers, hosts, addressing, RIP and the policy
// filters, saves both designs ("fig6" and "fig6-shortcut") and deploys the
// initial one.
func (c *Cloud) BuildFig6() (*Fig6, error) {
	f := &Fig6{}
	var err error
	if f.R1, _, err = c.AddRouter("fig6-r1", []string{"e1", "e2"}); err != nil {
		return nil, err
	}
	if f.R2, _, err = c.AddRouter("fig6-r2", []string{"e1", "e2"}); err != nil {
		return nil, err
	}
	if f.R3, _, err = c.AddRouter("fig6-r3", []string{"e1", "e2", "e3"}); err != nil {
		return nil, err
	}
	if f.R4, _, err = c.AddRouter("fig6-r4", []string{"e1", "e2", "e3"}); err != nil {
		return nil, err
	}
	if f.HostA, _, err = c.AddHost("fig6-hostA", "10.1.0.2/24", "10.1.0.1"); err != nil {
		return nil, err
	}
	if f.HostB, _, err = c.AddHost("fig6-hostB", "10.2.0.2/24", "10.2.0.1"); err != nil {
		return nil, err
	}

	type ipAssign struct {
		r        *device.Router
		port, ip string
	}
	for _, a := range []ipAssign{
		{f.R3, "e2", "10.1.0.1"},     // subnet A gateway
		{f.R3, "e1", "192.168.31.3"}, // R3–R1
		{f.R1, "e1", "192.168.31.1"},
		{f.R1, "e2", "192.168.12.1"}, // R1–R2
		{f.R2, "e2", "192.168.12.2"},
		{f.R2, "e1", "192.168.24.2"}, // R2–R4
		{f.R4, "e1", "192.168.24.4"},
		{f.R4, "e2", "10.2.0.1"},     // subnet B gateway
		{f.R3, "e3", "192.168.34.3"}, // future R3–R4 link
		{f.R4, "e3", "192.168.34.4"},
	} {
		if err := a.r.SetIP(a.port, mustParseIP(a.ip), []byte{255, 255, 255, 0}); err != nil {
			return nil, err
		}
	}
	for _, r := range []*device.Router{f.R1, f.R2} {
		if err := r.EnableRIP("e1", "e2"); err != nil {
			return nil, err
		}
	}
	for _, r := range []*device.Router{f.R3, f.R4} {
		if err := r.EnableRIP("e1", "e2", "e3"); err != nil {
			return nil, err
		}
	}

	// The security policy: subnet A cannot talk to subnet B, enforced on
	// the R1–R2 path (interfaces R1.2 and R2.2 in the paper).
	deny, err := device.ParseACLRule(fmt.Sprintf("deny ip %s 0.0.0.255 %s 0.0.0.255", Fig6SubnetA, Fig6SubnetB))
	if err != nil {
		return nil, err
	}
	denyBack, err := device.ParseACLRule(fmt.Sprintf("deny ip %s 0.0.0.255 %s 0.0.0.255", Fig6SubnetB, Fig6SubnetA))
	if err != nil {
		return nil, err
	}
	permit, err := device.ParseACLRule("permit ip any any")
	if err != nil {
		return nil, err
	}
	rules := []device.ACLRule{deny, denyBack, permit}
	f.R1.SetACL("101", rules)
	f.R2.SetACL("101", rules)
	if err := f.R1.BindACL("e2", "101", "out"); err != nil {
		return nil, err
	}
	if err := f.R2.BindACL("e2", "101", "out"); err != nil {
		return nil, err
	}

	routers := []string{"fig6-r1", "fig6-r2", "fig6-r3", "fig6-r4", "fig6-hostA", "fig6-hostB"}
	d := &topology.Design{Name: "fig6", Owner: "paper", Routers: routers}
	connect := func(dd *topology.Design, ar, ap, br, bp string) {
		if err == nil {
			err = dd.Connect(ar, ap, br, bp)
		}
	}
	connect(d, "fig6-r3", "e1", "fig6-r1", "e1")
	connect(d, "fig6-r1", "e2", "fig6-r2", "e2")
	connect(d, "fig6-r2", "e1", "fig6-r4", "e1")
	connect(d, "fig6-r3", "e2", "fig6-hostA", "eth0")
	connect(d, "fig6-r4", "e2", "fig6-hostB", "eth0")
	if err != nil {
		return nil, fmt.Errorf("lab: building fig6 design: %w", err)
	}
	// The "future" topology with the extra R3–R4 link.
	d2 := d.Clone()
	d2.Name = "fig6-shortcut"
	connect(d2, "fig6-r3", "e3", "fig6-r4", "e3")
	if err != nil {
		return nil, fmt.Errorf("lab: building fig6-shortcut design: %w", err)
	}
	if err := c.Store.Save(d); err != nil {
		return nil, err
	}
	if err := c.Store.Save(d2); err != nil {
		return nil, err
	}
	f.Design, f.DesignWithShortcut = d, d2
	if err := c.DeployDesign(d); err != nil {
		return nil, err
	}
	return f, nil
}

// mustParseIP converts dotted quad to 4 bytes; inputs are compile-time
// constants above.
func mustParseIP(s string) []byte {
	ip, _, err := splitCIDR(s + "/32")
	if err != nil {
		panic(err)
	}
	return ip
}
