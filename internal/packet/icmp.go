package packet

import (
	"encoding/binary"
	"fmt"
)

// ICMPv4 message types.
const (
	ICMPv4TypeEchoReply       uint8 = 0
	ICMPv4TypeDestUnreachable uint8 = 3
	ICMPv4TypeEchoRequest     uint8 = 8
	ICMPv4TypeTimeExceeded    uint8 = 11
)

// ICMPv4 destination-unreachable codes.
const (
	ICMPv4CodeNetUnreachable  uint8 = 0
	ICMPv4CodeHostUnreachable uint8 = 1
	ICMPv4CodeAdminProhibited uint8 = 13
)

// ICMPv4 is an ICMP message. For echo messages, ID and Seq are meaningful;
// other types carry their bytes in the payload.
type ICMPv4 struct {
	Type     uint8
	Code     uint8
	Checksum uint16
	ID, Seq  uint16

	contents, payload []byte
}

const icmpv4HeaderLen = 8

func (i *ICMPv4) LayerType() LayerType  { return LayerTypeICMPv4 }
func (i *ICMPv4) LayerContents() []byte { return i.contents }
func (i *ICMPv4) LayerPayload() []byte  { return i.payload }

func (i *ICMPv4) String() string {
	return fmt.Sprintf("ICMPv4 type %d code %d id %d seq %d", i.Type, i.Code, i.ID, i.Seq)
}

func decodeICMPv4(data []byte, b Builder) error {
	if len(data) < icmpv4HeaderLen {
		return errTruncated(LayerTypeICMPv4, icmpv4HeaderLen, len(data))
	}
	i := &ICMPv4{
		Type:     data[0],
		Code:     data[1],
		Checksum: binary.BigEndian.Uint16(data[2:4]),
		ID:       binary.BigEndian.Uint16(data[4:6]),
		Seq:      binary.BigEndian.Uint16(data[6:8]),
		contents: data[:icmpv4HeaderLen],
		payload:  data[icmpv4HeaderLen:],
	}
	b.AddLayer(i)
	return b.NextDecoder(LayerTypePayload, i.payload)
}

// ChecksumValid recomputes and verifies the message checksum over the
// header plus payload.
func (i *ICMPv4) ChecksumValid() bool {
	full := make([]byte, 0, len(i.contents)+len(i.payload))
	full = append(full, i.contents...)
	full = append(full, i.payload...)
	return ipChecksum(full) == 0
}

// SerializeTo implements SerializableLayer.
func (i *ICMPv4) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	payload := b.Bytes()
	buf := b.PrependBytes(icmpv4HeaderLen)
	buf[0] = i.Type
	buf[1] = i.Code
	buf[2], buf[3] = 0, 0
	binary.BigEndian.PutUint16(buf[4:6], i.ID)
	binary.BigEndian.PutUint16(buf[6:8], i.Seq)
	if opts.ComputeChecksums {
		var sum uint32
		sum += onesComplementSum(buf[:icmpv4HeaderLen])
		sum += onesComplementSum(payload)
		i.Checksum = foldChecksum(sum)
	}
	binary.BigEndian.PutUint16(buf[2:4], i.Checksum)
	return nil
}
