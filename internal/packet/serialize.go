package packet

// SerializableLayer is a layer that can be written back to wire format.
type SerializableLayer interface {
	// SerializeTo prepends this layer's wire representation onto the
	// buffer, treating the buffer's current contents as its payload.
	SerializeTo(b *SerializeBuffer, opts SerializeOptions) error
	LayerType() LayerType
}

// SerializeOptions controls how layers are written.
type SerializeOptions struct {
	// FixLengths recomputes length fields (IPv4 total length, UDP
	// length, …) from the actual payload sizes.
	FixLengths bool
	// ComputeChecksums recomputes checksum fields (IPv4 header checksum,
	// UDP/TCP/ICMP checksums).
	ComputeChecksums bool
}

// FixAll recomputes both lengths and checksums; what callers almost always
// want when building packets from scratch.
var FixAll = SerializeOptions{FixLengths: true, ComputeChecksums: true}

// SerializeBuffer accumulates a packet back-to-front: each layer prepends
// its header in front of what is already there. The zero value is ready to
// use.
type SerializeBuffer struct {
	buf   []byte // storage; live data occupies buf[start:]
	start int
}

// NewSerializeBuffer returns an empty buffer with a small amount of
// preallocated headroom.
func NewSerializeBuffer() *SerializeBuffer {
	const headroom = 256
	return &SerializeBuffer{buf: make([]byte, headroom), start: headroom}
}

// Bytes returns the serialized packet so far.
func (b *SerializeBuffer) Bytes() []byte { return b.buf[b.start:] }

// Clear empties the buffer for reuse, keeping its storage.
func (b *SerializeBuffer) Clear() { b.start = len(b.buf) }

// PrependBytes makes room for n bytes in front of the current contents and
// returns that region for the caller to fill.
func (b *SerializeBuffer) PrependBytes(n int) []byte {
	if b.start < n {
		grow := n - b.start
		if grow < len(b.buf)+64 {
			grow = len(b.buf) + 64 // at least double, plus slack
		}
		nb := make([]byte, grow+len(b.buf))
		copy(nb[grow:], b.buf)
		b.buf = nb
		b.start += grow
	}
	b.start -= n
	return b.buf[b.start : b.start+n]
}

// AppendBytes makes room for n bytes after the current contents and returns
// that region for the caller to fill. Used by trailers (rare).
func (b *SerializeBuffer) AppendBytes(n int) []byte {
	old := len(b.buf)
	b.buf = append(b.buf, make([]byte, n)...)
	return b.buf[old:]
}

// SerializeLayers clears the buffer and serializes the given layers onto it
// in reverse order, so the first argument ends up outermost — mirroring how
// the packet reads on the wire: SerializeLayers(buf, opts, &eth, &ip, &udp,
// Payload(data)).
func SerializeLayers(b *SerializeBuffer, opts SerializeOptions, layers ...SerializableLayer) error {
	b.Clear()
	for i := len(layers) - 1; i >= 0; i-- {
		if err := layers[i].SerializeTo(b, opts); err != nil {
			return err
		}
	}
	return nil
}
