package packet

import "fmt"

// Builder is the interface decoders use to attach decoded layers to the
// packet under construction and to hand off the remaining bytes to the next
// protocol's decoder.
type Builder interface {
	// AddLayer appends a decoded layer to the packet.
	AddLayer(l Layer)
	// SetLinkLayer records the packet's link layer (first one wins).
	SetLinkLayer(l LinkLayer)
	// SetNetworkLayer records the packet's network layer (first one wins).
	SetNetworkLayer(l NetworkLayer)
	// SetTransportLayer records the packet's transport layer (first one wins).
	SetTransportLayer(l TransportLayer)
	// SetApplicationLayer records the packet's application layer (first one wins).
	SetApplicationLayer(l ApplicationLayer)
	// NextDecoder decodes the remaining bytes as the given layer type.
	NextDecoder(next LayerType, data []byte) error
}

// Decoder decodes bytes into layers attached through the Builder.
type Decoder interface {
	Decode(data []byte, b Builder) error
}

// DecodeFunc adapts a function to the Decoder interface.
type DecodeFunc func(data []byte, b Builder) error

// Decode implements Decoder.
func (f DecodeFunc) Decode(data []byte, b Builder) error { return f(data, b) }

// decodeNext is the shared NextDecoder implementation: it looks up the
// registered decoder for the next layer type and invokes it. Zero-length
// remainders terminate decoding cleanly; an unknown next type becomes a
// Payload layer so the bytes stay reachable.
func decodeNext(b Builder, next LayerType, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	d, ok := decoderFor(next)
	if !ok {
		return decodePayload(data, b)
	}
	return d.Decode(data, b)
}

// errTruncated builds the uniform error for short inputs.
func errTruncated(layer LayerType, need, have int) error {
	return fmt.Errorf("packet: truncated %v: need %d bytes, have %d", layer, need, have)
}
