package packet

import (
	"encoding/hex"
	"fmt"
	"net"
)

// EndpointType identifies the kind of address held in an Endpoint.
type EndpointType int

// Endpoint address kinds.
const (
	EndpointMAC EndpointType = iota + 1
	EndpointIPv4
	EndpointUDPPort
	EndpointTCPPort
)

// Endpoint is a hashable representation of a source or destination address
// at one layer. Endpoints are comparable and usable as map keys.
type Endpoint struct {
	typ EndpointType
	len int
	raw [8]byte
}

// NewEndpoint builds an endpoint from raw address bytes. Addresses longer
// than 8 bytes are rejected (RNL carries MAC, IPv4 and port endpoints only).
func NewEndpoint(typ EndpointType, addr []byte) Endpoint {
	var e Endpoint
	if len(addr) > len(e.raw) {
		panic(fmt.Sprintf("packet: endpoint address too long: %d bytes", len(addr)))
	}
	e.typ = typ
	e.len = copy(e.raw[:], addr)
	return e
}

// MACEndpoint builds an endpoint from a hardware address.
func MACEndpoint(a net.HardwareAddr) Endpoint { return NewEndpoint(EndpointMAC, a) }

// IPv4Endpoint builds an endpoint from a 4-byte IP address.
func IPv4Endpoint(ip net.IP) Endpoint { return NewEndpoint(EndpointIPv4, ip.To4()) }

// UDPPortEndpoint builds an endpoint from a UDP port number.
func UDPPortEndpoint(port uint16) Endpoint {
	return NewEndpoint(EndpointUDPPort, []byte{byte(port >> 8), byte(port)})
}

// TCPPortEndpoint builds an endpoint from a TCP port number.
func TCPPortEndpoint(port uint16) Endpoint {
	return NewEndpoint(EndpointTCPPort, []byte{byte(port >> 8), byte(port)})
}

// Type reports the endpoint's address kind.
func (e Endpoint) Type() EndpointType { return e.typ }

// Raw returns the endpoint's address bytes.
func (e Endpoint) Raw() []byte { return e.raw[:e.len] }

// FastHash is a quick non-cryptographic hash of the endpoint (FNV-1a).
func (e Endpoint) FastHash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	h = (h ^ uint64(e.typ)) * prime
	for i := 0; i < e.len; i++ {
		h = (h ^ uint64(e.raw[i])) * prime
	}
	return h
}

func (e Endpoint) String() string {
	switch e.typ {
	case EndpointMAC:
		return net.HardwareAddr(e.raw[:e.len]).String()
	case EndpointIPv4:
		return net.IP(e.raw[:e.len]).String()
	case EndpointUDPPort, EndpointTCPPort:
		return fmt.Sprintf("%d", uint16(e.raw[0])<<8|uint16(e.raw[1]))
	default:
		return hex.EncodeToString(e.raw[:e.len])
	}
}

// Flow is a directed pair of endpoints: a packet travelling from Src to Dst
// at one layer. Flows are comparable and usable as map keys.
type Flow struct {
	src, dst Endpoint
}

// NewFlow builds a flow between two endpoints of the same type.
func NewFlow(src, dst Endpoint) Flow { return Flow{src: src, dst: dst} }

// Endpoints returns the flow's source and destination.
func (f Flow) Endpoints() (src, dst Endpoint) { return f.src, f.dst }

// Src returns the flow's source endpoint.
func (f Flow) Src() Endpoint { return f.src }

// Dst returns the flow's destination endpoint.
func (f Flow) Dst() Endpoint { return f.dst }

// Reverse returns the flow with source and destination swapped.
func (f Flow) Reverse() Flow { return Flow{src: f.dst, dst: f.src} }

// FastHash is a symmetric hash: a flow and its reverse hash identically, so
// both directions of a conversation land in the same bucket.
func (f Flow) FastHash() uint64 { return f.src.FastHash() + f.dst.FastHash() }

func (f Flow) String() string { return f.src.String() + "->" + f.dst.String() }
