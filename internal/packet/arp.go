package packet

import (
	"encoding/binary"
	"fmt"
	"net"
)

// ARP operation codes.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

// ARP is an Ethernet/IPv4 ARP packet.
type ARP struct {
	Operation                      uint16
	SenderHWAddr, TargetHWAddr     net.HardwareAddr
	SenderProtAddr, TargetProtAddr net.IP

	contents, payload []byte
}

const arpLen = 28

func (a *ARP) LayerType() LayerType  { return LayerTypeARP }
func (a *ARP) LayerContents() []byte { return a.contents }
func (a *ARP) LayerPayload() []byte  { return a.payload }

// NetworkFlow returns sender→target protocol addresses.
func (a *ARP) NetworkFlow() Flow {
	return NewFlow(IPv4Endpoint(a.SenderProtAddr), IPv4Endpoint(a.TargetProtAddr))
}

func (a *ARP) String() string {
	if a.Operation == ARPRequest {
		return fmt.Sprintf("ARP who-has %s tell %s", a.TargetProtAddr, a.SenderProtAddr)
	}
	return fmt.Sprintf("ARP %s is-at %s", a.SenderProtAddr, a.SenderHWAddr)
}

func decodeARP(data []byte, b Builder) error {
	if len(data) < arpLen {
		return errTruncated(LayerTypeARP, arpLen, len(data))
	}
	if ht := binary.BigEndian.Uint16(data[0:2]); ht != 1 {
		return fmt.Errorf("packet: ARP hardware type %d unsupported", ht)
	}
	if pt := binary.BigEndian.Uint16(data[2:4]); pt != uint16(EthernetTypeIPv4) {
		return fmt.Errorf("packet: ARP protocol type %#04x unsupported", pt)
	}
	if data[4] != 6 || data[5] != 4 {
		return fmt.Errorf("packet: ARP address lengths %d/%d unsupported", data[4], data[5])
	}
	a := &ARP{
		Operation:      binary.BigEndian.Uint16(data[6:8]),
		SenderHWAddr:   net.HardwareAddr(data[8:14]),
		SenderProtAddr: net.IP(data[14:18]),
		TargetHWAddr:   net.HardwareAddr(data[18:24]),
		TargetProtAddr: net.IP(data[24:28]),
		contents:       data[:arpLen],
		payload:        data[arpLen:],
	}
	b.AddLayer(a)
	b.SetNetworkLayer(a)
	return nil
}

// SerializeTo implements SerializableLayer.
func (a *ARP) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	if len(a.SenderHWAddr) != 6 || len(a.TargetHWAddr) != 6 {
		return fmt.Errorf("packet: ARP needs 6-byte MACs")
	}
	sp, tp := a.SenderProtAddr.To4(), a.TargetProtAddr.To4()
	if sp == nil || tp == nil {
		return fmt.Errorf("packet: ARP needs IPv4 protocol addresses")
	}
	buf := b.PrependBytes(arpLen)
	binary.BigEndian.PutUint16(buf[0:2], 1) // Ethernet
	binary.BigEndian.PutUint16(buf[2:4], uint16(EthernetTypeIPv4))
	buf[4], buf[5] = 6, 4
	binary.BigEndian.PutUint16(buf[6:8], a.Operation)
	copy(buf[8:14], a.SenderHWAddr)
	copy(buf[14:18], sp)
	copy(buf[18:24], a.TargetHWAddr)
	copy(buf[24:28], tp)
	return nil
}
