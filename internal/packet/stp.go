package packet

import (
	"encoding/binary"
	"fmt"
	"net"
)

// BPDU types (IEEE 802.1D).
const (
	BPDUTypeConfig uint8 = 0x00
	BPDUTypeTCN    uint8 = 0x80
)

// Configuration BPDU flag bits.
const (
	STPFlagTopologyChange    uint8 = 0x01
	STPFlagTopologyChangeAck uint8 = 0x80
)

// BridgeID is an 802.1D bridge identifier: a 2-byte priority followed by
// the bridge MAC address. Lower values win root elections.
type BridgeID struct {
	Priority uint16
	MAC      net.HardwareAddr
}

// Less reports whether b beats o in a root bridge election.
func (b BridgeID) Less(o BridgeID) bool {
	if b.Priority != o.Priority {
		return b.Priority < o.Priority
	}
	for i := 0; i < 6 && i < len(b.MAC) && i < len(o.MAC); i++ {
		if b.MAC[i] != o.MAC[i] {
			return b.MAC[i] < o.MAC[i]
		}
	}
	return false
}

// Equal reports bridge ID equality.
func (b BridgeID) Equal(o BridgeID) bool {
	return b.Priority == o.Priority && b.MAC.String() == o.MAC.String()
}

func (b BridgeID) String() string {
	return fmt.Sprintf("%d/%s", b.Priority, b.MAC)
}

// STP is an 802.1D spanning-tree BPDU. Timer fields are carried in units
// of 1/256 s as on the wire; accessors convert where useful.
type STP struct {
	ProtocolID   uint16 // always 0
	Version      uint8  // 0 for 802.1D
	BPDUType     uint8
	Flags        uint8
	RootID       BridgeID
	RootCost     uint32
	BridgeID     BridgeID
	PortID       uint16
	MessageAge   uint16
	MaxAge       uint16
	HelloTime    uint16
	ForwardDelay uint16

	contents, payload []byte
}

const (
	stpConfigLen = 35
	stpTCNLen    = 4
)

func (s *STP) LayerType() LayerType  { return LayerTypeSTP }
func (s *STP) LayerContents() []byte { return s.contents }
func (s *STP) LayerPayload() []byte  { return s.payload }

func (s *STP) String() string {
	if s.BPDUType == BPDUTypeTCN {
		return "STP TCN"
	}
	return fmt.Sprintf("STP config root %s cost %d bridge %s port %#04x",
		s.RootID, s.RootCost, s.BridgeID, s.PortID)
}

func putBridgeID(buf []byte, id BridgeID) {
	binary.BigEndian.PutUint16(buf[0:2], id.Priority)
	copy(buf[2:8], id.MAC)
}

func getBridgeID(buf []byte) BridgeID {
	return BridgeID{
		Priority: binary.BigEndian.Uint16(buf[0:2]),
		MAC:      net.HardwareAddr(append([]byte(nil), buf[2:8]...)),
	}
}

func decodeSTP(data []byte, b Builder) error {
	if len(data) < stpTCNLen {
		return errTruncated(LayerTypeSTP, stpTCNLen, len(data))
	}
	s := &STP{
		ProtocolID: binary.BigEndian.Uint16(data[0:2]),
		Version:    data[2],
		BPDUType:   data[3],
	}
	if s.ProtocolID != 0 {
		return fmt.Errorf("packet: STP protocol ID %#04x unsupported", s.ProtocolID)
	}
	switch s.BPDUType {
	case BPDUTypeTCN:
		s.contents = data[:stpTCNLen]
		s.payload = data[stpTCNLen:]
	case BPDUTypeConfig:
		if len(data) < stpConfigLen {
			return errTruncated(LayerTypeSTP, stpConfigLen, len(data))
		}
		s.Flags = data[4]
		s.RootID = getBridgeID(data[5:13])
		s.RootCost = binary.BigEndian.Uint32(data[13:17])
		s.BridgeID = getBridgeID(data[17:25])
		s.PortID = binary.BigEndian.Uint16(data[25:27])
		s.MessageAge = binary.BigEndian.Uint16(data[27:29])
		s.MaxAge = binary.BigEndian.Uint16(data[29:31])
		s.HelloTime = binary.BigEndian.Uint16(data[31:33])
		s.ForwardDelay = binary.BigEndian.Uint16(data[33:35])
		s.contents = data[:stpConfigLen]
		s.payload = data[stpConfigLen:]
	default:
		return fmt.Errorf("packet: BPDU type %#02x unsupported", s.BPDUType)
	}
	b.AddLayer(s)
	return nil
}

// SerializeTo implements SerializableLayer.
func (s *STP) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	if s.BPDUType == BPDUTypeTCN {
		buf := b.PrependBytes(stpTCNLen)
		binary.BigEndian.PutUint16(buf[0:2], s.ProtocolID)
		buf[2] = s.Version
		buf[3] = s.BPDUType
		return nil
	}
	if len(s.RootID.MAC) != 6 || len(s.BridgeID.MAC) != 6 {
		return fmt.Errorf("packet: STP bridge IDs need 6-byte MACs")
	}
	buf := b.PrependBytes(stpConfigLen)
	binary.BigEndian.PutUint16(buf[0:2], s.ProtocolID)
	buf[2] = s.Version
	buf[3] = s.BPDUType
	buf[4] = s.Flags
	putBridgeID(buf[5:13], s.RootID)
	binary.BigEndian.PutUint32(buf[13:17], s.RootCost)
	putBridgeID(buf[17:25], s.BridgeID)
	binary.BigEndian.PutUint16(buf[25:27], s.PortID)
	binary.BigEndian.PutUint16(buf[27:29], s.MessageAge)
	binary.BigEndian.PutUint16(buf[29:31], s.MaxAge)
	binary.BigEndian.PutUint16(buf[31:33], s.HelloTime)
	binary.BigEndian.PutUint16(buf[33:35], s.ForwardDelay)
	return nil
}
