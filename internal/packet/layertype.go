// Package packet implements decoding and serialization of the network
// protocols RNL must carry with full layer-2 fidelity: Ethernet (both
// Ethernet II and 802.3/LLC framing), 802.1Q VLAN tags, ARP, IPv4, ICMPv4,
// UDP, TCP, IEEE 802.1D spanning-tree BPDUs, RIPv2, and the FWSM-style
// failover hello protocol.
//
// The API follows the gopacket idiom: a Packet is decoded from raw bytes
// into a stack of Layers, individual layers are retrieved by LayerType, and
// SerializableLayers are written back to bytes through a SerializeBuffer
// that prepends headers in reverse order.
package packet

import "fmt"

// LayerType identifies one protocol layer within a packet.
type LayerType int

// Known layer types. LayerTypeZero is never assigned to a real layer.
const (
	LayerTypeZero LayerType = iota
	LayerTypePayload
	LayerTypeEthernet
	LayerTypeLLC
	LayerTypeDot1Q
	LayerTypeARP
	LayerTypeIPv4
	LayerTypeICMPv4
	LayerTypeUDP
	LayerTypeTCP
	LayerTypeSTP
	LayerTypeRIP
	LayerTypeFailoverHello
	LayerTypeDecodeFailure

	// layerTypeUserBase is the first LayerType available to
	// RegisterLayerType callers.
	layerTypeUserBase LayerType = 1000
)

var layerTypeNames = map[LayerType]string{
	LayerTypeZero:          "Zero",
	LayerTypePayload:       "Payload",
	LayerTypeEthernet:      "Ethernet",
	LayerTypeLLC:           "LLC",
	LayerTypeDot1Q:         "Dot1Q",
	LayerTypeARP:           "ARP",
	LayerTypeIPv4:          "IPv4",
	LayerTypeICMPv4:        "ICMPv4",
	LayerTypeUDP:           "UDP",
	LayerTypeTCP:           "TCP",
	LayerTypeSTP:           "STP",
	LayerTypeRIP:           "RIP",
	LayerTypeFailoverHello: "FailoverHello",
	LayerTypeDecodeFailure: "DecodeFailure",
}

var layerTypeDecoders = map[LayerType]Decoder{}

func (t LayerType) String() string {
	if n, ok := layerTypeNames[t]; ok {
		return n
	}
	return fmt.Sprintf("LayerType(%d)", int(t))
}

// RegisterLayerType registers a user-defined layer type with a display name
// and the decoder invoked when another layer hands off to it. Registering a
// built-in type or registering the same type twice panics: layer type
// registration is program initialization, not a runtime operation.
func RegisterLayerType(t LayerType, name string, dec Decoder) LayerType {
	if t < layerTypeUserBase {
		panic(fmt.Sprintf("packet: layer type %d collides with built-in range", int(t)))
	}
	if _, ok := layerTypeNames[t]; ok {
		panic(fmt.Sprintf("packet: layer type %d already registered", int(t)))
	}
	layerTypeNames[t] = name
	layerTypeDecoders[t] = dec
	return t
}

// decoderFor returns the decoder responsible for a layer type.
func decoderFor(t LayerType) (Decoder, bool) {
	switch t {
	case LayerTypePayload:
		return DecodeFunc(decodePayload), true
	case LayerTypeEthernet:
		return DecodeFunc(decodeEthernet), true
	case LayerTypeLLC:
		return DecodeFunc(decodeLLC), true
	case LayerTypeDot1Q:
		return DecodeFunc(decodeDot1Q), true
	case LayerTypeARP:
		return DecodeFunc(decodeARP), true
	case LayerTypeIPv4:
		return DecodeFunc(decodeIPv4), true
	case LayerTypeICMPv4:
		return DecodeFunc(decodeICMPv4), true
	case LayerTypeUDP:
		return DecodeFunc(decodeUDP), true
	case LayerTypeTCP:
		return DecodeFunc(decodeTCP), true
	case LayerTypeSTP:
		return DecodeFunc(decodeSTP), true
	case LayerTypeRIP:
		return DecodeFunc(decodeRIP), true
	case LayerTypeFailoverHello:
		return DecodeFunc(decodeFailoverHello), true
	}
	d, ok := layerTypeDecoders[t]
	return d, ok
}
