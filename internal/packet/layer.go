package packet

// Layer is one decoded protocol layer of a packet.
type Layer interface {
	// LayerType identifies the protocol this layer represents.
	LayerType() LayerType
	// LayerContents returns the bytes that make up this layer's header
	// (and, for leaf layers, its data).
	LayerContents() []byte
	// LayerPayload returns the bytes this layer carries for the layers
	// above it.
	LayerPayload() []byte
}

// LinkLayer is a layer-2 layer (Ethernet).
type LinkLayer interface {
	Layer
	LinkFlow() Flow
}

// NetworkLayer is a layer-3 layer (IPv4, ARP).
type NetworkLayer interface {
	Layer
	NetworkFlow() Flow
}

// TransportLayer is a layer-4 layer (UDP, TCP).
type TransportLayer interface {
	Layer
	TransportFlow() Flow
}

// ApplicationLayer holds the payload above transport.
type ApplicationLayer interface {
	Layer
	Payload() []byte
}

// Payload is a raw application payload layer: the bytes left over once all
// recognized headers are decoded.
type Payload []byte

func (p Payload) LayerType() LayerType  { return LayerTypePayload }
func (p Payload) LayerContents() []byte { return p }
func (p Payload) LayerPayload() []byte  { return nil }
func (p Payload) Payload() []byte       { return p }
func (p Payload) String() string        { return "Payload" }

func decodePayload(data []byte, b Builder) error {
	b.AddLayer(Payload(data))
	b.SetApplicationLayer(Payload(data))
	return nil
}

// SerializeTo appends the payload bytes.
func (p Payload) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	buf := b.PrependBytes(len(p))
	copy(buf, p)
	return nil
}

// DecodeFailure records a decoding error: the undecodable bytes and the
// error encountered. It is stored as the final layer so earlier,
// successfully decoded layers remain usable.
type DecodeFailure struct {
	Data []byte
	Err  error
}

func (d *DecodeFailure) LayerType() LayerType  { return LayerTypeDecodeFailure }
func (d *DecodeFailure) LayerContents() []byte { return d.Data }
func (d *DecodeFailure) LayerPayload() []byte  { return nil }
func (d *DecodeFailure) Error() error          { return d.Err }
