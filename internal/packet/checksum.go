package packet

import "encoding/binary"

// onesComplementSum computes the ones-complement sum of data folded to 16
// bits, the building block of the Internet checksum family.
func onesComplementSum(data []byte) uint32 {
	var sum uint32
	n := len(data) &^ 1
	for i := 0; i < n; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if len(data)&1 != 0 {
		sum += uint32(data[len(data)-1]) << 8
	}
	return sum
}

func foldChecksum(sum uint32) uint16 {
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// ipChecksum computes the Internet checksum over data.
func ipChecksum(data []byte) uint16 {
	return foldChecksum(onesComplementSum(data))
}

// pseudoHeaderChecksum computes the transport checksum with the IPv4
// pseudo-header (src, dst, zero, protocol, transport length) prepended.
func pseudoHeaderChecksum(src, dst [4]byte, proto uint8, transport []byte) uint16 {
	var sum uint32
	sum += uint32(binary.BigEndian.Uint16(src[0:2]))
	sum += uint32(binary.BigEndian.Uint16(src[2:4]))
	sum += uint32(binary.BigEndian.Uint16(dst[0:2]))
	sum += uint32(binary.BigEndian.Uint16(dst[2:4]))
	sum += uint32(proto)
	sum += uint32(len(transport))
	sum += onesComplementSum(transport)
	return foldChecksum(sum)
}
