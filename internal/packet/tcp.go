package packet

import (
	"encoding/binary"
	"fmt"
)

// TCP is a TCP header. Options are carried opaquely.
type TCP struct {
	SrcPort, DstPort             uint16
	Seq, Ack                     uint32
	DataOffset                   uint8 // header length in 32-bit words
	FIN, SYN, RST, PSH, ACK, URG bool
	Window                       uint16
	Checksum                     uint16
	Urgent                       uint16
	Options                      []byte

	ip *IPv4

	contents, payload []byte
}

const tcpMinLen = 20

func (t *TCP) LayerType() LayerType  { return LayerTypeTCP }
func (t *TCP) LayerContents() []byte { return t.contents }
func (t *TCP) LayerPayload() []byte  { return t.payload }

// TransportFlow returns the src→dst port flow.
func (t *TCP) TransportFlow() Flow {
	return NewFlow(TCPPortEndpoint(t.SrcPort), TCPPortEndpoint(t.DstPort))
}

func (t *TCP) String() string {
	return fmt.Sprintf("TCP %d > %d seq %d ack %d", t.SrcPort, t.DstPort, t.Seq, t.Ack)
}

// SetNetworkLayerForChecksum provides the IPv4 header whose addresses feed
// the pseudo-header checksum during serialization.
func (t *TCP) SetNetworkLayerForChecksum(ip *IPv4) { t.ip = ip }

func decodeTCP(data []byte, b Builder) error {
	if len(data) < tcpMinLen {
		return errTruncated(LayerTypeTCP, tcpMinLen, len(data))
	}
	offset := data[12] >> 4
	hlen := int(offset) * 4
	if hlen < tcpMinLen || hlen > len(data) {
		return fmt.Errorf("packet: TCP data offset %d invalid for %d bytes", hlen, len(data))
	}
	flags := data[13]
	t := &TCP{
		SrcPort:    binary.BigEndian.Uint16(data[0:2]),
		DstPort:    binary.BigEndian.Uint16(data[2:4]),
		Seq:        binary.BigEndian.Uint32(data[4:8]),
		Ack:        binary.BigEndian.Uint32(data[8:12]),
		DataOffset: offset,
		FIN:        flags&0x01 != 0,
		SYN:        flags&0x02 != 0,
		RST:        flags&0x04 != 0,
		PSH:        flags&0x08 != 0,
		ACK:        flags&0x10 != 0,
		URG:        flags&0x20 != 0,
		Window:     binary.BigEndian.Uint16(data[14:16]),
		Checksum:   binary.BigEndian.Uint16(data[16:18]),
		Urgent:     binary.BigEndian.Uint16(data[18:20]),
		contents:   data[:hlen],
		payload:    data[hlen:],
	}
	if hlen > tcpMinLen {
		t.Options = data[tcpMinLen:hlen]
	}
	b.AddLayer(t)
	b.SetTransportLayer(t)
	return b.NextDecoder(LayerTypePayload, t.payload)
}

func (t *TCP) flagByte() uint8 {
	var f uint8
	if t.FIN {
		f |= 0x01
	}
	if t.SYN {
		f |= 0x02
	}
	if t.RST {
		f |= 0x04
	}
	if t.PSH {
		f |= 0x08
	}
	if t.ACK {
		f |= 0x10
	}
	if t.URG {
		f |= 0x20
	}
	return f
}

// SerializeTo implements SerializableLayer.
func (t *TCP) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	if len(t.Options)%4 != 0 {
		return fmt.Errorf("packet: TCP options length %d not a multiple of 4", len(t.Options))
	}
	hlen := tcpMinLen + len(t.Options)
	buf := b.PrependBytes(hlen)
	binary.BigEndian.PutUint16(buf[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(buf[2:4], t.DstPort)
	binary.BigEndian.PutUint32(buf[4:8], t.Seq)
	binary.BigEndian.PutUint32(buf[8:12], t.Ack)
	offset := t.DataOffset
	if opts.FixLengths || offset == 0 {
		offset = uint8(hlen / 4)
		t.DataOffset = offset
	}
	buf[12] = offset << 4
	buf[13] = t.flagByte()
	binary.BigEndian.PutUint16(buf[14:16], t.Window)
	buf[16], buf[17] = 0, 0
	binary.BigEndian.PutUint16(buf[18:20], t.Urgent)
	copy(buf[tcpMinLen:], t.Options)
	if opts.ComputeChecksums {
		if t.ip == nil {
			return fmt.Errorf("packet: TCP checksum requested without network layer; call SetNetworkLayerForChecksum")
		}
		src, dst, err := t.ip.addrs4()
		if err != nil {
			return err
		}
		t.Checksum = pseudoHeaderChecksum(src, dst, uint8(IPProtocolTCP), b.Bytes())
	}
	binary.BigEndian.PutUint16(buf[16:18], t.Checksum)
	return nil
}
