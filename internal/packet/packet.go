package packet

import (
	"fmt"
	"strings"
)

// Packet is a decoded network packet: the raw bytes plus the stack of
// protocol layers found in them. Packets are immutable once built and safe
// for concurrent use (decoding is eager, not lazy — RNL fans packets out to
// capture taps and forwarding simultaneously).
type Packet struct {
	data      []byte
	layers    []Layer
	link      LinkLayer
	network   NetworkLayer
	transport TransportLayer
	app       ApplicationLayer
	failure   *DecodeFailure
}

// DecodeOptions controls NewPacket behaviour.
type DecodeOptions struct {
	// NoCopy uses the caller's slice directly instead of copying it. The
	// caller must guarantee the bytes are never mutated afterwards.
	NoCopy bool
}

// Default copies input data; safest for long-lived packets.
var Default = DecodeOptions{}

// NoCopy trusts the caller's slice to be immutable.
var NoCopy = DecodeOptions{NoCopy: true}

// NewPacket decodes data starting at the given first layer. It never
// returns an error: decode problems are recorded as an ErrorLayer so the
// layers decoded before the failure remain usable.
func NewPacket(data []byte, first LayerType, opts DecodeOptions) *Packet {
	if !opts.NoCopy {
		c := make([]byte, len(data))
		copy(c, data)
		data = c
	}
	p := &Packet{data: data, layers: make([]Layer, 0, 4)}
	if err := decodeNext(p, first, data); err != nil {
		p.failure = &DecodeFailure{Data: data, Err: err}
		p.layers = append(p.layers, p.failure)
	}
	return p
}

// AddLayer implements Builder.
func (p *Packet) AddLayer(l Layer) { p.layers = append(p.layers, l) }

// SetLinkLayer implements Builder.
func (p *Packet) SetLinkLayer(l LinkLayer) {
	if p.link == nil {
		p.link = l
	}
}

// SetNetworkLayer implements Builder.
func (p *Packet) SetNetworkLayer(l NetworkLayer) {
	if p.network == nil {
		p.network = l
	}
}

// SetTransportLayer implements Builder.
func (p *Packet) SetTransportLayer(l TransportLayer) {
	if p.transport == nil {
		p.transport = l
	}
}

// SetApplicationLayer implements Builder.
func (p *Packet) SetApplicationLayer(l ApplicationLayer) {
	if p.app == nil {
		p.app = l
	}
}

// NextDecoder implements Builder.
func (p *Packet) NextDecoder(next LayerType, data []byte) error {
	return decodeNext(p, next, data)
}

// Data returns the packet's raw bytes.
func (p *Packet) Data() []byte { return p.data }

// Layers returns all decoded layers, outermost first.
func (p *Packet) Layers() []Layer { return p.layers }

// Layer returns the first layer of the given type, or nil.
func (p *Packet) Layer(t LayerType) Layer {
	for _, l := range p.layers {
		if l.LayerType() == t {
			return l
		}
	}
	return nil
}

// LinkLayer returns the packet's link layer, or nil.
func (p *Packet) LinkLayer() LinkLayer { return p.link }

// NetworkLayer returns the packet's network layer, or nil.
func (p *Packet) NetworkLayer() NetworkLayer { return p.network }

// TransportLayer returns the packet's transport layer, or nil.
func (p *Packet) TransportLayer() TransportLayer { return p.transport }

// ApplicationLayer returns the packet's application payload layer, or nil.
func (p *Packet) ApplicationLayer() ApplicationLayer { return p.app }

// ErrorLayer returns the decode failure, if decoding stopped early.
func (p *Packet) ErrorLayer() *DecodeFailure { return p.failure }

// String summarizes the layer stack, e.g. "Ethernet/IPv4/UDP/Payload".
func (p *Packet) String() string {
	names := make([]string, len(p.layers))
	for i, l := range p.layers {
		names[i] = l.LayerType().String()
	}
	return fmt.Sprintf("Packet(%d bytes): %s", len(p.data), strings.Join(names, "/"))
}
