package packet

import (
	"net"
	"testing"
	"testing/quick"
)

func TestFlowSymmetricHash(t *testing.T) {
	f := func(a, b [4]byte) bool {
		e1 := IPv4Endpoint(net.IP(a[:]))
		e2 := IPv4Endpoint(net.IP(b[:]))
		fl := NewFlow(e1, e2)
		return fl.FastHash() == fl.Reverse().FastHash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEndpointEqualityAsMapKey(t *testing.T) {
	m := map[Endpoint]int{}
	m[IPv4Endpoint(net.IPv4(1, 2, 3, 4))] = 1
	m[IPv4Endpoint(net.IPv4(1, 2, 3, 4))] = 2
	if len(m) != 1 {
		t.Errorf("identical endpoints produced %d map keys", len(m))
	}
	m[UDPPortEndpoint(0x0102)] = 3
	// A UDP port must not collide with an IP whose bytes overlap.
	if len(m) != 2 {
		t.Errorf("distinct endpoint types collided: %d keys", len(m))
	}
}

func TestEndpointTypesDistinguishUDPTCP(t *testing.T) {
	if UDPPortEndpoint(80) == TCPPortEndpoint(80) {
		t.Error("UDP and TCP port 80 endpoints must differ")
	}
}

func TestFlowEndpointsRoundtrip(t *testing.T) {
	src := MACEndpoint(mac1)
	dst := MACEndpoint(mac2)
	f := NewFlow(src, dst)
	s, d := f.Endpoints()
	if s != src || d != dst {
		t.Error("Endpoints() did not return constructor arguments")
	}
	if f.Src() != src || f.Dst() != dst {
		t.Error("Src/Dst accessors wrong")
	}
}

func TestEndpointString(t *testing.T) {
	cases := []struct {
		e    Endpoint
		want string
	}{
		{MACEndpoint(mac1), "00:11:22:33:44:55"},
		{IPv4Endpoint(net.IPv4(10, 0, 0, 1)), "10.0.0.1"},
		{UDPPortEndpoint(8080), "8080"},
		{TCPPortEndpoint(443), "443"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestFlowHashDistributes(t *testing.T) {
	// Sanity: different flows shouldn't all collide.
	seen := map[uint64]bool{}
	for i := 0; i < 256; i++ {
		ip := net.IPv4(10, 0, byte(i/256), byte(i)).To4()
		f := NewFlow(IPv4Endpoint(ip), IPv4Endpoint(ip2))
		seen[f.FastHash()] = true
	}
	if len(seen) < 200 {
		t.Errorf("only %d distinct hashes for 256 flows", len(seen))
	}
}
