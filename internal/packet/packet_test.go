package packet

import (
	"bytes"
	"net"
	"testing"
)

var (
	mac1 = net.HardwareAddr{0x00, 0x11, 0x22, 0x33, 0x44, 0x55}
	mac2 = net.HardwareAddr{0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb}
	ip1  = net.IPv4(10, 0, 0, 1).To4()
	ip2  = net.IPv4(10, 0, 0, 2).To4()
)

func TestNewPacketEthernetIPv4UDP(t *testing.T) {
	frame, err := BuildUDP(mac1, mac2, ip1, ip2, 1234, 5678, []byte("hello"))
	if err != nil {
		t.Fatalf("BuildUDP: %v", err)
	}
	p := NewPacket(frame, LayerTypeEthernet, Default)
	if p.ErrorLayer() != nil {
		t.Fatalf("decode error: %v", p.ErrorLayer().Err)
	}
	want := []LayerType{LayerTypeEthernet, LayerTypeIPv4, LayerTypeUDP, LayerTypePayload}
	got := p.Layers()
	if len(got) != len(want) {
		t.Fatalf("got %d layers (%v), want %d", len(got), p, len(want))
	}
	for i, l := range got {
		if l.LayerType() != want[i] {
			t.Errorf("layer %d = %v, want %v", i, l.LayerType(), want[i])
		}
	}
	eth := p.Layer(LayerTypeEthernet).(*Ethernet)
	if !bytes.Equal(eth.SrcMAC, mac1) || !bytes.Equal(eth.DstMAC, mac2) {
		t.Errorf("ethernet addresses wrong: %v", eth)
	}
	ip := p.NetworkLayer().(*IPv4)
	if !ip.SrcIP.Equal(ip1) || !ip.DstIP.Equal(ip2) {
		t.Errorf("ip addresses wrong: %v", ip)
	}
	if !ip.HeaderChecksumValid() {
		t.Error("IPv4 header checksum invalid after FixAll serialization")
	}
	udp := p.TransportLayer().(*UDP)
	if udp.SrcPort != 1234 || udp.DstPort != 5678 {
		t.Errorf("udp ports wrong: %v", udp)
	}
	if app := p.ApplicationLayer(); app == nil || string(app.Payload()) != "hello" {
		t.Errorf("application payload = %v, want hello", app)
	}
}

func TestNewPacketCopiesByDefault(t *testing.T) {
	frame, _ := BuildUDP(mac1, mac2, ip1, ip2, 1, 2, []byte("x"))
	p := NewPacket(frame, LayerTypeEthernet, Default)
	frame[0] = 0xde // mutate caller's slice
	if p.Data()[0] == 0xde {
		t.Error("Default decode did not copy input data")
	}
	p2 := NewPacket(frame, LayerTypeEthernet, NoCopy)
	frame[1] = 0xad
	if p2.Data()[1] != 0xad {
		t.Error("NoCopy decode copied input data")
	}
}

func TestDecodeTruncatedReportsErrorLayer(t *testing.T) {
	frame, _ := BuildUDP(mac1, mac2, ip1, ip2, 1, 2, []byte("payload"))
	// Cut inside the IPv4 header.
	p := NewPacket(frame[:20], LayerTypeEthernet, Default)
	if p.ErrorLayer() == nil {
		t.Fatal("want decode failure for truncated IPv4")
	}
	if p.Layer(LayerTypeEthernet) == nil {
		t.Error("ethernet layer should survive downstream decode failure")
	}
}

func TestDecodeARPRoundtrip(t *testing.T) {
	frame, err := BuildARPRequest(mac1, ip1, ip2)
	if err != nil {
		t.Fatalf("BuildARPRequest: %v", err)
	}
	p := NewPacket(frame, LayerTypeEthernet, Default)
	if p.ErrorLayer() != nil {
		t.Fatalf("decode error: %v", p.ErrorLayer().Err)
	}
	a, ok := p.Layer(LayerTypeARP).(*ARP)
	if !ok {
		t.Fatalf("no ARP layer in %v", p)
	}
	if a.Operation != ARPRequest {
		t.Errorf("operation = %d, want request", a.Operation)
	}
	if !a.SenderProtAddr.Equal(ip1) || !a.TargetProtAddr.Equal(ip2) {
		t.Errorf("addresses wrong: %v", a)
	}
	if p.NetworkLayer() == nil {
		t.Error("ARP should register as network layer")
	}
}

func TestDecodeBPDURoundtrip(t *testing.T) {
	in := &STP{
		BPDUType: BPDUTypeConfig,
		RootID:   BridgeID{Priority: 4096, MAC: mac1},
		RootCost: 19,
		BridgeID: BridgeID{Priority: 8192, MAC: mac2},
		PortID:   0x8001,
		MaxAge:   20 * 256, HelloTime: 2 * 256, ForwardDelay: 15 * 256,
	}
	frame, err := BuildBPDU(mac2, in)
	if err != nil {
		t.Fatalf("BuildBPDU: %v", err)
	}
	p := NewPacket(frame, LayerTypeEthernet, Default)
	if p.ErrorLayer() != nil {
		t.Fatalf("decode error: %v", p.ErrorLayer().Err)
	}
	eth := p.LinkLayer().(*Ethernet)
	if eth.EthernetType != EthernetTypeLLC {
		t.Errorf("BPDU should use 802.3 framing, got type %#04x", uint16(eth.EthernetType))
	}
	if !IsLinkLocalMulticast(eth.DstMAC) {
		t.Errorf("BPDU destination %s should be link-local multicast", eth.DstMAC)
	}
	s, ok := p.Layer(LayerTypeSTP).(*STP)
	if !ok {
		t.Fatalf("no STP layer in %v", p)
	}
	if !s.RootID.Equal(in.RootID) || s.RootCost != in.RootCost || s.PortID != in.PortID {
		t.Errorf("decoded %v != sent %v", s, in)
	}
}

func TestDecodeTCNBPDU(t *testing.T) {
	frame, err := BuildBPDU(mac1, &STP{BPDUType: BPDUTypeTCN})
	if err != nil {
		t.Fatalf("BuildBPDU: %v", err)
	}
	p := NewPacket(frame, LayerTypeEthernet, Default)
	s, ok := p.Layer(LayerTypeSTP).(*STP)
	if !ok {
		t.Fatalf("no STP layer in %v", p)
	}
	if s.BPDUType != BPDUTypeTCN {
		t.Errorf("BPDUType = %#02x, want TCN", s.BPDUType)
	}
}

func TestDecodeICMPEcho(t *testing.T) {
	frame, err := BuildICMPEcho(mac1, mac2, ip1, ip2, ICMPv4TypeEchoRequest, 7, 3, []byte("abcd"))
	if err != nil {
		t.Fatalf("BuildICMPEcho: %v", err)
	}
	p := NewPacket(frame, LayerTypeEthernet, Default)
	ic, ok := p.Layer(LayerTypeICMPv4).(*ICMPv4)
	if !ok {
		t.Fatalf("no ICMP layer in %v", p)
	}
	if ic.Type != ICMPv4TypeEchoRequest || ic.ID != 7 || ic.Seq != 3 {
		t.Errorf("icmp fields wrong: %v", ic)
	}
	if !ic.ChecksumValid() {
		t.Error("ICMP checksum invalid after FixAll serialization")
	}
}

func TestDecodeTCPFlags(t *testing.T) {
	frame, err := BuildTCP(mac1, mac2, ip1, ip2, 80, 12345, "SA", 100, 200, nil)
	if err != nil {
		t.Fatalf("BuildTCP: %v", err)
	}
	p := NewPacket(frame, LayerTypeEthernet, Default)
	tc, ok := p.TransportLayer().(*TCP)
	if !ok {
		t.Fatalf("no TCP layer in %v", p)
	}
	if !tc.SYN || !tc.ACK || tc.FIN || tc.RST {
		t.Errorf("flags wrong: %+v", tc)
	}
	if tc.Seq != 100 || tc.Ack != 200 {
		t.Errorf("seq/ack wrong: %v", tc)
	}
}

func TestBuildTCPRejectsUnknownFlag(t *testing.T) {
	if _, err := BuildTCP(mac1, mac2, ip1, ip2, 1, 2, "SX", 0, 0, nil); err == nil {
		t.Error("want error for unknown flag letter")
	}
}

func TestVLANTagInsertStrip(t *testing.T) {
	frame, _ := BuildUDP(mac1, mac2, ip1, ip2, 9, 10, []byte("v"))
	tagged, err := WithVLANTag(frame, 42, 5)
	if err != nil {
		t.Fatalf("WithVLANTag: %v", err)
	}
	if v, ok := VLANID(tagged); !ok || v != 42 {
		t.Fatalf("VLANID = %d,%v want 42,true", v, ok)
	}
	p := NewPacket(tagged, LayerTypeEthernet, Default)
	d, ok := p.Layer(LayerTypeDot1Q).(*Dot1Q)
	if !ok {
		t.Fatalf("no Dot1Q layer in %v", p)
	}
	if d.VLANID != 42 || d.Priority != 5 {
		t.Errorf("tag fields wrong: %v", d)
	}
	if p.Layer(LayerTypeUDP) == nil {
		t.Error("UDP should decode through the VLAN tag")
	}
	inner, vlan, err := StripVLANTag(tagged)
	if err != nil || vlan != 42 {
		t.Fatalf("StripVLANTag: %v vlan=%d", err, vlan)
	}
	if !bytes.Equal(inner, frame) {
		t.Error("strip(insert(frame)) != frame")
	}
	if _, _, err := StripVLANTag(frame); err == nil {
		t.Error("stripping untagged frame should fail")
	}
	if _, ok := VLANID(frame); ok {
		t.Error("untagged frame reported a VLAN ID")
	}
}

func TestDecodeFailoverHello(t *testing.T) {
	frame, err := BuildFailoverHello(mac1, mac2, &FailoverHello{UnitID: 9, State: FailoverStateActive, Priority: 100, Seq: 77})
	if err != nil {
		t.Fatalf("BuildFailoverHello: %v", err)
	}
	p := NewPacket(frame, LayerTypeEthernet, Default)
	h, ok := p.Layer(LayerTypeFailoverHello).(*FailoverHello)
	if !ok {
		t.Fatalf("no FailoverHello layer in %v", p)
	}
	if h.UnitID != 9 || h.State != FailoverStateActive || h.Seq != 77 {
		t.Errorf("hello fields wrong: %v", h)
	}
}

func TestDecodeRIPThroughUDP(t *testing.T) {
	rip := &RIP{Command: RIPResponse, Version: 2, Entries: []RIPEntry{
		{AddressFamily: 2, IP: net.IPv4(192, 168, 1, 0).To4(), Mask: net.CIDRMask(24, 32), Metric: 3},
		{AddressFamily: 2, IP: net.IPv4(10, 9, 0, 0).To4(), Mask: net.CIDRMask(16, 32), Metric: 1},
	}}
	buf := NewSerializeBuffer()
	if err := SerializeLayers(buf, FixAll, rip); err != nil {
		t.Fatalf("serialize RIP: %v", err)
	}
	frame, err := BuildUDP(mac1, mac2, ip1, ip2, UDPPortRIP, UDPPortRIP, buf.Bytes())
	if err != nil {
		t.Fatalf("BuildUDP: %v", err)
	}
	p := NewPacket(frame, LayerTypeEthernet, Default)
	r, ok := p.Layer(LayerTypeRIP).(*RIP)
	if !ok {
		t.Fatalf("no RIP layer in %v", p)
	}
	if len(r.Entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(r.Entries))
	}
	if !r.Entries[0].IP.Equal(net.IPv4(192, 168, 1, 0)) || r.Entries[0].Metric != 3 {
		t.Errorf("entry 0 wrong: %+v", r.Entries[0])
	}
}

func TestRIPRejectsTooManyEntries(t *testing.T) {
	r := &RIP{Command: RIPResponse, Version: 2}
	for i := 0; i < RIPMaxEntries+1; i++ {
		r.Entries = append(r.Entries, RIPEntry{AddressFamily: 2, IP: ip1, Mask: net.CIDRMask(24, 32), Metric: 1})
	}
	buf := NewSerializeBuffer()
	if err := SerializeLayers(buf, FixAll, r); err == nil {
		t.Error("want error for >25 RIP entries")
	}
}

func TestEthernet8023PaddingStripped(t *testing.T) {
	// An 802.3 frame whose length field is smaller than the data on the
	// wire (minimum frame padding) must have its payload trimmed.
	llc := []byte{LLCSAPSTP, LLCSAPSTP, 0x03}
	frame := make([]byte, 0, 64)
	frame = append(frame, mac2...)
	frame = append(frame, mac1...)
	frame = append(frame, 0x00, 0x03) // 802.3 length = 3
	frame = append(frame, llc...)
	frame = append(frame, make([]byte, 40)...) // padding
	p := NewPacket(frame, LayerTypeEthernet, Default)
	eth := p.LinkLayer().(*Ethernet)
	if len(eth.LayerPayload()) != 3 {
		t.Errorf("payload = %d bytes, want 3 (padding stripped)", len(eth.LayerPayload()))
	}
}

func TestIPv4FragmentStopsTransportDecode(t *testing.T) {
	ip := &IPv4{TTL: 64, Protocol: IPProtocolUDP, SrcIP: ip1, DstIP: ip2, FragOffset: 100}
	buf := NewSerializeBuffer()
	err := SerializeLayers(buf, FixAll,
		&Ethernet{SrcMAC: mac1, DstMAC: mac2, EthernetType: EthernetTypeIPv4},
		ip, Payload([]byte("frag data")))
	if err != nil {
		t.Fatalf("serialize: %v", err)
	}
	p := NewPacket(buf.Bytes(), LayerTypeEthernet, Default)
	if p.Layer(LayerTypeUDP) != nil {
		t.Error("non-first fragment must not decode a UDP header")
	}
	if p.ApplicationLayer() == nil {
		t.Error("fragment payload should be exposed")
	}
}

func TestPacketString(t *testing.T) {
	frame, _ := BuildUDP(mac1, mac2, ip1, ip2, 1, 2, []byte("s"))
	p := NewPacket(frame, LayerTypeEthernet, Default)
	s := p.String()
	for _, want := range []string{"Ethernet", "IPv4", "UDP"} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestRegisterLayerTypePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("registering a built-in layer type should panic")
		}
	}()
	RegisterLayerType(LayerTypeEthernet, "bad", nil)
}
