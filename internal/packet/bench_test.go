package packet

import (
	"testing"
)

// Decode-path benchmarks backing the DecodingLayerParser-style fast path:
// the preallocated Parser should beat NewPacket by a wide margin on known
// stacks (the gopacket design rationale).

func benchFrame(b *testing.B) []byte {
	b.Helper()
	frame, err := BuildUDP(mac1, mac2, ip1, ip2, 5353, 5353, make([]byte, 512))
	if err != nil {
		b.Fatal(err)
	}
	return frame
}

func BenchmarkDecodeNewPacket(b *testing.B) {
	frame := benchFrame(b)
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := NewPacket(frame, LayerTypeEthernet, NoCopy)
		if p.TransportLayer() == nil {
			b.Fatal("no transport layer")
		}
	}
}

func BenchmarkDecodeParser(b *testing.B) {
	frame := benchFrame(b)
	var (
		eth Ethernet
		ip  IPv4
		udp UDP
	)
	p := NewParser(LayerTypeEthernet, &eth, &ip, &udp)
	var decoded []LayerType
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.DecodeLayers(frame, &decoded)
		if udp.DstPort != 5353 {
			b.Fatal("bad decode")
		}
	}
}

func BenchmarkSerializeUDP(b *testing.B) {
	payload := make([]byte, 512)
	buf := NewSerializeBuffer()
	b.SetBytes(512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ip := &IPv4{TTL: 64, Protocol: IPProtocolUDP, SrcIP: ip1, DstIP: ip2}
		udp := &UDP{SrcPort: 1, DstPort: 2}
		udp.SetNetworkLayerForChecksum(ip)
		err := SerializeLayers(buf, FixAll,
			&Ethernet{SrcMAC: mac1, DstMAC: mac2, EthernetType: EthernetTypeIPv4},
			ip, udp, Payload(payload))
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChecksum1500(b *testing.B) {
	data := make([]byte, 1500)
	for i := range data {
		data[i] = byte(i)
	}
	b.SetBytes(1500)
	for i := 0; i < b.N; i++ {
		_ = ipChecksum(data)
	}
}
