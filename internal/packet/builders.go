package packet

import (
	"fmt"
	"net"
)

// This file provides frame construction helpers shared by the emulated
// devices, traffic generators and tests. All of them return a freshly
// allocated wire-format frame.

// BuildEthernet wraps payload in an Ethernet II frame.
func BuildEthernet(src, dst net.HardwareAddr, etype EthernetType, payload []byte) ([]byte, error) {
	buf := NewSerializeBuffer()
	err := SerializeLayers(buf, FixAll,
		&Ethernet{SrcMAC: src, DstMAC: dst, EthernetType: etype},
		Payload(payload))
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), buf.Bytes()...), nil
}

// BuildARPRequest builds a who-has broadcast.
func BuildARPRequest(srcMAC net.HardwareAddr, srcIP, targetIP net.IP) ([]byte, error) {
	buf := NewSerializeBuffer()
	err := SerializeLayers(buf, FixAll,
		&Ethernet{SrcMAC: srcMAC, DstMAC: Broadcast, EthernetType: EthernetTypeARP},
		&ARP{
			Operation:      ARPRequest,
			SenderHWAddr:   srcMAC,
			SenderProtAddr: srcIP,
			TargetHWAddr:   net.HardwareAddr{0, 0, 0, 0, 0, 0},
			TargetProtAddr: targetIP,
		})
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), buf.Bytes()...), nil
}

// BuildARPReply builds a unicast is-at reply.
func BuildARPReply(srcMAC net.HardwareAddr, srcIP net.IP, dstMAC net.HardwareAddr, dstIP net.IP) ([]byte, error) {
	buf := NewSerializeBuffer()
	err := SerializeLayers(buf, FixAll,
		&Ethernet{SrcMAC: srcMAC, DstMAC: dstMAC, EthernetType: EthernetTypeARP},
		&ARP{
			Operation:      ARPReply,
			SenderHWAddr:   srcMAC,
			SenderProtAddr: srcIP,
			TargetHWAddr:   dstMAC,
			TargetProtAddr: dstIP,
		})
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), buf.Bytes()...), nil
}

// BuildICMPEcho builds an ICMP echo request or reply inside Ethernet/IPv4.
func BuildICMPEcho(srcMAC, dstMAC net.HardwareAddr, srcIP, dstIP net.IP, icmpType uint8, id, seq uint16, data []byte) ([]byte, error) {
	ip := &IPv4{TTL: 64, Protocol: IPProtocolICMPv4, SrcIP: srcIP, DstIP: dstIP}
	buf := NewSerializeBuffer()
	err := SerializeLayers(buf, FixAll,
		&Ethernet{SrcMAC: srcMAC, DstMAC: dstMAC, EthernetType: EthernetTypeIPv4},
		ip,
		&ICMPv4{Type: icmpType, ID: id, Seq: seq},
		Payload(data))
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), buf.Bytes()...), nil
}

// BuildUDP builds a UDP datagram inside Ethernet/IPv4.
func BuildUDP(srcMAC, dstMAC net.HardwareAddr, srcIP, dstIP net.IP, srcPort, dstPort uint16, data []byte) ([]byte, error) {
	ip := &IPv4{TTL: 64, Protocol: IPProtocolUDP, SrcIP: srcIP, DstIP: dstIP}
	udp := &UDP{SrcPort: srcPort, DstPort: dstPort}
	udp.SetNetworkLayerForChecksum(ip)
	buf := NewSerializeBuffer()
	err := SerializeLayers(buf, FixAll,
		&Ethernet{SrcMAC: srcMAC, DstMAC: dstMAC, EthernetType: EthernetTypeIPv4},
		ip,
		udp,
		Payload(data))
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), buf.Bytes()...), nil
}

// BuildTCP builds a TCP segment inside Ethernet/IPv4. The flags string uses
// one letter per flag, e.g. "S", "SA", "F", "R", "PA".
func BuildTCP(srcMAC, dstMAC net.HardwareAddr, srcIP, dstIP net.IP, srcPort, dstPort uint16, flags string, seq, ack uint32, data []byte) ([]byte, error) {
	ip := &IPv4{TTL: 64, Protocol: IPProtocolTCP, SrcIP: srcIP, DstIP: dstIP}
	tcp := &TCP{SrcPort: srcPort, DstPort: dstPort, Seq: seq, Ack: ack, Window: 65535}
	for _, f := range flags {
		switch f {
		case 'F':
			tcp.FIN = true
		case 'S':
			tcp.SYN = true
		case 'R':
			tcp.RST = true
		case 'P':
			tcp.PSH = true
		case 'A':
			tcp.ACK = true
		case 'U':
			tcp.URG = true
		default:
			return nil, fmt.Errorf("packet: unknown TCP flag %q", string(f))
		}
	}
	tcp.SetNetworkLayerForChecksum(ip)
	buf := NewSerializeBuffer()
	err := SerializeLayers(buf, FixAll,
		&Ethernet{SrcMAC: srcMAC, DstMAC: dstMAC, EthernetType: EthernetTypeIPv4},
		ip,
		tcp,
		Payload(data))
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), buf.Bytes()...), nil
}

// BuildBPDU builds an 802.3/LLC spanning-tree configuration BPDU.
func BuildBPDU(srcMAC net.HardwareAddr, s *STP) ([]byte, error) {
	buf := NewSerializeBuffer()
	err := SerializeLayers(buf, FixAll,
		&Ethernet{SrcMAC: srcMAC, DstMAC: STPMulticast, EthernetType: EthernetTypeLLC},
		&LLC{DSAP: LLCSAPSTP, SSAP: LLCSAPSTP, Control: 0x03},
		s)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), buf.Bytes()...), nil
}

// BuildFailoverHello builds a failover health-check frame.
func BuildFailoverHello(srcMAC, dstMAC net.HardwareAddr, h *FailoverHello) ([]byte, error) {
	buf := NewSerializeBuffer()
	err := SerializeLayers(buf, FixAll,
		&Ethernet{SrcMAC: srcMAC, DstMAC: dstMAC, EthernetType: EthernetTypeFailoverHello},
		h)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), buf.Bytes()...), nil
}

// WithVLANTag inserts an 802.1Q tag into an existing Ethernet frame,
// returning a new frame. It fails on 802.3 frames (tagging those is not
// needed in RNL and real switches tag EtherType frames the same way).
func WithVLANTag(frame []byte, vlan uint16, prio uint8) ([]byte, error) {
	if len(frame) < ethernetHeaderLen {
		return nil, errTruncated(LayerTypeEthernet, ethernetHeaderLen, len(frame))
	}
	out := make([]byte, 0, len(frame)+dot1qHeaderLen)
	out = append(out, frame[:12]...)
	tci := uint16(prio)<<13 | vlan&0x0fff
	out = append(out, 0x81, 0x00, byte(tci>>8), byte(tci))
	out = append(out, frame[12:]...)
	return out, nil
}

// StripVLANTag removes the outermost 802.1Q tag, returning the inner frame
// and the VLAN ID. It fails if the frame is untagged.
func StripVLANTag(frame []byte) ([]byte, uint16, error) {
	if len(frame) < ethernetHeaderLen+dot1qHeaderLen {
		return nil, 0, errTruncated(LayerTypeDot1Q, ethernetHeaderLen+dot1qHeaderLen, len(frame))
	}
	if EthernetType(uint16(frame[12])<<8|uint16(frame[13])) != EthernetTypeDot1Q {
		return nil, 0, fmt.Errorf("packet: frame is not 802.1Q tagged")
	}
	vlan := (uint16(frame[14])<<8 | uint16(frame[15])) & 0x0fff
	out := make([]byte, 0, len(frame)-dot1qHeaderLen)
	out = append(out, frame[:12]...)
	out = append(out, frame[16:]...)
	return out, vlan, nil
}

// VLANID returns the VLAN ID of a tagged frame, or ok=false if untagged.
func VLANID(frame []byte) (vlan uint16, ok bool) {
	if len(frame) < ethernetHeaderLen+dot1qHeaderLen {
		return 0, false
	}
	if EthernetType(uint16(frame[12])<<8|uint16(frame[13])) != EthernetTypeDot1Q {
		return 0, false
	}
	return (uint16(frame[14])<<8 | uint16(frame[15])) & 0x0fff, true
}
