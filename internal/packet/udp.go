package packet

import (
	"encoding/binary"
	"fmt"
)

// Well-known UDP ports RNL's device protocols use.
const (
	UDPPortRIP uint16 = 520
)

// UDP is a UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16

	// ip is the enclosing IPv4 layer, captured during decode or set via
	// SetNetworkLayerForChecksum during serialization.
	ip *IPv4

	contents, payload []byte
}

const udpHeaderLen = 8

func (u *UDP) LayerType() LayerType  { return LayerTypeUDP }
func (u *UDP) LayerContents() []byte { return u.contents }
func (u *UDP) LayerPayload() []byte  { return u.payload }

// TransportFlow returns the src→dst port flow.
func (u *UDP) TransportFlow() Flow {
	return NewFlow(UDPPortEndpoint(u.SrcPort), UDPPortEndpoint(u.DstPort))
}

func (u *UDP) String() string {
	return fmt.Sprintf("UDP %d > %d len %d", u.SrcPort, u.DstPort, u.Length)
}

// SetNetworkLayerForChecksum provides the IPv4 header whose addresses feed
// the pseudo-header checksum during serialization.
func (u *UDP) SetNetworkLayerForChecksum(ip *IPv4) { u.ip = ip }

func decodeUDP(data []byte, b Builder) error {
	if len(data) < udpHeaderLen {
		return errTruncated(LayerTypeUDP, udpHeaderLen, len(data))
	}
	u := &UDP{
		SrcPort:  binary.BigEndian.Uint16(data[0:2]),
		DstPort:  binary.BigEndian.Uint16(data[2:4]),
		Length:   binary.BigEndian.Uint16(data[4:6]),
		Checksum: binary.BigEndian.Uint16(data[6:8]),
		contents: data[:udpHeaderLen],
		payload:  data[udpHeaderLen:],
	}
	if int(u.Length) >= udpHeaderLen && int(u.Length) <= len(data) {
		u.payload = data[udpHeaderLen:u.Length]
	}
	b.AddLayer(u)
	b.SetTransportLayer(u)
	if u.SrcPort == UDPPortRIP || u.DstPort == UDPPortRIP {
		return b.NextDecoder(LayerTypeRIP, u.payload)
	}
	return b.NextDecoder(LayerTypePayload, u.payload)
}

// SerializeTo implements SerializableLayer.
func (u *UDP) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	payloadLen := len(b.Bytes())
	buf := b.PrependBytes(udpHeaderLen)
	binary.BigEndian.PutUint16(buf[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(buf[2:4], u.DstPort)
	length := u.Length
	if opts.FixLengths {
		length = uint16(udpHeaderLen + payloadLen)
		u.Length = length
	}
	binary.BigEndian.PutUint16(buf[4:6], length)
	buf[6], buf[7] = 0, 0
	if opts.ComputeChecksums {
		if u.ip == nil {
			return fmt.Errorf("packet: UDP checksum requested without network layer; call SetNetworkLayerForChecksum")
		}
		src, dst, err := u.ip.addrs4()
		if err != nil {
			return err
		}
		u.Checksum = pseudoHeaderChecksum(src, dst, uint8(IPProtocolUDP), b.Bytes())
		if u.Checksum == 0 {
			u.Checksum = 0xffff // 0 means "no checksum" in UDP
		}
	}
	binary.BigEndian.PutUint16(buf[6:8], u.Checksum)
	return nil
}
