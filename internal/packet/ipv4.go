package packet

import (
	"encoding/binary"
	"fmt"
	"net"
)

// IPProtocol identifies the transport protocol inside IPv4.
type IPProtocol uint8

// IP protocol numbers RNL decodes.
const (
	IPProtocolICMPv4 IPProtocol = 1
	IPProtocolTCP    IPProtocol = 6
	IPProtocolUDP    IPProtocol = 17
)

// IPv4 is an IPv4 header. Options are carried opaquely.
type IPv4 struct {
	Version    uint8 // always 4
	IHL        uint8 // header length in 32-bit words
	TOS        uint8
	Length     uint16 // total length
	ID         uint16
	Flags      uint8 // 3 bits: reserved, DF, MF
	FragOffset uint16
	TTL        uint8
	Protocol   IPProtocol
	Checksum   uint16
	SrcIP      net.IP
	DstIP      net.IP
	Options    []byte

	contents, payload []byte
}

// IPv4 flag bits.
const (
	IPv4DontFragment  = 0x2
	IPv4MoreFragments = 0x1
)

const ipv4MinLen = 20

func (ip *IPv4) LayerType() LayerType  { return LayerTypeIPv4 }
func (ip *IPv4) LayerContents() []byte { return ip.contents }
func (ip *IPv4) LayerPayload() []byte  { return ip.payload }

// NetworkFlow returns the src→dst IP flow.
func (ip *IPv4) NetworkFlow() Flow {
	return NewFlow(IPv4Endpoint(ip.SrcIP), IPv4Endpoint(ip.DstIP))
}

func (ip *IPv4) String() string {
	return fmt.Sprintf("IPv4 %s > %s proto %d ttl %d", ip.SrcIP, ip.DstIP, ip.Protocol, ip.TTL)
}

func decodeIPv4(data []byte, b Builder) error {
	if len(data) < ipv4MinLen {
		return errTruncated(LayerTypeIPv4, ipv4MinLen, len(data))
	}
	version := data[0] >> 4
	if version != 4 {
		return fmt.Errorf("packet: IPv4 version field is %d", version)
	}
	ihl := data[0] & 0x0f
	hlen := int(ihl) * 4
	if hlen < ipv4MinLen || hlen > len(data) {
		return fmt.Errorf("packet: IPv4 header length %d invalid for %d bytes", hlen, len(data))
	}
	total := int(binary.BigEndian.Uint16(data[2:4]))
	if total < hlen {
		return fmt.Errorf("packet: IPv4 total length %d shorter than header %d", total, hlen)
	}
	if total > len(data) {
		total = len(data) // tolerate capture truncation
	}
	ip := &IPv4{
		Version:    version,
		IHL:        ihl,
		TOS:        data[1],
		Length:     binary.BigEndian.Uint16(data[2:4]),
		ID:         binary.BigEndian.Uint16(data[4:6]),
		Flags:      data[6] >> 5,
		FragOffset: binary.BigEndian.Uint16(data[6:8]) & 0x1fff,
		TTL:        data[8],
		Protocol:   IPProtocol(data[9]),
		Checksum:   binary.BigEndian.Uint16(data[10:12]),
		SrcIP:      net.IP(data[12:16]),
		DstIP:      net.IP(data[16:20]),
		contents:   data[:hlen],
		payload:    data[hlen:total],
	}
	if hlen > ipv4MinLen {
		ip.Options = data[ipv4MinLen:hlen]
	}
	b.AddLayer(ip)
	b.SetNetworkLayer(ip)
	if ip.FragOffset != 0 || ip.Flags&IPv4MoreFragments != 0 {
		// Non-first fragments have no transport header to decode.
		return b.NextDecoder(LayerTypePayload, ip.payload)
	}
	switch ip.Protocol {
	case IPProtocolICMPv4:
		return b.NextDecoder(LayerTypeICMPv4, ip.payload)
	case IPProtocolUDP:
		return b.NextDecoder(LayerTypeUDP, ip.payload)
	case IPProtocolTCP:
		return b.NextDecoder(LayerTypeTCP, ip.payload)
	default:
		return b.NextDecoder(LayerTypePayload, ip.payload)
	}
}

// HeaderChecksumValid recomputes and verifies the header checksum.
func (ip *IPv4) HeaderChecksumValid() bool {
	return ipChecksum(ip.contents) == 0
}

// addrs4 extracts 4-byte src/dst arrays for pseudo-header checksums.
func (ip *IPv4) addrs4() (src, dst [4]byte, err error) {
	s, d := ip.SrcIP.To4(), ip.DstIP.To4()
	if s == nil || d == nil {
		return src, dst, fmt.Errorf("packet: IPv4 layer with non-IPv4 addresses %v/%v", ip.SrcIP, ip.DstIP)
	}
	copy(src[:], s)
	copy(dst[:], d)
	return src, dst, nil
}

// SerializeTo implements SerializableLayer.
func (ip *IPv4) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	src, dst, err := ip.addrs4()
	if err != nil {
		return err
	}
	if len(ip.Options)%4 != 0 {
		return fmt.Errorf("packet: IPv4 options length %d not a multiple of 4", len(ip.Options))
	}
	hlen := ipv4MinLen + len(ip.Options)
	payloadLen := len(b.Bytes())
	buf := b.PrependBytes(hlen)
	ihl := ip.IHL
	if opts.FixLengths || ihl == 0 {
		ihl = uint8(hlen / 4)
		ip.IHL = ihl
	}
	buf[0] = 4<<4 | ihl
	buf[1] = ip.TOS
	length := ip.Length
	if opts.FixLengths {
		length = uint16(hlen + payloadLen)
		ip.Length = length
	}
	binary.BigEndian.PutUint16(buf[2:4], length)
	binary.BigEndian.PutUint16(buf[4:6], ip.ID)
	binary.BigEndian.PutUint16(buf[6:8], uint16(ip.Flags)<<13|ip.FragOffset&0x1fff)
	buf[8] = ip.TTL
	buf[9] = uint8(ip.Protocol)
	buf[10], buf[11] = 0, 0
	copy(buf[12:16], src[:])
	copy(buf[16:20], dst[:])
	copy(buf[ipv4MinLen:], ip.Options)
	if opts.ComputeChecksums {
		ip.Checksum = ipChecksum(buf[:hlen])
	}
	binary.BigEndian.PutUint16(buf[10:12], ip.Checksum)
	return nil
}
