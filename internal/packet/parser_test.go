package packet

import (
	"errors"
	"testing"
)

func TestParserDecodesKnownStack(t *testing.T) {
	frame, _ := BuildUDP(mac1, mac2, ip1, ip2, 999, 1000, []byte("fast"))
	var (
		eth Ethernet
		ip  IPv4
		udp UDP
	)
	p := NewParser(LayerTypeEthernet, &eth, &ip, &udp)
	var decoded []LayerType
	if err := p.DecodeLayers(frame, &decoded); err != nil {
		// Payload layer is unregistered; parser stops there with
		// ErrUnsupportedLayer, which is expected and non-fatal.
		var unsup ErrUnsupportedLayer
		if !errors.As(err, &unsup) || unsup.Type != LayerTypePayload {
			t.Fatalf("DecodeLayers: %v", err)
		}
	}
	want := []LayerType{LayerTypeEthernet, LayerTypeIPv4, LayerTypeUDP}
	if len(decoded) != len(want) {
		t.Fatalf("decoded %v, want %v", decoded, want)
	}
	for i := range want {
		if decoded[i] != want[i] {
			t.Errorf("decoded[%d] = %v, want %v", i, decoded[i], want[i])
		}
	}
	if udp.SrcPort != 999 || udp.DstPort != 1000 {
		t.Errorf("udp = %v", &udp)
	}
	if !ip.SrcIP.Equal(ip1) {
		t.Errorf("ip = %v", &ip)
	}
}

func TestParserReusesLayers(t *testing.T) {
	var (
		eth Ethernet
		ip  IPv4
		udp UDP
	)
	p := NewParser(LayerTypeEthernet, &eth, &ip, &udp)
	var decoded []LayerType
	for i := uint16(1); i <= 100; i++ {
		frame, _ := BuildUDP(mac1, mac2, ip1, ip2, i, i+1, nil)
		_ = p.DecodeLayers(frame, &decoded)
		if udp.SrcPort != i || udp.DstPort != i+1 {
			t.Fatalf("iteration %d: udp = %v", i, &udp)
		}
	}
}

func TestParserVLANBranch(t *testing.T) {
	frame, _ := BuildUDP(mac1, mac2, ip1, ip2, 10, 20, nil)
	tagged, _ := WithVLANTag(frame, 7, 0)
	var (
		eth Ethernet
		dq  Dot1Q
		ip  IPv4
		udp UDP
	)
	p := NewParser(LayerTypeEthernet, &eth, &dq, &ip, &udp)
	var decoded []LayerType
	_ = p.DecodeLayers(tagged, &decoded)
	if len(decoded) != 4 {
		t.Fatalf("decoded %v, want 4 layers", decoded)
	}
	if dq.VLANID != 7 {
		t.Errorf("vlan = %d, want 7", dq.VLANID)
	}
	// The same parser must also handle the untagged variant.
	_ = p.DecodeLayers(frame, &decoded)
	if len(decoded) != 3 {
		t.Fatalf("untagged decoded %v, want 3 layers", decoded)
	}
}

func TestParserTruncatedReturnsError(t *testing.T) {
	frame, _ := BuildUDP(mac1, mac2, ip1, ip2, 10, 20, nil)
	var (
		eth Ethernet
		ip  IPv4
		udp UDP
	)
	p := NewParser(LayerTypeEthernet, &eth, &ip, &udp)
	var decoded []LayerType
	err := p.DecodeLayers(frame[:16], &decoded)
	if err == nil {
		t.Fatal("want error for truncated frame")
	}
	var unsup ErrUnsupportedLayer
	if errors.As(err, &unsup) {
		t.Fatalf("want truncation error, got %v", err)
	}
	if len(decoded) != 1 || decoded[0] != LayerTypeEthernet {
		t.Errorf("decoded = %v, want [Ethernet]", decoded)
	}
}
