package packet

import (
	"bytes"
	"math/rand"
	"net"
	"testing"
	"testing/quick"
)

// Property-based roundtrip tests: serialize(decode(x)) and decode(serialize(x))
// must preserve every field for each layer type.

func randMAC(r *rand.Rand) net.HardwareAddr {
	m := make(net.HardwareAddr, 6)
	r.Read(m)
	m[0] &^= 0x01 // unicast
	return m
}

func randIP(r *rand.Rand) net.IP {
	ip := make(net.IP, 4)
	r.Read(ip)
	return ip
}

func TestQuickUDPRoundtrip(t *testing.T) {
	f := func(sp, dp uint16, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		frame, err := BuildUDP(mac1, mac2, ip1, ip2, sp, dp, payload)
		if err != nil {
			return false
		}
		p := NewPacket(frame, LayerTypeEthernet, Default)
		if p.ErrorLayer() != nil {
			return false
		}
		u, ok := p.TransportLayer().(*UDP)
		if !ok || u.SrcPort != sp || u.DstPort != dp {
			return false
		}
		return bytes.Equal(u.LayerPayload(), payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickIPv4HeaderRoundtrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(tos, ttl uint8, id uint16, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src, dst := randIP(r), randIP(r)
		in := &IPv4{TOS: tos, ID: id, TTL: ttl, Protocol: IPProtocol(200), SrcIP: src, DstIP: dst}
		buf := NewSerializeBuffer()
		if err := SerializeLayers(buf, FixAll, in, Payload([]byte("xyz"))); err != nil {
			return false
		}
		p := NewPacket(buf.Bytes(), LayerTypeIPv4, Default)
		out, ok := p.Layer(LayerTypeIPv4).(*IPv4)
		if !ok {
			return false
		}
		return out.TOS == tos && out.TTL == ttl && out.ID == id &&
			out.SrcIP.Equal(src) && out.DstIP.Equal(dst) &&
			out.HeaderChecksumValid()
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickTCPRoundtrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(sp, dp uint16, seq, ack uint32, win uint16, fin, syn, rst, psh, ackf bool) bool {
		ipl := &IPv4{TTL: 64, Protocol: IPProtocolTCP, SrcIP: ip1, DstIP: ip2}
		in := &TCP{SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack, Window: win,
			FIN: fin, SYN: syn, RST: rst, PSH: psh, ACK: ackf}
		in.SetNetworkLayerForChecksum(ipl)
		buf := NewSerializeBuffer()
		if err := SerializeLayers(buf, FixAll, ipl, in, Payload([]byte("q"))); err != nil {
			return false
		}
		p := NewPacket(buf.Bytes(), LayerTypeIPv4, Default)
		out, ok := p.TransportLayer().(*TCP)
		if !ok {
			return false
		}
		return out.SrcPort == sp && out.DstPort == dp && out.Seq == seq &&
			out.Ack == ack && out.Window == win && out.FIN == fin &&
			out.SYN == syn && out.RST == rst && out.PSH == psh && out.ACK == ackf
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickSTPRoundtrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(rp, bp uint16, cost uint32, port, age, maxAge, hello, fwd uint16, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := &STP{
			BPDUType: BPDUTypeConfig,
			RootID:   BridgeID{Priority: rp, MAC: randMAC(r)},
			RootCost: cost,
			BridgeID: BridgeID{Priority: bp, MAC: randMAC(r)},
			PortID:   port, MessageAge: age, MaxAge: maxAge, HelloTime: hello, ForwardDelay: fwd,
		}
		frame, err := BuildBPDU(in.BridgeID.MAC, in)
		if err != nil {
			return false
		}
		p := NewPacket(frame, LayerTypeEthernet, Default)
		out, ok := p.Layer(LayerTypeSTP).(*STP)
		if !ok {
			return false
		}
		return out.RootID.Equal(in.RootID) && out.BridgeID.Equal(in.BridgeID) &&
			out.RootCost == cost && out.PortID == port && out.MessageAge == age &&
			out.MaxAge == maxAge && out.HelloTime == hello && out.ForwardDelay == fwd
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickVLANRoundtrip(t *testing.T) {
	f := func(vlanRaw uint16, prioRaw uint8, payload []byte) bool {
		vlan := vlanRaw % 4095
		prio := prioRaw % 8
		if len(payload) > 1000 {
			payload = payload[:1000]
		}
		frame, err := BuildEthernet(mac1, mac2, EthernetType(0x0999), payload)
		if err != nil {
			return false
		}
		tagged, err := WithVLANTag(frame, vlan, prio)
		if err != nil {
			return false
		}
		inner, gotVLAN, err := StripVLANTag(tagged)
		return err == nil && gotVLAN == vlan && bytes.Equal(inner, frame)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickChecksumVerifies(t *testing.T) {
	// Any UDP packet built with FixAll must pass pseudo-header verification.
	f := func(payload []byte) bool {
		if len(payload) > 512 {
			payload = payload[:512]
		}
		frame, err := BuildUDP(mac1, mac2, ip1, ip2, 5, 6, payload)
		if err != nil {
			return false
		}
		p := NewPacket(frame, LayerTypeEthernet, Default)
		ipL, ok1 := p.NetworkLayer().(*IPv4)
		u, ok2 := p.TransportLayer().(*UDP)
		if !ok1 || !ok2 {
			return false
		}
		var src, dst [4]byte
		copy(src[:], ipL.SrcIP.To4())
		copy(dst[:], ipL.DstIP.To4())
		// Recomputing over the received bytes must give 0 (valid).
		seg := append(append([]byte(nil), u.LayerContents()...), u.LayerPayload()...)
		return pseudoHeaderChecksum(src, dst, uint8(IPProtocolUDP), seg) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDecodeNeverPanics(t *testing.T) {
	// Fuzz-ish property: arbitrary bytes never panic the decoder; they
	// either decode or produce an ErrorLayer.
	f := func(data []byte) bool {
		p := NewPacket(data, LayerTypeEthernet, Default)
		_ = p.Layers()
		_ = p.String()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
