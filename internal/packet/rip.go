package packet

import (
	"encoding/binary"
	"fmt"
	"net"
)

// RIP commands.
const (
	RIPRequest  uint8 = 1
	RIPResponse uint8 = 2
)

// RIPInfinity is the metric meaning "unreachable".
const RIPInfinity = 16

// RIPEntry is one route in a RIP message.
type RIPEntry struct {
	AddressFamily uint16
	RouteTag      uint16
	IP            net.IP
	Mask          net.IPMask
	NextHop       net.IP
	Metric        uint32
}

// RIP is a RIPv2 message (RFC 2453).
type RIP struct {
	Command uint8
	Version uint8
	Entries []RIPEntry

	contents, payload []byte
}

const (
	ripHeaderLen = 4
	ripEntryLen  = 20
	// RIPMaxEntries is the per-message entry limit from RFC 2453.
	RIPMaxEntries = 25
)

func (r *RIP) LayerType() LayerType  { return LayerTypeRIP }
func (r *RIP) LayerContents() []byte { return r.contents }
func (r *RIP) LayerPayload() []byte  { return r.payload }

func (r *RIP) String() string {
	return fmt.Sprintf("RIP cmd %d v%d entries %d", r.Command, r.Version, len(r.Entries))
}

func decodeRIP(data []byte, b Builder) error {
	if len(data) < ripHeaderLen {
		return errTruncated(LayerTypeRIP, ripHeaderLen, len(data))
	}
	r := &RIP{
		Command:  data[0],
		Version:  data[1],
		contents: data,
	}
	rest := data[ripHeaderLen:]
	for len(rest) >= ripEntryLen {
		e := RIPEntry{
			AddressFamily: binary.BigEndian.Uint16(rest[0:2]),
			RouteTag:      binary.BigEndian.Uint16(rest[2:4]),
			IP:            net.IP(append([]byte(nil), rest[4:8]...)),
			Mask:          net.IPMask(append([]byte(nil), rest[8:12]...)),
			NextHop:       net.IP(append([]byte(nil), rest[12:16]...)),
			Metric:        binary.BigEndian.Uint32(rest[16:20]),
		}
		r.Entries = append(r.Entries, e)
		rest = rest[ripEntryLen:]
	}
	r.payload = rest
	b.AddLayer(r)
	return nil
}

// SerializeTo implements SerializableLayer.
func (r *RIP) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	if len(r.Entries) > RIPMaxEntries {
		return fmt.Errorf("packet: RIP message with %d entries exceeds limit %d", len(r.Entries), RIPMaxEntries)
	}
	buf := b.PrependBytes(ripHeaderLen + ripEntryLen*len(r.Entries))
	buf[0] = r.Command
	buf[1] = r.Version
	buf[2], buf[3] = 0, 0
	off := ripHeaderLen
	for _, e := range r.Entries {
		ip, nh := e.IP.To4(), e.NextHop.To4()
		if ip == nil {
			return fmt.Errorf("packet: RIP entry with non-IPv4 address %v", e.IP)
		}
		if nh == nil {
			nh = net.IPv4zero.To4()
		}
		mask := e.Mask
		if len(mask) != 4 {
			mask = net.IPMask(net.IPv4zero.To4())
		}
		binary.BigEndian.PutUint16(buf[off:off+2], e.AddressFamily)
		binary.BigEndian.PutUint16(buf[off+2:off+4], e.RouteTag)
		copy(buf[off+4:off+8], ip)
		copy(buf[off+8:off+12], mask)
		copy(buf[off+12:off+16], nh)
		binary.BigEndian.PutUint32(buf[off+16:off+20], e.Metric)
		off += ripEntryLen
	}
	return nil
}
