package packet

import (
	"encoding/binary"
	"fmt"
	"net"
)

// EthernetType identifies the protocol carried in an Ethernet II frame.
type EthernetType uint16

// EtherTypes RNL decodes. Values below 0x0600 are 802.3 lengths, not
// EtherTypes; those frames carry LLC.
const (
	EthernetTypeLLC           EthernetType = 0 // synthetic: 802.3 framing
	EthernetTypeIPv4          EthernetType = 0x0800
	EthernetTypeARP           EthernetType = 0x0806
	EthernetTypeDot1Q         EthernetType = 0x8100
	EthernetTypeFailoverHello EthernetType = 0x88b0 // RNL-local: FWSM failover hellos
)

// Broadcast is the Ethernet broadcast address.
var Broadcast = net.HardwareAddr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// STPMulticast is the 802.1D bridge group address BPDUs are sent to.
var STPMulticast = net.HardwareAddr{0x01, 0x80, 0xc2, 0x00, 0x00, 0x00}

// IsLinkLocalMulticast reports whether a destination MAC is in the
// 01:80:c2:00:00:0X range that 802.1D-conformant bridges must not forward —
// the traffic class ordinary VLAN-based virtual links eat, and which RNL's
// full-frame tunnel is designed to preserve.
func IsLinkLocalMulticast(a net.HardwareAddr) bool {
	return len(a) == 6 && a[0] == 0x01 && a[1] == 0x80 && a[2] == 0xc2 &&
		a[3] == 0x00 && a[4] == 0x00 && a[5]&0xf0 == 0x00
}

// Ethernet is an Ethernet frame header. Frames with a type/length field
// below 0x0600 are treated as 802.3 and decode into LLC.
type Ethernet struct {
	SrcMAC, DstMAC net.HardwareAddr
	EthernetType   EthernetType
	// Length is the 802.3 length field when EthernetType is
	// EthernetTypeLLC; unused otherwise.
	Length uint16

	contents, payload []byte
}

const ethernetHeaderLen = 14

func (e *Ethernet) LayerType() LayerType  { return LayerTypeEthernet }
func (e *Ethernet) LayerContents() []byte { return e.contents }
func (e *Ethernet) LayerPayload() []byte  { return e.payload }

// LinkFlow returns the src→dst MAC flow.
func (e *Ethernet) LinkFlow() Flow {
	return NewFlow(MACEndpoint(e.SrcMAC), MACEndpoint(e.DstMAC))
}

func (e *Ethernet) String() string {
	return fmt.Sprintf("Ethernet %s > %s type %#04x", e.SrcMAC, e.DstMAC, uint16(e.EthernetType))
}

func decodeEthernet(data []byte, b Builder) error {
	if len(data) < ethernetHeaderLen {
		return errTruncated(LayerTypeEthernet, ethernetHeaderLen, len(data))
	}
	eth := &Ethernet{
		DstMAC:   net.HardwareAddr(data[0:6]),
		SrcMAC:   net.HardwareAddr(data[6:12]),
		contents: data[:ethernetHeaderLen],
		payload:  data[ethernetHeaderLen:],
	}
	tl := binary.BigEndian.Uint16(data[12:14])
	b.AddLayer(eth)
	b.SetLinkLayer(eth)
	if tl < 0x0600 {
		eth.EthernetType = EthernetTypeLLC
		eth.Length = tl
		if int(tl) < len(eth.payload) {
			eth.payload = eth.payload[:tl] // strip 802.3 padding
		}
		return b.NextDecoder(LayerTypeLLC, eth.payload)
	}
	eth.EthernetType = EthernetType(tl)
	return b.NextDecoder(eth.EthernetType.layerType(), eth.payload)
}

// layerType maps an EtherType to the layer that decodes its payload.
func (t EthernetType) layerType() LayerType {
	switch t {
	case EthernetTypeIPv4:
		return LayerTypeIPv4
	case EthernetTypeARP:
		return LayerTypeARP
	case EthernetTypeDot1Q:
		return LayerTypeDot1Q
	case EthernetTypeFailoverHello:
		return LayerTypeFailoverHello
	default:
		return LayerTypePayload
	}
}

// SerializeTo implements SerializableLayer. With FixLengths, 802.3 frames
// get their length field computed from the payload.
func (e *Ethernet) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	if len(e.DstMAC) != 6 || len(e.SrcMAC) != 6 {
		return fmt.Errorf("packet: Ethernet needs 6-byte MACs, got dst=%d src=%d", len(e.DstMAC), len(e.SrcMAC))
	}
	payloadLen := len(b.Bytes())
	buf := b.PrependBytes(ethernetHeaderLen)
	copy(buf[0:6], e.DstMAC)
	copy(buf[6:12], e.SrcMAC)
	if e.EthernetType == EthernetTypeLLC {
		l := e.Length
		if opts.FixLengths {
			l = uint16(payloadLen)
		}
		binary.BigEndian.PutUint16(buf[12:14], l)
	} else {
		binary.BigEndian.PutUint16(buf[12:14], uint16(e.EthernetType))
	}
	return nil
}
