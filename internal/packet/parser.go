package packet

import "fmt"

// DecodingLayer is a layer that can decode in place, for the allocation-free
// fast path used on the RNL forwarding plane.
type DecodingLayer interface {
	Layer
	// DecodeFromBytes overwrites the receiver with the layer parsed from
	// data.
	DecodeFromBytes(data []byte) error
	// NextLayerType reports which layer follows, based on the decoded
	// fields. LayerTypeZero means "nothing follows".
	NextLayerType() LayerType
}

// Parser decodes a known protocol stack into caller-owned, preallocated
// layer values, avoiding per-packet allocation — the DecodingLayerParser
// idiom. Only the layer types registered with AddLayer are decoded; an
// unregistered next layer stops the parse with ErrUnsupportedLayer
// recording the type.
type Parser struct {
	first  LayerType
	layers map[LayerType]DecodingLayer
}

// ErrUnsupportedLayer reports a parse that stopped at a layer the Parser has
// no registered DecodingLayer for. The layers decoded before it are valid.
type ErrUnsupportedLayer struct{ Type LayerType }

func (e ErrUnsupportedLayer) Error() string {
	return fmt.Sprintf("packet: no decoding layer registered for %v", e.Type)
}

// NewParser builds a parser starting at first with the given layers.
func NewParser(first LayerType, layers ...DecodingLayer) *Parser {
	p := &Parser{first: first, layers: make(map[LayerType]DecodingLayer, len(layers))}
	for _, l := range layers {
		p.layers[l.LayerType()] = l
	}
	return p
}

// DecodeLayers parses data, appending each decoded layer's type to decoded
// (which is reset first). The registered layer values are overwritten in
// place.
func (p *Parser) DecodeLayers(data []byte, decoded *[]LayerType) error {
	*decoded = (*decoded)[:0]
	t := p.first
	for len(data) > 0 && t != LayerTypeZero {
		l, ok := p.layers[t]
		if !ok {
			return ErrUnsupportedLayer{Type: t}
		}
		if err := l.DecodeFromBytes(data); err != nil {
			return err
		}
		*decoded = append(*decoded, t)
		data = l.LayerPayload()
		t = l.NextLayerType()
	}
	return nil
}

// DecodeFromBytes implements DecodingLayer for Ethernet.
func (e *Ethernet) DecodeFromBytes(data []byte) error {
	if len(data) < ethernetHeaderLen {
		return errTruncated(LayerTypeEthernet, ethernetHeaderLen, len(data))
	}
	*e = Ethernet{
		DstMAC:   data[0:6],
		SrcMAC:   data[6:12],
		contents: data[:ethernetHeaderLen],
		payload:  data[ethernetHeaderLen:],
	}
	tl := uint16(data[12])<<8 | uint16(data[13])
	if tl < 0x0600 {
		e.EthernetType = EthernetTypeLLC
		e.Length = tl
		if int(tl) < len(e.payload) {
			e.payload = e.payload[:tl]
		}
	} else {
		e.EthernetType = EthernetType(tl)
	}
	return nil
}

// NextLayerType implements DecodingLayer for Ethernet.
func (e *Ethernet) NextLayerType() LayerType {
	if e.EthernetType == EthernetTypeLLC {
		return LayerTypeLLC
	}
	return e.EthernetType.layerType()
}

// DecodeFromBytes implements DecodingLayer for IPv4, in place and without
// allocation.
func (ip *IPv4) DecodeFromBytes(data []byte) error {
	if len(data) < ipv4MinLen {
		return errTruncated(LayerTypeIPv4, ipv4MinLen, len(data))
	}
	version := data[0] >> 4
	if version != 4 {
		return fmt.Errorf("packet: IPv4 version field is %d", version)
	}
	ihl := data[0] & 0x0f
	hlen := int(ihl) * 4
	if hlen < ipv4MinLen || hlen > len(data) {
		return fmt.Errorf("packet: IPv4 header length %d invalid for %d bytes", hlen, len(data))
	}
	total := int(uint16(data[2])<<8 | uint16(data[3]))
	if total < hlen {
		return fmt.Errorf("packet: IPv4 total length %d shorter than header %d", total, hlen)
	}
	if total > len(data) {
		total = len(data)
	}
	*ip = IPv4{
		Version:    version,
		IHL:        ihl,
		TOS:        data[1],
		Length:     uint16(data[2])<<8 | uint16(data[3]),
		ID:         uint16(data[4])<<8 | uint16(data[5]),
		Flags:      data[6] >> 5,
		FragOffset: (uint16(data[6])<<8 | uint16(data[7])) & 0x1fff,
		TTL:        data[8],
		Protocol:   IPProtocol(data[9]),
		Checksum:   uint16(data[10])<<8 | uint16(data[11]),
		SrcIP:      data[12:16],
		DstIP:      data[16:20],
		contents:   data[:hlen],
		payload:    data[hlen:total],
	}
	if hlen > ipv4MinLen {
		ip.Options = data[ipv4MinLen:hlen]
	}
	return nil
}

// NextLayerType implements DecodingLayer for IPv4.
func (ip *IPv4) NextLayerType() LayerType {
	if ip.FragOffset != 0 || ip.Flags&IPv4MoreFragments != 0 {
		return LayerTypePayload
	}
	switch ip.Protocol {
	case IPProtocolICMPv4:
		return LayerTypeICMPv4
	case IPProtocolUDP:
		return LayerTypeUDP
	case IPProtocolTCP:
		return LayerTypeTCP
	default:
		return LayerTypePayload
	}
}

// DecodeFromBytes implements DecodingLayer for UDP, in place.
func (u *UDP) DecodeFromBytes(data []byte) error {
	if len(data) < udpHeaderLen {
		return errTruncated(LayerTypeUDP, udpHeaderLen, len(data))
	}
	*u = UDP{
		SrcPort:  uint16(data[0])<<8 | uint16(data[1]),
		DstPort:  uint16(data[2])<<8 | uint16(data[3]),
		Length:   uint16(data[4])<<8 | uint16(data[5]),
		Checksum: uint16(data[6])<<8 | uint16(data[7]),
		contents: data[:udpHeaderLen],
		payload:  data[udpHeaderLen:],
	}
	if int(u.Length) >= udpHeaderLen && int(u.Length) <= len(data) {
		u.payload = data[udpHeaderLen:u.Length]
	}
	return nil
}

// NextLayerType implements DecodingLayer for UDP.
func (u *UDP) NextLayerType() LayerType {
	if u.SrcPort == UDPPortRIP || u.DstPort == UDPPortRIP {
		return LayerTypeRIP
	}
	return LayerTypePayload
}

// DecodeFromBytes implements DecodingLayer for TCP, in place.
func (t *TCP) DecodeFromBytes(data []byte) error {
	if len(data) < tcpMinLen {
		return errTruncated(LayerTypeTCP, tcpMinLen, len(data))
	}
	offset := data[12] >> 4
	hlen := int(offset) * 4
	if hlen < tcpMinLen || hlen > len(data) {
		return fmt.Errorf("packet: TCP data offset %d invalid for %d bytes", hlen, len(data))
	}
	flags := data[13]
	*t = TCP{
		SrcPort:    uint16(data[0])<<8 | uint16(data[1]),
		DstPort:    uint16(data[2])<<8 | uint16(data[3]),
		Seq:        uint32(data[4])<<24 | uint32(data[5])<<16 | uint32(data[6])<<8 | uint32(data[7]),
		Ack:        uint32(data[8])<<24 | uint32(data[9])<<16 | uint32(data[10])<<8 | uint32(data[11]),
		DataOffset: offset,
		FIN:        flags&0x01 != 0,
		SYN:        flags&0x02 != 0,
		RST:        flags&0x04 != 0,
		PSH:        flags&0x08 != 0,
		ACK:        flags&0x10 != 0,
		URG:        flags&0x20 != 0,
		Window:     uint16(data[14])<<8 | uint16(data[15]),
		Checksum:   uint16(data[16])<<8 | uint16(data[17]),
		Urgent:     uint16(data[18])<<8 | uint16(data[19]),
		contents:   data[:hlen],
		payload:    data[hlen:],
	}
	if hlen > tcpMinLen {
		t.Options = data[tcpMinLen:hlen]
	}
	return nil
}

// NextLayerType implements DecodingLayer for TCP.
func (t *TCP) NextLayerType() LayerType { return LayerTypePayload }

// DecodeFromBytes implements DecodingLayer for Dot1Q, in place.
func (d *Dot1Q) DecodeFromBytes(data []byte) error {
	if len(data) < dot1qHeaderLen {
		return errTruncated(LayerTypeDot1Q, dot1qHeaderLen, len(data))
	}
	tci := uint16(data[0])<<8 | uint16(data[1])
	*d = Dot1Q{
		Priority:     uint8(tci >> 13),
		DropEligible: tci&0x1000 != 0,
		VLANID:       tci & 0x0fff,
		Type:         EthernetType(uint16(data[2])<<8 | uint16(data[3])),
		contents:     data[:dot1qHeaderLen],
		payload:      data[dot1qHeaderLen:],
	}
	return nil
}

// NextLayerType implements DecodingLayer for Dot1Q.
func (d *Dot1Q) NextLayerType() LayerType { return d.Type.layerType() }
