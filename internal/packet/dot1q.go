package packet

import (
	"encoding/binary"
	"fmt"
)

// Dot1Q is an IEEE 802.1Q VLAN tag.
type Dot1Q struct {
	Priority     uint8 // 3-bit PCP
	DropEligible bool  // DEI
	VLANID       uint16
	Type         EthernetType

	contents, payload []byte
}

const dot1qHeaderLen = 4

func (d *Dot1Q) LayerType() LayerType  { return LayerTypeDot1Q }
func (d *Dot1Q) LayerContents() []byte { return d.contents }
func (d *Dot1Q) LayerPayload() []byte  { return d.payload }

func (d *Dot1Q) String() string {
	return fmt.Sprintf("Dot1Q vlan %d prio %d", d.VLANID, d.Priority)
}

func decodeDot1Q(data []byte, b Builder) error {
	if len(data) < dot1qHeaderLen {
		return errTruncated(LayerTypeDot1Q, dot1qHeaderLen, len(data))
	}
	tci := binary.BigEndian.Uint16(data[0:2])
	d := &Dot1Q{
		Priority:     uint8(tci >> 13),
		DropEligible: tci&0x1000 != 0,
		VLANID:       tci & 0x0fff,
		Type:         EthernetType(binary.BigEndian.Uint16(data[2:4])),
		contents:     data[:dot1qHeaderLen],
		payload:      data[dot1qHeaderLen:],
	}
	b.AddLayer(d)
	return b.NextDecoder(d.Type.layerType(), d.payload)
}

// SerializeTo implements SerializableLayer.
func (d *Dot1Q) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	if d.VLANID > 4094 {
		return fmt.Errorf("packet: VLAN ID %d out of range", d.VLANID)
	}
	buf := b.PrependBytes(dot1qHeaderLen)
	tci := uint16(d.Priority)<<13 | d.VLANID
	if d.DropEligible {
		tci |= 0x1000
	}
	binary.BigEndian.PutUint16(buf[0:2], tci)
	binary.BigEndian.PutUint16(buf[2:4], uint16(d.Type))
	return nil
}
