package packet

import (
	"encoding/binary"
	"fmt"
)

// Failover hello states, mirroring the FWSM active/standby machine.
// Failed means the unit has lost one of its traffic interfaces and cannot
// serve; the peer should promote.
const (
	FailoverStateStandby uint8 = 1
	FailoverStateActive  uint8 = 2
	FailoverStateFailed  uint8 = 3
)

// FailoverHello is the health-check message an FWSM-style firewall module
// exchanges with its peer over the dedicated failover VLANs (VLAN 10/11 in
// the paper's Fig. 5 setup). It rides directly on Ethernet with an
// RNL-local EtherType.
type FailoverHello struct {
	UnitID   uint32 // sender's unit identifier
	State    uint8  // FailoverState*
	Priority uint8  // higher wins active election on ties
	Seq      uint32

	contents, payload []byte
}

const failoverHelloLen = 10

func (f *FailoverHello) LayerType() LayerType  { return LayerTypeFailoverHello }
func (f *FailoverHello) LayerContents() []byte { return f.contents }
func (f *FailoverHello) LayerPayload() []byte  { return f.payload }

func (f *FailoverHello) String() string {
	return fmt.Sprintf("FailoverHello unit %d state %d seq %d", f.UnitID, f.State, f.Seq)
}

func decodeFailoverHello(data []byte, b Builder) error {
	if len(data) < failoverHelloLen {
		return errTruncated(LayerTypeFailoverHello, failoverHelloLen, len(data))
	}
	f := &FailoverHello{
		UnitID:   binary.BigEndian.Uint32(data[0:4]),
		State:    data[4],
		Priority: data[5],
		Seq:      binary.BigEndian.Uint32(data[6:10]),
		contents: data[:failoverHelloLen],
		payload:  data[failoverHelloLen:],
	}
	b.AddLayer(f)
	return nil
}

// SerializeTo implements SerializableLayer.
func (f *FailoverHello) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	buf := b.PrependBytes(failoverHelloLen)
	binary.BigEndian.PutUint32(buf[0:4], f.UnitID)
	buf[4] = f.State
	buf[5] = f.Priority
	binary.BigEndian.PutUint32(buf[6:10], f.Seq)
	return nil
}
