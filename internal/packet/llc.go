package packet

import "fmt"

// LLC is an IEEE 802.2 logical link control header, used by 802.3 frames.
// Spanning-tree BPDUs ride on DSAP/SSAP 0x42.
type LLC struct {
	DSAP, SSAP uint8
	Control    uint8

	contents, payload []byte
}

const llcHeaderLen = 3

// LLCSAPSTP is the spanning tree protocol SAP.
const LLCSAPSTP = 0x42

func (l *LLC) LayerType() LayerType  { return LayerTypeLLC }
func (l *LLC) LayerContents() []byte { return l.contents }
func (l *LLC) LayerPayload() []byte  { return l.payload }

func (l *LLC) String() string {
	return fmt.Sprintf("LLC dsap %#02x ssap %#02x", l.DSAP, l.SSAP)
}

func decodeLLC(data []byte, b Builder) error {
	if len(data) < llcHeaderLen {
		return errTruncated(LayerTypeLLC, llcHeaderLen, len(data))
	}
	l := &LLC{
		DSAP:     data[0],
		SSAP:     data[1],
		Control:  data[2],
		contents: data[:llcHeaderLen],
		payload:  data[llcHeaderLen:],
	}
	b.AddLayer(l)
	if l.DSAP == LLCSAPSTP && l.SSAP == LLCSAPSTP {
		return b.NextDecoder(LayerTypeSTP, l.payload)
	}
	return b.NextDecoder(LayerTypePayload, l.payload)
}

// SerializeTo implements SerializableLayer.
func (l *LLC) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	buf := b.PrependBytes(llcHeaderLen)
	buf[0] = l.DSAP
	buf[1] = l.SSAP
	buf[2] = l.Control
	return nil
}
