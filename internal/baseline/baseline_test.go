package baseline

import (
	"testing"
	"time"

	"rnl/internal/device"
	"rnl/internal/netsim"
	"rnl/internal/packet"
)

func recvTyped(i *netsim.Iface, lt packet.LayerType) chan struct{} {
	ch := make(chan struct{}, 8)
	i.SetReceiver(func(f []byte) {
		p := packet.NewPacket(f, packet.LayerTypeEthernet, packet.Default)
		if p.Layer(lt) != nil {
			select {
			case ch <- struct{}{}:
			default:
			}
		}
	})
	return ch
}

var (
	macA = deviceMACish(1)
	macB = deviceMACish(2)
)

func deviceMACish(i byte) []byte { return []byte{0x02, 0, 0, 0, 0, i} }

func sendBPDU(t *testing.T, i *netsim.Iface) {
	t.Helper()
	frame, err := packet.BuildBPDU(macA, &packet.STP{
		BPDUType: packet.BPDUTypeConfig,
		RootID:   packet.BridgeID{Priority: 1, MAC: macA},
		BridgeID: packet.BridgeID{Priority: 1, MAC: macA},
	})
	if err != nil {
		t.Fatal(err)
	}
	i.Transmit(frame)
}

func sendARP(t *testing.T, i *netsim.Iface) {
	t.Helper()
	frame, err := packet.BuildARPRequest(macA, []byte{10, 0, 0, 1}, []byte{10, 0, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	i.Transmit(frame)
}

func sendUDPFrame(t *testing.T, i *netsim.Iface) {
	t.Helper()
	frame, err := packet.BuildUDP(macA, macB, []byte{10, 0, 0, 1}, []byte{10, 0, 0, 2}, 1, 2, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	i.Transmit(frame)
}

func arrived(ch chan struct{}) bool {
	select {
	case <-ch:
		return true
	case <-time.After(150 * time.Millisecond):
		return false
	}
}

func TestVLANWireEatsBPDUs(t *testing.T) {
	a, b := netsim.NewIface("a"), netsim.NewIface("b")
	w := ConnectVLAN(a, b)
	defer w.Disconnect()

	gotSTP := recvTyped(b, packet.LayerTypeSTP)
	sendBPDU(t, a)
	if arrived(gotSTP) {
		t.Fatal("VLAN link must not carry BPDUs")
	}
	if ab, _ := w.Drops(); ab != 1 {
		t.Errorf("drop counter = %d, want 1", ab)
	}
	gotARP := recvTyped(b, packet.LayerTypeARP)
	sendARP(t, a)
	if !arrived(gotARP) {
		t.Fatal("VLAN link should carry ARP")
	}
	gotUDP := recvTyped(b, packet.LayerTypeUDP)
	sendUDPFrame(t, a)
	if !arrived(gotUDP) {
		t.Fatal("VLAN link should carry IP traffic")
	}
}

func TestVLANWireRejectsNestedTags(t *testing.T) {
	a, b := netsim.NewIface("a"), netsim.NewIface("b")
	w := ConnectVLAN(a, b)
	defer w.Disconnect()
	got := recvTyped(b, packet.LayerTypeDot1Q)
	frame, _ := packet.BuildUDP(macA, macB, []byte{10, 0, 0, 1}, []byte{10, 0, 0, 2}, 1, 2, nil)
	tagged, _ := packet.WithVLANTag(frame, 100, 0)
	a.Transmit(tagged)
	if arrived(got) {
		t.Fatal("VLAN link must not carry already-tagged frames (no QinQ)")
	}
}

func TestVPNWireOnlyCarriesIP(t *testing.T) {
	a, b := netsim.NewIface("a"), netsim.NewIface("b")
	w := ConnectVPN(a, b)
	defer w.Disconnect()

	gotSTP := recvTyped(b, packet.LayerTypeSTP)
	sendBPDU(t, a)
	if arrived(gotSTP) {
		t.Fatal("VPN link must not carry BPDUs")
	}
	gotARP := recvTyped(b, packet.LayerTypeARP)
	sendARP(t, a)
	if arrived(gotARP) {
		t.Fatal("VPN link must not carry ARP")
	}
	gotUDP := recvTyped(b, packet.LayerTypeUDP)
	sendUDPFrame(t, a)
	if !arrived(gotUDP) {
		t.Fatal("VPN link should carry IP")
	}
}

func TestVPNWireLosesL2Header(t *testing.T) {
	a, b := netsim.NewIface("a"), netsim.NewIface("b")
	w := ConnectVPN(a, b)
	defer w.Disconnect()
	got := make(chan []byte, 1)
	b.SetReceiver(func(f []byte) {
		select {
		case got <- f:
		default:
		}
	})
	sendUDPFrame(t, a)
	select {
	case f := <-got:
		p := packet.NewPacket(f, packet.LayerTypeEthernet, packet.Default)
		eth := p.LinkLayer().(*packet.Ethernet)
		if eth.SrcMAC.String() == netMAC(macA) {
			t.Error("original source MAC survived the VPN — it must not")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("IP frame never crossed the VPN")
	}
}

func netMAC(b []byte) string {
	p := packet.MACEndpoint(b)
	return p.String()
}

// TestFidelityComparison is the §5 experiment in miniature: the same STP
// workload over three wire mechanisms. Only a direct (RNL-fidelity) wire
// lets the two switches see each other.
func TestFidelityComparison(t *testing.T) {
	type connectFn func(a, b *netsim.Iface) func()
	mechanisms := []struct {
		name      string
		connect   connectFn
		wantMerge bool // should the switches agree on one root?
	}{
		{"direct", func(a, b *netsim.Iface) func() {
			w := netsim.Connect(a, b, nil)
			return w.Disconnect
		}, true},
		{"vlan", func(a, b *netsim.Iface) func() {
			w := ConnectVLAN(a, b)
			return w.Disconnect
		}, false},
		{"vpn", func(a, b *netsim.Iface) func() {
			w := ConnectVPN(a, b)
			return w.Disconnect
		}, false},
	}
	for _, m := range mechanisms {
		t.Run(m.name, func(t *testing.T) {
			s1 := device.NewSwitch("f-"+m.name+"-1", []string{"p1"}, device.FastTimers())
			s2 := device.NewSwitch("f-"+m.name+"-2", []string{"p1"}, device.FastTimers())
			t.Cleanup(s1.Close)
			t.Cleanup(s2.Close)
			disconnect := m.connect(s1.Port("p1"), s2.Port("p1"))
			t.Cleanup(disconnect)

			merged := false
			deadline := time.Now().Add(time.Second)
			for time.Now().Before(deadline) {
				if s1.IsRoot() != s2.IsRoot() {
					merged = true
					break
				}
				time.Sleep(10 * time.Millisecond)
			}
			if merged != m.wantMerge {
				t.Errorf("%s: STP merge = %v, want %v", m.name, merged, m.wantMerge)
			}
		})
	}
}
