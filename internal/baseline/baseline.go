// Package baseline implements the virtual-connection mechanisms RNL is
// compared against in the paper (§2 "Virtual connection" and §5):
//
//   - VLAN links (Emulab-style): the two ports are placed in a VLAN of a
//     shared switched infrastructure. Data frames pass, but 802.1D
//     link-local control traffic (BPDUs) is consumed by the
//     infrastructure bridges, and frames that are already 802.1Q-tagged
//     cannot be carried (no QinQ) — "a layer 2 virtual connection ...
//     cannot move packets beyond a single layer 2 domain".
//
//   - VPN links (VINI-style layer-3 tunnels): only IP packets cross, and
//     the original Ethernet header is lost in transit — "a layer 3
//     virtual connection ... tunnels packets at the IP layer, so layer 2
//     information is lost".
//
// RNL's own wire (internal/wire + routeserver) carries the complete frame;
// these baselines exist so tests and benchmarks can demonstrate exactly
// which traffic classes each mechanism loses.
package baseline

import (
	"net"
	"sync"

	"rnl/internal/netsim"
	"rnl/internal/packet"
)

// Filter transforms a frame in transit; ok=false drops it.
type Filter func(frame []byte) (out []byte, ok bool)

// Wire is a filtered virtual link between two interfaces.
type Wire struct {
	a, b *netsim.Iface

	mu     sync.Mutex
	closed bool
	ab, ba chan []byte
	done   chan struct{}
	wg     sync.WaitGroup

	// DroppedAB/BA count frames the mechanism could not carry, per
	// direction.
	DroppedAB, DroppedBA uint64
}

const queueLen = 512

// connectFiltered wires a↔b through per-direction filters.
func connectFiltered(a, b *netsim.Iface, f Filter) *Wire {
	w := &Wire{
		a: a, b: b,
		ab:   make(chan []byte, queueLen),
		ba:   make(chan []byte, queueLen),
		done: make(chan struct{}),
	}
	a.SetOutput(func(fr []byte) { enqueue(w.ab, fr) })
	b.SetOutput(func(fr []byte) { enqueue(w.ba, fr) })
	w.wg.Add(2)
	go w.pump(w.ab, b, f, &w.DroppedAB)
	go w.pump(w.ba, a, f, &w.DroppedBA)
	return w
}

func enqueue(q chan []byte, f []byte) {
	select {
	case q <- f:
	default:
	}
}

func (w *Wire) pump(q chan []byte, dst *netsim.Iface, f Filter, dropped *uint64) {
	defer w.wg.Done()
	for {
		select {
		case <-w.done:
			return
		case fr := <-q:
			out, ok := f(fr)
			if !ok {
				w.mu.Lock()
				*dropped++
				w.mu.Unlock()
				continue
			}
			dst.Deliver(out)
		}
	}
}

// Drops reports frames dropped in each direction.
func (w *Wire) Drops() (ab, ba uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.DroppedAB, w.DroppedBA
}

// Disconnect unplugs the wire.
func (w *Wire) Disconnect() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.mu.Unlock()
	w.a.SetOutput(nil)
	w.b.SetOutput(nil)
	close(w.done)
	w.wg.Wait()
}

// ConnectVLAN builds an Emulab-style VLAN link between two interfaces.
func ConnectVLAN(a, b *netsim.Iface) *Wire {
	return connectFiltered(a, b, vlanFilter)
}

// vlanFilter models what survives a path through 802.1Q infrastructure
// bridges: link-local control frames are consumed, tagged frames cannot
// be re-tagged (no QinQ).
func vlanFilter(frame []byte) ([]byte, bool) {
	if len(frame) < 14 {
		return nil, false
	}
	dst := net.HardwareAddr(frame[0:6])
	if packet.IsLinkLocalMulticast(dst) {
		return nil, false // BPDUs die at the first infrastructure bridge
	}
	if _, tagged := packet.VLANID(frame); tagged {
		return nil, false // no QinQ on the shared infrastructure
	}
	return frame, true
}

// ConnectVPN builds a VINI-style layer-3 tunnel between two interfaces.
// tunnelMAC is the synthetic address the tunnel endpoint uses when
// re-emitting packets at the far side.
func ConnectVPN(a, b *netsim.Iface) *Wire {
	return connectFiltered(a, b, vpnFilter)
}

// vpnMAC is the synthetic gateway address a VPN endpoint stamps onto
// re-emitted packets; the original L2 addressing does not survive.
var vpnMAC = net.HardwareAddr{0x02, 0x76, 0x70, 0x6e, 0x00, 0x01}

// vpnFilter models an IP tunnel: only IPv4 crosses, with the Ethernet
// header rebuilt at the far end.
func vpnFilter(frame []byte) ([]byte, bool) {
	p := packet.NewPacket(frame, packet.LayerTypeEthernet, packet.NoCopy)
	eth, ok := p.LinkLayer().(*packet.Ethernet)
	if !ok || eth.EthernetType != packet.EthernetTypeIPv4 {
		return nil, false // ARP, BPDUs, everything non-IP is lost
	}
	out := make([]byte, 0, len(frame))
	out = append(out, packet.Broadcast...) // far end delivers to whoever listens
	out = append(out, vpnMAC...)
	out = append(out, 0x08, 0x00)
	out = append(out, eth.LayerPayload()...)
	return out, true
}
