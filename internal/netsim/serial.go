package netsim

import (
	"io"
	"net"
)

// SerialPort is a virtual RS-232 cable: two byte-stream ends. The lab
// manager plugs one end into the router's console and the other into a COM
// port on the lab PC (paper §2.2).
type SerialPort struct {
	// DeviceEnd is attached to the emulated device's console.
	DeviceEnd io.ReadWriteCloser
	// PCEnd is the COM port RIS reads and writes.
	PCEnd io.ReadWriteCloser
}

// NewSerialPort creates a connected serial cable.
func NewSerialPort() *SerialPort {
	a, b := net.Pipe()
	return &SerialPort{DeviceEnd: a, PCEnd: b}
}

// Close shuts both ends.
func (s *SerialPort) Close() {
	s.DeviceEnd.Close()
	s.PCEnd.Close()
}
