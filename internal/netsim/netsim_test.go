package netsim

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rnl/internal/sim"
)

// recvChan installs a channel-backed receiver on an interface.
func recvChan(i *Iface, cap int) chan []byte {
	ch := make(chan []byte, cap)
	i.SetReceiver(func(f []byte) {
		select {
		case ch <- f:
		default:
		}
	})
	return ch
}

func waitFrame(t *testing.T, ch chan []byte) []byte {
	t.Helper()
	select {
	case f := <-ch:
		return f
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for frame")
		return nil
	}
}

func TestWireCarriesBothDirections(t *testing.T) {
	a, b := NewIface("a"), NewIface("b")
	cha, chb := recvChan(a, 1), recvChan(b, 1)
	w := Connect(a, b, nil)
	defer w.Disconnect()

	a.Transmit([]byte("to-b"))
	if got := waitFrame(t, chb); string(got) != "to-b" {
		t.Errorf("b received %q", got)
	}
	b.Transmit([]byte("to-a"))
	if got := waitFrame(t, cha); string(got) != "to-a" {
		t.Errorf("a received %q", got)
	}
}

func TestTransmitCopiesFrame(t *testing.T) {
	a, b := NewIface("a"), NewIface("b")
	chb := recvChan(b, 1)
	w := Connect(a, b, nil)
	defer w.Disconnect()

	buf := []byte("original")
	a.Transmit(buf)
	copy(buf, "mutated!")
	if got := waitFrame(t, chb); string(got) != "original" {
		t.Errorf("receiver saw caller mutation: %q", got)
	}
}

func TestNoCarrierDropsFrames(t *testing.T) {
	a := NewIface("a")
	a.Transmit([]byte("x"))
	if a.Stats().TxDropped.Load() != 1 {
		t.Error("unplugged transmit should count as TxDropped")
	}
	if a.Up() {
		t.Error("interface with no carrier should not be Up")
	}
}

func TestAdminDownBlocksTraffic(t *testing.T) {
	a, b := NewIface("a"), NewIface("b")
	chb := recvChan(b, 4)
	w := Connect(a, b, nil)
	defer w.Disconnect()

	b.SetAdminUp(false)
	a.Transmit([]byte("x"))
	time.Sleep(20 * time.Millisecond)
	select {
	case f := <-chb:
		t.Errorf("admin-down interface received %q", f)
	default:
	}
	if b.Stats().RxDropped.Load() == 0 {
		t.Error("admin-down receive should count as RxDropped")
	}
	b.SetAdminUp(true)
	a.Transmit([]byte("y"))
	if got := waitFrame(t, chb); string(got) != "y" {
		t.Errorf("after re-enable, received %q", got)
	}
}

func TestDisconnectDropsCarrier(t *testing.T) {
	a, b := NewIface("a"), NewIface("b")
	w := Connect(a, b, nil)
	if !a.Up() || !b.Up() {
		t.Fatal("both ends should be up after Connect")
	}
	w.Disconnect()
	if a.Up() || b.Up() {
		t.Error("both ends should lose carrier after Disconnect")
	}
	w.Disconnect() // idempotent
}

func TestTapSeesBothDirections(t *testing.T) {
	a, b := NewIface("a"), NewIface("b")
	recvChan(b, 4)
	w := Connect(a, b, nil)
	defer w.Disconnect()

	var mu sync.Mutex
	var events []string
	remove := a.AddTap(func(dir Direction, f []byte) {
		mu.Lock()
		events = append(events, dir.String()+":"+string(f))
		mu.Unlock()
	})

	a.Transmit([]byte("out"))
	b.Transmit([]byte("in"))
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(events)
		mu.Unlock()
		if n >= 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	if len(events) != 2 {
		evs := append([]string(nil), events...)
		mu.Unlock()
		t.Fatalf("tap saw %d events: %v", len(evs), evs)
	}
	seen := map[string]bool{}
	for _, e := range events {
		seen[e] = true
	}
	mu.Unlock()
	if !seen["tx:out"] || !seen["rx:in"] {
		t.Errorf("tap events missing tx:out/rx:in")
	}
	remove()
	a.Transmit([]byte("after"))
	time.Sleep(10 * time.Millisecond)
	mu.Lock()
	if len(events) != 2 {
		t.Error("removed tap still firing")
	}
	mu.Unlock()
}

type fixedDelay struct {
	d    time.Duration
	drop atomic.Bool
}

func (c *fixedDelay) Condition(int) (time.Duration, bool) {
	return c.d, c.drop.Load()
}

func TestConditionerDelaysDelivery(t *testing.T) {
	a, b := NewIface("a"), NewIface("b")
	chb := recvChan(b, 1)
	cond := &fixedDelay{d: 50 * time.Millisecond}
	w := Connect(a, b, cond)
	defer w.Disconnect()

	start := time.Now()
	a.Transmit([]byte("slow"))
	waitFrame(t, chb)
	if el := time.Since(start); el < 45*time.Millisecond {
		t.Errorf("frame arrived after %v, want >=50ms", el)
	}
}

func TestConditionerDropsFrames(t *testing.T) {
	a, b := NewIface("a"), NewIface("b")
	chb := recvChan(b, 1)
	cond := &fixedDelay{}
	cond.drop.Store(true)
	w := Connect(a, b, cond)
	defer w.Disconnect()

	a.Transmit([]byte("lost"))
	time.Sleep(20 * time.Millisecond)
	select {
	case f := <-chb:
		t.Errorf("dropped frame delivered: %q", f)
	default:
	}
}

func TestStatsCount(t *testing.T) {
	a, b := NewIface("a"), NewIface("b")
	chb := recvChan(b, 16)
	w := Connect(a, b, nil)
	defer w.Disconnect()
	for i := 0; i < 10; i++ {
		a.Transmit(bytes.Repeat([]byte{1}, 100))
	}
	for i := 0; i < 10; i++ {
		waitFrame(t, chb)
	}
	if got := a.Stats().TxFrames.Load(); got != 10 {
		t.Errorf("TxFrames = %d, want 10", got)
	}
	if got := a.Stats().TxBytes.Load(); got != 1000 {
		t.Errorf("TxBytes = %d, want 1000", got)
	}
	if got := b.Stats().RxFrames.Load(); got != 10 {
		t.Errorf("RxFrames = %d, want 10", got)
	}
}

func TestPCInventory(t *testing.T) {
	pc := NewPC("pc1")
	if _, err := pc.AddIface("eth0"); err != nil {
		t.Fatal(err)
	}
	if _, err := pc.AddIface("eth0"); err == nil {
		t.Error("duplicate interface name should fail")
	}
	if pc.Iface("eth0") == nil {
		t.Error("eth0 lookup failed")
	}
	if pc.Iface("eth9") != nil {
		t.Error("missing interface lookup should be nil")
	}
	if _, err := pc.AddSerial("COM1"); err != nil {
		t.Fatal(err)
	}
	if _, err := pc.AddSerial("COM1"); err == nil {
		t.Error("duplicate serial name should fail")
	}
	names := pc.IfaceNames()
	if len(names) != 1 || names[0] != "eth0" {
		t.Errorf("IfaceNames = %v", names)
	}
	pc.Close()
}

func TestSerialPortCarriesBytes(t *testing.T) {
	s := NewSerialPort()
	defer s.Close()
	go s.DeviceEnd.Write([]byte("router>"))
	buf := make([]byte, 16)
	n, err := s.PCEnd.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "router>" {
		t.Errorf("read %q", buf[:n])
	}
}

func TestWireQueueOverflowDropsNotBlocks(t *testing.T) {
	a, b := NewIface("a"), NewIface("b")
	// Receiver blocks forever: frames pile up in the wire queue.
	blocked := make(chan struct{})
	b.SetReceiver(func([]byte) { <-blocked })
	w := Connect(a, b, nil)
	defer func() { close(blocked); w.Disconnect() }()

	done := make(chan struct{})
	go func() {
		for i := 0; i < wireQueueLen*3; i++ {
			a.Transmit([]byte{byte(i)})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Transmit blocked on full wire queue")
	}
}

// TestConnectClockDelaysOnFakeClock is the regression for the wire pump's
// wall-clock delay bug: a conditioned wire built on sim.Fake must hold
// delayed frames until virtual time advances past the delay — never
// deliver them on a hidden time.After schedule of its own.
func TestConnectClockDelaysOnFakeClock(t *testing.T) {
	a, b := NewIface("a"), NewIface("b")
	chb := recvChan(b, 1)
	clk := sim.NewFake(time.Unix(0, 0))
	w := ConnectClock(a, b, &fixedDelay{d: time.Hour}, clk)
	defer w.Disconnect()

	a.Transmit([]byte("virtual"))
	// Give the pump real time to pick the frame up and park on the
	// virtual delay: it must NOT arrive while the fake clock stands still.
	time.Sleep(20 * time.Millisecond)
	select {
	case <-chb:
		t.Fatal("delayed frame delivered with virtual time frozen")
	default:
	}
	// The pump arms its timer asynchronously; advance until delivery.
	deadline := time.Now().Add(5 * time.Second)
	for {
		clk.Advance(time.Hour)
		select {
		case f := <-chb:
			if !bytes.Equal(f, []byte("virtual")) {
				t.Fatalf("delivered %q", f)
			}
			return
		case <-time.After(time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("frame never delivered after advancing virtual time")
		}
	}
}
