package netsim

import (
	"fmt"
	"sync"
)

// PC is a lab computer sitting in front of one or more routers: a box of
// network interface adapters and COM ports that RIS runs on (paper Fig. 1).
type PC struct {
	name string

	mu      sync.Mutex
	ifaces  map[string]*Iface
	serials map[string]*SerialPort
}

// NewPC creates a PC with no interfaces; add them with AddIface.
func NewPC(name string) *PC {
	return &PC{
		name:    name,
		ifaces:  make(map[string]*Iface),
		serials: make(map[string]*SerialPort),
	}
}

// Name returns the PC's name.
func (p *PC) Name() string { return p.name }

// AddIface installs a new network interface adapter (e.g. "eth3").
func (p *PC) AddIface(name string) (*Iface, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.ifaces[name]; dup {
		return nil, fmt.Errorf("netsim: PC %s already has interface %s", p.name, name)
	}
	i := NewIface(p.name + "/" + name)
	p.ifaces[name] = i
	return i, nil
}

// Iface returns the named interface, or nil.
func (p *PC) Iface(name string) *Iface {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ifaces[name]
}

// IfaceNames lists the installed interfaces.
func (p *PC) IfaceNames() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	names := make([]string, 0, len(p.ifaces))
	for n := range p.ifaces {
		names = append(names, n)
	}
	return names
}

// AddSerial installs a COM port (e.g. "COM1") and returns the cable.
func (p *PC) AddSerial(name string) (*SerialPort, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.serials[name]; dup {
		return nil, fmt.Errorf("netsim: PC %s already has serial %s", p.name, name)
	}
	s := NewSerialPort()
	p.serials[name] = s
	return s, nil
}

// Serial returns the named COM port, or nil.
func (p *PC) Serial(name string) *SerialPort {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.serials[name]
}

// Close disconnects every serial port. Interfaces are left to their wires.
func (p *PC) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range p.serials {
		s.Close()
	}
}
