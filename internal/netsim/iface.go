// Package netsim is the virtual physical substrate standing in for the
// paper's lab hardware: network interface adapters (the many PCI/USB NICs
// in each lab PC), physical wires between them, promiscuous capture taps
// (the libpcap substitute), serial console ports, and the lab PCs
// themselves.
//
// Frames are []byte Ethernet frames and are treated as immutable once
// transmitted: every receiver — the far-end device and every capture tap —
// may observe the same slice concurrently.
package netsim

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Handler consumes one received Ethernet frame.
type Handler func(frame []byte)

// Direction distinguishes transmitted from received frames on a tap.
type Direction int

// Tap directions.
const (
	DirTx Direction = iota
	DirRx
)

func (d Direction) String() string {
	if d == DirTx {
		return "tx"
	}
	return "rx"
}

// Tap observes frames crossing an interface in either direction.
type Tap func(dir Direction, frame []byte)

// Stats counts interface traffic. All fields are updated atomically.
type Stats struct {
	TxFrames, TxBytes    atomic.Uint64
	RxFrames, RxBytes    atomic.Uint64
	TxDropped, RxDropped atomic.Uint64
}

// ifState is the immutable snapshot of everything Transmit and Deliver
// consult per frame. Mutators rebuild and republish it under the
// interface mutex; the data path does one atomic load and no locking —
// the same publish-on-write discipline as the route server's forwarding
// table, one layer down.
type ifState struct {
	adminUp bool
	carrier bool
	recv    Handler
	out     Handler
	taps    []Tap
}

// Iface is a virtual network interface adapter. A device transmits frames
// out of it; a Wire (or any component that calls SetOutput) carries them to
// the far end, which delivers them with Deliver.
type Iface struct {
	name string

	mu      sync.Mutex // serializes mutations; the data path reads st only
	adminUp bool
	carrier bool
	recv    Handler
	out     Handler
	taps    map[int]Tap
	nextTap int

	st atomic.Pointer[ifState]

	stats Stats
}

// NewIface creates an administratively-up interface with no carrier.
func NewIface(name string) *Iface {
	i := &Iface{name: name, adminUp: true, taps: make(map[int]Tap)}
	i.st.Store(&ifState{adminUp: true})
	return i
}

// publishLocked rebuilds the data-path snapshot; callers hold i.mu.
func (i *Iface) publishLocked() {
	st := &ifState{
		adminUp: i.adminUp,
		carrier: i.carrier,
		recv:    i.recv,
		out:     i.out,
	}
	if len(i.taps) > 0 {
		st.taps = make([]Tap, 0, len(i.taps))
		for _, t := range i.taps {
			st.taps = append(st.taps, t)
		}
	}
	i.st.Store(st)
}

// Name returns the interface name.
func (i *Iface) Name() string { return i.name }

// Stats exposes the interface counters.
func (i *Iface) Stats() *Stats { return &i.stats }

// SetReceiver installs the device-side handler for frames arriving from
// the wire. The handler must not block; long work belongs on the device's
// own queue.
func (i *Iface) SetReceiver(h Handler) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.recv = h
	i.publishLocked()
}

// SetOutput installs the wire-side sink for transmitted frames and flips
// carrier accordingly (nil output means unplugged).
func (i *Iface) SetOutput(h Handler) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.out = h
	i.carrier = h != nil
	i.publishLocked()
}

// SetAdminUp raises or lowers the interface administratively; a downed
// interface neither transmits nor receives.
func (i *Iface) SetAdminUp(up bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.adminUp = up
	i.publishLocked()
}

// AdminUp reports the administrative state alone, ignoring carrier.
func (i *Iface) AdminUp() bool {
	return i.st.Load().adminUp
}

// Up reports whether the interface can pass traffic (admin up + carrier).
func (i *Iface) Up() bool {
	st := i.st.Load()
	return st.adminUp && st.carrier
}

// AddTap installs a promiscuous capture tap and returns a removal handle.
// Taps see both directions, after admin-state filtering — exactly what
// RIS's libpcap capture on the lab PC would see.
func (i *Iface) AddTap(t Tap) (remove func()) {
	i.mu.Lock()
	defer i.mu.Unlock()
	id := i.nextTap
	i.nextTap++
	i.taps[id] = t
	i.publishLocked()
	return func() {
		i.mu.Lock()
		defer i.mu.Unlock()
		delete(i.taps, id)
		i.publishLocked()
	}
}

// Transmit sends a frame out of the interface. The frame is copied, so the
// caller may reuse its buffer. Transmit never blocks the caller beyond the
// wire's queue admission.
func (i *Iface) Transmit(frame []byte) {
	st := i.st.Load()
	if !st.adminUp || !st.carrier || st.out == nil {
		i.stats.TxDropped.Add(1)
		return
	}
	c := make([]byte, len(frame))
	copy(c, frame)
	i.stats.TxFrames.Add(1)
	i.stats.TxBytes.Add(uint64(len(c)))
	for _, t := range st.taps {
		t(DirTx, c)
	}
	st.out(c)
}

// Deliver hands a frame arriving from the wire to the device. It is called
// by Wire; devices never call it directly.
func (i *Iface) Deliver(frame []byte) {
	st := i.st.Load()
	if !st.adminUp {
		i.stats.RxDropped.Add(1)
		return
	}
	i.stats.RxFrames.Add(1)
	i.stats.RxBytes.Add(uint64(len(frame)))
	for _, t := range st.taps {
		t(DirRx, frame)
	}
	if st.recv != nil {
		st.recv(frame)
	}
}

func (i *Iface) String() string { return fmt.Sprintf("iface(%s)", i.name) }
