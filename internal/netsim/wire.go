package netsim

import (
	"sync"
	"time"
)

// Conditioner shapes traffic on a wire: per-frame delay and drop decisions.
// It is how RNL injects WAN delay/jitter/loss (paper §3.5).
type Conditioner interface {
	// Condition is consulted once per frame with its size; it returns
	// how long delivery should be delayed and whether to drop the frame.
	Condition(size int) (delay time.Duration, drop bool)
}

// wireQueueLen bounds each direction of a wire, like a NIC ring: frames
// beyond it are tail-dropped. This is what keeps an L2 forwarding loop
// (paper Fig. 5's misconfiguration transient) from consuming unbounded
// memory, just as a real loop saturates real links instead.
const wireQueueLen = 512

// Wire is a full-duplex physical link between two interfaces. Each
// direction runs its own delivery goroutine so a slow consumer or a
// conditioner delay in one direction never stalls the other.
type Wire struct {
	a, b *Iface

	mu     sync.Mutex
	closed bool

	ab, ba chan []byte
	cond   Conditioner
	done   chan struct{}
	wg     sync.WaitGroup
}

// Connect plugs two interfaces together with an optional conditioner
// (nil means an ideal wire) and starts carrying frames.
func Connect(a, b *Iface, cond Conditioner) *Wire {
	w := &Wire{
		a: a, b: b,
		ab:   make(chan []byte, wireQueueLen),
		ba:   make(chan []byte, wireQueueLen),
		cond: cond,
		done: make(chan struct{}),
	}
	a.SetOutput(func(f []byte) { w.enqueue(w.ab, f, &a.stats) })
	b.SetOutput(func(f []byte) { w.enqueue(w.ba, f, &b.stats) })
	w.wg.Add(2)
	go w.pump(w.ab, b)
	go w.pump(w.ba, a)
	return w
}

func (w *Wire) enqueue(q chan []byte, f []byte, st *Stats) {
	select {
	case q <- f:
	default:
		st.TxDropped.Add(1)
	}
}

func (w *Wire) pump(q chan []byte, dst *Iface) {
	defer w.wg.Done()
	for {
		select {
		case <-w.done:
			return
		case f := <-q:
			if w.cond != nil {
				delay, drop := w.cond.Condition(len(f))
				if drop {
					continue
				}
				if delay > 0 {
					select {
					case <-time.After(delay):
					case <-w.done:
						return
					}
				}
			}
			dst.Deliver(f)
		}
	}
}

// Disconnect unplugs the wire: both interfaces lose carrier and the pump
// goroutines exit. Disconnect is idempotent.
func (w *Wire) Disconnect() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.mu.Unlock()
	w.a.SetOutput(nil)
	w.b.SetOutput(nil)
	close(w.done)
	w.wg.Wait()
}

// Ends returns the two interfaces the wire connects.
func (w *Wire) Ends() (*Iface, *Iface) { return w.a, w.b }
