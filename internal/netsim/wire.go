package netsim

import (
	"runtime"
	"sync"
	"time"

	"rnl/internal/sim"
)

// Conditioner shapes traffic on a wire: per-frame delay and drop decisions.
// It is how RNL injects WAN delay/jitter/loss (paper §3.5).
type Conditioner interface {
	// Condition is consulted once per frame with its size; it returns
	// how long delivery should be delayed and whether to drop the frame.
	Condition(size int) (delay time.Duration, drop bool)
}

// wireQueueLen bounds each direction of a wire, like a NIC ring: frames
// beyond it are tail-dropped. This is what keeps an L2 forwarding loop
// (paper Fig. 5's misconfiguration transient) from consuming unbounded
// memory, just as a real loop saturates real links instead.
const wireQueueLen = 512

// wireDir is one direction of a wire: its ring queue and the receiving
// interface.
type wireDir struct {
	q   chan []byte
	dst *Iface
}

// pumpSpinBudget is how long an ideal wire's pump stays runnable after
// its last delivery before parking, polling the queue with scheduler
// yields — NAPI-style interrupt mitigation for the simulated NIC. The
// point is not the queue poll itself but keeping the process non-idle
// for a beat: on a contended 1-vCPU host, waking an idle process costs
// over a millisecond (measured), so a sender that paces itself with
// short sleeps against an otherwise-parked simulation loses ~25x the
// intended pause. A briefly-runnable pump keeps the Go scheduler
// servicing expired timers at their real deadlines, and an idle wire
// stops spinning after the budget and costs nothing.
const pumpSpinBudget = 100 * time.Microsecond

// Wire is a full-duplex physical link between two interfaces. Each
// direction has a delivery goroutine so a slow consumer or a conditioner
// delay in one direction never stalls the other; ideal wires short-cut
// it with in-place delivery.
type Wire struct {
	a, b *Iface

	mu     sync.Mutex
	closed bool

	ab, ba wireDir
	cond   Conditioner
	clk    sim.Clock
	done   chan struct{}
	wg     sync.WaitGroup
}

// Connect plugs two interfaces together with an optional conditioner
// (nil means an ideal wire) and starts carrying frames on the real clock.
func Connect(a, b *Iface, cond Conditioner) *Wire {
	return ConnectClock(a, b, cond, sim.Real{})
}

// ConnectClock is Connect with an injected clock: conditioner delays wait
// on clk, so a lab built on sim.Fake sees delayed frames delivered when
// the test advances time, not when the wall clock happens to pass.
func ConnectClock(a, b *Iface, cond Conditioner, clk sim.Clock) *Wire {
	w := &Wire{
		a: a, b: b,
		cond: cond,
		clk:  clk,
		done: make(chan struct{}),
	}
	w.ab = wireDir{q: make(chan []byte, wireQueueLen), dst: b}
	w.ba = wireDir{q: make(chan []byte, wireQueueLen), dst: a}
	a.SetOutput(func(f []byte) { w.enqueue(&w.ab, f, &a.stats) })
	b.SetOutput(func(f []byte) { w.enqueue(&w.ba, f, &b.stats) })
	w.wg.Add(2)
	go w.pump(&w.ab)
	go w.pump(&w.ba)
	return w
}

func (w *Wire) enqueue(d *wireDir, f []byte, st *Stats) {
	select {
	case d.q <- f:
	default:
		st.TxDropped.Add(1)
	}
}

func (w *Wire) pump(d *wireDir) {
	defer w.wg.Done()
	// One reusable timer per direction: a conditioned wire delays most
	// frames, and a fresh time.After timer per frame was both allocation
	// churn and — worse — wall-clock time on what is otherwise a fully
	// clock-driven simulation.
	timer := sim.NewOneShot(w.clk)
	defer timer.Stop()
	for {
		select {
		case <-w.done:
			return
		case f := <-d.q:
			w.carry(f, d.dst, timer)
			if w.cond == nil {
				w.drainSpin(d, timer)
			}
		}
	}
}

// drainSpin is the ideal wire's post-delivery busy-poll: keep draining
// with scheduler yields until the queue has stayed empty for
// pumpSpinBudget, then return to the parked select.
func (w *Wire) drainSpin(d *wireDir, timer *sim.OneShot) {
	last := time.Now()
	for {
		select {
		case <-w.done:
			return
		case f := <-d.q:
			w.carry(f, d.dst, timer)
			last = time.Now()
		default:
			if time.Since(last) > pumpSpinBudget {
				return
			}
			runtime.Gosched()
		}
	}
}

// carry applies the conditioner to one frame and delivers it. Delay waits
// park on the reusable clock timer (or wire teardown).
func (w *Wire) carry(f []byte, dst *Iface, timer *sim.OneShot) {
	if w.cond != nil {
		delay, drop := w.cond.Condition(len(f))
		if drop {
			return
		}
		if delay > 0 {
			timer.Arm(delay)
			select {
			case <-timer.C:
			case <-w.done:
				return
			}
		}
	}
	dst.Deliver(f)
}

// Disconnect unplugs the wire: both interfaces lose carrier and the pump
// goroutines exit. Disconnect is idempotent.
func (w *Wire) Disconnect() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.mu.Unlock()
	w.a.SetOutput(nil)
	w.b.SetOutput(nil)
	close(w.done)
	w.wg.Wait()
}

// Ends returns the two interfaces the wire connects.
func (w *Wire) Ends() (*Iface, *Iface) { return w.a, w.b }
