package routeserver

// Tenancy on the route server: per-tenant concurrent-lab quotas enforced
// atomically inside the matrix critical section, tenant-qualified
// shedding classes precomputed into the forwarding snapshot, per-tenant
// accounting rollups, tenant persistence, and session-join auth.

import (
	"strings"
	"sync"
	"testing"

	"rnl/internal/admission"
	"rnl/internal/identity"
)

func TestDeployLabTenantQuota(t *testing.T) {
	s := newFwdTestServer(t, Options{})
	_, portsA := addBenchSession(t, s, "quota-pc0")
	_, portsB := addBenchSession(t, s, "quota-pc1")
	_, portsC := addBenchSession(t, s, "quota-pc2")

	spec := func(name, tenant string) DeploySpec {
		return DeploySpec{Name: name, Owner: tenant, Tenant: tenant, MaxTenantLabs: 2}
	}
	if err := s.DeployLab(spec("q1", "alice"), []Link{{A: portsA[0], B: portsA[1]}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.DeployLab(spec("q2", "alice"), []Link{{A: portsB[0], B: portsB[1]}}, nil); err != nil {
		t.Fatal(err)
	}
	err := s.DeployLab(spec("q3", "alice"), []Link{{A: portsC[0], B: portsC[1]}}, nil)
	if err == nil || !strings.Contains(err.Error(), "quota") {
		t.Fatalf("third lab over quota: err = %v, want quota error", err)
	}
	// Another tenant is not affected by alice's cap.
	if err := s.DeployLab(spec("q3", "bob"), []Link{{A: portsC[0], B: portsC[1]}}, nil); err != nil {
		t.Fatalf("other tenant blocked by alice's quota: %v", err)
	}
	if err := s.Teardown("q3"); err != nil {
		t.Fatal(err)
	}
	// Teardown frees headroom.
	if err := s.Teardown("q1"); err != nil {
		t.Fatal(err)
	}
	if err := s.DeployLab(spec("q3", "alice"), []Link{{A: portsC[0], B: portsC[1]}}, nil); err != nil {
		t.Fatalf("deploy after teardown should fit the quota again: %v", err)
	}
	// A lab being reclaimed in the same deploy no longer counts against
	// the quota: at the cap, taking over one of your own expired labs
	// must succeed.
	reclaimAll := func(Deployment) bool { return true }
	if err := s.DeployLab(spec("q2", "alice"), []Link{{A: portsB[0], B: portsB[1]}}, reclaimAll); err != nil {
		t.Fatalf("reclaiming takeover at quota should succeed: %v", err)
	}
}

func TestDeployLabQuotaRace(t *testing.T) {
	// Many racing deploys by one tenant, cap 3: exactly 3 win. The check
	// and the install share the matrix lock, so no interleaving admits a
	// fourth.
	s := newFwdTestServer(t, Options{})
	var ports []PortKey
	for i := 0; i < 8; i++ {
		_, p := addBenchSession(t, s, "race-pc"+string(rune('0'+i)))
		ports = append(ports, p...)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.DeployLab(
				DeploySpec{Name: "r" + string(rune('0'+i)), Tenant: "crowd", MaxTenantLabs: 3},
				[]Link{{A: ports[2*i], B: ports[2*i+1]}}, nil)
		}(i)
	}
	wg.Wait()
	won := 0
	for _, err := range errs {
		if err == nil {
			won++
		} else if !strings.Contains(err.Error(), "quota") {
			t.Fatalf("unexpected deploy error: %v", err)
		}
	}
	if won != 3 {
		t.Fatalf("%d racing deploys admitted, quota is 3", won)
	}
}

func TestTenantAttribution(t *testing.T) {
	s := newFwdTestServer(t, Options{})
	_, portsA := addBenchSession(t, s, "attr-pc0")
	_, portsB := addBenchSession(t, s, "attr-pc1")

	if err := s.DeployLab(DeploySpec{Name: "lab1", Tenant: "acme"}, []Link{{A: portsA[0], B: portsB[1]}}, nil); err != nil {
		t.Fatal(err)
	}
	// The snapshot entry carries the precomputed composite class — the
	// packet path tags frames with tenant attribution at zero cost.
	e, ok := s.fwdSnapshot().routes[portsA[0]]
	if !ok {
		t.Fatal("deployed wire missing from snapshot")
	}
	want := admission.HierClass("acme", "lab1")
	if e.lab != want {
		t.Fatalf("snapshot class = %q, want %q", e.lab, want)
	}
	// Sheds attributed via the composite class roll up per lab and per
	// tenant; the per-lab view keeps the bare name.
	s.countShed(want, 7)
	if got := s.ShedByLab()["lab1"]; got != 7 {
		t.Fatalf("ShedByLab[lab1] = %d, want 7", got)
	}
	if got := s.ShedByTenant()["acme"]; got != 7 {
		t.Fatalf("ShedByTenant[acme] = %d, want 7", got)
	}
	// A class the snapshot no longer knows (post-teardown backlog) still
	// lands on the right tenant through the fallback split.
	s.countShed(admission.HierClass("acme", "gone-lab"), 2)
	if got := s.ShedByTenant()["acme"]; got != 9 {
		t.Fatalf("ShedByTenant[acme] after fallback = %d, want 9", got)
	}
	stats := s.StatsSnapshot()
	if stats["tenant_shed_acme"] != 9 {
		t.Fatalf("StatsSnapshot tenant_shed_acme = %d, want 9", stats["tenant_shed_acme"])
	}
	// Tenancy survives a persistence roundtrip.
	m2 := newMatrix()
	m2.importState(s.matrix.exportState())
	deps := m2.list()
	if len(deps) != 1 || deps[0].Tenant != "acme" {
		t.Fatalf("restored deployments = %+v, want one lab owned by acme", deps)
	}
}

func TestAuthorizeSession(t *testing.T) {
	auth, err := identity.New([]byte("seekrit"), nil)
	if err != nil {
		t.Fatal(err)
	}
	tok, err := auth.SignFor("ris-fleet", identity.RoleOperator, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		opts  Options
		token string
		ok    bool
	}{
		{"open server admits empty", Options{}, "", true},
		{"open server admits anything", Options{}, "whatever", true},
		{"shared token match", Options{TunnelToken: "hunter2"}, "hunter2", true},
		{"shared token mismatch", Options{TunnelToken: "hunter2"}, "hunter3", false},
		{"shared token empty", Options{TunnelToken: "hunter2"}, "", false},
		{"identity bearer token", Options{Identity: auth}, tok, true},
		{"identity garbage", Options{Identity: auth}, "garbage", false},
		{"either credential: shared", Options{TunnelToken: "hunter2", Identity: auth}, "hunter2", true},
		{"either credential: bearer", Options{TunnelToken: "hunter2", Identity: auth}, tok, true},
		{"either credential: neither", Options{TunnelToken: "hunter2", Identity: auth}, "nope", false},
	}
	for _, tc := range cases {
		s := newFwdTestServer(t, tc.opts)
		err := s.authorizeSession(tc.token)
		if (err == nil) != tc.ok {
			t.Errorf("%s: authorizeSession = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}
