package routeserver_test

// Crash-recovery E2E tests for the append-ahead mutation log: a killed
// server (no final checkpoint, torn log tail) must restore its control
// plane from snapshot + ordered journal replay, and replaying the same
// journal again over a newer snapshot must converge on identical state.

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"rnl/internal/faultinject"
	"rnl/internal/routeserver"
)

// routerIdentity is the durable slice of a RouterInfo: what recovery
// must reproduce exactly, minus restore-time bookkeeping.
type routerIdentity struct {
	ID       uint32
	Name     string
	Model    string
	PC       string
	Firmware string
	Online   bool
	Ports    string
}

func routerIdentities(inv []routeserver.RouterInfo) []routerIdentity {
	out := make([]routerIdentity, 0, len(inv))
	for _, r := range inv {
		ports := ""
		for _, p := range r.Ports {
			ports += fmt.Sprintf("%d:%s;", p.ID, p.Name)
		}
		out = append(out, routerIdentity{
			ID: r.ID, Name: r.Name, Model: r.Model, PC: r.PC,
			Firmware: r.Firmware, Online: r.Online, Ports: ports,
		})
	}
	return out
}

// TestCrashRecoveryFromJournal kills the route server mid-life — no
// graceful close, so the snapshot on disk never saw the mutations, and
// the log tail is torn as if power died mid-append — then brings up a
// fresh incarnation on the same state dir. Deployments, router
// identities and forwarding must all come back from journal replay.
func TestCrashRecoveryFromJournal(t *testing.T) {
	dir := t.TempDir()
	opts := routeserver.Options{
		Logger:            quietLogger(),
		RouterGracePeriod: time.Minute,
		StateDir:          dir,
	}
	s1 := routeserver.New(opts)
	addr, err := s1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s1.Kill)

	h1 := runLabHost(t, addr, "cr-h1", "10.0.24.1")
	h2 := runLabHost(t, addr, "cr-h2", "10.0.24.2")
	pk1 := portKeyOf(t, h1.agent, "cr-h1", "eth0")
	pk2 := portKeyOf(t, h2.agent, "cr-h2", "eth0")
	if err := s1.Deploy("cr-lab", []routeserver.Link{{A: pk1, B: pk2}}); err != nil {
		t.Fatal(err)
	}
	if ok, _ := h1.host.Ping(h2.host.IP(), 3*time.Second); !ok {
		t.Fatal("baseline ping failed")
	}

	// Crash: no checkpoint, no sync — everything the next incarnation
	// knows must come off the journal. Then tear the tail the way a
	// power cut mid-append would.
	s1.Kill()
	if err := faultinject.TornTail(filepath.Join(dir, routeserver.WALFile), []byte("crash-junk")); err != nil {
		t.Fatal(err)
	}

	s2 := routeserver.New(opts)
	t.Cleanup(s2.Close)
	deps := s2.Deployments()
	if len(deps) != 1 || deps[0].Name != "cr-lab" ||
		len(deps[0].Links) != 1 || deps[0].Links[0] != (routeserver.Link{A: pk1, B: pk2}) {
		t.Fatalf("deployments after crash replay: %+v", deps)
	}
	if inv := s2.Inventory(); len(inv) != 2 {
		t.Fatalf("inventory after crash replay has %d routers, want 2", len(inv))
	}
	r1, ok := s2.RouterByName("cr-h1")
	if !ok || (routeserver.PortKey{Router: r1.ID, Port: r1.Ports[0].ID}) != pk1 {
		t.Fatalf("cr-h1 replayed with different IDs: %+v want %s", r1, pk1)
	}

	// Agents redial the rebound address and the lab forwards again.
	var bindErr error
	bound := false
	for i := 0; i < 100 && !bound; i++ {
		if _, bindErr = s2.Listen(addr); bindErr == nil {
			bound = true
		} else {
			time.Sleep(50 * time.Millisecond)
		}
	}
	if !bound {
		t.Fatalf("could not rebind %s: %v", addr, bindErr)
	}
	waitFor(t, 5*time.Second, func() bool {
		return s2.StatsSnapshot()["recoveries"] >= 2
	}, "agents never re-attached after the crash")
	if after := portKeyOf(t, h1.agent, "cr-h1", "eth0"); after != pk1 {
		t.Fatalf("cr-h1 port key changed across crash: %s -> %s", pk1, after)
	}
	pingUntil(t, h1.host, h2.host.IP(), 5*time.Second)
}

// TestJournalReplayIdempotentOverSnapshot re-plants a journal whose
// every record is already folded into the snapshot, and reopens: the
// records are absolute post-mutation assertions, so replaying them a
// second time must converge on byte-for-byte identical control-plane
// state, not double-apply.
func TestJournalReplayIdempotentOverSnapshot(t *testing.T) {
	dir := t.TempDir()
	opts := routeserver.Options{
		Logger:            quietLogger(),
		RouterGracePeriod: time.Minute,
		StateDir:          dir,
	}
	s1 := routeserver.New(opts)
	addr, err := s1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	h1 := runLabHost(t, addr, "ip-h1", "10.0.25.1")
	h2 := runLabHost(t, addr, "ip-h2", "10.0.25.2")
	pk1 := portKeyOf(t, h1.agent, "ip-h1", "eth0")
	pk2 := portKeyOf(t, h2.agent, "ip-h2", "eth0")
	if err := s1.Deploy("ip-doomed", []routeserver.Link{{A: pk1, B: pk2}}); err != nil {
		t.Fatal(err)
	}
	if err := s1.Teardown("ip-doomed"); err != nil {
		t.Fatal(err)
	}
	if err := s1.Deploy("ip-lab", []routeserver.Link{{A: pk1, B: pk2}}); err != nil {
		t.Fatal(err)
	}

	// Save the raw journal — joins, a deploy, a teardown, a redeploy —
	// then close gracefully: the final checkpoint folds all of it into
	// the snapshot and truncates the log.
	walPath := filepath.Join(dir, routeserver.WALFile)
	journal, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(journal) == 0 {
		t.Fatal("no journal records written")
	}
	s1.Close()

	// Baseline: recovery from the snapshot alone.
	sClean := routeserver.New(opts)
	wantDeps := sClean.Deployments()
	wantInv := sClean.Inventory()
	sClean.Kill() // leave snapshot and (empty) log untouched

	// Re-plant the pre-checkpoint journal beside the newer snapshot —
	// the on-disk shape after a crash that interrupted log truncation —
	// and recover again.
	if err := os.WriteFile(walPath, journal, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := routeserver.New(opts)
	defer s2.Kill()
	if got := s2.Deployments(); !reflect.DeepEqual(got, wantDeps) {
		t.Fatalf("double replay diverged:\ngot  %+v\nwant %+v", got, wantDeps)
	}
	// Compare the durable router identity (unexported bookkeeping like
	// the offline-since stamp is set at restore time and may differ).
	if got, want := routerIdentities(s2.Inventory()), routerIdentities(wantInv); !reflect.DeepEqual(got, want) {
		t.Fatalf("double replay diverged on inventory:\ngot  %+v\nwant %+v", got, want)
	}
	if deps := s2.Deployments(); len(deps) != 1 || deps[0].Name != "ip-lab" {
		t.Fatalf("deployments after double replay: %+v", deps)
	}
}
