package routeserver_test

import (
	"net"
	"testing"
	"time"

	"rnl/internal/routeserver"
	"rnl/internal/wire"
)

// rawJoin speaks the client side of Hello + Join over a raw TCP
// connection, registering one router with one port.
func rawJoin(t *testing.T, addr, pcName string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	hello, err := wire.EncodeJSON(wire.MsgHello, wire.HelloMsg{Version: wire.ProtocolVersion, PCName: pcName})
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, hello); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadFrame(conn); err != nil {
		t.Fatal(err)
	}
	join, err := wire.EncodeJSON(wire.MsgJoin, wire.JoinMsg{Routers: []wire.RouterAnnounce{{
		Name:  "raw-r1",
		Ports: []wire.PortAnnounce{{Name: "p1", NIC: "eth0"}},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, join); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadFrame(conn); err != nil {
		t.Fatal(err)
	}
	return conn
}

// TestServerDropsSilentPeer: a session that stops sending anything —
// including keepalives — must be torn down after PeerTimeout and its
// inventory withdrawn, instead of lingering half-open forever.
func TestServerDropsSilentPeer(t *testing.T) {
	s := startServer(t, routeserver.Options{
		PeerTimeout:       200 * time.Millisecond,
		RouterGracePeriod: routeserver.NoRouterGrace,
	})

	conn := rawJoin(t, s.Addr(), "pc-silent")
	if got := len(s.Inventory()); got != 1 {
		t.Fatalf("inventory after join = %d routers, want 1", got)
	}

	// Go silent: keep the TCP connection open but never write again.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.Inventory()) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never dropped the silent session")
		}
		time.Sleep(10 * time.Millisecond)
	}
	_ = conn // held open the whole time; only silence triggered the drop
}

// TestServerKeepsTalkativePeer: keepalives alone must be enough to stay
// registered — the timeout fires on silence, not on missing data frames.
func TestServerKeepsTalkativePeer(t *testing.T) {
	s := startServer(t, routeserver.Options{PeerTimeout: 200 * time.Millisecond})

	conn := rawJoin(t, s.Addr(), "pc-alive")
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(50 * time.Millisecond):
				if wire.WriteFrame(conn, wire.Frame{Type: wire.MsgKeepalive}) != nil {
					return
				}
			}
		}
	}()

	time.Sleep(time.Second) // five timeout windows
	if got := len(s.Inventory()); got != 1 {
		t.Errorf("inventory after 1s of keepalives = %d routers, want 1", got)
	}
}
