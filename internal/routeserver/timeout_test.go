package routeserver_test

import (
	"net"
	"testing"
	"time"

	"rnl/internal/routeserver"
	"rnl/internal/sim"
	"rnl/internal/wire"
)

// rawJoin speaks the client side of Hello + Join over a raw TCP
// connection, registering one router with one port.
func rawJoin(t *testing.T, addr, pcName string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	hello, err := wire.EncodeJSON(wire.MsgHello, wire.HelloMsg{Version: wire.ProtocolVersion, PCName: pcName})
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, hello); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadFrame(conn); err != nil {
		t.Fatal(err)
	}
	join, err := wire.EncodeJSON(wire.MsgJoin, wire.JoinMsg{Routers: []wire.RouterAnnounce{{
		Name:  "raw-r1",
		Ports: []wire.PortAnnounce{{Name: "p1", NIC: "eth0"}},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, join); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadFrame(conn); err != nil {
		t.Fatal(err)
	}
	return conn
}

// TestServerDropsSilentPeer: a session that stops sending anything —
// including keepalives — must be torn down after PeerTimeout and its
// inventory withdrawn, instead of lingering half-open forever. The
// silence window is virtual: the test advances a fake clock instead of
// sleeping through real timeout windows.
func TestServerDropsSilentPeer(t *testing.T) {
	clock := sim.NewFake(time.Unix(0, 0))
	s := startServer(t, routeserver.Options{
		PeerTimeout:       200 * time.Millisecond,
		RouterGracePeriod: routeserver.NoRouterGrace,
		Clock:             clock,
	})

	conn := rawJoin(t, s.Addr(), "pc-silent")
	if got := len(s.Inventory()); got != 1 {
		t.Fatalf("inventory after join = %d routers, want 1", got)
	}

	// Go silent: keep the TCP connection open but never write again, and
	// push virtual time past the timeout until the watchdog (armed by the
	// serve loop, possibly an instant after rawJoin returns) fires and the
	// drop propagates.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.Inventory()) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never dropped the silent session")
		}
		clock.Advance(200 * time.Millisecond)
		time.Sleep(time.Millisecond)
	}
	_ = conn // held open the whole time; only silence triggered the drop
}

// TestServerKeepsTalkativePeer: keepalives alone must be enough to stay
// registered — the timeout fires on silence, not on missing data frames.
// Each round waits for the server's keepalive echo before advancing the
// clock, so the watchdog is provably touched between advances and the
// test is deterministic (and sleeps no real time).
func TestServerKeepsTalkativePeer(t *testing.T) {
	clock := sim.NewFake(time.Unix(0, 0))
	s := startServer(t, routeserver.Options{PeerTimeout: 200 * time.Millisecond, Clock: clock})

	conn := rawJoin(t, s.Addr(), "pc-alive")
	for i := 0; i < 10; i++ { // 1s of virtual time, touch every half-window
		if err := wire.WriteFrame(conn, wire.Frame{Type: wire.MsgKeepalive}); err != nil {
			t.Fatalf("keepalive %d: %v", i, err)
		}
		if _, err := wire.ReadFrame(conn); err != nil {
			t.Fatalf("keepalive echo %d: %v", i, err)
		}
		clock.Advance(100 * time.Millisecond)
	}
	if got := len(s.Inventory()); got != 1 {
		t.Errorf("inventory after 1s of keepalives = %d routers, want 1", got)
	}
}
