package routeserver

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"time"

	"rnl/internal/sim"
	"rnl/internal/wal"
)

// DefaultSnapshotInterval is the periodic checkpoint cadence: if the
// mutation log is non-empty, the server folds it into an incremental
// snapshot this often, bounding replay length after a crash.
const DefaultSnapshotInterval = 30 * time.Second

// stateFile is the snapshot filename inside Options.StateDir. It is
// the same file the pre-WAL full-rewrite persistence used, so a state
// directory written by an older build restores cleanly (with an empty
// mutation log).
const stateFile = "routeserver.json"

// WALFile is the control-plane mutation log beside the snapshot,
// exported so crash harnesses can tear its tail between incarnations.
const WALFile = "routeserver.wal"

// DegradedAfterFailures is how many consecutive journal failures flip
// the Health degraded flag: the server is then running on memory only
// and a crash loses the unjournaled mutations.
const DegradedAfterFailures = 3

// persistedDeployment is a Deployment with its damage marker exported.
type persistedDeployment struct {
	Name    string   `json:"name"`
	Owner   string   `json:"owner,omitempty"`
	Tenant  string   `json:"tenant,omitempty"`
	Links   []Link   `json:"links"`
	Routers []uint32 `json:"routers"`
	Damaged bool     `json:"damaged,omitempty"`
}

// persistedState is the on-disk control-plane snapshot. Router records
// carry their assigned wire IDs and the ID allocators ride along, so
// agents redialing a restarted server get identical assignments and the
// restored deployments' routes reinstall unchanged.
type persistedState struct {
	SavedAt     time.Time             `json:"saved_at"`
	NextRouter  uint32                `json:"next_router"`
	NextPort    uint32                `json:"next_port"`
	Routers     []RouterInfo          `json:"routers"`
	Deployments []persistedDeployment `json:"deployments"`
}

// journalRecord is one logged control-plane mutation. Records are
// absolute post-mutation assertions about a single entity (a router
// upsert, a deployment upsert, a deletion), never deltas — that is what
// makes replay idempotent: replaying any prefix twice, or replaying a
// full log over a snapshot that already contains some of it, converges
// on the same state because the last record for each entity wins.
type journalRecord struct {
	T string `json:"t"` // "router" | "offline" | "gone" | "deploy" | "teardown"
	// router: the full registry record plus the ID allocators at append
	// time (join, re-join, firmware update).
	Router     *RouterInfo `json:"router,omitempty"`
	NextRouter uint32      `json:"nr,omitempty"`
	NextPort   uint32      `json:"np,omitempty"`
	// deploy: the full deployment record, damage marker included.
	Dep *persistedDeployment `json:"dep,omitempty"`
	// teardown: the deployment name.
	Name string `json:"name,omitempty"`
	// offline / gone: the router ID.
	RouterID uint32 `json:"rid,omitempty"`
}

func (s *Server) statePath() string { return filepath.Join(s.opts.StateDir, stateFile) }
func (s *Server) walPath() string   { return filepath.Join(s.opts.StateDir, WALFile) }

// openState opens the snapshot+log store and recovers: restore the
// snapshot, then replay the mutation log in order. Missing state is a
// fresh start; an unopenable store is logged and leaves the server
// memory-only (and degraded in Health) — an empty server is always safe
// to run.
func (s *Server) openState() {
	if err := os.MkdirAll(s.opts.StateDir, 0o755); err != nil {
		s.log.Warn("state dir unavailable; running memory-only", "dir", s.opts.StateDir, "err", err)
		mStateErrors.Inc()
		return
	}
	st, err := wal.OpenStore(s.statePath(), s.walPath(), wal.Options{
		Policy:      s.opts.WALFsync,
		Interval:    s.opts.WALFsyncInterval,
		MaxBytes:    s.opts.WALMaxBytes,
		Clock:       s.clock,
		FS:          s.opts.WALFS,
		GroupCommit: s.opts.WALGroupCommit,
	})
	if err != nil {
		s.log.Warn("mutation log unavailable; running memory-only", "err", err)
		mStateErrors.Inc()
		return
	}
	s.wal = st

	snap, err := st.LoadSnapshot()
	if err != nil {
		s.log.Warn("state snapshot unreadable; replaying log from empty", "path", s.statePath(), "err", err)
		mStateErrors.Inc()
	}
	restored := 0
	if len(snap) > 0 {
		var ps persistedState
		if err := json.Unmarshal(snap, &ps); err != nil {
			s.log.Warn("state snapshot corrupt; replaying log from empty", "path", s.statePath(), "err", err)
			mStateErrors.Inc()
		} else {
			s.reg.importState(ps.Routers, ps.NextRouter, ps.NextPort)
			s.matrix.importState(ps.Deployments)
			restored = len(ps.Deployments)
		}
	}
	replayed, err := st.Replay(func(_ uint64, payload []byte) error {
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			s.log.Warn("unparseable journal record skipped", "err", err)
			return nil
		}
		s.applyJournal(rec)
		return nil
	})
	if err != nil {
		s.log.Warn("journal replay incomplete", "err", err)
		mStateErrors.Inc()
	}
	if restored > 0 || replayed > 0 {
		s.log.Info("recovered control-plane state",
			"routers", s.reg.count(), "deployments", s.matrix.count(), "replayed", replayed)
	}
}

// applyJournal applies one replayed mutation record.
func (s *Server) applyJournal(rec journalRecord) {
	switch rec.T {
	case "router":
		if rec.Router != nil {
			s.reg.applyRouter(*rec.Router, rec.NextRouter, rec.NextPort)
		}
	case "offline":
		s.reg.applyOffline(rec.RouterID)
	case "gone":
		s.reg.applyGone(rec.RouterID)
		s.matrix.dropRouter(rec.RouterID)
	case "deploy":
		if rec.Dep != nil {
			s.matrix.applyDeployment(*rec.Dep)
		}
	case "teardown":
		s.matrix.applyTeardown(rec.Name)
	default:
		s.log.Warn("unknown journal record type skipped", "type", rec.T)
	}
}

// journalLocked appends mutation records to the log as one batch: one
// write and (at fsync-always) one shared fsync no matter how many
// records the mutation produced — a mass join or a reclaiming deploy
// pays O(1) fsyncs instead of O(records). The caller holds s.walMu
// across the mutation AND this append, so records always land in
// mutation order and a concurrent checkpoint cannot truncate a record
// for a mutation its snapshot missed. Failures are warn-and-continue —
// the server keeps serving from memory — but they count toward the
// degraded flag in Health. A failed batch rolls back every record in
// it (wal.AppendBatch is all-or-nothing), so the journal never holds a
// prefix of a mutation.
func (s *Server) journalLocked(recs ...journalRecord) {
	if s.wal == nil || len(recs) == 0 {
		return
	}
	payloads := make([][]byte, 0, len(recs))
	for i := range recs {
		data, err := json.Marshal(&recs[i])
		if err != nil {
			mStateErrors.Inc()
			n := s.walFails.Add(1)
			s.log.Warn("journal record unmarshalable; mutation is in memory only",
				"type", recs[i].T, "consecutive", n, "err", err)
			continue
		}
		payloads = append(payloads, data)
	}
	if len(payloads) == 0 {
		return
	}
	if err := s.wal.AppendBatch(payloads); err != nil {
		mStateErrors.Inc()
		n := s.walFails.Add(uint32(len(payloads)))
		s.log.Warn("journal append failed; mutations are in memory only",
			"records", len(payloads), "consecutive", n, "err", err)
		return
	}
	s.walFails.Store(0)
}

// checkpoint writes an incremental snapshot and truncates the log. The
// walMu span covers export + snapshot + truncate, so a mutation
// committed while the snapshot marshals cannot fall between the
// exported state and the surviving log.
func (s *Server) checkpoint() {
	if s.wal == nil {
		return
	}
	s.walMu.Lock()
	defer s.walMu.Unlock()
	ps := persistedState{SavedAt: s.clock.Now()}
	ps.Routers, ps.NextRouter, ps.NextPort = s.reg.exportState()
	ps.Deployments = s.matrix.exportState()
	data, err := json.MarshalIndent(ps, "", "  ")
	if err == nil {
		err = s.wal.Snapshot(data)
	}
	if err != nil {
		mStateErrors.Inc()
		s.walFails.Add(1)
		s.log.Warn("state snapshot failed; mutation log kept", "err", err)
		return
	}
	s.walFails.Store(0)
}

// maybeCheckpoint rotates the log once it crosses the size threshold.
// Called after mutations, outside walMu and the entity locks.
func (s *Server) maybeCheckpoint() {
	if s.wal != nil && s.wal.ShouldSnapshot() {
		s.checkpoint()
	}
}

// snapshotInterval resolves the periodic checkpoint cadence.
func (s *Server) snapshotInterval() time.Duration {
	if s.opts.SnapshotInterval > 0 {
		return s.opts.SnapshotInterval
	}
	return DefaultSnapshotInterval
}

// snapshotLoop checkpoints periodically until Close — a backstop that
// bounds replay length even when the log stays under the size
// threshold. The ticker runs on the server clock, so simulated runs
// checkpoint on virtual time.
func (s *Server) snapshotLoop() {
	defer s.wg.Done()
	t := sim.NewTicker(s.clock, s.snapshotInterval())
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if s.wal != nil && s.wal.Dirty() {
				s.checkpoint()
			}
		case <-s.stopSnapshots:
			return
		}
	}
}

// exportState snapshots the deployments for persistence, sorted by name.
func (m *matrix) exportState() []persistedDeployment {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]persistedDeployment, 0, len(m.deployments))
	for _, d := range m.deployments {
		out = append(out, exportDeploymentLocked(d))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// exportDeployment snapshots one deployment — the payload of a
// "deploy" journal record.
func (m *matrix) exportDeployment(name string) (persistedDeployment, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	d, ok := m.deployments[name]
	if !ok {
		return persistedDeployment{}, false
	}
	return exportDeploymentLocked(d), true
}

func exportDeploymentLocked(d *Deployment) persistedDeployment {
	return persistedDeployment{
		Name:    d.Name,
		Owner:   d.Owner,
		Tenant:  d.Tenant,
		Links:   append([]Link(nil), d.Links...),
		Routers: append([]uint32(nil), d.Routers...),
		Damaged: d.damaged,
	}
}

// importState restores deployment records without installing any routes:
// every restored router starts offline, and the routes reinstall through
// the normal re-join reconciliation as agents redial.
func (m *matrix) importState(deps []persistedDeployment) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, pd := range deps {
		if pd.Name == "" {
			continue
		}
		if _, dup := m.deployments[pd.Name]; dup {
			continue
		}
		m.installPersistedLocked(pd)
	}
}

// applyDeployment upserts a journaled deployment during replay. An
// existing record under the same name is torn down first (replaying a
// record the snapshot already contains, or a redeploy after reclaim),
// which is what makes the record idempotent.
func (m *matrix) applyDeployment(pd persistedDeployment) {
	if pd.Name == "" {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.deployments[pd.Name]; ok {
		m.teardownLocked(pd.Name)
	}
	m.installPersistedLocked(pd)
}

// applyTeardown removes a journaled teardown's deployment; a missing
// record (already torn down in the snapshot) is a no-op.
func (m *matrix) applyTeardown(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.deployments[name]; ok {
		m.teardownLocked(name)
	}
}

// installPersistedLocked inserts a persisted deployment with no routes
// (recovery leaves route installation to re-join reconciliation).
func (m *matrix) installPersistedLocked(pd persistedDeployment) {
	d := &Deployment{
		Name:    pd.Name,
		Owner:   pd.Owner,
		Tenant:  pd.Tenant,
		Links:   append([]Link(nil), pd.Links...),
		Routers: append([]uint32(nil), pd.Routers...),
		damaged: pd.Damaged,
	}
	m.deployments[pd.Name] = d
	for _, rid := range d.Routers {
		m.routerOwner[rid] = pd.Name
	}
	mDeploymentsActive.Inc()
}
