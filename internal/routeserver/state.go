package routeserver

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"time"

	"rnl/internal/sim"
)

// DefaultSnapshotInterval is the periodic state-snapshot cadence — a
// backstop behind the on-mutation snapshots, bounding how stale the
// on-disk state can get if a mutation path ever misses a persist call.
const DefaultSnapshotInterval = 30 * time.Second

// stateFile is the snapshot filename inside Options.StateDir.
const stateFile = "routeserver.json"

// persistedDeployment is a Deployment with its damage marker exported.
type persistedDeployment struct {
	Name    string   `json:"name"`
	Owner   string   `json:"owner,omitempty"`
	Tenant  string   `json:"tenant,omitempty"`
	Links   []Link   `json:"links"`
	Routers []uint32 `json:"routers"`
	Damaged bool     `json:"damaged,omitempty"`
}

// persistedState is the on-disk control-plane snapshot. Router records
// carry their assigned wire IDs and the ID allocators ride along, so
// agents redialing a restarted server get identical assignments and the
// restored deployments' routes reinstall unchanged.
type persistedState struct {
	SavedAt     time.Time             `json:"saved_at"`
	NextRouter  uint32                `json:"next_router"`
	NextPort    uint32                `json:"next_port"`
	Routers     []RouterInfo          `json:"routers"`
	Deployments []persistedDeployment `json:"deployments"`
}

func (s *Server) statePath() string { return filepath.Join(s.opts.StateDir, stateFile) }

// persist writes a state snapshot if a StateDir is configured. Mutation
// paths call it outside the registry/matrix locks; failures are logged,
// not fatal — the server keeps serving from memory.
func (s *Server) persist() {
	if s.opts.StateDir == "" {
		return
	}
	if err := s.saveState(); err != nil {
		s.log.Warn("state snapshot failed", "err", err)
	}
}

// saveState writes the snapshot atomically — temp file in the same
// directory, then rename — so a crash mid-write never corrupts the
// previous snapshot (the same pattern the design store uses).
func (s *Server) saveState() error {
	s.saveMu.Lock()
	defer s.saveMu.Unlock()
	st := persistedState{SavedAt: s.clock.Now()}
	st.Routers, st.NextRouter, st.NextPort = s.reg.exportState()
	st.Deployments = s.matrix.exportState()
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	tmp := s.statePath() + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, s.statePath())
}

// loadState restores the snapshot at construction time. Missing state is
// a fresh start; corrupt state is logged and skipped — an empty server
// is always safe to run.
func (s *Server) loadState() {
	if err := os.MkdirAll(s.opts.StateDir, 0o755); err != nil {
		s.log.Warn("state dir unavailable", "dir", s.opts.StateDir, "err", err)
		return
	}
	data, err := os.ReadFile(s.statePath())
	if err != nil {
		if !os.IsNotExist(err) {
			s.log.Warn("state snapshot unreadable", "path", s.statePath(), "err", err)
		}
		return
	}
	var st persistedState
	if err := json.Unmarshal(data, &st); err != nil {
		s.log.Warn("state snapshot corrupt; starting empty", "path", s.statePath(), "err", err)
		return
	}
	s.reg.importState(st.Routers, st.NextRouter, st.NextPort)
	s.matrix.importState(st.Deployments)
	s.log.Info("restored control-plane state", "routers", len(st.Routers),
		"deployments", len(st.Deployments), "saved_at", st.SavedAt)
}

// snapshotInterval resolves the periodic snapshot cadence.
func (s *Server) snapshotInterval() time.Duration {
	if s.opts.SnapshotInterval > 0 {
		return s.opts.SnapshotInterval
	}
	return DefaultSnapshotInterval
}

// snapshotLoop persists periodically until Close. The ticker runs on the
// server clock, so simulated runs snapshot on virtual time.
func (s *Server) snapshotLoop() {
	defer s.wg.Done()
	t := sim.NewTicker(s.clock, s.snapshotInterval())
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.persist()
		case <-s.stopSnapshots:
			return
		}
	}
}

// exportState snapshots the deployments for persistence, sorted by name.
func (m *matrix) exportState() []persistedDeployment {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]persistedDeployment, 0, len(m.deployments))
	for _, d := range m.deployments {
		out = append(out, persistedDeployment{
			Name:    d.Name,
			Owner:   d.Owner,
			Tenant:  d.Tenant,
			Links:   append([]Link(nil), d.Links...),
			Routers: append([]uint32(nil), d.Routers...),
			Damaged: d.damaged,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// importState restores deployment records without installing any routes:
// every restored router starts offline, and the routes reinstall through
// the normal re-join reconciliation as agents redial.
func (m *matrix) importState(deps []persistedDeployment) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, pd := range deps {
		if pd.Name == "" {
			continue
		}
		if _, dup := m.deployments[pd.Name]; dup {
			continue
		}
		d := &Deployment{
			Name:    pd.Name,
			Owner:   pd.Owner,
			Tenant:  pd.Tenant,
			Links:   append([]Link(nil), pd.Links...),
			Routers: append([]uint32(nil), pd.Routers...),
			damaged: pd.Damaged,
		}
		m.deployments[pd.Name] = d
		for _, rid := range d.Routers {
			m.routerOwner[rid] = pd.Name
		}
		mDeploymentsActive.Inc()
	}
}
