package routeserver

// White-box tests for atomic deployment takeover. The old reclaim path
// (Deployer.reclaimExpired) listed blockers, tore them down, then
// deployed — three separate matrix critical sections, so two deployers
// racing for the same expired lab could both tear it down and the loser's
// deploy would clobber the winner's. deployReclaiming folds decision,
// teardown and install into one critical section; these tests pin the
// all-or-nothing semantics and the single-winner guarantee.

import (
	"fmt"
	"sync"
	"testing"
)

func anyPortOK(PortKey) bool { return true }

func TestDeployReclaimingRefusesUnreclaimableBlocker(t *testing.T) {
	m := newMatrix()
	p1, p2, p5 := PortKey{Router: 1, Port: 10}, PortKey{Router: 2, Port: 20}, PortKey{Router: 5, Port: 50}
	if err := m.deploy(DeploySpec{Name: "A", Owner: "alice"}, []Link{{A: p1, B: p2}}, anyPortOK); err != nil {
		t.Fatal(err)
	}
	reclaimNone := func(Deployment) bool { return false }
	if _, err := m.deployReclaiming(DeploySpec{Name: "B", Owner: "bob"}, []Link{{A: p2, B: p5}}, anyPortOK, reclaimNone); err == nil {
		t.Fatal("takeover of an unreclaimable lab succeeded")
	}
	// A must be fully intact.
	if dst, ok := m.lookup(p1); !ok || dst != p2 {
		t.Fatalf("blocker lost its route: lookup(%s) = %v, %v", p1, dst, ok)
	}
	if n := m.count(); n != 1 {
		t.Fatalf("deployments = %d, want 1", n)
	}
}

func TestDeployReclaimingAtomicTakeover(t *testing.T) {
	m := newMatrix()
	p1, p2 := PortKey{Router: 1, Port: 10}, PortKey{Router: 2, Port: 20}
	p3, p4 := PortKey{Router: 3, Port: 30}, PortKey{Router: 4, Port: 40}
	p5 := PortKey{Router: 5, Port: 50}
	if err := m.deploy(DeploySpec{Name: "A", Owner: "alice"}, []Link{{A: p1, B: p2}}, anyPortOK); err != nil {
		t.Fatal(err)
	}
	if err := m.deploy(DeploySpec{Name: "C", Owner: "carol"}, []Link{{A: p3, B: p4}}, anyPortOK); err != nil {
		t.Fatal(err)
	}

	reclaimA := func(d Deployment) bool { return d.Name == "A" }
	reclaimed, err := m.deployReclaiming(DeploySpec{Name: "B", Owner: "bob"}, []Link{{A: p2, B: p5}}, anyPortOK, reclaimA)
	if err != nil {
		t.Fatal(err)
	}
	if len(reclaimed) != 1 || reclaimed[0] != "A" {
		t.Fatalf("reclaimed = %v, want [A]", reclaimed)
	}
	if _, ok := m.lookup(p1); ok {
		t.Fatal("reclaimed lab's route survived the takeover")
	}
	if dst, ok := m.lookup(p2); !ok || dst != p5 {
		t.Fatalf("takeover route missing: lookup(%s) = %v, %v", p2, dst, ok)
	}
	m.mu.RLock()
	owner2 := m.routerOwner[2]
	m.mu.RUnlock()
	if owner2 != "B" {
		t.Fatalf("router 2 owned by %q after takeover, want B", owner2)
	}
	// C, an innocent bystander, is untouched.
	if dst, ok := m.lookup(p3); !ok || dst != p4 {
		t.Fatal("unrelated deployment lost its route")
	}

	// All-or-nothing: E needs both B (reclaimable) and C (not). Nothing
	// may be torn down.
	reclaimB := func(d Deployment) bool { return d.Name == "B" }
	if _, err := m.deployReclaiming(DeploySpec{Name: "E", Owner: "eve"}, []Link{{A: p2, B: p4}}, anyPortOK, reclaimB); err == nil {
		t.Fatal("partial takeover succeeded")
	}
	if dst, ok := m.lookup(p2); !ok || dst != p5 {
		t.Fatal("reclaimable-but-spared lab was torn down in a failed takeover")
	}
	if dst, ok := m.lookup(p3); !ok || dst != p4 {
		t.Fatal("unreclaimable lab was torn down in a failed takeover")
	}
}

// TestConcurrentReclaimSingleWinner races two deployers for the same
// expired lab over many iterations (run under -race in tier-1). Exactly
// one must win; the loser must see the winner's fresh deployment as an
// unreclaimable blocker and fail without damaging it.
func TestConcurrentReclaimSingleWinner(t *testing.T) {
	p1, p2 := PortKey{Router: 1, Port: 10}, PortKey{Router: 2, Port: 20}
	for i := 0; i < 100; i++ {
		m := newMatrix()
		if err := m.deploy(DeploySpec{Name: "victim", Owner: "expired-user"}, []Link{{A: p1, B: p2}}, anyPortOK); err != nil {
			t.Fatal(err)
		}
		canReclaim := func(d Deployment) bool { return d.Name == "victim" }
		errs := make([]error, 2)
		var wg sync.WaitGroup
		for j := 0; j < 2; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				_, errs[j] = m.deployReclaiming(DeploySpec{Name: fmt.Sprintf("taker-%d", j), Owner: "user"},
					[]Link{{A: p1, B: p2}}, anyPortOK, canReclaim)
			}(j)
		}
		wg.Wait()
		wins := 0
		for _, err := range errs {
			if err == nil {
				wins++
			}
		}
		if wins != 1 {
			t.Fatalf("iteration %d: %d winners (errs=%v), want exactly 1", i, wins, errs)
		}
		deps := m.list()
		if len(deps) != 1 {
			t.Fatalf("iteration %d: %d deployments left, want 1", i, len(deps))
		}
		if dst, ok := m.lookup(p1); !ok || dst != p2 {
			t.Fatalf("iteration %d: winner's route damaged", i)
		}
	}
}
