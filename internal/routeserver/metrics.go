package routeserver

import "rnl/internal/obs"

// Process-wide route-server metrics, aggregated across every Server in
// the process (production runs one; tests run many). Per-server numbers
// stay in Stats / StatsSnapshot; these mirror them for /metrics.
var (
	mSessionsActive = obs.Default().Gauge("rnl_routeserver_sessions_active",
		"RIS tunnel sessions currently connected.")
	mSessionsTotal = obs.Default().Counter("rnl_routeserver_sessions_total",
		"RIS tunnel sessions accepted since start.")
	mRoutersRegistered = obs.Default().Gauge("rnl_routeserver_routers_registered",
		"Routers currently registered in the inventory.")
	mPortsRegistered = obs.Default().Gauge("rnl_routeserver_ports_registered",
		"Router ports currently registered in the inventory.")
	mDeploymentsActive = obs.Default().Gauge("rnl_routeserver_deployments_active",
		"Deployed test labs currently wired in the routing matrix.")
	mPacketsForwarded = obs.Default().Counter("rnl_routeserver_packets_forwarded_total",
		"Frames forwarded port-to-port through the routing matrix.")
	mBytesForwarded = obs.Default().Counter("rnl_routeserver_bytes_forwarded_total",
		"Payload bytes forwarded port-to-port through the routing matrix.")
	mPacketsNoRoute = obs.Default().Counter("rnl_routeserver_packets_no_route_total",
		"Frames arriving on ports with no wire in the routing matrix.")
	mPacketsInjected = obs.Default().Counter("rnl_routeserver_packets_injected_total",
		"Frames injected by the traffic-generation module.")
	mPacketsCaptured = obs.Default().Counter("rnl_routeserver_packets_captured_total",
		"Frames delivered to software capture taps.")
	mPacketsDropped = obs.Default().Counter("rnl_routeserver_packets_dropped_total",
		"Frames shed by per-session tunnel send queues under backpressure.")
	mPacketsThrottled = obs.Default().Counter("rnl_routeserver_packets_throttled_total",
		"Frames refused by per-lab token-bucket rate limiters on the fan-out path.")
	mPacketsLostDatagram = obs.Default().Counter("rnl_routeserver_packets_lost_datagram_total",
		"Frames dropped on the best-effort datagram data plane (loss hook or send error).")
	mStreamsActive = obs.Default().Gauge("rnl_routeserver_streams_active",
		"Traffic-generation streams currently running.")
	mStreamInjections = obs.Default().Counter("rnl_routeserver_stream_injections_total",
		"Frames injected by rate-controlled traffic streams.")
	mRoutersOffline = obs.Default().Gauge("rnl_routeserver_routers_offline",
		"Registered routers currently offline, awaiting RIS re-join within the grace period.")
	mRecoveries = obs.Default().Counter("rnl_routeserver_recoveries_total",
		"Routers that re-joined within the grace period and had their lab state reconciled.")
	mLabsLost = obs.Default().Counter("rnl_routeserver_labs_lost_total",
		"Deployed labs that permanently lost a router (grace expired or grace disabled).")
	mFwdRebuilds = obs.Default().Counter("rnl_routeserver_fwd_rebuilds_total",
		"Forwarding-snapshot rebuilds published (coalesced control-plane mutations).")
	mFwdGeneration = obs.Default().Gauge("rnl_routeserver_fwd_generation",
		"Control-plane mutation generation covered by the published forwarding snapshot.")
	mFwdLatency = obs.Default().Histogram("rnl_routeserver_fwd_latency_seconds",
		"Route-server forwarding latency: matrix lookup to send-queue handoff.", obs.LatencyBuckets)
	mStateErrors = obs.Default().Counter("rnl_routeserver_state_errors_total",
		"Control-plane persistence failures (journal appends, snapshots, recovery): the server keeps serving from memory.")
)

// metricNamePart makes a tenant ID safe for embedding in a dynamic
// metric name (rnl_tenant_*): anything outside the registry's allowed
// alphabet becomes '_'. Digits are fine — the part always follows a
// static prefix, never starts the name.
func metricNamePart(s string) string {
	out := []byte(s)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// Health is the route server's liveness view, served on /healthz.
type Health struct {
	// Listening reports the RIS tunnel accept loop is up.
	Listening bool `json:"listening"`
	// Sessions is the number of connected RIS tunnels.
	Sessions int `json:"sessions"`
	// Routers is the number of registered routers.
	Routers int `json:"routers"`
	// Offline is how many registered routers are offline, awaiting a
	// RIS re-join within the grace period.
	Offline int `json:"offline"`
	// Deployments is the number of active deployed labs.
	Deployments int `json:"deployments"`
	// Degraded reports the server is running on memory only: a state
	// directory is configured but the mutation log could not be opened,
	// or the last DegradedAfterFailures journal writes in a row failed.
	// The server still serves traffic — this is an operator signal, not
	// a liveness failure — but a crash now loses mutations.
	Degraded bool `json:"degraded,omitempty"`
	// StateErrors is how many consecutive journal writes have failed
	// (0 while persistence is healthy or unconfigured).
	StateErrors uint32 `json:"state_errors,omitempty"`
}

// Health reports whether the accept loop is up and how much the server
// currently holds. A server that never listened, or whose listener
// died, reports Listening=false.
func (s *Server) Health() Health {
	s.mu.RLock()
	sessions := len(s.sessions)
	s.mu.RUnlock()
	fails := s.walFails.Load()
	return Health{
		Listening:   s.accepting.Load(),
		Sessions:    sessions,
		Routers:     s.reg.count(),
		Offline:     s.reg.countOffline(),
		Deployments: s.matrix.count(),
		Degraded:    s.opts.StateDir != "" && (s.wal == nil || fails >= DegradedAfterFailures),
		StateErrors: fails,
	}
}
