package routeserver

// White-box regression tests for the control-plane correctness fixes:
// registry reads racing firmware updates, matrix state after a router
// drop, and prompt stream cancellation. They live in the routeserver
// package (not routeserver_test) because they pin internal invariants —
// route-map ownership and deployment pruning — that the public API only
// exposes indirectly.

import (
	"io"
	"log/slog"
	"sync"
	"testing"
	"time"
)

func quietServer() *Server {
	return New(Options{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
}

// TestFirmwareUpdateRace runs SetRouterFirmware concurrently with every
// registry read path. Before registry reads returned defensive copies,
// RouterByName handed out the live *RouterInfo and callers read
// r.Firmware outside the lock — a data race the race detector flags.
func TestFirmwareUpdateRace(t *testing.T) {
	s := quietServer()
	s.reg.add(1, RouterInfo{Name: "r1", Ports: []PortInfo{{Name: "e0"}, {Name: "e1"}}})

	const iters = 200
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		versions := []string{"12.0", "12.1", "12.2"}
		for i := 0; i < iters; i++ {
			if !s.SetRouterFirmware("r1", versions[i%len(versions)]) {
				t.Error("SetRouterFirmware lost the router")
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			r, ok := s.RouterByName("r1")
			if !ok {
				t.Error("RouterByName lost the router")
				return
			}
			_ = r.Firmware
			_, _ = r.PortByName("e0")
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			for _, r := range s.Inventory() {
				_ = r.Firmware
				_ = r.Ports
			}
		}
	}()
	wg.Wait()
}

// TestRouterInfoCopiesAreIndependent checks that mutating a returned
// record (or its port slice) never leaks back into the registry.
func TestRouterInfoCopiesAreIndependent(t *testing.T) {
	s := quietServer()
	s.reg.add(1, RouterInfo{Name: "r1", Firmware: "12.0", Ports: []PortInfo{{Name: "e0"}}})

	r, ok := s.RouterByName("r1")
	if !ok {
		t.Fatal("router missing")
	}
	r.Firmware = "hacked"
	r.Ports[0].Name = "hacked"

	again, _ := s.RouterByName("r1")
	if again.Firmware != "12.0" || again.Ports[0].Name != "e0" {
		t.Errorf("registry mutated through returned copy: %+v", again)
	}
}

// TestTeardownAfterDropLeavesReusedPortsWired reproduces the stale-
// deployment bug: router 2 vanishes while deployment D is active, its
// port key is later rewired by deployment E, and then D is torn down.
// The stale D record must not delete E's route or re-free E's router.
func TestTeardownAfterDropLeavesReusedPortsWired(t *testing.T) {
	m := newMatrix()
	anyPort := func(PortKey) bool { return true }
	p1, p2, p3 := PortKey{Router: 1, Port: 10}, PortKey{Router: 2, Port: 20}, PortKey{Router: 3, Port: 30}

	if err := m.deploy(DeploySpec{Name: "D", Owner: "alice"}, []Link{{A: p1, B: p2}}, anyPort); err != nil {
		t.Fatal(err)
	}
	m.dropRouter(2) // RIS for router 2 vanished

	// The surviving deployment record must already be pruned.
	for _, d := range m.list() {
		if d.Name == "D" {
			if len(d.Links) != 0 {
				t.Errorf("dropRouter left stale links in D: %+v", d.Links)
			}
			if len(d.Routers) != 1 || d.Routers[0] != 1 {
				t.Errorf("dropRouter left stale routers in D: %v", d.Routers)
			}
		}
	}

	// Port key 2.20 gets reused by a new deployment (the registry hands
	// out monotonic IDs, but the matrix must not depend on that).
	if err := m.deploy(DeploySpec{Name: "E", Owner: "bob"}, []Link{{A: p2, B: p3}}, anyPort); err != nil {
		t.Fatal(err)
	}
	if err := m.teardown("D"); err != nil {
		t.Fatal(err)
	}

	// E's wire must have survived D's teardown, in both directions.
	if dst, ok := m.lookup(p2); !ok || dst != p3 {
		t.Errorf("lookup(%s) = %v, %v; want %s", p2, dst, ok, p3)
	}
	if dst, ok := m.lookup(p3); !ok || dst != p2 {
		t.Errorf("lookup(%s) = %v, %v; want %s", p3, dst, ok, p2)
	}
	// And E must still own routers 2 and 3 — D's teardown must not have
	// re-freed them for a third deployment to grab.
	m.mu.RLock()
	owner2, owner3 := m.routerOwner[2], m.routerOwner[3]
	m.mu.RUnlock()
	if owner2 != "E" || owner3 != "E" {
		t.Errorf("router owners after teardown = %q, %q; want E, E", owner2, owner3)
	}
	if err := m.teardown("E"); err != nil {
		t.Fatal(err)
	}
	if n := m.count(); n != 0 {
		t.Errorf("deployments left after full teardown: %d", n)
	}
}

// TestStreamStopPrompt pins the stop latency: at 1 pps the old
// implementation only noticed a stop flag after the next ticker fire, so
// Stop could take a full second to close Done. With the stop channel it
// must be near-immediate.
func TestStreamStopPrompt(t *testing.T) {
	s := quietServer()
	info, _ := s.reg.add(1, RouterInfo{Name: "r1", Ports: []PortInfo{{Name: "e0"}}})
	pk := PortKey{Router: info.ID, Port: info.Ports[0].ID}

	st, err := s.StartStream(pk, []byte{0xde, 0xad}, 1 /* pps */, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the generator reach its ticker wait
	start := time.Now()
	st.Stop()
	select {
	case <-st.Done():
	case <-time.After(500 * time.Millisecond):
		t.Fatal("stream still running 500ms after Stop; stop should not wait for the next tick")
	}
	if d := time.Since(start); d > 200*time.Millisecond {
		t.Errorf("Stop took %v to close Done; want well under the 1s tick interval", d)
	}
	if st.Running() {
		t.Error("Running() true after Done closed")
	}
	st.Stop() // idempotent
}
