package routeserver

// Tests for the RCU-style forwarding snapshot: freshness (a control-plane
// mutation is visible to the fast path by the time the mutator returns —
// "within one generation"), and a churn race proving the consistency
// contract under -race: deploy/teardown/capture/session-drop concurrent
// with forwarding never delivers a frame on a torn-down wire and never
// loses accounting (injected == forwarded + no_route + throttled).

import (
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"rnl/internal/wire"
)

func newFwdTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	s := New(opts)
	t.Cleanup(s.Close)
	return s
}

func packetFor(src PortKey) []byte {
	return wire.EncodePacket(wire.PacketMsg{
		RouterID: src.Router, PortID: src.Port, Data: []byte("fwd-test-frame"),
	})
}

// TestFwdSnapshotFreshness: when Deploy returns, the published snapshot
// already routes the new wires; when Teardown returns, it no longer
// does, and a frame injected on the torn wire is counted no_route, not
// forwarded. This is the "at most one generation stale" contract made
// concrete: the mutator's own return is the generation boundary.
func TestFwdSnapshotFreshness(t *testing.T) {
	s := newFwdTestServer(t, Options{})
	sessA, portsA := addBenchSession(t, s, "fresh-pc0")
	_, portsB := addBenchSession(t, s, "fresh-pc1")

	snap := s.fwdSnapshot()
	if _, ok := snap.routes[portsA[0]]; ok {
		t.Fatal("route present before any deployment")
	}
	genBefore := snap.gen

	if err := s.Deploy("fresh", []Link{{A: portsA[0], B: portsB[1]}}); err != nil {
		t.Fatal(err)
	}
	snap = s.fwdSnapshot()
	if snap.gen <= genBefore {
		t.Fatalf("generation did not advance on deploy: %d -> %d", genBefore, snap.gen)
	}
	if got := s.fwdGen.Load(); snap.gen != got {
		t.Fatalf("published generation %d lags requested %d after mutator returned", snap.gen, got)
	}
	e, ok := snap.routes[portsA[0]]
	if !ok {
		t.Fatal("deployed wire missing from snapshot after Deploy returned")
	}
	if e.dst != portsB[1] || e.sess == nil || e.lab != "fresh" {
		t.Fatalf("bad snapshot entry: dst=%v sess=%p lab=%q", e.dst, e.sess, e.lab)
	}
	if _, ok := snap.routes[portsB[1]]; !ok {
		t.Fatal("reverse direction missing from snapshot")
	}

	// Forward one frame through the snapshot path to prove it is live.
	fwd0 := s.stats.PacketsForwarded.Load()
	s.handlePacket(sessA, packetFor(portsA[0]))
	if got := s.stats.PacketsForwarded.Load(); got != fwd0+1 {
		t.Fatalf("frame on deployed wire not forwarded: %d -> %d", fwd0, got)
	}

	if err := s.Teardown("fresh"); err != nil {
		t.Fatal(err)
	}
	snap = s.fwdSnapshot()
	if _, ok := snap.routes[portsA[0]]; ok {
		t.Fatal("torn-down wire still routed after Teardown returned")
	}
	fwd1 := s.stats.PacketsForwarded.Load()
	nr0 := s.stats.PacketsNoRoute.Load()
	const probes = 64
	for i := 0; i < probes; i++ {
		s.handlePacket(sessA, packetFor(portsA[0]))
	}
	if got := s.stats.PacketsForwarded.Load(); got != fwd1 {
		t.Fatalf("packet delivered on torn-down wire: forwarded %d -> %d", fwd1, got)
	}
	if got := s.stats.PacketsNoRoute.Load(); got != nr0+probes {
		t.Fatalf("torn-down probes not counted no_route: %d -> %d (want +%d)", nr0, got, probes)
	}
}

// TestFwdRebuildCoalescing: a burst of sequential mutations always
// leaves the published snapshot at the requested generation, and the
// invariant published <= requested holds at every step (rebuilds may
// coalesce, never run ahead).
func TestFwdRebuildCoalescing(t *testing.T) {
	s := newFwdTestServer(t, Options{})
	_, portsA := addBenchSession(t, s, "coal-pc0")
	_, portsB := addBenchSession(t, s, "coal-pc1")
	link := []Link{{A: portsA[0], B: portsB[1]}}
	for i := 0; i < 20; i++ {
		if err := s.Deploy("coal", link); err != nil {
			t.Fatal(err)
		}
		if snap, want := s.fwdSnapshot(), s.fwdGen.Load(); snap.gen > want {
			t.Fatalf("published generation %d ahead of requested %d", snap.gen, want)
		}
		if err := s.Teardown("coal"); err != nil {
			t.Fatal(err)
		}
		if snap, want := s.fwdSnapshot(), s.fwdGen.Load(); snap.gen != want {
			t.Fatalf("iteration %d: published %d != requested %d after quiesce", i, snap.gen, want)
		}
	}
}

// TestFwdChurnConservation hammers the fast path while the control plane
// churns underneath it: one lab stays up, another is deployed and torn
// down in a tight loop, capture taps come and go, and one session is
// dropped mid-test. Under -race this doubles as the data/control-plane
// race test; the accounting check proves no frame is ever lost or
// double-counted across snapshot swaps.
func TestFwdChurnConservation(t *testing.T) {
	s := newFwdTestServer(t, Options{})
	const nSess = 4
	sessions := make([]*session, nSess)
	ports := make([][]PortKey, nSess)
	for i := 0; i < nSess; i++ {
		sessions[i], ports[i] = addBenchSession(t, s, fmt.Sprintf("churn-pc%d", i))
	}
	// Stable lab on sessions 0/1; churned lab on sessions 2/3.
	if err := s.Deploy("stable", []Link{{A: ports[0][0], B: ports[1][1]}}); err != nil {
		t.Fatal(err)
	}
	churnLinks := []Link{{A: ports[2][0], B: ports[3][1]}}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var injected atomic.Uint64

	// Injectors: two on the stable wire, two on the churned wire.
	inject := func(sess *session, src PortKey) {
		defer wg.Done()
		payload := packetFor(src)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.handlePacket(sess, payload)
			injected.Add(1)
		}
	}
	wg.Add(4)
	go inject(sessions[0], ports[0][0])
	go inject(sessions[1], ports[1][1])
	go inject(sessions[2], ports[2][0])
	go inject(sessions[3], ports[3][1])

	// Control-plane churn: deploy/teardown the second lab continuously.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Deploy("churn", churnLinks); err != nil {
				t.Errorf("deploy churn: %v", err)
				return
			}
			if err := s.Teardown("churn"); err != nil {
				t.Errorf("teardown churn: %v", err)
				return
			}
		}
	}()

	// Capture churn: tap the stable wire, drain, stop, repeat.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			c := s.CapturePort(ports[0][0], 64)
			for i := 0; i < 32; i++ {
				select {
				case <-c.Packets():
				default:
				}
			}
			c.Stop()
		}
	}()

	// Let everything collide for a while, then drop session 3 mid-churn:
	// frames routed to its ports must flip to no_route, never crash or
	// reach a freed session.
	for injected.Load() < 20000 {
		runtime.Gosched()
	}
	s.dropSession(sessions[3])
	for start := injected.Load(); injected.Load() < start+20000; {
		runtime.Gosched()
	}
	close(stop)
	wg.Wait()
	s.Teardown("churn") // may or may not be deployed; either is fine

	total := injected.Load()
	accounted := s.stats.PacketsForwarded.Load() +
		s.stats.PacketsNoRoute.Load() +
		s.stats.PacketsThrottled.Load()
	if total != accounted {
		t.Fatalf("conservation violated: injected %d != forwarded+no_route+throttled %d", total, accounted)
	}

	// Post-drop probe: the dropped session's wire must be dead.
	if err := s.Deploy("churn", churnLinks); err == nil {
		fwd := s.stats.PacketsForwarded.Load()
		nr := s.stats.PacketsNoRoute.Load()
		s.handlePacket(sessions[2], packetFor(ports[2][0]))
		if got := s.stats.PacketsForwarded.Load(); got != fwd {
			t.Fatalf("frame delivered toward dropped session: forwarded %d -> %d", fwd, got)
		}
		if got := s.stats.PacketsNoRoute.Load(); got != nr+1 {
			t.Fatalf("frame toward dropped session not counted no_route")
		}
	}
}
