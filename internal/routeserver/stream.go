package routeserver

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Stream is a running traffic-generation stream: the software IXIA the
// paper's web-services API replaces ("RNL can generate traffic on any
// wire and it can generate traffic in only one direction").
type Stream struct {
	port     PortKey
	fromPort bool

	sent     atomic.Uint64
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
	once     sync.Once
}

// Sent reports frames injected so far.
func (st *Stream) Sent() uint64 { return st.sent.Load() }

// Done is closed when the stream finishes or is stopped.
func (st *Stream) Done() <-chan struct{} { return st.done }

// Running reports whether the stream is still injecting.
func (st *Stream) Running() bool {
	select {
	case <-st.done:
		return false
	default:
		return true
	}
}

// Stop halts the stream; idempotent. The generator selects on the stop
// channel alongside its ticker, so Done closes promptly instead of after
// up to a full inter-packet interval (~1 s at 1 pps).
func (st *Stream) Stop() {
	st.stopOnce.Do(func() { close(st.stop) })
}

// StartStream injects count copies of frame at the given rate
// (packets/second). count <= 0 means run until stopped. fromPort selects
// wire-side injection (see InjectFromPort); otherwise frames are
// delivered to the port.
func (s *Server) StartStream(port PortKey, frame []byte, pps, count int, fromPort bool) (*Stream, error) {
	if !s.reg.portExists(port) {
		return nil, fmt.Errorf("routeserver: port %s not registered", port)
	}
	if pps <= 0 {
		return nil, fmt.Errorf("routeserver: stream rate must be positive, got %d", pps)
	}
	if len(frame) == 0 {
		return nil, fmt.Errorf("routeserver: stream needs a frame")
	}
	frameCopy := append([]byte(nil), frame...)
	st := &Stream{port: port, fromPort: fromPort, stop: make(chan struct{}), done: make(chan struct{})}
	inject := s.InjectPacket
	if fromPort {
		inject = s.InjectFromPort
	}
	interval := time.Second / time.Duration(pps)
	if interval <= 0 {
		interval = time.Microsecond
	}
	mStreamsActive.Inc()
	go func() {
		defer mStreamsActive.Dec()
		defer st.once.Do(func() { close(st.done) })
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for count <= 0 || st.sent.Load() < uint64(count) {
			select {
			case <-st.stop:
				return
			case <-ticker.C:
			}
			select {
			case <-st.stop:
				return
			default:
			}
			if err := inject(port, frameCopy); err != nil {
				return // port vanished (RIS left)
			}
			st.sent.Add(1)
			mStreamInjections.Inc()
		}
	}()
	return st, nil
}
