package routeserver

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Stream is a running traffic-generation stream: the software IXIA the
// paper's web-services API replaces ("RNL can generate traffic on any
// wire and it can generate traffic in only one direction").
type Stream struct {
	port     PortKey
	fromPort bool

	sent    atomic.Uint64
	stopped atomic.Bool
	done    chan struct{}
	once    sync.Once
}

// Sent reports frames injected so far.
func (st *Stream) Sent() uint64 { return st.sent.Load() }

// Done is closed when the stream finishes or is stopped.
func (st *Stream) Done() <-chan struct{} { return st.done }

// Running reports whether the stream is still injecting.
func (st *Stream) Running() bool {
	select {
	case <-st.done:
		return false
	default:
		return true
	}
}

// Stop halts the stream; idempotent.
func (st *Stream) Stop() {
	st.stopped.Store(true)
	// done is closed by the generator goroutine when it notices; for
	// prompt Stop-before-start edge cases the goroutine also checks
	// stopped before every frame.
}

// StartStream injects count copies of frame at the given rate
// (packets/second). count <= 0 means run until stopped. fromPort selects
// wire-side injection (see InjectFromPort); otherwise frames are
// delivered to the port.
func (s *Server) StartStream(port PortKey, frame []byte, pps, count int, fromPort bool) (*Stream, error) {
	if !s.reg.portExists(port) {
		return nil, fmt.Errorf("routeserver: port %s not registered", port)
	}
	if pps <= 0 {
		return nil, fmt.Errorf("routeserver: stream rate must be positive, got %d", pps)
	}
	if len(frame) == 0 {
		return nil, fmt.Errorf("routeserver: stream needs a frame")
	}
	frameCopy := append([]byte(nil), frame...)
	st := &Stream{port: port, fromPort: fromPort, done: make(chan struct{})}
	inject := s.InjectPacket
	if fromPort {
		inject = s.InjectFromPort
	}
	interval := time.Second / time.Duration(pps)
	if interval <= 0 {
		interval = time.Microsecond
	}
	go func() {
		defer st.once.Do(func() { close(st.done) })
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for count <= 0 || st.sent.Load() < uint64(count) {
			if st.stopped.Load() {
				return
			}
			<-ticker.C
			if st.stopped.Load() {
				return
			}
			if err := inject(port, frameCopy); err != nil {
				return // port vanished (RIS left)
			}
			st.sent.Add(1)
		}
	}()
	return st, nil
}
