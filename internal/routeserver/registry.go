// Package routeserver implements RNL's central back-end (paper §2.3): it
// accepts tunnel connections from RIS agents, keeps the registry of
// available routers and ports, holds the routing matrix built from
// deployed designs, forwards captured frames between router ports, and
// hosts the traffic capture and generation modules.
package routeserver

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"rnl/internal/sim"
)

// PortKey uniquely identifies a router port in the labs.
type PortKey struct {
	Router uint32
	Port   uint32
}

func (k PortKey) String() string { return fmt.Sprintf("%d.%d", k.Router, k.Port) }

// PortInfo is a registered router port.
type PortInfo struct {
	ID          uint32 `json:"id"`
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	NIC         string `json:"nic,omitempty"`
	Rect        [4]int `json:"rect,omitempty"`
}

// RouterInfo is a registered piece of equipment.
type RouterInfo struct {
	ID          uint32     `json:"id"`
	Name        string     `json:"name"`
	Description string     `json:"description,omitempty"`
	Model       string     `json:"model,omitempty"`
	Image       string     `json:"image,omitempty"`
	Firmware    string     `json:"firmware,omitempty"`
	HasConsole  bool       `json:"has_console"`
	Online      bool       `json:"online"`
	PC          string     `json:"pc,omitempty"`
	Ports       []PortInfo `json:"ports"`

	sessionID uint64    // owning RIS connection; 0 while offline
	epoch     uint64    // bumped on every offline transition; guards GC timers
	offlineAt time.Time // when the owning session dropped
}

// PortByName finds a port by name.
func (r *RouterInfo) PortByName(name string) (PortInfo, bool) {
	for _, p := range r.Ports {
		if p.Name == name {
			return p, true
		}
	}
	return PortInfo{}, false
}

// routerKey is a router's stable identity: the lab PC it lives behind
// plus its inventory name. A RIS that drops and redials announces the
// same key, and the registry re-issues the same wire IDs so deployed
// labs keep forwarding.
type routerKey struct {
	pc   string
	name string
}

// offlineRouter identifies one offline registry entry and the epoch of
// its offline transition, so a grace-expiry timer never collects a
// router that re-joined and went offline again in the meantime.
type offlineRouter struct {
	id    uint32
	epoch uint64
}

// registry tracks every router RNL knows about. Routers whose RIS
// disconnects stay registered but offline until the grace period expires
// ("those specialized equipment defined by users could come and go at
// any time" — coming back must not destroy a deployed lab).
type registry struct {
	clock      sim.Clock // stamps offlineAt; the server's injected clock
	mu         sync.RWMutex
	routers    map[uint32]*RouterInfo
	byKey      map[routerKey]uint32
	nameIdx    map[string]uint32 // inventory name → ID; resolving a 1000-router design must not scan the registry per port
	nameCount  map[string]int    // live records per name; >1 only for duplicate names across PCs
	nextRouter uint32
	nextPort   uint32
}

func newRegistry(clock sim.Clock) *registry {
	if clock == nil {
		clock = sim.Real{}
	}
	return &registry{
		clock:      clock,
		routers:    make(map[uint32]*RouterInfo),
		byKey:      make(map[routerKey]uint32),
		nameIdx:    make(map[string]uint32),
		nameCount:  make(map[string]int),
		nextRouter: 1,
		nextPort:   1,
	}
}

// insertNameLocked adds a record to the name index. The first record
// registered under a name stays the one by-name lookups resolve, which
// makes duplicate inventory names (same router name behind two PCs)
// deterministic instead of map-iteration-ordered.
func (g *registry) insertNameLocked(name string, id uint32) {
	g.nameCount[name]++
	if _, ok := g.nameIdx[name]; !ok {
		g.nameIdx[name] = id
	}
}

// removeNameLocked drops a record from the name index. Call it after
// the record has left g.routers. If a duplicate-named record survives,
// the index falls back to a scan to re-point at it (duplicate names
// are rare; unique names never pay the scan).
func (g *registry) removeNameLocked(name string, id uint32) {
	n := g.nameCount[name] - 1
	if n <= 0 {
		delete(g.nameCount, name)
		delete(g.nameIdx, name)
		return
	}
	g.nameCount[name] = n
	if g.nameIdx[name] != id {
		return
	}
	for rid, r := range g.routers {
		if r.Name == name && rid != id {
			g.nameIdx[name] = rid
			return
		}
	}
	delete(g.nameIdx, name)
}

// add registers a router owned by a session and returns a copy of the
// record with its assigned IDs. If the (PC, name) identity is already
// known — a RIS re-joining within the grace period, or a replacement
// connection taking over — the router keeps its wire ID and every port
// matched by name keeps its port ID; rejoined reports that case so the
// server can reconcile lab state.
func (g *registry) add(sessionID uint64, info RouterInfo) (reg RouterInfo, rejoined bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	key := routerKey{pc: info.PC, name: info.Name}
	if id, known := g.byKey[key]; known {
		old := g.routers[id]
		oldPorts := make(map[string]uint32, len(old.Ports))
		for _, p := range old.Ports {
			oldPorts[p.Name] = p.ID
		}
		info.ID = id
		for i := range info.Ports {
			if pid, ok := oldPorts[info.Ports[i].Name]; ok {
				info.Ports[i].ID = pid
			} else {
				info.Ports[i].ID = g.nextPort
				g.nextPort++
			}
		}
		info.Online = true
		info.sessionID = sessionID
		info.epoch = old.epoch
		if !old.Online {
			mRoutersOffline.Dec()
		}
		mPortsRegistered.Add(int64(len(info.Ports) - len(old.Ports)))
		r := &info
		g.routers[id] = r
		return copyInfo(r), true
	}
	info.ID = g.nextRouter
	g.nextRouter++
	for i := range info.Ports {
		info.Ports[i].ID = g.nextPort
		g.nextPort++
	}
	info.Online = true
	info.sessionID = sessionID
	r := &info
	g.routers[info.ID] = r
	g.byKey[key] = info.ID
	g.insertNameLocked(info.Name, info.ID)
	mRoutersRegistered.Inc()
	mPortsRegistered.Add(int64(len(info.Ports)))
	return copyInfo(r), false
}

// markSessionOffline flips every router owned by a session to offline,
// keeping the records (and their wire IDs) for a grace-period re-join.
func (g *registry) markSessionOffline(sessionID uint64) []offlineRouter {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []offlineRouter
	for id, r := range g.routers {
		if r.sessionID == sessionID && r.Online {
			r.Online = false
			r.sessionID = 0
			r.offlineAt = g.clock.Now()
			r.epoch++
			mRoutersOffline.Inc()
			out = append(out, offlineRouter{id: id, epoch: r.epoch})
		}
	}
	return out
}

// removeSession deletes every router owned by a session immediately (no
// grace period configured) and returns their IDs.
func (g *registry) removeSession(sessionID uint64) []uint32 {
	g.mu.Lock()
	defer g.mu.Unlock()
	var gone []uint32
	for id, r := range g.routers {
		if r.sessionID == sessionID {
			delete(g.routers, id)
			delete(g.byKey, routerKey{pc: r.PC, name: r.Name})
			g.removeNameLocked(r.Name, id)
			gone = append(gone, id)
			mRoutersRegistered.Dec()
			mPortsRegistered.Add(int64(-len(r.Ports)))
		}
	}
	return gone
}

// gcExpired deletes an offline router whose grace period ran out. The
// epoch must match the offline transition that scheduled the collection:
// a router that re-joined (and possibly went offline again) since then
// is left alone.
func (g *registry) gcExpired(id uint32, epoch uint64) (RouterInfo, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	r, ok := g.routers[id]
	if !ok || r.Online || r.epoch != epoch {
		return RouterInfo{}, false
	}
	delete(g.routers, id)
	delete(g.byKey, routerKey{pc: r.PC, name: r.Name})
	g.removeNameLocked(r.Name, id)
	mRoutersRegistered.Dec()
	mPortsRegistered.Add(int64(-len(r.Ports)))
	mRoutersOffline.Dec()
	return copyInfo(r), true
}

// offlineRouters lists the currently offline entries — used to schedule
// grace-expiry collection for routers restored from a state snapshot.
func (g *registry) offlineRouters() []offlineRouter {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []offlineRouter
	for id, r := range g.routers {
		if !r.Online {
			out = append(out, offlineRouter{id: id, epoch: r.epoch})
		}
	}
	return out
}

// countOffline reports how many registered routers are offline.
func (g *registry) countOffline() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := 0
	for _, r := range g.routers {
		if !r.Online {
			n++
		}
	}
	return n
}

// exportState snapshots the registry for persistence: all records plus
// the ID allocators, so a restarted server re-issues identical IDs.
func (g *registry) exportState() (routers []RouterInfo, nextRouter, nextPort uint32) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	routers = make([]RouterInfo, 0, len(g.routers))
	for _, r := range g.routers {
		routers = append(routers, copyInfo(r))
	}
	sort.Slice(routers, func(i, j int) bool { return routers[i].ID < routers[j].ID })
	return routers, g.nextRouter, g.nextPort
}

// importState restores persisted records. Every restored router starts
// offline (its RIS must redial) with epoch 1, so the caller can schedule
// grace-expiry collection against that epoch. Records with clashing IDs
// or identities are skipped; the allocators are advanced past every
// restored ID regardless of the persisted values.
func (g *registry) importState(routers []RouterInfo, nextRouter, nextPort uint32) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, in := range routers {
		if in.ID == 0 || in.Name == "" {
			continue
		}
		key := routerKey{pc: in.PC, name: in.Name}
		if _, dup := g.byKey[key]; dup {
			continue
		}
		if _, dup := g.routers[in.ID]; dup {
			continue
		}
		r := in
		r.Ports = append([]PortInfo(nil), in.Ports...)
		r.Online = false
		r.sessionID = 0
		r.offlineAt = g.clock.Now()
		r.epoch = 1
		g.routers[r.ID] = &r
		g.byKey[key] = r.ID
		g.insertNameLocked(r.Name, r.ID)
		if r.ID >= g.nextRouter {
			g.nextRouter = r.ID + 1
		}
		for _, p := range r.Ports {
			if p.ID >= g.nextPort {
				g.nextPort = p.ID + 1
			}
		}
		mRoutersRegistered.Inc()
		mPortsRegistered.Add(int64(len(r.Ports)))
		mRoutersOffline.Inc()
	}
	if nextRouter > g.nextRouter {
		g.nextRouter = nextRouter
	}
	if nextPort > g.nextPort {
		g.nextPort = nextPort
	}
}

// allocators returns the current ID allocators — journaled alongside
// every router record so replay re-issues identical IDs.
func (g *registry) allocators() (nextRouter, nextPort uint32) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.nextRouter, g.nextPort
}

// exportRouterByName snapshots one router plus the allocators — the
// payload of a "router" journal record for by-name mutations
// (firmware updates).
func (g *registry) exportRouterByName(name string) (RouterInfo, uint32, uint32, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if id, ok := g.nameIdx[name]; ok {
		if r, ok := g.routers[id]; ok {
			return copyInfo(r), g.nextRouter, g.nextPort, true
		}
	}
	return RouterInfo{}, 0, 0, false
}

// applyRouter upserts a journaled router record during replay. Like
// importState, the restored router starts offline with epoch 1 (its
// RIS must redial); unlike importState, an existing record under the
// same ID or identity is replaced — the journal's later record wins,
// which is what makes replaying a prefix twice safe.
func (g *registry) applyRouter(in RouterInfo, nextRouter, nextPort uint32) {
	if in.ID == 0 || in.Name == "" {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if old, ok := g.routers[in.ID]; ok {
		delete(g.byKey, routerKey{pc: old.PC, name: old.Name})
		delete(g.routers, in.ID)
		g.removeNameLocked(old.Name, in.ID)
		mRoutersRegistered.Dec()
		mPortsRegistered.Add(int64(-len(old.Ports)))
		if !old.Online {
			mRoutersOffline.Dec()
		}
	}
	key := routerKey{pc: in.PC, name: in.Name}
	if oldID, ok := g.byKey[key]; ok && oldID != in.ID {
		if old := g.routers[oldID]; old != nil {
			delete(g.routers, oldID)
			g.removeNameLocked(old.Name, oldID)
			mRoutersRegistered.Dec()
			mPortsRegistered.Add(int64(-len(old.Ports)))
			if !old.Online {
				mRoutersOffline.Dec()
			}
		}
		delete(g.byKey, key)
	}
	r := in
	r.Ports = append([]PortInfo(nil), in.Ports...)
	r.Online = false
	r.sessionID = 0
	r.offlineAt = g.clock.Now()
	r.epoch = 1
	g.routers[r.ID] = &r
	g.byKey[key] = r.ID
	g.insertNameLocked(r.Name, r.ID)
	if r.ID >= g.nextRouter {
		g.nextRouter = r.ID + 1
	}
	for _, p := range r.Ports {
		if p.ID >= g.nextPort {
			g.nextPort = p.ID + 1
		}
	}
	if nextRouter > g.nextRouter {
		g.nextRouter = nextRouter
	}
	if nextPort > g.nextPort {
		g.nextPort = nextPort
	}
	mRoutersRegistered.Inc()
	mPortsRegistered.Add(int64(len(r.Ports)))
	mRoutersOffline.Inc()
}

// applyOffline marks a journaled offline transition during replay.
// Routers restored by applyRouter are already offline, so this is
// usually a no-op; it matters when replaying over a snapshot that
// (from an older run) recorded the router online.
func (g *registry) applyOffline(id uint32) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if r, ok := g.routers[id]; ok && r.Online {
		r.Online = false
		r.sessionID = 0
		r.offlineAt = g.clock.Now()
		r.epoch++
		mRoutersOffline.Inc()
	}
}

// applyGone deletes a journaled router removal during replay; a
// missing record is a no-op.
func (g *registry) applyGone(id uint32) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	r, ok := g.routers[id]
	if !ok {
		return false
	}
	delete(g.routers, id)
	delete(g.byKey, routerKey{pc: r.PC, name: r.Name})
	mRoutersRegistered.Dec()
	mPortsRegistered.Add(int64(-len(r.Ports)))
	if !r.Online {
		mRoutersOffline.Dec()
	}
	return true
}

// copyInfo snapshots a registry record, including the port slice. Must
// be called with g.mu held (either mode).
func copyInfo(r *RouterInfo) RouterInfo {
	cp := *r
	cp.Ports = append([]PortInfo(nil), r.Ports...)
	return cp
}

// sessionIDFor resolves a router to its owning session ID (0 while
// offline) without the defensive copy get makes — get's copyInfo was a
// per-packet allocation when the forwarding path still used it, and it
// remains the accessor of choice for anything that only needs the
// session. API and inventory readers keep the copying accessors.
func (g *registry) sessionIDFor(id uint32) (uint64, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	r, ok := g.routers[id]
	if !ok {
		return 0, false
	}
	return r.sessionID, true
}

// forwardingPorts snapshots every registered port with its owning
// session ID (0 while offline) — the raw material of a forwarding-table
// rebuild (fwd.go).
func (g *registry) forwardingPorts() map[PortKey]uint64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make(map[PortKey]uint64)
	for id, r := range g.routers {
		for _, p := range r.Ports {
			out[PortKey{Router: id, Port: p.ID}] = r.sessionID
		}
	}
	return out
}

// get returns a defensive copy of a router's record. Callers read the
// copy outside the registry lock, so handing out the live pointer would
// race with setFirmware's locked writes.
func (g *registry) get(id uint32) (RouterInfo, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	r, ok := g.routers[id]
	if !ok {
		return RouterInfo{}, false
	}
	return copyInfo(r), true
}

// byName returns a defensive copy of a router's record by inventory
// name — an index lookup, not a registry scan, since design resolution
// calls this once per port of a (possibly 1000-router) design.
func (g *registry) byName(name string) (RouterInfo, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if id, ok := g.nameIdx[name]; ok {
		if r, ok := g.routers[id]; ok {
			return copyInfo(r), true
		}
	}
	return RouterInfo{}, false
}

// count reports how many routers are registered.
func (g *registry) count() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.routers)
}

// list returns a stable snapshot of the inventory.
func (g *registry) list() []RouterInfo {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]RouterInfo, 0, len(g.routers))
	for _, r := range g.routers {
		out = append(out, copyInfo(r))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RouterName resolves a router ID to its inventory name.
func (g *registry) routerName(id uint32) (string, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	r, ok := g.routers[id]
	if !ok {
		return "", false
	}
	return r.Name, true
}

// setFirmware updates a router's recorded firmware version.
func (g *registry) setFirmware(name, version string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if id, ok := g.nameIdx[name]; ok {
		if r, ok := g.routers[id]; ok {
			r.Firmware = version
			return true
		}
	}
	return false
}

// portExists verifies a (router, port) pair is registered.
func (g *registry) portExists(k PortKey) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	r, ok := g.routers[k.Router]
	if !ok {
		return false
	}
	for _, p := range r.Ports {
		if p.ID == k.Port {
			return true
		}
	}
	return false
}
