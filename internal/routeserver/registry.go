// Package routeserver implements RNL's central back-end (paper §2.3): it
// accepts tunnel connections from RIS agents, keeps the registry of
// available routers and ports, holds the routing matrix built from
// deployed designs, forwards captured frames between router ports, and
// hosts the traffic capture and generation modules.
package routeserver

import (
	"fmt"
	"sort"
	"sync"
)

// PortKey uniquely identifies a router port in the labs.
type PortKey struct {
	Router uint32
	Port   uint32
}

func (k PortKey) String() string { return fmt.Sprintf("%d.%d", k.Router, k.Port) }

// PortInfo is a registered router port.
type PortInfo struct {
	ID          uint32 `json:"id"`
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	NIC         string `json:"nic,omitempty"`
	Rect        [4]int `json:"rect,omitempty"`
}

// RouterInfo is a registered piece of equipment.
type RouterInfo struct {
	ID          uint32     `json:"id"`
	Name        string     `json:"name"`
	Description string     `json:"description,omitempty"`
	Model       string     `json:"model,omitempty"`
	Image       string     `json:"image,omitempty"`
	Firmware    string     `json:"firmware,omitempty"`
	HasConsole  bool       `json:"has_console"`
	Online      bool       `json:"online"`
	PC          string     `json:"pc,omitempty"`
	Ports       []PortInfo `json:"ports"`

	sessionID uint64 // owning RIS connection
}

// PortByName finds a port by name.
func (r *RouterInfo) PortByName(name string) (PortInfo, bool) {
	for _, p := range r.Ports {
		if p.Name == name {
			return p, true
		}
	}
	return PortInfo{}, false
}

// registry tracks every router RNL knows about. Routers vanish when their
// RIS disconnects ("those specialized equipment defined by users could
// come and go at any time").
type registry struct {
	mu         sync.RWMutex
	routers    map[uint32]*RouterInfo
	nextRouter uint32
	nextPort   uint32
}

func newRegistry() *registry {
	return &registry{routers: make(map[uint32]*RouterInfo), nextRouter: 1, nextPort: 1}
}

// add registers a router owned by a session and returns a copy of the
// record with its assigned IDs.
func (g *registry) add(sessionID uint64, info RouterInfo) RouterInfo {
	g.mu.Lock()
	defer g.mu.Unlock()
	info.ID = g.nextRouter
	g.nextRouter++
	for i := range info.Ports {
		info.Ports[i].ID = g.nextPort
		g.nextPort++
	}
	info.Online = true
	info.sessionID = sessionID
	r := &info
	g.routers[info.ID] = r
	mRoutersRegistered.Inc()
	mPortsRegistered.Add(int64(len(info.Ports)))
	return copyInfo(r)
}

// dropSession removes every router owned by a session and returns their IDs.
func (g *registry) dropSession(sessionID uint64) []uint32 {
	g.mu.Lock()
	defer g.mu.Unlock()
	var gone []uint32
	for id, r := range g.routers {
		if r.sessionID == sessionID {
			delete(g.routers, id)
			gone = append(gone, id)
			mRoutersRegistered.Dec()
			mPortsRegistered.Add(int64(-len(r.Ports)))
		}
	}
	return gone
}

// copyInfo snapshots a registry record, including the port slice. Must
// be called with g.mu held (either mode).
func copyInfo(r *RouterInfo) RouterInfo {
	cp := *r
	cp.Ports = append([]PortInfo(nil), r.Ports...)
	return cp
}

// get returns a defensive copy of a router's record. Callers read the
// copy outside the registry lock, so handing out the live pointer would
// race with setFirmware's locked writes.
func (g *registry) get(id uint32) (RouterInfo, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	r, ok := g.routers[id]
	if !ok {
		return RouterInfo{}, false
	}
	return copyInfo(r), true
}

// byName returns a defensive copy of a router's record by inventory name.
func (g *registry) byName(name string) (RouterInfo, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, r := range g.routers {
		if r.Name == name {
			return copyInfo(r), true
		}
	}
	return RouterInfo{}, false
}

// count reports how many routers are registered.
func (g *registry) count() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.routers)
}

// list returns a stable snapshot of the inventory.
func (g *registry) list() []RouterInfo {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]RouterInfo, 0, len(g.routers))
	for _, r := range g.routers {
		out = append(out, copyInfo(r))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RouterName resolves a router ID to its inventory name.
func (g *registry) routerName(id uint32) (string, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	r, ok := g.routers[id]
	if !ok {
		return "", false
	}
	return r.Name, true
}

// setFirmware updates a router's recorded firmware version.
func (g *registry) setFirmware(name, version string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, r := range g.routers {
		if r.Name == name {
			r.Firmware = version
			return true
		}
	}
	return false
}

// portExists verifies a (router, port) pair is registered.
func (g *registry) portExists(k PortKey) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	r, ok := g.routers[k.Router]
	if !ok {
		return false
	}
	for _, p := range r.Ports {
		if p.ID == k.Port {
			return true
		}
	}
	return false
}
