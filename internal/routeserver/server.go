package routeserver

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rnl/internal/compress"
	"rnl/internal/wire"
)

// DefaultPeerTimeout tears down a session that has received nothing for
// this long — three missed keepalives at the RIS default interval. A
// half-open TCP peer otherwise holds its routers in the inventory
// forever.
const DefaultPeerTimeout = 30 * time.Second

// Options configures a route server.
type Options struct {
	// AllowCompression accepts RIS compression offers (paper §4).
	AllowCompression bool
	// Logger receives operational events; nil means slog.Default.
	Logger *slog.Logger
	// PeerTimeout drops a session with no inbound traffic for this
	// long; zero means DefaultPeerTimeout.
	PeerTimeout time.Duration
	// SendQueueLen bounds each session's tunnel send queue (drop-oldest
	// under backpressure); zero means wire.DefaultSendQueueLen.
	SendQueueLen int
}

// Stats are the server's forwarding-plane counters.
type Stats struct {
	PacketsForwarded atomic.Uint64
	BytesForwarded   atomic.Uint64
	PacketsNoRoute   atomic.Uint64
	PacketsInjected  atomic.Uint64
	PacketsCaptured  atomic.Uint64
	SessionsTotal    atomic.Uint64
	// PacketsDropped counts frames shed by per-session send queues when
	// a RIS tunnel cannot keep up (slow or stalled Internet peer).
	PacketsDropped atomic.Uint64
}

// Server is the route server: the rendezvous point of every RIS tunnel.
type Server struct {
	opts Options
	log  *slog.Logger

	ln       net.Listener
	reg      *registry
	matrix   *matrix
	captures *captureHub
	consoles *consoleHub
	stats    Stats

	mu       sync.Mutex
	sessions map[uint64]*session
	nextSess uint64
	closed   bool
	wg       sync.WaitGroup
	onChange []func() // registry-change notifications (web UI refresh)

	accepting atomic.Bool // accept loop liveness, reported by Health
}

// session is one RIS tunnel connection.
type session struct {
	id   uint64
	conn net.Conn

	writeMu sync.Mutex             // serializes raw writes until wc exists
	wc      *wire.Conn             // asynchronous batched writer, set after join
	comp    *compress.Compressor   // outbound, nil if not negotiated
	decomp  *compress.Decompressor // inbound, nil if not negotiated

	pcName  string
	routers []uint32
}

// writeFrame sends one control frame. During the handshake (before the
// batched writer exists) it writes synchronously; afterwards control
// frames ride the send queue, where they are never dropped.
func (s *session) writeFrame(f wire.Frame) error {
	s.writeMu.Lock()
	if wc := s.wc; wc != nil {
		s.writeMu.Unlock()
		return wc.SendFrame(f)
	}
	defer s.writeMu.Unlock()
	return wire.WriteFrame(s.conn, f)
}

// setConn installs the batched writer after the handshake; the writeMu
// handoff orders it after any in-flight raw write.
func (s *session) setConn(wc *wire.Conn) {
	s.writeMu.Lock()
	s.wc = wc
	s.writeMu.Unlock()
}

// writePacket queues one packet message on the forwarding fast path.
// Compression (when negotiated) happens on the writer goroutine in wire
// order, after drop decisions.
func (s *session) writePacket(m wire.PacketMsg) error {
	s.writeMu.Lock()
	wc := s.wc
	s.writeMu.Unlock()
	if wc == nil {
		return fmt.Errorf("routeserver: session %d not ready", s.id)
	}
	return wc.SendPacket(m)
}

// New creates an unstarted server.
func New(opts Options) *Server {
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	return &Server{
		opts:     opts,
		log:      logger,
		reg:      newRegistry(),
		matrix:   newMatrix(),
		captures: newCaptureHub(),
		consoles: newConsoleHub(),
		sessions: make(map[uint64]*session),
		nextSess: 1,
	}
}

// Listen starts accepting RIS tunnels on addr (e.g. "127.0.0.1:0") and
// returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("routeserver: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.accepting.Store(true)
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

// Addr returns the listener address ("" before Listen).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and all sessions.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	if s.ln != nil {
		s.ln.Close()
	}
	for _, sess := range sessions {
		sess.conn.Close()
	}
	s.wg.Wait()
}

// OnChange registers a callback fired whenever the inventory changes.
func (s *Server) OnChange(fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onChange = append(s.onChange, fn)
}

func (s *Server) fireChange() {
	s.mu.Lock()
	cbs := append([]func(){}, s.onChange...)
	s.mu.Unlock()
	for _, cb := range cbs {
		cb()
	}
}

// Inventory returns the current router registry.
func (s *Server) Inventory() []RouterInfo { return s.reg.list() }

// RouterByName finds a router by inventory name.
func (s *Server) RouterByName(name string) (RouterInfo, bool) {
	return s.reg.byName(name)
}

// RouterName resolves a router ID to its inventory name.
func (s *Server) RouterName(id uint32) (string, bool) { return s.reg.routerName(id) }

// SetRouterFirmware records a router's flashed firmware version in the
// inventory (called by the web server's firmware-loading feature).
func (s *Server) SetRouterFirmware(name, version string) bool {
	ok := s.reg.setFirmware(name, version)
	if ok {
		s.fireChange()
	}
	return ok
}

// StatsSnapshot returns a copy of the counters.
func (s *Server) StatsSnapshot() map[string]uint64 {
	return map[string]uint64{
		"packets_forwarded": s.stats.PacketsForwarded.Load(),
		"bytes_forwarded":   s.stats.BytesForwarded.Load(),
		"packets_no_route":  s.stats.PacketsNoRoute.Load(),
		"packets_injected":  s.stats.PacketsInjected.Load(),
		"packets_captured":  s.stats.PacketsCaptured.Load(),
		"packets_dropped":   s.stats.PacketsDropped.Load(),
		"sessions_total":    s.stats.SessionsTotal.Load(),
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	defer s.accepting.Store(false)
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		id := s.nextSess
		s.nextSess++
		sess := &session{id: id, conn: conn}
		s.sessions[id] = sess
		s.mu.Unlock()
		s.stats.SessionsTotal.Add(1)
		mSessionsTotal.Inc()
		mSessionsActive.Inc()
		s.wg.Add(1)
		go s.serveSession(sess)
	}
}

// peerTimeout resolves the configured silent-peer window.
func (s *Server) peerTimeout() time.Duration {
	if s.opts.PeerTimeout > 0 {
		return s.opts.PeerTimeout
	}
	return DefaultPeerTimeout
}

// serveSession handshakes and runs one RIS tunnel until it drops.
func (s *Server) serveSession(sess *session) {
	defer s.wg.Done()
	defer s.dropSession(sess)

	timeout := s.peerTimeout()
	sess.conn.SetDeadline(time.Now().Add(timeout))
	if err := s.handshake(sess); err != nil {
		if !errors.Is(err, io.EOF) {
			s.log.Warn("handshake failed", "session", sess.id, "err", err)
		}
		return
	}
	sess.conn.SetDeadline(time.Time{})

	// Switch outbound traffic to the asynchronous batched writer.
	var enc func([]byte) ([]byte, uint16)
	if comp := sess.comp; comp != nil {
		enc = func(data []byte) ([]byte, uint16) {
			return comp.Compress(data), wire.FlagCompressed
		}
	}
	wc := wire.NewConn(sess.conn, wire.ConnConfig{
		QueueLen: s.opts.SendQueueLen,
		Encoder:  enc,
		OnDropPacket: func(n int) {
			s.stats.PacketsDropped.Add(uint64(n))
			mPacketsDropped.Add(uint64(n))
		},
	})
	sess.setConn(wc)
	defer wc.Close()

	// The read deadline (3 missed keepalives at the defaults) tears down
	// half-open peers that TCP alone never notices; the RIS sends a
	// keepalive every interval, so a healthy session always refreshes.
	fr := wire.NewFrameReader(sess.conn)
	for {
		sess.conn.SetReadDeadline(time.Now().Add(timeout))
		f, err := fr.Next()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				s.log.Warn("session silent past timeout; dropping", "session", sess.id, "timeout", timeout)
			}
			return
		}
		switch f.Type {
		case wire.MsgPacket:
			s.handlePacket(sess, f.Payload)
		case wire.MsgConsoleData:
			s.consoles.fromRIS(f.Payload)
		case wire.MsgConsoleClose:
			var m wire.ConsoleCloseMsg
			if wire.DecodeJSON(f, wire.MsgConsoleClose, &m) == nil {
				s.consoles.closeSession(m.SessionID)
			}
		case wire.MsgKeepalive:
			// Echo so the RIS sees inbound traffic on an otherwise idle
			// tunnel and its own dead-peer timer stays quiet.
			sess.writeFrame(wire.Frame{Type: wire.MsgKeepalive})
		case wire.MsgLeave:
			return
		default:
			s.log.Warn("unexpected message", "session", sess.id, "type", f.Type)
		}
	}
}

// handshake performs Hello + Join.
func (s *Server) handshake(sess *session) error {
	f, err := wire.ReadFrame(sess.conn)
	if err != nil {
		return err
	}
	var hello wire.HelloMsg
	if err := wire.DecodeJSON(f, wire.MsgHello, &hello); err != nil {
		return err
	}
	if hello.Version != wire.ProtocolVersion {
		return fmt.Errorf("protocol version %d unsupported", hello.Version)
	}
	sess.pcName = hello.PCName
	useCompress := hello.Compress && s.opts.AllowCompression
	ack, err := wire.EncodeJSON(wire.MsgHelloAck, wire.HelloAckMsg{
		Version: wire.ProtocolVersion, Compress: useCompress,
	})
	if err != nil {
		return err
	}
	if err := sess.writeFrame(ack); err != nil {
		return err
	}
	if useCompress {
		sess.comp = compress.NewCompressor()
		sess.decomp = compress.NewDecompressor()
	}

	f, err = wire.ReadFrame(sess.conn)
	if err != nil {
		return err
	}
	var join wire.JoinMsg
	if err := wire.DecodeJSON(f, wire.MsgJoin, &join); err != nil {
		return err
	}
	ackMsg := wire.JoinAckMsg{}
	for _, ra := range join.Routers {
		info := RouterInfo{
			Name:        ra.Name,
			Description: ra.Description,
			Model:       ra.Model,
			Image:       ra.Image,
			Firmware:    ra.Firmware,
			HasConsole:  ra.HasConsole,
			PC:          hello.PCName,
		}
		for _, pa := range ra.Ports {
			info.Ports = append(info.Ports, PortInfo{
				Name: pa.Name, Description: pa.Description, NIC: pa.NIC, Rect: pa.Rect,
			})
		}
		reg := s.reg.add(sess.id, info)
		assign := wire.RouterAssignment{Name: reg.Name, ID: reg.ID, Ports: map[string]uint32{}}
		for _, p := range reg.Ports {
			assign.Ports[p.Name] = p.ID
		}
		ackMsg.Routers = append(ackMsg.Routers, assign)
		sess.routers = append(sess.routers, reg.ID)
	}
	joinAck, err := wire.EncodeJSON(wire.MsgJoinAck, ackMsg)
	if err != nil {
		return err
	}
	if err := sess.writeFrame(joinAck); err != nil {
		return err
	}
	s.log.Info("RIS joined", "session", sess.id, "pc", sess.pcName, "routers", len(sess.routers))
	s.fireChange()
	return nil
}

// dropSession removes a dead session and everything it owned.
func (s *Server) dropSession(sess *session) {
	sess.conn.Close()
	s.mu.Lock()
	if _, live := s.sessions[sess.id]; live {
		delete(s.sessions, sess.id)
		mSessionsActive.Dec()
	}
	s.mu.Unlock()
	gone := s.reg.dropSession(sess.id)
	for _, id := range gone {
		s.matrix.dropRouter(id)
		s.consoles.dropRouter(id)
	}
	if len(gone) > 0 {
		s.log.Info("RIS left", "session", sess.id, "routers", len(gone))
		s.fireChange()
	}
}

// sessionFor finds the session owning a router.
func (s *Server) sessionFor(routerID uint32) (*session, bool) {
	r, ok := s.reg.get(routerID)
	if !ok {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[r.sessionID]
	return sess, ok
}

// handlePacket is the forwarding fast path (paper Fig. 4): unwrap, look up
// the routing matrix, wrap, send to the destination RIS.
func (s *Server) handlePacket(sess *session, payload []byte) {
	m, err := wire.DecodePacket(payload)
	if err != nil {
		return
	}
	data := m.Data
	if m.Flags&wire.FlagCompressed != 0 {
		if sess.decomp == nil {
			return
		}
		// Inbound decompression must follow stream order; frames of one
		// session arrive on one goroutine, so no extra locking needed.
		data, err = sess.decomp.Decompress(data)
		if err != nil {
			s.log.Warn("decompress failed", "session", sess.id, "err", err)
			return
		}
	}
	src := PortKey{Router: m.RouterID, Port: m.PortID}
	s.captures.deliver(src, DirFromPort, data, &s.stats)

	dst, ok := s.matrix.lookup(src)
	if !ok {
		s.stats.PacketsNoRoute.Add(1)
		mPacketsNoRoute.Inc()
		return
	}
	s.deliverToPort(dst, data)
}

// deliverToPort sends a frame toward a router port via its RIS.
func (s *Server) deliverToPort(dst PortKey, data []byte) {
	s.captures.deliver(dst, DirToPort, data, &s.stats)
	dstSess, ok := s.sessionFor(dst.Router)
	if !ok {
		s.stats.PacketsNoRoute.Add(1)
		mPacketsNoRoute.Inc()
		return
	}
	err := dstSess.writePacket(wire.PacketMsg{RouterID: dst.Router, PortID: dst.Port, Data: data})
	if err == nil {
		s.stats.PacketsForwarded.Add(1)
		s.stats.BytesForwarded.Add(uint64(len(data)))
		mPacketsForwarded.Inc()
		mBytesForwarded.Add(uint64(len(data)))
	}
}

// InjectPacket sends an arbitrary frame to a router port — the traffic
// generation module (paper §2.3): "the users can generate arbitrary
// packets and send them to any router port", in one direction only.
func (s *Server) InjectPacket(dst PortKey, frame []byte) error {
	if !s.reg.portExists(dst) {
		return fmt.Errorf("routeserver: port %s not registered", dst)
	}
	s.stats.PacketsInjected.Add(1)
	mPacketsInjected.Inc()
	s.deliverToPort(dst, frame)
	return nil
}

// InjectFromPort emits a frame onto the virtual wire as if the given
// router port had transmitted it: it traverses the routing matrix to the
// far end. The generation module's other direction — traffic "on any
// wire", visible only to the far side.
func (s *Server) InjectFromPort(src PortKey, frame []byte) error {
	if !s.reg.portExists(src) {
		return fmt.Errorf("routeserver: port %s not registered", src)
	}
	s.stats.PacketsInjected.Add(1)
	mPacketsInjected.Inc()
	s.captures.deliver(src, DirFromPort, frame, &s.stats)
	dst, ok := s.matrix.lookup(src)
	if !ok {
		s.stats.PacketsNoRoute.Add(1)
		mPacketsNoRoute.Inc()
		return nil // unwired port: the frame falls off the open wire end
	}
	s.deliverToPort(dst, frame)
	return nil
}
