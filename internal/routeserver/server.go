package routeserver

import (
	"crypto/subtle"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rnl/internal/admission"
	"rnl/internal/compress"
	"rnl/internal/identity"
	"rnl/internal/obs"
	"rnl/internal/sim"
	"rnl/internal/wal"
	"rnl/internal/wire"
)

// DefaultPeerTimeout tears down a session that has received nothing for
// this long — three missed keepalives at the RIS default interval. A
// half-open TCP peer otherwise holds its routers in the inventory
// forever.
const DefaultPeerTimeout = 30 * time.Second

// DefaultRouterGracePeriod is how long a disconnected RIS's routers stay
// registered (offline) awaiting a re-join before they are pruned. Long
// enough to ride out a tunnel flap plus redial backoff over commodity
// Internet links (paper §3.2 runs hours-long unattended tests over such
// tunnels), short enough that truly departed equipment frees its labs.
const DefaultRouterGracePeriod = 60 * time.Second

// NoRouterGrace disables the grace period: a dropped session's routers
// are deleted from the inventory immediately.
const NoRouterGrace time.Duration = -1

// NoPeerTimeout disables silent-peer detection. Deterministic simulation
// runs use it so advancing virtual time far past the timeout (to expire a
// grace period, say) cannot spuriously drop sessions whose real-TCP
// keepalives are still in flight.
const NoPeerTimeout time.Duration = -1

// Options configures a route server.
type Options struct {
	// AllowCompression accepts RIS compression offers (paper §4).
	AllowCompression bool
	// Logger receives operational events; nil means slog.Default.
	Logger *slog.Logger
	// PeerTimeout drops a session with no inbound traffic for this
	// long; zero means DefaultPeerTimeout, NoPeerTimeout (negative)
	// disables the check entirely.
	PeerTimeout time.Duration
	// Clock drives every timestamp and timer on the control plane (peer
	// watchdogs, grace-expiry GC, snapshot cadence, capture stamps,
	// per-lab token buckets); nil means wall time. The packet fast path
	// itself reads no clock.
	Clock sim.Clock
	// SendQueueLen bounds each session's tunnel send queue (drop-oldest
	// under backpressure); zero means wire.DefaultSendQueueLen.
	SendQueueLen int
	// RouterGracePeriod keeps a disconnected RIS's routers registered
	// (offline) for this long so a re-join gets the same wire IDs and
	// its deployed labs are reconciled instead of destroyed. Zero means
	// DefaultRouterGracePeriod; NoRouterGrace (negative) deletes
	// immediately.
	RouterGracePeriod time.Duration
	// StateDir, when set, persists the control plane (router identities
	// with their wire IDs, deployments): every mutation appends a
	// checksummed record to an append-ahead log, periodic incremental
	// snapshots fold the log into the base file, and New recovers by
	// restoring the snapshot and replaying the log — so a route-server
	// crash or restart resumes labs as agents redial.
	StateDir string
	// SnapshotInterval is the periodic checkpoint cadence when StateDir
	// is set; zero means DefaultSnapshotInterval.
	SnapshotInterval time.Duration
	// WALFsync selects when mutation-log appends are fsynced:
	// wal.SyncAlways (the zero value — an acked mutation survives power
	// loss), wal.SyncInterval (batched on WALFsyncInterval), or
	// wal.SyncNone.
	WALFsync wal.Policy
	// WALFsyncInterval is the batching cadence for wal.SyncInterval;
	// zero means the wal package default (100ms).
	WALFsyncInterval time.Duration
	// WALMaxBytes triggers an incremental snapshot (and log truncation)
	// once the mutation log grows past it; zero means the wal package
	// default (1 MiB).
	WALMaxBytes int64
	// WALFS overrides the filesystem behind the log and snapshots —
	// the disk-fault-injection seam (faultinject.Disk). Nil means the
	// real filesystem.
	WALFS wal.FS
	// WALGroupCommit lets concurrent fsync-always journal appenders
	// share fsyncs (leader/follower group commit): racing control-plane
	// mutations pay O(batches) fsyncs instead of one each, and a failed
	// shared fsync still rolls back every record in the batch.
	WALGroupCommit bool
	// LabRateLimit, when positive, caps each deployed lab's delivered
	// packet rate (packets/second) with a per-lab token bucket on the
	// fan-out path. Packets over the limit are dropped before they reach
	// the send queue and counted in Stats.PacketsThrottled. Zero disables
	// throttling; the fair-share shedder still protects quiet labs when
	// a send queue saturates.
	LabRateLimit float64
	// LabRateBurst sizes each lab's token bucket; zero means a burst
	// equal to LabRateLimit (one second's worth).
	LabRateBurst float64
	// Datagram accepts RIS datagram offers: a negotiated session carries
	// PACKET frames over best-effort UDP on the listener's port while
	// control traffic stays on the TCP tunnel (see datagram.go). Mutually
	// exclusive with compression per session — the stateful §4 template
	// codec needs lossless in-order delivery — so a session that
	// negotiates compression stays TCP-only.
	Datagram bool
	// DatagramLoss, when set, is consulted once per outbound datagram;
	// returning true drops it before the socket and counts it in
	// Stats.PacketsLostDatagram — simulated network loss, injected by
	// deterministic simulation harnesses.
	DatagramLoss func() bool
	// DatagramMTU caps the UDP payload a negotiated datagram session
	// will emit (header included): frames that would exceed it fall back
	// to the lossless TCP tunnel instead of gambling on IP fragmentation,
	// whose blackholes surface only as silent packets_lost_datagram.
	// Zero means wire.DefaultDgramMTU (1400, safe under common 1500-MTU
	// paths with tunnel overhead); values above wire.MaxDgramLen clamp.
	DatagramMTU int
	// TunnelToken, when set, requires every RIS session to present the
	// same shared secret in its HELLO before the handshake proceeds —
	// verified once per session join, never per frame. Comparison is
	// constant-time.
	TunnelToken string
	// Identity, when set, accepts signed bearer tokens and API keys as
	// session credentials (see internal/identity). A session may satisfy
	// either TunnelToken or Identity; with both unset joins are open
	// (single-operator deployments, tests).
	Identity *identity.Authority
}

// Stats are the server's forwarding-plane counters.
type Stats struct {
	PacketsForwarded atomic.Uint64
	BytesForwarded   atomic.Uint64
	PacketsNoRoute   atomic.Uint64
	PacketsInjected  atomic.Uint64
	PacketsCaptured  atomic.Uint64
	SessionsTotal    atomic.Uint64
	// PacketsDropped counts frames shed by per-session send queues when
	// a RIS tunnel cannot keep up (slow or stalled Internet peer).
	PacketsDropped atomic.Uint64
	// PacketsThrottled counts frames refused by per-lab token-bucket
	// rate limiters (Options.LabRateLimit) before reaching a send queue.
	PacketsThrottled atomic.Uint64
	// PacketsLostDatagram counts frames dropped on the best-effort
	// datagram path (simulated loss hook or a send error). Together with
	// the other counters conservation stays exact:
	// injected == forwarded + no_route + throttled + lost_datagram.
	PacketsLostDatagram atomic.Uint64
	// Recoveries counts routers that re-joined within the grace period
	// and had their lab state reconciled.
	Recoveries atomic.Uint64
	// LabsLost counts deployed labs that permanently lost a router.
	LabsLost atomic.Uint64
}

// Server is the route server: the rendezvous point of every RIS tunnel.
type Server struct {
	opts  Options
	log   *slog.Logger
	clock sim.Clock

	ln       net.Listener
	reg      *registry
	matrix   *matrix
	captures *captureHub
	consoles *consoleHub
	stats    Stats

	mu       sync.RWMutex // control-plane state below; read-locked by slow-path lookups
	sessions map[uint64]*session
	nextSess uint64
	closed   bool
	wg       sync.WaitGroup
	onChange []func()             // registry-change notifications (web UI refresh)
	gcTimers map[uint32]sim.Timer // pending grace-expiry collections by router ID

	// walMu orders persistence: every mutation path holds it across
	// {mutate + journal append}, and checkpoints hold it across
	// {export + snapshot + log truncate}, so records land in mutation
	// order and a checkpoint can never truncate a record its snapshot
	// missed. Always acquired before s.mu and the entity locks.
	walMu         sync.Mutex
	wal           *wal.Store    // nil when StateDir is unset or the store failed to open
	walFails      atomic.Uint32 // consecutive journal failures; drives the degraded flag
	stopSnapshots chan struct{} // closed by Close; ends the periodic snapshot loop

	// The datagram data plane (datagram.go): one shared UDP socket and
	// the token → peer map its receive loop resolves senders through.
	udp        *net.UDPConn
	dgramMu    sync.Mutex
	dgramPeers map[uint64]*dgramPeer

	labMu     sync.Mutex                        // guards the two per-lab maps below
	labLimits map[string]*admission.TokenBucket // lazily created; forgotten on teardown
	labStats  map[string]*labCounters           // cumulative per-lab shed/throttle atomics

	// The forwarding snapshot (see fwd.go): fwd holds the immutable
	// table the packet path reads lock-free; fwdGen numbers control-
	// plane mutations; fwdMu serializes (and coalesces) rebuilds.
	fwd    atomic.Pointer[fwdTable]
	fwdGen atomic.Uint64
	fwdMu  sync.Mutex

	accepting atomic.Bool // accept loop liveness, reported by Health
}

// session is one RIS tunnel connection.
type session struct {
	id   uint64
	conn net.Conn

	writeMu sync.Mutex                // serializes raw writes until wc exists
	wc      atomic.Pointer[wire.Conn] // asynchronous batched writer, set after join
	comp    *compress.Compressor      // outbound, nil if not negotiated
	decomp  *compress.Decompressor    // inbound, nil if not negotiated

	// seq counts inbound packets for latency sampling. One goroutine
	// reads a session's frames, so this atomic is uncontended.
	seq atomic.Uint64

	// dgram is the session's datagram endpoint, nil unless negotiated.
	dgram *dgramPeer

	pcName  string
	routers []uint32
}

// writeFrame sends one control frame. During the handshake (before the
// batched writer exists) it writes synchronously; afterwards control
// frames ride the send queue, where they are never dropped.
func (s *session) writeFrame(f wire.Frame) error {
	if wc := s.wc.Load(); wc != nil {
		return wc.SendFrame(f)
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if wc := s.wc.Load(); wc != nil {
		return wc.SendFrame(f)
	}
	return wire.WriteFrame(s.conn, f)
}

// setConn installs the batched writer after the handshake; the writeMu
// handoff orders it after any in-flight raw write.
func (s *session) setConn(wc *wire.Conn) {
	s.writeMu.Lock()
	s.wc.Store(wc)
	s.writeMu.Unlock()
}

// writePacket queues one packet message on the forwarding fast path.
// Compression (when negotiated) happens on the writer goroutine in wire
// order, after drop decisions.
func (s *session) writePacket(m wire.PacketMsg) error {
	return s.writePacketClass("", m)
}

// writePacketClass queues one packet tagged with its shedding class (the
// destination lab), so a saturated send queue sheds the noisiest lab's
// frames first instead of whoever queued earliest. One atomic load, no
// locks: this sits on the per-frame forwarding path.
func (s *session) writePacketClass(class string, m wire.PacketMsg) error {
	wc := s.wc.Load()
	if wc == nil {
		return fmt.Errorf("routeserver: session %d not ready", s.id)
	}
	return wc.SendPacketClass(class, m)
}

// New creates an unstarted server. With Options.StateDir set, any
// persisted control-plane snapshot is restored here — before the server
// listens — so redialing agents find their labs already in place.
func New(opts Options) *Server {
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	clock := opts.Clock
	if clock == nil {
		clock = sim.Real{}
	}
	s := &Server{
		opts:          opts,
		log:           logger,
		clock:         clock,
		reg:           newRegistry(clock),
		matrix:        newMatrix(),
		captures:      newCaptureHub(clock),
		consoles:      newConsoleHub(),
		sessions:      make(map[uint64]*session),
		nextSess:      1,
		gcTimers:      make(map[uint32]sim.Timer),
		stopSnapshots: make(chan struct{}),
		labLimits:     make(map[string]*admission.TokenBucket),
		labStats:      make(map[string]*labCounters),
		dgramPeers:    make(map[uint64]*dgramPeer),
	}
	if opts.StateDir != "" {
		s.openState()
	}
	// Publish the initial forwarding snapshot (covering any restored
	// state) so the packet path never sees a nil table.
	s.rebuildFwd(0)
	return s
}

// Listen starts accepting RIS tunnels on addr (e.g. "127.0.0.1:0") and
// returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("routeserver: listen %s: %w", addr, err)
	}
	s.Serve(ln)
	return ln.Addr().String(), nil
}

// Serve begins accepting RIS tunnels on a caller-provided listener —
// the hook fault-injection tests use to wrap the accept path; Listen is
// the production entry point.
func (s *Server) Serve(ln net.Listener) {
	s.ln = ln
	// The datagram socket comes up before the accept loop: a session can
	// only punch after its TCP handshake, so by then the socket must
	// exist. Failure degrades to TCP-only rather than refusing service.
	if s.opts.Datagram {
		if err := s.listenDatagram(ln.Addr()); err != nil {
			s.log.Warn("datagram listen failed; sessions stay TCP-only", "err", err)
		}
	}
	s.accepting.Store(true)
	s.wg.Add(1)
	go s.acceptLoop()
	// Routers restored offline from a snapshot start their grace
	// countdown now, when agents can actually reach us again.
	if grace := s.routerGrace(); grace > 0 {
		for _, ref := range s.reg.offlineRouters() {
			s.scheduleGC(ref.id, ref.epoch, grace)
		}
	}
	if s.opts.StateDir != "" {
		s.wg.Add(1)
		go s.snapshotLoop()
	}
}

// Addr returns the listener address ("" before Listen).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and all sessions, then writes a final
// checkpoint so the next start recovers without replaying a log.
func (s *Server) Close() { s.shutdown(true) }

// Kill is Close without the final checkpoint or log flush — the crash
// the simulation harness injects. Everything the server acknowledged
// must still recover from the snapshot + mutation log alone; anything
// that doesn't is a durability bug, which is exactly what the
// crash-point scenario exists to catch.
func (s *Server) Kill() { s.shutdown(false) }

func (s *Server) shutdown(flush bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	for id, t := range s.gcTimers {
		t.Stop()
		delete(s.gcTimers, id)
	}
	s.mu.Unlock()
	close(s.stopSnapshots)
	if s.ln != nil {
		s.ln.Close()
	}
	if s.udp != nil {
		s.udp.Close()
	}
	for _, sess := range sessions {
		sess.conn.Close()
	}
	s.wg.Wait()
	if s.wal != nil {
		if flush {
			s.checkpoint()
			s.wal.Close()
		} else {
			s.wal.CloseNoSync()
		}
	}
}

// OnChange registers a callback fired whenever the inventory changes.
func (s *Server) OnChange(fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onChange = append(s.onChange, fn)
}

func (s *Server) fireChange() {
	s.mu.RLock()
	cbs := append([]func(){}, s.onChange...)
	s.mu.RUnlock()
	for _, cb := range cbs {
		cb()
	}
}

// Inventory returns the current router registry.
func (s *Server) Inventory() []RouterInfo { return s.reg.list() }

// RouterByName finds a router by inventory name.
func (s *Server) RouterByName(name string) (RouterInfo, bool) {
	return s.reg.byName(name)
}

// RouterName resolves a router ID to its inventory name.
func (s *Server) RouterName(id uint32) (string, bool) { return s.reg.routerName(id) }

// SetRouterFirmware records a router's flashed firmware version in the
// inventory (called by the web server's firmware-loading feature).
func (s *Server) SetRouterFirmware(name, version string) bool {
	s.walMu.Lock()
	ok := s.reg.setFirmware(name, version)
	if ok {
		if info, nr, np, found := s.reg.exportRouterByName(name); found {
			s.journalLocked(journalRecord{T: "router", Router: &info, NextRouter: nr, NextPort: np})
		}
	}
	s.walMu.Unlock()
	if ok {
		s.fireChange()
		s.maybeCheckpoint()
	}
	return ok
}

// StatsSnapshot returns a copy of the counters, plus per-tenant
// "tenant_shed_<t>" / "tenant_throttled_<t>" rollups for every tenant
// with attributed labs. Snapshotting also refreshes the rnl_tenant_*
// gauges in the obs registry — per-tenant attribution is aggregated
// lazily at observation time, never on the packet path.
func (s *Server) StatsSnapshot() map[string]uint64 {
	out := map[string]uint64{
		"packets_forwarded":     s.stats.PacketsForwarded.Load(),
		"bytes_forwarded":       s.stats.BytesForwarded.Load(),
		"packets_no_route":      s.stats.PacketsNoRoute.Load(),
		"packets_injected":      s.stats.PacketsInjected.Load(),
		"packets_captured":      s.stats.PacketsCaptured.Load(),
		"packets_dropped":       s.stats.PacketsDropped.Load(),
		"packets_throttled":     s.stats.PacketsThrottled.Load(),
		"packets_lost_datagram": s.stats.PacketsLostDatagram.Load(),
		"sessions_total":        s.stats.SessionsTotal.Load(),
		"recoveries":            s.stats.Recoveries.Load(),
		"labs_lost":             s.stats.LabsLost.Load(),
	}
	for tenant, n := range s.ShedByTenant() {
		if tenant == "" {
			continue
		}
		out["tenant_shed_"+tenant] = n
		obs.Default().Gauge("rnl_tenant_shed_"+metricNamePart(tenant),
			"Fair-share sheds attributed to one tenant's labs.").Set(int64(n))
	}
	for tenant, n := range s.ThrottledByTenant() {
		if tenant == "" {
			continue
		}
		out["tenant_throttled_"+tenant] = n
		obs.Default().Gauge("rnl_tenant_throttled_"+metricNamePart(tenant),
			"Token-bucket drops attributed to one tenant's labs.").Set(int64(n))
	}
	return out
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	defer s.accepting.Store(false)
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		id := s.nextSess
		s.nextSess++
		sess := &session{id: id, conn: conn}
		s.sessions[id] = sess
		s.mu.Unlock()
		s.stats.SessionsTotal.Add(1)
		mSessionsTotal.Inc()
		mSessionsActive.Inc()
		s.wg.Add(1)
		go s.serveSession(sess)
	}
}

// peerTimeout resolves the configured silent-peer window (0 = disabled).
func (s *Server) peerTimeout() time.Duration {
	if s.opts.PeerTimeout > 0 {
		return s.opts.PeerTimeout
	}
	if s.opts.PeerTimeout < 0 {
		return 0
	}
	return DefaultPeerTimeout
}

// routerGrace resolves the configured grace period (0 = disabled).
func (s *Server) routerGrace() time.Duration {
	if s.opts.RouterGracePeriod == 0 {
		return DefaultRouterGracePeriod
	}
	if s.opts.RouterGracePeriod < 0 {
		return 0
	}
	return s.opts.RouterGracePeriod
}

// serveSession handshakes and runs one RIS tunnel until it drops.
func (s *Server) serveSession(sess *session) {
	defer s.wg.Done()
	defer s.dropSession(sess)

	// The handshake installs the batched writer partway through (after
	// compression is negotiated, before the join publishes); tear it down
	// on every exit path, including a handshake that fails after the
	// install point.
	defer func() {
		if wc := sess.wc.Load(); wc != nil {
			wc.Close()
		}
	}()

	// The handshake deadline stays on the kernel clock: it bounds a raw
	// synchronous read on a brand-new TCP connection, where wall time is
	// the only meaningful notion of "stuck" even inside a simulation.
	timeout := s.peerTimeout()
	hsTimeout := timeout
	if hsTimeout <= 0 {
		hsTimeout = DefaultPeerTimeout
	}
	sess.conn.SetDeadline(time.Now().Add(hsTimeout))
	if err := s.handshake(sess); err != nil {
		if !errors.Is(err, io.EOF) {
			s.log.Warn("handshake failed", "session", sess.id, "err", err)
		}
		return
	}
	sess.conn.SetDeadline(time.Time{})

	// Dead-peer detection (3 missed keepalives at the defaults) tears
	// down half-open peers that TCP alone never notices; the RIS sends a
	// keepalive every interval, so a healthy session always touches the
	// watchdog. The watchdog runs on the server clock — not on kernel
	// read deadlines — so silence detection is deterministic under
	// sim.Fake and costs the hot loop one Touch per frame instead of a
	// runtime-pollster timer mutation.
	fr := wire.NewFrameReader(sess.conn)
	defer fr.Close()
	var wd *sim.Watchdog
	if timeout > 0 {
		wd = sim.NewWatchdog(s.clock, timeout, func() {
			s.log.Warn("session silent past timeout; dropping", "session", sess.id, "timeout", timeout)
			sess.conn.Close() // unblocks the frame reader below
		})
		defer wd.Stop()
	}
	// The burst loop: one blocking Next per wake, then keep draining
	// frames the kernel already delivered (a whole header is buffered)
	// and stage PACKET forwards per destination; the flush queues each
	// destination's share in one batched call. See inbound.go.
	pend := newPendBatch()
	for {
		f, err := fr.Next()
		if err != nil {
			return
		}
		if wd != nil {
			wd.Touch()
		}
		leave := false
		for burst := 1; ; burst++ {
			if s.consumeFrame(sess, f, fr, pend) {
				leave = true
				break
			}
			if burst >= maxInboundBurst || fr.Buffered() < 5 {
				break
			}
			if f, err = fr.Next(); err != nil {
				break
			}
		}
		s.flushPend(pend)
		if leave || err != nil {
			return
		}
	}
}

// dispatchFrame routes one inbound tunnel frame to its handler. MsgLeave
// is a no-op here; the serve loop exits on it.
func (s *Server) dispatchFrame(sess *session, f wire.Frame) {
	switch f.Type {
	case wire.MsgPacket:
		s.handlePacket(sess, f.Payload)
	case wire.MsgConsoleData:
		s.consoles.fromRIS(f.Payload)
	case wire.MsgConsoleClose:
		var m wire.ConsoleCloseMsg
		if wire.DecodeJSON(f, wire.MsgConsoleClose, &m) == nil {
			s.consoles.closeSession(m.SessionID)
		}
	case wire.MsgKeepalive:
		// Echo so the RIS sees inbound traffic on an otherwise idle
		// tunnel and its own dead-peer timer stays quiet.
		sess.writeFrame(wire.Frame{Type: wire.MsgKeepalive})
	case wire.MsgLeave:
	default:
		s.log.Warn("unexpected message", "session", sess.id, "type", f.Type)
	}
}

// handshake performs Hello + Join. A router whose (PC, name) identity is
// already registered — a RIS redialing after a tunnel flap or a server
// restart — gets its previous wire IDs back and its surviving labs'
// routes reinstalled; capture taps and streams are keyed by those same
// port IDs, so their bindings come back with the routes.
// authorizeSession verifies a joining RIS's credential — once per
// session, never per frame (the packet fast path stays auth-free; see
// internal/identity). A session is admitted when it matches the shared
// tunnel token (constant-time) or verifies against the identity
// authority; with neither configured, joins are open. The rejection is
// deliberately uniform — no hint of which check failed.
func (s *Server) authorizeSession(token string) error {
	if s.opts.TunnelToken == "" && s.opts.Identity == nil {
		return nil
	}
	if s.opts.TunnelToken != "" &&
		subtle.ConstantTimeCompare([]byte(token), []byte(s.opts.TunnelToken)) == 1 {
		return nil
	}
	if s.opts.Identity != nil {
		if _, err := s.opts.Identity.VerifyCredential(token); err == nil {
			return nil
		}
	}
	return errors.New("session credential rejected")
}

func (s *Server) handshake(sess *session) error {
	f, err := wire.ReadFrame(sess.conn)
	if err != nil {
		return err
	}
	var hello wire.HelloMsg
	if err := wire.DecodeJSON(f, wire.MsgHello, &hello); err != nil {
		return err
	}
	if hello.Version != wire.ProtocolVersion {
		return fmt.Errorf("protocol version %d unsupported", hello.Version)
	}
	if err := s.authorizeSession(hello.Token); err != nil {
		return err
	}
	sess.pcName = hello.PCName
	useCompress := hello.Compress && s.opts.AllowCompression
	helloAck := wire.HelloAckMsg{Version: wire.ProtocolVersion, Compress: useCompress}
	// Datagram and compression are mutually exclusive per session: the
	// stateful template codec cannot survive loss, so compression wins
	// when both were offered.
	if hello.Datagram && s.opts.Datagram && s.udp != nil && !useCompress {
		token, terr := s.registerDgramPeer(sess)
		if terr != nil {
			return terr
		}
		helloAck.Datagram = true
		helloAck.DatagramToken = token
	}
	ack, err := wire.EncodeJSON(wire.MsgHelloAck, helloAck)
	if err != nil {
		return err
	}
	if err := sess.writeFrame(ack); err != nil {
		return err
	}
	if useCompress {
		sess.comp = compress.NewCompressor()
		sess.decomp = compress.NewDecompressor()
	}

	// Switch outbound traffic to the asynchronous batched writer now —
	// before the join is processed — so the session accepts fast-path
	// packet writes the instant a forwarding snapshot references it.
	// Installing the writer only after the handshake returned left a
	// window (stretched to milliseconds by the post-join persist) where
	// the published snapshot pointed at a session whose writer did not
	// exist yet and deliverable packets were misaccounted as no_route.
	var enc func([]byte) ([]byte, uint16)
	if comp := sess.comp; comp != nil {
		enc = func(data []byte) ([]byte, uint16) {
			return comp.Compress(data), wire.FlagCompressed
		}
	}
	sess.setConn(wire.NewConn(sess.conn, wire.ConnConfig{
		QueueLen: s.opts.SendQueueLen,
		Encoder:  enc,
		OnShed: func(class string, n int) {
			s.stats.PacketsDropped.Add(uint64(n))
			mPacketsDropped.Add(uint64(n))
			s.countShed(class, uint64(n))
		},
	}))

	f, err = wire.ReadFrame(sess.conn)
	if err != nil {
		return err
	}
	var join wire.JoinMsg
	if err := wire.DecodeJSON(f, wire.MsgJoin, &join); err != nil {
		return err
	}
	ackMsg := wire.JoinAckMsg{}
	recovered := 0
	var rejoinedIDs []uint32
	var recs []journalRecord
	s.walMu.Lock()
	for _, ra := range join.Routers {
		info := RouterInfo{
			Name:        ra.Name,
			Description: ra.Description,
			Model:       ra.Model,
			Image:       ra.Image,
			Firmware:    ra.Firmware,
			HasConsole:  ra.HasConsole,
			PC:          hello.PCName,
		}
		for _, pa := range ra.Ports {
			info.Ports = append(info.Ports, PortInfo{
				Name: pa.Name, Description: pa.Description, NIC: pa.NIC, Rect: pa.Rect,
			})
		}
		reg, rejoined := s.reg.add(sess.id, info)
		if rejoined {
			s.cancelGC(reg.ID)
			rejoinedIDs = append(rejoinedIDs, reg.ID)
			recovered++
		}
		rc := reg
		nr, np := s.reg.allocators()
		recs = append(recs, journalRecord{T: "router", Router: &rc, NextRouter: nr, NextPort: np})
		assign := wire.RouterAssignment{Name: reg.Name, ID: reg.ID, Rejoined: rejoined, Ports: map[string]uint32{}}
		for _, p := range reg.Ports {
			assign.Ports[p.Name] = p.ID
		}
		ackMsg.Routers = append(ackMsg.Routers, assign)
		sess.routers = append(sess.routers, reg.ID)
	}
	// Reconcile every re-joined router's lab routes in one matrix pass,
	// then journal the whole join as one batch: a 1000-router agent
	// join costs one fsync, not one per router.
	if len(rejoinedIDs) > 0 {
		routes := s.matrix.reinstallRouters(rejoinedIDs, s.reg.portExists)
		s.log.Info("routers re-joined; lab state reconciled",
			"session", sess.id, "routers", len(rejoinedIDs), "routes", routes)
	}
	s.journalLocked(recs...)
	s.walMu.Unlock()
	// Publish the joined routers (and any reinstalled routes) to the
	// forwarding snapshot before acking, so the agent's first data frame
	// finds its wires. The recovery counter moves only after the publish:
	// anyone who observes the recovery must also observe the reinstalled
	// routes, or a recovered-looking cluster can still return no_route.
	s.bumpFwd()
	if recovered > 0 {
		s.stats.Recoveries.Add(uint64(recovered))
		mRecoveries.Add(uint64(recovered))
	}
	joinAck, err := wire.EncodeJSON(wire.MsgJoinAck, ackMsg)
	if err != nil {
		return err
	}
	if err := sess.writeFrame(joinAck); err != nil {
		return err
	}
	s.log.Info("RIS joined", "session", sess.id, "pc", sess.pcName,
		"routers", len(sess.routers), "recovered", recovered)
	s.fireChange()
	s.maybeCheckpoint()
	return nil
}

// dropSession removes a dead session. With a grace period configured its
// routers go offline — routes suspended, records and wire IDs kept — and
// are only pruned if no re-join happens before the grace expires;
// without one they are deleted immediately (the seed behavior).
func (s *Server) dropSession(sess *session) {
	sess.conn.Close()
	s.dropDgramPeer(sess)
	s.mu.Lock()
	if _, live := s.sessions[sess.id]; live {
		delete(s.sessions, sess.id)
		mSessionsActive.Dec()
	}
	s.mu.Unlock()
	if grace := s.routerGrace(); grace > 0 {
		s.walMu.Lock()
		offline := s.reg.markSessionOffline(sess.id)
		offRecs := make([]journalRecord, 0, len(offline))
		for _, ref := range offline {
			s.matrix.suspendRouter(ref.id)
			s.consoles.dropRouter(ref.id)
			s.scheduleGC(ref.id, ref.epoch, grace)
			offRecs = append(offRecs, journalRecord{T: "offline", RouterID: ref.id})
		}
		s.journalLocked(offRecs...)
		s.walMu.Unlock()
		if len(offline) > 0 {
			s.bumpFwd()
			s.log.Info("RIS left; routers offline awaiting re-join",
				"session", sess.id, "routers", len(offline), "grace", grace)
			s.fireChange()
			s.maybeCheckpoint()
		}
		return
	}
	s.walMu.Lock()
	gone := s.reg.removeSession(sess.id)
	goneRecs := make([]journalRecord, 0, len(gone))
	for _, id := range gone {
		s.countLabsLost(s.matrix.dropRouter(id), id)
		s.consoles.dropRouter(id)
		goneRecs = append(goneRecs, journalRecord{T: "gone", RouterID: id})
	}
	s.journalLocked(goneRecs...)
	s.walMu.Unlock()
	if len(gone) > 0 {
		s.bumpFwd()
		s.log.Info("RIS left", "session", sess.id, "routers", len(gone))
		s.fireChange()
		s.maybeCheckpoint()
	}
}

// scheduleGC arms (or re-arms) the grace-expiry collection for a router.
func (s *Server) scheduleGC(id uint32, epoch uint64, grace time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if old := s.gcTimers[id]; old != nil {
		old.Stop()
	}
	s.gcTimers[id] = s.clock.AfterFunc(grace, func() { s.gcRouter(id, epoch) })
}

// cancelGC disarms a pending collection after a re-join.
func (s *Server) cancelGC(id uint32) {
	s.mu.Lock()
	if t := s.gcTimers[id]; t != nil {
		t.Stop()
		delete(s.gcTimers, id)
	}
	s.mu.Unlock()
}

// gcRouter prunes a router whose grace period expired without a re-join.
// The registry's epoch check makes a stale timer (router re-joined, went
// offline again) a no-op.
func (s *Server) gcRouter(id uint32, epoch uint64) {
	s.walMu.Lock()
	info, ok := s.reg.gcExpired(id, epoch)
	if !ok {
		s.walMu.Unlock()
		return
	}
	s.mu.Lock()
	delete(s.gcTimers, id)
	s.mu.Unlock()
	s.countLabsLost(s.matrix.dropRouter(id), id)
	s.consoles.dropRouter(id)
	s.journalLocked(journalRecord{T: "gone", RouterID: id})
	s.walMu.Unlock()
	s.bumpFwd()
	s.log.Info("router grace expired; pruned", "router", info.Name, "pc", info.PC)
	s.fireChange()
	s.maybeCheckpoint()
}

// countLabsLost records deployments newly damaged by a router's
// permanent removal.
func (s *Server) countLabsLost(lost []string, routerID uint32) {
	for _, name := range lost {
		s.stats.LabsLost.Add(1)
		mLabsLost.Inc()
		s.log.Warn("deployed lab lost a router", "deployment", name, "router", routerID)
	}
}

// sessionFor finds the session owning a router — a slow-path accessor
// (console open, injection fallback). It reads the registry through the
// cheap sessionIDFor accessor and only read-locks the session map, so
// it never contends with the control plane's exclusive section.
func (s *Server) sessionFor(routerID uint32) (*session, bool) {
	sid, ok := s.reg.sessionIDFor(routerID)
	if !ok || sid == 0 {
		return nil, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	sess, ok := s.sessions[sid]
	return sess, ok
}

// handlePacket is the forwarding fast path (paper Fig. 4): unwrap, look
// up the forwarding snapshot, wrap, queue to the destination RIS. One
// atomic load plus one map lookup; zero mutexes (the snapshot precomputes
// everything the old path took five locks to resolve).
func (s *Server) handlePacket(sess *session, payload []byte) {
	m, err := wire.DecodePacket(payload)
	if err != nil {
		return
	}
	data := m.Data
	if m.Flags&wire.FlagCompressed != 0 {
		if sess.decomp == nil {
			return
		}
		// Inbound decompression must follow stream order; frames of one
		// session arrive on one goroutine, so no extra locking needed.
		data, err = sess.decomp.Decompress(data)
		if err != nil {
			s.log.Warn("decompress failed", "session", sess.id, "err", err)
			return
		}
	}
	// Sample forwarding latency 1-in-64: two clock reads plus a shared
	// histogram per frame would cost more than the forwarding itself.
	sample := sess.seq.Add(1)&63 == 0
	var start time.Time
	if sample {
		start = time.Now()
	}
	src := PortKey{Router: m.RouterID, Port: m.PortID}
	s.captures.deliver(src, DirFromPort, data, &s.stats)

	e, ok := s.fwd.Load().routes[src]
	if !ok {
		s.stats.PacketsNoRoute.Add(1)
		mPacketsNoRoute.Inc()
		return
	}
	s.forward(e, data)
	if sample {
		mFwdLatency.Observe(time.Since(start).Seconds())
	}
}

// forward delivers a frame to its precomputed snapshot entry: capture
// tap check (one atomic when untapped), optional per-lab token bucket,
// then the destination session's send queue. No locks are taken on the
// untapped, unlimited path.
func (s *Server) forward(e *fwdEntry, data []byte) {
	s.captures.deliver(e.dst, DirToPort, data, &s.stats)
	if e.limiter != nil && !e.limiter.Allow(1) {
		s.stats.PacketsThrottled.Add(1)
		mPacketsThrottled.Inc()
		admission.Throttled(1)
		e.throttled.Add(1)
		return
	}
	sess := e.sess
	if sess == nil {
		// Destination RIS offline (grace period): no live route.
		s.stats.PacketsNoRoute.Add(1)
		mPacketsNoRoute.Inc()
		return
	}
	m := wire.PacketMsg{RouterID: e.dst.Router, PortID: e.dst.Port, Data: data}
	if handled, lost := s.trySendDatagram(sess, m); handled {
		if lost {
			s.stats.PacketsLostDatagram.Add(1)
			mPacketsLostDatagram.Inc()
		} else {
			s.stats.PacketsForwarded.Add(1)
			s.stats.BytesForwarded.Add(uint64(len(data)))
			mPacketsForwarded.Inc()
			mBytesForwarded.Add(uint64(len(data)))
		}
		return
	}
	err := sess.writePacketClass(e.lab, m)
	if err == nil {
		s.stats.PacketsForwarded.Add(1)
		s.stats.BytesForwarded.Add(uint64(len(data)))
		mPacketsForwarded.Inc()
		mBytesForwarded.Add(uint64(len(data)))
	} else {
		// The session died between snapshot publish and this frame (at
		// most one mutation stale): account it like any dead route so
		// injected == forwarded + no_route + throttled (+ lost_datagram)
		// stays exact.
		s.stats.PacketsNoRoute.Add(1)
		mPacketsNoRoute.Inc()
	}
}

// deliverToPort sends a frame toward a router port via its RIS — the
// injection path (traffic generation, streams). Wired or not, every
// registered port has a snapshot entry; the locked fallback only runs
// when an injection races a registration ahead of its rebuild.
func (s *Server) deliverToPort(dst PortKey, data []byte) {
	if e, ok := s.fwd.Load().ports[dst]; ok {
		s.forward(e, data)
		return
	}
	s.deliverToPortSlow(dst, data)
}

// deliverToPortSlow is the pre-snapshot delivery path, kept for ports
// the current snapshot does not know yet. It resolves ownership, rate
// limit and session under the source-of-truth locks.
func (s *Server) deliverToPortSlow(dst PortKey, data []byte) {
	s.captures.deliver(dst, DirToPort, data, &s.stats)
	lab := s.matrix.ownerOf(dst.Router)
	if lab != "" && s.opts.LabRateLimit > 0 && !s.labLimiter(lab).Allow(1) {
		s.stats.PacketsThrottled.Add(1)
		mPacketsThrottled.Inc()
		admission.Throttled(1)
		s.labCounter(lab).throttled.Add(1)
		return
	}
	dstSess, ok := s.sessionFor(dst.Router)
	if !ok {
		s.stats.PacketsNoRoute.Add(1)
		mPacketsNoRoute.Inc()
		return
	}
	m := wire.PacketMsg{RouterID: dst.Router, PortID: dst.Port, Data: data}
	if handled, lost := s.trySendDatagram(dstSess, m); handled {
		if lost {
			s.stats.PacketsLostDatagram.Add(1)
			mPacketsLostDatagram.Inc()
		} else {
			s.stats.PacketsForwarded.Add(1)
			s.stats.BytesForwarded.Add(uint64(len(data)))
			mPacketsForwarded.Inc()
			mBytesForwarded.Add(uint64(len(data)))
		}
		return
	}
	err := dstSess.writePacketClass(lab, m)
	if err == nil {
		s.stats.PacketsForwarded.Add(1)
		s.stats.BytesForwarded.Add(uint64(len(data)))
		mPacketsForwarded.Inc()
		mBytesForwarded.Add(uint64(len(data)))
	} else {
		s.stats.PacketsNoRoute.Add(1)
		mPacketsNoRoute.Inc()
	}
}

// InjectPacket sends an arbitrary frame to a router port — the traffic
// generation module (paper §2.3): "the users can generate arbitrary
// packets and send them to any router port", in one direction only.
func (s *Server) InjectPacket(dst PortKey, frame []byte) error {
	if !s.reg.portExists(dst) {
		return fmt.Errorf("routeserver: port %s not registered", dst)
	}
	s.stats.PacketsInjected.Add(1)
	mPacketsInjected.Inc()
	s.deliverToPort(dst, frame)
	return nil
}

// InjectFromPort emits a frame onto the virtual wire as if the given
// router port had transmitted it: it traverses the routing matrix to the
// far end. The generation module's other direction — traffic "on any
// wire", visible only to the far side.
func (s *Server) InjectFromPort(src PortKey, frame []byte) error {
	if !s.reg.portExists(src) {
		return fmt.Errorf("routeserver: port %s not registered", src)
	}
	s.stats.PacketsInjected.Add(1)
	mPacketsInjected.Inc()
	s.captures.deliver(src, DirFromPort, frame, &s.stats)
	dst, ok := s.matrix.lookup(src)
	if !ok {
		s.stats.PacketsNoRoute.Add(1)
		mPacketsNoRoute.Inc()
		return nil // unwired port: the frame falls off the open wire end
	}
	s.deliverToPort(dst, frame)
	return nil
}
