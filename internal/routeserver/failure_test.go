package routeserver_test

import (
	"testing"
	"time"

	"rnl/internal/routeserver"
)

// TestRISDeathDuringDeployment: when a site's RIS drops mid-experiment,
// its routers leave the inventory, its wires stop carrying traffic, and
// its console sessions end — the behaviours a shared cloud needs to stay
// sane when "specialized equipment could come and go at any time".
func TestRISDeathDuringDeployment(t *testing.T) {
	// Grace disabled: this test is about what happens when a router is
	// truly gone, not about flap recovery (see recovery_test.go).
	s := startServer(t, routeserver.Options{RouterGracePeriod: routeserver.NoRouterGrace})
	h1 := addLabHost(t, s, "die-h1", "10.0.7.1", false)
	h2 := addLabHost(t, s, "die-h2", "10.0.7.2", false)
	pk1 := portKeyOf(t, h1.agent, "die-h1", "eth0")
	pk2 := portKeyOf(t, h2.agent, "die-h2", "eth0")
	if err := s.Deploy("die-lab", []routeserver.Link{{A: pk1, B: pk2}}); err != nil {
		t.Fatal(err)
	}
	if ok, _ := h1.host.Ping(h2.host.IP(), 3*time.Second); !ok {
		t.Fatal("baseline ping failed")
	}

	// Open a console session to the victim before killing its agent.
	r1, _ := s.RouterByName("die-h1")
	cons, err := s.OpenConsole(r1.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cons.Close()

	// Kill the RIS.
	h1.agent.Close()
	deadline := time.Now().Add(3 * time.Second)
	for len(s.Inventory()) != 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := len(s.Inventory()); got != 1 {
		t.Fatalf("inventory = %d routers after RIS death, want 1", got)
	}

	// The console session reports EOF rather than hanging.
	cons.Write([]byte("enable\n")) // may or may not error; the read must end
	buf := make([]byte, 256)
	readDone := make(chan error, 1)
	go func() {
		for {
			if _, err := cons.Read(buf); err != nil {
				readDone <- err
				return
			}
		}
	}()
	select {
	case <-readDone:
	case <-time.After(3 * time.Second):
		t.Fatal("console read never ended after RIS death")
	}

	// The virtual wire is gone: traffic from the survivor goes nowhere.
	before := s.StatsSnapshot()["packets_no_route"]
	h2.host.Ping(h1.host.IP(), 200*time.Millisecond)
	if after := s.StatsSnapshot()["packets_no_route"]; after <= before {
		t.Errorf("no-route counter did not move (before=%d after=%d)", before, after)
	}

	// Injection toward the dead port is now rejected.
	if err := s.InjectPacket(pk1, []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 0, 0}); err == nil {
		t.Error("injecting to a vanished port should fail")
	}
}

// TestStreamStopsWhenRISLeaves: a traffic stream aimed at a vanished port
// terminates instead of spinning forever.
func TestStreamStopsWhenRISLeaves(t *testing.T) {
	s := startServer(t, routeserver.Options{RouterGracePeriod: routeserver.NoRouterGrace})
	h1 := addLabHost(t, s, "sd-h1", "10.0.8.1", false)
	pk1 := portKeyOf(t, h1.agent, "sd-h1", "eth0")
	frame := make([]byte, 64)
	st, err := s.StartStream(pk1, frame, 200, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Stop()
	deadline := time.Now().Add(3 * time.Second)
	for st.Sent() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if st.Sent() == 0 {
		t.Fatal("stream never started")
	}
	h1.agent.Close()
	select {
	case <-st.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("stream kept running after its port vanished")
	}
}
