package routeserver

// The batched inbound path: tunnel transport v2's server half. One wake
// of a session's read loop drains every frame the kernel has already
// delivered (bounded by maxInboundBurst), resolves each PACKET frame
// against the forwarding snapshot, and stages it per destination
// session. The flush then queues each destination's frames with a single
// SendPacketBufs call — one lock acquisition and one writer wakeup for N
// frames, mirroring the RIS-side batched writer — and, for uncompressed
// frames, hands the reader's own buffer across (FrameReader.Detach), so
// a forwarded frame is never copied server-side.

import (
	"time"

	"rnl/internal/admission"
	"rnl/internal/wire"
)

// maxInboundBurst bounds how many already-buffered frames one wake of a
// session's read loop processes before flushing staged forwards. Large
// enough to amortize the flush, small enough to keep the staging arrays
// cache-resident and cross-session latency bounded.
const maxInboundBurst = 64

// destGroup accumulates the frames of one burst bound for one
// destination session.
type destGroup struct {
	sess  *session
	pbs   []wire.PacketBuf
	bytes uint64
}

// pendBatch is a read loop's staging area, reused across bursts so the
// steady state allocates nothing.
type pendBatch struct {
	bySess map[*session]*destGroup
	order  []*destGroup // insertion order: deterministic flush sequence
	free   []*destGroup
}

func newPendBatch() *pendBatch {
	return &pendBatch{bySess: make(map[*session]*destGroup)}
}

// add stages one packet for dst.
func (p *pendBatch) add(dst *session, pb wire.PacketBuf, n int) {
	g := p.bySess[dst]
	if g == nil {
		if k := len(p.free); k > 0 {
			g = p.free[k-1]
			p.free = p.free[:k-1]
		} else {
			g = &destGroup{}
		}
		g.sess = dst
		p.bySess[dst] = g
		p.order = append(p.order, g)
	}
	g.pbs = append(g.pbs, pb)
	g.bytes += uint64(n)
}

// stagePacket is the staged twin of handlePacket: same decode,
// decompress, capture and admission decisions, but the transport handoff
// is deferred to the burst flush so frames sharing a destination share
// one enqueue. Uncompressed frames ride the detached reader buffer;
// decompressed ones are copied (the decompressor owns its scratch).
func (s *Server) stagePacket(sess *session, payload []byte, fr *wire.FrameReader, pend *pendBatch) {
	m, err := wire.DecodePacket(payload)
	if err != nil {
		return
	}
	data := m.Data
	compressed := m.Flags&wire.FlagCompressed != 0
	if compressed {
		if sess.decomp == nil {
			return
		}
		// Inbound decompression must follow stream order; frames of one
		// session arrive on one goroutine, so no extra locking needed.
		data, err = sess.decomp.Decompress(data)
		if err != nil {
			s.log.Warn("decompress failed", "session", sess.id, "err", err)
			return
		}
	}
	// Sample forwarding latency 1-in-64: two clock reads plus a shared
	// histogram per frame would cost more than the forwarding itself.
	// (The sample covers resolve-to-stage; the flush handoff is the same
	// bounded work for every frame of the burst.)
	sample := sess.seq.Add(1)&63 == 0
	var start time.Time
	if sample {
		start = time.Now()
	}
	src := PortKey{Router: m.RouterID, Port: m.PortID}
	s.captures.deliver(src, DirFromPort, data, &s.stats)

	e, ok := s.fwd.Load().routes[src]
	if !ok {
		s.stats.PacketsNoRoute.Add(1)
		mPacketsNoRoute.Inc()
		return
	}
	s.captures.deliver(e.dst, DirToPort, data, &s.stats)
	if e.limiter != nil && !e.limiter.Allow(1) {
		s.stats.PacketsThrottled.Add(1)
		mPacketsThrottled.Inc()
		admission.Throttled(1)
		e.throttled.Add(1)
		return
	}
	dst := e.sess
	if dst == nil {
		// Destination RIS offline (grace period): no live route.
		s.stats.PacketsNoRoute.Add(1)
		mPacketsNoRoute.Inc()
		return
	}
	var pb wire.PacketBuf
	if compressed {
		pb = wire.MakePacketBuf(e.lab, e.dst.Router, e.dst.Port, 0, data)
	} else {
		pb = fr.DetachPacket(e.lab, e.dst.Router, e.dst.Port, 0)
	}
	pend.add(dst, pb, len(data))
	if sample {
		mFwdLatency.Observe(time.Since(start).Seconds())
	}
}

// flushPend hands every staged destination its whole burst share in one
// call. Success counts the frames forwarded at the enqueue, exactly like
// the unbatched path; a dead session (writer gone between snapshot
// publish and flush) accounts its frames as no_route so
// injected == forwarded + no_route + throttled (+ lost_datagram) stays
// exact.
func (s *Server) flushPend(pend *pendBatch) {
	if len(pend.order) == 0 {
		return
	}
	for _, g := range pend.order {
		if peer := g.sess.dgram; peer != nil && peer.addr.Load() != nil {
			// Established datagram path: per-frame best-effort sends with
			// their own loss accounting (datagram.go).
			s.flushDatagram(g)
			delete(pend.bySess, g.sess)
			g.sess = nil
			g.pbs = g.pbs[:0]
			g.bytes = 0
			pend.free = append(pend.free, g)
			continue
		}
		n := uint64(len(g.pbs))
		if err := g.sess.wc.Load().SendPacketBufs(g.pbs); err == nil {
			s.stats.PacketsForwarded.Add(n)
			s.stats.BytesForwarded.Add(g.bytes)
			mPacketsForwarded.Add(n)
			mBytesForwarded.Add(g.bytes)
		} else {
			s.stats.PacketsNoRoute.Add(n)
			mPacketsNoRoute.Add(n)
		}
		delete(pend.bySess, g.sess)
		g.sess = nil
		g.pbs = g.pbs[:0]
		g.bytes = 0
		pend.free = append(pend.free, g)
	}
	pend.order = pend.order[:0]
}

// consumeFrame processes one inbound frame inside a burst. PACKET frames
// are staged; anything else flushes the staged packets first (so no
// control frame ever overtakes data queued earlier in the burst) and
// then dispatches normally. Reports whether the frame was MsgLeave.
func (s *Server) consumeFrame(sess *session, f wire.Frame, fr *wire.FrameReader, pend *pendBatch) bool {
	if f.Type == wire.MsgPacket {
		s.stagePacket(sess, f.Payload, fr, pend)
		return false
	}
	s.flushPend(pend)
	s.dispatchFrame(sess, f)
	return f.Type == wire.MsgLeave
}
