package routeserver_test

// Recovery E2E tests: the behaviours PR "labs survive tunnel flaps and
// route-server restarts" exists for. They drive real RIS agents in
// reconnecting Run mode against a route server whose accept path is
// wrapped by the fault-injection harness, then assert that a deployed
// lab's wire IDs, matrix routes and forwarding all come back without any
// operator action.

import (
	"context"
	"net"
	"testing"
	"time"

	"rnl/internal/device"
	"rnl/internal/faultinject"
	"rnl/internal/netsim"
	"rnl/internal/ris"
	"rnl/internal/routeserver"
	"rnl/internal/wanem"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// runLabHost is addLabHost's reconnecting sibling: the agent runs in Run
// mode with fast keepalive/redial timers, so a killed tunnel is redialed
// within tens of milliseconds — the loop a production RIS runs for years.
func runLabHost(t *testing.T, addr, name, ip string) *labHost {
	t.Helper()
	h := device.NewHost(name, device.FastTimers())
	t.Cleanup(h.Close)
	if err := h.Configure(mustIP(t, ip), mask24(), nil); err != nil {
		t.Fatal(err)
	}
	nic := netsim.NewIface("pc-" + name + "/eth0")
	w := netsim.Connect(h.Ports()[0], nic, nil)
	t.Cleanup(w.Disconnect)

	sp := netsim.NewSerialPort()
	t.Cleanup(sp.Close)
	go device.AttachConsole(h, sp.DeviceEnd)

	agent, err := ris.New(ris.Config{
		ServerAddr: addr,
		PCName:     "pc-" + name,
		Routers: []ris.RouterDef{{
			Name:    name,
			Model:   "Linux Server",
			Console: sp.PCEnd,
			Ports:   []ris.PortMap{{Name: "eth0", NIC: nic}},
		}},
		KeepaliveInterval: 100 * time.Millisecond, // PeerTimeout 300ms
		ReconnectBackoff:  20 * time.Millisecond,
	}, quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go agent.Run(ctx)
	waitFor(t, 5*time.Second, func() bool { return agent.RouterID(name) != 0 },
		name+" never joined")
	return &labHost{host: h, agent: agent}
}

// pingUntil retries a ping until it succeeds, returning when the first
// reply arrived.
func pingUntil(t *testing.T, from *device.Host, to net.IP, timeout time.Duration) time.Time {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if ok, _ := from.Ping(to, 250*time.Millisecond); ok {
			return time.Now()
		}
	}
	t.Fatalf("ping %s never succeeded within %v", to, timeout)
	return time.Time{}
}

// TestLabSurvivesTunnelFlap is the PR's acceptance test: kill every RIS
// tunnel under a deployed lab and assert the agents redial, get their old
// wire IDs back, the matrix routes are reinstalled with zero edits lost,
// and forwarding resumes — all within the grace period, with no operator
// involvement.
func TestLabSurvivesTunnelFlap(t *testing.T) {
	ctl := faultinject.NewController()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := routeserver.New(routeserver.Options{
		Logger:            quietLogger(),
		RouterGracePeriod: time.Minute,
	})
	s.Serve(ctl.WrapListener(ln))
	t.Cleanup(s.Close)

	h1 := runLabHost(t, s.Addr(), "flap-h1", "10.0.20.1")
	h2 := runLabHost(t, s.Addr(), "flap-h2", "10.0.20.2")
	pk1 := portKeyOf(t, h1.agent, "flap-h1", "eth0")
	pk2 := portKeyOf(t, h2.agent, "flap-h2", "eth0")
	if err := s.Deploy("flap-lab", []routeserver.Link{{A: pk1, B: pk2}}); err != nil {
		t.Fatal(err)
	}
	if ok, _ := h1.host.Ping(h2.host.IP(), 3*time.Second); !ok {
		t.Fatal("baseline ping failed")
	}
	depsBefore := s.Deployments()

	killedAt := time.Now()
	if n := ctl.KillAll(); n != 2 {
		t.Fatalf("killed %d tunnels, want 2", n)
	}
	waitFor(t, 5*time.Second, func() bool {
		return s.StatsSnapshot()["recoveries"] >= 2
	}, "agents never re-joined after tunnel kill")
	rejoinedAt := time.Now()

	// Identical wire IDs after the flap: the whole point of keyed identity.
	if after := portKeyOf(t, h1.agent, "flap-h1", "eth0"); after != pk1 {
		t.Fatalf("flap-h1 port key changed across flap: %s -> %s", pk1, after)
	}
	if after := portKeyOf(t, h2.agent, "flap-h2", "eth0"); after != pk2 {
		t.Fatalf("flap-h2 port key changed across flap: %s -> %s", pk2, after)
	}
	// Zero matrix edits lost: the deployment survived byte-for-byte.
	depsAfter := s.Deployments()
	if len(depsAfter) != len(depsBefore) || len(depsAfter) != 1 {
		t.Fatalf("deployments after flap = %d, want %d", len(depsAfter), len(depsBefore))
	}
	d := depsAfter[0]
	if d.Name != "flap-lab" || len(d.Links) != 1 || d.Links[0] != (routeserver.Link{A: pk1, B: pk2}) {
		t.Fatalf("deployment mutated across flap: %+v", d)
	}
	if s.StatsSnapshot()["labs_lost"] != 0 {
		t.Fatal("flap within grace period counted as a lost lab")
	}

	forwardingAt := pingUntil(t, h1.host, h2.host.IP(), 5*time.Second)
	t.Logf("recovery after tunnel kill: re-join %v, forwarding %v",
		rejoinedAt.Sub(killedAt), forwardingAt.Sub(killedAt))
}

// TestRouteServerRestartRestoresState kills the whole route server and
// brings up a fresh process image on the same state directory: the
// deployments and router identities must be restored from the snapshot
// before any agent reconnects, and once the redialing agents find the new
// listener the lab forwards again with the same wire IDs.
func TestRouteServerRestartRestoresState(t *testing.T) {
	dir := t.TempDir()
	opts := routeserver.Options{
		Logger:            quietLogger(),
		RouterGracePeriod: time.Minute,
		StateDir:          dir,
	}
	s1 := routeserver.New(opts)
	addr, err := s1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s1.Close)

	h1 := runLabHost(t, addr, "rst-h1", "10.0.21.1")
	h2 := runLabHost(t, addr, "rst-h2", "10.0.21.2")
	pk1 := portKeyOf(t, h1.agent, "rst-h1", "eth0")
	pk2 := portKeyOf(t, h2.agent, "rst-h2", "eth0")
	if err := s1.Deploy("rst-lab", []routeserver.Link{{A: pk1, B: pk2}}); err != nil {
		t.Fatal(err)
	}
	if ok, _ := h1.host.Ping(h2.host.IP(), 3*time.Second); !ok {
		t.Fatal("baseline ping failed")
	}
	s1.Close() // includes the final state snapshot

	// The replacement server restores the control plane in New, before it
	// even listens: agents that redial find their labs already in place.
	s2 := routeserver.New(opts)
	t.Cleanup(s2.Close)
	deps := s2.Deployments()
	if len(deps) != 1 || deps[0].Name != "rst-lab" ||
		len(deps[0].Links) != 1 || deps[0].Links[0] != (routeserver.Link{A: pk1, B: pk2}) {
		t.Fatalf("restored deployments wrong: %+v", deps)
	}
	inv := s2.Inventory()
	if len(inv) != 2 {
		t.Fatalf("restored inventory has %d routers, want 2", len(inv))
	}
	for _, r := range inv {
		if r.Online {
			t.Fatalf("restored router %q online before any agent reconnected", r.Name)
		}
	}
	r1, ok := s2.RouterByName("rst-h1")
	if !ok || (routeserver.PortKey{Router: r1.ID, Port: r1.Ports[0].ID}) != pk1 {
		t.Fatalf("rst-h1 restored with different IDs: %+v want %s", r1, pk1)
	}

	// Rebind the old address (the port may linger briefly after close).
	var bindErr error
	bound := false
	for i := 0; i < 100 && !bound; i++ {
		if _, bindErr = s2.Listen(addr); bindErr == nil {
			bound = true
		} else {
			time.Sleep(50 * time.Millisecond)
		}
	}
	if !bound {
		t.Fatalf("could not rebind %s: %v", addr, bindErr)
	}

	waitFor(t, 5*time.Second, func() bool {
		return s2.StatsSnapshot()["recoveries"] >= 2
	}, "agents never re-attached to the restarted server")
	if after := portKeyOf(t, h1.agent, "rst-h1", "eth0"); after != pk1 {
		t.Fatalf("rst-h1 port key changed across restart: %s -> %s", pk1, after)
	}
	pingUntil(t, h1.host, h2.host.IP(), 5*time.Second)
}

// TestGraceExpiryPrunesLab: a RIS that never comes back must not hold its
// lab forever. After the grace period the router is pruned from the
// inventory, its deployment is released, and the loss is counted.
func TestGraceExpiryPrunesLab(t *testing.T) {
	s := startServer(t, routeserver.Options{RouterGracePeriod: 250 * time.Millisecond})
	hA := addLabHost(t, s, "gx-h1", "10.0.22.1", false)
	hB := addLabHost(t, s, "gx-h2", "10.0.22.2", false)
	pkA := portKeyOf(t, hA.agent, "gx-h1", "eth0")
	pkB := portKeyOf(t, hB.agent, "gx-h2", "eth0")
	if err := s.Deploy("gx-lab", []routeserver.Link{{A: pkA, B: pkB}}); err != nil {
		t.Fatal(err)
	}

	hA.agent.Close() // and never reconnects

	// Within the grace period the router lingers offline — the window a
	// redial would land in — and its deployment is untouched.
	waitFor(t, 3*time.Second, func() bool {
		r, ok := s.RouterByName("gx-h1")
		return ok && !r.Online
	}, "gx-h1 never went offline")
	if got := len(s.Inventory()); got != 2 {
		t.Fatalf("inventory shrank to %d during grace period, want 2", got)
	}
	if h := s.Health(); h.Offline != 1 {
		t.Fatalf("health reports %d offline routers, want 1", h.Offline)
	}
	if deps := s.Deployments(); len(deps) != 1 || len(deps[0].Links) != 1 {
		t.Fatalf("deployment mutated during grace period: %+v", deps)
	}

	// Grace expires: pruned, released, counted.
	waitFor(t, 3*time.Second, func() bool { return len(s.Inventory()) == 1 },
		"gx-h1 never pruned after grace expiry")
	if got := s.StatsSnapshot()["labs_lost"]; got != 1 {
		t.Fatalf("labs_lost = %d, want 1", got)
	}
	deps := s.Deployments()
	if len(deps) != 1 || len(deps[0].Links) != 0 {
		t.Fatalf("lab still holds links to the pruned router: %+v", deps)
	}
}

// TestRecoveryTimeUnderWANLoss measures the EXPERIMENTS.md number: with
// the tunnel conditioned like a lossy WAN (5ms ± 2ms delay, 1% chunk
// loss), how long from a forced tunnel kill until the lab forwards again.
// The conditioner stays attached through the recovery, so the redial and
// re-join themselves run over the impaired path.
func TestRecoveryTimeUnderWANLoss(t *testing.T) {
	ctl := faultinject.NewController()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := routeserver.New(routeserver.Options{
		Logger:            quietLogger(),
		RouterGracePeriod: time.Minute,
	})
	s.Serve(ctl.WrapListener(ln))
	t.Cleanup(s.Close)

	h1 := runLabHost(t, s.Addr(), "wan-h1", "10.0.23.1")
	h2 := runLabHost(t, s.Addr(), "wan-h2", "10.0.23.2")
	pk1 := portKeyOf(t, h1.agent, "wan-h1", "eth0")
	pk2 := portKeyOf(t, h2.agent, "wan-h2", "eth0")
	if err := s.Deploy("wan-lab", []routeserver.Link{{A: pk1, B: pk2}}); err != nil {
		t.Fatal(err)
	}
	if ok, _ := h1.host.Ping(h2.host.IP(), 3*time.Second); !ok {
		t.Fatal("baseline ping failed")
	}

	ctl.SetConditioner(wanem.New(wanem.Profile{
		Delay:  5 * time.Millisecond,
		Jitter: 2 * time.Millisecond,
		Loss:   0.01,
	}, 42))
	base := s.StatsSnapshot()["recoveries"]
	killedAt := time.Now()
	ctl.KillAll()
	waitFor(t, 10*time.Second, func() bool {
		return s.StatsSnapshot()["recoveries"] >= base+2
	}, "agents never re-joined over the conditioned tunnel")
	rejoinedAt := time.Now()
	forwardingAt := pingUntil(t, h1.host, h2.host.IP(), 10*time.Second)
	t.Logf("recovery under 5ms±2ms delay + 1%% loss: re-join %v, forwarding %v",
		rejoinedAt.Sub(killedAt), forwardingAt.Sub(killedAt))
	if fk := forwardingAt.Sub(killedAt); fk > 8*time.Second {
		t.Errorf("forwarding took %v to recover; want well under the grace period", fk)
	}
}
